// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (Table 1-2, Figures 4-21), one benchmark per
// exhibit. Each benchmark runs its experiment at a reduced scale so the
// whole suite finishes in minutes; `cmd/dsebench -all` produces the
// full-scale rows. Benchmarks report the reproduction's headline metric
// (peak speed-up, best execution time, ...) via b.ReportMetric, so the
// "who wins and by how much" shape is visible straight from `go test
// -bench`.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/platform"
)

// benchScale is the reduced parameter set used by the benchmarks.
func benchScale() bench.Scale {
	return bench.Scale{
		MaxPE:         6,
		GaussNs:       []int{120, 360},
		DCTImage:      64,
		DCTBlocks:     []int{4, 16},
		OthelloDepths: []int{3, 5},
		KnightJobs:    []int{2, 16},
		Seed:          1,
	}
}

func BenchmarkTable1_Environments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Table1(); len(tab.Rows) != 3 {
			b.Fatal("Table 1 incomplete")
		}
	}
}

func BenchmarkTable2_VirtualCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Table2(12); len(tab.Rows) != 12 {
			b.Fatal("Table 2 incomplete")
		}
	}
}

// gaussBench regenerates one Gauss-Seidel figure pair and reports the peak
// speed-up of the largest system.
func gaussBench(b *testing.B, pl *platform.Platform, speedup bool) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		timeFig, speedupFig, err := bench.GaussFigures(pl, sc)
		if err != nil {
			b.Fatal(err)
		}
		fig := timeFig
		if speedup {
			fig = speedupFig
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
		last := speedupFig.Series[len(speedupFig.Series)-1]
		b.ReportMetric(last.MaxY(), "peak-speedup")
		b.ReportMetric(last.ArgMaxY(), "peak-procs")
	}
}

func BenchmarkFig04_GaussTimeSunOS(b *testing.B)    { gaussBench(b, platform.SparcSunOS, false) }
func BenchmarkFig05_GaussSpeedupSunOS(b *testing.B) { gaussBench(b, platform.SparcSunOS, true) }
func BenchmarkFig06_GaussTimeAIX(b *testing.B)      { gaussBench(b, platform.RS6000AIX, false) }
func BenchmarkFig07_GaussSpeedupAIX(b *testing.B)   { gaussBench(b, platform.RS6000AIX, true) }
func BenchmarkFig08_GaussTimeLinux(b *testing.B)    { gaussBench(b, platform.PentiumIILinux, false) }
func BenchmarkFig09_GaussSpeedupLinux(b *testing.B) { gaussBench(b, platform.PentiumIILinux, true) }

// dctBench regenerates one DCT-II figure pair and reports the largest
// block's peak speed-up (the paper's best case) and the smallest block's
// (the paper's communication-bound case).
func dctBench(b *testing.B, pl *platform.Platform, speedup bool) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		timeFig, speedupFig, err := bench.DCTFigures(pl, sc)
		if err != nil {
			b.Fatal(err)
		}
		fig := timeFig
		if speedup {
			fig = speedupFig
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
		small := speedupFig.Series[0]
		big := speedupFig.Series[len(speedupFig.Series)-1]
		b.ReportMetric(small.MaxY(), "small-block-peak")
		b.ReportMetric(big.MaxY(), "big-block-peak")
	}
}

func BenchmarkFig10_DCTTimeSunOS(b *testing.B)    { dctBench(b, platform.SparcSunOS, false) }
func BenchmarkFig11_DCTSpeedupSunOS(b *testing.B) { dctBench(b, platform.SparcSunOS, true) }
func BenchmarkFig12_DCTTimeAIX(b *testing.B)      { dctBench(b, platform.RS6000AIX, false) }
func BenchmarkFig13_DCTSpeedupAIX(b *testing.B)   { dctBench(b, platform.RS6000AIX, true) }
func BenchmarkFig14_DCTTimeLinux(b *testing.B)    { dctBench(b, platform.PentiumIILinux, false) }
func BenchmarkFig15_DCTSpeedupLinux(b *testing.B) { dctBench(b, platform.PentiumIILinux, true) }

// othelloBench regenerates one Othello figure and reports shallow vs deep
// peak improvement ratios.
func othelloBench(b *testing.B, pl *platform.Platform) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := bench.OthelloFigure(pl, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].MaxY(), "shallow-peak")
		b.ReportMetric(fig.Series[len(fig.Series)-1].MaxY(), "deep-peak")
	}
}

func BenchmarkFig16_OthelloSunOS(b *testing.B) { othelloBench(b, platform.SparcSunOS) }
func BenchmarkFig17_OthelloAIX(b *testing.B)   { othelloBench(b, platform.RS6000AIX) }
func BenchmarkFig18_OthelloLinux(b *testing.B) { othelloBench(b, platform.PentiumIILinux) }

// knightBench regenerates one Knight's-Tour figure and reports the best
// execution time over the sweep together with the job count achieving it.
func knightBench(b *testing.B, pl *platform.Platform) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := bench.KnightFigure(pl, sc)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if best == 0 || y < best {
					best = y
				}
			}
		}
		b.ReportMetric(best, "best-time-s")
	}
}

func BenchmarkFig19_KnightSunOS(b *testing.B) { knightBench(b, platform.SparcSunOS) }
func BenchmarkFig20_KnightAIX(b *testing.B)   { knightBench(b, platform.RS6000AIX) }
func BenchmarkFig21_KnightLinux(b *testing.B) { knightBench(b, platform.PentiumIILinux) }
