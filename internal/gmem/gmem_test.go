package gmem

import (
	"testing"
	"testing/quick"
)

func TestHomePlacementBlockCyclic(t *testing.T) {
	s := NewSpace(4, 8)
	for addr := uint64(0); addr < 8; addr++ {
		if s.HomeOf(addr) != 0 {
			t.Fatalf("addr %d homed at %d, want 0", addr, s.HomeOf(addr))
		}
	}
	if s.HomeOf(8) != 1 || s.HomeOf(16) != 2 || s.HomeOf(24) != 3 || s.HomeOf(32) != 0 {
		t.Fatal("block-cyclic placement broken")
	}
}

func TestHomeRunsSplitsAtBlockAndHomeBoundaries(t *testing.T) {
	s := NewSpace(2, 4)
	type run struct {
		home  int
		start uint64
		count int
	}
	var runs []run
	s.HomeRuns(2, 9, func(h int, st uint64, c int) { runs = append(runs, run{h, st, c}) })
	want := []run{{0, 2, 2}, {1, 4, 4}, {0, 8, 3}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
}

// Property: HomeRuns covers the requested range exactly once, in order,
// with each run homed consistently.
func TestHomeRunsCoverageProperty(t *testing.T) {
	f := func(nRaw, bwRaw uint8, addrRaw uint16, countRaw uint8) bool {
		s := NewSpace(int(nRaw%7)+1, int(bwRaw%16)+1)
		addr := uint64(addrRaw)
		count := int(countRaw)
		if count == 0 {
			return true
		}
		next := addr
		total := 0
		okHomes := true
		s.HomeRuns(addr, count, func(h int, st uint64, c int) {
			if st != next {
				okHomes = false
			}
			for i := 0; i < c; i++ {
				if s.HomeOf(st+uint64(i)) != h {
					okHomes = false
				}
			}
			next = st + uint64(c)
			total += c
		})
		return okHomes && total == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorDeterministicSequence(t *testing.T) {
	s := NewSpace(4, 8)
	a1, a2 := NewAllocator(s), NewAllocator(s)
	for i := 1; i < 20; i++ {
		if a1.Alloc(i) != a2.Alloc(i) {
			t.Fatal("allocators diverged on identical sequences")
		}
	}
}

func TestAllocBlocksAligns(t *testing.T) {
	s := NewSpace(4, 8)
	a := NewAllocator(s)
	a.Alloc(3)
	base := a.AllocBlocks(10)
	if base%8 != 0 {
		t.Fatalf("AllocBlocks returned unaligned base %d", base)
	}
	if base != 8 {
		t.Fatalf("base = %d, want 8", base)
	}
}

func TestSegmentReadWriteRoundTrip(t *testing.T) {
	s := NewSpace(2, 8)
	g := NewSegment(s, 0)
	g.Write(2, []int64{10, 20, 30})
	got := g.Read(2, 3)
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("read back %v", got)
	}
	// Unwritten words are zero.
	if g.Read(0, 1)[0] != 0 {
		t.Fatal("fresh word not zero")
	}
}

func TestSegmentRejectsForeignAddress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign address")
		}
	}()
	s := NewSpace(2, 8)
	NewSegment(s, 0).Write(8, []int64{1}) // block 1 homes at kernel 1
}

func TestSegmentRejectsBlockSpanningRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for spanning range")
		}
	}()
	s := NewSpace(1, 4)
	NewSegment(s, 0).Write(2, []int64{1, 2, 3}) // crosses block boundary
}

func TestFetchAddSequential(t *testing.T) {
	s := NewSpace(1, 8)
	g := NewSegment(s, 0)
	for i := int64(0); i < 10; i++ {
		if old := g.FetchAdd(3, 2); old != 2*i {
			t.Fatalf("FetchAdd returned %d, want %d", old, 2*i)
		}
	}
	if v := g.Read(3, 1)[0]; v != 20 {
		t.Fatalf("final value %d, want 20", v)
	}
}

func TestCASSemantics(t *testing.T) {
	s := NewSpace(1, 8)
	g := NewSegment(s, 0)
	g.Write(0, []int64{5})
	if prev, ok := g.CAS(0, 4, 9); ok || prev != 5 {
		t.Fatalf("CAS with wrong old succeeded: prev=%d ok=%v", prev, ok)
	}
	if prev, ok := g.CAS(0, 5, 9); !ok || prev != 5 {
		t.Fatalf("CAS with right old failed: prev=%d ok=%v", prev, ok)
	}
	if v := g.Read(0, 1)[0]; v != 9 {
		t.Fatalf("value after CAS = %d", v)
	}
}

func TestDirectoryTracksReadersAndInvalidates(t *testing.T) {
	s := NewSpace(3, 4)
	g := NewSegment(s, 0)
	g.Write(1, []int64{42})
	g.ReadBlockFor(1, 1)
	g.ReadBlockFor(1, 2)
	g.ReadBlockFor(1, 0) // self never joins the copyset
	cs := g.Copyset(0)
	if len(cs) != 2 || cs[0] != 1 || cs[1] != 2 {
		t.Fatalf("copyset = %v, want [1 2]", cs)
	}
	targets := g.WriteInvalidating(2, []int64{7}, 1)
	if len(targets) != 1 || targets[0] != 2 {
		t.Fatalf("invalidation targets = %v, want [2] (writer excluded)", targets)
	}
	if len(g.Copyset(0)) != 0 {
		t.Fatal("copyset not cleared after write")
	}
	if v := g.Read(2, 1)[0]; v != 7 {
		t.Fatal("write was lost")
	}
}

func TestCacheLifecycle(t *testing.T) {
	s := NewSpace(2, 4)
	c := NewCache(s)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(5, []int64{10, 11, 12, 13}) // block 1 = addrs 4..7
	if v, ok := c.Lookup(5); !ok || v != 11 {
		t.Fatalf("lookup = %d,%v want 11,true", v, ok)
	}
	c.Update(6, []int64{99})
	if v, _ := c.Lookup(6); v != 99 {
		t.Fatalf("update lost: %d", v)
	}
	c.Invalidate(4)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("hit after invalidate")
	}
	hits, misses, inv := c.Stats()
	if hits != 2 || misses != 2 || inv != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, inv)
	}
}

func TestCacheInsertCopiesBlock(t *testing.T) {
	s := NewSpace(1, 2)
	c := NewCache(s)
	src := []int64{1, 2}
	c.Insert(0, src)
	src[0] = 99
	if v, _ := c.Lookup(0); v != 1 {
		t.Fatal("cache aliases caller's slice")
	}
}

func TestFloatWordRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		y := W2F(F2W(x))
		if x != x { // NaN
			return y != y
		}
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a segment behaves as a linearisable map from address to value
// under any sequence of writes and fetch-adds.
func TestSegmentModelProperty(t *testing.T) {
	f := func(ops []struct {
		Addr  uint16
		Val   int64
		IsAdd bool
	}) bool {
		s := NewSpace(1, 16)
		g := NewSegment(s, 0)
		model := map[uint64]int64{}
		for _, op := range ops {
			addr := uint64(op.Addr % 256)
			if op.IsAdd {
				old := g.FetchAdd(addr, op.Val)
				if old != model[addr] {
					return false
				}
				model[addr] += op.Val
			} else {
				g.Write(addr, []int64{op.Val})
				model[addr] = op.Val
			}
			if g.Read(addr, 1)[0] != model[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
