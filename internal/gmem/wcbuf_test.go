package gmem

import (
	"testing"
	"testing/quick"
)

// WCBuf last-writer-wins per word, checked against a model map over an
// arbitrary write sequence confined to a small address range (so words
// collide often): Lookup and the drained set must both agree with the model,
// and the drain must empty the buffer.
func TestWCBufLastWriterWinsProperty(t *testing.T) {
	f := func(addrs []uint8, vals []int16) bool {
		b := NewWCBuf()
		model := map[uint64]int64{}
		for i, a := range addrs {
			var v int64 = int64(i)
			if i < len(vals) {
				v = int64(vals[i])
			}
			addr := uint64(a % 32) // force same-word collisions
			b.Put(addr, v)
			model[addr] = v
			if got, ok := b.Lookup(addr); !ok || got != v {
				return false
			}
		}
		if b.Len() != len(model) {
			return false
		}
		drained := map[uint64]int64{}
		b.Drain(func(addr uint64, val int64) { drained[addr] = val })
		if b.Len() != 0 {
			return false
		}
		if len(drained) != len(model) {
			return false
		}
		for a, v := range model {
			if drained[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Drain order is a deterministic function of the buffered SET, independent
// of write order: two buffers filled with the same words in different orders
// must drain identical (addr, val) sequences, strictly address-ascending —
// the property that makes a flush replayable and run-coalescible.
func TestWCBufDrainOrderDeterministicProperty(t *testing.T) {
	f := func(addrs []uint16, perm []uint8) bool {
		a, b := NewWCBuf(), NewWCBuf()
		// Fill a in given order, b in a permuted order; same final set
		// because Put is LWW and the value is a function of the address.
		for _, ad := range addrs {
			a.Put(uint64(ad), int64(ad)*3)
		}
		idx := make([]int, len(addrs))
		for i := range idx {
			idx[i] = i
		}
		for i, p := range perm {
			if i >= len(idx) {
				break
			}
			j := int(p) % len(idx)
			idx[i], idx[j] = idx[j], idx[i]
		}
		for _, i := range idx {
			b.Put(uint64(addrs[i]), int64(addrs[i])*3)
		}
		type wv struct {
			a uint64
			v int64
		}
		var da, db []wv
		a.Drain(func(addr uint64, val int64) { da = append(da, wv{addr, val}) })
		b.Drain(func(addr uint64, val int64) { db = append(db, wv{addr, val}) })
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
			if i > 0 && da[i].a <= da[i-1].a {
				return false // not strictly ascending
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWCBufDiscardEmptiesWithoutDraining(t *testing.T) {
	b := NewWCBuf()
	b.Put(1, 10)
	b.Put(2, 20)
	b.Discard()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Discard", b.Len())
	}
	if _, ok := b.Lookup(1); ok {
		t.Fatal("Lookup hit after Discard")
	}
	b.Drain(func(addr uint64, val int64) {
		t.Fatalf("Drain delivered (%d,%d) after Discard", addr, val)
	})
}

// FuzzWCBuf drives the write-combining buffer through an arbitrary
// single-threaded (write, flush, barrier-discard) interleaving — the op mix
// a release-mode PE generates between and at sync edges — and checks every
// observable against a model map: Lookup is the read-your-writes overlay,
// Len tracks distinct words, Drain delivers the model's exact contents in
// strictly ascending address order and empties the buffer, and Discard
// forgets everything. Ops decode one byte each (mod 8): 0-4 write word
// (next byte % 64 = addr, following byte = value), 5-6 drain/flush, 7
// discard.
func FuzzWCBuf(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 3, 5})
	// Same-word overwrites then a flush: the LWW corpus.
	f.Add([]byte{0, 7, 1, 0, 7, 2, 0, 7, 3, 5, 0, 7, 4, 6})
	// Discard mid-stream: buffered words must vanish without draining.
	f.Add([]byte{1, 9, 1, 2, 9, 2, 7, 3, 9, 3, 5})
	// Dense collisions across two flush epochs.
	f.Add([]byte{0, 0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 5, 4, 0, 5, 0, 0, 6, 6})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		b := NewWCBuf()
		model := map[uint64]int64{}
		for i := 0; i < len(data); i++ {
			switch data[i] % 8 {
			case 5, 6: // flush: drain everything
				var prev uint64
				first := true
				n := 0
				b.Drain(func(addr uint64, val int64) {
					if !first && addr <= prev {
						t.Fatalf("op %d: drain out of order: %d after %d", i, addr, prev)
					}
					prev, first = addr, false
					want, ok := model[addr]
					if !ok {
						t.Fatalf("op %d: drained unknown word %d", i, addr)
					}
					if val != want {
						t.Fatalf("op %d: drained (%d,%d), model holds %d", i, addr, val, want)
					}
					n++
				})
				if n != len(model) {
					t.Fatalf("op %d: drained %d words, model holds %d", i, n, len(model))
				}
				if b.Len() != 0 {
					t.Fatalf("op %d: Len = %d after Drain", i, b.Len())
				}
				clear(model)
			case 7: // discard (peer-down / skipped-flush fault path)
				b.Discard()
				clear(model)
			default: // write
				if i+2 >= len(data) {
					i = len(data)
					break
				}
				addr := uint64(data[i+1] % 64)
				val := int64(int8(data[i+2]))
				b.Put(addr, val)
				model[addr] = val
				i += 2
			}
			if b.Len() != len(model) {
				t.Fatalf("op %d: Len = %d, model holds %d", i, b.Len(), len(model))
			}
			for a, v := range model {
				got, ok := b.Lookup(a)
				if !ok || got != v {
					t.Fatalf("op %d: Lookup(%d) = (%d,%v), model holds %d", i, a, got, ok, v)
				}
			}
		}
	})
}
