//go:build ignore

// Generates the committed seed corpora for the gmem fuzz targets (the
// submission ring and the write-combining buffer). Run from the repo root:
//
//	go run internal/gmem/corpusgen.go
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

func put(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

// schedule encodes one FuzzSubmitRing input: ring-size selector, start
// position, then one byte per op (mod 3: 0 push, 1 drain-all, 2 drain-head).
func schedule(sizeSel byte, start uint64, ops ...byte) []byte {
	data := make([]byte, 9, 9+len(ops))
	data[0] = sizeSel
	binary.LittleEndian.PutUint64(data[1:], start)
	return append(data, ops...)
}

func main() {
	dir := "internal/gmem/testdata/fuzz/FuzzSubmitRing"
	// Plain FIFO traffic on an 8-slot ring.
	put(dir, "seed-fifo", schedule(2, 0, 0, 0, 0, 1, 0, 2, 1))
	// Positions wrap uint64 mid-schedule: the slot-state words must keep
	// their modular discipline across the wrap (the newSubmitRingAt
	// misinitialisation this corpus pinned hung Push forever).
	put(dir, "seed-wrap", schedule(2, ^uint64(0)-3, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 2, 2))
	// Overfill a 2-slot ring: pushes beyond capacity must reject cleanly.
	put(dir, "seed-full", schedule(0, ^uint64(0)-1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1))
	// Head-at-a-time drains interleaved with pushes, high start bit set.
	put(dir, "seed-head", schedule(3, 1<<63, 2, 0, 2, 0, 0, 2, 2, 2, 0, 1))

	// FuzzWCBuf schedules: one byte per op (mod 8: 0-4 write, consuming an
	// addr byte (%64) and a value byte; 5-6 drain; 7 discard).
	wdir := "internal/gmem/testdata/fuzz/FuzzWCBuf"
	// Plain writes then one flush.
	put(wdir, "seed-flush", []byte{0, 1, 2, 0, 1, 3, 5})
	// Same-word overwrites across two flush epochs: the LWW seed.
	put(wdir, "seed-lww", []byte{0, 7, 1, 0, 7, 2, 0, 7, 3, 5, 0, 7, 4, 6})
	// Discard mid-stream (the peer-down / skipped-flush fault path).
	put(wdir, "seed-discard", []byte{1, 9, 1, 2, 9, 2, 7, 3, 9, 3, 5})
	// Dense same-block collisions spanning a flush boundary.
	put(wdir, "seed-dense", []byte{0, 0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 5, 4, 0, 5, 0, 0, 6, 6})
}
