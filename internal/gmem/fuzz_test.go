package gmem

import (
	"encoding/binary"
	"testing"
)

// FuzzSubmitRing drives a small ring through an arbitrary single-threaded
// push/drain/release schedule, starting at a fuzzer-chosen position (so state
// words wrap uint64 mid-run), and checks every observable against a model
// FIFO queue: pushes succeed exactly while the queue has room, drains return
// the queued writes payload-intact in order, Pending tracks the queue length,
// and Consumed flips only at Release. The encoding under test is the slot
// state discipline — free/published/consumed as modular offsets from the
// claiming position.
func FuzzSubmitRing(f *testing.F) {
	seed := func(start uint64, ops ...byte) []byte {
		data := make([]byte, 9, 9+len(ops))
		data[0] = 2 // 8 slots
		binary.LittleEndian.PutUint64(data[1:], start)
		return append(data, ops...)
	}
	f.Add(seed(0, 0, 0, 0, 1, 0, 2, 1))
	// Positions wrap mid-schedule: the modular-comparison regression corpus.
	f.Add(seed(^uint64(0)-3, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 2, 2))
	// Overfill: more pushes than slots, rejections expected.
	f.Add(seed(^uint64(0)-1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1))
	f.Add(seed(1<<63, 2, 2, 0, 2, 0, 2, 1, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 || len(data) > 4096 {
			return
		}
		size := 1 << (int(data[0])%4 + 1) // 2, 4, 8 or 16 slots
		start := binary.LittleEndian.Uint64(data[1:9])
		r := newSubmitRingAt(size, start)
		buf := make([]RingWrite, size)
		type entry struct {
			w   RingWrite
			pos uint64
		}
		var model []entry // queued (pushed, not yet released), FIFO
		var tok uint64
		for i, b := range data[9:] {
			if p := r.Pending(); p != len(model) {
				t.Fatalf("op %d: Pending = %d, model holds %d", i, p, len(model))
			}
			switch b % 3 {
			case 0: // push
				tok++
				w := RingWrite{Addr: tok, Val: int64(tok ^ 0xabc), Seq: tok, Src: int32(b)}
				pos, ok := r.Push(w)
				if wantOK := len(model) < size; ok != wantOK {
					t.Fatalf("op %d: Push ok=%v with %d/%d queued", i, ok, len(model), size)
				}
				if ok {
					if r.Consumed(pos) {
						t.Fatalf("op %d: position %d consumed right after push", i, pos)
					}
					model = append(model, entry{w, pos})
				}
			case 1: // drain everything, release everything
				n := r.Drain(buf)
				if n != len(model) {
					t.Fatalf("op %d: Drain = %d, model holds %d", i, n, len(model))
				}
				for j := 0; j < n; j++ {
					if buf[j] != model[j].w {
						t.Fatalf("op %d: drained[%d] = %+v, want %+v", i, j, buf[j], model[j].w)
					}
				}
				r.Release(n)
				for j := 0; j < n; j++ {
					if !r.Consumed(model[j].pos) {
						t.Fatalf("op %d: position %d not consumed after Release", i, model[j].pos)
					}
				}
				model = model[:0]
			case 2: // drain and release just the head
				n := r.Drain(buf[:1])
				if want := min(1, len(model)); n != want {
					t.Fatalf("op %d: Drain(1) = %d, want %d", i, n, want)
				}
				if n == 1 {
					if buf[0] != model[0].w {
						t.Fatalf("op %d: head = %+v, want %+v", i, buf[0], model[0].w)
					}
					r.Release(1)
					if !r.Consumed(model[0].pos) {
						t.Fatalf("op %d: head position %d not consumed", i, model[0].pos)
					}
					model = model[1:]
				}
			}
		}
	})
}
