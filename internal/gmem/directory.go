package gmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MemberState is one kernel's standing in the elastic membership protocol.
type MemberState uint8

// Member states. Latent kernels are provisioned (transport attached, kernel
// serving) but own no global memory until they Join; Left kernels departed
// gracefully and handed their blocks off first; Dead kernels were declared
// down by the failure detector with no handoff.
const (
	MemberActive MemberState = iota
	MemberLatent
	MemberLeft
	MemberDead
)

func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberLatent:
		return "latent"
	case MemberLeft:
		return "left"
	case MemberDead:
		return "dead"
	}
	return fmt.Sprintf("MemberState(%d)", uint8(s))
}

// Member is one kernel's membership record.
type Member struct {
	State MemberState
	// Gen is the membership generation of the member's last transition
	// (last-writer-wins: a transition only applies if its generation is
	// newer than the one recorded here).
	Gen uint64
}

// dirState is one immutable generation of a Directory: readers load the
// pointer once and see a consistent members + overrides view; writers clone
// and swap under the Directory mutex.
type dirState struct {
	members   []Member
	overrides map[uint64]int // block index -> explicit home (from MigrateRange)
	epoch     uint64         // highest membership generation observed
}

// Directory maps global memory blocks to their current home under elastic
// membership. The default placement is the probe rule: block b is homed at
// the first Active member scanning forward (wrapping) from b % N — the
// block-cyclic layout of a static cluster degenerates to exactly HomeOf when
// every member is active, and a join or leave re-homes an unbounded address
// space by flipping one member's state instead of enumerating blocks.
// Explicit per-block overrides (installed by range migration, or learned
// from a NACK hint) take precedence over the probe rule.
//
// Every kernel (and its PEs) holds its own Directory; views converge through
// the OpEpochUpdate broadcast and lazily through NACK hints. Lookups are one
// atomic pointer load; a fully static directory (all members active, no
// overrides) additionally publishes a fast-path flag so the hot path pays a
// single predictable branch.
type Directory struct {
	n      int
	state  atomic.Pointer[dirState]
	static atomic.Bool
	mu     sync.Mutex // serialises writers
}

// NewDirectory creates a directory over n members. The trailing latent
// members start as MemberLatent (provisioned but owning nothing); the rest
// are Active. latent must leave member 0 active — kernel 0 hosts the
// synchronisation managers and the membership grant service.
func NewDirectory(n, latent int) *Directory {
	if n <= 0 {
		panic("gmem: directory needs at least one member")
	}
	if latent < 0 || latent >= n {
		panic(fmt.Sprintf("gmem: %d latent members of %d leaves no active member", latent, n))
	}
	d := &Directory{n: n}
	st := &dirState{members: make([]Member, n)}
	for i := n - latent; i < n; i++ {
		st.members[i].State = MemberLatent
	}
	d.state.Store(st)
	d.static.Store(latent == 0)
	return d
}

// Static reports whether the directory is degenerate — every member active,
// no overrides — so callers may use the pure block-cyclic Space.HomeOf.
func (d *Directory) Static() bool { return d.static.Load() }

// Epoch returns the highest membership generation observed.
func (d *Directory) Epoch() uint64 { return d.state.Load().epoch }

// N returns the member count (the Space's kernel count).
func (d *Directory) N() int { return d.n }

// Members returns a copy of the membership table.
func (d *Directory) Members() []Member {
	st := d.state.Load()
	out := make([]Member, len(st.members))
	copy(out, st.members)
	return out
}

// Member returns one member's record.
func (d *Directory) Member(id int) Member { return d.state.Load().members[id] }

// HomeOfBlock returns block b's current home.
func (d *Directory) HomeOfBlock(b uint64) int {
	st := d.state.Load()
	if h, ok := st.overrides[b]; ok {
		return h
	}
	return probeHome(st.members, d.n, b)
}

// probeHome applies the probe rule: first Active member scanning forward
// (wrapping) from b % n. With no active member at all it falls back to the
// static home so lookups stay total.
func probeHome(members []Member, n int, b uint64) int {
	h := int(b % uint64(n))
	for i := 0; i < n; i++ {
		if m := (h + i) % n; members[m].State == MemberActive {
			return m
		}
	}
	return h
}

// HomeOf returns the home of word address addr under space's block layout.
func (d *Directory) HomeOf(space Space, addr uint64) int {
	return d.HomeOfBlock(space.BlockOf(addr))
}

// Owns reports whether kernel self currently homes block b.
func (d *Directory) Owns(self int, b uint64) bool { return d.HomeOfBlock(b) == self }

// mutate clones the current state, applies fn, recomputes the fast-path
// flag and publishes the new generation.
func (d *Directory) mutate(fn func(st *dirState)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.state.Load()
	st := &dirState{
		members: append([]Member(nil), old.members...),
		epoch:   old.epoch,
	}
	if len(old.overrides) > 0 {
		st.overrides = make(map[uint64]int, len(old.overrides))
		for b, h := range old.overrides {
			st.overrides[b] = h
		}
	}
	fn(st)
	static := len(st.overrides) == 0
	for i := range st.members {
		if st.members[i].State != MemberActive {
			static = false
			break
		}
	}
	d.state.Store(st)
	d.static.Store(static)
}

// SetOverride pins block b's home to home, superseding the probe rule.
// Requesters also use it to cache a NACK's new-home hint.
func (d *Directory) SetOverride(b uint64, home int) {
	d.mutate(func(st *dirState) {
		if st.overrides == nil {
			st.overrides = make(map[uint64]int)
		}
		st.overrides[b] = home
	})
}

// SetOverrideRange pins n consecutive blocks starting at block b to home.
func (d *Directory) SetOverrideRange(b uint64, n int, home int) {
	d.mutate(func(st *dirState) {
		if st.overrides == nil {
			st.overrides = make(map[uint64]int)
		}
		for i := 0; i < n; i++ {
			st.overrides[b+uint64(i)] = home
		}
	})
}

// RewriteOverrides repoints every override targeting from at to — a leaving
// member redirects its explicitly-migrated blocks to its successor.
func (d *Directory) RewriteOverrides(from, to int) {
	d.mutate(func(st *dirState) {
		for b, h := range st.overrides {
			if h == from {
				st.overrides[b] = to
			}
		}
	})
}

// Overrides returns a copy of the override table (for snapshots).
func (d *Directory) Overrides() map[uint64]int {
	st := d.state.Load()
	if len(st.overrides) == 0 {
		return nil
	}
	out := make(map[uint64]int, len(st.overrides))
	for b, h := range st.overrides {
		out[b] = h
	}
	return out
}

// SetMember applies a membership transition if gen is newer than the
// member's recorded generation (last-writer-wins, so concurrent or replayed
// OpEpochUpdate broadcasts converge in any delivery order). It reports
// whether the transition applied.
func (d *Directory) SetMember(id int, state MemberState, gen uint64) bool {
	if id < 0 || id >= d.n {
		return false
	}
	applied := false
	d.mutate(func(st *dirState) {
		if gen <= st.members[id].Gen {
			return
		}
		st.members[id] = Member{State: state, Gen: gen}
		if gen > st.epoch {
			st.epoch = gen
		}
		applied = true
	})
	return applied
}

// Successor returns the first Active member after id (wrapping), excluding
// id itself — the handoff target of a leave and the prior holder of a
// joiner's blocks. ok is false when no other active member exists.
func (d *Directory) Successor(id int) (succ int, ok bool) {
	st := d.state.Load()
	for i := 1; i < d.n; i++ {
		m := (id + i) % d.n
		if st.members[m].State == MemberActive {
			return m, true
		}
	}
	return id, false
}
