// Namespaces: per-job partitions of the global address space for the
// dsesched multi-job scheduler (DESIGN.md §15).
//
// A namespace is a word region [Base, Limit) carved from the global space
// at block granularity. The scheduler carves one region per job from a
// RegionAllocator, binds it for every member PE at every kernel (NSRegistry,
// consulted by the kernel service path), and each member allocates inside
// the region through a bounded Allocator. Enforcement is kernel-side: a
// bound requester whose GM request touches memory outside its region is
// rejected with the typed OpNsNack, so two jobs can never read or write
// each other's blocks even if one forges addresses.
package gmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Region is a job's namespace: the word range [Base, Limit).
type Region struct {
	Base  uint64 // first word of the namespace
	Limit uint64 // one past the last word
}

// Contains reports whether the word range [addr, addr+n) lies entirely
// inside the region. n <= 0 degenerates to a single-word check, matching
// how per-op address scans clamp their counts.
func (r Region) Contains(addr uint64, n int) bool {
	if n < 1 {
		n = 1
	}
	return addr >= r.Base && addr+uint64(n) <= r.Limit && addr+uint64(n) >= addr
}

// Words returns the region's size in words.
func (r Region) Words() uint64 { return r.Limit - r.Base }

// QuotaError is the typed failure of a bounded allocation: the job asked
// for more global memory than its admission-time quota. It is delivered by
// panic from Alloc (matching the unbounded allocator's misuse panics) and
// recovered into a typed error by the PE runner.
type QuotaError struct {
	Region Region // the namespace the allocation ran against
	Need   uint64 // words requested
	Free   uint64 // words left in the region
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("gmem: allocation of %d words exceeds namespace quota [%d,%d) (%d words free)",
		e.Need, e.Region.Base, e.Region.Limit, e.Free)
}

// NewBoundedAllocator returns an allocator confined to region r: it starts
// at r.Base and panics with *QuotaError when an allocation would cross
// r.Limit. Every member of a job runs the same bounded sequence, so the
// SPMD no-coordination property holds inside the namespace too.
func NewBoundedAllocator(space Space, r Region) *Allocator {
	return &Allocator{space: space, next: r.Base, bound: r}
}

// Bound reports the allocator's namespace region; bounded=false for the
// classic whole-space allocator.
func (a *Allocator) Bound() (r Region, bounded bool) {
	return a.bound, a.bound.Limit != 0
}

// checkBound panics with *QuotaError if the pending allocation [a.next,
// a.next+n) escapes the bound. No-op for unbounded allocators.
func (a *Allocator) checkBound(n int) {
	if a.bound.Limit == 0 {
		return
	}
	if a.next+uint64(n) > a.bound.Limit {
		free := uint64(0)
		if a.bound.Limit > a.next {
			free = a.bound.Limit - a.next
		}
		panic(&QuotaError{Region: a.bound, Need: uint64(n), Free: free})
	}
}

// NSRegistry is one kernel's view of the namespace bindings: requester PE →
// Region. The serial serve loop installs and removes bindings (OpNsBind);
// shard workers look them up on every GM request, so the map is published
// copy-on-write behind an atomic pointer and lookups take no lock.
type NSRegistry struct {
	mu       sync.Mutex // serialises writers
	bindings atomic.Pointer[map[int]Region]
}

// NewNSRegistry returns an empty registry (no PE is bound; unbound PEs see
// the whole space, preserving single-job behaviour).
func NewNSRegistry() *NSRegistry {
	r := &NSRegistry{}
	empty := make(map[int]Region)
	r.bindings.Store(&empty)
	return r
}

// Bind installs (or replaces) pe's namespace.
func (nr *NSRegistry) Bind(pe int, region Region) {
	nr.mu.Lock()
	defer nr.mu.Unlock()
	old := *nr.bindings.Load()
	next := make(map[int]Region, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[pe] = region
	nr.bindings.Store(&next)
}

// Unbind removes pe's namespace, returning it to whole-space access.
func (nr *NSRegistry) Unbind(pe int) {
	nr.mu.Lock()
	defer nr.mu.Unlock()
	old := *nr.bindings.Load()
	if _, ok := old[pe]; !ok {
		return
	}
	next := make(map[int]Region, len(old))
	for k, v := range old {
		if k != pe {
			next[k] = v
		}
	}
	nr.bindings.Store(&next)
}

// Lookup returns pe's binding. ok=false means unbound: the PE may touch
// the whole space (kernels, and clusters not running the scheduler).
func (nr *NSRegistry) Lookup(pe int) (Region, bool) {
	r, ok := (*nr.bindings.Load())[pe]
	return r, ok
}

// Len reports how many PEs are currently bound — a teardown leak gauge.
func (nr *NSRegistry) Len() int { return len(*nr.bindings.Load()) }

// RegionAllocator carves job namespaces out of the global space at block
// granularity: a first-fit free list over [0, CapacityBlocks). It is the
// scheduler's single-threaded bookkeeping (guarded by its own mutex so the
// HTTP handlers can read usage gauges concurrently).
type RegionAllocator struct {
	mu       sync.Mutex
	space    Space
	capacity uint64     // total blocks
	free     []blockRun // sorted, coalesced free runs
	used     uint64     // blocks handed out
}

type blockRun struct {
	start uint64 // first block
	n     uint64 // run length in blocks
}

// NewRegionAllocator manages capacityBlocks blocks of the space.
func NewRegionAllocator(space Space, capacityBlocks uint64) *RegionAllocator {
	if capacityBlocks == 0 {
		panic("gmem: region allocator over empty space")
	}
	return &RegionAllocator{
		space:    space,
		capacity: capacityBlocks,
		free:     []blockRun{{start: 0, n: capacityBlocks}},
	}
}

// CapacityBlocks reports the total managed blocks.
func (ra *RegionAllocator) CapacityBlocks() uint64 { return ra.capacity }

// UsedBlocks reports the blocks currently carved out.
func (ra *RegionAllocator) UsedBlocks() uint64 {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.used
}

// Carve reserves nBlocks contiguous blocks first-fit and returns the word
// region covering them. ok=false when no free run is large enough — the
// admission-control signal, never a panic, since job specs are user input.
func (ra *RegionAllocator) Carve(nBlocks uint64) (Region, bool) {
	if nBlocks == 0 || nBlocks > ra.capacity {
		return Region{}, false
	}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	for i, run := range ra.free {
		if run.n < nBlocks {
			continue
		}
		start := run.start
		if run.n == nBlocks {
			ra.free = append(ra.free[:i], ra.free[i+1:]...)
		} else {
			ra.free[i] = blockRun{start: run.start + nBlocks, n: run.n - nBlocks}
		}
		ra.used += nBlocks
		bw := uint64(ra.space.BlockWords)
		return Region{Base: start * bw, Limit: (start + nBlocks) * bw}, true
	}
	return Region{}, false
}

// Release returns a carved region to the free list, coalescing with its
// neighbours. Releasing a region that was never carved (or twice) panics:
// that is scheduler state corruption, not user input.
func (ra *RegionAllocator) Release(r Region) {
	bw := uint64(ra.space.BlockWords)
	if r.Base%bw != 0 || r.Limit%bw != 0 || r.Limit <= r.Base {
		panic(fmt.Sprintf("gmem: release of non-block region [%d,%d)", r.Base, r.Limit))
	}
	start, n := r.Base/bw, (r.Limit-r.Base)/bw
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if start+n > ra.capacity || n > ra.used {
		panic(fmt.Sprintf("gmem: release of region [%d,%d) outside capacity", r.Base, r.Limit))
	}
	for _, run := range ra.free {
		if start < run.start+run.n && run.start < start+n {
			panic(fmt.Sprintf("gmem: double release of region [%d,%d)", r.Base, r.Limit))
		}
	}
	ra.free = append(ra.free, blockRun{start: start, n: n})
	sort.Slice(ra.free, func(i, j int) bool { return ra.free[i].start < ra.free[j].start })
	merged := ra.free[:1]
	for _, run := range ra.free[1:] {
		last := &merged[len(merged)-1]
		if last.start+last.n == run.start {
			last.n += run.n
		} else {
			merged = append(merged, run)
		}
	}
	ra.free = merged
	ra.used -= n
}

// DropRange removes every materialised block of this segment whose index
// lies in [firstBlock, firstBlock+nBlocks) and clears their copysets —
// namespace teardown, so a finished job's data does not leak to the next
// job carved into the same region. Each stripe is mutated under its mutex
// with a seqlock generation bump (a one-sided reader racing the drop
// retries, exactly like a migration extract). Returns the blocks dropped.
func (g *Segment) DropRange(firstBlock, nBlocks uint64) int {
	dropped := 0
	end := firstBlock + nBlocks
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		old := *st.blocks.Load()
		var victims []uint64
		for idx := range old {
			if idx >= firstBlock && idx < end {
				victims = append(victims, idx)
			}
		}
		if len(victims) > 0 {
			next := make(map[uint64][]int64, len(old))
			for k, v := range old {
				next[k] = v
			}
			for _, idx := range victims {
				delete(next, idx)
				delete(st.copyset, idx)
			}
			st.wseq.Add(1)
			st.blocks.Store(&next)
			st.wseq.Add(1)
			dropped += len(victims)
		}
		st.mu.Unlock()
	}
	return dropped
}

// CountRange reports how many blocks of [firstBlock, firstBlock+nBlocks)
// are materialised in this segment — the teardown leak gauge: after a job's
// namespace is freed the count over its region must be zero.
func (g *Segment) CountRange(firstBlock, nBlocks uint64) int {
	count := 0
	end := firstBlock + nBlocks
	for i := range g.stripes {
		st := &g.stripes[i]
		for idx := range *st.blocks.Load() {
			if idx >= firstBlock && idx < end {
				count++
			}
		}
	}
	return count
}
