package gmem

import (
	"math"
	"testing"
	"testing/quick"
)

// F2W/W2F must be bit-exact, not merely value-preserving: reduction
// payloads travel through global memory as words, and a conversion that
// canonicalises NaNs or drops the sign of zero would corrupt them
// silently. Checked over every special value and all 2^64 bit patterns by
// property.
func TestFloatWordBitExact(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1),
		math.Inf(1), math.Inf(-1),
		math.NaN(),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, // denormals
		1.0 / 3.0, -math.Pi,
	}
	for _, x := range specials {
		bits := math.Float64bits(x)
		if got := uint64(F2W(x)); got != bits {
			t.Errorf("F2W(%v) = %#x, want bits %#x", x, got, bits)
		}
		if got := math.Float64bits(W2F(F2W(x))); got != bits {
			t.Errorf("W2F(F2W(%v)) changed bits: %#x -> %#x", x, bits, got)
		}
	}
	// NaN payload bits (signalling vs quiet, sign, mantissa) must survive:
	// quick-check the conversion on raw bit patterns, which reaches every
	// NaN encoding no float64 generator would produce.
	f := func(bits uint64) bool {
		w := int64(bits)
		return F2W(W2F(w)) == w && math.Float64bits(W2F(w)) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Block-cyclic placement round-trip: block b lives at home b mod N as the
// (b div N)-th block of that home, and (home, ordinal) reconstructs b.
func TestBlockCyclicMappingRoundTrip(t *testing.T) {
	f := func(nRaw, bwRaw uint8, blockRaw uint16) bool {
		s := NewSpace(int(nRaw%8)+1, int(bwRaw%32)+1)
		b := uint64(blockRaw)
		base := b * uint64(s.BlockWords)
		home := s.HomeOf(base)
		if home != int(b%uint64(s.N)) {
			return false
		}
		// Every word of the block maps to the same (home, block).
		for off := 0; off < s.BlockWords; off++ {
			addr := base + uint64(off)
			if s.HomeOf(addr) != home || s.BlockOf(addr) != b {
				return false
			}
		}
		// Consecutive blocks cycle through homes in order.
		if next := s.HomeOf(base + uint64(s.BlockWords)); next != (home+1)%s.N {
			return false
		}
		// Inverse: the ordinal-at-home decomposition reconstructs b.
		ordinal := b / uint64(s.N)
		return ordinal*uint64(s.N)+uint64(home) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Allocator boundary behaviour: regions from any interleaving of Alloc and
// AllocBlocks are pairwise disjoint, block allocations are aligned and
// never skip a boundary the cursor already sits on, and Used() is exact.
func TestAllocatorRegionsDisjointProperty(t *testing.T) {
	f := func(bwRaw uint8, sizes []uint8, blockAligned []bool) bool {
		s := NewSpace(3, int(bwRaw%16)+1)
		a := NewAllocator(s)
		bw := uint64(s.BlockWords)
		type region struct{ base, end uint64 }
		var regions []region
		for i, szRaw := range sizes {
			n := int(szRaw%40) + 1
			var base uint64
			if i < len(blockAligned) && blockAligned[i] {
				wasAligned := a.Used()%bw == 0
				before := a.Used()
				base = a.AllocBlocks(n)
				if base%bw != 0 {
					return false
				}
				if wasAligned && base != before {
					return false // cursor already on a boundary: no padding
				}
			} else {
				base = a.Alloc(n)
			}
			regions = append(regions, region{base, base + uint64(n)})
		}
		for i := 1; i < len(regions); i++ {
			if regions[i].base < regions[i-1].end {
				return false // overlap
			}
		}
		if len(regions) > 0 && a.Used() != regions[len(regions)-1].end {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%d) did not panic", n)
				}
			}()
			NewAllocator(NewSpace(2, 8)).Alloc(n)
		}()
	}
}
