package gmem

import "sort"

// WCBuf is the per-PE write-combining buffer behind release consistency
// (ModeRelease): writes to release-mode allocations land here instead of
// travelling to the home, and a synchronisation edge drains the buffer into
// one coalesced flush per home. Same-word writes coalesce last-writer-wins;
// the drain order is sorted by address, so a flush is a deterministic
// function of the buffered set regardless of write order or map iteration.
//
// A WCBuf belongs to one PE goroutine and is not safe for concurrent use —
// the same single-writer contract as the PE's cache.
type WCBuf struct {
	words map[uint64]int64
	// order is the scratch reused by Drain between flushes.
	order []uint64
}

// NewWCBuf returns an empty buffer.
func NewWCBuf() *WCBuf {
	return &WCBuf{words: make(map[uint64]int64)}
}

// Put buffers a write of val to word addr, overwriting any buffered value
// (last writer wins per word).
func (b *WCBuf) Put(addr uint64, val int64) {
	b.words[addr] = val
}

// Lookup reports the buffered value for addr, if any — the read-your-writes
// overlay for release-mode reads between synchronisation edges.
func (b *WCBuf) Lookup(addr uint64) (int64, bool) {
	v, ok := b.words[addr]
	return v, ok
}

// Len reports how many distinct words are buffered.
func (b *WCBuf) Len() int { return len(b.words) }

// Drain calls fn for every buffered word in ascending address order and
// empties the buffer. Adjacent addresses arrive adjacently, so the caller
// can coalesce them into write runs with a single comparison per word.
func (b *WCBuf) Drain(fn func(addr uint64, val int64)) {
	if len(b.words) == 0 {
		return
	}
	b.order = b.order[:0]
	for a := range b.words {
		b.order = append(b.order, a)
	}
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	for _, a := range b.order {
		fn(a, b.words[a])
	}
	clear(b.words)
}

// Discard empties the buffer without draining it. Used when the buffered
// words' homes are gone for good (and by the TEST-ONLY skipped-flush fault).
func (b *WCBuf) Discard() {
	clear(b.words)
}
