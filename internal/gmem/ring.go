package gmem

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// RingWrite is one single-word write submitted through a SubmitRing: the
// payload of a slot. Seq comes from the requester kernel's request-id
// counter, so ring writes share the exactly-once sequence space with the
// message path — the home shard records (Src, Seq) in the same dedup window
// a retried OpWrite would hit, and the write is applied exactly once even if
// both paths race.
type RingWrite struct {
	Addr uint64
	Val  int64
	Seq  uint64
	Src  int32
}

// SubmitRing is a bounded multi-producer single-consumer ring of RingWrite
// slots: the one-sided write fast path between co-located PEs and the home
// kernel's service shard. Producers claim a slot with one CAS on tail,
// fill the payload, and publish it with a single atomic store of the slot's
// state word; the shard's servicing goroutine drains published slots in
// batches between message dispatches.
//
// The state word of slot i follows the bounded-MPMC sequence discipline,
// restricted here to one consumer: it holds pos when the slot is free for
// the producer claiming position pos, pos+1 once that producer published,
// and pos+size once the consumer has applied the write and recycled the
// slot. All comparisons are modular (state - pos), so the ring keeps
// working when positions wrap around uint64.
type SubmitRing struct {
	slots []ringSlot
	mask  uint64
	size  uint64
	tail  atomic.Uint64 // next position a producer will claim
	head  uint64        // next position the consumer will inspect; consumer-only
}

type ringSlot struct {
	state atomic.Uint64
	// Payload: written by the claiming producer before the state publish,
	// read by the consumer after observing it. The state word's
	// release/acquire pair orders the plain accesses.
	addr uint64
	val  int64
	seq  uint64
	src  int32
}

// NewSubmitRing builds a ring with n slots; n must be a power of two.
func NewSubmitRing(n int) *SubmitRing {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("gmem: ring size %d is not a power of two", n))
	}
	return newSubmitRingAt(n, 0)
}

// newSubmitRingAt starts the ring's positions at start instead of 0 — a
// test hook so wraparound behaviour near the top of uint64 is reachable.
func newSubmitRingAt(n int, start uint64) *SubmitRing {
	r := &SubmitRing{slots: make([]ringSlot, n), mask: uint64(n) - 1, size: uint64(n)}
	// Slot (start+k)&mask is the one position start+k claims, so that is the
	// slot whose state must read start+k (indexing slots[k] directly is only
	// equivalent when start is a multiple of n).
	for k := 0; k < n; k++ {
		pos := start + uint64(k)
		r.slots[pos&r.mask].state.Store(pos)
	}
	r.tail.Store(start)
	r.head = start
	return r
}

// Push claims a slot, fills it with w, and publishes it. It returns the
// claimed position (for AwaitConsumed) and ok=false without side effects
// when the ring is full — the caller falls back to the message path with a
// fresh sequence, so a rejected push can never be half-applied.
func (r *SubmitRing) Push(w RingWrite) (pos uint64, ok bool) {
	for {
		pos = r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch diff := int64(s.state.Load() - pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.addr, s.val, s.seq, s.src = w.Addr, w.Val, w.Seq, w.Src
				s.state.Store(pos + 1) // publish: the single atomic store
				return pos, true
			}
		case diff < 0:
			return 0, false // slot not yet recycled: ring full
		default:
			// Another producer claimed pos between our two loads; retry.
		}
	}
}

// Drain copies up to len(buf) published slots into buf, in submission
// order, WITHOUT recycling them: the slots stay claimed until Release, so a
// producer spinning in AwaitConsumed only proceeds once the consumer has
// actually applied its write. Consumer-side only.
func (r *SubmitRing) Drain(buf []RingWrite) int {
	n := 0
	for n < len(buf) {
		pos := r.head + uint64(n)
		s := &r.slots[pos&r.mask]
		if s.state.Load() != pos+1 {
			break
		}
		buf[n] = RingWrite{Addr: s.addr, Val: s.val, Seq: s.seq, Src: s.src}
		n++
	}
	return n
}

// Release recycles the first n drained slots, advancing head and waking any
// producer blocked in AwaitConsumed on them. Call only after the drained
// writes have been applied (and their dedup entries completed): the state
// store is the release edge a waiting producer's acquire load pairs with.
func (r *SubmitRing) Release(n int) {
	for i := 0; i < n; i++ {
		s := &r.slots[r.head&r.mask]
		s.state.Store(r.head + r.size)
		r.head++
	}
}

// AwaitConsumed spins until the write published at pos has been applied by
// the consumer. The producer side of the one-sided write's completion: a
// GMWrite may not return before its store is globally visible, or a
// subsequent read by the same PE could miss its own write.
func (r *SubmitRing) AwaitConsumed(pos uint64) {
	s := &r.slots[pos&r.mask]
	for i := 0; ; i++ {
		if s.state.Load()-pos >= r.size {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Consumed reports whether the write published at pos has been applied.
func (r *SubmitRing) Consumed(pos uint64) bool {
	return r.slots[pos&r.mask].state.Load()-pos >= r.size
}

// Pending reports how many published-but-unreleased slots the ring holds.
// Consumer-side only (it reads head without synchronisation).
func (r *SubmitRing) Pending() int {
	n := 0
	for uint64(n) < r.size {
		pos := r.head + uint64(n)
		if r.slots[pos&r.mask].state.Load() != pos+1 {
			break
		}
		n++
	}
	return n
}

// ApplyWrites applies a drained batch to the segment under the stripe
// seqlock protocol: consecutive writes to the same block share one mutex
// hold and one wseq window, and the window is capped at a single block so a
// DirectRead's mutex fallback can never starve behind a long batch (the
// same per-block cap Write applies to vectored runs). Word stores are
// atomic, so concurrent DirectReads stay torn-free.
func (g *Segment) ApplyWrites(ops []RingWrite) {
	bw := uint64(g.space.BlockWords)
	for i := 0; i < len(ops); {
		g.checkHome(ops[i].Addr, 1)
		b := g.space.BlockOf(ops[i].Addr)
		j := i + 1
		for j < len(ops) && g.space.BlockOf(ops[j].Addr) == b {
			j++
		}
		st := g.stripeOf(b)
		st.mu.Lock()
		blk := st.materialise(b, g.space.BlockWords)
		st.wseq.Add(1)
		for _, op := range ops[i:j] {
			atomic.StoreInt64(&blk[op.Addr%bw], op.Val)
		}
		st.wseq.Add(1)
		st.mu.Unlock()
		i = j
	}
}
