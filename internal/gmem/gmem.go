// Package gmem implements the DSE global memory management module: a
// global address space of 64-bit words distributed block-cyclically over
// the DSE kernels (paper Fig. 1 — each PE contributes a Global Memory
// slice; the union forms the Distributed Shared Memory).
//
// Each kernel owns a Segment holding the blocks homed at it, serves
// read/write/atomic requests against it, and (when the caching protocol is
// enabled) keeps a per-block directory of remote readers to invalidate on
// writes. Address-space layout (Space) and allocation (Allocator) are pure
// and deterministic so every PE in an SPMD program computes identical
// addresses without coordination.
package gmem

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Space describes the distributed global address space.
type Space struct {
	N          int // kernels sharing the space
	BlockWords int // words per block (home-placement and caching granularity)
}

// DefaultBlockWords is the default block size: 32 words = 256 bytes.
const DefaultBlockWords = 32

// NewSpace validates and returns a Space.
func NewSpace(n, blockWords int) Space {
	if n <= 0 {
		panic("gmem: space needs at least one kernel")
	}
	if blockWords <= 0 {
		blockWords = DefaultBlockWords
	}
	return Space{N: n, BlockWords: blockWords}
}

// BlockOf returns the block index containing word address addr.
func (s Space) BlockOf(addr uint64) uint64 { return addr / uint64(s.BlockWords) }

// HomeOf returns the kernel that homes word address addr.
func (s Space) HomeOf(addr uint64) int { return int(s.BlockOf(addr) % uint64(s.N)) }

// ShardOf returns the home-side service shard responsible for addr when the
// home kernel runs nshards shards. The mapping hashes the kernel-local block
// sequence number (BlockOf/N), so blocks homed at one kernel spread evenly
// over its shards and every address of one block lands on one shard.
// nshards <= 1 collapses to shard 0.
func (s Space) ShardOf(addr uint64, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	return int((s.BlockOf(addr) / uint64(s.N)) % uint64(nshards))
}

// HomeRuns splits the word range [addr, addr+n) into maximal sub-ranges
// with a single home each, calling fn(home, start, count) for every run in
// ascending address order.
func (s Space) HomeRuns(addr uint64, n int, fn func(home int, start uint64, count int)) {
	for n > 0 {
		home := s.HomeOf(addr)
		blockEnd := (s.BlockOf(addr) + 1) * uint64(s.BlockWords)
		count := int(blockEnd - addr)
		if count > n {
			count = n
		}
		fn(home, addr, count)
		addr += uint64(count)
		n -= count
	}
}

// Allocator hands out global addresses deterministically. Every PE of an
// SPMD program runs the same allocation sequence and therefore computes the
// same addresses with no messages exchanged.
type Allocator struct {
	space Space
	next  uint64
	// bound, when Limit != 0, confines the allocator to a job namespace
	// (see ns.go): allocations past bound.Limit panic with *QuotaError.
	bound Region
}

// NewAllocator starts allocating at address 0.
func NewAllocator(space Space) *Allocator { return &Allocator{space: space} }

// Alloc reserves n words and returns the base address of the region.
func (a *Allocator) Alloc(n int) uint64 {
	if n <= 0 {
		panic("gmem: Alloc of non-positive size")
	}
	a.checkBound(n)
	base := a.next
	a.next += uint64(n)
	return base
}

// AllocBlocks reserves n words aligned to a block boundary, so the region
// starts at a fresh home. Useful to spread independent structures evenly.
func (a *Allocator) AllocBlocks(n int) uint64 {
	bw := uint64(a.space.BlockWords)
	if rem := a.next % bw; rem != 0 {
		a.next += bw - rem
	}
	return a.Alloc(n)
}

// Used reports the number of words allocated so far.
func (a *Allocator) Used() uint64 { return a.next }

// SegStripes is the number of lock stripes per Segment. Stripe choice hashes
// the kernel-local block sequence number, the same quantity Space.ShardOf
// hashes, so for any power-of-two shard count up to SegStripes each service
// shard owns a disjoint set of stripes and shard workers never contend on a
// stripe mutex.
const SegStripes = 16

// stripe is one lock stripe of a Segment: a slice of the homed blocks with
// its own mutex, a seqlock write generation, and a copy-on-write block map
// so lock-free direct readers can traverse it while writers publish.
type stripe struct {
	mu sync.Mutex
	// wseq is the stripe's seqlock generation: incremented to odd before a
	// writer mutates any stored word and back to even after. Direct readers
	// retry while it is odd or has moved between their two loads.
	wseq atomic.Uint64
	// blocks is the published block map. The map pointed to is immutable:
	// adding a block clones the map and swaps the pointer (word slices are
	// shared between generations and mutated in place via atomic stores).
	blocks atomic.Pointer[map[uint64][]int64]
	// copyset maps a homed block to the kernels caching it (directory for
	// the invalidation protocol; unused when caching is off). Guarded by mu.
	copyset map[uint64]map[int]struct{}
}

// Segment is the slice of global memory homed at one kernel, plus the
// caching directory. It is striped SegStripes ways so independent service
// shards of one kernel mutate disjoint stripes, and it supports a lock-free
// single-word DirectRead for co-located readers (the one-sided read fast
// path). Methods are safe for concurrent use.
type Segment struct {
	space   Space
	self    int
	stripes [SegStripes]stripe
	// dir, when set, replaces the static block-cyclic ownership rule with
	// the elastic membership directory: checkHome and Import validate
	// against it, and Extract/Adopt move blocks between segments as homes
	// migrate. Nil keeps the static Space.HomeOf rule.
	dir *Directory
	// fallbacks counts DirectReads that exhausted their seqlock spins and
	// took the stripe mutex instead (writer livelock). Observable so tests
	// can assert the fallback path is actually exercised.
	fallbacks atomic.Uint64
}

// SetDirectory installs the elastic membership directory ownership rule.
// Call before the segment serves traffic.
func (g *Segment) SetDirectory(d *Directory) { g.dir = d }

// owns reports whether this segment currently homes block b.
func (g *Segment) owns(b uint64) bool {
	if g.dir != nil {
		return g.dir.Owns(g.self, b)
	}
	return g.space.HomeOf(b*uint64(g.space.BlockWords)) == g.self
}

// NewSegment creates kernel self's (initially zero-filled) segment.
func NewSegment(space Space, self int) *Segment {
	if self < 0 || self >= space.N {
		panic(fmt.Sprintf("gmem: kernel %d outside space of %d", self, space.N))
	}
	g := &Segment{space: space, self: self}
	for i := range g.stripes {
		m := make(map[uint64][]int64)
		g.stripes[i].blocks.Store(&m)
		g.stripes[i].copyset = make(map[uint64]map[int]struct{})
	}
	return g
}

// stripeOf returns the stripe owning block b. The divide by N converts the
// global block index into this kernel's local block sequence number so that
// consecutive homed blocks round-robin over stripes (and over shards, which
// use the same mapping).
func (g *Segment) stripeOf(b uint64) *stripe {
	return &g.stripes[(b/uint64(g.space.N))%SegStripes]
}

// lookup returns block b's storage or nil without materialising it. Safe
// with or without the stripe mutex: the published map is immutable.
func (st *stripe) lookup(b uint64) []int64 { return (*st.blocks.Load())[b] }

// materialise returns block b's storage, publishing a fresh zero block via
// map copy-on-write if absent. Caller holds st.mu. Publishing needs no
// seqlock window: a direct reader sees either the old map (word reads as 0)
// or the new one (zero block, reads as 0).
func (st *stripe) materialise(b uint64, blockWords int) []int64 {
	old := *st.blocks.Load()
	if blk := old[b]; blk != nil {
		return blk
	}
	blk := make([]int64, blockWords)
	next := make(map[uint64][]int64, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[b] = blk
	st.blocks.Store(&next)
	return blk
}

// checkHome panics if [addr, addr+n) is not entirely homed here.
func (g *Segment) checkHome(addr uint64, n int) {
	b0 := g.space.BlockOf(addr)
	b1 := g.space.BlockOf(addr + uint64(n) - 1)
	if b0 != b1 {
		panic(fmt.Sprintf("gmem: range [%d,+%d) spans blocks; split by HomeRuns first", addr, n))
	}
	if !g.owns(b0) {
		panic(fmt.Sprintf("gmem: address %d not homed at %d", addr, g.self))
	}
}

// Read copies n words starting at addr (all homed here, single block).
func (g *Segment) Read(addr uint64, n int) []int64 {
	g.checkHome(addr, n)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	out := make([]int64, n)
	st.mu.Lock()
	if blk := st.lookup(b); blk != nil {
		off := int(addr % uint64(g.space.BlockWords))
		copy(out, blk[off:off+n])
	}
	st.mu.Unlock()
	return out
}

// ReadWord returns the single word at addr without allocating.
func (g *Segment) ReadWord(addr uint64) int64 {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	var v int64
	st.mu.Lock()
	if blk := st.lookup(b); blk != nil {
		v = blk[addr%uint64(g.space.BlockWords)]
	}
	st.mu.Unlock()
	return v
}

// DirectRead returns the single word at addr without taking the stripe
// mutex: the one-sided read fast path for co-located PEs. It is seqlock
// validated — the read retries while a writer's mutation window is open or
// the stripe generation moved between its two loads — so it never returns a
// torn or mid-invalidation-round value that a served OpRead could not also
// have returned. Falls back to the stripe mutex under writer livelock.
func (g *Segment) DirectRead(addr uint64) int64 {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	off := int(addr % uint64(g.space.BlockWords))
	for spin := 0; spin < 64; spin++ {
		s1 := st.wseq.Load()
		if s1&1 != 0 {
			continue
		}
		var v int64
		if blk := st.lookup(b); blk != nil {
			v = atomic.LoadInt64(&blk[off])
		}
		if st.wseq.Load() == s1 {
			return v
		}
	}
	g.fallbacks.Add(1)
	var v int64
	st.mu.Lock()
	if blk := st.lookup(b); blk != nil {
		v = blk[off]
	}
	st.mu.Unlock()
	return v
}

// DirectReadFallbacks reports how many DirectReads fell back to the stripe
// mutex after exhausting their seqlock spins.
func (g *Segment) DirectReadFallbacks() uint64 { return g.fallbacks.Load() }

// DirectReadOwned is DirectRead for elastic clusters: instead of panicking
// on a non-owned address it reports ok=false, telling the caller to fall
// back to the message path (which the current owner will serve, or NACK
// with a fresh hint). Ownership is validated inside the seqlock window:
// Extract bumps the stripe generation when it removes migrated blocks, so a
// reader racing a migration either returns the pre-migration value while it
// is still globally current, or fails validation, rechecks ownership and
// falls back — it can never return a stale zero from a dropped block.
func (g *Segment) DirectReadOwned(addr uint64) (int64, bool) {
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	off := int(addr % uint64(g.space.BlockWords))
	for spin := 0; spin < 64; spin++ {
		s1 := st.wseq.Load()
		if s1&1 != 0 {
			continue
		}
		if !g.owns(b) {
			return 0, false
		}
		var v int64
		if blk := st.lookup(b); blk != nil {
			v = atomic.LoadInt64(&blk[off])
		}
		if st.wseq.Load() == s1 {
			return v, true
		}
	}
	g.fallbacks.Add(1)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !g.owns(b) {
		return 0, false
	}
	var v int64
	if blk := st.lookup(b); blk != nil {
		v = blk[off]
	}
	return v, true
}

// Extract atomically snapshots and removes every materialised block for
// which flips returns true — the holder's side of a home migration. Each
// stripe is mutated under its mutex with a seqlock generation bump, so
// one-sided readers racing the removal retry instead of reading a dropped
// block. The caller must already have repointed ownership (directory
// update) and fenced in-flight service before extracting, so no writer can
// materialise a removed block afterwards.
func (g *Segment) Extract(flips func(b uint64) bool) []BlockSnapshot {
	var out []BlockSnapshot
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		old := *st.blocks.Load()
		var victims []uint64
		for idx := range old {
			if flips(idx) {
				victims = append(victims, idx)
			}
		}
		if len(victims) > 0 {
			next := make(map[uint64][]int64, len(old))
			for k, v := range old {
				next[k] = v
			}
			for _, idx := range victims {
				blk := next[idx]
				bs := BlockSnapshot{Index: idx, Words: make([]int64, len(blk))}
				copy(bs.Words, blk)
				for k := range st.copyset[idx] {
					bs.Copyset = append(bs.Copyset, k)
				}
				sort.Ints(bs.Copyset)
				out = append(out, bs)
				delete(next, idx)
				delete(st.copyset, idx)
			}
			st.wseq.Add(1)
			st.blocks.Store(&next)
			st.wseq.Add(1)
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Has reports whether block b is materialised in this segment. Used by the
// migration installer to skip blocks already adopted (a late escrow re-offer
// must not clobber writes applied since the first install).
func (g *Segment) Has(b uint64) bool { return g.stripeOf(b).lookup(b) != nil }

// Adopt installs migrated blocks into this segment, overwriting any prior
// storage for them — the new home's side of a migration. It deliberately
// does not validate ownership: the adopter installs the data BEFORE
// flipping its directory (so no redirected write can land on a zero block
// and then be clobbered by the adopted payload), at which point its
// directory still names the old home.
func (g *Segment) Adopt(blocks []BlockSnapshot) error {
	for _, b := range blocks {
		if len(b.Words) != g.space.BlockWords {
			return fmt.Errorf("gmem: adopt: block %d has %d words, segment block size is %d",
				b.Index, len(b.Words), g.space.BlockWords)
		}
	}
	for _, b := range blocks {
		st := g.stripeOf(b.Index)
		words := make([]int64, len(b.Words))
		copy(words, b.Words)
		st.mu.Lock()
		old := *st.blocks.Load()
		next := make(map[uint64][]int64, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[b.Index] = words
		if len(b.Copyset) > 0 {
			cs := make(map[int]struct{}, len(b.Copyset))
			for _, k := range b.Copyset {
				cs[k] = struct{}{}
			}
			st.copyset[b.Index] = cs
		} else {
			delete(st.copyset, b.Index)
		}
		st.wseq.Add(1)
		st.blocks.Store(&next)
		st.wseq.Add(1)
		st.mu.Unlock()
	}
	return nil
}

// WriteWord stores a single word at addr without allocating (after the
// block's first write).
func (g *Segment) WriteWord(addr uint64, v int64) {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	blk := st.materialise(b, g.space.BlockWords)
	st.wseq.Add(1)
	atomic.StoreInt64(&blk[addr%uint64(g.space.BlockWords)], v)
	st.wseq.Add(1)
	st.mu.Unlock()
}

// ReadInto copies len(dst) words starting at addr into dst (all homed here,
// single block), avoiding the allocation in Read.
func (g *Segment) ReadInto(dst []int64, addr uint64) {
	g.checkHome(addr, len(dst))
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	if blk := st.lookup(b); blk != nil {
		off := int(addr % uint64(g.space.BlockWords))
		copy(dst, blk[off:off+len(dst)])
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	st.mu.Unlock()
}

// ReadAppend appends n words starting at addr to dst and returns the
// extended slice (all homed here, single block).
func (g *Segment) ReadAppend(dst []int64, addr uint64, n int) []int64 {
	g.checkHome(addr, n)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	if blk := st.lookup(b); blk != nil {
		off := int(addr % uint64(g.space.BlockWords))
		dst = append(dst, blk[off:off+n]...)
	} else {
		for i := 0; i < n; i++ {
			dst = append(dst, 0)
		}
	}
	st.mu.Unlock()
	return dst
}

// ReadV appends the words of every (addrs[i], counts[i]) range to dst in
// order and returns the extended slice. Each range must be homed here and
// stay within one block (the vectored read request's server side).
func (g *Segment) ReadV(dst []int64, addrs []uint64, counts []int) []int64 {
	for i, addr := range addrs {
		dst = g.ReadAppend(dst, addr, counts[i])
	}
	return dst
}

// WriteV scatters words over the (addrs[i], counts[i]) ranges in order;
// words is the concatenation of all ranges' data (the vectored write
// request's server side). Each run is applied per-block through Write's
// capped seqlock windows — never one odd window for the whole vector — so
// direct readers queued on a stripe mutex get through between runs.
func (g *Segment) WriteV(addrs []uint64, counts []int, words []int64) {
	off := 0
	for i, addr := range addrs {
		g.Write(addr, words[off:off+counts[i]])
		off += counts[i]
	}
}

// writeWindowWords caps the words stored under one stripe mutex hold and
// one seqlock window. A vectored write used to apply each run under a
// single odd window; with large block sizes that held the stripe long
// enough to starve a DirectRead that had already burned its seqlock spins
// and was queued on the mutex. Chunking bounds every critical section —
// per-word visibility is the consistency unit (runs span homes anyway), so
// a reader observing a half-applied run between chunks is no new behaviour.
const writeWindowWords = 32

// Write stores words starting at addr (all homed here, single block). The
// stripe is locked and the seqlock window held for at most writeWindowWords
// stores at a time.
func (g *Segment) Write(addr uint64, words []int64) {
	g.checkHome(addr, len(words))
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	off := int(addr % uint64(g.space.BlockWords))
	for start := 0; start == 0 || start < len(words); start += writeWindowWords {
		chunk := words[start:]
		if len(chunk) > writeWindowWords {
			chunk = chunk[:writeWindowWords]
		}
		st.mu.Lock()
		blk := st.materialise(b, g.space.BlockWords)
		st.wseq.Add(1)
		for i, v := range chunk {
			atomic.StoreInt64(&blk[off+start+i], v)
		}
		st.wseq.Add(1)
		st.mu.Unlock()
	}
}

// FetchAdd atomically adds delta to the word at addr, returning the
// previous value.
func (g *Segment) FetchAdd(addr uint64, delta int64) int64 {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	blk := st.materialise(b, g.space.BlockWords)
	off := int(addr % uint64(g.space.BlockWords))
	old := blk[off]
	st.wseq.Add(1)
	atomic.StoreInt64(&blk[off], old+delta)
	st.wseq.Add(1)
	st.mu.Unlock()
	return old
}

// CAS atomically compares-and-swaps the word at addr. It returns the
// previous value and whether the swap happened.
func (g *Segment) CAS(addr uint64, old, new int64) (prev int64, swapped bool) {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	blk := st.materialise(b, g.space.BlockWords)
	off := int(addr % uint64(g.space.BlockWords))
	prev = blk[off]
	if prev == old {
		st.wseq.Add(1)
		atomic.StoreInt64(&blk[off], new)
		st.wseq.Add(1)
		st.mu.Unlock()
		return prev, true
	}
	st.mu.Unlock()
	return prev, false
}

// ReadBlockFor returns a copy of the whole block containing addr and
// records reader in the block's copyset (the caching protocol's read miss).
// The block is materialised so the directory entry survives Export.
func (g *Segment) ReadBlockFor(addr uint64, reader int) []int64 {
	g.checkHome(addr, 1)
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	blk := st.materialise(b, g.space.BlockWords)
	out := make([]int64, len(blk))
	copy(out, blk)
	if reader != g.self {
		cs := st.copyset[b]
		if cs == nil {
			cs = make(map[int]struct{})
			st.copyset[b] = cs
		}
		cs[reader] = struct{}{}
	}
	st.mu.Unlock()
	return out
}

// WriteInvalidating performs a write and returns the kernels whose cached
// copies of the touched block must be invalidated (the writer is excluded:
// its copy is refreshed by the caller). The copyset is cleared.
func (g *Segment) WriteInvalidating(addr uint64, words []int64, writer int) []int {
	g.Write(addr, words)
	return g.CollectInvalidations(addr, writer)
}

// CollectInvalidations clears the copyset of the block containing addr and
// returns its members except writer, sorted for determinism. Used after any
// mutation (write, fetch-add, CAS) under the caching protocol.
func (g *Segment) CollectInvalidations(addr uint64, writer int) []int {
	b := g.space.BlockOf(addr)
	st := g.stripeOf(b)
	st.mu.Lock()
	defer st.mu.Unlock()
	cs := st.copyset[b]
	if len(cs) == 0 {
		return nil
	}
	targets := make([]int, 0, len(cs))
	for k := range cs {
		if k != writer {
			targets = append(targets, k)
		}
	}
	delete(st.copyset, b)
	// Insertion sort: copysets are tiny and map iteration order is random.
	for i := 1; i < len(targets); i++ {
		for j := i; j > 0 && targets[j] < targets[j-1]; j-- {
			targets[j], targets[j-1] = targets[j-1], targets[j]
		}
	}
	return targets
}

// Copyset reports the kernels currently caching block b (for tests).
func (g *Segment) Copyset(b uint64) []int {
	st := g.stripeOf(b)
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []int
	for k := range st.copyset[b] {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BlockSnapshot is one homed block's state for checkpointing: the stored
// words plus the coherence directory entry (which kernels cache the block).
type BlockSnapshot struct {
	Index   uint64  // block index (addr / BlockWords)
	Words   []int64 // BlockWords values
	Copyset []int   // caching kernels, sorted
}

// Export snapshots every materialised block of this segment, sorted by block
// index — the kernel's slice of the coordinated checkpoint. The returned
// words are copies; the segment may keep mutating afterwards. Each stripe is
// snapshotted under its own mutex; cross-stripe atomicity is the caller's
// concern (the kernel fences all service shards before exporting).
func (g *Segment) Export() []BlockSnapshot {
	var out []BlockSnapshot
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		for idx, blk := range *st.blocks.Load() {
			bs := BlockSnapshot{Index: idx, Words: make([]int64, len(blk))}
			copy(bs.Words, blk)
			for k := range st.copyset[idx] {
				bs.Copyset = append(bs.Copyset, k)
			}
			for i := 1; i < len(bs.Copyset); i++ {
				for j := i; j > 0 && bs.Copyset[j] < bs.Copyset[j-1]; j-- {
					bs.Copyset[j], bs.Copyset[j-1] = bs.Copyset[j-1], bs.Copyset[j]
				}
			}
			out = append(out, bs)
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Import replaces this segment's contents with a snapshot taken by Export —
// restart-time restore. Blocks not homed here, or whose word count does not
// match the block size, are rejected so a snapshot from a different cluster
// geometry cannot be silently misapplied.
func (g *Segment) Import(blocks []BlockSnapshot) error {
	for _, b := range blocks {
		if len(b.Words) != g.space.BlockWords {
			return fmt.Errorf("gmem: import: block %d has %d words, segment block size is %d",
				b.Index, len(b.Words), g.space.BlockWords)
		}
		if !g.owns(b.Index) {
			return fmt.Errorf("gmem: import: block %d not homed at %d", b.Index, g.self)
		}
	}
	// Build each stripe's replacement maps fully before publishing, so a
	// concurrent direct reader only ever sees a complete generation.
	maps := make([]map[uint64][]int64, SegStripes)
	csets := make([]map[uint64]map[int]struct{}, SegStripes)
	for i := range maps {
		maps[i] = make(map[uint64][]int64)
		csets[i] = make(map[uint64]map[int]struct{})
	}
	for _, b := range blocks {
		si := (b.Index / uint64(g.space.N)) % SegStripes
		words := make([]int64, len(b.Words))
		copy(words, b.Words)
		maps[si][b.Index] = words
		if len(b.Copyset) > 0 {
			cs := make(map[int]struct{}, len(b.Copyset))
			for _, k := range b.Copyset {
				cs[k] = struct{}{}
			}
			csets[si][b.Index] = cs
		}
	}
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		// The odd/even bump gives every stripe a fresh generation: a
		// one-sided window reader (rebound to this segment after a recovery
		// restart) that raced the swap fails its seqlock validation and
		// retries against the imported state instead of returning a word
		// from the discarded generation.
		st.wseq.Add(1)
		st.blocks.Store(&maps[i])
		st.copyset = csets[i]
		st.wseq.Add(1)
		st.mu.Unlock()
	}
	return nil
}

// F2W and W2F convert float64 values to and from their word representation;
// the numeric applications store floating-point data in global memory.
func F2W(f float64) int64 { return int64(math.Float64bits(f)) }

// W2F is the inverse of F2W.
func W2F(w int64) float64 { return math.Float64frombits(uint64(w)) }

// Cache is a PE-local block cache for the invalidation protocol.
type Cache struct {
	space Space
	mu    sync.Mutex
	data  map[uint64][]int64
	hits  uint64
	miss  uint64
	inval uint64
}

// NewCache creates an empty cache over the space.
func NewCache(space Space) *Cache {
	return &Cache{space: space, data: make(map[uint64][]int64)}
}

// Lookup returns the cached word at addr.
func (c *Cache) Lookup(addr uint64) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blk, ok := c.data[c.space.BlockOf(addr)]
	if !ok {
		c.miss++
		return 0, false
	}
	c.hits++
	return blk[addr%uint64(c.space.BlockWords)], true
}

// Insert installs a whole block fetched from its home.
func (c *Cache) Insert(addr uint64, block []int64) {
	if len(block) != c.space.BlockWords {
		panic("gmem: cache insert of wrong-sized block")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]int64, len(block))
	copy(cp, block)
	c.data[c.space.BlockOf(addr)] = cp
}

// Update refreshes cached words if the block is present (a write-through by
// the local PE keeps its own copy warm).
func (c *Cache) Update(addr uint64, words []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blk, ok := c.data[c.space.BlockOf(addr)]
	if !ok {
		return
	}
	copy(blk[addr%uint64(c.space.BlockWords):], words)
}

// Invalidate drops the block containing addr.
func (c *Cache) Invalidate(addr uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.data, c.space.BlockOf(addr))
	c.inval++
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data = make(map[uint64][]int64)
}

// Stats reports hits, misses and invalidations so far.
func (c *Cache) Stats() (hits, misses, invalidations uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss, c.inval
}
