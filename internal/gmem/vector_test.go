package gmem

import "testing"

// The single-word and into/append accessors agree with Read/Write and avoid
// allocation on the hot path.
func TestWordAccessors(t *testing.T) {
	s := NewSpace(2, 8)
	g := NewSegment(s, 0)
	g.WriteWord(3, -77)
	if got := g.ReadWord(3); got != -77 {
		t.Fatalf("ReadWord = %d, want -77", got)
	}
	if got := g.Read(3, 1)[0]; got != -77 {
		t.Fatalf("Read disagrees with WriteWord: %d", got)
	}
	// Warm the block so the lazy allocation doesn't count.
	g.WriteWord(4, 0)
	allocs := testing.AllocsPerRun(500, func() {
		g.WriteWord(4, 9)
		_ = g.ReadWord(4)
	})
	if allocs > 0 {
		t.Errorf("word accessors allocate %v/op, want 0", allocs)
	}
}

func TestReadIntoAndAppend(t *testing.T) {
	s := NewSpace(2, 8)
	g := NewSegment(s, 0)
	g.Write(2, []int64{10, 20, 30})
	dst := make([]int64, 3)
	g.ReadInto(dst, 2)
	if dst[0] != 10 || dst[2] != 30 {
		t.Fatalf("ReadInto = %v", dst)
	}
	out := g.ReadAppend([]int64{-1}, 2, 3)
	if len(out) != 4 || out[0] != -1 || out[3] != 30 {
		t.Fatalf("ReadAppend = %v", out)
	}
}

// ReadV/WriteV are inverses over multiple same-home ranges and preserve the
// given range order.
func TestReadVWriteVRoundTrip(t *testing.T) {
	s := NewSpace(2, 8) // kernel 0 homes blocks 0, 2, 4, ... (words 0-7, 16-23, ...)
	g := NewSegment(s, 0)
	addrs := []uint64{17, 2, 32} // out of order, three distinct blocks
	counts := []int{3, 2, 4}
	words := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	g.WriteV(addrs, counts, words)

	got := g.ReadV(nil, addrs, counts)
	if len(got) != len(words) {
		t.Fatalf("ReadV returned %d words, want %d", len(got), len(words))
	}
	for i, w := range words {
		if got[i] != w {
			t.Errorf("word %d: %d, want %d", i, got[i], w)
		}
	}
	// Spot-check placement through the scalar path.
	if g.ReadWord(17) != 1 || g.ReadWord(19) != 3 || g.ReadWord(2) != 4 || g.ReadWord(35) != 9 {
		t.Error("WriteV scattered words to wrong addresses")
	}
	// ReadV appends to the destination it is given.
	pre := g.ReadV([]int64{-5}, addrs[:1], counts[:1])
	if len(pre) != 4 || pre[0] != -5 || pre[1] != 1 {
		t.Errorf("ReadV did not append: %v", pre)
	}
}

func TestVectorAccessorsRejectForeignAddress(t *testing.T) {
	s := NewSpace(2, 8)
	g := NewSegment(s, 0)
	for _, f := range []func(){
		func() { g.ReadWord(8) }, // block 1 is homed at kernel 1
		func() { g.WriteWord(8, 1) },
		func() { g.ReadInto(make([]int64, 1), 8) },
		func() { g.ReadV(nil, []uint64{0, 8}, []int{1, 1}) },
		func() { g.WriteV([]uint64{8}, []int{1}, []int64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("foreign address accepted")
				}
			}()
			f()
		}()
	}
}
