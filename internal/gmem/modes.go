package gmem

import (
	"fmt"
	"sort"
)

// Mode selects the consistency tier of a global-memory allocation. The
// default, ModeStrong, is the paper's home-based strong coherence: every
// read and write is a (possibly cached-and-invalidated) round trip with the
// home. The weaker tiers trade freshness for messages per the mode lattice
// documented in DESIGN.md §14:
//
//   - ModeRelease buffers writes in a per-PE write-combining buffer and
//     publishes them, coalesced, at synchronisation edges (barrier entry,
//     lock release, semaphore post). Reads observe the PE's own buffered
//     writes plus whatever the home last had flushed to it.
//   - ModeLease serves reads from a time-bounded per-block lease: a miss
//     fetches the whole block once and subsequent reads skip the
//     invalidation round until the lease expires or a synchronisation
//     acquire edge (barrier crossing, lock grant) drops it.
//
// Atomic operations (fetch-add, CAS) always execute with strong semantics
// at the home regardless of the containing allocation's mode.
type Mode uint8

const (
	// ModeStrong is home-based strong coherence (the default; zero value).
	ModeStrong Mode = iota
	// ModeRelease is release consistency: writes buffered per PE, flushed
	// at sync edges.
	ModeRelease
	// ModeLease is lease-based read caching: reads served from time-bounded
	// block leases, staleness bounded by the grant-to-expiry window.
	ModeLease

	// NumModes sizes per-mode tables.
	NumModes = iota
)

func (m Mode) String() string {
	switch m {
	case ModeStrong:
		return "strong"
	case ModeRelease:
		return "release"
	case ModeLease:
		return "lease"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ModeTable maps address ranges to consistency modes. Like the Allocator it
// is pure and deterministic: every PE of an SPMD program records the same
// (base, size, mode) sequence at allocation time and therefore agrees on
// every address's mode with no messages exchanged. Ranges never overlap
// (they come from allocator-disjoint regions) and lookups outside any
// recorded range return the table's default mode.
type ModeTable struct {
	def    Mode
	ranges []modeRange // sorted by base
}

type modeRange struct {
	base, end uint64 // [base, end)
	mode      Mode
}

// NewModeTable returns a table whose unrecorded addresses map to def.
func NewModeTable(def Mode) *ModeTable { return &ModeTable{def: def} }

// Default reports the table's default mode.
func (t *ModeTable) Default() Mode { return t.def }

// Set records that [base, base+n) uses mode m. Recording the default mode
// is a no-op (the table stays small when everything is strong). Overlapping
// an existing range panics: allocations are disjoint by construction, so an
// overlap is a caller bug.
func (t *ModeTable) Set(base uint64, n int, m Mode) {
	if n <= 0 {
		panic("gmem: ModeTable.Set of non-positive size")
	}
	if m == t.def {
		return
	}
	r := modeRange{base: base, end: base + uint64(n), mode: m}
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].base >= r.base })
	if i > 0 && t.ranges[i-1].end > r.base {
		panic(fmt.Sprintf("gmem: mode range [%d,%d) overlaps [%d,%d)",
			r.base, r.end, t.ranges[i-1].base, t.ranges[i-1].end))
	}
	if i < len(t.ranges) && t.ranges[i].base < r.end {
		panic(fmt.Sprintf("gmem: mode range [%d,%d) overlaps [%d,%d)",
			r.base, r.end, t.ranges[i].base, t.ranges[i].end))
	}
	t.ranges = append(t.ranges, modeRange{})
	copy(t.ranges[i+1:], t.ranges[i:])
	t.ranges[i] = r
}

// Clear removes every recorded range inside [base, limit) — job-namespace
// teardown, so the next job re-carving the region starts from the default
// mode and its own Set calls cannot collide with a dead job's ranges.
// Ranges straddling a boundary are trimmed, not dropped whole.
func (t *ModeTable) Clear(base, limit uint64) {
	out := t.ranges[:0]
	for _, r := range t.ranges {
		if r.end <= base || r.base >= limit {
			out = append(out, r)
			continue
		}
		if r.base < base {
			out = append(out, modeRange{base: r.base, end: base, mode: r.mode})
		}
		if r.end > limit {
			out = append(out, modeRange{base: limit, end: r.end, mode: r.mode})
		}
	}
	t.ranges = out
}

// AllStrong reports whether every address maps to ModeStrong (a strong
// default and no recorded ranges) — the gate the vectored gather/scatter
// fast paths check before consulting per-address modes.
func (t *ModeTable) AllStrong() bool {
	return t.def == ModeStrong && len(t.ranges) == 0
}

// Lookup returns the mode of addr.
func (t *ModeTable) Lookup(addr uint64) Mode {
	// Tables hold a handful of ranges at most, so a linear scan is cheaper
	// than a binary search on this hot path.
	for i := range t.ranges {
		r := &t.ranges[i]
		if addr < r.base {
			break
		}
		if addr < r.end {
			return r.mode
		}
	}
	return t.def
}

// Uniform reports whether every address in [addr, addr+n) shares one mode,
// and that mode. Block/gather/scatter paths use it to take a single-mode
// fast path before falling back to per-run splitting.
func (t *ModeTable) Uniform(addr uint64, n int) (Mode, bool) {
	m := t.Lookup(addr)
	if len(t.ranges) == 0 {
		return m, true
	}
	uniform := true
	t.ModeRuns(addr, n, func(mode Mode, start uint64, count int) {
		if mode != m {
			uniform = false
		}
	})
	return m, uniform
}

// ModeRuns splits [addr, addr+n) into maximal sub-ranges with a single mode
// each, calling fn(mode, start, count) in ascending address order — the
// mode-table analogue of Space.HomeRuns.
func (t *ModeTable) ModeRuns(addr uint64, n int, fn func(m Mode, start uint64, count int)) {
	if n <= 0 {
		return
	}
	end := addr + uint64(n)
	emit := func(m Mode, start, stop uint64) {
		if stop > start {
			fn(m, start, int(stop-start))
		}
	}
	for _, r := range t.ranges {
		if r.end <= addr {
			continue
		}
		if r.base >= end {
			break
		}
		emit(t.def, addr, r.base) // gap before this range
		lo, hi := r.base, r.end
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		emit(r.mode, lo, hi)
		addr = hi
	}
	emit(t.def, addr, end)
}
