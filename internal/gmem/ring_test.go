package gmem

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitRingFIFO pushes a batch, drains it, and checks payloads come out
// in submission order with the slots reusable after Release.
func TestSubmitRingFIFO(t *testing.T) {
	r := NewSubmitRing(8)
	for round := 0; round < 5; round++ { // several laps: slots must recycle
		for i := 0; i < 6; i++ {
			w := RingWrite{Addr: uint64(round*10 + i), Val: int64(i), Seq: uint64(i + 1), Src: 3}
			if _, ok := r.Push(w); !ok {
				t.Fatalf("round %d: push %d rejected", round, i)
			}
		}
		if p := r.Pending(); p != 6 {
			t.Fatalf("round %d: Pending = %d, want 6", round, p)
		}
		buf := make([]RingWrite, 8)
		n := r.Drain(buf)
		if n != 6 {
			t.Fatalf("round %d: Drain = %d, want 6", round, n)
		}
		for i, w := range buf[:n] {
			want := RingWrite{Addr: uint64(round*10 + i), Val: int64(i), Seq: uint64(i + 1), Src: 3}
			if w != want {
				t.Fatalf("round %d: slot %d = %+v, want %+v", round, i, w, want)
			}
		}
		r.Release(n)
	}
}

// TestSubmitRingFullRejects fills the ring and checks the next push fails
// cleanly — no side effects, and the ring still drains intact.
func TestSubmitRingFullRejects(t *testing.T) {
	r := NewSubmitRing(4)
	for i := 0; i < 4; i++ {
		if _, ok := r.Push(RingWrite{Addr: uint64(i)}); !ok {
			t.Fatalf("push %d rejected before full", i)
		}
	}
	if _, ok := r.Push(RingWrite{Addr: 99}); ok {
		t.Fatal("push into a full ring succeeded")
	}
	buf := make([]RingWrite, 4)
	if n := r.Drain(buf); n != 4 {
		t.Fatalf("Drain = %d, want 4", n)
	}
	for i, w := range buf {
		if w.Addr != uint64(i) {
			t.Fatalf("slot %d addr = %d after rejected push, want %d", i, w.Addr, i)
		}
	}
	r.Release(4)
	// Space reclaimed: pushes succeed again.
	if _, ok := r.Push(RingWrite{Addr: 5}); !ok {
		t.Fatal("push rejected after Release")
	}
}

// TestSubmitRingWraparound starts the ring's positions just below the top of
// uint64 so tail, head and the slot state words all wrap mid-test: the
// modular comparisons must keep FIFO order, full detection and consumption
// tracking working across the wrap.
func TestSubmitRingWraparound(t *testing.T) {
	const size = 4
	r := newSubmitRingAt(size, math.MaxUint64-5) // wraps on the 7th push
	buf := make([]RingWrite, size)
	var next uint64
	for round := 0; round < 8; round++ { // 24 pushes: well past the wrap
		var positions []uint64
		for i := 0; i < 3; i++ {
			w := RingWrite{Addr: next, Val: int64(next), Seq: next + 1}
			pos, ok := r.Push(w)
			if !ok {
				t.Fatalf("push %d rejected", next)
			}
			if r.Consumed(pos) {
				t.Fatalf("position %d consumed before drain", pos)
			}
			positions = append(positions, pos)
			next++
		}
		n := r.Drain(buf)
		if n != 3 {
			t.Fatalf("round %d: Drain = %d, want 3", round, n)
		}
		for i, w := range buf[:n] {
			if want := next - 3 + uint64(i); w.Addr != want {
				t.Fatalf("round %d: drained addr %d, want %d (FIFO broke at wrap)", round, w.Addr, want)
			}
		}
		r.Release(n)
		for _, pos := range positions {
			if !r.Consumed(pos) {
				t.Fatalf("position %d not consumed after Release", pos)
			}
			r.AwaitConsumed(pos) // must return immediately
		}
	}
}

// TestSubmitRingConcurrentProducers hammers one ring from many producers
// while a single consumer drains, applies to a model map, and releases. Every
// pushed write must be drained exactly once, in a per-producer FIFO order.
// Run under -race this is also the memory-model check on the publish edge.
func TestSubmitRingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 250 // kept modest: every push handshakes with the consumer
	)
	r := NewSubmitRing(64)
	var wg sync.WaitGroup
	var stop atomic.Bool
	done := make(chan map[uint64]int, 1)
	go func() {
		seen := make(map[uint64]int) // seq -> count
		buf := make([]RingWrite, 64)
		for !stop.Load() || r.Pending() > 0 {
			n := r.Drain(buf)
			for _, w := range buf[:n] {
				// Payload integrity: all fields carry the same token.
				if w.Addr != w.Seq || w.Val != int64(w.Seq) {
					t.Errorf("torn slot: %+v", w)
				}
				seen[w.Seq]++
			}
			r.Release(n)
		}
		done <- seen
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				tok := uint64(p*perProd + i + 1)
				w := RingWrite{Addr: tok, Val: int64(tok), Seq: tok, Src: int32(p)}
				pos, ok := r.Push(w)
				for !ok { // full: spin like the PE fallback would retry
					pos, ok = r.Push(w)
				}
				r.AwaitConsumed(pos)
			}
		}(p)
	}
	wg.Wait()
	stop.Store(true)
	seen := <-done
	if len(seen) != producers*perProd {
		t.Fatalf("drained %d distinct writes, want %d", len(seen), producers*perProd)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d drained %d times", seq, n)
		}
	}
}

// TestSubmitRingAwaitConsumedBlocks pins the completion contract AwaitConsumed
// gives the PE: it must not return before the consumer has released the slot,
// or a PE could read stale memory right after its own acknowledged write.
func TestSubmitRingAwaitConsumedBlocks(t *testing.T) {
	r := NewSubmitRing(4)
	pos, ok := r.Push(RingWrite{Addr: 1, Val: 2})
	if !ok {
		t.Fatal("push rejected")
	}
	if r.Consumed(pos) {
		t.Fatal("consumed before drain")
	}
	buf := make([]RingWrite, 4)
	if n := r.Drain(buf); n != 1 {
		t.Fatalf("Drain = %d, want 1", n)
	}
	if r.Consumed(pos) {
		t.Fatal("consumed after drain but before Release: producer could race the apply")
	}
	r.Release(1)
	r.AwaitConsumed(pos) // must return now
}

// TestRingApplyWritesVisibleToDirectRead interleaves ring-applied and
// message-path writes with lock-free direct reads on one home: no read may
// ever observe a torn word or a value nobody wrote (out of thin air). This is
// the property the two write paths' shared stripe seqlock protocol owes the
// one-sided read window.
func TestRingApplyWritesVisibleToDirectRead(t *testing.T) {
	space := NewSpace(1, 32)
	seg := NewSegment(space, 0)
	const (
		addr   = 7
		rounds = 4000
	)
	// legal marks every value either writer will ever store.
	legal := make(map[int64]bool, 2*rounds+1)
	legal[0] = true
	for i := 1; i <= rounds; i++ {
		legal[int64(i)] = true       // ring writer's values
		legal[int64(i)|1<<40] = true // message writer's values
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(2)
	go func() { // ring path: batches through ApplyWrites
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			seg.ApplyWrites([]RingWrite{{Addr: addr, Val: int64(i)}})
		}
	}()
	go func() { // message path: Write under the same stripe
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			seg.Write(addr, []int64{int64(i) | 1<<40})
		}
	}()
	readerDone := make(chan int64, 1)
	go func() {
		for !stop.Load() {
			if v := seg.DirectRead(addr); !legal[v] {
				readerDone <- v
				return
			}
		}
		readerDone <- 0
	}()
	wg.Wait()
	stop.Store(true)
	if v := <-readerDone; v != 0 {
		t.Fatalf("DirectRead observed %d, a value nobody wrote", v)
	}
	if v := seg.ReadWord(addr); !legal[v] {
		t.Fatalf("final value %d was never written", v)
	}
}

// TestDirectReadFallbackUnderWriterStorm pins the anti-starvation bound on
// the seqlock: a storm of vectored writers holds the stripe almost
// continuously, so the optimistic spin keeps losing — the reader must take
// the mutex fallback (observable via DirectReadFallbacks) and still return a
// consistent word, because every writer's critical section is capped at one
// block-sized window. Before the cap, a single long vectored write could
// starve the fallback itself.
func TestDirectReadFallbackUnderWriterStorm(t *testing.T) {
	space := NewSpace(1, 32)
	seg := NewSegment(space, 0)
	const writers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	vec := make([]int64, 32) // a full block per write: maximal window
	for i := range vec {
		vec[i] = 1
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]int64, len(vec))
			for i := int64(1); !stop.Load(); i++ {
				v := i<<8 | int64(w)
				for j := range buf {
					buf[j] = v
				}
				seg.Write(0, buf) // block 0: same stripe the reader polls
			}
		}(w)
	}
	// Read until the fallback path has demonstrably fired. All writers store
	// the same value across the block, so any consistent read yields a word
	// of the form i<<8|w with w < writers; the assertions are liveness (the
	// read returns despite the storm) and consistency (no torn word).
	deadline := time.Now().Add(20 * time.Second)
	for seg.DirectReadFallbacks() == 0 {
		v := seg.DirectRead(5)
		if v != 0 && int(v&0xff) >= writers {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("DirectRead returned %d: writer id %d out of range", v, v&0xff)
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Skip("writer storm never forced the fallback on this machine")
		}
	}
	stop.Store(true)
	wg.Wait()
	if seg.DirectReadFallbacks() == 0 {
		t.Fatal("fallback path never reached")
	}
}
