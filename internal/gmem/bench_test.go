package gmem

import "testing"

func BenchmarkSegmentWordOps(b *testing.B) {
	s := NewSpace(1, 32)
	g := NewSegment(s, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Write(uint64(i%32), []int64{int64(i)})
		g.Read(uint64(i%32), 1)
	}
}

func BenchmarkSegmentFetchAdd(b *testing.B) {
	s := NewSpace(1, 32)
	g := NewSegment(s, 0)
	for i := 0; i < b.N; i++ {
		g.FetchAdd(3, 1)
	}
}

func BenchmarkCacheLookup(b *testing.B) {
	s := NewSpace(4, 32)
	c := NewCache(s)
	blk := make([]int64, 32)
	c.Insert(0, blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i % 32))
	}
}

func BenchmarkHomeRuns(b *testing.B) {
	s := NewSpace(6, 32)
	for i := 0; i < b.N; i++ {
		s.HomeRuns(7, 900, func(home int, start uint64, count int) {})
	}
}
