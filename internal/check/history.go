// Package check is the deterministic correctness-verification subsystem:
// an operation-history recorder the core runtime hooks into (behind
// core.Config.RecordHistory), and a consistency checker (Check) that
// validates recorded histories against the DSM memory model — per-word
// linearizability for the uncached/atomic operations and write-invalidate
// coherence for cached reads.
//
// The package is deliberately free of core dependencies so the runtime can
// import it; the seeded stress runner that drives core lives in the
// check/stress subpackage.
package check

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind classifies one recorded operation.
type Kind uint8

// Operation kinds.
const (
	KindRead     Kind = iota // Out = value observed
	KindWrite                // Arg1 = value written
	KindFetchAdd             // Arg1 = delta, Out = previous value
	KindCAS                  // Arg1 = expected, Arg2 = new, Out = previous, Ok = swapped
	KindLock                 // Addr = lock id; Inv..Resp spans acquire
	KindUnlock               // Addr = lock id; Inv = release request time
	KindBarrier              // Addr = barrier id; Inv = arrival, Resp = release
	// KindFlush is a release-consistency write-combining-buffer flush: one is
	// recorded at EVERY sync edge whose buffer was non-empty (barrier entry,
	// lock release, semaphore post, membership fence), with Inv stamped to
	// the enclosing sync operation's own invocation instant and a lower Seq,
	// so the flush sorts ahead of that sync event at equal Inv. Inv..Resp
	// brackets drain-to-ack — the window inside which every buffered write
	// reached its home — and a flush that failed anywhere is left Failed
	// (open-ended), shielding its writes from convicting readers. Arg1 =
	// words flushed. Never recorded when the buffer was empty, which keeps
	// strong-mode histories free of them.
	KindFlush
)

var kindNames = [...]string{"read", "write", "fetch-add", "cas", "lock", "unlock", "barrier", "flush"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded operation: an invocation/response interval plus the
// operation's arguments and observed result. Failed operations (timeout,
// peer down) keep Failed=true and a zero Resp — the op MAY have applied at
// its home, so the checker treats its effect window as [Inv, ∞).
type Event struct {
	PE     int32
	Seq    int32 // per-PE record index; stable tiebreak and replay identity
	Kind   Kind
	Addr   uint64 // word address; lock/barrier id for sync events
	Arg1   int64
	Arg2   int64
	Out    int64
	Ok     bool // CAS: swap happened
	Failed bool // op errored; effect unknown
	Cached bool // read served from the local block cache
	// Mode tags the consistency tier of the operation's allocation
	// (gmem.Mode values: 0 strong, 1 release, 2 lease). Release-mode writes
	// record their buffering interval, not a home round trip; lease-mode
	// reads are Cached with Arg1 = the lease's grant time and Arg2 = its
	// expiry, the window that bounds their permitted staleness.
	Mode uint8
	Inv  sim.Time
	Resp sim.Time
}

func (e Event) String() string {
	status := ""
	if e.Failed {
		status = " FAILED"
	}
	if e.Cached {
		status += " cached"
	}
	switch e.Kind {
	case KindRead:
		return fmt.Sprintf("PE%d#%d read(%d)=%d [%d,%d]%s", e.PE, e.Seq, e.Addr, e.Out, e.Inv, e.Resp, status)
	case KindWrite:
		return fmt.Sprintf("PE%d#%d write(%d,%d) [%d,%d]%s", e.PE, e.Seq, e.Addr, e.Arg1, e.Inv, e.Resp, status)
	case KindFetchAdd:
		return fmt.Sprintf("PE%d#%d fetchadd(%d,%+d)=%d [%d,%d]%s", e.PE, e.Seq, e.Addr, e.Arg1, e.Out, e.Inv, e.Resp, status)
	case KindCAS:
		return fmt.Sprintf("PE%d#%d cas(%d,%d->%d)=(%d,%v) [%d,%d]%s", e.PE, e.Seq, e.Addr, e.Arg1, e.Arg2, e.Out, e.Ok, e.Inv, e.Resp, status)
	default:
		return fmt.Sprintf("PE%d#%d %v(id=%d) [%d,%d]%s", e.PE, e.Seq, e.Kind, e.Addr, e.Inv, e.Resp, status)
	}
}

// PERecorder collects one PE's events. A PE is single-threaded, so the
// recorder is lock-free; the merged history is read only after the cluster
// has quiesced.
type PERecorder struct {
	events []Event
	pe     int32
}

// Add appends a completed event (reads and sync ops record after success).
func (r *PERecorder) Add(ev Event) {
	if r == nil {
		return
	}
	ev.PE = r.pe
	ev.Seq = int32(len(r.events))
	r.events = append(r.events, ev)
}

// Begin appends ev as in-flight — Failed until Complete — and returns its
// index. Mutating ops record through Begin/Complete so an op that dies
// mid-request (timeout, panic, peer down) is retained with its "may have
// applied" status rather than lost.
func (r *PERecorder) Begin(ev Event) int {
	if r == nil {
		return -1
	}
	ev.PE = r.pe
	ev.Seq = int32(len(r.events))
	ev.Failed = true
	r.events = append(r.events, ev)
	return len(r.events) - 1
}

// Complete marks the Begin-ed event idx successful with its observed result.
func (r *PERecorder) Complete(idx int, out int64, ok bool, resp sim.Time) {
	if r == nil {
		return
	}
	e := &r.events[idx]
	e.Out, e.Ok, e.Resp = out, ok, resp
	e.Failed = false
}

// Recorder fans out one PERecorder per PE.
type Recorder struct {
	pes      []*PERecorder
	baseline map[uint64]int64
}

// SetBaseline records that word addr held val at the start of the run — a
// value restored from a checkpoint, with no writer event in this history.
// The checker treats reads of a baseline value like reads of the initial
// zero: legal until a new write to the word completes.
func (r *Recorder) SetBaseline(addr uint64, val int64) {
	if r == nil {
		return
	}
	if r.baseline == nil {
		r.baseline = make(map[uint64]int64)
	}
	r.baseline[addr] = val
}

// NewRecorder builds a recorder for an n-PE cluster.
func NewRecorder(n int) *Recorder {
	r := &Recorder{pes: make([]*PERecorder, n)}
	for i := range r.pes {
		r.pes[i] = &PERecorder{pe: int32(i)}
	}
	return r
}

// PE returns PE i's recorder; a nil Recorder returns nil (recording off).
func (r *Recorder) PE(i int) *PERecorder {
	if r == nil {
		return nil
	}
	return r.pes[i]
}

// History merges the per-PE event streams into one globally ordered
// history. Call only after every PE has quiesced.
func (r *Recorder) History() *History {
	h := &History{Baseline: r.baseline}
	for _, p := range r.pes {
		h.Events = append(h.Events, p.events...)
	}
	sort.SliceStable(h.Events, func(i, j int) bool {
		a, b := &h.Events[i], &h.Events[j]
		if a.Inv != b.Inv {
			return a.Inv < b.Inv
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		return a.Seq < b.Seq
	})
	return h
}

// History is a merged, globally ordered operation history. Timestamps must
// come from one global clock (the deterministic simulator provides one);
// real transports with per-node clocks cannot be checked for cross-PE
// real-time precedence.
type History struct {
	Events []Event
	// Baseline maps words to the value they held at run start when that
	// value was restored from a checkpoint rather than written by a
	// recorded operation. Nil for runs that did not restore.
	Baseline map[uint64]int64
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.Events) }

// Digest returns a hex SHA-256 over the canonical byte encoding of the
// history. Two runs of the same seeded workload are bit-identical exactly
// when their digests match — the replayability check.
func (h *History) Digest() string {
	hash := sha256.New()
	tagged := false
	for i := range h.Events {
		if h.Events[i].Mode != 0 {
			tagged = true
			break
		}
	}
	var b [66]byte
	for i := range h.Events {
		e := &h.Events[i]
		binary.LittleEndian.PutUint32(b[0:], uint32(e.PE))
		binary.LittleEndian.PutUint32(b[4:], uint32(e.Seq))
		b[8] = byte(e.Kind)
		binary.LittleEndian.PutUint64(b[9:], e.Addr)
		binary.LittleEndian.PutUint64(b[17:], uint64(e.Arg1))
		binary.LittleEndian.PutUint64(b[25:], uint64(e.Arg2))
		binary.LittleEndian.PutUint64(b[33:], uint64(e.Out))
		var flags byte
		if e.Ok {
			flags |= 1
		}
		if e.Failed {
			flags |= 2
		}
		if e.Cached {
			flags |= 4
		}
		b[41] = flags
		binary.LittleEndian.PutUint64(b[42:], uint64(e.Inv))
		binary.LittleEndian.PutUint64(b[50:], uint64(e.Resp))
		binary.LittleEndian.PutUint64(b[58:], uint64(len(h.Events)))
		hash.Write(b[:])
		if tagged {
			// One trailing mode byte per event, folded in only when some
			// event carries a non-strong mode: all-strong histories keep
			// their pre-existing digests (same conditional scheme as the
			// baseline below).
			hash.Write([]byte{e.Mode})
		}
	}
	if len(h.Baseline) > 0 {
		// Fold the restore baseline in deterministically; histories without
		// one keep their pre-existing digests.
		addrs := make([]uint64, 0, len(h.Baseline))
		for a := range h.Baseline {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			binary.LittleEndian.PutUint64(b[0:], a)
			binary.LittleEndian.PutUint64(b[8:], uint64(h.Baseline[a]))
			hash.Write(b[:16])
		}
	}
	return hex.EncodeToString(hash.Sum(nil))
}
