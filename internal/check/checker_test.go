package check

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// ev builds a completed event for the synthetic histories.
func ev(pe int32, kind Kind, addr uint64, inv, resp sim.Time) Event {
	return Event{PE: pe, Kind: kind, Addr: addr, Inv: inv, Resp: resp}
}

func hist(events ...Event) *History {
	for i := range events {
		events[i].Seq = int32(i)
	}
	return &History{Events: events}
}

func wantViolation(t *testing.T, h *History, kind string) {
	t.Helper()
	rep := Check(h)
	for _, v := range rep.Violations {
		if v.Kind == kind {
			return
		}
	}
	t.Fatalf("expected a %q violation, got: %v", kind, rep)
}

func wantClean(t *testing.T, h *History) {
	t.Helper()
	if rep := Check(h); !rep.OK() {
		t.Fatalf("expected a consistent history, got: %v", rep)
	}
}

func write(pe int32, addr uint64, v int64, inv, resp sim.Time) Event {
	e := ev(pe, KindWrite, addr, inv, resp)
	e.Arg1 = v
	return e
}

func read(pe int32, addr uint64, v int64, inv, resp sim.Time) Event {
	e := ev(pe, KindRead, addr, inv, resp)
	e.Out = v
	return e
}

func TestCheckSequentialHistory(t *testing.T) {
	wantClean(t, hist(
		write(0, 8, 100, 1, 2),
		read(1, 8, 100, 3, 4),
		write(1, 8, 200, 5, 6),
		read(0, 8, 200, 7, 8),
	))
}

func TestCheckConcurrentWriteEitherValue(t *testing.T) {
	// A read overlapping a write may see the old or the new value.
	wantClean(t, hist(
		write(0, 8, 100, 1, 2),
		write(1, 8, 200, 3, 10),
		read(2, 8, 100, 4, 5), // old value while the write is in flight
		read(2, 8, 200, 6, 7), // new value, also fine
	))
}

func TestCheckInitialValueRead(t *testing.T) {
	wantClean(t, hist(
		read(0, 8, 0, 1, 2),
		write(1, 8, 100, 3, 4),
	))
	wantViolation(t, hist(
		write(1, 8, 100, 1, 2),
		read(0, 8, 0, 3, 4), // zero after a completed write
	), "stale-read")
}

func TestCheckStaleRead(t *testing.T) {
	wantViolation(t, hist(
		write(0, 8, 100, 1, 2),
		write(1, 8, 200, 3, 4),
		read(2, 8, 100, 5, 6), // 100 was overwritten before the read began
	), "stale-read")
}

func TestCheckThinAirRead(t *testing.T) {
	wantViolation(t, hist(
		write(0, 8, 100, 1, 2),
		read(1, 8, 999, 3, 4),
	), "thin-air-read")
}

func TestCheckFutureRead(t *testing.T) {
	wantViolation(t, hist(
		read(1, 8, 100, 1, 2),
		write(0, 8, 100, 3, 4),
	), "future-read")
}

func TestCheckReadInversion(t *testing.T) {
	// Both writes overlap both reads, so neither read is individually
	// stale — but PE 2 observes them in opposite real-time order than the
	// writes completed... construct: w1 entirely before w2's invocation,
	// first read sees w2, later read sees w1.
	wantViolation(t, hist(
		write(0, 8, 100, 1, 2),
		write(1, 8, 200, 3, 20),
		read(2, 8, 200, 4, 5),
		read(2, 8, 100, 6, 7), // goes back to the older write
	), "read-inversion")
}

func TestCheckFailedWriteIsNotStale(t *testing.T) {
	// A failed (timed-out) write may have applied: reading it is legal,
	// and it never makes an older value stale.
	failed := write(0, 8, 100, 1, 0)
	failed.Failed = true
	wantClean(t, hist(
		failed,
		write(1, 8, 200, 3, 4),
		read(2, 8, 100, 5, 6), // the failed write may have landed after 200
	))
}

func TestCheckAmbiguousValue(t *testing.T) {
	wantViolation(t, hist(
		write(0, 8, 100, 1, 2),
		write(1, 8, 100, 3, 4),
	), "ambiguous-value")
}

func fadd(pe int32, addr uint64, delta, out int64, inv, resp sim.Time) Event {
	e := ev(pe, KindFetchAdd, addr, inv, resp)
	e.Arg1, e.Out = delta, out
	return e
}

func TestCheckFetchAddClean(t *testing.T) {
	wantClean(t, hist(
		fadd(0, 16, 1, 0, 1, 2),
		fadd(1, 16, 1, 1, 3, 4),
		fadd(0, 16, 1, 2, 5, 6),
	))
}

func TestCheckFetchAddDuplicate(t *testing.T) {
	wantViolation(t, hist(
		fadd(0, 16, 1, 0, 1, 2),
		fadd(1, 16, 1, 0, 3, 4), // same previous value observed twice
	), "fetchadd-duplicate")
}

func TestCheckFetchAddLost(t *testing.T) {
	wantViolation(t, hist(
		fadd(0, 16, 1, 0, 1, 2),
		fadd(1, 16, 1, 2, 3, 4), // skipped 1 although nothing failed
	), "fetchadd-lost")
}

func TestCheckFetchAddOrder(t *testing.T) {
	wantViolation(t, hist(
		fadd(0, 16, 1, 1, 1, 2),
		fadd(1, 16, 1, 0, 3, 4), // later attempt saw the smaller counter
	), "fetchadd-order")
}

func TestCheckFetchAddFailedAttemptTolerated(t *testing.T) {
	failed := fadd(1, 16, 1, 0, 3, 0)
	failed.Failed = true
	// The failed attempt may or may not have applied: observing 0,1 with a
	// hole at 2 or a contiguous 0,1 are both legal.
	wantClean(t, hist(
		fadd(0, 16, 1, 0, 1, 2),
		failed,
		fadd(0, 16, 1, 2, 5, 6),
	))
}

func cas(pe int32, addr uint64, old, new, out int64, ok bool, inv, resp sim.Time) Event {
	e := ev(pe, KindCAS, addr, inv, resp)
	e.Arg1, e.Arg2, e.Out, e.Ok = old, new, out, ok
	return e
}

func TestCheckCASChainClean(t *testing.T) {
	wantClean(t, hist(
		cas(0, 24, 0, 100, 0, true, 1, 2),
		cas(1, 24, 0, 200, 100, false, 3, 4), // lost the race, saw 100
		cas(1, 24, 100, 200, 100, true, 5, 6),
	))
}

func TestCheckCASFork(t *testing.T) {
	wantViolation(t, hist(
		cas(0, 24, 0, 100, 0, true, 1, 2),
		cas(1, 24, 0, 200, 0, true, 3, 4), // both swapped from 0
	), "cas-fork")
}

func TestCheckCASRefused(t *testing.T) {
	wantViolation(t, hist(
		cas(0, 24, 0, 100, 0, false, 1, 2), // saw expected 0 but "failed"
	), "cas-refused")
}

func lockEv(pe int32, id uint64, inv, resp sim.Time) Event { return ev(pe, KindLock, id, inv, resp) }
func unlockEv(pe int32, id uint64, at sim.Time) Event      { return ev(pe, KindUnlock, id, at, at) }

func TestCheckLockMutualExclusion(t *testing.T) {
	wantClean(t, hist(
		lockEv(0, 1, 1, 2),
		unlockEv(0, 1, 5),
		lockEv(1, 1, 3, 6), // granted only after the release
		unlockEv(1, 1, 8),
	))
	wantViolation(t, hist(
		lockEv(0, 1, 1, 2),
		lockEv(1, 1, 3, 4), // granted while PE 0 still holds
		unlockEv(0, 1, 6),
		unlockEv(1, 1, 8),
	), "lock-overlap")
}

func TestCheckBarrierRounds(t *testing.T) {
	wantClean(t, hist(
		ev(0, KindBarrier, 0, 1, 5),
		ev(1, KindBarrier, 0, 4, 5),
		ev(0, KindBarrier, 0, 6, 9),
		ev(1, KindBarrier, 0, 8, 9),
	))
	wantViolation(t, hist(
		ev(0, KindBarrier, 0, 1, 2), // released before PE 1 arrived
		ev(1, KindBarrier, 0, 4, 5),
	), "barrier-order")
}

func TestReportString(t *testing.T) {
	rep := Check(hist(
		write(0, 8, 100, 1, 2),
		read(1, 8, 999, 3, 4),
	))
	if rep.OK() {
		t.Fatal("expected violations")
	}
	s := rep.String()
	if !strings.Contains(s, "thin-air-read") || !strings.Contains(s, "999") {
		t.Fatalf("report lacks the violating op: %s", s)
	}
}
