package check

import "testing"

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	pr := r.PE(0)
	if pr != nil {
		t.Fatal("nil Recorder must hand out nil PERecorders")
	}
	pr.Add(Event{}) // must not panic
	pr.Complete(pr.Begin(Event{}), 0, false, 0)
}

func TestRecorderMergeOrdersByInvocation(t *testing.T) {
	r := NewRecorder(2)
	r.PE(1).Add(Event{Kind: KindWrite, Addr: 8, Arg1: 2, Inv: 5, Resp: 6})
	r.PE(0).Add(Event{Kind: KindWrite, Addr: 8, Arg1: 1, Inv: 1, Resp: 2})
	idx := r.PE(0).Begin(Event{Kind: KindWrite, Addr: 8, Arg1: 3, Inv: 9})
	h := r.History()
	if h.Len() != 3 {
		t.Fatalf("merged %d events, want 3", h.Len())
	}
	if h.Events[0].Arg1 != 1 || h.Events[1].Arg1 != 2 || h.Events[2].Arg1 != 3 {
		t.Fatalf("events not in invocation order: %v", h.Events)
	}
	if !h.Events[2].Failed {
		t.Fatal("un-completed Begin event must stay Failed")
	}
	r.PE(0).Complete(idx, 0, true, 10)
	if h2 := r.History(); h2.Events[2].Failed || h2.Events[2].Resp != 10 {
		t.Fatalf("Complete not reflected: %v", h2.Events[2])
	}
}

func TestHistoryDigestDeterministic(t *testing.T) {
	build := func() *History {
		r := NewRecorder(2)
		r.PE(0).Add(Event{Kind: KindWrite, Addr: 8, Arg1: 7, Inv: 1, Resp: 2})
		r.PE(1).Add(Event{Kind: KindRead, Addr: 8, Out: 7, Inv: 3, Resp: 4, Cached: true})
		return r.History()
	}
	d1, d2 := build().Digest(), build().Digest()
	if d1 != d2 {
		t.Fatalf("same history, different digests: %s vs %s", d1, d2)
	}
	r := NewRecorder(2)
	r.PE(0).Add(Event{Kind: KindWrite, Addr: 8, Arg1: 8, Inv: 1, Resp: 2})
	if d3 := r.History().Digest(); d3 == d1 {
		t.Fatal("different histories share a digest")
	}
}
