package check

import (
	"fmt"
	"math"
	"sort"
)

// The memory model Check enforces (DESIGN.md §9):
//
// Every global-memory word is linearizable: each operation appears to take
// effect atomically at some instant inside its invocation/response interval.
// Without caching this is immediate — every access is serialised at the
// word's single home. With the write-invalidate caching protocol it still
// holds, because a write blocks until every cached copy has acknowledged
// invalidation: the write's effect point precedes its response, and any read
// that *starts* after the response can no longer be served from a stale
// copy. A cached read overlapping the write is concurrent and may observe
// either value.
//
// Failed operations (timeout, peer down) may or may not have applied at the
// home; the checker gives them an effect window of [Inv, ∞): they can
// legally be observed any time after invocation, and they never make an
// older value stale.
//
// Weaker tiers (DESIGN.md §14) relax the per-word rules, selected by the
// events' Mode tags (modeRules):
//
//   - Release: a write is published not by its own response but by its PE's
//     next flush fence (barrier, unlock, or standalone flush event). The
//     apply instant lies inside the fence's [Inv, Resp] bracket, so
//     staleness is judged fence-to-fence; an own buffered write must be
//     visible to its PE until a fence flushes it (read-your-writes), and a
//     never-flushed write must not be visible to any other PE.
//   - Lease: a lease-served read carries its grant window in Arg1/Arg2. It
//     may not be served after expiry (Inv ≤ Arg2), and its staleness bound
//     moves from the read's start to the lease's grant: only writes that
//     completed before the grant make the observation a violation.
//
// The workload discipline the checker relies on: every written value is
// globally unique and non-zero (so a read maps to exactly one writer);
// fetch-add words receive only fetch-adds of one uniform positive delta;
// CAS words receive only CASes whose new values are unique. Atomics must
// not share words with release-mode buffered writes: they serialise at the
// home and would not observe another op's write-combining overlay.

// Violation is one detected memory-model breach.
type Violation struct {
	Kind   string  // e.g. "stale-read", "thin-air-read", "fetchadd-duplicate"
	Addr   uint64  // word (or lock/barrier id) involved
	Msg    string  // human explanation
	Events []Event // the operations forming the violating cycle, in evidence order
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s @%d: %s", v.Kind, v.Addr, v.Msg)
	for _, e := range v.Events {
		s += "\n\t" + e.String()
	}
	return s
}

// Report is the outcome of checking one history.
type Report struct {
	Ops        int // events examined
	Words      int // distinct global-memory words examined
	Violations []Violation
}

// OK reports whether the history is consistent with the memory model.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("checked %d ops over %d words: consistent", r.Ops, r.Words)
	}
	s := fmt.Sprintf("checked %d ops over %d words: %d violation(s)", r.Ops, r.Words, len(r.Violations))
	for _, v := range r.Violations {
		s += "\n" + v.String()
	}
	return s
}

// maxViolations bounds the report: the first violation is the interesting
// one, the rest are usually its echo.
const maxViolations = 16

// infTime stands in for "never responded" when ordering failed ops.
const infTime = math.MaxInt64

// Event.Mode values, mirroring gmem.Mode so the checker stays free of
// runtime dependencies (check/stress asserts the two stay in sync).
const (
	modeStrong  uint8 = 0
	modeRelease uint8 = 1
	modeLease   uint8 = 2
	numModes          = 3
)

// syncFence is one flush fence of a PE: the interval inside which that PE's
// write-combining buffer drained to the homes. resp is effResp — ∞ for a
// fence whose flush may not have finished (failed barriers, flushes with
// lost acks), which keeps every bound conservative: a write covered only by
// such a fence is never provably applied, so it can't convict a reader.
type syncFence struct {
	inv, resp int64
}

// syncIndex holds each PE's flush fences in Inv order.
type syncIndex map[int32][]syncFence

// buildSyncIndex collects barrier, unlock, and standalone flush events —
// every point a release-mode write-combining buffer drains. The history is
// globally Inv-sorted, so each PE's list comes out sorted for free.
func buildSyncIndex(h *History) syncIndex {
	sx := make(syncIndex)
	for i := range h.Events {
		e := &h.Events[i]
		switch e.Kind {
		case KindBarrier, KindUnlock, KindFlush:
			sx[e.PE] = append(sx[e.PE], syncFence{inv: int64(e.Inv), resp: effResp(e)})
		}
	}
	return sx
}

// flushBound returns the fence that published w: the first fence of w's PE
// starting at or after w's buffering completed. ok=false means w was never
// flushed inside the history (its PE recorded no later fence).
func (sx syncIndex) flushBound(w *Event) (syncFence, bool) {
	fences := sx[w.PE]
	wResp := effResp(w)
	i := sort.Search(len(fences), func(i int) bool { return fences[i].inv >= wResp })
	if i == len(fences) {
		return syncFence{}, false
	}
	return fences[i], true
}

// publishWindow brackets when w's value can have reached the word's home: a
// buffered release write publishes inside its flush fence; anything else (an
// atomic, a strong write mixed onto the word, a failed op) publishes inside
// its own effect window.
func publishWindow(sx syncIndex, w *Event) (inv, resp int64, published bool) {
	if w.Kind == KindWrite && w.Mode == modeRelease && !w.Failed {
		f, ok := sx.flushBound(w)
		if !ok {
			return 0, 0, false
		}
		return f.inv, f.resp, true
	}
	return int64(w.Inv), effResp(w), true
}

// Check validates a merged history against the memory model and returns
// everything it found (empty Violations = consistent). The history's
// timestamps must come from one global clock.
func Check(h *History) *Report {
	rep := &Report{Ops: len(h.Events)}
	perWord := make(map[uint64][]int) // GM word -> event indices
	locks := make(map[uint64][]int)   // lock id -> Lock/Unlock indices
	barriers := make(map[uint64][]int)
	tagged := false // any non-strong mode tag in the history?
	for i := range h.Events {
		e := &h.Events[i]
		if e.Mode != 0 {
			tagged = true
		}
		switch e.Kind {
		case KindRead, KindWrite, KindFetchAdd, KindCAS:
			perWord[e.Addr] = append(perWord[e.Addr], i)
		case KindLock, KindUnlock:
			locks[e.Addr] = append(locks[e.Addr], i)
		case KindBarrier:
			barriers[e.Addr] = append(barriers[e.Addr], i)
		}
	}
	var sx syncIndex
	if tagged {
		sx = buildSyncIndex(h)
	}
	rep.Words = len(perWord)
	for _, addr := range sortedKeys(perWord) {
		checkWord(rep, h, sx, addr, perWord[addr])
		if len(rep.Violations) >= maxViolations {
			return rep
		}
	}
	for _, id := range sortedKeys(locks) {
		checkLock(rep, h, id, locks[id])
	}
	for _, id := range sortedKeys(barriers) {
		checkBarrier(rep, h, id, barriers[id])
	}
	return rep
}

func sortedKeys(m map[uint64][]int) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func (rep *Report) add(v Violation) {
	if len(rep.Violations) < maxViolations {
		rep.Violations = append(rep.Violations, v)
	}
}

// effResp is the latest instant e's effect can have taken place: its
// response, or ∞ for a failed op that may still be in flight.
func effResp(e *Event) int64 {
	if e.Failed {
		return infTime
	}
	return int64(e.Resp)
}

// writtenValue returns the value e installs at its word, and whether that
// value is knowable. Failed fetch-adds write old+delta with old unknown.
func writtenValue(e *Event) (int64, bool) {
	switch e.Kind {
	case KindWrite:
		return e.Arg1, true
	case KindFetchAdd:
		if e.Failed {
			return 0, false
		}
		return e.Out + e.Arg1, true
	case KindCAS:
		if e.Failed {
			return e.Arg2, true // may have swapped in Arg2
		}
		if e.Ok {
			return e.Arg2, true
		}
		return 0, false // refused: wrote nothing
	}
	return 0, false
}

// reads returns the value e observed at its word, and whether it observed
// one. CAS and fetch-add responses carry the previous value: they are reads
// too.
func observedValue(e *Event) (int64, bool) {
	if e.Failed {
		return 0, false
	}
	switch e.Kind {
	case KindRead, KindFetchAdd, KindCAS:
		return e.Out, true
	}
	return 0, false
}

// wordRules is one consistency tier's per-word observer discipline. The
// fetch-add/CAS chain checks are mode-independent (atomics always execute
// strongly at the home) and run before the dispatch; only the read rules
// differ per tier.
type wordRules struct {
	name      string
	observers func(rep *Report, h *History, sx syncIndex, addr uint64, idxs []int, writers map[int64]int, observers []int)
}

// modeRules dispatches a word to its tier's observer rules, selected by the
// strongest (weakest-consistency) Mode tag among the word's events.
// Allocations are mode-uniform, so in practice every event at a word agrees.
var modeRules = [numModes]wordRules{
	modeStrong:  {name: "strong", observers: checkObserversStrong},
	modeRelease: {name: "release", observers: checkObserversRelease},
	modeLease:   {name: "lease", observers: checkObserversLease},
}

// checkWord validates the per-word conditions of the word's consistency tier.
func checkWord(rep *Report, h *History, sx syncIndex, addr uint64, idxs []int) {
	// Partition into writers (by installed value) and observers.
	writers := make(map[int64]int, len(idxs)) // value -> event index
	var fetchAdds, casOps, observers []int
	blindFetchAdd := false // a failed fetch-add poisons value mapping
	for _, i := range idxs {
		e := &h.Events[i]
		if e.Kind == KindFetchAdd {
			fetchAdds = append(fetchAdds, i)
			if e.Failed {
				blindFetchAdd = true
			}
		}
		if e.Kind == KindCAS {
			casOps = append(casOps, i)
		}
		if v, ok := writtenValue(e); ok {
			if prev, dup := writers[v]; dup {
				rep.add(Violation{
					Kind: "ambiguous-value", Addr: addr,
					Msg:    fmt.Sprintf("value %d installed by two writers; the workload must write unique values", v),
					Events: []Event{h.Events[prev], *e},
				})
				continue
			}
			writers[v] = i
		}
		if _, ok := observedValue(e); ok {
			observers = append(observers, i)
		}
	}

	checkFetchAddWord(rep, h, addr, fetchAdds)
	checkCASWord(rep, h, addr, casOps)
	if blindFetchAdd {
		// Some value written to this word is unknowable; reads can no longer
		// be mapped to writers without false positives. The counter checks
		// above still ran.
		return
	}

	mode := modeStrong
	for _, i := range idxs {
		if m := h.Events[i].Mode; m > mode && m < numModes {
			mode = m
		}
	}
	modeRules[mode].observers(rep, h, sx, addr, idxs, writers, observers)
}

// checkObserversStrong is the original strong-coherence read discipline:
// linearizable per-word reads bounded by completed writes, plus the
// read-inversion (per-word total write order) condition.
func checkObserversStrong(rep *Report, h *History, _ syncIndex, addr uint64, idxs []int, writers map[int64]int, observers []int) {
	// Map every observed value to its writer and check the read conditions.
	type obs struct {
		idx  int // observer event index
		wIdx int // writer event index, -1 for the initial zero
	}
	// The word's pre-history value: zero, or whatever a checkpoint restore
	// installed. Reads of it have no writer event and map to wIdx -1.
	initVal := h.Baseline[addr]
	var mapped []obs
	for _, i := range observers {
		e := &h.Events[i]
		v, _ := observedValue(e)
		if v == initVal {
			// Initial value: legal only while no successful write has
			// completed strictly before the read began.
			for _, j := range idxs {
				w := &h.Events[j]
				if _, isW := writtenValue(w); isW && !w.Failed && int64(w.Resp) < int64(e.Inv) {
					rep.add(Violation{
						Kind: "stale-read", Addr: addr,
						Msg:    "read the initial value after a write had completed",
						Events: []Event{*w, *e},
					})
					break
				}
			}
			mapped = append(mapped, obs{idx: i, wIdx: -1})
			continue
		}
		j, ok := writers[v]
		if !ok {
			rep.add(Violation{
				Kind: "thin-air-read", Addr: addr,
				Msg:    fmt.Sprintf("observed value %d that no operation wrote", v),
				Events: []Event{*e},
			})
			continue
		}
		w := &h.Events[j]
		if int64(w.Inv) > int64(e.Resp) {
			rep.add(Violation{
				Kind: "future-read", Addr: addr,
				Msg:    "read completed before its writer was invoked",
				Events: []Event{*w, *e},
			})
			continue
		}
		// Coherence: the read's writer must not be overwritten by a write
		// that completed strictly before the read began.
		for _, j2 := range idxs {
			w2 := &h.Events[j2]
			if j2 == j || w2.Failed {
				continue
			}
			if _, isW := writtenValue(w2); !isW {
				continue
			}
			if effResp(w) < int64(w2.Inv) && int64(w2.Resp) < int64(e.Inv) {
				rep.add(Violation{
					Kind: "stale-read", Addr: addr,
					Msg:    fmt.Sprintf("read value %d after a later write had completed", v),
					Events: []Event{*w, *w2, *e},
				})
				break
			}
		}
		mapped = append(mapped, obs{idx: i, wIdx: j})
	}

	// Read inversion: two reads ordered in real time must not observe
	// writes in the opposite real-time order (per-word total write order).
	for a := 0; a < len(mapped); a++ {
		ra := &h.Events[mapped[a].idx]
		for b := 0; b < len(mapped); b++ {
			if a == b || mapped[a].wIdx == mapped[b].wIdx {
				continue
			}
			rb := &h.Events[mapped[b].idx]
			if int64(ra.Resp) >= int64(rb.Inv) {
				continue // not ordered: ra does not precede rb
			}
			// ra < rb in real time. rb's writer must not be strictly before
			// ra's writer: wb entirely before wa's invocation means rb went
			// back in time.
			if mapped[a].wIdx == -1 {
				continue // ra saw the initial value; anything later is fine
			}
			if mapped[b].wIdx == -1 {
				// rb saw the initial value after ra saw a real write; the
				// zero-value staleness check above already covers this.
				continue
			}
			waInv := int64(h.Events[mapped[a].wIdx].Inv)
			wbResp := effResp(&h.Events[mapped[b].wIdx])
			if wbResp < waInv {
				rep.add(Violation{
					Kind: "read-inversion", Addr: addr,
					Msg:    "later read observed an earlier write than a preceding read",
					Events: []Event{h.Events[mapped[b].wIdx], h.Events[mapped[a].wIdx], *ra, *rb},
				})
				return
			}
		}
	}
}

// checkObserversRelease is the release-consistency read discipline: writes
// are ordered only by flush fences. A read may observe any value whose
// publish window is not provably ordered against a newer one — staleness is
// judged fence-to-fence via publishWindow — but three things stay absolute:
// a PE reads its own buffered writes until a fence flushes them, a
// never-flushed write is invisible to every other PE, and values still come
// only from real writers.
func checkObserversRelease(rep *Report, h *History, sx syncIndex, addr uint64, idxs []int, writers map[int64]int, observers []int) {
	initVal := h.Baseline[addr]
	for _, i := range observers {
		e := &h.Events[i]
		v, _ := observedValue(e)

		// The observer's latest own successful write before it, in program
		// order: the value its write-combining overlay must serve while
		// unflushed.
		ownLatest := -1
		for _, j := range idxs {
			w := &h.Events[j]
			if w.PE != e.PE || w.Seq >= e.Seq || w.Failed {
				continue
			}
			if _, isW := writtenValue(w); !isW {
				continue
			}
			if ownLatest < 0 || w.Seq > h.Events[ownLatest].Seq {
				ownLatest = j
			}
		}

		if v == initVal {
			if ownLatest >= 0 {
				rep.add(Violation{
					Kind: "release-lost-write", Addr: addr,
					Msg:    "read the initial value after writing the word itself",
					Events: []Event{h.Events[ownLatest], *e},
				})
				continue
			}
			// The initial value is stale once any writer's flush completed
			// before the read began.
			for _, j := range idxs {
				w := &h.Events[j]
				if _, isW := writtenValue(w); !isW || w.Failed {
					continue
				}
				if _, fresp, ok := publishWindow(sx, w); ok && fresp < int64(e.Inv) {
					rep.add(Violation{
						Kind: "release-stale-read", Addr: addr,
						Msg:    "read the initial value after a flushed write had completed",
						Events: []Event{h.Events[j], *e},
					})
					break
				}
			}
			continue
		}
		j, ok := writers[v]
		if !ok {
			rep.add(Violation{
				Kind: "thin-air-read", Addr: addr,
				Msg:    fmt.Sprintf("observed value %d that no operation wrote", v),
				Events: []Event{*e},
			})
			continue
		}
		w := &h.Events[j]
		if int64(w.Inv) > int64(e.Resp) {
			rep.add(Violation{
				Kind: "future-read", Addr: addr,
				Msg:    "read completed before its writer was invoked",
				Events: []Event{*w, *e},
			})
			continue
		}
		if ownLatest >= 0 && j != ownLatest {
			own := &h.Events[ownLatest]
			if w.PE == e.PE {
				// Observed an own older write: the buffer coalesces per word
				// last-writer-wins, so a superseded own value can never
				// resurface for its writer.
				rep.add(Violation{
					Kind: "release-lost-write", Addr: addr,
					Msg:    fmt.Sprintf("read own superseded value %d instead of the latest own write", v),
					Events: []Event{*w, *own, *e},
				})
				continue
			}
			finv, _, flushed := publishWindow(sx, own)
			if !flushed || finv >= int64(e.Resp) {
				// The own latest write was still buffered for the whole read
				// (its flush, if any, began only after the read completed):
				// the overlay must have served it, not another PE's value.
				rep.add(Violation{
					Kind: "release-lost-write", Addr: addr,
					Msg:    fmt.Sprintf("read another PE's value %d while an own write was still buffered", v),
					Events: []Event{*own, *e},
				})
				continue
			}
		}
		if w.PE != e.PE {
			if _, _, ok := publishWindow(sx, w); !ok {
				rep.add(Violation{
					Kind: "release-unflushed-read", Addr: addr,
					Msg:    fmt.Sprintf("observed value %d from another PE's never-flushed buffered write", v),
					Events: []Event{*w, *e},
				})
				continue
			}
		}
		// Fence-to-fence staleness: w is provably overwritten before e began
		// when some other write's publish completed before e, and w's own
		// publish completed before that publish began.
		_, wResp, wPub := publishWindow(sx, w)
		if !wPub {
			continue
		}
		for _, j2 := range idxs {
			w2 := &h.Events[j2]
			if j2 == j || w2.Failed {
				continue
			}
			if _, isW := writtenValue(w2); !isW {
				continue
			}
			w2inv, w2resp, ok := publishWindow(sx, w2)
			if !ok {
				continue
			}
			if wResp < w2inv && w2resp < int64(e.Inv) {
				rep.add(Violation{
					Kind: "release-stale-read", Addr: addr,
					Msg:    fmt.Sprintf("read value %d after a later flushed write had completed", v),
					Events: []Event{*w, *w2, *e},
				})
				break
			}
		}
	}
	// No read-inversion condition: release gives up the per-word total order
	// between sync edges, so opposite-order observations inside one fence
	// interval are legal.
}

// checkObserversLease is the lease read discipline. A lease-served read
// (Cached, Mode=lease) carries its grant window in Arg1/Arg2: it must start
// before the lease expires, and it may observe any value that was current at
// the grant — the staleness bound moves from the read's start back to
// Arg1. Home-served observations on lease words (misses recorded the same
// way, plus atomics) keep the strong bound. No read-inversion condition:
// two PEs' leases legitimately expose writes in opposite orders inside
// their windows.
func checkObserversLease(rep *Report, h *History, _ syncIndex, addr uint64, idxs []int, writers map[int64]int, observers []int) {
	initVal := h.Baseline[addr]
	for _, i := range observers {
		e := &h.Events[i]
		v, _ := observedValue(e)
		leased := e.Kind == KindRead && e.Cached && e.Mode == modeLease
		// bound: a write completing before this instant makes e's value stale.
		bound := int64(e.Inv)
		staleKind := "stale-read"
		if leased {
			bound = e.Arg1 // the lease's grant time
			staleKind = "lease-stale-read"
			if int64(e.Inv) > e.Arg2 {
				rep.add(Violation{
					Kind: "lease-overstay", Addr: addr,
					Msg:    fmt.Sprintf("read served from a lease %d ticks after its expiry", int64(e.Inv)-e.Arg2),
					Events: []Event{*e},
				})
			}
		}
		if v == initVal {
			for _, j := range idxs {
				w := &h.Events[j]
				if _, isW := writtenValue(w); isW && !w.Failed && int64(w.Resp) < bound {
					rep.add(Violation{
						Kind: staleKind, Addr: addr,
						Msg:    "read the initial value after a write had completed",
						Events: []Event{h.Events[j], *e},
					})
					break
				}
			}
			continue
		}
		j, ok := writers[v]
		if !ok {
			rep.add(Violation{
				Kind: "thin-air-read", Addr: addr,
				Msg:    fmt.Sprintf("observed value %d that no operation wrote", v),
				Events: []Event{*e},
			})
			continue
		}
		w := &h.Events[j]
		if int64(w.Inv) > int64(e.Resp) {
			rep.add(Violation{
				Kind: "future-read", Addr: addr,
				Msg:    "read completed before its writer was invoked",
				Events: []Event{*w, *e},
			})
			continue
		}
		for _, j2 := range idxs {
			w2 := &h.Events[j2]
			if j2 == j || w2.Failed {
				continue
			}
			if _, isW := writtenValue(w2); !isW {
				continue
			}
			if effResp(w) < int64(w2.Inv) && int64(w2.Resp) < bound {
				rep.add(Violation{
					Kind: staleKind, Addr: addr,
					Msg:    fmt.Sprintf("read value %d after a later write had completed", v),
					Events: []Event{*w, *w2, *e},
				})
				break
			}
		}
	}
}

// checkFetchAddWord validates exactly-once atomicity of a fetch-add counter:
// with one uniform positive delta, the observed previous values must be
// distinct multiples of it, bounded by the attempt count, and real-time
// monotone. A duplicate previous value means an increment was applied twice
// (a retry slipping past the dedup window) or two increments raced.
func checkFetchAddWord(rep *Report, h *History, addr uint64, idxs []int) {
	if len(idxs) == 0 {
		return
	}
	delta := h.Events[idxs[0]].Arg1
	uniform := delta > 0
	succeeded, failed := 0, 0
	for _, i := range idxs {
		e := &h.Events[i]
		if e.Arg1 != delta {
			uniform = false
		}
		if e.Failed {
			failed++
		} else {
			succeeded++
		}
	}
	if !uniform {
		return // mixed deltas: outs may legitimately repeat
	}
	// A restored counter starts at its checkpointed value, not zero; the
	// torn/overrun/lost arithmetic below is relative to that base.
	base := h.Baseline[addr]
	if base%delta != 0 || base < 0 {
		return // restored base not from this delta's chain: skip arithmetic checks
	}
	seen := make(map[int64]int, succeeded)
	for _, i := range idxs {
		e := &h.Events[i]
		if e.Failed {
			continue
		}
		if prev, dup := seen[e.Out]; dup {
			rep.add(Violation{
				Kind: "fetchadd-duplicate", Addr: addr,
				Msg:    fmt.Sprintf("two fetch-adds observed the same previous value %d (an increment applied twice or lost)", e.Out),
				Events: []Event{h.Events[prev], *e},
			})
		}
		seen[e.Out] = i
		if e.Out%delta != 0 || e.Out < base {
			rep.add(Violation{
				Kind: "fetchadd-torn", Addr: addr,
				Msg:    fmt.Sprintf("previous value %d is not a multiple of the uniform delta %d at or above the base %d", e.Out, delta, base),
				Events: []Event{*e},
			})
		}
		if e.Out > base+delta*int64(succeeded+failed-1) {
			rep.add(Violation{
				Kind: "fetchadd-overrun", Addr: addr,
				Msg:    fmt.Sprintf("previous value %d exceeds what %d attempts from base %d can produce", e.Out, succeeded+failed, base),
				Events: []Event{*e},
			})
		}
		// Real-time monotonicity: an increment entirely before another must
		// observe the smaller previous value.
		for _, j := range idxs {
			f := &h.Events[j]
			if f.Failed || i == j {
				continue
			}
			if int64(e.Resp) < int64(f.Inv) && e.Out > f.Out {
				rep.add(Violation{
					Kind: "fetchadd-order", Addr: addr,
					Msg:    "a later fetch-add observed a smaller counter",
					Events: []Event{*e, *f},
				})
			}
		}
	}
	if failed == 0 {
		// Every attempt responded: the counter must read exactly
		// base..base+(n-1)*delta with nothing lost.
		for n := 0; n < succeeded; n++ {
			if _, ok := seen[base+delta*int64(n)]; !ok {
				rep.add(Violation{
					Kind: "fetchadd-lost", Addr: addr,
					Msg: fmt.Sprintf("no fetch-add observed previous value %d although all %d attempts responded", base+delta*int64(n), succeeded),
				})
				break
			}
		}
	}
}

// checkCASWord validates atomicity of a CAS chain: no two successful swaps
// may consume the same previous value (a fork means both swapped from the
// same state), and a CAS that observed its expected value must succeed.
func checkCASWord(rep *Report, h *History, addr uint64, idxs []int) {
	consumed := make(map[int64]int, len(idxs))
	for _, i := range idxs {
		e := &h.Events[i]
		if e.Failed {
			continue
		}
		if e.Ok {
			if prev, dup := consumed[e.Out]; dup {
				rep.add(Violation{
					Kind: "cas-fork", Addr: addr,
					Msg:    fmt.Sprintf("two successful CASes both swapped from value %d", e.Out),
					Events: []Event{h.Events[prev], *e},
				})
			}
			consumed[e.Out] = i
		} else if e.Out == e.Arg1 {
			rep.add(Violation{
				Kind: "cas-refused", Addr: addr,
				Msg:    fmt.Sprintf("CAS observed its expected value %d yet reported no swap", e.Out),
				Events: []Event{*e},
			})
		}
	}
}

// checkLock validates mutual exclusion: the [grant, release-request] windows
// of one lock id must be disjoint across PEs. (The window undershoots the
// true hold — release takes effect at the manager after Unlock.Inv — so this
// never false-positives.)
func checkLock(rep *Report, h *History, id uint64, idxs []int) {
	type hold struct{ lock, unlock int }
	var holds []hold
	open := make(map[int32]int) // PE -> index of its open Lock event
	for _, i := range idxs {
		e := &h.Events[i]
		switch e.Kind {
		case KindLock:
			if e.Failed {
				continue
			}
			open[e.PE] = i
		case KindUnlock:
			if l, ok := open[e.PE]; ok {
				holds = append(holds, hold{lock: l, unlock: i})
				delete(open, e.PE)
			}
		}
	}
	for a := 0; a < len(holds); a++ {
		la, ua := &h.Events[holds[a].lock], &h.Events[holds[a].unlock]
		for b := a + 1; b < len(holds); b++ {
			lb, ub := &h.Events[holds[b].lock], &h.Events[holds[b].unlock]
			if la.PE == lb.PE {
				continue
			}
			if int64(la.Resp) < int64(ub.Inv) && int64(lb.Resp) < int64(ua.Inv) {
				rep.add(Violation{
					Kind: "lock-overlap", Addr: id,
					Msg:    fmt.Sprintf("PE %d and PE %d held lock %d simultaneously", la.PE, lb.PE, id),
					Events: []Event{*la, *ua, *lb, *ub},
				})
				return
			}
		}
	}
}

// checkBarrier validates barrier semantics: in each round, no PE may be
// released before every participating PE has arrived.
func checkBarrier(rep *Report, h *History, id uint64, idxs []int) {
	rounds := make(map[int32][]int) // PE -> its barrier events in order
	for _, i := range idxs {
		e := &h.Events[i]
		if e.Failed {
			continue
		}
		rounds[e.PE] = append(rounds[e.PE], i)
	}
	if len(rounds) < 2 {
		return
	}
	minRounds := -1
	for _, r := range rounds {
		if minRounds < 0 || len(r) < minRounds {
			minRounds = len(r)
		}
	}
	for k := 0; k < minRounds; k++ {
		var maxInv, minResp int64 = 0, infTime
		var late, early *Event
		for _, r := range rounds {
			e := &h.Events[r[k]]
			if int64(e.Inv) > maxInv {
				maxInv, late = int64(e.Inv), e
			}
			if int64(e.Resp) < minResp {
				minResp, early = int64(e.Resp), e
			}
		}
		if minResp < maxInv {
			rep.add(Violation{
				Kind: "barrier-order", Addr: id,
				Msg:    fmt.Sprintf("round %d: PE %d was released before PE %d arrived", k, early.PE, late.PE),
				Events: []Event{*early, *late},
			})
			return
		}
	}
}
