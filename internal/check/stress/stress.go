// Package stress is the seeded stress runner of the correctness harness:
// it generates a randomized mixed workload (scalar, block, gather/scatter
// global-memory operations, atomics and — in fault-free configurations —
// locks and barriers) over the deterministic simulated transport, under a
// replayable fault schedule (frame loss, delay jitter, a mid-run station
// kill), records the complete operation history and validates it with the
// check package's consistency checker.
//
// Everything is a pure function of Options: running the same Options twice
// yields bit-identical histories (compare History.Digest), which is what
// makes a failing seed a complete bug report.
package stress

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

// Global-memory regions of the workload, in words.
const (
	dataWords = 256 // scalar + block reads/writes, unique non-zero values
	ctrWords  = 16  // FetchAdd counters, uniform +1 deltas
	casWords  = 16  // CAS chains, unique non-zero values
	lockWords = 4   // one word per lock id, mutated only under its lock
)

// Options selects one stress configuration. Every field participates in
// the deterministic replay: same Options, same history.
type Options struct {
	Seed     uint64
	NumPE    int // 2..8
	OpsPerPE int // operations issued per PE
	Caching  bool
	Loss     float64      // frame-loss probability on the simulated medium
	Jitter   sim.Duration // per-frame receive-side delay jitter, 0 = off
	// KillPE > 0 schedules that PE's network station to die at KillAt
	// (never PE 0 — kernel 0 hosts the sync managers and process table).
	// The victim PE winds down shortly before the kill so its exit message
	// still gets out; survivors detect the dead home via the loss budget
	// and skip addresses homed there.
	KillPE int
	KillAt sim.Duration
	// FaultDropInvalidations enables the kernel's test-only coherence fault
	// (writes acknowledged without invalidating remote caches). A run with
	// this set must produce checker violations; the harness tests use it to
	// prove the checker actually catches broken invalidation.
	FaultDropInvalidations bool
}

func (o Options) String() string {
	return fmt.Sprintf("seed=%d pe=%d ops=%d caching=%v loss=%g jitter=%v kill=%d@%v",
		o.Seed, o.NumPE, o.OpsPerPE, o.Caching, o.Loss, o.Jitter, o.KillPE, o.KillAt)
}

// faulty reports whether the configuration can lose messages, which rules
// out the unreliable fire-and-forget operations (locks, barriers) and the
// no-retry block transfers.
func (o Options) faulty() bool { return o.Loss > 0 || o.KillAt > 0 }

// Result is one stress run's outcome.
type Result struct {
	Report  *check.Report
	History *check.History
	Elapsed sim.Duration
	Err     error // first unexpected PE error (nil in a healthy run)
}

// Run executes one seeded stress run and checks its history.
func Run(o Options) (*Result, error) {
	if o.NumPE < 2 {
		o.NumPE = 2
	}
	if o.OpsPerPE <= 0 {
		o.OpsPerPE = 200
	}
	cfg := core.Config{
		NumPE:                  o.NumPE,
		Platform:               platform.SparcSunOS,
		Seed:                   o.Seed,
		Caching:                o.Caching,
		LossProbability:        o.Loss,
		DelayJitter:            o.Jitter,
		RecordHistory:          true,
		FaultDropInvalidations: o.FaultDropInvalidations,
	}
	if o.faulty() {
		cfg.RequestTimeout = 50 * sim.Millisecond
		cfg.RequestRetries = 30
	}
	if o.KillAt > 0 {
		cfg.Kills = []simnet.Kill{{Node: o.KillPE, At: o.KillAt}}
		cfg.PeerLossBudget = 8
	}
	res, err := core.Run(cfg, program(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:  check.Check(res.History),
		History: res.History,
		Elapsed: res.Elapsed,
		Err:     res.FirstErr(),
	}, nil
}

// program builds the per-PE workload body.
func program(o Options) core.Program {
	return func(pe *core.PE) error {
		// SPMD allocation: every PE makes the identical calls, so the
		// regions land at the same addresses cluster-wide.
		data := pe.Alloc(dataWords)
		ctrs := pe.Alloc(ctrWords)
		casb := pe.Alloc(casWords)
		lckw := pe.Alloc(lockWords)

		rng := sim.NewRand(o.Seed ^ (uint64(pe.ID()+1) * 0x9e3779b97f4a7c15))
		w := &worker{pe: pe, o: o, rng: rng, data: data, ctrs: ctrs, casb: casb, lckw: lckw}
		w.casGuess = make([]int64, casWords)

		victim := o.KillPE > 0 && pe.ID() == o.KillPE
		// Leave a quarter of the schedule as margin so the victim's exit
		// message reaches kernel 0 before the station dies.
		stopAt := sim.Time(o.KillAt - o.KillAt/4)

		for i := 0; i < o.OpsPerPE; i++ {
			if victim && pe.Now() >= stopAt {
				return nil
			}
			w.step(i)
			// Fault-free runs rendezvous periodically: barriers are
			// fire-and-forget and must be reached by every PE, so their
			// schedule is fixed, never randomized.
			if !o.faulty() && i%64 == 63 {
				pe.BarrierID(int32(1 + i/64%2))
			}
		}
		return nil
	}
}

// worker is one PE's workload state.
type worker struct {
	pe       *core.PE
	o        Options
	rng      *sim.Rand
	data     uint64
	ctrs     uint64
	casb     uint64
	lckw     uint64
	casGuess []int64
	uniq     int64
	dead     map[int]bool // homes declared down; their addresses are skipped
}

// next returns a cluster-unique non-zero value: the checker's value
// discipline maps every read back to the one write that produced it.
func (w *worker) next() int64 {
	w.uniq++
	return int64(w.pe.ID()+1)<<40 | w.uniq
}

// skip reports whether addr is homed at a kernel already declared down.
func (w *worker) skip(addr uint64) bool {
	return w.dead != nil && w.dead[w.pe.Space().HomeOf(addr)]
}

// note tracks peer-down errors so later operations stop hammering the dead
// home (each would burn the full retry schedule).
func (w *worker) note(err error) {
	var pd *core.PeerDownError
	if errors.As(err, &pd) {
		if w.dead == nil {
			w.dead = make(map[int]bool)
		}
		w.dead[pd.Peer] = true
	}
}

func (w *worker) step(i int) {
	pe, rng := w.pe, w.rng
	switch p := rng.Intn(100); {
	case p < 25: // scalar read
		a := w.data + uint64(rng.Intn(dataWords))
		if w.skip(a) {
			return
		}
		if _, err := pe.GMReadErr(a); err != nil {
			w.note(err)
		}
	case p < 50: // scalar write
		a := w.data + uint64(rng.Intn(dataWords))
		if w.skip(a) {
			return
		}
		if err := pe.GMWriteErr(a, w.next()); err != nil {
			w.note(err)
		}
	case p < 65: // counter fetch-add
		a := w.ctrs + uint64(rng.Intn(ctrWords))
		if w.skip(a) {
			return
		}
		if _, err := pe.FetchAddErr(a, 1); err != nil {
			w.note(err)
		}
	case p < 75: // CAS chain: guess tracks the last observed value
		wi := rng.Intn(casWords)
		a := w.casb + uint64(wi)
		if w.skip(a) {
			return
		}
		nv := w.next()
		out, ok, err := pe.CASErr(a, w.casGuess[wi], nv)
		if err != nil {
			w.note(err)
			return
		}
		if ok {
			w.casGuess[wi] = nv
		} else {
			w.casGuess[wi] = out
		}
	case p < 85: // block/gather read (no-retry transfers: fault-free only)
		if w.o.faulty() {
			a := w.data + uint64(rng.Intn(dataWords))
			if w.skip(a) {
				return
			}
			if _, err := pe.GMReadErr(a); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			n := 2 + rng.Intn(15)
			off := rng.Intn(dataWords - n)
			pe.GMReadBlock(w.data+uint64(off), n)
		} else {
			addrs := make([]uint64, 2+rng.Intn(7))
			for j := range addrs {
				addrs[j] = w.data + uint64(rng.Intn(dataWords))
			}
			pe.GMGather(addrs)
		}
	case p < 95: // block/scatter write (fault-free only)
		if w.o.faulty() {
			a := w.data + uint64(rng.Intn(dataWords))
			if w.skip(a) {
				return
			}
			if err := pe.GMWriteErr(a, w.next()); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			n := 2 + rng.Intn(15)
			off := rng.Intn(dataWords - n)
			words := make([]int64, n)
			for j := range words {
				words[j] = w.next()
			}
			pe.GMWriteBlock(w.data+uint64(off), words)
		} else {
			n := 2 + rng.Intn(7)
			addrs := make([]uint64, n)
			vals := make([]int64, n)
			for j := range addrs {
				addrs[j] = w.data + uint64(rng.Intn(dataWords))
				vals[j] = w.next()
			}
			pe.GMScatter(addrs, vals)
		}
	default: // lock-protected read-modify-write (fire-and-forget: fault-free only)
		if w.o.faulty() {
			a := w.ctrs + uint64(rng.Intn(ctrWords))
			if w.skip(a) {
				return
			}
			if _, err := pe.FetchAddErr(a, 1); err != nil {
				w.note(err)
			}
			return
		}
		id := int32(rng.Intn(lockWords))
		pe.Lock(id)
		a := w.lckw + uint64(id)
		if _, err := pe.GMReadErr(a); err == nil {
			_ = pe.GMWriteErr(a, w.next())
		}
		pe.Unlock(id)
	}
}
