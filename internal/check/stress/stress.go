// Package stress is the seeded stress runner of the correctness harness:
// it generates a randomized mixed workload (scalar, block, gather/scatter
// global-memory operations, atomics and — in fault-free configurations —
// locks and barriers) over the deterministic simulated transport, under a
// replayable fault schedule (frame loss, delay jitter, a mid-run station
// kill), records the complete operation history and validates it with the
// check package's consistency checker.
//
// Everything is a pure function of Options: running the same Options twice
// yields bit-identical histories (compare History.Digest), which is what
// makes a failing seed a complete bug report.
package stress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

// Global-memory regions of the workload, in words.
const (
	dataWords = 256 // scalar + block reads/writes, unique non-zero values
	ctrWords  = 16  // FetchAdd counters, uniform +1 deltas
	casWords  = 16  // CAS chains, unique non-zero values
	lockWords = 4   // one word per lock id, mutated only under its lock
)

// Options selects one stress configuration. Every field participates in
// the deterministic replay: same Options, same history.
type Options struct {
	Seed     uint64
	NumPE    int // 2..8
	OpsPerPE int // operations issued per PE
	Caching  bool
	Loss     float64      // frame-loss probability on the simulated medium
	Jitter   sim.Duration // per-frame receive-side delay jitter, 0 = off
	// KillPE > 0 schedules that PE's network station to die at KillAt
	// (never PE 0 — kernel 0 hosts the sync managers and process table).
	// The victim PE winds down shortly before the kill so its exit message
	// still gets out; survivors detect the dead home via the loss budget
	// and skip addresses homed there.
	KillPE int
	KillAt sim.Duration
	// FaultDropInvalidations enables the kernel's test-only coherence fault
	// (writes acknowledged without invalidating remote caches). A run with
	// this set must produce checker violations; the harness tests use it to
	// prove the checker actually catches broken invalidation.
	FaultDropInvalidations bool
	// Recover enables coordinated checkpoint/restart: the workload
	// checkpoints every CkptEvery ops, the scheduled kill takes the victim
	// down abruptly (no wind-down — the snapshot, not a graceful exit, is
	// what survives), and the run goes through core.RunWithRecovery, so it
	// must complete with a checker-clean history after the restart. Loss is
	// forced to 0: checkpoint barriers are fire-and-forget arrivals with no
	// retransmit, so a lossy medium could wedge the collective.
	Recover bool
	// CkptEvery is the checkpoint period in ops per PE (0 = 64). Every PE
	// checkpoints at the same op indices — Checkpoint is collective.
	CkptEvery int
	// FaultCorruptSnapshot flips a byte in every stored snapshot object
	// between the failure and the restart. The store's CRC/content-hash
	// verification must refuse the snapshot: Run returns an error
	// mentioning the corruption instead of restoring garbage.
	FaultCorruptSnapshot bool
	// Shards sets core.Config.KernelShards (0 keeps the default — one shard
	// under the simulated transport). The simulated transport dispatches
	// shards inline, so any shard count must replay bit-identically to the
	// same Options with Shards unset: the history digest is the proof.
	Shards int
	// DirectReads passes through core.Config.DirectReads (the one-sided read
	// fast path; <0 forces it off, >0 forces it on where co-located).
	DirectReads int
	// Rings passes through core.Config.WriteRings (the one-sided write
	// submission rings; <0 forces them off, >0 forces them on where the read
	// window is wired). Under the simulated transport rings drain inline at
	// the submit point, so ring runs replay deterministically like all
	// others.
	Rings int
}

func (o Options) String() string {
	s := fmt.Sprintf("seed=%d pe=%d ops=%d caching=%v loss=%g jitter=%v kill=%d@%v",
		o.Seed, o.NumPE, o.OpsPerPE, o.Caching, o.Loss, o.Jitter, o.KillPE, o.KillAt)
	if o.Recover {
		s += fmt.Sprintf(" recover(every=%d)", o.CkptEvery)
	}
	if o.Shards != 0 {
		s += fmt.Sprintf(" shards=%d", o.Shards)
	}
	if o.DirectReads != 0 {
		s += fmt.Sprintf(" direct=%d", o.DirectReads)
	}
	if o.Rings != 0 {
		s += fmt.Sprintf(" rings=%d", o.Rings)
	}
	return s
}

// faulty reports whether the configuration can lose messages, which rules
// out the unreliable fire-and-forget operations (locks, barriers) and the
// no-retry block transfers.
func (o Options) faulty() bool { return o.Loss > 0 || o.KillAt > 0 }

// Result is one stress run's outcome.
type Result struct {
	Report  *check.Report
	History *check.History
	Elapsed sim.Duration
	Err     error // first unexpected PE error (nil in a healthy run)
	// Recovery reports checkpoint/restart activity (nil unless
	// Options.Recover).
	Recovery *core.RecoveryReport
	// SnapshotBytes is the total encoded checkpoint data written across all
	// PEs and epochs (0 unless Options.Recover).
	SnapshotBytes uint64
}

// Run executes one seeded stress run and checks its history.
func Run(o Options) (*Result, error) {
	if o.NumPE < 2 {
		o.NumPE = 2
	}
	if o.OpsPerPE <= 0 {
		o.OpsPerPE = 200
	}
	if o.Recover {
		o.Loss = 0 // see Options.Recover: lossy barrier arrivals could wedge
	}
	cfg := core.Config{
		NumPE:                  o.NumPE,
		Platform:               platform.SparcSunOS,
		Seed:                   o.Seed,
		Caching:                o.Caching,
		LossProbability:        o.Loss,
		DelayJitter:            o.Jitter,
		RecordHistory:          true,
		FaultDropInvalidations: o.FaultDropInvalidations,
		KernelShards:           o.Shards,
		DirectReads:            o.DirectReads,
		WriteRings:             o.Rings,
	}
	if o.faulty() {
		cfg.RequestTimeout = 50 * sim.Millisecond
		cfg.RequestRetries = 30
	}
	if o.KillAt > 0 {
		cfg.Kills = []simnet.Kill{{Node: o.KillPE, At: o.KillAt}}
		cfg.PeerLossBudget = 8
	}
	if o.Recover {
		return runRecover(o, cfg)
	}
	res, err := core.Run(cfg, program(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:  check.Check(res.History),
		History: res.History,
		Elapsed: res.Elapsed,
		Err:     res.FirstErr(),
	}, nil
}

// maxRecoveries bounds restart attempts per stress run; the deterministic
// schedules kill at most one PE, so one recovery should always suffice.
const maxRecoveries = 3

// runRecover drives the checkpointing workload through core.RunWithRecovery
// against a throwaway on-disk snapshot store.
func runRecover(o Options, cfg core.Config) (*Result, error) {
	if o.CkptEvery <= 0 {
		o.CkptEvery = 64
	}
	// Loss was forced to 0 by Run; the kill (if any) stays scheduled.
	dir, err := os.MkdirTemp("", "dse-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var store ckpt.Store
	store, err = ckpt.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	if o.FaultCorruptSnapshot {
		store = &corruptingStore{Store: store, root: dir}
	}
	cfg.Ckpt = &core.CheckpointConfig{Store: store}
	res, rep, err := core.RunWithRecovery(cfg, maxRecoveries, recoverProgram(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:        check.Check(res.History),
		History:       res.History,
		Elapsed:       res.Elapsed,
		Err:           res.FirstErr(),
		Recovery:      rep,
		SnapshotBytes: res.Total.SnapshotBytes,
	}, nil
}

// corruptingStore flips a byte in every stored object the moment recovery
// first reads the snapshot back, modelling at-rest corruption. The
// underlying store's integrity checks must catch it.
type corruptingStore struct {
	ckpt.Store
	root string
	done bool
}

func (s *corruptingStore) ReadSlice(gen uint64, pe int) ([]byte, error) {
	if !s.done {
		s.done = true
		objs, err := filepath.Glob(filepath.Join(s.root, "objects", "*"))
		if err != nil {
			return nil, err
		}
		for _, p := range objs {
			data, err := os.ReadFile(p)
			if err != nil || len(data) == 0 {
				return nil, fmt.Errorf("corruptingStore: %s: %v", p, err)
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(p, data, 0o644); err != nil {
				return nil, err
			}
		}
	}
	return s.Store.ReadSlice(gen, pe)
}

// program builds the per-PE workload body.
func program(o Options) core.Program {
	return func(pe *core.PE) error {
		// SPMD allocation: every PE makes the identical calls, so the
		// regions land at the same addresses cluster-wide.
		data := pe.Alloc(dataWords)
		ctrs := pe.Alloc(ctrWords)
		casb := pe.Alloc(casWords)
		lckw := pe.Alloc(lockWords)

		rng := sim.NewRand(o.Seed ^ (uint64(pe.ID()+1) * 0x9e3779b97f4a7c15))
		w := &worker{pe: pe, o: o, rng: rng, data: data, ctrs: ctrs, casb: casb, lckw: lckw}
		w.casGuess = make([]int64, casWords)

		victim := o.KillPE > 0 && pe.ID() == o.KillPE
		// Leave a quarter of the schedule as margin so the victim's exit
		// message reaches kernel 0 before the station dies.
		stopAt := sim.Time(o.KillAt - o.KillAt/4)

		for i := 0; i < o.OpsPerPE; i++ {
			if victim && pe.Now() >= stopAt {
				return nil
			}
			w.step(i)
			// Fault-free runs rendezvous periodically: barriers are
			// fire-and-forget and must be reached by every PE, so their
			// schedule is fixed, never randomized.
			if !o.faulty() && i%64 == 63 {
				pe.BarrierID(int32(1 + i/64%2))
			}
		}
		return nil
	}
}

// recoverProgram is the checkpointing variant of the workload body: the
// same faulty-mode op mix (retryable scalar ops and atomics only), with a
// collective checkpoint every CkptEvery ops. The victim runs at full tilt
// into the scheduled kill — no wind-down — so everything past the last
// checkpoint is genuinely lost and must be recovered from the snapshot.
//
// The checkpoint blob carries each PE's resume index, unique-value counter
// and CAS guesses: the restarted incarnation continues the op schedule
// after the checkpoint without ever reusing a value (the checker's value
// discipline spans the snapshot baseline and the rerun).
func recoverProgram(o Options) core.Program {
	return func(pe *core.PE) error {
		data := pe.Alloc(dataWords)
		ctrs := pe.Alloc(ctrWords)
		casb := pe.Alloc(casWords)
		lckw := pe.Alloc(lockWords)

		rng := sim.NewRand(o.Seed ^ (uint64(pe.ID()+1) * 0x9e3779b97f4a7c15))
		w := &worker{pe: pe, o: o, rng: rng, data: data, ctrs: ctrs, casb: casb, lckw: lckw}
		w.casGuess = make([]int64, casWords)
		pe.RegisterCheckpoint(w.saveBlob, w.restoreBlob)

		for i := w.resume; i < o.OpsPerPE; i++ {
			w.step(i)
			if (i+1)%o.CkptEvery == 0 {
				w.resume = i + 1
				if err := pe.Checkpoint(); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// worker is one PE's workload state.
type worker struct {
	pe       *core.PE
	o        Options
	rng      *sim.Rand
	data     uint64
	ctrs     uint64
	casb     uint64
	lckw     uint64
	casGuess []int64
	uniq     int64
	dead     map[int]bool // homes declared down; their addresses are skipped
	resume   int          // recover mode: op index the next incarnation starts at
}

// saveBlob snapshots the workload state a restarted incarnation needs:
// [resume, uniq, casGuess...], little-endian 64-bit words.
func (w *worker) saveBlob() []byte {
	buf := make([]byte, 0, (2+len(w.casGuess))*8)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.resume))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.uniq))
	for _, g := range w.casGuess {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g))
	}
	return buf
}

func (w *worker) restoreBlob(b []byte) {
	if len(b) != (2+len(w.casGuess))*8 {
		return // foreign blob: start from scratch rather than corrupt state
	}
	w.resume = int(binary.LittleEndian.Uint64(b[0:]))
	w.uniq = int64(binary.LittleEndian.Uint64(b[8:]))
	for i := range w.casGuess {
		w.casGuess[i] = int64(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
}

// next returns a cluster-unique non-zero value: the checker's value
// discipline maps every read back to the one write that produced it.
func (w *worker) next() int64 {
	w.uniq++
	return int64(w.pe.ID()+1)<<40 | w.uniq
}

// skip reports whether addr is homed at a kernel already declared down.
func (w *worker) skip(addr uint64) bool {
	return w.dead != nil && w.dead[w.pe.Space().HomeOf(addr)]
}

// note tracks peer-down errors so later operations stop hammering the dead
// home (each would burn the full retry schedule).
func (w *worker) note(err error) {
	var pd *core.PeerDownError
	if errors.As(err, &pd) {
		if w.dead == nil {
			w.dead = make(map[int]bool)
		}
		w.dead[pd.Peer] = true
	}
}

func (w *worker) step(i int) {
	pe, rng := w.pe, w.rng
	switch p := rng.Intn(100); {
	case p < 25: // scalar read
		a := w.data + uint64(rng.Intn(dataWords))
		if w.skip(a) {
			return
		}
		if _, err := pe.GMReadErr(a); err != nil {
			w.note(err)
		}
	case p < 50: // scalar write
		a := w.data + uint64(rng.Intn(dataWords))
		if w.skip(a) {
			return
		}
		if err := pe.GMWriteErr(a, w.next()); err != nil {
			w.note(err)
		}
	case p < 65: // counter fetch-add
		a := w.ctrs + uint64(rng.Intn(ctrWords))
		if w.skip(a) {
			return
		}
		if _, err := pe.FetchAddErr(a, 1); err != nil {
			w.note(err)
		}
	case p < 75: // CAS chain: guess tracks the last observed value
		wi := rng.Intn(casWords)
		a := w.casb + uint64(wi)
		if w.skip(a) {
			return
		}
		nv := w.next()
		out, ok, err := pe.CASErr(a, w.casGuess[wi], nv)
		if err != nil {
			w.note(err)
			return
		}
		if ok {
			w.casGuess[wi] = nv
		} else {
			w.casGuess[wi] = out
		}
	case p < 85: // block/gather read (no-retry transfers: fault-free only)
		if w.o.faulty() {
			a := w.data + uint64(rng.Intn(dataWords))
			if w.skip(a) {
				return
			}
			if _, err := pe.GMReadErr(a); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			n := 2 + rng.Intn(15)
			off := rng.Intn(dataWords - n)
			pe.GMReadBlock(w.data+uint64(off), n)
		} else {
			addrs := make([]uint64, 2+rng.Intn(7))
			for j := range addrs {
				addrs[j] = w.data + uint64(rng.Intn(dataWords))
			}
			pe.GMGather(addrs)
		}
	case p < 95: // block/scatter write (fault-free only)
		if w.o.faulty() {
			a := w.data + uint64(rng.Intn(dataWords))
			if w.skip(a) {
				return
			}
			if err := pe.GMWriteErr(a, w.next()); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			n := 2 + rng.Intn(15)
			off := rng.Intn(dataWords - n)
			words := make([]int64, n)
			for j := range words {
				words[j] = w.next()
			}
			pe.GMWriteBlock(w.data+uint64(off), words)
		} else {
			n := 2 + rng.Intn(7)
			addrs := make([]uint64, n)
			vals := make([]int64, n)
			for j := range addrs {
				addrs[j] = w.data + uint64(rng.Intn(dataWords))
				vals[j] = w.next()
			}
			pe.GMScatter(addrs, vals)
		}
	default: // lock-protected read-modify-write (fire-and-forget: fault-free only)
		if w.o.faulty() {
			a := w.ctrs + uint64(rng.Intn(ctrWords))
			if w.skip(a) {
				return
			}
			if _, err := pe.FetchAddErr(a, 1); err != nil {
				w.note(err)
			}
			return
		}
		id := int32(rng.Intn(lockWords))
		pe.Lock(id)
		a := w.lckw + uint64(id)
		if _, err := pe.GMReadErr(a); err == nil {
			_ = pe.GMWriteErr(a, w.next())
		}
		pe.Unlock(id)
	}
}
