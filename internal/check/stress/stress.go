// Package stress is the seeded stress runner of the correctness harness:
// it generates a randomized mixed workload (scalar, block, gather/scatter
// global-memory operations, atomics and — in fault-free configurations —
// locks and barriers) over the deterministic simulated transport, under a
// replayable fault schedule (frame loss, delay jitter, a mid-run station
// kill), records the complete operation history and validates it with the
// check package's consistency checker.
//
// Everything is a pure function of Options: running the same Options twice
// yields bit-identical histories (compare History.Digest), which is what
// makes a failing seed a complete bug report.
package stress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

// Global-memory regions of the workload, in words.
const (
	dataWords = 256 // scalar + block reads/writes, unique non-zero values
	ctrWords  = 16  // FetchAdd counters, uniform +1 deltas
	casWords  = 16  // CAS chains, unique non-zero values
	lockWords = 4   // one word per lock id, mutated only under its lock

	// Modes runs add two more data regions under the weaker consistency
	// tiers (DESIGN.md §14); scalar and block traffic mixes across all three
	// tiers while atomics stay on the strong regions.
	relWords   = 128 // ModeRelease: writes buffered, flushed at sync edges
	leaseWords = 128 // ModeLease: reads served from time-bounded block leases
)

// Options selects one stress configuration. Every field participates in
// the deterministic replay: same Options, same history.
type Options struct {
	Seed     uint64
	NumPE    int // 2..8
	OpsPerPE int // operations issued per PE
	Caching  bool
	Loss     float64      // frame-loss probability on the simulated medium
	Jitter   sim.Duration // per-frame receive-side delay jitter, 0 = off
	// KillPE > 0 schedules that PE's network station to die at KillAt
	// (never PE 0 — kernel 0 hosts the sync managers and process table).
	// The victim PE winds down shortly before the kill so its exit message
	// still gets out; survivors detect the dead home via the loss budget
	// and skip addresses homed there.
	KillPE int
	KillAt sim.Duration
	// FaultDropInvalidations enables the kernel's test-only coherence fault
	// (writes acknowledged without invalidating remote caches). A run with
	// this set must produce checker violations; the harness tests use it to
	// prove the checker actually catches broken invalidation.
	FaultDropInvalidations bool
	// Recover enables coordinated checkpoint/restart: the workload
	// checkpoints every CkptEvery ops, the scheduled kill takes the victim
	// down abruptly (no wind-down — the snapshot, not a graceful exit, is
	// what survives), and the run goes through core.RunWithRecovery, so it
	// must complete with a checker-clean history after the restart. Loss is
	// forced to 0: checkpoint barriers are fire-and-forget arrivals with no
	// retransmit, so a lossy medium could wedge the collective.
	Recover bool
	// CkptEvery is the checkpoint period in ops per PE (0 = 64). Every PE
	// checkpoints at the same op indices — Checkpoint is collective.
	CkptEvery int
	// FaultCorruptSnapshot flips a byte in every stored snapshot object
	// between the failure and the restart. The store's CRC/content-hash
	// verification must refuse the snapshot: Run returns an error
	// mentioning the corruption instead of restoring garbage.
	FaultCorruptSnapshot bool
	// Shards sets core.Config.KernelShards (0 keeps the default — one shard
	// under the simulated transport). The simulated transport dispatches
	// shards inline, so any shard count must replay bit-identically to the
	// same Options with Shards unset: the history digest is the proof.
	Shards int
	// DirectReads passes through core.Config.DirectReads (the one-sided read
	// fast path; <0 forces it off, >0 forces it on where co-located).
	DirectReads int
	// Rings passes through core.Config.WriteRings (the one-sided write
	// submission rings; <0 forces them off, >0 forces them on where the read
	// window is wired). Under the simulated transport rings drain inline at
	// the submit point, so ring runs replay deterministically like all
	// others.
	Rings int

	// Membership schedule (requires the uncached protocol; incompatible
	// with Recover). Latent provisions that many PEs at the tail of the id
	// range as latent members — clients that own no global memory — and
	// each joins live at op index JoinAtOp + 32*k (k-th latent PE), taking
	// over its probe-rule share while the workload keeps running.
	Latent   int
	JoinAtOp int // op index the first latent PE joins at (0 = OpsPerPE/4)
	// LeaveAtOp > 0 schedules PE LeavePE (never 0 — kernel 0 hosts the
	// grant service and sync managers; 0 = the highest initially-active PE)
	// to leave voluntarily at that op index, handing its blocks to its
	// successor and continuing as a pure client.
	LeavePE   int
	LeaveAtOp int
	// MigrateEvery > 0 makes PE 1 re-home a random 1-2 block range of the
	// data region to a random active peer every MigrateEvery ops, so
	// migrations overlap the join/leave transitions and — in kill
	// schedules — the station death. Modes runs re-home the release region
	// half the time instead, so handoffs overlap unflushed WC buffers.
	MigrateEvery int

	// Modes mixes the three consistency tiers in one run: two extra data
	// regions are allocated under ModeRelease and ModeLease and a third of
	// the scalar/block/gather/scatter traffic lands on each tier. Atomics
	// stay on the strong regions (they always run the strong protocol, and
	// the release rules forbid atomics sharing words with buffered writes).
	Modes bool
	// LeaseDuration passes through core.Config.LeaseDuration. 0 in a Modes
	// run picks a short 300µs lease so expiries actually occur mid-run.
	LeaseDuration sim.Duration
	// FaultSkipReleaseFlush passes through the kernel's TEST-ONLY release
	// fault (sync edges discard the WC buffer instead of publishing it). A
	// Modes run with this set must produce checker violations.
	FaultSkipReleaseFlush bool
	// FaultIgnoreLeaseExpiry passes through the kernel's TEST-ONLY lease
	// fault (expired leases keep serving reads). A Modes run with this set
	// must produce checker violations.
	FaultIgnoreLeaseExpiry bool
}

// migratorPE issues the scheduled MigrateRange calls. Never 0 (kernel 0
// must stay free to serve grants) and never latent (latent PEs sit at the
// tail of the id range).
const migratorPE = 1

func (o Options) String() string {
	s := fmt.Sprintf("seed=%d pe=%d ops=%d caching=%v loss=%g jitter=%v kill=%d@%v",
		o.Seed, o.NumPE, o.OpsPerPE, o.Caching, o.Loss, o.Jitter, o.KillPE, o.KillAt)
	if o.Recover {
		s += fmt.Sprintf(" recover(every=%d)", o.CkptEvery)
	}
	if o.Shards != 0 {
		s += fmt.Sprintf(" shards=%d", o.Shards)
	}
	if o.DirectReads != 0 {
		s += fmt.Sprintf(" direct=%d", o.DirectReads)
	}
	if o.Rings != 0 {
		s += fmt.Sprintf(" rings=%d", o.Rings)
	}
	if o.Latent > 0 {
		s += fmt.Sprintf(" latent=%d join@%d", o.Latent, o.JoinAtOp)
	}
	if o.LeaveAtOp > 0 {
		s += fmt.Sprintf(" leave=%d@%d", o.LeavePE, o.LeaveAtOp)
	}
	if o.MigrateEvery > 0 {
		s += fmt.Sprintf(" migrate/%d", o.MigrateEvery)
	}
	if o.Modes {
		s += " modes"
		if o.LeaseDuration > 0 {
			s += fmt.Sprintf("(lease=%v)", o.LeaseDuration)
		}
	}
	if o.FaultSkipReleaseFlush {
		s += " fault=skip-release-flush"
	}
	if o.FaultIgnoreLeaseExpiry {
		s += " fault=ignore-lease-expiry"
	}
	return s
}

// membership reports whether any live join/leave/re-home event is scheduled.
func (o Options) membership() bool {
	return o.Latent > 0 || o.LeaveAtOp > 0 || o.MigrateEvery > 0
}

// faulty reports whether the configuration can lose messages, which rules
// out the unreliable fire-and-forget operations (locks, barriers) and the
// no-retry block transfers.
func (o Options) faulty() bool { return o.Loss > 0 || o.KillAt > 0 }

// Result is one stress run's outcome.
type Result struct {
	Report  *check.Report
	History *check.History
	Elapsed sim.Duration
	Err     error // first unexpected PE error (nil in a healthy run)
	// Recovery reports checkpoint/restart activity (nil unless
	// Options.Recover).
	Recovery *core.RecoveryReport
	// SnapshotBytes is the total encoded checkpoint data written across all
	// PEs and epochs (0 unless Options.Recover).
	SnapshotBytes uint64
	// Membership event totals across all PEs (0 unless a membership
	// schedule was set): joins and leaves completed, migrations initiated
	// and blocks handed to a new home.
	Joins, Leaves, Migrations, MigratedBlocks uint64
	// Consistency-tier totals (0 unless Options.Modes): WC buffer drains at
	// sync edges, leases fetched, leases dropped by expiry.
	WCFlushes, LeaseGrants, LeaseExpiries uint64
}

// Run executes one seeded stress run and checks its history.
func Run(o Options) (*Result, error) {
	if o.NumPE < 2 {
		o.NumPE = 2
	}
	if o.OpsPerPE <= 0 {
		o.OpsPerPE = 200
	}
	if o.Recover {
		o.Loss = 0 // see Options.Recover: lossy barrier arrivals could wedge
	}
	if o.membership() {
		if o.Caching {
			return nil, fmt.Errorf("stress: membership schedules require the uncached protocol")
		}
		if o.Recover {
			return nil, fmt.Errorf("stress: membership schedules cannot combine with Recover")
		}
		if o.Latent >= o.NumPE {
			return nil, fmt.Errorf("stress: %d latent of %d PEs leaves no active member", o.Latent, o.NumPE)
		}
		if o.Latent > 0 && o.JoinAtOp <= 0 {
			o.JoinAtOp = o.OpsPerPE / 4
		}
		if o.LeaveAtOp > 0 {
			if o.LeavePE <= 0 {
				o.LeavePE = o.NumPE - o.Latent - 1
			}
			if o.LeavePE <= 0 {
				return nil, fmt.Errorf("stress: no PE besides kernel 0 can leave (pe=%d latent=%d)", o.NumPE, o.Latent)
			}
		}
	}
	if o.Modes && o.Recover {
		return nil, fmt.Errorf("stress: Modes cannot combine with Recover (the recovery workload is scalar-strong)")
	}
	if o.Modes && o.LeaseDuration == 0 {
		o.LeaseDuration = 300 * sim.Microsecond
	}
	cfg := core.Config{
		NumPE:                  o.NumPE,
		Platform:               platform.SparcSunOS,
		Seed:                   o.Seed,
		Caching:                o.Caching,
		LossProbability:        o.Loss,
		DelayJitter:            o.Jitter,
		RecordHistory:          true,
		FaultDropInvalidations: o.FaultDropInvalidations,
		KernelShards:           o.Shards,
		DirectReads:            o.DirectReads,
		WriteRings:             o.Rings,
		LatentPEs:              o.Latent,
		LeaseDuration:          o.LeaseDuration,
		FaultSkipReleaseFlush:  o.FaultSkipReleaseFlush,
		FaultIgnoreLeaseExpiry: o.FaultIgnoreLeaseExpiry,
	}
	if o.faulty() {
		cfg.RequestTimeout = 50 * sim.Millisecond
		cfg.RequestRetries = 30
	}
	if o.KillAt > 0 {
		cfg.Kills = []simnet.Kill{{Node: o.KillPE, At: o.KillAt}}
		cfg.PeerLossBudget = 8
	}
	if o.Recover {
		return runRecover(o, cfg)
	}
	res, err := core.Run(cfg, program(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:         check.Check(res.History),
		History:        res.History,
		Elapsed:        res.Elapsed,
		Err:            res.FirstErr(),
		Joins:          res.Total.Joins,
		Leaves:         res.Total.Leaves,
		Migrations:     res.Total.Migrations,
		MigratedBlocks: res.Total.MigratedBlocks,
		WCFlushes:      res.Total.WCFlushes,
		LeaseGrants:    res.Total.LeaseGrants,
		LeaseExpiries:  res.Total.LeaseExpiries,
	}, nil
}

// maxRecoveries bounds restart attempts per stress run; the deterministic
// schedules kill at most one PE, so one recovery should always suffice.
const maxRecoveries = 3

// runRecover drives the checkpointing workload through core.RunWithRecovery
// against a throwaway on-disk snapshot store.
func runRecover(o Options, cfg core.Config) (*Result, error) {
	if o.CkptEvery <= 0 {
		o.CkptEvery = 64
	}
	// Loss was forced to 0 by Run; the kill (if any) stays scheduled.
	dir, err := os.MkdirTemp("", "dse-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var store ckpt.Store
	store, err = ckpt.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	if o.FaultCorruptSnapshot {
		store = &corruptingStore{Store: store, root: dir}
	}
	cfg.Ckpt = &core.CheckpointConfig{Store: store}
	res, rep, err := core.RunWithRecovery(cfg, maxRecoveries, recoverProgram(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:        check.Check(res.History),
		History:       res.History,
		Elapsed:       res.Elapsed,
		Err:           res.FirstErr(),
		Recovery:      rep,
		SnapshotBytes: res.Total.SnapshotBytes,
	}, nil
}

// corruptingStore flips a byte in every stored object the moment recovery
// first reads the snapshot back, modelling at-rest corruption. The
// underlying store's integrity checks must catch it.
type corruptingStore struct {
	ckpt.Store
	root string
	done bool
}

func (s *corruptingStore) ReadSlice(gen uint64, pe int) ([]byte, error) {
	if !s.done {
		s.done = true
		objs, err := filepath.Glob(filepath.Join(s.root, "objects", "*"))
		if err != nil {
			return nil, err
		}
		for _, p := range objs {
			data, err := os.ReadFile(p)
			if err != nil || len(data) == 0 {
				return nil, fmt.Errorf("corruptingStore: %s: %v", p, err)
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(p, data, 0o644); err != nil {
				return nil, err
			}
		}
	}
	return s.Store.ReadSlice(gen, pe)
}

// program builds the per-PE workload body.
func program(o Options) core.Program {
	return func(pe *core.PE) error {
		// SPMD allocation: every PE makes the identical calls, so the
		// regions land at the same addresses cluster-wide.
		data := pe.Alloc(dataWords)
		ctrs := pe.Alloc(ctrWords)
		casb := pe.Alloc(casWords)
		lckw := pe.Alloc(lockWords)

		rng := sim.NewRand(o.Seed ^ (uint64(pe.ID()+1) * 0x9e3779b97f4a7c15))
		w := &worker{pe: pe, o: o, rng: rng, data: data, ctrs: ctrs, casb: casb, lckw: lckw}
		if o.Modes {
			// Same SPMD discipline: the mode tables agree cluster-wide.
			w.rel = pe.AllocMode(relWords, gmem.ModeRelease)
			w.lea = pe.AllocMode(leaseWords, gmem.ModeLease)
		}
		w.casGuess = make([]int64, casWords)
		w.joinAt, w.leaveAt = -1, -1
		if base := o.NumPE - o.Latent; o.Latent > 0 && pe.ID() >= base {
			// Stagger the latent PEs' joins so the grant service serialises
			// overlapping transition requests rather than a fixed order.
			w.joinAt = o.JoinAtOp + 32*(pe.ID()-base)
		}
		if o.LeaveAtOp > 0 && pe.ID() == o.LeavePE {
			w.leaveAt = o.LeaveAtOp
		}

		victim := o.KillPE > 0 && pe.ID() == o.KillPE
		// Leave a quarter of the schedule as margin so the victim's exit
		// message reaches kernel 0 before the station dies.
		stopAt := sim.Time(o.KillAt - o.KillAt/4)

		for i := 0; i < o.OpsPerPE; i++ {
			if victim && pe.Now() >= stopAt {
				return nil
			}
			if err := w.membershipStep(i); err != nil {
				return err
			}
			w.step(i)
			// Fault-free runs rendezvous periodically: barriers are
			// fire-and-forget and must be reached by every PE, so their
			// schedule is fixed, never randomized.
			if !o.faulty() && i%64 == 63 {
				pe.BarrierID(int32(1 + i/64%2))
			}
		}
		return nil
	}
}

// recoverProgram is the checkpointing variant of the workload body: the
// same faulty-mode op mix (retryable scalar ops and atomics only), with a
// collective checkpoint every CkptEvery ops. The victim runs at full tilt
// into the scheduled kill — no wind-down — so everything past the last
// checkpoint is genuinely lost and must be recovered from the snapshot.
//
// The checkpoint blob carries each PE's resume index, unique-value counter
// and CAS guesses: the restarted incarnation continues the op schedule
// after the checkpoint without ever reusing a value (the checker's value
// discipline spans the snapshot baseline and the rerun).
func recoverProgram(o Options) core.Program {
	return func(pe *core.PE) error {
		data := pe.Alloc(dataWords)
		ctrs := pe.Alloc(ctrWords)
		casb := pe.Alloc(casWords)
		lckw := pe.Alloc(lockWords)

		rng := sim.NewRand(o.Seed ^ (uint64(pe.ID()+1) * 0x9e3779b97f4a7c15))
		w := &worker{pe: pe, o: o, rng: rng, data: data, ctrs: ctrs, casb: casb, lckw: lckw}
		w.casGuess = make([]int64, casWords)
		pe.RegisterCheckpoint(w.saveBlob, w.restoreBlob)

		for i := w.resume; i < o.OpsPerPE; i++ {
			w.step(i)
			if (i+1)%o.CkptEvery == 0 {
				w.resume = i + 1
				if err := pe.Checkpoint(); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// worker is one PE's workload state.
type worker struct {
	pe       *core.PE
	o        Options
	rng      *sim.Rand
	data     uint64
	ctrs     uint64
	casb     uint64
	lckw     uint64
	rel      uint64 // Modes: ModeRelease region base
	lea      uint64 // Modes: ModeLease region base
	casGuess []int64
	uniq     int64
	dead     map[int]bool // homes declared down; their addresses are skipped
	resume   int          // recover mode: op index the next incarnation starts at
	joinAt   int          // op index this (latent) PE joins at; -1 = never
	leaveAt  int          // op index this PE leaves at; -1 = never
}

// membershipStep fires any membership event scheduled at op index i: this
// PE's join or leave, or — on the migrator — a periodic block re-homing.
// With a kill scheduled the in-flight handoffs can die mid-protocol; those
// errors are tolerated (the checker still validates every surviving
// operation), but in a fault-free run a failed transition fails the PE.
func (w *worker) membershipStep(i int) error {
	pe := w.pe
	if i == w.joinAt {
		if err := pe.Join(); err != nil {
			w.note(err)
			if !w.o.faulty() {
				return fmt.Errorf("join at op %d: %w", i, err)
			}
		}
	}
	if i == w.leaveAt {
		if err := pe.Leave(); err != nil {
			w.note(err)
			if !w.o.faulty() {
				return fmt.Errorf("leave at op %d: %w", i, err)
			}
		}
	}
	if w.o.MigrateEvery > 0 && pe.ID() == migratorPE && i > 0 && i%w.o.MigrateEvery == 0 {
		return w.migrateOnce(i)
	}
	return nil
}

// migrateOnce re-homes a random 1-2 block range of the data region — or, in
// Modes runs, of the release region half the time, so handoffs overlap other
// PEs' unflushed WC buffers — to a random active member. A destination that
// concurrently left the membership between the snapshot and the call is a
// benign race, not a failure.
func (w *worker) migrateOnce(i int) error {
	pe := w.pe
	bw := pe.Space().BlockWords
	base, words := w.data, dataWords
	if w.o.Modes && w.rng.Intn(2) == 0 {
		base, words = w.rel, relWords
	}
	blocks := words / bw
	if blocks < 1 {
		return nil
	}
	nblocks := 1
	if blocks > 1 && w.rng.Intn(2) == 0 {
		nblocks = 2
	}
	off := w.rng.Intn(blocks - nblocks + 1)
	addr := base + uint64(off*bw)
	var cands []int
	for id, m := range pe.Members() {
		if m.State == gmem.MemberActive && (w.dead == nil || !w.dead[id]) {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	dst := cands[w.rng.Intn(len(cands))]
	if err := pe.MigrateRange(addr, nblocks, dst); err != nil {
		w.note(err)
		if !w.o.faulty() && !strings.Contains(err.Error(), "non-active") {
			return fmt.Errorf("migrate %d blocks to %d at op %d: %w", nblocks, dst, i, err)
		}
	}
	return nil
}

// saveBlob snapshots the workload state a restarted incarnation needs:
// [resume, uniq, casGuess...], little-endian 64-bit words.
func (w *worker) saveBlob() []byte {
	buf := make([]byte, 0, (2+len(w.casGuess))*8)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.resume))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.uniq))
	for _, g := range w.casGuess {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g))
	}
	return buf
}

func (w *worker) restoreBlob(b []byte) {
	if len(b) != (2+len(w.casGuess))*8 {
		return // foreign blob: start from scratch rather than corrupt state
	}
	w.resume = int(binary.LittleEndian.Uint64(b[0:]))
	w.uniq = int64(binary.LittleEndian.Uint64(b[8:]))
	for i := range w.casGuess {
		w.casGuess[i] = int64(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
}

// region picks the data region of a non-atomic access: always the strong
// region outside Modes runs (no extra rng draws, so pinned non-Modes
// histories replay unchanged), a third per tier inside them.
func (w *worker) region() (uint64, int) {
	if !w.o.Modes {
		return w.data, dataWords
	}
	switch w.rng.Intn(3) {
	case 0:
		return w.data, dataWords
	case 1:
		return w.rel, relWords
	default:
		return w.lea, leaseWords
	}
}

// next returns a cluster-unique non-zero value: the checker's value
// discipline maps every read back to the one write that produced it.
func (w *worker) next() int64 {
	w.uniq++
	return int64(w.pe.ID()+1)<<40 | w.uniq
}

// skip reports whether addr is homed at a kernel already declared down.
// The lookup is directory-aware so re-homed blocks track their current
// owner, not the probe rule's static assignment.
func (w *worker) skip(addr uint64) bool {
	return w.dead != nil && w.dead[w.pe.HomeOf(addr)]
}

// note tracks peer-down errors so later operations stop hammering the dead
// home (each would burn the full retry schedule).
func (w *worker) note(err error) {
	var pd *core.PeerDownError
	if errors.As(err, &pd) {
		if w.dead == nil {
			w.dead = make(map[int]bool)
		}
		w.dead[pd.Peer] = true
	}
}

func (w *worker) step(i int) {
	pe, rng := w.pe, w.rng
	switch p := rng.Intn(100); {
	case p < 25: // scalar read
		base, nw := w.region()
		a := base + uint64(rng.Intn(nw))
		if w.skip(a) {
			return
		}
		if _, err := pe.GMReadErr(a); err != nil {
			w.note(err)
		}
	case p < 50: // scalar write
		base, nw := w.region()
		a := base + uint64(rng.Intn(nw))
		if w.skip(a) {
			return
		}
		if err := pe.GMWriteErr(a, w.next()); err != nil {
			w.note(err)
		}
	case p < 65: // counter fetch-add
		a := w.ctrs + uint64(rng.Intn(ctrWords))
		if w.skip(a) {
			return
		}
		if _, err := pe.FetchAddErr(a, 1); err != nil {
			w.note(err)
		}
	case p < 75: // CAS chain: guess tracks the last observed value
		wi := rng.Intn(casWords)
		a := w.casb + uint64(wi)
		if w.skip(a) {
			return
		}
		nv := w.next()
		out, ok, err := pe.CASErr(a, w.casGuess[wi], nv)
		if err != nil {
			w.note(err)
			return
		}
		if ok {
			w.casGuess[wi] = nv
		} else {
			w.casGuess[wi] = out
		}
	case p < 85: // block/gather read (no-retry transfers: fault-free only)
		if w.o.faulty() {
			base, nw := w.region()
			a := base + uint64(rng.Intn(nw))
			if w.skip(a) {
				return
			}
			if _, err := pe.GMReadErr(a); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			base, nw := w.region()
			n := 2 + rng.Intn(15)
			off := rng.Intn(nw - n)
			pe.GMReadBlock(base+uint64(off), n)
		} else {
			// Modes runs mix tiers per element, exercising the vectored
			// paths' mixed-mode scalar fallback.
			addrs := make([]uint64, 2+rng.Intn(7))
			for j := range addrs {
				base, nw := w.region()
				addrs[j] = base + uint64(rng.Intn(nw))
			}
			pe.GMGather(addrs)
		}
	case p < 95: // block/scatter write (fault-free only)
		if w.o.faulty() {
			base, nw := w.region()
			a := base + uint64(rng.Intn(nw))
			if w.skip(a) {
				return
			}
			if err := pe.GMWriteErr(a, w.next()); err != nil {
				w.note(err)
			}
			return
		}
		if rng.Intn(2) == 0 {
			base, nw := w.region()
			n := 2 + rng.Intn(15)
			off := rng.Intn(nw - n)
			words := make([]int64, n)
			for j := range words {
				words[j] = w.next()
			}
			pe.GMWriteBlock(base+uint64(off), words)
		} else {
			n := 2 + rng.Intn(7)
			addrs := make([]uint64, n)
			vals := make([]int64, n)
			for j := range addrs {
				base, nw := w.region()
				addrs[j] = base + uint64(rng.Intn(nw))
				vals[j] = w.next()
			}
			pe.GMScatter(addrs, vals)
		}
	default: // lock-protected read-modify-write (fire-and-forget: fault-free only)
		if w.o.faulty() {
			a := w.ctrs + uint64(rng.Intn(ctrWords))
			if w.skip(a) {
				return
			}
			if _, err := pe.FetchAddErr(a, 1); err != nil {
				w.note(err)
			}
			return
		}
		id := int32(rng.Intn(lockWords))
		pe.Lock(id)
		a := w.lckw + uint64(id)
		if _, err := pe.GMReadErr(a); err == nil {
			_ = pe.GMWriteErr(a, w.next())
		}
		pe.Unlock(id)
	}
}
