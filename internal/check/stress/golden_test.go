package stress_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/check"
	"repro/internal/check/stress"
	"repro/internal/gmem"
	"repro/internal/sim"
)

// The golden digests below were captured from the checker as it stood before
// the consistency-tier rules landed. Strong-mode histories must keep
// producing bit-identical reports through any checker refactor: the history
// digest pins the recorded events (no new event kinds or mode tags may leak
// into strong runs) and the report digest pins the checker's verdict,
// violation kinds, messages, and evidence ordering.
func reportDigest(rep *check.Report) string {
	sum := sha256.Sum256([]byte(rep.String()))
	return hex.EncodeToString(sum[:])
}

func TestCheckerStrongGoldenClean(t *testing.T) {
	res, err := stress.Run(stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 150,
		Caching: true, Loss: 0.1, Jitter: 300 * sim.Microsecond,
	})
	if err != nil {
		t.Fatalf("stress run: %v", err)
	}
	if got, want := res.History.Digest(), "d53a7adb6f5b3f8fe1f4f9a10ffa584d80ddfd33d5dd0937b14408469c2a3673"; got != want {
		t.Errorf("history digest drifted from seed recorder:\n got %s\nwant %s", got, want)
	}
	if !res.Report.OK() {
		t.Fatalf("expected consistent history, got:\n%s", res.Report)
	}
	if got, want := reportDigest(res.Report), "6c2503a31b786adaaa6fdcdd08fd4ac064aef7a6254fff38d36f33222f8eae58"; got != want {
		t.Errorf("report digest drifted from seed checker:\n got %s\nwant %s\nreport:\n%s", got, want, res.Report)
	}
}

func TestCheckerStrongGoldenViolations(t *testing.T) {
	res, err := stress.Run(stress.Options{
		Seed: 3, NumPE: 4, OpsPerPE: 300,
		Caching: true, FaultDropInvalidations: true,
	})
	if err != nil {
		t.Fatalf("stress run: %v", err)
	}
	if got, want := res.History.Digest(), "ab1270739a92b5bc24afb0c7f053555888fb08937c5460d479d1224523cc01f3"; got != want {
		t.Errorf("history digest drifted from seed recorder:\n got %s\nwant %s", got, want)
	}
	if res.Report.OK() {
		t.Fatal("expected violations from dropped invalidations")
	}
	if got, want := len(res.Report.Violations), 5; got != want {
		t.Errorf("violation count drifted: got %d want %d", got, want)
	}
	if got, want := reportDigest(res.Report), "104c9f111291969d10d6d9819d3b519d54dade3440e580a95ad2eff80082e254"; got != want {
		t.Errorf("report digest drifted from seed checker:\n got %s\nwant %s\nreport:\n%s", got, want, res.Report)
	}
}

// The checker mirrors gmem.Mode as untyped byte tags to stay free of runtime
// imports; this pins the two enumerations together.
func TestModeTagsMirrorGmem(t *testing.T) {
	if gmem.ModeStrong != 0 || gmem.ModeRelease != 1 || gmem.ModeLease != 2 || gmem.NumModes != 3 {
		t.Fatalf("gmem.Mode values moved; update the check package's mode tags to match")
	}
}
