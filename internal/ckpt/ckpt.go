// Package ckpt implements the coordinated checkpoint/restart subsystem: the
// snapshot encoding and the pluggable store the DSE runtime writes snapshot
// generations through.
//
// A checkpoint generation is one coordinated snapshot of the whole cluster,
// taken at a quiesce barrier: one slice per PE, each slice carrying the PE's
// application progress (epoch counter plus a user-supplied state blob) and
// its kernel's slice of global memory with the coherence directory. Slices
// are written first, then the generation is committed atomically; a
// generation without a committed manifest never existed as far as recovery
// is concerned, which is what makes a crash during checkpointing harmless.
//
// The concrete store, DirStore, is a local directory:
//
//	objects/<sha256>   content-addressed, CRC-framed slice payloads
//	staging/g<G>-p<P>  uncommitted slice pointers (hash per PE)
//	manifests/g<G>     committed generations (written via rename)
//
// Every object is verified twice on read — frame CRC32 and the content
// address itself — so a corrupted snapshot fails recovery loudly instead of
// restoring garbage.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"crypto/sha256"
	"encoding/hex"

	"repro/internal/gmem"
	"repro/internal/sim"
)

// Slice is one PE's contribution to a checkpoint generation.
type Slice struct {
	Epoch    uint64   // checkpoint epoch (== generation number)
	MarkTime sim.Time // kernel clock when the mark was served
	App      []byte   // user state blob from pe.RegisterCheckpoint's save
	Kernel   []byte   // EncodeKernelState: GM blocks + coherence directory
}

// Store is the pluggable snapshot backend. WriteSlice stages one PE's slice
// for a generation; Commit makes the generation durable and visible to
// Latest only once every PE's slice is staged. Implementations must make
// Commit atomic: a generation is either complete or absent.
type Store interface {
	WriteSlice(gen uint64, pe int, data []byte) error
	ReadSlice(gen uint64, pe int) ([]byte, error)
	Commit(gen uint64, numPE int) error
	// Latest reports the newest committed generation (ok=false when none).
	Latest() (gen uint64, numPE int, ok bool, err error)
	// GC drops all but the newest keep committed generations and any
	// objects only they referenced.
	GC(keep int) error
}

// --- Slice encoding ---

var (
	sliceMagic  = [8]byte{'D', 'S', 'E', 'C', 'K', 'P', 'T', '1'}
	objectMagic = [8]byte{'D', 'S', 'E', 'O', 'B', 'J', '1', 0}
)

// EncodeSlice serialises a slice for the store.
func EncodeSlice(s Slice) []byte {
	buf := make([]byte, 0, 8+8+8+8+len(s.App)+8+len(s.Kernel))
	buf = append(buf, sliceMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.MarkTime))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.App)))
	buf = append(buf, s.App...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Kernel)))
	buf = append(buf, s.Kernel...)
	return buf
}

// DecodeSlice parses an EncodeSlice payload.
func DecodeSlice(data []byte) (Slice, error) {
	var s Slice
	if len(data) < 8+8+8+8 || string(data[:8]) != string(sliceMagic[:]) {
		return s, errors.New("ckpt: not a checkpoint slice (bad magic)")
	}
	off := 8
	get := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("ckpt: truncated slice at byte %d", off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	var v uint64
	var err error
	if v, err = get(); err != nil {
		return s, err
	}
	s.Epoch = v
	if v, err = get(); err != nil {
		return s, err
	}
	s.MarkTime = sim.Time(v)
	if v, err = get(); err != nil {
		return s, err
	}
	if v > uint64(len(data)-off) {
		return s, errors.New("ckpt: truncated app blob")
	}
	if v > 0 {
		s.App = append([]byte(nil), data[off:off+int(v)]...)
	}
	off += int(v)
	if v, err = get(); err != nil {
		return s, err
	}
	if v > uint64(len(data)-off) {
		return s, errors.New("ckpt: truncated kernel state")
	}
	if v > 0 {
		s.Kernel = append([]byte(nil), data[off:off+int(v)]...)
	}
	return s, nil
}

// EncodeKernelState serialises a kernel's GM slice (gmem.Segment.Export) for
// a Slice's Kernel field.
func EncodeKernelState(blockWords int, blocks []gmem.BlockSnapshot) []byte {
	n := 16
	for _, b := range blocks {
		n += 16 + 8*len(b.Words) + 8*len(b.Copyset)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(blockWords))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(blocks)))
	for _, b := range blocks {
		buf = binary.LittleEndian.AppendUint64(buf, b.Index)
		for _, w := range b.Words {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b.Copyset)))
		for _, k := range b.Copyset {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		}
	}
	return buf
}

// DecodeKernelState parses an EncodeKernelState payload, ignoring any V2
// membership trailer (see DecodeKernelStateDir).
func DecodeKernelState(data []byte) (blockWords int, blocks []gmem.BlockSnapshot, err error) {
	blockWords, blocks, _, err = decodeKernelBlocks(data)
	return blockWords, blocks, err
}

// decodeKernelBlocks parses the V1 block list and returns the offset one
// past it, where a V2 trailer (if any) begins.
func decodeKernelBlocks(data []byte) (blockWords int, blocks []gmem.BlockSnapshot, end int, err error) {
	off := 0
	get := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("ckpt: truncated kernel state at byte %d", off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	bw, err := get()
	if err != nil {
		return 0, nil, 0, err
	}
	nb, err := get()
	if err != nil {
		return 0, nil, 0, err
	}
	if bw == 0 || bw > 1<<20 || nb > uint64(len(data)) {
		return 0, nil, 0, fmt.Errorf("ckpt: implausible kernel state (blockWords=%d, blocks=%d)", bw, nb)
	}
	blocks = make([]gmem.BlockSnapshot, 0, nb)
	for i := uint64(0); i < nb; i++ {
		var b gmem.BlockSnapshot
		if b.Index, err = get(); err != nil {
			return 0, nil, 0, err
		}
		b.Words = make([]int64, bw)
		for w := range b.Words {
			var v uint64
			if v, err = get(); err != nil {
				return 0, nil, 0, err
			}
			b.Words[w] = int64(v)
		}
		var nc uint64
		if nc, err = get(); err != nil {
			return 0, nil, 0, err
		}
		if nc > uint64(len(data)) {
			return 0, nil, 0, fmt.Errorf("ckpt: implausible copyset size %d", nc)
		}
		for c := uint64(0); c < nc; c++ {
			var v uint64
			if v, err = get(); err != nil {
				return 0, nil, 0, err
			}
			b.Copyset = append(b.Copyset, int(v))
		}
		blocks = append(blocks, b)
	}
	return int(bw), blocks, off, nil
}

// --- Directory (elastic membership) snapshot: kernel-state V2 trailer ---

// dirMagic introduces the optional V2 trailer appended after the block list
// by EncodeKernelStateDir. A V1 payload ends exactly at the last block, so
// presence of the trailer is unambiguous.
var dirMagic = [8]byte{'D', 'S', 'E', 'D', 'I', 'R', '2', 0}

// MemberSnapshot is one member's state in a directory snapshot.
type MemberSnapshot struct {
	State uint64 // gmem.MemberState
	Gen   uint64 // membership generation of the last transition
}

// EscrowSnapshot is a block the kernel had extracted for a migration whose
// commit had not yet arrived at mark time: the data plus its destination,
// so a restored cluster can re-offer it instead of losing the handoff.
type EscrowSnapshot struct {
	Dst   int
	Block gmem.BlockSnapshot
}

// DirectorySnapshot captures a kernel's membership directory for the
// manifest: epoch, per-member states, explicit overrides and in-flight
// escrow. Nil means the snapshot predates elastic membership (V1).
type DirectorySnapshot struct {
	Epoch     uint64
	Members   []MemberSnapshot
	Overrides [][2]uint64 // (block index, home)
	Escrow    []EscrowSnapshot
}

// EncodeKernelStateDir is EncodeKernelState plus the V2 membership trailer.
// A nil dir encodes the V1 payload unchanged.
func EncodeKernelStateDir(blockWords int, blocks []gmem.BlockSnapshot, dir *DirectorySnapshot) []byte {
	buf := EncodeKernelState(blockWords, blocks)
	if dir == nil {
		return buf
	}
	buf = append(buf, dirMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, dir.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(dir.Members)))
	for _, m := range dir.Members {
		buf = binary.LittleEndian.AppendUint64(buf, m.State)
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(dir.Overrides)))
	for _, ov := range dir.Overrides {
		buf = binary.LittleEndian.AppendUint64(buf, ov[0])
		buf = binary.LittleEndian.AppendUint64(buf, ov[1])
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(dir.Escrow)))
	for _, e := range dir.Escrow {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, e.Block.Index)
		for _, w := range e.Block.Words {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(e.Block.Copyset)))
		for _, k := range e.Block.Copyset {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		}
	}
	return buf
}

// DecodeKernelStateDir parses an EncodeKernelStateDir payload. dir is nil
// for a V1 payload (no trailer).
func DecodeKernelStateDir(data []byte) (blockWords int, blocks []gmem.BlockSnapshot, dir *DirectorySnapshot, err error) {
	blockWords, blocks, off, err := decodeKernelBlocks(data)
	if err != nil {
		return 0, nil, nil, err
	}
	if off == len(data) {
		return blockWords, blocks, nil, nil // V1
	}
	if off+8 > len(data) || string(data[off:off+8]) != string(dirMagic[:]) {
		return 0, nil, nil, errors.New("ckpt: kernel state has trailing bytes that are not a directory trailer")
	}
	off += 8
	get := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("ckpt: truncated directory trailer at byte %d", off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	d := &DirectorySnapshot{}
	if d.Epoch, err = get(); err != nil {
		return 0, nil, nil, err
	}
	nm, err := get()
	if err != nil {
		return 0, nil, nil, err
	}
	if nm > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("ckpt: implausible member count %d", nm)
	}
	for i := uint64(0); i < nm; i++ {
		var m MemberSnapshot
		if m.State, err = get(); err != nil {
			return 0, nil, nil, err
		}
		if m.Gen, err = get(); err != nil {
			return 0, nil, nil, err
		}
		d.Members = append(d.Members, m)
	}
	nov, err := get()
	if err != nil {
		return 0, nil, nil, err
	}
	if nov > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("ckpt: implausible override count %d", nov)
	}
	for i := uint64(0); i < nov; i++ {
		var b, h uint64
		if b, err = get(); err != nil {
			return 0, nil, nil, err
		}
		if h, err = get(); err != nil {
			return 0, nil, nil, err
		}
		d.Overrides = append(d.Overrides, [2]uint64{b, h})
	}
	ne, err := get()
	if err != nil {
		return 0, nil, nil, err
	}
	if ne > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("ckpt: implausible escrow count %d", ne)
	}
	for i := uint64(0); i < ne; i++ {
		var e EscrowSnapshot
		var v uint64
		if v, err = get(); err != nil {
			return 0, nil, nil, err
		}
		e.Dst = int(v)
		if e.Block.Index, err = get(); err != nil {
			return 0, nil, nil, err
		}
		e.Block.Words = make([]int64, blockWords)
		for w := range e.Block.Words {
			if v, err = get(); err != nil {
				return 0, nil, nil, err
			}
			e.Block.Words[w] = int64(v)
		}
		var nc uint64
		if nc, err = get(); err != nil {
			return 0, nil, nil, err
		}
		if nc > uint64(len(data)) {
			return 0, nil, nil, fmt.Errorf("ckpt: implausible escrow copyset size %d", nc)
		}
		for c := uint64(0); c < nc; c++ {
			if v, err = get(); err != nil {
				return 0, nil, nil, err
			}
			e.Block.Copyset = append(e.Block.Copyset, int(v))
		}
		d.Escrow = append(d.Escrow, e)
	}
	return blockWords, blocks, d, nil
}

// --- DirStore ---

// DirStore is the local-directory Store: content-addressed objects with a
// CRC-framed payload, per-generation manifests committed by atomic rename.
// Safe for use by every PE of an in-process cluster and by multiple OS
// processes sharing the directory (each write lands under a unique temp name
// before its rename).
type DirStore struct {
	root string
}

// OpenDir opens (creating if needed) a snapshot directory.
func OpenDir(root string) (*DirStore, error) {
	for _, d := range []string{root, filepath.Join(root, "objects"), filepath.Join(root, "staging"), filepath.Join(root, "manifests")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	}
	return &DirStore{root: root}, nil
}

// Root returns the store's directory.
func (d *DirStore) Root() string { return d.root }

// frame wraps payload as an object file: magic, length, CRC32, payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 0, len(objectMagic)+8+4+len(payload))
	buf = append(buf, objectMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// unframe validates and strips an object frame.
func unframe(buf []byte) ([]byte, error) {
	hdr := len(objectMagic) + 8 + 4
	if len(buf) < hdr || string(buf[:8]) != string(objectMagic[:]) {
		return nil, errors.New("ckpt: corrupt snapshot object (bad magic)")
	}
	n := binary.LittleEndian.Uint64(buf[8:])
	crc := binary.LittleEndian.Uint32(buf[16:])
	if n != uint64(len(buf)-hdr) {
		return nil, errors.New("ckpt: corrupt snapshot object (length mismatch)")
	}
	payload := buf[hdr:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errors.New("ckpt: corrupt snapshot object (CRC mismatch)")
	}
	return payload, nil
}

func (d *DirStore) objectPath(hash string) string {
	return filepath.Join(d.root, "objects", hash)
}

func (d *DirStore) stagingPath(gen uint64, pe int) string {
	return filepath.Join(d.root, "staging", fmt.Sprintf("g%d-p%d", gen, pe))
}

func (d *DirStore) manifestPath(gen uint64) string {
	return filepath.Join(d.root, "manifests", fmt.Sprintf("g%d", gen))
}

// writeAtomic writes data to path via a unique temp file + rename, so a
// crash mid-write can never leave a half-written file under the final name.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteSlice stores one PE's slice payload as a content-addressed object and
// stages its hash for Commit.
func (d *DirStore) WriteSlice(gen uint64, pe int, data []byte) error {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	obj := d.objectPath(hash)
	if _, err := os.Stat(obj); err != nil {
		if err := writeAtomic(obj, frame(data)); err != nil {
			return fmt.Errorf("ckpt: writing object: %w", err)
		}
	}
	if err := writeAtomic(d.stagingPath(gen, pe), []byte(hash+"\n")); err != nil {
		return fmt.Errorf("ckpt: staging slice: %w", err)
	}
	return nil
}

// ReadSlice loads and verifies one PE's slice of a committed generation.
func (d *DirStore) ReadSlice(gen uint64, pe int) ([]byte, error) {
	hashes, _, err := d.readManifest(gen)
	if err != nil {
		return nil, err
	}
	if pe < 0 || pe >= len(hashes) {
		return nil, fmt.Errorf("ckpt: generation %d has no PE %d", gen, pe)
	}
	return d.readObject(hashes[pe])
}

func (d *DirStore) readObject(hash string) ([]byte, error) {
	buf, err := os.ReadFile(d.objectPath(hash))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	payload, err := unframe(buf)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, errors.New("ckpt: corrupt snapshot object (content hash mismatch)")
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Commit publishes generation gen: every staged slice 0..numPE-1 must be
// present. The manifest is written via rename, so Latest either sees the
// whole generation or none of it; the staging entries are consumed.
func (d *DirStore) Commit(gen uint64, numPE int) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ckpt-manifest v1\ngen %d\nnumpe %d\n", gen, numPE)
	for pe := 0; pe < numPE; pe++ {
		raw, err := os.ReadFile(d.stagingPath(gen, pe))
		if err != nil {
			return fmt.Errorf("ckpt: commit of generation %d: slice for PE %d not staged: %w", gen, pe, err)
		}
		hash := strings.TrimSpace(string(raw))
		if len(hash) != sha256.Size*2 {
			return fmt.Errorf("ckpt: commit of generation %d: malformed staging entry for PE %d", gen, pe)
		}
		fmt.Fprintf(&sb, "pe %d %s\n", pe, hash)
	}
	if err := writeAtomic(d.manifestPath(gen), []byte(sb.String())); err != nil {
		return fmt.Errorf("ckpt: committing manifest: %w", err)
	}
	for pe := 0; pe < numPE; pe++ {
		os.Remove(d.stagingPath(gen, pe))
	}
	return nil
}

// readManifest parses a committed generation's manifest into per-PE hashes.
func (d *DirStore) readManifest(gen uint64) (hashes []string, numPE int, err error) {
	raw, err := os.ReadFile(d.manifestPath(gen))
	if err != nil {
		return nil, 0, fmt.Errorf("ckpt: generation %d not committed: %w", gen, err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 || lines[0] != "ckpt-manifest v1" {
		return nil, 0, fmt.Errorf("ckpt: generation %d: malformed manifest", gen)
	}
	var g uint64
	if _, err := fmt.Sscanf(lines[1], "gen %d", &g); err != nil || g != gen {
		return nil, 0, fmt.Errorf("ckpt: generation %d: manifest names generation %d", gen, g)
	}
	if _, err := fmt.Sscanf(lines[2], "numpe %d", &numPE); err != nil || numPE <= 0 {
		return nil, 0, fmt.Errorf("ckpt: generation %d: malformed numpe line", gen)
	}
	hashes = make([]string, numPE)
	for _, ln := range lines[3:] {
		var pe int
		var hash string
		if _, err := fmt.Sscanf(ln, "pe %d %s", &pe, &hash); err != nil || pe < 0 || pe >= numPE {
			return nil, 0, fmt.Errorf("ckpt: generation %d: malformed manifest line %q", gen, ln)
		}
		hashes[pe] = hash
	}
	for pe, h := range hashes {
		if h == "" {
			return nil, 0, fmt.Errorf("ckpt: generation %d: manifest missing PE %d", gen, pe)
		}
	}
	return hashes, numPE, nil
}

// generations lists committed generation numbers, ascending. Temp files and
// anything unparseable are ignored: an interrupted commit left them, and
// they were never visible.
func (d *DirStore) generations() ([]uint64, error) {
	ents, err := os.ReadDir(filepath.Join(d.root, "manifests"))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var gens []uint64
	for _, e := range ents {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "g%d", &g); err == nil && fmt.Sprintf("g%d", g) == e.Name() {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Latest reports the newest committed generation.
func (d *DirStore) Latest() (gen uint64, numPE int, ok bool, err error) {
	gens, err := d.generations()
	if err != nil || len(gens) == 0 {
		return 0, 0, false, err
	}
	gen = gens[len(gens)-1]
	_, numPE, err = d.readManifest(gen)
	if err != nil {
		return 0, 0, false, err
	}
	return gen, numPE, true, nil
}

// GC keeps the newest keep committed generations, deleting older manifests,
// their staging leftovers, and every object no kept generation references.
func (d *DirStore) GC(keep int) error {
	if keep < 1 {
		keep = 1
	}
	gens, err := d.generations()
	if err != nil {
		return err
	}
	if len(gens) <= keep {
		return nil
	}
	dead, live := gens[:len(gens)-keep], gens[len(gens)-keep:]
	referenced := make(map[string]bool)
	for _, g := range live {
		hashes, _, err := d.readManifest(g)
		if err != nil {
			return err
		}
		for _, h := range hashes {
			referenced[h] = true
		}
	}
	for _, g := range dead {
		if err := os.Remove(d.manifestPath(g)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ckpt: gc: %w", err)
		}
	}
	// Drop unreferenced objects and stale staging entries for dead gens.
	objs, err := os.ReadDir(filepath.Join(d.root, "objects"))
	if err != nil {
		return fmt.Errorf("ckpt: gc: %w", err)
	}
	for _, e := range objs {
		if !referenced[e.Name()] && !strings.HasPrefix(e.Name(), ".tmp-") {
			os.Remove(d.objectPath(e.Name()))
		}
	}
	for _, g := range dead {
		stag, err := filepath.Glob(filepath.Join(d.root, "staging", fmt.Sprintf("g%d-p*", g)))
		if err == nil {
			for _, p := range stag {
				os.Remove(p)
			}
		}
	}
	return nil
}
