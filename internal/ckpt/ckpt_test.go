package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gmem"
	"repro/internal/sim"
)

func testSlice(pe int) Slice {
	return Slice{
		Epoch:    3,
		MarkTime: sim.Time(42_000_000),
		App:      []byte(fmt.Sprintf("app-state-pe%d", pe)),
		Kernel: EncodeKernelState(8, []gmem.BlockSnapshot{
			{Index: uint64(pe * 4), Words: []int64{1, -2, 3, 0, 5, 6, 7, 8}, Copyset: []int{0, 2}},
			{Index: uint64(pe*4 + 2), Words: []int64{9, 10, 11, 12, 13, 14, 15, 16}, Copyset: nil},
		}),
	}
}

func TestSliceRoundTrip(t *testing.T) {
	want := testSlice(1)
	got, err := DecodeSlice(EncodeSlice(want))
	if err != nil {
		t.Fatalf("DecodeSlice: %v", err)
	}
	if got.Epoch != want.Epoch || got.MarkTime != want.MarkTime {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if !bytes.Equal(got.App, want.App) || !bytes.Equal(got.Kernel, want.Kernel) {
		t.Fatalf("payload mismatch")
	}
	bw, blocks, err := DecodeKernelState(got.Kernel)
	if err != nil {
		t.Fatalf("DecodeKernelState: %v", err)
	}
	if bw != 8 || len(blocks) != 2 {
		t.Fatalf("got blockWords=%d blocks=%d, want 8/2", bw, len(blocks))
	}
	if blocks[0].Index != 4 || blocks[0].Words[1] != -2 || len(blocks[0].Copyset) != 2 {
		t.Fatalf("block 0 mismatch: %+v", blocks[0])
	}
	if blocks[1].Index != 6 || blocks[1].Words[7] != 16 || blocks[1].Copyset != nil {
		t.Fatalf("block 1 mismatch: %+v", blocks[1])
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	full := EncodeSlice(testSlice(0))
	for _, n := range []int{0, 4, 8, 20, len(full) - 1} {
		if _, err := DecodeSlice(full[:n]); err == nil {
			t.Errorf("DecodeSlice accepted %d-byte truncation", n)
		}
	}
	ks := EncodeKernelState(8, []gmem.BlockSnapshot{{Index: 1, Words: make([]int64, 8)}})
	for _, n := range []int{0, 8, 17, len(ks) - 1} {
		if _, _, err := DecodeKernelState(ks[:n]); err == nil {
			t.Errorf("DecodeKernelState accepted %d-byte truncation", n)
		}
	}
}

func openTestStore(t *testing.T) *DirStore {
	t.Helper()
	st, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	return st
}

func commitGen(t *testing.T, st *DirStore, gen uint64, numPE int) {
	t.Helper()
	for pe := 0; pe < numPE; pe++ {
		s := testSlice(pe)
		s.Epoch = gen
		if err := st.WriteSlice(gen, pe, EncodeSlice(s)); err != nil {
			t.Fatalf("WriteSlice(g%d,p%d): %v", gen, pe, err)
		}
	}
	if err := st.Commit(gen, numPE); err != nil {
		t.Fatalf("Commit(g%d): %v", gen, err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st := openTestStore(t)
	commitGen(t, st, 1, 3)
	gen, numPE, ok, err := st.Latest()
	if err != nil || !ok || gen != 1 || numPE != 3 {
		t.Fatalf("Latest = (%d,%d,%v,%v), want (1,3,true,nil)", gen, numPE, ok, err)
	}
	for pe := 0; pe < 3; pe++ {
		data, err := st.ReadSlice(1, pe)
		if err != nil {
			t.Fatalf("ReadSlice(1,%d): %v", pe, err)
		}
		s, err := DecodeSlice(data)
		if err != nil {
			t.Fatalf("DecodeSlice: %v", err)
		}
		if string(s.App) != fmt.Sprintf("app-state-pe%d", pe) {
			t.Fatalf("PE %d got wrong app blob %q", pe, s.App)
		}
	}
}

func TestStoreDetectsCorruptObject(t *testing.T) {
	st := openTestStore(t)
	commitGen(t, st, 1, 2)
	// Flip one payload byte in every object; ReadSlice must refuse.
	ents, err := os.ReadDir(filepath.Join(st.Root(), "objects"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		p := filepath.Join(st.Root(), "objects", e.Name())
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)-1] ^= 0xff
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for pe := 0; pe < 2; pe++ {
		if _, err := st.ReadSlice(1, pe); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("ReadSlice(1,%d) on corrupted object: err=%v, want corrupt-object error", pe, err)
		}
	}
}

func TestCommitRequiresAllSlices(t *testing.T) {
	st := openTestStore(t)
	if err := st.WriteSlice(1, 0, []byte("only pe0")); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1, 2); err == nil {
		t.Fatal("Commit succeeded with a missing slice")
	}
	if _, _, ok, _ := st.Latest(); ok {
		t.Fatal("failed Commit still became visible to Latest")
	}
}

// An interrupted checkpoint leaves staged slices but no manifest; an
// interrupted manifest write leaves a .tmp- file. Neither may surface.
func TestCrashWindowsInvisible(t *testing.T) {
	st := openTestStore(t)
	commitGen(t, st, 1, 2)

	// Crash after staging gen 2 but before Commit.
	if err := st.WriteSlice(2, 0, []byte("half a checkpoint")); err != nil {
		t.Fatal(err)
	}
	// Crash mid-manifest-write for gen 3: simulate the temp file CreateTemp
	// would leave behind if the process died before rename.
	tmp := filepath.Join(st.Root(), "manifests", ".tmp-123456")
	if err := os.WriteFile(tmp, []byte("ckpt-manifest v1\ngen 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	gen, numPE, ok, err := st.Latest()
	if err != nil || !ok || gen != 1 || numPE != 2 {
		t.Fatalf("Latest = (%d,%d,%v,%v), want committed gen 1 only", gen, numPE, ok, err)
	}
	if _, err := st.ReadSlice(2, 0); err == nil {
		t.Fatal("ReadSlice returned data for an uncommitted generation")
	}
}

func TestGCKeepsNewestGenerations(t *testing.T) {
	st := openTestStore(t)
	for gen := uint64(1); gen <= 4; gen++ {
		// Distinct payload per gen so each gets its own objects.
		for pe := 0; pe < 2; pe++ {
			if err := st.WriteSlice(gen, pe, []byte(fmt.Sprintf("g%d-p%d", gen, pe))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(gen, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.GC(2); err != nil {
		t.Fatalf("GC: %v", err)
	}
	gens, err := st.generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Fatalf("after GC(2) generations = %v, want [3 4]", gens)
	}
	// Kept generations still read back; dropped ones are gone, and their
	// objects were pruned.
	if _, err := st.ReadSlice(4, 1); err != nil {
		t.Fatalf("kept generation unreadable after GC: %v", err)
	}
	if _, err := st.ReadSlice(1, 0); err == nil {
		t.Fatal("GC'd generation still readable")
	}
	ents, err := os.ReadDir(filepath.Join(st.Root(), "objects"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("after GC want 4 objects (2 gens x 2 PEs), have %d", len(ents))
	}
}

// Identical payloads from different PEs share one content-addressed object.
func TestObjectsDeduplicated(t *testing.T) {
	st := openTestStore(t)
	for pe := 0; pe < 3; pe++ {
		if err := st.WriteSlice(1, pe, []byte("same bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 3); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(st.Root(), "objects"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("want 1 deduplicated object, have %d", len(ents))
	}
}
