// Package trace collects per-PE runtime statistics and provides the small
// table/series types the experiment harness uses to print paper figures.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
	"repro/internal/wire"
)

// PEStats aggregates what one DSE kernel/process pair spent its time on.
// All durations are virtual time for the simulated transport and wall-clock
// elapsed time for the real transports.
type PEStats struct {
	ComputeTime  sim.Duration // application computation
	SendOverhead sim.Duration // protocol processing + syscalls on the send path
	RecvOverhead sim.Duration // interrupts + protocol processing on the receive path
	WaitTime     sim.Duration // blocked waiting for replies, barriers, locks

	MsgsSent  uint64
	MsgsRecv  uint64
	BytesSent uint64
	BytesRecv uint64

	LocalGM  uint64 // global-memory accesses served from the local segment
	RemoteGM uint64 // global-memory accesses that crossed the network
	// DirectGM counts the RemoteGM accesses that resolved through the
	// one-sided direct window into a co-located home's segment instead of
	// a request/reply message pair. Always <= RemoteGM.
	DirectGM uint64
	// RingGM counts the RemoteGM writes that resolved through a per-shard
	// submission ring into a co-located home instead of a request/reply
	// message pair. Always <= RemoteGM.
	RingGM uint64
	// RingDrained counts ring writes applied on the service side (the
	// home's view of RingGM; equal totals once all kernels quiesce).
	RingDrained uint64
	// ShardedMsgs counts incoming GM requests serviced by a kernel shard
	// worker rather than the serial serve loop.
	ShardedMsgs uint64
	Barriers    uint64
	Locks       uint64

	// Reliability-layer counters.
	StaleReplies uint64 // mailbox residue discarded by sequence validation
	Retries      uint64 // request retransmissions after a timeout
	StrayDrops   uint64 // unsolicited/duplicate responses and acks dropped
	CorruptDrops uint64 // malformed messages dropped instead of panicking
	DupRequests  uint64 // retried requests absorbed by the dedup window

	// Checkpoint/restart counters.
	Checkpoints   uint64 // coordinated snapshots this PE completed
	Restores      uint64 // times this PE's state was restored from a snapshot
	SnapshotBytes uint64 // encoded slice bytes written to the snapshot store
	RollbackOps   uint64 // recorded ops discarded by rolling back to a snapshot

	// Elastic membership counters.
	Migrations     uint64 // home migrations this PE initiated (ranges, joins, leaves)
	MigratedBlocks uint64 // blocks this kernel extracted and handed to a new home
	MigrateNacks   uint64 // requests bounced off a stale home and retried at the hint
	Joins          uint64 // membership joins completed by this PE
	Leaves         uint64 // graceful leaves completed by this PE

	// Consistency-tier counters (release consistency and lease caching).
	WCFlushes     uint64 // non-empty write-combining buffer drains at sync edges
	LeaseGrants   uint64 // read leases this PE fetched from a home
	LeaseExpiries uint64 // lease-cache entries dropped because their lease expired

	// Scheduler namespace counters (dsesched per-job GM isolation).
	NsViolations uint64 // kernel-side: requests NACKed for touching memory outside the requester's namespace
	NsDenials    uint64 // PE-side: accesses refused before leaving the PE (one-sided window/ring paths included)

	// ByOp breaks sent traffic down per message op, so experiments can
	// watch e.g. scalar reads being displaced by vectored reads.
	ByOp [wire.NumOps]OpCount

	// Latency distributions (the paper's execution-time breakdown, per
	// operation instead of as scalar totals). Histograms follow Histogram's
	// concurrency contract — they may be observed, merged and read while
	// kernels still run, which is what live exporters rely on. The scalar
	// counters above are single-writer and must only be merged (Add) after
	// their writers quiesce; core.Run's collectStats runs post-shutdown.
	RTT         Histogram              // request round trips, all ops (app side)
	RTTByOp     [wire.NumOps]Histogram // request round trips per request op
	ServiceByOp [wire.NumOps]Histogram // kernel time handling each incoming op
	BarrierWait Histogram              // time blocked per barrier crossing
	LockWait    Histogram              // time blocked per lock acquisition
	FlushStall  Histogram              // time a sync edge stalled draining the WC buffer
}

// OpCount tallies sent traffic for one message op.
type OpCount struct {
	Msgs  uint64
	Bytes uint64
}

// CountSent records one sent message of the given op and encoded size.
// Transports call it under their own stats lock.
func (s *PEStats) CountSent(op wire.Op, bytes int) {
	if int(op) < len(s.ByOp) {
		s.ByOp[op].Msgs++
		s.ByOp[op].Bytes += uint64(bytes)
	}
}

// Add accumulates o into s.
func (s *PEStats) Add(o *PEStats) {
	s.ComputeTime += o.ComputeTime
	s.SendOverhead += o.SendOverhead
	s.RecvOverhead += o.RecvOverhead
	s.WaitTime += o.WaitTime
	s.MsgsSent += o.MsgsSent
	s.MsgsRecv += o.MsgsRecv
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.LocalGM += o.LocalGM
	s.RemoteGM += o.RemoteGM
	s.DirectGM += o.DirectGM
	s.RingGM += o.RingGM
	s.RingDrained += o.RingDrained
	s.ShardedMsgs += o.ShardedMsgs
	s.Barriers += o.Barriers
	s.Locks += o.Locks
	s.StaleReplies += o.StaleReplies
	s.Retries += o.Retries
	s.StrayDrops += o.StrayDrops
	s.CorruptDrops += o.CorruptDrops
	s.DupRequests += o.DupRequests
	s.Checkpoints += o.Checkpoints
	s.Restores += o.Restores
	s.SnapshotBytes += o.SnapshotBytes
	s.RollbackOps += o.RollbackOps
	s.Migrations += o.Migrations
	s.MigratedBlocks += o.MigratedBlocks
	s.MigrateNacks += o.MigrateNacks
	s.Joins += o.Joins
	s.Leaves += o.Leaves
	s.WCFlushes += o.WCFlushes
	s.LeaseGrants += o.LeaseGrants
	s.LeaseExpiries += o.LeaseExpiries
	s.NsViolations += o.NsViolations
	s.NsDenials += o.NsDenials
	for i := range s.ByOp {
		s.ByOp[i].Msgs += o.ByOp[i].Msgs
		s.ByOp[i].Bytes += o.ByOp[i].Bytes
	}
	s.RTT.Merge(&o.RTT)
	for i := range s.RTTByOp {
		s.RTTByOp[i].Merge(&o.RTTByOp[i])
		s.ServiceByOp[i].Merge(&o.ServiceByOp[i])
	}
	s.BarrierWait.Merge(&o.BarrierWait)
	s.LockWait.Merge(&o.LockWait)
	s.FlushStall.Merge(&o.FlushStall)
}

// OpTable renders the non-zero per-op send counters as a table.
func (s *PEStats) OpTable(title string) *Table {
	t := &Table{Title: title, Header: []string{"op", "msgs", "bytes"}}
	for i := range s.ByOp {
		if s.ByOp[i].Msgs == 0 {
			continue
		}
		t.AddRow(wire.Op(i).String(),
			fmt.Sprintf("%d", s.ByOp[i].Msgs),
			fmt.Sprintf("%d", s.ByOp[i].Bytes))
	}
	return t
}

// LatencyTable renders the non-empty per-op round-trip distributions plus
// the synchronisation waits as a quantile table (p50/p95/p99 are bucket
// upper bounds; see Histogram.Quantile).
func (s *PEStats) LatencyTable(title string) *Table {
	t := &Table{Title: title, Header: []string{"op", "count", "mean", "p50", "p95", "p99", "max"}}
	row := func(name string, h *Histogram) {
		hs := h.Snapshot()
		if hs.Count == 0 {
			return
		}
		t.AddRow(name,
			fmt.Sprintf("%d", hs.Count),
			hs.Mean().String(),
			hs.Quantile(0.50).String(),
			hs.Quantile(0.95).String(),
			hs.Quantile(0.99).String(),
			hs.Max.String())
	}
	for i := range s.RTTByOp {
		row("rtt:"+wire.Op(i).String(), &s.RTTByOp[i])
	}
	for i := range s.ServiceByOp {
		row("svc:"+wire.Op(i).String(), &s.ServiceByOp[i])
	}
	row("barrier-wait", &s.BarrierWait)
	row("lock-wait", &s.LockWait)
	row("flush-stall", &s.FlushStall)
	return t
}

// CommTime is the total time attributable to communication.
func (s *PEStats) CommTime() sim.Duration {
	return s.SendOverhead + s.RecvOverhead + s.WaitTime
}

func (s *PEStats) String() string {
	return fmt.Sprintf("compute=%v comm=%v (send=%v recv=%v wait=%v) msgs=%d/%d bytes=%d/%d gm=%d local/%d remote",
		s.ComputeTime, s.CommTime(), s.SendOverhead, s.RecvOverhead, s.WaitTime,
		s.MsgsSent, s.MsgsRecv, s.BytesSent, s.BytesRecv, s.LocalGM, s.RemoteGM)
}

// Series is one labelled curve of a figure: Y(X).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MaxY returns the largest Y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	max := 0.0
	for _, y := range s.Y {
		if y > max {
			max = y
		}
	}
	return max
}

// ArgMaxY returns the X at which Y peaks (0 for an empty series).
func (s *Series) ArgMaxY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	best := 0
	for i, y := range s.Y {
		if y > s.Y[best] {
			best = i
		}
	}
	return s.X[best]
}

// Table is a printable experiment result (a figure rendered as rows).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// SeriesTable renders a family of series sharing the same X axis as a table
// with one column per series.
func SeriesTable(title, xName string, fmtY string, series []Series) *Table {
	t := &Table{Title: title, Header: []string{xName}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf(fmtY, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
