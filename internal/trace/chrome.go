package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// chromeEvent is one Chrome trace_event entry. Complete events ("ph":"X")
// carry a start timestamp and a duration, both in microseconds; metadata
// events ("ph":"M") name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread ids within each PE "process" of the exported trace.
const (
	chromeTIDApp    int32 = 0 // DSE process (application context)
	chromeTIDKernel int32 = 1 // DSE kernel (service context)
)

func (s *Span) chromeTID() int32 {
	if s.Kind == SpanService {
		return chromeTIDKernel
	}
	return chromeTIDApp
}

func (s *Span) chromeName() string {
	switch s.Kind {
	case SpanRequest:
		return "req:" + s.Op.String()
	case SpanService:
		return "svc:" + s.Op.String()
	case SpanTransfer:
		return "xfer:" + s.Op.String()
	default:
		return s.Kind.String()
	}
}

// us converts a virtual-time instant or duration to trace_event microseconds.
func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChromeTrace emits spans in Chrome trace_event JSON array format, so a
// whole cluster run opens in chrome://tracing or Perfetto: one "process" per
// PE with an application thread and a kernel thread, one complete event per
// span. Events are sorted by (start, PE, thread) for determinism.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := &sorted[i], &sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		return a.chromeTID() < b.chromeTID()
	})

	// Metadata: name every (PE, thread) pair that appears.
	pes := map[int32]bool{}
	for i := range sorted {
		pes[sorted[i].PE] = true
	}
	ids := make([]int32, 0, len(pes))
	for id := range pes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	events := make([]chromeEvent, 0, len(sorted)+3*len(ids))
	for _, id := range ids {
		events = append(events,
			chromeEvent{Name: "process_name", Ph: "M", PID: id, Args: map[string]any{"name": fmt.Sprintf("PE %d", id)}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: id, TID: chromeTIDApp, Args: map[string]any{"name": "dse-process"}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: id, TID: chromeTIDKernel, Args: map[string]any{"name": "dse-kernel"}},
		)
	}
	for i := range sorted {
		s := &sorted[i]
		dur := us(s.End - s.Start)
		args := map[string]any{"seq": s.Seq, "peer": s.Peer}
		if s.Kind == SpanRequest && s.Sent > 0 {
			args["sent_us"] = us(s.Sent - s.Start)
		}
		if s.Kind == SpanRun || s.Kind == SpanBarrier || s.Kind == SpanLock {
			delete(args, "peer")
		}
		events = append(events, chromeEvent{
			Name: s.chromeName(), Ph: "X", Ts: us(s.Start), Dur: &dur,
			PID: s.PE, TID: s.chromeTID(), Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
