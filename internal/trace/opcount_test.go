package trace

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestCountSentAndMerge(t *testing.T) {
	var a, b PEStats
	a.CountSent(wire.OpRead, 48)
	a.CountSent(wire.OpRead, 48)
	a.CountSent(wire.OpReadV, 80)
	b.CountSent(wire.OpReadV, 96)
	b.CountSent(wire.OpWriteV, 200)

	a.Add(&b)
	if a.ByOp[wire.OpRead].Msgs != 2 || a.ByOp[wire.OpRead].Bytes != 96 {
		t.Errorf("OpRead = %+v, want 2 msgs / 96 bytes", a.ByOp[wire.OpRead])
	}
	if a.ByOp[wire.OpReadV].Msgs != 2 || a.ByOp[wire.OpReadV].Bytes != 176 {
		t.Errorf("OpReadV = %+v, want 2 msgs / 176 bytes", a.ByOp[wire.OpReadV])
	}
	if a.ByOp[wire.OpWriteV].Msgs != 1 {
		t.Errorf("OpWriteV = %+v, want 1 msg", a.ByOp[wire.OpWriteV])
	}
	// Out-of-range ops are dropped, not a panic.
	a.CountSent(wire.Op(250), 1)
}

func TestOpTableListsOnlyUsedOps(t *testing.T) {
	var s PEStats
	s.CountSent(wire.OpBarrierArrive, 48)
	s.CountSent(wire.OpReadV, 112)
	var sb strings.Builder
	s.OpTable("traffic").Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "barrier-arrive") || !strings.Contains(out, "read-v") {
		t.Errorf("OpTable missing used ops:\n%s", out)
	}
	if strings.Contains(out, "write-v") || strings.Contains(out, "cas") {
		t.Errorf("OpTable lists unused ops:\n%s", out)
	}
}
