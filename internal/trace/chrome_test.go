package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// TestWriteChromeTraceGolden pins the exact exported JSON for a small span
// set, so the trace_event dialect (field names, units, metadata events,
// ordering) cannot drift without a deliberate golden update.
func TestWriteChromeTraceGolden(t *testing.T) {
	spans := []Span{
		// Deliberately out of order: the writer must sort by (Start, PE, tid).
		{Kind: SpanService, Op: wire.OpRead, PE: 1, Peer: 0, Seq: 7,
			Start: 12 * sim.Microsecond, End: 14 * sim.Microsecond},
		{Kind: SpanRun, PE: 0,
			Start: 0, End: 100 * sim.Microsecond},
		{Kind: SpanRequest, Op: wire.OpRead, PE: 0, Peer: 1, Seq: 7,
			Start: 10 * sim.Microsecond, Sent: 11 * sim.Microsecond, End: 20 * sim.Microsecond},
		{Kind: SpanBarrier, PE: 0, Seq: 3,
			Start: 30 * sim.Microsecond, End: 42 * sim.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	want := strings.TrimSpace(`
[{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"PE 0"}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"dse-process"}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"dse-kernel"}},{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"PE 1"}},{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"dse-process"}},{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"dse-kernel"}},{"name":"run","ph":"X","ts":0,"dur":100,"pid":0,"tid":0,"args":{"seq":0}},{"name":"req:read","ph":"X","ts":10,"dur":10,"pid":0,"tid":0,"args":{"peer":1,"sent_us":1,"seq":7}},{"name":"svc:read","ph":"X","ts":12,"dur":2,"pid":1,"tid":1,"args":{"peer":0,"seq":7}},{"name":"barrier","ph":"X","ts":30,"dur":12,"pid":0,"tid":0,"args":{"seq":3}}]
`)
	if got != want {
		t.Fatalf("golden mismatch\ngot:  %s\nwant: %s", got, want)
	}

	// The output must also round-trip as generic JSON.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(events) != 10 {
		t.Fatalf("events=%d want 10", len(events))
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace: %v %v", events, err)
	}
}
