package trace

import (
	"strings"
	"testing"
)

func plotted(t *testing.T, series []Series) string {
	t.Helper()
	var b strings.Builder
	Plot(&b, "demo", series, 40, 10)
	return b.String()
}

func TestPlotContainsMarksAndLegend(t *testing.T) {
	s1 := Series{Label: "alpha", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}}
	s2 := Series{Label: "beta", X: []float64{1, 2, 3}, Y: []float64{9, 4, 1}}
	out := plotted(t, []Series{s1, s2})
	for _, want := range []string{"demo", "*", "+", "alpha", "beta", "|", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmptySeries(t *testing.T) {
	out := plotted(t, nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestPlotPeakAtTop(t *testing.T) {
	s := Series{Label: "peak", X: []float64{0, 1, 2}, Y: []float64{0, 10, 0}}
	out := plotted(t, []Series{s})
	lines := strings.Split(out, "\n")
	// First grid line carries the max-value label and the peak mark.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("peak not on top row:\n%s", out)
	}
	if !strings.Contains(lines[1], "10") {
		t.Fatalf("top row not labelled with max:\n%s", out)
	}
}

func TestPlotConstantSeriesDoesNotPanic(t *testing.T) {
	s := Series{Label: "flat", X: []float64{5, 5}, Y: []float64{0, 0}}
	out := plotted(t, []Series{s})
	if out == "" {
		t.Fatal("no output")
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	var b strings.Builder
	Plot(&b, "t", []Series{{Label: "s", X: []float64{1}, Y: []float64{1}}}, 1, 1)
	if !strings.Contains(b.String(), "*") {
		t.Fatal("clamped plot lost its data point")
	}
}
