package trace

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/sim"
)

// histBuckets spans 1 µs .. ~1 s in power-of-two buckets.
const histBuckets = 21

// Histogram is a power-of-two latency histogram for request round trips.
// Bucket i counts samples in [2^i, 2^(i+1)) microseconds; the last bucket
// absorbs everything larger.
type Histogram struct {
	Count   uint64
	Sum     sim.Duration
	Max     sim.Duration
	Buckets [histBuckets]uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Duration) int {
	us := int64(d) / int64(sim.Microsecond)
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Duration) {
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	h.Buckets[bucketOf(d)]++
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / sim.Duration(h.Count)
}

// Quantile returns an upper bound of the q-quantile (0 < q <= 1) from the
// bucket boundaries — within 2× of the true value by construction.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			// Upper bucket boundary: 2^(i+1) microseconds.
			return sim.Duration(int64(1)<<uint(i+1)) * sim.Microsecond
		}
	}
	return h.Max
}

// String summarises the distribution.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max)
}

// Render draws an ASCII bar chart of the non-empty bucket range.
func (h *Histogram) Render(width int) string {
	if h.Count == 0 {
		return "(no samples)\n"
	}
	if width < 8 {
		width = 8
	}
	lo, hi := -1, 0
	var peak uint64
	for i, c := range h.Buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(float64(h.Buckets[i]) / float64(peak) * float64(width))
		label := sim.Duration(int64(1)<<uint(i)) * sim.Microsecond
		fmt.Fprintf(&b, "%12v |%-*s| %d\n", label, width, strings.Repeat("#", n), h.Buckets[i])
	}
	return b.String()
}
