package trace

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/sim"
)

// histBuckets spans 1 µs .. ~1 s in power-of-two buckets.
const histBuckets = 21

// Histogram is a power-of-two latency histogram for request round trips.
// Bucket i counts samples in [2^i, 2^(i+1)) microseconds; the last bucket
// absorbs everything larger.
//
// # Concurrency contract
//
// Observe, Merge and the read accessors (Mean, Quantile, Samples, Total,
// MaxSample, Snapshot, String, Render) use atomic operations on every field,
// so a Histogram may be observed from any number of goroutines in parallel
// and merged or read while observers are still running — this is what makes
// the cross-PE aggregation path (live /metrics exporters, Result merging)
// safe while kernels are still serving. Two caveats:
//
//  1. A concurrent read is per-field atomic but not a cross-field snapshot:
//     Count, Sum and Buckets may be mutually out of date by the samples in
//     flight. Quantiles read live are therefore approximate; they become
//     exact once observers quiesce.
//  2. Direct field access is only safe once all observers have quiesced
//     (e.g. in tests, or after core.Run returned). Concurrent readers must
//     go through the accessors or Snapshot.
type Histogram struct {
	Count   uint64
	Sum     sim.Duration
	Max     sim.Duration
	Buckets [histBuckets]uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Duration) int {
	us := int64(d) / int64(sim.Microsecond)
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample. Safe for concurrent use.
func (h *Histogram) Observe(d sim.Duration) {
	atomic.AddUint64(&h.Count, 1)
	atomic.AddInt64((*int64)(&h.Sum), int64(d))
	for {
		old := atomic.LoadInt64((*int64)(&h.Max))
		if int64(d) <= old || atomic.CompareAndSwapInt64((*int64)(&h.Max), old, int64(d)) {
			break
		}
	}
	atomic.AddUint64(&h.Buckets[bucketOf(d)], 1)
}

// Merge accumulates o into h. Both sides may still be receiving Observe
// calls; the merged result then reflects some prefix of the in-flight
// samples (see the concurrency contract above).
func (h *Histogram) Merge(o *Histogram) {
	atomic.AddUint64(&h.Count, atomic.LoadUint64(&o.Count))
	atomic.AddInt64((*int64)(&h.Sum), atomic.LoadInt64((*int64)(&o.Sum)))
	om := atomic.LoadInt64((*int64)(&o.Max))
	for {
		old := atomic.LoadInt64((*int64)(&h.Max))
		if om <= old || atomic.CompareAndSwapInt64((*int64)(&h.Max), old, om) {
			break
		}
	}
	for i := range h.Buckets {
		atomic.AddUint64(&h.Buckets[i], atomic.LoadUint64(&o.Buckets[i]))
	}
}

// Snapshot returns an atomically-read copy safe to inspect field by field.
func (h *Histogram) Snapshot() Histogram {
	var s Histogram
	s.Count = atomic.LoadUint64(&h.Count)
	s.Sum = sim.Duration(atomic.LoadInt64((*int64)(&h.Sum)))
	s.Max = sim.Duration(atomic.LoadInt64((*int64)(&h.Max)))
	for i := range s.Buckets {
		s.Buckets[i] = atomic.LoadUint64(&h.Buckets[i])
	}
	return s
}

// Samples returns the sample count (atomically).
func (h *Histogram) Samples() uint64 { return atomic.LoadUint64(&h.Count) }

// Total returns the sample sum (atomically).
func (h *Histogram) Total() sim.Duration {
	return sim.Duration(atomic.LoadInt64((*int64)(&h.Sum)))
}

// MaxSample returns the largest sample (atomically).
func (h *Histogram) MaxSample() sim.Duration {
	return sim.Duration(atomic.LoadInt64((*int64)(&h.Max)))
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	n := atomic.LoadUint64(&h.Count)
	if n == 0 {
		return 0
	}
	return sim.Duration(atomic.LoadInt64((*int64)(&h.Sum))) / sim.Duration(n)
}

// Quantile returns an upper bound of the q-quantile (0 < q <= 1) from the
// bucket boundaries — within 2× of the true value by construction.
func (h *Histogram) Quantile(q float64) sim.Duration {
	n := atomic.LoadUint64(&h.Count)
	if n == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.Buckets {
		seen += atomic.LoadUint64(&h.Buckets[i])
		if seen >= target {
			// Upper bucket boundary: 2^(i+1) microseconds.
			return sim.Duration(int64(1)<<uint(i+1)) * sim.Microsecond
		}
	}
	return h.MaxSample()
}

// String summarises the distribution.
func (h *Histogram) String() string {
	s := h.Snapshot()
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max)
}

// Render draws an ASCII bar chart of the non-empty bucket range.
func (h *Histogram) Render(width int) string {
	s := h.Snapshot()
	if s.Count == 0 {
		return "(no samples)\n"
	}
	if width < 8 {
		width = 8
	}
	lo, hi := -1, 0
	var peak uint64
	for i, c := range s.Buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(float64(s.Buckets[i]) / float64(peak) * float64(width))
		label := sim.Duration(int64(1)<<uint(i)) * sim.Microsecond
		fmt.Fprintf(&b, "%12v |%-*s| %d\n", label, width, strings.Repeat("#", n), s.Buckets[i])
	}
	return b.String()
}
