package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPEStatsAddAccumulates(t *testing.T) {
	a := PEStats{ComputeTime: 10, SendOverhead: 1, RecvOverhead: 2, WaitTime: 3,
		MsgsSent: 4, MsgsRecv: 5, BytesSent: 6, BytesRecv: 7,
		LocalGM: 8, RemoteGM: 9, Barriers: 10, Locks: 11}
	b := a
	a.Add(&b)
	if a.ComputeTime != 20 || a.MsgsSent != 8 || a.Locks != 22 || a.RemoteGM != 18 {
		t.Fatalf("Add broken: %+v", a)
	}
}

func TestCommTimeSumsComponents(t *testing.T) {
	s := PEStats{SendOverhead: 5, RecvOverhead: 7, WaitTime: 11}
	if s.CommTime() != 23 {
		t.Fatalf("CommTime = %v", s.CommTime())
	}
}

func TestPEStatsStringMentionsEverything(t *testing.T) {
	s := PEStats{ComputeTime: sim.Second, MsgsSent: 3}
	out := s.String()
	for _, want := range []string{"compute=", "comm=", "msgs=3", "gm="} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q: %s", want, out)
		}
	}
}

func TestSeriesAppendAndPeaks(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(2, 9)
	s.Append(3, 4)
	if s.MaxY() != 9 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
	if s.ArgMaxY() != 2 {
		t.Fatalf("ArgMaxY = %v", s.ArgMaxY())
	}
	var empty Series
	if empty.MaxY() != 0 || empty.ArgMaxY() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("a", "1")
	tab.AddRow("long-name", "22")
	var b strings.Builder
	tab.Fprint(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d: %q", len(lines), lines)
		}
	}
	// Header and separator must be as wide as the widest cell.
	if !strings.HasPrefix(lines[1], "name     ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---------") {
		t.Fatalf("separator not sized to widest cell: %q", lines[2])
	}
}

func TestSeriesTableMergesSeries(t *testing.T) {
	s1 := Series{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	s2 := Series{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}}
	tab := SeriesTable("title", "x", "%.0f", []Series{s1, s2})
	if len(tab.Header) != 3 || tab.Header[1] != "a" || tab.Header[2] != "b" {
		t.Fatalf("header = %v", tab.Header)
	}
	if len(tab.Rows) != 2 || tab.Rows[1][2] != "40" {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestSeriesTableHandlesShortSeries(t *testing.T) {
	s1 := Series{Label: "a", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}}
	s2 := Series{Label: "b", X: []float64{1}, Y: []float64{9}}
	tab := SeriesTable("t", "x", "%.0f", []Series{s1, s2})
	if tab.Rows[2][2] != "-" {
		t.Fatalf("missing value not dashed: %v", tab.Rows)
	}
}

func TestSeriesTableEmpty(t *testing.T) {
	tab := SeriesTable("t", "x", "%.0f", nil)
	if len(tab.Rows) != 0 || len(tab.Header) != 1 {
		t.Fatalf("empty table malformed: %+v", tab)
	}
}
