package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// seriesMarks are the plot glyphs, one per series in order.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders a family of series as an ASCII chart — enough to eyeball
// the curve shapes of a regenerated figure in a terminal. The y axis
// starts at zero (paper figures do), x spans the data range.
func Plot(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	points := 0
	for _, s := range series {
		for i := range s.X {
			points++
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if points == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == 0 {
		ymax = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round(s.Y[i]/ymax*float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	yLabelW := len(fmt.Sprintf("%.3g", ymax))
	for r, line := range grid {
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3g", yLabelW, ymax)
		case height - 1:
			label = fmt.Sprintf("%*.3g", yLabelW, 0.0)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", yLabelW), width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Label))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(legend, "   "))
}
