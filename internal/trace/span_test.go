package trace

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestTracingConfigDisabled(t *testing.T) {
	var c TracingConfig
	if c.NewRing() != nil {
		t.Fatal("zero TracingConfig must produce a nil ring")
	}
}

func TestSpanRingWraparound(t *testing.T) {
	r := TracingConfig{Enabled: true, RingSize: 4}.NewRing()
	for i := 0; i < 10; i++ {
		if !r.Sampled() {
			t.Fatalf("sample=0 must record every span (i=%d)", i)
		}
		r.Record(Span{Kind: SpanRequest, Op: wire.OpRead, Seq: uint64(i),
			Start: sim.Time(i) * sim.Microsecond, End: sim.Time(i+1) * sim.Microsecond})
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped=%d want 6", r.Dropped())
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len=%d", len(spans))
	}
	// Oldest-first: the four survivors are seqs 6..9.
	for i, s := range spans {
		if s.Seq != uint64(6+i) {
			t.Fatalf("snapshot[%d].Seq=%d want %d", i, s.Seq, 6+i)
		}
	}
}

func TestSpanRingPartialSnapshot(t *testing.T) {
	r := TracingConfig{Enabled: true, RingSize: 8}.NewRing()
	for i := 0; i < 3; i++ {
		r.Record(Span{Seq: uint64(i)})
	}
	spans := r.Snapshot()
	if len(spans) != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", len(spans), r.Dropped())
	}
	for i, s := range spans {
		if s.Seq != uint64(i) {
			t.Fatalf("snapshot[%d].Seq=%d", i, s.Seq)
		}
	}
}

func TestSpanRingSampling(t *testing.T) {
	r := TracingConfig{Enabled: true, RingSize: 64, Sample: 3}.NewRing()
	recorded := 0
	for i := 0; i < 30; i++ {
		if r.Sampled() {
			r.Record(Span{Seq: uint64(i)})
			recorded++
		}
	}
	if recorded != 10 {
		t.Fatalf("sample=3 over 30 spans recorded %d, want 10", recorded)
	}
	if r.Len() != 10 {
		t.Fatalf("Len=%d", r.Len())
	}
}

func TestSpanKindStrings(t *testing.T) {
	kinds := []SpanKind{SpanRun, SpanRequest, SpanTransfer, SpanBarrier, SpanLock, SpanService}
	want := []string{"run", "request", "transfer", "barrier", "lock", "service"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d → %q want %q", i, k.String(), want[i])
		}
	}
	if SpanKind(200).String() != "span?" {
		t.Fatal("unknown kind string")
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: 10 * sim.Microsecond, End: 35 * sim.Microsecond}
	if s.Duration() != 25*sim.Microsecond {
		t.Fatalf("duration=%v", s.Duration())
	}
}
