// Request span tracing: every kernel request (and synchronisation wait, and
// kernel service event) can be recorded as a timestamped span into a
// fixed-size per-context ring buffer. The rings are allocation-free after
// construction and cost nothing when tracing is disabled (a nil check on
// the hot path), which is what lets the paper's execution-time breakdown
// (compute / send / receive / wait, Figs. 10-21) be reconstructed per
// request instead of only as end-of-run scalar totals.
package trace

import (
	"repro/internal/sim"
	"repro/internal/wire"
)

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds. App-context spans (run, request, transfer, barrier, lock)
// render on a PE's application thread in the Chrome trace; service spans on
// its kernel thread.
const (
	SpanRun      SpanKind = iota // one PE's whole program execution
	SpanRequest                  // one request round trip, issue → complete
	SpanTransfer                 // the wait phase of a pipelined block/gather transfer
	SpanBarrier                  // blocked in a barrier
	SpanLock                     // blocked acquiring a cluster lock
	SpanService                  // kernel handling one incoming message
	SpanCkpt                     // one coordinated checkpoint, quiesce → commit
)

func (k SpanKind) String() string {
	switch k {
	case SpanRun:
		return "run"
	case SpanRequest:
		return "request"
	case SpanTransfer:
		return "transfer"
	case SpanBarrier:
		return "barrier"
	case SpanLock:
		return "lock"
	case SpanService:
		return "service"
	case SpanCkpt:
		return "ckpt"
	}
	return "span?"
}

// Span is one recorded interval of a request's life. Requester-side request
// spans cover issue → encode+send → (home service) → reply → complete; the
// matching home-side interval is a separate SpanService span on the home
// kernel, correlated by (Peer, Seq).
type Span struct {
	Kind SpanKind
	Op   wire.Op // request op (SpanRequest/SpanService/SpanTransfer); OpInvalid otherwise
	PE   int32   // recording PE
	Peer int32   // destination kernel (requester side) or requester (service side)
	Seq  uint64  // request id; barrier/lock id for sync spans
	// Start..End bound the span. For SpanRequest, Sent is when the encoded
	// request had left the node (send-side overhead boundary); for
	// SpanService, Start is the transport's receive timestamp (wire.Message
	// RecvAt) and Sent is unused.
	Start sim.Time
	Sent  sim.Time
	End   sim.Time
}

// Duration is the span length.
func (s *Span) Duration() sim.Duration { return s.End - s.Start }

// TracingConfig switches span tracing on and sizes the rings. The zero
// value is "disabled", which costs one nil pointer check per request.
type TracingConfig struct {
	// Enabled turns span recording on.
	Enabled bool
	// RingSize is the per-context span capacity (0 = 4096). When a ring is
	// full the oldest span is overwritten and counted as dropped.
	RingSize int
	// Sample records every Sample-th request/service span (0 or 1 = all).
	// Run and synchronisation spans are always recorded: they are rare and
	// anchor the timeline.
	Sample int
}

// NewRing builds a ring per the config, or nil when tracing is disabled.
func (c TracingConfig) NewRing() *SpanRing {
	if !c.Enabled {
		return nil
	}
	size := c.RingSize
	if size <= 0 {
		size = 4096
	}
	sample := c.Sample
	if sample <= 0 {
		sample = 1
	}
	return &SpanRing{spans: make([]Span, size), sample: uint64(sample)}
}

// SpanRing is a fixed-size span buffer with wraparound.
//
// # Concurrency contract
//
// A ring is single-writer: exactly one goroutine (the PE's application
// context, or one kernel's serve loop) calls Sampled/Record. Snapshot,
// Len and Dropped may only be called after that writer has quiesced
// (after core.Run/RunOn returned); they are not synchronised.
type SpanRing struct {
	spans   []Span
	n       int // filled entries
	next    int // next write position
	sample  uint64
	seen    uint64 // sampling counter
	dropped uint64 // spans overwritten by wraparound
}

// Sampled reports whether the next request/service span should be recorded,
// advancing the sampling counter.
func (r *SpanRing) Sampled() bool {
	r.seen++
	return r.sample <= 1 || r.seen%r.sample == 0
}

// Record appends s, overwriting the oldest span when full.
func (r *SpanRing) Record(s Span) {
	r.spans[r.next] = s
	r.next = (r.next + 1) % len(r.spans)
	if r.n < len(r.spans) {
		r.n++
	} else {
		r.dropped++
	}
}

// Len reports how many spans the ring holds.
func (r *SpanRing) Len() int { return r.n }

// Dropped reports how many spans wraparound overwrote.
func (r *SpanRing) Dropped() uint64 { return r.dropped }

// Snapshot copies the retained spans out in record order (oldest first).
func (r *SpanRing) Snapshot() []Span {
	out := make([]Span, 0, r.n)
	if r.n == len(r.spans) {
		out = append(out, r.spans[r.next:]...)
		out = append(out, r.spans[:r.next]...)
		return out
	}
	return append(out, r.spans[:r.n]...)
}
