package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(10 * sim.Microsecond)
	h.Observe(20 * sim.Microsecond)
	h.Observe(30 * sim.Microsecond)
	if h.Count != 3 || h.Mean() != 20*sim.Microsecond {
		t.Fatalf("count=%d mean=%v", h.Count, h.Mean())
	}
	if h.Max != 30*sim.Microsecond {
		t.Fatalf("max=%v", h.Max)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// True median is 500us; the bucketed bound must cover it within 2x.
	if p50 < 500*sim.Microsecond || p50 > 1024*sim.Microsecond {
		t.Fatalf("p50 bound %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990*sim.Microsecond {
		t.Fatalf("p99 bound %v below true value", p99)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5 * sim.Microsecond)
	b.Observe(50 * sim.Millisecond)
	a.Merge(&b)
	if a.Count != 2 || a.Max != 50*sim.Millisecond {
		t.Fatalf("merged: %+v", a)
	}
}

// Property: counts are conserved and Sum equals the sum of samples.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		var sum sim.Duration
		for _, s := range samples {
			d := sim.Duration(s)
			h.Observe(d)
			sum += d
		}
		return h.Count == uint64(len(samples)) && h.Sum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramParallelObserve drives Observe, Merge and the quantile
// readers from many goroutines at once; run under -race it checks the
// documented multi-writer contract (live exporters read while PEs observe).
func TestHistogramParallelObserve(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	var h Histogram
	var readerTotal Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: a live /metrics exporter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			hs := h.Snapshot()
			_ = hs.Quantile(0.95)
			_ = hs.Mean()
			readerTotal.Merge(&h) // concurrent Merge from a live source
		}
	}()
	var writersDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			for i := 1; i <= perWriter; i++ {
				h.Observe(sim.Duration(w*perWriter+i) * sim.Microsecond)
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	wg.Wait()

	hs := h.Snapshot()
	if hs.Count != writers*perWriter {
		t.Fatalf("count=%d want %d (lost updates)", hs.Count, writers*perWriter)
	}
	wantMax := sim.Duration(writers*perWriter) * sim.Microsecond
	if hs.Max != wantMax {
		t.Fatalf("max=%v want %v", hs.Max, wantMax)
	}
	var total uint64
	for i := range hs.Buckets {
		total += hs.Buckets[i]
	}
	if total != hs.Count {
		t.Fatalf("bucket total %d != count %d", total, hs.Count)
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(100 * sim.Microsecond)
	}
	h.Observe(10 * sim.Millisecond)
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "10") {
		t.Fatalf("render:\n%s", out)
	}
	var empty Histogram
	if !strings.Contains(empty.Render(20), "no samples") {
		t.Fatal("empty render wrong")
	}
}

func TestHistogramStringSummary(t *testing.T) {
	var h Histogram
	h.Observe(sim.Millisecond)
	s := h.String()
	for _, want := range []string{"n=1", "mean=", "p99<="} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
