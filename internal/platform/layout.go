package platform

import "fmt"

// PhysicalMachines is the number of workstations available in the paper's
// laboratory (Table 2). When an experiment asks for more processors than
// machines, a virtual cluster is constructed by starting several DSE
// kernels per machine.
const PhysicalMachines = 6

// LoadModel selects how co-locating several DSE kernels on one machine
// affects their compute speed.
type LoadModel int

const (
	// LoadProportional follows the paper: "the machine load increases in
	// proportion to this number" — each kernel computes k× slower when k
	// kernels share the machine.
	LoadProportional LoadModel = iota
	// LoadNone pretends every kernel has a dedicated machine. Used as an
	// ablation to show the >6-processor knee comes from the virtual
	// cluster, not the algorithm.
	LoadNone
)

func (m LoadModel) String() string {
	switch m {
	case LoadProportional:
		return "proportional"
	case LoadNone:
		return "none"
	default:
		return fmt.Sprintf("LoadModel(%d)", int(m))
	}
}

// Layout maps DSE kernels onto physical machines (paper Table 2).
type Layout struct {
	Machines int       // physical workstations on the LAN
	Kernels  int       // DSE kernels (= requested processors)
	Load     LoadModel // co-location slowdown model
}

// NewLayout builds the paper's placement: kernels are dealt round-robin
// over the machines, so with 6 machines and 12 kernels every machine hosts
// two (the paper's example).
func NewLayout(machines, kernels int, load LoadModel) Layout {
	if machines <= 0 {
		panic("platform: layout needs at least one machine")
	}
	if kernels <= 0 {
		panic("platform: layout needs at least one kernel")
	}
	return Layout{Machines: machines, Kernels: kernels, Load: load}
}

// MachineOf returns the machine hosting kernel k (round-robin placement).
func (l Layout) MachineOf(k int) int {
	if k < 0 || k >= l.Kernels {
		panic(fmt.Sprintf("platform: kernel %d out of range [0,%d)", k, l.Kernels))
	}
	return k % l.Machines
}

// KernelsOn returns how many kernels machine m hosts.
func (l Layout) KernelsOn(m int) int {
	if m < 0 || m >= l.Machines {
		panic(fmt.Sprintf("platform: machine %d out of range [0,%d)", m, l.Machines))
	}
	n := l.Kernels / l.Machines
	if m < l.Kernels%l.Machines {
		n++
	}
	return n
}

// UsedMachines reports how many machines host at least one kernel.
func (l Layout) UsedMachines() int {
	if l.Kernels < l.Machines {
		return l.Kernels
	}
	return l.Machines
}

// LoadFactor is the compute-time multiplier for kernel k under the layout's
// load model.
func (l Layout) LoadFactor(k int) float64 {
	switch l.Load {
	case LoadNone:
		return 1
	default:
		return float64(l.KernelsOn(l.MachineOf(k)))
	}
}

// Hostname gives a stable per-machine name used by the SSI layer.
func (l Layout) Hostname(k int) string {
	return fmt.Sprintf("node%02d", l.MachineOf(k))
}

// Table2Row describes one row of the paper's Table 2 rendering: for a
// processor count, how many machines are used and the kernels-per-machine
// distribution.
type Table2Row struct {
	Processors     int
	MachinesUsed   int
	MaxPerMachine  int
	MeanPerMachine float64
}

// Table2 reproduces paper Table 2 for processor counts 1..maxProcs on the
// laboratory's six machines.
func Table2(maxProcs int) []Table2Row {
	rows := make([]Table2Row, 0, maxProcs)
	for p := 1; p <= maxProcs; p++ {
		l := NewLayout(PhysicalMachines, p, LoadProportional)
		max := 0
		for m := 0; m < l.UsedMachines(); m++ {
			if k := l.KernelsOn(m); k > max {
				max = k
			}
		}
		rows = append(rows, Table2Row{
			Processors:     p,
			MachinesUsed:   l.UsedMachines(),
			MaxPerMachine:  max,
			MeanPerMachine: float64(p) / float64(l.UsedMachines()),
		})
	}
	return rows
}
