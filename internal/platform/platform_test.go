package platform

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRegistryHasThreePlatforms(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("got %d platforms, want 3 (paper Table 1)", len(all))
	}
	seen := map[string]bool{}
	for _, pl := range all {
		if pl.Name == "" || pl.OS == "" || pl.OpsPerSec <= 0 {
			t.Fatalf("incomplete platform %+v", pl)
		}
		if seen[pl.Numeric] {
			t.Fatalf("duplicate tag %q", pl.Numeric)
		}
		seen[pl.Numeric] = true
	}
}

func TestByName(t *testing.T) {
	for _, key := range []string{"sunos", "aix", "linux", "SparcStation", "RS/6000"} {
		if _, ok := ByName(key); !ok {
			t.Fatalf("ByName(%q) not found", key)
		}
	}
	if _, ok := ByName("plan9"); ok {
		t.Fatal("ByName(plan9) unexpectedly found")
	}
}

func TestComputeTimeScalesLinearly(t *testing.T) {
	pl := SparcSunOS
	t1 := pl.ComputeTime(1e6)
	t2 := pl.ComputeTime(2e6)
	if t2 != 2*t1 {
		t.Fatalf("ComputeTime not linear: %v vs %v", t1, t2)
	}
	if pl.ComputeTime(0) != 0 || pl.ComputeTime(-5) != 0 {
		t.Fatal("non-positive ops should cost nothing")
	}
}

func TestPlatformOrdering(t *testing.T) {
	// The paper's Linux/PentiumII machine is the fastest CPU with the
	// cheapest syscalls; SunOS/Sparc the slowest with the costliest stack.
	if !(PentiumIILinux.OpsPerSec > RS6000AIX.OpsPerSec && RS6000AIX.OpsPerSec > SparcSunOS.OpsPerSec) {
		t.Fatal("CPU rate ordering violated")
	}
	if !(PentiumIILinux.SendOverhead(64) < RS6000AIX.SendOverhead(64) &&
		RS6000AIX.SendOverhead(64) < SparcSunOS.SendOverhead(64)) {
		t.Fatal("protocol overhead ordering violated")
	}
}

func TestSendRecvOverheadGrowWithSize(t *testing.T) {
	for _, pl := range All() {
		if pl.SendOverhead(64*1024) <= pl.SendOverhead(64) {
			t.Fatalf("%s: send overhead does not grow with size", pl.Name)
		}
		if pl.RecvOverhead(64*1024) <= pl.RecvOverhead(64) {
			t.Fatalf("%s: recv overhead does not grow with size", pl.Name)
		}
	}
}

func TestLayoutRoundRobin(t *testing.T) {
	l := NewLayout(6, 12, LoadProportional)
	for k := 0; k < 12; k++ {
		if l.MachineOf(k) != k%6 {
			t.Fatalf("kernel %d on machine %d, want %d", k, l.MachineOf(k), k%6)
		}
	}
	for m := 0; m < 6; m++ {
		if l.KernelsOn(m) != 2 {
			t.Fatalf("machine %d hosts %d kernels, want 2 (paper: 12 procs -> 2 each)", m, l.KernelsOn(m))
		}
	}
}

func TestLayoutUnevenDistribution(t *testing.T) {
	l := NewLayout(6, 8, LoadProportional)
	total := 0
	for m := 0; m < 6; m++ {
		k := l.KernelsOn(m)
		if k != 1 && k != 2 {
			t.Fatalf("machine %d hosts %d kernels, want 1 or 2", m, k)
		}
		total += k
	}
	if total != 8 {
		t.Fatalf("kernels sum to %d, want 8", total)
	}
	if l.KernelsOn(0) != 2 || l.KernelsOn(5) != 1 {
		t.Fatal("first machines should absorb the excess kernels")
	}
}

func TestLoadFactorProportionalVsNone(t *testing.T) {
	prop := NewLayout(6, 12, LoadProportional)
	none := NewLayout(6, 12, LoadNone)
	if prop.LoadFactor(0) != 2 {
		t.Fatalf("proportional load factor = %v, want 2", prop.LoadFactor(0))
	}
	if none.LoadFactor(0) != 1 {
		t.Fatalf("LoadNone factor = %v, want 1", none.LoadFactor(0))
	}
}

func TestLoadFactorIsOneBelowMachineCount(t *testing.T) {
	for p := 1; p <= 6; p++ {
		l := NewLayout(6, p, LoadProportional)
		for k := 0; k < p; k++ {
			if l.LoadFactor(k) != 1 {
				t.Fatalf("p=%d kernel %d load factor %v, want 1", p, k, l.LoadFactor(k))
			}
		}
	}
}

func TestTable2MatchesPaperExample(t *testing.T) {
	rows := Table2(12)
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper: "two DSE kernels start on each computer when the [number of
	// processors] is [12]".
	r12 := rows[11]
	if r12.MachinesUsed != 6 || r12.MaxPerMachine != 2 {
		t.Fatalf("12 processors: %+v, want 6 machines x 2 kernels", r12)
	}
	r6 := rows[5]
	if r6.MachinesUsed != 6 || r6.MaxPerMachine != 1 {
		t.Fatalf("6 processors: %+v, want 6 machines x 1 kernel", r6)
	}
	r7 := rows[6]
	if r7.MaxPerMachine != 2 {
		t.Fatalf("7 processors: %+v, want one doubled machine", r7)
	}
}

// Property: kernels are conserved by the layout for any machine/kernel mix.
func TestLayoutConservationProperty(t *testing.T) {
	f := func(machines, kernels uint8) bool {
		m := int(machines%16) + 1
		k := int(kernels%64) + 1
		l := NewLayout(m, k, LoadProportional)
		total := 0
		for i := 0; i < m; i++ {
			total += l.KernelsOn(i)
		}
		if total != k {
			return false
		}
		// Per-machine counts must agree with MachineOf placement.
		counts := make([]int, m)
		for i := 0; i < k; i++ {
			counts[l.MachineOf(i)]++
		}
		for i := 0; i < m; i++ {
			if counts[i] != l.KernelsOn(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostnameStablePerMachine(t *testing.T) {
	l := NewLayout(6, 12, LoadProportional)
	if l.Hostname(0) != l.Hostname(6) {
		t.Fatal("kernels 0 and 6 share machine 0 but report different hostnames")
	}
	if l.Hostname(0) == l.Hostname(1) {
		t.Fatal("kernels on different machines share a hostname")
	}
}

func TestOverheadIsPositiveVirtualTime(t *testing.T) {
	for _, pl := range All() {
		if pl.SendOverhead(0) <= 0 || pl.RecvOverhead(0) <= 0 {
			t.Fatalf("%s: zero-byte message has non-positive overhead", pl.Name)
		}
		if pl.SendOverhead(0) < sim.Microsecond {
			t.Fatalf("%s: implausibly cheap send overhead", pl.Name)
		}
	}
}

func TestExtendedRegistryAddsFutureWorkPlatform(t *testing.T) {
	ext := Extended()
	if len(ext) != 4 {
		t.Fatalf("extended registry has %d platforms, want 4", len(ext))
	}
	if ext[3] != SolarisUltra {
		t.Fatal("future-work platform missing from the extended registry")
	}
	if pl, ok := ByName("solaris"); !ok || pl != SolarisUltra {
		t.Fatal("ByName cannot find the future-work platform")
	}
	// It must carry a complete cost model like the Table 1 platforms.
	if SolarisUltra.OpsPerSec <= 0 || SolarisUltra.NetBandwidthBps <= 0 ||
		SolarisUltra.IPCCost <= 0 || SolarisUltra.SendOverhead(64) <= 0 {
		t.Fatalf("incomplete platform: %+v", SolarisUltra)
	}
}
