// Package platform models the three experiment environments of the paper's
// Table 1 — SparcStation/SunOS, IBM RS/6000/AIX and PC-AT PentiumII/Linux —
// as parametric cost models, plus the Table 2 virtual-cluster layout (six
// physical machines, several DSE kernels per machine when more processors
// are requested).
//
// DSE is implemented at the UNIX user level, so the paper's performance is
// shaped by (a) per-platform computation speed, (b) OS system-call and
// TCP/IP protocol-processing overhead per message, and (c) the shared
// 10 Mbps Ethernet. Each Platform captures (a) and (b); package ethernet
// captures (c). The absolute values below are period-plausible estimates
// calibrated so the reproduction matches the paper's curve shapes (see
// EXPERIMENTS.md); they are model inputs, not measurements.
package platform

import (
	"fmt"

	"repro/internal/sim"
)

// Platform describes one experiment environment (a row of paper Table 1).
type Platform struct {
	Name    string // machine, e.g. "SparcStation"
	OS      string // operating system, e.g. "SunOS 4.1.3"
	CPUMHz  float64
	Numeric string // short tag used in series labels, e.g. "sunos"

	// OpsPerSec is the sustained rate of useful application operations
	// (roughly flops for the numeric kernels) used to convert operation
	// counts into virtual compute time.
	OpsPerSec float64

	// Per-message operating-system costs for user-level communication.
	SyscallOverhead sim.Duration // system-call entry/exit
	ProtoPerMessage sim.Duration // TCP/IP protocol processing per message
	ProtoPerKB      sim.Duration // copy/checksum cost per kilobyte
	InterruptCost   sim.Duration // receive-side interrupt handling
	CtxSwitch       sim.Duration // async-I/O context switch between DSE kernel and DSE process
	LocalGMAccess   sim.Duration // library-level access to a GM word homed locally

	// IPCCost is one crossing of a UNIX IPC boundary (pipe/socketpair
	// write plus the process context switch). The paper's *old* DSE
	// organisation ran the DSE kernel and the DSE process as separate
	// UNIX processes, paying this on every kernel interaction; the
	// reorganised runtime links them into one process and avoids it.
	IPCCost sim.Duration

	// NetBandwidthBps is the cluster LAN's raw signalling rate. The SunOS
	// testbed is the paper-era shared 10 Mbps bus; the newer AIX and PC
	// clusters run 100 Mbps (still a shared medium in the model).
	NetBandwidthBps int64
}

// ComputeTime converts an operation count into virtual compute time on an
// otherwise idle processor.
func (pl *Platform) ComputeTime(ops float64) sim.Duration {
	if ops <= 0 {
		return 0
	}
	return sim.Duration(ops / pl.OpsPerSec * float64(sim.Second))
}

// SendOverhead is the sender-side CPU cost of pushing a message of the
// given payload size through the user-level protocol stack.
func (pl *Platform) SendOverhead(bytes int) sim.Duration {
	return pl.SyscallOverhead + pl.ProtoPerMessage + sim.Duration(int64(pl.ProtoPerKB)*int64(bytes)/1024)
}

// RecvOverhead is the receiver-side CPU cost of taking delivery of a
// message, including the asynchronous-I/O context switch into the DSE
// kernel that the paper's reorganised runtime uses.
func (pl *Platform) RecvOverhead(bytes int) sim.Duration {
	return pl.InterruptCost + pl.ProtoPerMessage + pl.CtxSwitch + sim.Duration(int64(pl.ProtoPerKB)*int64(bytes)/1024)
}

func (pl *Platform) String() string {
	return fmt.Sprintf("%s / %s (%.0f MHz)", pl.Name, pl.OS, pl.CPUMHz)
}

// The three environments of paper Table 1. CPU rates and OS costs are
// period-plausible: a mid-90s SuperSPARC workstation, a PowerPC RS/6000
// server, and a PentiumII-266 PC whose Linux kernel has markedly cheaper
// syscalls and protocol processing than SunOS 4.
var (
	SparcSunOS = &Platform{
		Name: "SparcStation", OS: "SunOS 4.1.3-JL", CPUMHz: 60, Numeric: "sunos",
		OpsPerSec:       2.5e6, // sustained out-of-cache dense-kernel rate of a 60 MHz SuperSPARC
		SyscallOverhead: 60 * sim.Microsecond,
		ProtoPerMessage: 350 * sim.Microsecond,
		ProtoPerKB:      60 * sim.Microsecond,
		InterruptCost:   80 * sim.Microsecond,
		CtxSwitch:       120 * sim.Microsecond,
		LocalGMAccess:   3 * sim.Microsecond,
		IPCCost:         250 * sim.Microsecond,
		NetBandwidthBps: 10_000_000,
	}
	RS6000AIX = &Platform{
		Name: "RS/6000", OS: "AIX 4.2", CPUMHz: 133, Numeric: "aix",
		OpsPerSec:       12e6,
		SyscallOverhead: 30 * sim.Microsecond,
		ProtoPerMessage: 220 * sim.Microsecond,
		ProtoPerKB:      35 * sim.Microsecond,
		InterruptCost:   50 * sim.Microsecond,
		CtxSwitch:       80 * sim.Microsecond,
		LocalGMAccess:   1500 * sim.Nanosecond,
		IPCCost:         140 * sim.Microsecond,
		NetBandwidthBps: 100_000_000,
	}
	PentiumIILinux = &Platform{
		Name: "PC-AT PentiumII 266MHz", OS: "GNU/Linux 2.0.36", CPUMHz: 266, Numeric: "linux",
		OpsPerSec:       20e6,
		SyscallOverhead: 8 * sim.Microsecond,
		ProtoPerMessage: 130 * sim.Microsecond,
		ProtoPerKB:      20 * sim.Microsecond,
		InterruptCost:   25 * sim.Microsecond,
		CtxSwitch:       35 * sim.Microsecond,
		LocalGMAccess:   900 * sim.Nanosecond,
		IPCCost:         55 * sim.Microsecond,
		NetBandwidthBps: 100_000_000,
	}
)

// SolarisUltra is a fourth environment beyond paper Table 1 — the paper's
// stated future work is "to carry out experiments on other UNIX-based
// platforms in order to further assess the portability function". An
// UltraSPARC-II running Solaris 2.6 with a kernel-tuned TCP stack is the
// natural next lab machine of the period.
var SolarisUltra = &Platform{
	Name: "Ultra 5", OS: "Solaris 2.6", CPUMHz: 300, Numeric: "solaris",
	OpsPerSec:       25e6,
	SyscallOverhead: 15 * sim.Microsecond,
	ProtoPerMessage: 170 * sim.Microsecond,
	ProtoPerKB:      25 * sim.Microsecond,
	InterruptCost:   35 * sim.Microsecond,
	CtxSwitch:       50 * sim.Microsecond,
	LocalGMAccess:   1200 * sim.Nanosecond,
	IPCCost:         90 * sim.Microsecond,
	NetBandwidthBps: 100_000_000,
}

// All returns the Table 1 platforms in paper order.
func All() []*Platform {
	return []*Platform{SparcSunOS, RS6000AIX, PentiumIILinux}
}

// Extended returns every available platform: Table 1 plus the future-work
// environment.
func Extended() []*Platform {
	return append(All(), SolarisUltra)
}

// ByName looks a platform up by Name, OS or Numeric tag (case-sensitive),
// across the extended registry.
func ByName(name string) (*Platform, bool) {
	for _, pl := range Extended() {
		if pl.Name == name || pl.OS == name || pl.Numeric == name {
			return pl, true
		}
	}
	return nil, false
}
