package inproc

import (
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestSendRecvBetweenNodes(t *testing.T) {
	net := New(2)
	defer net.Stop()
	var got *wire.Message
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, ok := net.Node(1).Recv()
		if !ok {
			t.Error("recv failed")
			return
		}
		got = m
	}()
	net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 1, Tag: 9, Data: []byte("hi")})
	wg.Wait()
	if got == nil || got.Tag != 9 || string(got.Data) != "hi" {
		t.Fatalf("got %v", got)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	net := New(1)
	defer net.Stop()
	done := make(chan *wire.Message, 1)
	go func() {
		m, _ := net.Node(0).Recv()
		done <- m
	}()
	net.Node(0).App().Send(0, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 0})
	if m := <-done; m.Op != wire.OpPing {
		t.Fatalf("got %v", m)
	}
}

func TestCloseRecvUnblocks(t *testing.T) {
	net := New(1)
	done := make(chan bool, 1)
	go func() {
		_, ok := net.Node(0).Recv()
		done <- ok
	}()
	net.Node(0).CloseRecv()
	if ok := <-done; ok {
		t.Fatal("Recv returned ok after close")
	}
}

func TestSendToClosedNodeDoesNotBlock(t *testing.T) {
	net := New(2)
	net.Node(1).CloseRecv()
	// Fill beyond any queue without blocking forever.
	for i := 0; i < 100; i++ {
		net.Node(0).App().Send(1, &wire.Message{Op: wire.OpPing})
	}
}

func TestStatsCount(t *testing.T) {
	net := New(2)
	defer net.Stop()
	recvd := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			net.Node(1).Recv()
		}
		close(recvd)
	}()
	m := &wire.Message{Op: wire.OpUserMsg, Data: make([]byte, 100)}
	for i := 0; i < 3; i++ {
		net.Node(0).App().Send(1, m)
	}
	<-recvd
	s0, s1 := net.Node(0).Stats(), net.Node(1).Stats()
	if s0.MsgsSent != 3 || s0.BytesSent != 3*uint64(m.WireSize()) {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.MsgsRecv != 3 {
		t.Fatalf("receiver stats %+v", s1)
	}
}

func TestMailbox(t *testing.T) {
	net := New(1)
	defer net.Stop()
	mb := net.Node(0).NewMailbox(2)
	mb.Put(&wire.Message{Seq: 1})
	mb.Put(&wire.Message{Seq: 2})
	if m, ok := mb.Take(); !ok || m.Seq != 1 {
		t.Fatalf("first take: %v %v", m, ok)
	}
	if m, ok := mb.Take(); !ok || m.Seq != 2 {
		t.Fatalf("second take: %v %v", m, ok)
	}
	if _, _, timedOut := mb.TakeTimeout(sim.Millisecond); !timedOut {
		t.Fatal("expected timeout on empty mailbox")
	}
	mb.Close()
	if _, ok := mb.Take(); ok {
		t.Fatal("take succeeded after close")
	}
}

func TestManyConcurrentSenders(t *testing.T) {
	net := New(4)
	defer net.Stop()
	const each = 200
	var wg sync.WaitGroup
	total := 3 * each
	got := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for got < total {
			if _, ok := net.Node(0).Recv(); !ok {
				return
			}
			got++
		}
	}()
	for s := 1; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				net.Node(s).App().Send(0, &wire.Message{Op: wire.OpUserMsg, Src: int32(s), Arg1: int64(i)})
			}
		}()
	}
	wg.Wait()
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
}
