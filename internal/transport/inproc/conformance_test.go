package inproc

import (
	"testing"

	"repro/internal/transport/transporttest"
)

func TestConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, n int) transporttest.Network {
		return New(n)
	})
}
