// Package inproc is a loopback transport: kernels exchange encoded wire
// messages over in-process Go channels with no cost model. It exists for
// fast unit/integration testing of the runtime logic, independent of both
// the simulator and real sockets.
package inproc

import (
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Net is an in-process cluster.
type Net struct {
	nodes []*Node
	start time.Time
}

// New creates a cluster of n nodes.
func New(n int) *Net {
	if n <= 0 {
		panic("inproc: need at least one node")
	}
	net := &Net{start: time.Now()}
	for i := 0; i < n; i++ {
		net.nodes = append(net.nodes, &Node{
			net:  net,
			id:   i,
			rx:   make(chan *encBuf, 1<<14),
			done: make(chan struct{}),
		})
	}
	return net
}

// encBuf is a pooled encoded-frame buffer: Send serialises into one, Recv
// decodes out of it (copying the payload into the pooled message) and
// recycles it, so steady-state traffic allocates nothing.
type encBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() interface{} { return new(encBuf) }}

// N implements transport.Network.
func (n *Net) N() int { return len(n.nodes) }

// Node implements transport.Network.
func (n *Net) Node(i int) transport.Node { return n.nodes[i] }

// Stop unblocks every receiver.
func (n *Net) Stop() {
	for _, nd := range n.nodes {
		nd.CloseRecv()
	}
}

// Node is one in-process endpoint. App and Svc share a single context.
type Node struct {
	net       *Net
	id        int
	rx        chan *encBuf
	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	stats trace.PEStats

	pd transport.PeerDownNotifier
}

var _ transport.Node = (*Node)(nil)

// ID implements transport.Node.
func (nd *Node) ID() int { return nd.id }

// N implements transport.Node.
func (nd *Node) N() int { return len(nd.net.nodes) }

// Hostname implements transport.Node; every inproc node is its own host.
func (nd *Node) Hostname() string { return "localhost" }

// Stats implements transport.Node. The returned snapshot pointer must not
// be read concurrently with a running cluster.
func (nd *Node) Stats() *trace.PEStats { return &nd.stats }

// App implements transport.Node.
func (nd *Node) App() transport.Port { return (*port)(nd) }

// Svc implements transport.Node.
func (nd *Node) Svc() transport.Port { return (*port)(nd) }

// Recv implements transport.Node.
func (nd *Node) Recv() (*wire.Message, bool) {
	select {
	case eb := <-nd.rx:
		m := wire.GetMessage()
		if err := wire.DecodeInto(m, eb.b); err != nil {
			panic("inproc: corrupt message: " + err.Error())
		}
		size := len(eb.b)
		bufPool.Put(eb)
		nd.mu.Lock()
		nd.stats.MsgsRecv++
		nd.stats.BytesRecv += uint64(size)
		nd.mu.Unlock()
		m.RecvAt = (*port)(nd).Now()
		return m, true
	case <-nd.done:
		return nil, false
	}
}

// CloseRecv implements transport.Node.
func (nd *Node) CloseRecv() { nd.closeOnce.Do(func() { close(nd.done) }) }

// SetPeerDown implements transport.Node.
func (nd *Node) SetPeerDown(fn func(peer int)) { nd.pd.Set(fn) }

// NewMailbox implements transport.Node.
func (nd *Node) NewMailbox(capacity int) transport.Mailbox {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &mailbox{ch: make(chan *wire.Message, capacity), done: make(chan struct{})}
}

// port implements transport.Port for a node; computation is free here.
type port Node

func (pt *port) Send(dst int, m *wire.Message) {
	nd := (*Node)(pt)
	peer := nd.net.nodes[dst]
	eb := bufPool.Get().(*encBuf)
	eb.b = m.Append(eb.b[:0])
	size := len(eb.b)
	select {
	case peer.rx <- eb:
		nd.mu.Lock()
		nd.stats.MsgsSent++
		nd.stats.BytesSent += uint64(size)
		nd.stats.CountSent(m.Op, size)
		nd.mu.Unlock()
	case <-peer.done:
		// Peer shut down: drop, as a real network would, and declare it dead.
		bufPool.Put(eb)
		nd.pd.Report(dst)
	}
}

func (pt *port) Compute(ops float64) {}

func (pt *port) LocalAccess() {}

func (pt *port) LegacyIPC() {}

func (pt *port) Sleep(d sim.Duration) { time.Sleep(time.Duration(d) / 1000) } // compressed real sleep

func (pt *port) Now() sim.Time { return sim.Time(time.Since((*Node)(pt).net.start)) }

type mailbox struct {
	ch        chan *wire.Message
	done      chan struct{}
	closeOnce sync.Once
}

func (mb *mailbox) Put(m *wire.Message) {
	select {
	case mb.ch <- m:
	case <-mb.done:
	}
}

func (mb *mailbox) Take() (*wire.Message, bool) {
	select {
	case m := <-mb.ch:
		return m, true
	case <-mb.done:
		// Drain anything racing with close.
		select {
		case m := <-mb.ch:
			return m, true
		default:
			return nil, false
		}
	}
}

func (mb *mailbox) TakeTimeout(d sim.Duration) (*wire.Message, bool, bool) {
	t := time.NewTimer(time.Duration(d))
	defer t.Stop()
	select {
	case m := <-mb.ch:
		return m, true, false
	case <-mb.done:
		return nil, false, false
	case <-t.C:
		return nil, false, true
	}
}

func (mb *mailbox) Close() { mb.closeOnce.Do(func() { close(mb.done) }) }
