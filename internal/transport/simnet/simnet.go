// Package simnet is the simulated transport: DSE kernels exchange encoded
// wire messages over the CSMA/CD Ethernet model, paying per-platform OS
// costs (system calls, protocol processing, interrupts, context switches)
// in virtual time. All paper experiments run on this transport.
package simnet

import (
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config assembles a simulated cluster.
type Config struct {
	NumPE    int
	Platform *platform.Platform
	Machines int                // physical machines; 0 means platform.PhysicalMachines
	Load     platform.LoadModel // virtual-cluster co-location model
	Seed     uint64
	Ethernet *ethernet.Config // nil means the platform's LAN parameters
	Switched bool             // switched Ethernet instead of the shared bus
	// LossBudget enables peer-failure detection on the shared bus: after
	// this many consecutive frames to one destination fail to reach a live
	// station (injected loss or a closed/killed station), that peer is
	// declared dead via the SetPeerDown callback. 0 disables detection.
	LossBudget int
	// DelayJitter adds a uniform [0, DelayJitter) receive-side delay per
	// frame, drawn from a per-node rng forked deterministically from the
	// engine seed. Shakes message orderings loose for the stress runner
	// without giving up replayability. 0 disables.
	DelayJitter sim.Duration
	// Kills schedules station failures: each entry closes one node's NIC at
	// the given virtual time, silently dropping all frames to and from it
	// from then on (peers discover the death via LossBudget).
	Kills []Kill
	// Joins schedules late station arrivals: the node is deaf and mute —
	// frames to it vanish, frames from it are never sent — until the given
	// virtual time, modelling a machine powered on mid-run. Pair with
	// core.Config.LatentPEs so the parked node owns no global memory while
	// unreachable.
	Joins []Join
}

// Kill is one scheduled node failure in a fault schedule.
type Kill struct {
	Node int
	At   sim.Duration
}

// Join is one scheduled late arrival in a membership schedule.
type Join struct {
	Node int
	At   sim.Duration
}

// Net is a simulated cluster: engine + medium + one Node per DSE kernel.
type Net struct {
	eng    *sim.Engine
	medium ethernet.Medium
	pl     *platform.Platform
	layout platform.Layout
	nodes  []*Node
}

// New builds the cluster. The caller spawns kernel/app processes, binds
// them to the nodes, and then runs the engine.
func New(cfg Config) *Net {
	if cfg.NumPE <= 0 {
		panic("simnet: NumPE must be positive")
	}
	if cfg.Platform == nil {
		panic("simnet: Platform required")
	}
	machines := cfg.Machines
	if machines == 0 {
		machines = platform.PhysicalMachines
	}
	eng := sim.NewEngine(cfg.Seed)
	ecfg := ethernet.ConfigForBandwidth(cfg.Platform.NetBandwidthBps)
	if cfg.Ethernet != nil {
		ecfg = *cfg.Ethernet
	}
	var medium ethernet.Medium
	if cfg.Switched {
		medium = ethernet.NewSwitch(eng, ecfg)
	} else {
		medium = ethernet.NewBus(eng, ecfg)
	}
	n := &Net{
		eng:    eng,
		medium: medium,
		pl:     cfg.Platform,
		layout: platform.NewLayout(machines, cfg.NumPE, cfg.Load),
	}
	for i := 0; i < cfg.NumPE; i++ {
		nd := &Node{
			net:        n,
			id:         i,
			station:    medium.AttachNIC(),
			load:       n.layout.LoadFactor(i),
			lossBudget: cfg.LossBudget,
			lossRun:    make([]int, cfg.NumPE),
			jitter:     cfg.DelayJitter,
		}
		if nd.jitter > 0 {
			// Forked in node order at construction, so jitter draws are a
			// pure function of (seed, node, frame sequence) — replayable.
			nd.rng = eng.Rand().Fork()
		}
		for _, j := range cfg.Joins {
			if j.Node == i {
				nd.joinAt = sim.Time(j.At)
			}
		}
		n.nodes = append(n.nodes, nd)
	}
	for _, kl := range cfg.Kills {
		st := n.nodes[kl.Node].station
		victim := kl.Node
		eng.At(sim.Time(kl.At), func() {
			st.Close()
			// Report the death to every other node's failure detector
			// directly: a node that never sends to the victim would
			// otherwise not detect it through the loss budget, and the
			// notifier's replay-on-registration delivers the report even to
			// nodes that register their callback after the kill fired — so
			// recovery is not order-dependent.
			for _, nd := range n.nodes {
				if nd.id != victim {
					nd.pd.Report(victim)
					continue
				}
				// The victim's side of the partition: every peer is now
				// unreachable. Without this, a victim parked in a blocking
				// wait (sending nothing, so never tripping its loss budget)
				// would sit in the simulation forever.
				for _, peer := range n.nodes {
					if peer.id != victim {
						nd.pd.Report(peer.id)
					}
				}
			}
		})
	}
	medium.Start()
	return n
}

// Engine returns the virtual-time engine driving the cluster.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Medium returns the simulated LAN (for statistics and fault injection).
func (n *Net) Medium() ethernet.Medium { return n.medium }

// Layout returns the kernel-to-machine placement.
func (n *Net) Layout() platform.Layout { return n.layout }

// N returns the number of nodes.
func (n *Net) N() int { return len(n.nodes) }

// Node returns node i.
func (n *Net) Node(i int) transport.Node { return n.nodes[i] }

// SimNode returns the concrete node for binding processes.
func (n *Net) SimNode(i int) *Node { return n.nodes[i] }

// Stop closes the medium and unblocks all receivers, ending the run cleanly.
func (n *Net) Stop() {
	n.medium.Stop()
	for _, nd := range n.nodes {
		nd.CloseRecv()
	}
}

// Node is one simulated DSE kernel endpoint.
type Node struct {
	net     *Net
	id      int
	station ethernet.NIC
	load    float64
	stats   trace.PEStats

	// lossRun[dst] counts consecutive frames to dst the medium reported
	// undelivered; reaching lossBudget declares dst dead. Only touched from
	// simulated-process context, so no locking is needed.
	lossBudget int
	lossRun    []int
	pd         transport.PeerDownNotifier

	// Receive-side delay jitter (fault schedule); rng is nil when disabled.
	jitter sim.Duration
	rng    *sim.Rand

	// joinAt parks the station until this virtual instant (Config.Joins):
	// frames arriving earlier are discarded on receipt and frames sent
	// earlier are dropped at the source. Zero means attached from the start.
	joinAt sim.Time

	appProc *sim.Proc
	svcProc *sim.Proc
}

var _ transport.Node = (*Node)(nil)

// BindApp attaches the DSE-process context to p. Must precede App() use.
func (nd *Node) BindApp(p *sim.Proc) { nd.appProc = p }

// BindSvc attaches the DSE-kernel context to p. Must precede Svc()/Recv use.
func (nd *Node) BindSvc(p *sim.Proc) { nd.svcProc = p }

// ID implements transport.Node.
func (nd *Node) ID() int { return nd.id }

// N implements transport.Node.
func (nd *Node) N() int { return len(nd.net.nodes) }

// Hostname implements transport.Node.
func (nd *Node) Hostname() string { return nd.net.layout.Hostname(nd.id) }

// Stats implements transport.Node.
func (nd *Node) Stats() *trace.PEStats { return &nd.stats }

// App implements transport.Node.
func (nd *Node) App() transport.Port { return &port{nd: nd, procp: &nd.appProc} }

// Svc implements transport.Node.
func (nd *Node) Svc() transport.Port { return &port{nd: nd, procp: &nd.svcProc} }

// Recv implements transport.Node: it blocks the Svc context on the NIC,
// skips continuation fragments, charges receive overhead and decodes.
func (nd *Node) Recv() (*wire.Message, bool) {
	p := nd.svcProc
	if p == nil {
		panic("simnet: Recv before BindSvc")
	}
	for {
		f, ok := nd.station.Recv(p)
		if !ok {
			return nil, false
		}
		if f.Payload == nil {
			continue // MTU continuation fragment; timing already charged on the bus
		}
		if p.Now() < nd.joinAt {
			continue // parked pre-join (Config.Joins): the station is deaf
		}
		enc := f.Payload.([]byte)
		oh := nd.scale(nd.net.pl.RecvOverhead(len(enc)))
		p.Sleep(oh)
		nd.stats.RecvOverhead += oh
		if nd.rng != nil {
			p.Sleep(sim.Duration(nd.rng.Intn(int(nd.jitter))))
		}
		m := wire.GetMessage()
		if err := wire.DecodeInto(m, enc); err != nil {
			panic(fmt.Sprintf("simnet: corrupt message from station %d: %v", f.Src, err))
		}
		nd.stats.MsgsRecv++
		nd.stats.BytesRecv += uint64(len(enc))
		m.RecvAt = p.Now()
		return m, true
	}
}

// CloseRecv implements transport.Node.
func (nd *Node) CloseRecv() { nd.station.Close() }

// SetPeerDown implements transport.Node.
func (nd *Node) SetPeerDown(fn func(peer int)) { nd.pd.Set(fn) }

// NewMailbox implements transport.Node.
func (nd *Node) NewMailbox(capacity int) transport.Mailbox {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &mailbox{nd: nd, ch: sim.NewChan[*wire.Message](nd.net.eng, capacity)}
}

// scale applies the virtual-cluster load factor to a CPU cost.
func (nd *Node) scale(d sim.Duration) sim.Duration {
	if nd.load == 1 {
		return d
	}
	return sim.Duration(float64(d) * nd.load)
}

// port binds Port operations to whichever sim process owns the context.
// procp is resolved at call time so ports may be handed out before Bind.
type port struct {
	nd    *Node
	procp **sim.Proc
}

func (pt *port) proc() *sim.Proc {
	p := *pt.procp
	if p == nil {
		panic("simnet: port used before its context was bound")
	}
	return p
}

// Send implements transport.Port.
func (pt *port) Send(dst int, m *wire.Message) {
	nd := pt.nd
	p := pt.proc()
	if p.Now() < nd.joinAt {
		return // parked pre-join (Config.Joins): the station is mute
	}
	// The encoded frame payload is held by the Ethernet simulation until
	// delivery, so it must be a fresh allocation here (never pooled).
	enc := m.Encode()
	oh := nd.scale(nd.net.pl.SendOverhead(len(enc)))
	p.Sleep(oh)
	nd.stats.SendOverhead += oh
	if dst == nd.id {
		// Own-node message: the paper's message exchange module short-cuts
		// messages destined to the local kernel past the wire (Fig. 3,
		// "response to message to own node"). Protocol cost was charged
		// above; delivery is immediate.
		if !nd.station.Inject(ethernet.Frame{Src: nd.id, Dst: nd.id, Size: len(enc), Payload: enc}) {
			if nd.station.Closed() {
				// Own station killed mid-op (scheduled fault): the message
				// dies with the node rather than overflowing a queue.
				return
			}
			panic("simnet: local receive queue overflow")
		}
		nd.stats.MsgsSent++
		nd.stats.BytesSent += uint64(len(enc))
		nd.stats.CountSent(m.Op, len(enc))
		return
	}
	delivered := nd.station.Send(p, dst, len(enc), enc)
	nd.stats.MsgsSent++
	nd.stats.BytesSent += uint64(len(enc))
	nd.stats.CountSent(m.Op, len(enc))
	if nd.lossBudget > 0 && dst >= 0 && dst < len(nd.lossRun) {
		if delivered {
			nd.lossRun[dst] = 0
		} else {
			nd.lossRun[dst]++
			if nd.lossRun[dst] >= nd.lossBudget {
				nd.pd.Report(dst)
			}
		}
	}
}

// Compute implements transport.Port.
func (pt *port) Compute(ops float64) {
	nd := pt.nd
	d := nd.scale(nd.net.pl.ComputeTime(ops))
	if d <= 0 {
		return
	}
	pt.proc().Sleep(d)
	nd.stats.ComputeTime += d
}

// Sleep implements transport.Port.
func (pt *port) Sleep(d sim.Duration) { pt.proc().Sleep(d) }

// LocalAccess implements transport.Port.
func (pt *port) LocalAccess() { pt.proc().Sleep(pt.nd.scale(pt.nd.net.pl.LocalGMAccess)) }

// LegacyIPC implements transport.Port: two IPC boundary crossings (call
// and return between the separate kernel and application processes).
func (pt *port) LegacyIPC() { pt.proc().Sleep(pt.nd.scale(2 * pt.nd.net.pl.IPCCost)) }

// Now implements transport.Port.
func (pt *port) Now() sim.Time { return pt.nd.net.eng.Now() }

// mailbox is a sim-channel-backed reply queue.
type mailbox struct {
	nd *Node
	ch *sim.Chan[*wire.Message]
}

func (mb *mailbox) Put(m *wire.Message) {
	if !mb.ch.TrySend(m) {
		if mb.ch.Closed() {
			return // racing a shutdown: the taker is gone, drop quietly
		}
		panic("simnet: mailbox overflow")
	}
}

func (mb *mailbox) Take() (*wire.Message, bool) {
	p := mb.nd.appProc
	if p == nil {
		panic("simnet: mailbox Take before BindApp")
	}
	return mb.ch.Recv(p)
}

func (mb *mailbox) TakeTimeout(d sim.Duration) (*wire.Message, bool, bool) {
	p := mb.nd.appProc
	if p == nil {
		panic("simnet: mailbox Take before BindApp")
	}
	return mb.ch.RecvTimeout(p, d)
}

func (mb *mailbox) Close() { mb.ch.Close() }
