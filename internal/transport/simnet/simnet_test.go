package simnet

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/wire"
)

func newNet(t *testing.T, n int) *Net {
	t.Helper()
	return New(Config{NumPE: n, Platform: platform.SparcSunOS, Seed: 1})
}

// startEcho binds a service process on node i that answers OpPing with OpPong.
func startEcho(net *Net, i int) {
	nd := net.SimNode(i)
	net.Engine().Spawn("svc", func(p *sim.Proc) {
		nd.BindSvc(p)
		for {
			m, ok := nd.Recv()
			if !ok {
				return
			}
			if m.Op == wire.OpPing {
				nd.Svc().Send(int(m.Src), &wire.Message{
					Op: wire.OpPong, Src: int32(nd.ID()), Dst: m.Src, Seq: m.Seq,
				})
			}
		}
	})
}

func TestRequestResponseAcrossNodes(t *testing.T) {
	net := newNet(t, 2)
	startEcho(net, 1)
	nd0 := net.SimNode(0)
	var rtt sim.Duration
	var gotSeq uint64
	net.Engine().Spawn("svc0", func(p *sim.Proc) {
		nd0.BindSvc(p)
		for {
			if _, ok := nd0.Recv(); !ok {
				return
			}
		}
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		start := p.Now()
		nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1, Seq: 42})
		// The pong arrives at node 0's service, which we drain above; for
		// this transport-level test, watch our own station via the svc
		// drain counting in Stats instead.
		for nd0.Stats().MsgsRecv == 0 {
			p.Sleep(10 * sim.Microsecond)
		}
		rtt = p.Now() - start
		gotSeq = 42
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotSeq != 42 {
		t.Fatal("response never arrived")
	}
	if rtt <= 0 {
		t.Fatal("round trip took no virtual time")
	}
	// A small-message RTT on SunOS-era hardware should be on the order of
	// a millisecond or two, not microseconds and not seconds.
	if rtt < 500*sim.Microsecond || rtt > 20*sim.Millisecond {
		t.Fatalf("implausible RTT %v", rtt)
	}
}

func TestSendChargesOverheadAndCountsBytes(t *testing.T) {
	net := newNet(t, 2)
	nd0, nd1 := net.SimNode(0), net.SimNode(1)
	net.Engine().Spawn("svc1", func(p *sim.Proc) {
		nd1.BindSvc(p)
		for {
			if _, ok := nd1.Recv(); !ok {
				return
			}
		}
	})
	m := &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 1, Data: make([]byte, 1000)}
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		nd0.App().Send(1, m)
		p.Sleep(10 * sim.Millisecond)
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s0, s1 := nd0.Stats(), nd1.Stats()
	if s0.MsgsSent != 1 || s0.BytesSent != uint64(m.WireSize()) {
		t.Fatalf("sender stats: %+v", s0)
	}
	if s0.SendOverhead <= 0 {
		t.Fatal("no send overhead charged")
	}
	if s1.MsgsRecv != 1 || s1.RecvOverhead <= 0 {
		t.Fatalf("receiver stats: %+v", s1)
	}
}

func TestOwnNodeMessageSkipsWire(t *testing.T) {
	net := newNet(t, 2)
	nd0 := net.SimNode(0)
	var got *wire.Message
	net.Engine().Spawn("svc0", func(p *sim.Proc) {
		nd0.BindSvc(p)
		m, ok := nd0.Recv()
		if ok {
			got = m
		}
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		nd0.App().Send(0, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 0, Tag: 5})
		p.Sleep(5 * sim.Millisecond)
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil || got.Tag != 5 {
		t.Fatalf("own-node message not delivered: %v", got)
	}
	if f := net.Medium().Stats().Frames; f != 0 {
		t.Fatalf("own-node message used the wire (%d frames)", f)
	}
}

func TestComputeChargesLoadFactor(t *testing.T) {
	elapsed := func(pes int) sim.Duration {
		net := New(Config{NumPE: pes, Platform: platform.SparcSunOS, Seed: 1})
		nd := net.SimNode(0)
		var d sim.Duration
		net.Engine().Spawn("app", func(p *sim.Proc) {
			nd.BindApp(p)
			start := p.Now()
			nd.App().Compute(1e6)
			d = p.Now() - start
			net.Stop()
		})
		if err := net.Engine().Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	one := elapsed(6)  // 6 PEs on 6 machines: dedicated
	two := elapsed(12) // 12 PEs on 6 machines: 2 kernels each
	if two != 2*one {
		t.Fatalf("co-located compute %v, want 2x dedicated %v", two, one)
	}
}

func TestMailboxRoundTrip(t *testing.T) {
	net := newNet(t, 1)
	nd := net.SimNode(0)
	mb := nd.NewMailbox(4)
	var got *wire.Message
	net.Engine().Spawn("app", func(p *sim.Proc) {
		nd.BindApp(p)
		m, ok := mb.Take()
		if !ok {
			t.Error("mailbox closed early")
		}
		got = m
		net.Stop()
	})
	net.Engine().Spawn("svc", func(p *sim.Proc) {
		nd.BindSvc(p)
		p.Sleep(sim.Millisecond)
		mb.Put(&wire.Message{Op: wire.OpReadResp, Seq: 7})
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil || got.Seq != 7 {
		t.Fatalf("mailbox delivered %v", got)
	}
}

func TestMailboxTimeout(t *testing.T) {
	net := newNet(t, 1)
	nd := net.SimNode(0)
	mb := nd.NewMailbox(1)
	var timedOut bool
	net.Engine().Spawn("app", func(p *sim.Proc) {
		nd.BindApp(p)
		_, _, timedOut = mb.TakeTimeout(2 * sim.Millisecond)
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Fatal("expected mailbox timeout")
	}
}

func TestHostnamesFollowLayout(t *testing.T) {
	net := New(Config{NumPE: 12, Platform: platform.PentiumIILinux, Seed: 1})
	if net.SimNode(0).Hostname() != net.SimNode(6).Hostname() {
		t.Fatal("kernels 0 and 6 should share machine 0")
	}
	if net.SimNode(0).Hostname() == net.SimNode(1).Hostname() {
		t.Fatal("kernels 0 and 1 should be on different machines")
	}
}

func TestBigMessageFragmentsButDeliversOnce(t *testing.T) {
	net := newNet(t, 2)
	nd0, nd1 := net.SimNode(0), net.SimNode(1)
	var recvd int
	net.Engine().Spawn("svc1", func(p *sim.Proc) {
		nd1.BindSvc(p)
		for {
			m, ok := nd1.Recv()
			if !ok {
				return
			}
			if len(m.Data) == 8000 {
				recvd++
			}
		}
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		nd0.App().Send(1, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 1, Data: make([]byte, 8000)})
		p.Sleep(50 * sim.Millisecond)
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvd != 1 {
		t.Fatalf("8KB message delivered %d times, want once", recvd)
	}
	if frames := net.Medium().Stats().Frames; frames < 6 {
		t.Fatalf("8KB+header should need >=6 MTU frames, got %d", frames)
	}
}

func TestLossBudgetDeclaresPeerDown(t *testing.T) {
	net := New(Config{NumPE: 2, Platform: platform.SparcSunOS, Seed: 1, LossBudget: 4})
	nd0 := net.SimNode(0)
	var reports []int
	nd0.SetPeerDown(func(peer int) { reports = append(reports, peer) })
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		ping := func() {
			nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1})
		}
		// Three consecutive losses stay under the budget of four...
		net.Medium().SetLossProbability(1.0)
		for i := 0; i < 3; i++ {
			ping()
		}
		if len(reports) != 0 {
			t.Errorf("peer declared dead after 3 losses with budget 4: %v", reports)
		}
		// ...one delivered frame resets the run...
		net.Medium().SetLossProbability(0)
		ping()
		net.Medium().SetLossProbability(1.0)
		for i := 0; i < 3; i++ {
			ping()
		}
		if len(reports) != 0 {
			t.Errorf("loss run not reset by a delivered frame: %v", reports)
		}
		// ...and a full budget of consecutive losses trips detection once.
		for i := 0; i < 6; i++ {
			ping()
		}
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reports) != 1 || reports[0] != 1 {
		t.Fatalf("want exactly one report for peer 1, got %v", reports)
	}
}

func TestKillScheduleSilencesNodeAndTripsDetection(t *testing.T) {
	net := New(Config{
		NumPE: 2, Platform: platform.SparcSunOS, Seed: 1,
		LossBudget: 3,
		Kills:      []Kill{{Node: 1, At: 5 * sim.Millisecond}},
	})
	nd0, nd1 := net.SimNode(0), net.SimNode(1)
	var reports []int
	nd0.SetPeerDown(func(peer int) { reports = append(reports, peer) })
	var beforeKill, afterKill uint64
	net.Engine().Spawn("svc1", func(p *sim.Proc) {
		nd1.BindSvc(p)
		for {
			if _, ok := nd1.Recv(); !ok {
				return // station closed by the kill schedule
			}
		}
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		for i := 0; i < 4; i++ {
			nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1})
			p.Sleep(sim.Millisecond)
		}
		beforeKill = nd1.Stats().MsgsRecv
		p.Sleep(5 * sim.Millisecond) // well past the kill at t=5ms
		for i := 0; i < 8 && len(reports) == 0; i++ {
			nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1})
			p.Sleep(sim.Millisecond)
		}
		afterKill = nd1.Stats().MsgsRecv
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if beforeKill == 0 {
		t.Fatal("no messages delivered before the scheduled kill")
	}
	if afterKill != beforeKill {
		t.Fatalf("dead node kept receiving: %d before kill, %d after", beforeKill, afterKill)
	}
	if len(reports) != 1 || reports[0] != 1 {
		t.Fatalf("want exactly one peer-down report for node 1, got %v", reports)
	}
}

// jitterArrivals runs a fixed 2-node workload under receive jitter and
// returns every arrival timestamp at node 1.
func jitterArrivals(t *testing.T, seed uint64) []sim.Time {
	t.Helper()
	const count = 20
	net := New(Config{
		NumPE: 2, Platform: platform.SparcSunOS, Seed: seed,
		DelayJitter: 500 * sim.Microsecond,
	})
	nd0, nd1 := net.SimNode(0), net.SimNode(1)
	var arrivals []sim.Time
	net.Engine().Spawn("svc1", func(p *sim.Proc) {
		nd1.BindSvc(p)
		for len(arrivals) < count {
			if _, ok := nd1.Recv(); !ok {
				return
			}
			arrivals = append(arrivals, p.Now())
		}
		net.Stop()
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		for i := 0; i < count; i++ {
			nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1, Seq: uint64(i)})
		}
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(arrivals) != count {
		t.Fatalf("only %d of %d messages arrived", len(arrivals), count)
	}
	return arrivals
}

func TestDelayJitterIsSeedDeterministic(t *testing.T) {
	a := jitterArrivals(t, 7)
	b := jitterArrivals(t, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := jitterArrivals(t, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered arrival times")
	}
}

// A scheduled kill must reach every other node's failure detector — even
// nodes that never send to the victim, and even nodes that register their
// peer-down callback only after the kill fired (the notifier replays). This
// is what makes recovery tests independent of registration order.
func TestKillScheduleBroadcastsToAllNodes(t *testing.T) {
	net := New(Config{
		NumPE: 3, Platform: platform.SparcSunOS, Seed: 1,
		Kills: []Kill{{Node: 2, At: 2 * sim.Millisecond}},
	})
	var early, late []int
	// Node 0 registers before the kill; node 1 only after it fired.
	net.SimNode(0).SetPeerDown(func(peer int) { early = append(early, peer) })
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		net.SimNode(0).BindApp(p)
		p.Sleep(10 * sim.Millisecond)
		net.SimNode(1).SetPeerDown(func(peer int) { late = append(late, peer) })
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(early) != 1 || early[0] != 2 {
		t.Fatalf("pre-registered node: want report [2], got %v", early)
	}
	if len(late) != 1 || late[0] != 2 {
		t.Fatalf("late-registered node: want replayed report [2], got %v", late)
	}
}

func TestJoinScheduleParksStationUntilAt(t *testing.T) {
	joinAt := 50 * sim.Millisecond
	net := New(Config{NumPE: 2, Platform: platform.SparcSunOS, Seed: 1,
		Joins: []Join{{Node: 1, At: joinAt}}})
	startEcho(net, 1)
	nd0 := net.SimNode(0)
	var pongs int
	net.Engine().Spawn("svc0", func(p *sim.Proc) {
		nd0.BindSvc(p)
		for {
			m, ok := nd0.Recv()
			if !ok {
				return
			}
			if m.Op == wire.OpPong {
				pongs++
			}
		}
	})
	net.Engine().Spawn("app0", func(p *sim.Proc) {
		nd0.BindApp(p)
		// Pre-join: the parked station is deaf, the ping vanishes.
		nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1, Seq: 1})
		p.Sleep(10 * sim.Millisecond)
		if pongs != 0 {
			t.Error("parked station answered before its join instant")
		}
		// Post-join: the station answers normally.
		p.Sleep(sim.Duration(joinAt))
		nd0.App().Send(1, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 1, Seq: 2})
		p.Sleep(20 * sim.Millisecond)
		net.Stop()
	})
	if err := net.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pongs != 1 {
		t.Fatalf("got %d pongs after the join instant, want 1", pongs)
	}
}
