// Package transport abstracts how DSE kernels exchange wire messages.
//
// The paper's reorganised DSE "eliminates dependency on a specific
// communication protocol"; this package is that seam. Three implementations
// exist:
//
//   - simnet:  over the simulated CSMA/CD Ethernet with per-platform OS
//     cost models (used for all paper experiments),
//   - inproc:  direct in-process channels (fast unit testing),
//   - tcpnet:  real TCP sockets via the standard library (the portability
//     demonstration: the same application binary runs over a real
//     protocol stack).
//
// Each cluster endpoint is a Node with two execution contexts: the App port
// (the DSE process running user code) and the Svc port (the DSE kernel
// service loop, the paper's "parallel processing mechanism" that fields
// requests from other nodes). On the simulated transport the two contexts
// are distinct cooperative processes, mirroring the asynchronous-I/O
// interleaving of kernel and process inside one UNIX process.
package transport

import (
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Port is an execution context bound to one node: everything a running
// piece of DSE code may do that costs (virtual) time.
type Port interface {
	// Send transmits m to kernel dst, charging send-side overhead to the
	// caller and blocking until the message has left the node.
	//
	// Concurrency: on the real transports (inproc, tcpnet) Send on the Svc
	// port is safe from multiple goroutines concurrently — the sharded
	// kernel's shard workers reply in parallel with the serial serve loop.
	// On simnet every port call must come from the port's own cooperative
	// process, so a sharded kernel dispatches inline there instead of
	// spawning workers.
	Send(dst int, m *wire.Message)
	// Compute charges the cost of ops application operations.
	Compute(ops float64)
	// Sleep idles the context for d.
	Sleep(d sim.Duration)
	// LocalAccess charges the cost of a library-level access to a global
	// memory word homed at this node (a few microseconds of virtual time
	// on the simulated transport; free on real transports). Charging it
	// also guarantees that busy-wait loops over local words advance
	// virtual time.
	LocalAccess()
	// LegacyIPC charges one application-to-kernel IPC round trip of the
	// paper's *old* DSE organisation (kernel and process as separate UNIX
	// processes). The reorganised runtime never calls it; core's Legacy
	// mode uses it to reproduce the old-vs-new comparison.
	LegacyIPC()
	// Now is the context's clock (virtual time on simnet, elapsed wall
	// time on real transports).
	Now() sim.Time
}

// Mailbox is a queue the kernel service uses to hand messages to code
// blocked in the App context.
type Mailbox interface {
	// Put enqueues m. It must not block (mailboxes are amply buffered);
	// callable from the Svc context.
	Put(m *wire.Message)
	// Take blocks the App context until a message arrives. ok is false if
	// the mailbox was closed.
	Take() (*wire.Message, bool)
	// TakeTimeout is Take with a deadline.
	TakeTimeout(d sim.Duration) (m *wire.Message, ok bool, timedOut bool)
	// Close wakes blocked takers with ok=false.
	Close()
}

// Node is one cluster endpoint (one DSE kernel's view of the network).
type Node interface {
	ID() int
	N() int
	// Hostname names the physical machine hosting this kernel; co-located
	// kernels in a virtual cluster share it.
	Hostname() string
	// App is the DSE-process context, Svc the DSE-kernel context.
	App() Port
	Svc() Port
	// Recv blocks the Svc context until a message arrives; ok is false
	// once the node is shut down. Receive-side overhead is charged here.
	Recv() (m *wire.Message, ok bool)
	// CloseRecv unblocks Recv with ok=false (idempotent).
	CloseRecv()
	// NewMailbox creates a reply queue usable between this node's contexts.
	NewMailbox(capacity int) Mailbox
	// Stats exposes this node's accumulating counters.
	Stats() *trace.PEStats
	// SetPeerDown registers the peer-failure callback: the transport calls
	// fn(peer) at most once per peer it declares dead (tcpnet: a broken
	// connection; simnet: a run of consecutive undelivered frames; inproc:
	// a send to a stopped node). Peers already declared dead before
	// registration are replayed into fn immediately, so a kernel built
	// after a failure still learns about it. fn may be invoked from any
	// goroutine or context and must not block.
	SetPeerDown(fn func(peer int))
}

// Network is a constructed cluster of nodes sharing a medium.
type Network interface {
	N() int
	Node(i int) Node
}

// PeerDownNotifier implements the SetPeerDown contract shared by every
// transport: at-most-once reporting per peer, and replay of peers that went
// down before the callback was registered. The zero value is ready to use.
type PeerDownNotifier struct {
	mu   sync.Mutex
	fn   func(peer int)
	down map[int]bool
}

// Set registers fn and immediately replays every already-recorded dead peer
// into it (in ascending peer order, for determinism).
func (n *PeerDownNotifier) Set(fn func(peer int)) {
	n.mu.Lock()
	n.fn = fn
	replay := make([]int, 0, len(n.down))
	for p := range n.down {
		replay = append(replay, p)
	}
	n.mu.Unlock()
	sort.Ints(replay)
	for _, p := range replay {
		fn(p)
	}
}

// Report records peer as dead and invokes the callback unless this peer was
// already reported. Safe from any goroutine.
func (n *PeerDownNotifier) Report(peer int) {
	n.mu.Lock()
	if n.down == nil {
		n.down = make(map[int]bool)
	}
	if n.down[peer] {
		n.mu.Unlock()
		return
	}
	n.down[peer] = true
	fn := n.fn
	n.mu.Unlock()
	if fn != nil {
		fn(peer)
	}
}
