package tcpnet

import (
	"encoding/binary"
	"testing"

	"repro/internal/wire"
)

// roundTripFrame pushes m through writeFrame/readFrame over an in-memory
// pipe and returns the decoded copy.
func roundTripFrame(t *testing.T, m *wire.Message) *wire.Message {
	t.Helper()
	c1, c2 := newPipe()
	defer c1.Close()
	defer c2.Close()
	errc := make(chan error, 1)
	go func() { errc <- writeFrame(c1, m) }()
	got, err := readFrame(c2)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return got
}

func TestFrameZeroLengthPayload(t *testing.T) {
	m := &wire.Message{Op: wire.OpPing, Src: 1, Dst: 0, Seq: 42}
	got := roundTripFrame(t, m)
	defer wire.PutMessage(got)
	if got.Op != wire.OpPing || got.Seq != 42 || len(got.Data) != 0 {
		t.Fatalf("zero-payload frame corrupted: %v", got)
	}
}

func TestFrameAtMaxDataLen(t *testing.T) {
	if testing.Short() {
		t.Skip("16 MiB frame")
	}
	data := make([]byte, wire.MaxDataLen)
	data[0], data[len(data)-1] = 0xAB, 0xCD
	m := &wire.Message{Op: wire.OpUserMsg, Data: data}
	got := roundTripFrame(t, m)
	defer wire.PutMessage(got)
	if len(got.Data) != wire.MaxDataLen || got.Data[0] != 0xAB || got.Data[len(got.Data)-1] != 0xCD {
		t.Fatalf("limit-sized frame corrupted: len=%d", len(got.Data))
	}
}

// A frame prefix claiming one byte more than the limit must be rejected
// before any payload allocation.
func TestFrameOverMaxDataLenRejected(t *testing.T) {
	c1, c2 := newPipe()
	defer c1.Close()
	defer c2.Close()
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(wire.HeaderSize+wire.MaxDataLen+1))
	go c1.Write(pre[:])
	if _, err := readFrame(c2); err == nil {
		t.Fatal("over-limit frame size accepted")
	}
}

// A frame shorter than a header is garbage regardless of payload limits.
func TestFrameUnderHeaderSizeRejected(t *testing.T) {
	c1, c2 := newPipe()
	defer c1.Close()
	defer c2.Close()
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], wire.HeaderSize-1)
	go c1.Write(pre[:])
	if _, err := readFrame(c2); err == nil {
		t.Fatal("under-header frame size accepted")
	}
}
