// Package tcpnet is the real-network transport: DSE kernels exchange
// length-prefixed wire messages over TCP sockets from the standard library.
// It demonstrates the paper's portability claim — the identical parallel
// application and runtime run over an actual protocol stack, between
// separate OS processes if desired (see cmd/dsenode).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// handshake deadline for assembling the full mesh. A variable so failure
// tests can shorten it.
var meshTimeout = 10 * time.Second

// listen is the listener factory; a variable so tests can inject failures.
var listen = net.Listen

// Net is a TCP cluster whose nodes all live in this process (each with its
// own listener and sockets). For multi-process clusters use Open directly.
type Net struct {
	nodes         []*Node
	addrs         []string
	lns           []net.Listener
	deferredSlots map[int]bool // slots reserved for a later Attach
	mu            sync.Mutex
}

// NewLocal builds an n-node cluster on loopback TCP.
func NewLocal(n int) (*Net, error) {
	return NewLocalDeferred(n)
}

// NewLocalDeferred builds a loopback cluster like NewLocal, but the listed
// slots start detached: no Node is opened for them and the mesh forms
// without them. Each deferred slot keeps its listener reserved (so its
// address is known to the whole cluster from the start); Attach brings the
// node up later against the running mesh — the transport half of a live PE
// join.
func NewLocalDeferred(n int, deferred ...int) (*Net, error) {
	if n <= 0 {
		return nil, errors.New("tcpnet: need at least one node")
	}
	skip := make(map[int]bool, len(deferred))
	for _, d := range deferred {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("tcpnet: deferred slot %d out of range", d)
		}
		skip[d] = true
	}
	if len(skip) == n {
		return nil, errors.New("tcpnet: all slots deferred")
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("tcpnet: listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if skip[i] {
			continue
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodes[i], errs[i] = open(i, addrs, lns[i], skip)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Partial failure: tear down every node that did come up, and close
		// the listener of every slot that has no node to own it (open closes
		// its own listener on its error paths; net.Listener.Close is
		// idempotent, so double-closing is harmless).
		for _, nd := range nodes {
			if nd != nil {
				nd.Kill()
			}
		}
		for i, ln := range lns {
			if nodes[i] == nil {
				ln.Close()
			}
		}
		return nil, err
	}
	return &Net{nodes: nodes, addrs: addrs, lns: lns, deferredSlots: skip}, nil
}

// Attach brings a deferred slot up against the running cluster: the node
// starts serving on its reserved listener and dials every live member. New
// members attaching later reach it through its own persistent accept loop.
func (c *Net) Attach(id int) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) || !c.deferredSlots[id] {
		return nil, fmt.Errorf("tcpnet: slot %d is not deferred", id)
	}
	if c.nodes[id] != nil {
		return nil, fmt.Errorf("tcpnet: slot %d already attached", id)
	}
	n := len(c.nodes)
	nd := &Node{
		id:    id,
		n:     n,
		ln:    c.lns[id],
		conns: make([]net.Conn, n),
		wmu:   make([]sync.Mutex, n),
		rx:    make(chan *wire.Message, 1<<14),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	go nd.acceptLoop(c.lns[id], make(chan error, 1))
	for j, peer := range c.nodes {
		if j == id || peer == nil {
			continue
		}
		conn, err := net.Dial("tcp", c.addrs[j])
		if err != nil {
			nd.Kill()
			return nil, fmt.Errorf("tcpnet: attach %d: dial %d: %w", id, j, err)
		}
		if err := nd.writeHello(conn); err != nil {
			nd.Kill()
			return nil, err
		}
		nd.register(j, conn)
	}
	c.nodes[id] = nd
	return nd, nil
}

// Open joins a (possibly multi-process) cluster as node id. addrs lists the
// listen address of every node, in rank order; Open listens on addrs[id],
// dials every lower rank, accepts every higher rank, and returns once the
// full mesh is up.
func Open(id int, addrs []string) (*Node, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addrs[id], err)
	}
	return open(id, addrs, ln, nil)
}

// open assembles node id's half of the mesh. Peers in skip are deferred:
// they are neither dialled nor awaited — they reach us later through the
// persistent accept loop when they Attach.
func open(id int, addrs []string, ln net.Listener, skip map[int]bool) (*Node, error) {
	n := len(addrs)
	nd := &Node{
		id:    id,
		n:     n,
		ln:    ln,
		conns: make([]net.Conn, n),
		wmu:   make([]sync.Mutex, n),
		rx:    make(chan *wire.Message, 1<<14),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	expected := 0
	for j := 0; j < n; j++ {
		if j != id && !skip[j] {
			expected++
		}
	}
	ready := make(chan error, n)
	// Snapshot the deadline here: goroutines below may outlive open (a test
	// restoring the meshTimeout hook must not race with them).
	timeout := meshTimeout
	// Accept higher ranks — and, after the mesh is up, late joiners: the
	// loop runs until the node dies, registering whoever says hello.
	go nd.acceptLoop(ln, ready)
	// Dial lower ranks, retrying while they come up.
	for j := 0; j < id; j++ {
		if skip[j] {
			continue
		}
		j := j
		go func() {
			deadline := time.Now().Add(timeout)
			for {
				select {
				case <-nd.done:
					ready <- fmt.Errorf("tcpnet: node %d dial %d: node killed", id, j)
					return
				default:
				}
				conn, err := net.Dial("tcp", addrs[j])
				if err != nil {
					if time.Now().After(deadline) {
						ready <- fmt.Errorf("tcpnet: node %d dial %d: %w", id, j, err)
						return
					}
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if err := nd.writeHello(conn); err != nil {
					ready <- err
					return
				}
				nd.register(j, conn)
				ready <- nil
				return
			}
		}()
	}
	for i := 0; i < expected; i++ {
		select {
		case err := <-ready:
			if err != nil {
				nd.Kill()
				return nil, err
			}
		case <-time.After(timeout):
			nd.Kill()
			return nil, fmt.Errorf("tcpnet: node %d mesh timeout", id)
		}
	}
	return nd, nil
}

// acceptLoop serves the node's listener for its whole life: mesh-forming
// peers land here first (signalled on ready, which open consumes), and
// hellos arriving after the mesh is up — late joiners attaching to a
// running cluster — register silently (the buffered ready send is dropped).
func (nd *Node) acceptLoop(ln net.Listener, ready chan<- error) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-nd.done:
			default:
				select {
				case ready <- fmt.Errorf("tcpnet: node %d accept: %w", nd.id, err):
				default:
				}
			}
			return
		}
		go func(conn net.Conn) {
			peer, err := nd.readHello(conn)
			if err != nil {
				conn.Close()
				select {
				case ready <- err:
				default:
				}
				return
			}
			nd.register(peer, conn)
			select {
			case ready <- nil:
			default:
			}
		}(conn)
	}
}

// N implements transport.Network.
func (net *Net) N() int { return len(net.nodes) }

// Node implements transport.Network.
func (net *Net) Node(i int) transport.Node { return net.nodes[i] }

// TCPNode returns the concrete node (for Kill in failure tests).
func (net *Net) TCPNode(i int) *Node { return net.nodes[i] }

// Stop shuts down every node, including the reserved listeners of slots
// never attached.
func (net *Net) Stop() {
	net.mu.Lock()
	defer net.mu.Unlock()
	for i, nd := range net.nodes {
		if nd != nil {
			nd.Kill()
		} else if net.lns != nil {
			net.lns[i].Close()
		}
	}
}

// Node is one TCP endpoint.
type Node struct {
	id    int
	n     int
	ln    net.Listener
	conns []net.Conn
	wmu   []sync.Mutex
	rx    chan *wire.Message
	done  chan struct{}
	start time.Time

	closeOnce sync.Once
	mu        sync.Mutex
	stats     trace.PEStats
	err       error

	pd transport.PeerDownNotifier
}

var _ transport.Node = (*Node)(nil)

func (nd *Node) writeHello(conn net.Conn) error {
	hello := &wire.Message{Op: wire.OpHello, Src: int32(nd.id), Arg1: 1}
	return writeFrame(conn, hello)
}

func (nd *Node) readHello(conn net.Conn) (int, error) {
	m, err := readFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("tcpnet: handshake: %w", err)
	}
	if m.Op != wire.OpHello {
		return 0, fmt.Errorf("tcpnet: unexpected handshake op %v", m.Op)
	}
	peer := int(m.Src)
	wire.PutMessage(m)
	if peer < 0 || peer >= nd.n {
		return 0, fmt.Errorf("tcpnet: hello from out-of-range rank %d", peer)
	}
	return peer, nil
}

func (nd *Node) register(peer int, conn net.Conn) {
	nd.wmu[peer].Lock()
	nd.conns[peer] = conn
	nd.wmu[peer].Unlock()
	go nd.reader(peer, conn)
}

func (nd *Node) reader(peer int, conn net.Conn) {
	for {
		m, err := readFrame(conn)
		if err != nil {
			// Peer gone (EOF or reset); Recv keeps serving other peers. If we
			// are not ourselves shutting down, declare the peer dead so the
			// kernel can fail its pending requests immediately instead of
			// waiting out the request timeout.
			select {
			case <-nd.done:
			default:
				nd.pd.Report(peer)
			}
			return
		}
		select {
		case nd.rx <- m:
		case <-nd.done:
			return
		}
	}
}

// framePool recycles encode/read buffers across frames; steady-state
// traffic neither allocates frames nor pays a second syscall for the
// 4-byte size prefix (prefix and frame go out in one Write).
var framePool = sync.Pool{New: func() interface{} { return new([]byte) }}

func writeFrame(conn net.Conn, m *wire.Message) error {
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	buf = m.Append(buf)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	_, err := conn.Write(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func readFrame(conn net.Conn) (*wire.Message, error) {
	var pre [4]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(pre[:])
	if size < wire.HeaderSize || size > wire.HeaderSize+wire.MaxDataLen {
		return nil, fmt.Errorf("tcpnet: bad frame size %d", size)
	}
	bp := framePool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		*bp = buf
		framePool.Put(bp)
		return nil, err
	}
	m := wire.GetMessage()
	err := wire.DecodeInto(m, buf)
	*bp = buf
	framePool.Put(bp)
	if err != nil {
		wire.PutMessage(m)
		return nil, err
	}
	return m, nil
}

// ID implements transport.Node.
func (nd *Node) ID() int { return nd.id }

// N implements transport.Node.
func (nd *Node) N() int { return nd.n }

// Hostname implements transport.Node.
func (nd *Node) Hostname() string { return nd.ln.Addr().String() }

// Stats implements transport.Node.
func (nd *Node) Stats() *trace.PEStats { return &nd.stats }

// App implements transport.Node.
func (nd *Node) App() transport.Port { return (*port)(nd) }

// Svc implements transport.Node.
func (nd *Node) Svc() transport.Port { return (*port)(nd) }

// Recv implements transport.Node.
func (nd *Node) Recv() (*wire.Message, bool) {
	select {
	case m := <-nd.rx:
		nd.mu.Lock()
		nd.stats.MsgsRecv++
		nd.stats.BytesRecv += uint64(m.WireSize())
		nd.mu.Unlock()
		m.RecvAt = sim.Time(time.Since(nd.start))
		return m, true
	case <-nd.done:
		return nil, false
	}
}

// CloseRecv implements transport.Node.
func (nd *Node) CloseRecv() { nd.Kill() }

// SetPeerDown implements transport.Node.
func (nd *Node) SetPeerDown(fn func(peer int)) { nd.pd.Set(fn) }

// Kill tears the node down: listener, sockets and receivers. Used both for
// orderly shutdown and for failure injection in tests.
func (nd *Node) Kill() {
	nd.closeOnce.Do(func() {
		close(nd.done)
		if nd.ln != nil {
			nd.ln.Close()
		}
		for i := range nd.conns {
			nd.wmu[i].Lock()
			if nd.conns[i] != nil {
				nd.conns[i].Close()
			}
			nd.wmu[i].Unlock()
		}
	})
}

// Err reports the first send failure, if any.
func (nd *Node) Err() error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.err
}

// NewMailbox implements transport.Node.
func (nd *Node) NewMailbox(capacity int) transport.Mailbox {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &mailbox{ch: make(chan *wire.Message, capacity), done: make(chan struct{})}
}

// port implements transport.Port; App and Svc share it.
type port Node

func (pt *port) Send(dst int, m *wire.Message) {
	nd := (*Node)(pt)
	if dst == nd.id {
		// Own-node message: deliver through an encode/decode round-trip so
		// the receiver sees the same ownership rules as for remote messages.
		bp := framePool.Get().(*[]byte)
		*bp = m.Append((*bp)[:0])
		dec := wire.GetMessage()
		err := wire.DecodeInto(dec, *bp)
		framePool.Put(bp)
		if err != nil {
			panic("tcpnet: self-send encode round-trip failed: " + err.Error())
		}
		select {
		case nd.rx <- dec:
		case <-nd.done:
			wire.PutMessage(dec)
		}
		return
	}
	nd.wmu[dst].Lock()
	conn := nd.conns[dst]
	var err error
	if conn == nil {
		err = fmt.Errorf("tcpnet: no connection to node %d", dst)
	} else {
		err = writeFrame(conn, m)
	}
	nd.wmu[dst].Unlock()
	nd.mu.Lock()
	if err != nil {
		if nd.err == nil {
			nd.err = err
		}
	} else {
		nd.stats.MsgsSent++
		nd.stats.BytesSent += uint64(m.WireSize())
		nd.stats.CountSent(m.Op, m.WireSize())
	}
	nd.mu.Unlock()
	if err != nil {
		select {
		case <-nd.done:
		default:
			nd.pd.Report(dst)
		}
	}
}

func (pt *port) Compute(ops float64) {}

func (pt *port) LocalAccess() {}

func (pt *port) LegacyIPC() {}

func (pt *port) Sleep(d sim.Duration) { time.Sleep(time.Duration(d)) }

func (pt *port) Now() sim.Time { return sim.Time(time.Since((*Node)(pt).start)) }

type mailbox struct {
	ch        chan *wire.Message
	done      chan struct{}
	closeOnce sync.Once
}

func (mb *mailbox) Put(m *wire.Message) {
	select {
	case mb.ch <- m:
	case <-mb.done:
	}
}

func (mb *mailbox) Take() (*wire.Message, bool) {
	select {
	case m := <-mb.ch:
		return m, true
	case <-mb.done:
		select {
		case m := <-mb.ch:
			return m, true
		default:
			return nil, false
		}
	}
}

func (mb *mailbox) TakeTimeout(d sim.Duration) (*wire.Message, bool, bool) {
	t := time.NewTimer(time.Duration(d))
	defer t.Stop()
	select {
	case m := <-mb.ch:
		return m, true, false
	case <-mb.done:
		return nil, false, false
	case <-t.C:
		return nil, false, true
	}
}

func (mb *mailbox) Close() { mb.closeOnce.Do(func() { close(mb.done) }) }
