package tcpnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestLocalMeshExchange(t *testing.T) {
	net, err := NewLocal(3)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()

	// Every node sends one message to every other; every node receives two.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[int32]bool{}
			for len(seen) < 2 {
				m, ok := net.Node(i).Recv()
				if !ok {
					t.Errorf("node %d: recv closed early", i)
					return
				}
				seen[m.Src] = true
			}
		}()
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			net.Node(i).App().Send(j, &wire.Message{Op: wire.OpUserMsg, Src: int32(i), Dst: int32(j)})
		}
	}
	wg.Wait()
}

func TestPayloadSurvivesTCP(t *testing.T) {
	net, err := NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	done := make(chan *wire.Message, 1)
	go func() {
		m, _ := net.Node(1).Recv()
		done <- m
	}()
	net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 1, Seq: 5, Data: data})
	m := <-done
	if m.Seq != 5 || len(m.Data) != len(data) {
		t.Fatalf("message corrupted: seq=%d len=%d", m.Seq, len(m.Data))
	}
	for i := range data {
		if m.Data[i] != data[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestSelfSend(t *testing.T) {
	net, err := NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	done := make(chan *wire.Message, 1)
	go func() {
		m, _ := net.Node(0).Recv()
		done <- m
	}()
	net.Node(0).App().Send(0, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 0, Tag: 3})
	if m := <-done; m.Tag != 3 {
		t.Fatalf("self-send corrupted: %v", m)
	}
}

func TestKillUnblocksRecvAndFailsSends(t *testing.T) {
	net, err := NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	done := make(chan bool, 1)
	go func() {
		_, ok := net.TCPNode(1).Recv()
		done <- ok
	}()
	net.TCPNode(1).Kill()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok after Kill")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock after Kill")
	}
	// Sends to the dead node must not hang; they eventually error.
	deadline := time.Now().Add(5 * time.Second)
	for net.TCPNode(0).Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("send to dead node never errored")
		}
		net.Node(0).App().Send(1, &wire.Message{Op: wire.OpPing})
	}
}

func TestSequencePreservedPerSender(t *testing.T) {
	net, err := NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	const n = 500
	got := make([]uint64, 0, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(got) < n {
			m, ok := net.Node(1).Recv()
			if !ok {
				return
			}
			got = append(got, m.Seq)
		}
	}()
	for i := 0; i < n; i++ {
		net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Seq: uint64(i)})
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("TCP reordered messages at %d: %v", i, got[i])
		}
	}
}

func TestOpenRejectsBadFrameSizes(t *testing.T) {
	// Covered indirectly: a frame claiming a giant size must error, not
	// allocate. Exercise readFrame via a crafted in-memory connection.
	c1, c2 := newPipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		c1.Write([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	}()
	if _, err := readFrame(c2); err == nil {
		t.Fatal("expected error for absurd frame size")
	}
}

func TestDeferredSlotAttachesToRunningMesh(t *testing.T) {
	net, err := NewLocalDeferred(3, 2)
	if err != nil {
		t.Fatalf("NewLocalDeferred: %v", err)
	}
	defer net.Stop()

	// The mesh is live without the deferred slot.
	got := make(chan *wire.Message, 4)
	go func() {
		for {
			m, ok := net.Node(1).Recv()
			if !ok {
				return
			}
			got <- m
		}
	}()
	net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 1, Seq: 1})
	select {
	case m := <-got:
		if m.Seq != 1 {
			t.Fatalf("pre-attach message seq = %d", m.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pre-attach mesh not exchanging")
	}

	// The late joiner comes up against the running cluster and exchanges in
	// both directions with both members.
	joiner, err := net.Attach(2)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	joined := make(chan *wire.Message, 4)
	go func() {
		for {
			m, ok := joiner.Recv()
			if !ok {
				return
			}
			joined <- m
		}
	}()
	joiner.App().Send(1, &wire.Message{Op: wire.OpUserMsg, Src: 2, Dst: 1, Seq: 2})
	select {
	case m := <-got:
		if m.Src != 2 || m.Seq != 2 {
			t.Fatalf("joiner's message arrived as %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner -> member message lost")
	}
	net.Node(0).App().Send(2, &wire.Message{Op: wire.OpUserMsg, Src: 0, Dst: 2, Seq: 3})
	select {
	case m := <-joined:
		if m.Src != 0 || m.Seq != 3 {
			t.Fatalf("member's message arrived as %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("member -> joiner message lost")
	}

	if _, err := net.Attach(2); err == nil {
		t.Fatal("double attach accepted")
	}
	if _, err := net.Attach(1); err == nil {
		t.Fatal("attach of a non-deferred slot accepted")
	}
}
