package tcpnet

import (
	"testing"

	"repro/internal/transport/transporttest"
)

func TestConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, n int) transporttest.Network {
		net, err := NewLocal(n)
		if err != nil {
			t.Fatalf("NewLocal: %v", err)
		}
		return net
	})
}
