package tcpnet

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// trackedListener records Close so tests can assert nothing leaks.
type trackedListener struct {
	net.Listener
	mu         sync.Mutex
	closed     bool
	failAccept bool
}

func (l *trackedListener) Accept() (net.Conn, error) {
	if l.failAccept {
		return nil, errors.New("induced accept failure")
	}
	return l.Listener.Accept()
}

func (l *trackedListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.Listener.Close()
}

func (l *trackedListener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// withListenHook swaps the listener factory for the test's duration.
func withListenHook(t *testing.T, fn func(network, address string) (net.Listener, error)) {
	t.Helper()
	old := listen
	listen = fn
	t.Cleanup(func() { listen = old })
}

// A listen failure partway through NewLocal must close every listener opened
// before it, not leak them.
func TestNewLocalClosesListenersOnListenFailure(t *testing.T) {
	var opened []*trackedListener
	calls := 0
	withListenHook(t, func(network, address string) (net.Listener, error) {
		calls++
		if calls == 3 {
			return nil, errors.New("induced listen failure")
		}
		ln, err := net.Listen(network, address)
		if err != nil {
			return nil, err
		}
		tl := &trackedListener{Listener: ln}
		opened = append(opened, tl)
		return tl, nil
	})
	if _, err := NewLocal(3); err == nil || !strings.Contains(err.Error(), "induced listen failure") {
		t.Fatalf("NewLocal error = %v, want induced listen failure", err)
	}
	if len(opened) != 2 {
		t.Fatalf("opened %d listeners before the failure, want 2", len(opened))
	}
	for i, tl := range opened {
		if !tl.isClosed() {
			t.Fatalf("listener %d leaked after failed NewLocal", i)
		}
	}
}

// A mesh-assembly failure (one node cannot accept) must tear down the nodes
// that did come up and close every listener, surfacing the error instead of
// hanging or leaking.
func TestNewLocalCleansUpOnMeshFailure(t *testing.T) {
	oldTimeout := meshTimeout
	meshTimeout = 500 * time.Millisecond
	t.Cleanup(func() { meshTimeout = oldTimeout })
	var opened []*trackedListener
	withListenHook(t, func(network, address string) (net.Listener, error) {
		ln, err := net.Listen(network, address)
		if err != nil {
			return nil, err
		}
		// Node 0 (the first listener) accepts from every higher rank; breaking
		// it fails mesh assembly while node 1 still comes up and must be
		// killed by the cleanup path.
		tl := &trackedListener{Listener: ln, failAccept: len(opened) == 0}
		opened = append(opened, tl)
		return tl, nil
	})
	if _, err := NewLocal(2); err == nil || !strings.Contains(err.Error(), "accept") {
		t.Fatalf("NewLocal error = %v, want accept failure", err)
	}
	for i, tl := range opened {
		if !tl.isClosed() {
			t.Fatalf("listener %d leaked after failed mesh assembly", i)
		}
	}
}
