package tcpnet

import "net"

// newPipe returns two ends of an in-memory stream for frame-level tests.
func newPipe() (net.Conn, net.Conn) { return net.Pipe() }
