package tcpnet

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// byteConn is a read-only net.Conn over an in-memory buffer: exactly what
// readFrame sees when a peer sends garbage (or a truncated stream) before
// the connection drops.
type byteConn struct{ r *bytes.Reader }

func (c byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c byteConn) Close() error                       { return nil }
func (c byteConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c byteConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c byteConn) SetDeadline(t time.Time) error      { return nil }
func (c byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c byteConn) SetWriteDeadline(t time.Time) error { return nil }

// frame wraps payload in the 4-byte length prefix writeFrame uses.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(frame(make([]byte, wire.HeaderSize)))
	f.Add(frame(make([]byte, wire.HeaderSize-1))) // size below header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // absurd size prefix
	m := &wire.Message{Op: wire.OpWriteV, Src: 1, Seq: 42}
	m.AppendWriteRun(16, []int64{7, 8})
	f.Add(frame(m.Encode()))
	f.Fuzz(func(t *testing.T, stream []byte) {
		conn := byteConn{r: bytes.NewReader(stream)}
		for {
			m, err := readFrame(conn)
			if err != nil {
				return // any malformed stream must end in an error, not a panic
			}
			// A frame that decodes must survive the kernel-side accessors.
			_ = m.PayloadWords()
			_ = m.EachRange(func(addr uint64, count int) {})
			_, _ = m.EachWriteRun(nil, func(addr uint64, words []int64) {})
			wire.PutMessage(m)
		}
	})
}
