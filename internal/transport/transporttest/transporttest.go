// Package transporttest is a conformance suite for transport
// implementations whose ports may be driven from ordinary goroutines
// (inproc, tcpnet). It checks the contract the DSE kernel relies on:
// addressing, self-delivery, per-sender FIFO, payload integrity, mailbox
// semantics and shutdown behaviour. The simulated transport has its own
// in-engine tests.
package transporttest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Network is the minimal constructor contract the suite needs.
type Network interface {
	N() int
	Node(i int) transport.Node
	Stop()
}

// Factory builds a fresh n-node network.
type Factory func(t *testing.T, n int) Network

// Run executes the whole conformance suite against the factory.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("Identity", func(t *testing.T) { testIdentity(t, factory) })
	t.Run("SelfSend", func(t *testing.T) { testSelfSend(t, factory) })
	t.Run("CrossSendAllPairs", func(t *testing.T) { testCrossSend(t, factory) })
	t.Run("PerSenderFIFO", func(t *testing.T) { testFIFO(t, factory) })
	t.Run("PayloadIntegrity", func(t *testing.T) { testPayload(t, factory) })
	t.Run("StatsCount", func(t *testing.T) { testStats(t, factory) })
	t.Run("MailboxOrderAndTimeout", func(t *testing.T) { testMailbox(t, factory) })
	t.Run("CloseRecvUnblocks", func(t *testing.T) { testClose(t, factory) })
	t.Run("ConcurrentLoad", func(t *testing.T) { testConcurrent(t, factory) })
	t.Run("ConcurrentSvcSend", func(t *testing.T) { testConcurrentSvcSend(t, factory) })
	t.Run("PeerDownNotification", func(t *testing.T) { testPeerDown(t, factory) })
}

func testIdentity(t *testing.T, factory Factory) {
	net := factory(t, 3)
	defer net.Stop()
	if net.N() != 3 {
		t.Fatalf("N = %d", net.N())
	}
	for i := 0; i < 3; i++ {
		nd := net.Node(i)
		if nd.ID() != i || nd.N() != 3 {
			t.Fatalf("node %d identity: ID=%d N=%d", i, nd.ID(), nd.N())
		}
		if nd.Hostname() == "" {
			t.Fatalf("node %d has no hostname", i)
		}
	}
}

func testSelfSend(t *testing.T, factory Factory) {
	net := factory(t, 2)
	defer net.Stop()
	done := make(chan *wire.Message, 1)
	go func() {
		m, _ := net.Node(0).Recv()
		done <- m
	}()
	net.Node(0).App().Send(0, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 0, Tag: 7})
	select {
	case m := <-done:
		if m.Tag != 7 {
			t.Fatalf("self-send corrupted: %v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("self-send never delivered")
	}
}

func testCrossSend(t *testing.T, factory Factory) {
	const n = 4
	net := factory(t, n)
	defer net.Stop()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[int32]bool{}
			for len(seen) < n-1 {
				m, ok := net.Node(i).Recv()
				if !ok {
					t.Errorf("node %d: closed early", i)
					return
				}
				if seen[m.Src] {
					t.Errorf("node %d: duplicate from %d", i, m.Src)
				}
				seen[m.Src] = true
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				net.Node(i).App().Send(j, &wire.Message{Op: wire.OpUserMsg, Src: int32(i), Dst: int32(j)})
			}
		}
	}
	wg.Wait()
}

func testFIFO(t *testing.T, factory Factory) {
	net := factory(t, 2)
	defer net.Stop()
	const count = 300
	got := make([]uint64, 0, count)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(got) < count {
			m, ok := net.Node(1).Recv()
			if !ok {
				return
			}
			got = append(got, m.Seq)
		}
	}()
	for i := 0; i < count; i++ {
		net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Seq: uint64(i)})
	}
	wg.Wait()
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("reordered at %d: got seq %d", i, seq)
		}
	}
}

func testPayload(t *testing.T, factory Factory) {
	net := factory(t, 2)
	defer net.Stop()
	sizes := []int{0, 1, 7, 48, 1499, 1500, 1501, 65536}
	done := make(chan error, 1)
	go func() {
		for _, size := range sizes {
			m, ok := net.Node(1).Recv()
			if !ok {
				done <- fmt.Errorf("closed early")
				return
			}
			if len(m.Data) != size {
				done <- fmt.Errorf("size %d arrived as %d", size, len(m.Data))
				return
			}
			for i, b := range m.Data {
				if b != byte(i*7) {
					done <- fmt.Errorf("size %d corrupted at byte %d", size, i)
					return
				}
			}
		}
		done <- nil
	}()
	for _, size := range sizes {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		net.Node(0).App().Send(1, &wire.Message{Op: wire.OpUserMsg, Data: data})
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func testStats(t *testing.T, factory Factory) {
	net := factory(t, 2)
	defer net.Stop()
	const count = 5
	m := &wire.Message{Op: wire.OpUserMsg, Data: bytes.Repeat([]byte{1}, 64)}
	recvd := make(chan struct{})
	go func() {
		for i := 0; i < count; i++ {
			net.Node(1).Recv()
		}
		close(recvd)
	}()
	for i := 0; i < count; i++ {
		net.Node(0).App().Send(1, m)
	}
	<-recvd
	if s := net.Node(0).Stats(); s.MsgsSent != count || s.BytesSent != count*uint64(m.WireSize()) {
		t.Fatalf("sender stats %+v", s)
	}
	if s := net.Node(1).Stats(); s.MsgsRecv != count {
		t.Fatalf("receiver stats %+v", s)
	}
}

func testMailbox(t *testing.T, factory Factory) {
	net := factory(t, 1)
	defer net.Stop()
	mb := net.Node(0).NewMailbox(8)
	for i := uint64(1); i <= 3; i++ {
		mb.Put(&wire.Message{Seq: i})
	}
	for i := uint64(1); i <= 3; i++ {
		m, ok := mb.Take()
		if !ok || m.Seq != i {
			t.Fatalf("take %d: %v %v", i, m, ok)
		}
	}
	if _, _, timedOut := mb.TakeTimeout(10 * sim.Millisecond); !timedOut {
		t.Fatal("expected timeout on empty mailbox")
	}
	mb.Close()
	if _, ok := mb.Take(); ok {
		t.Fatal("take succeeded after close")
	}
}

func testClose(t *testing.T, factory Factory) {
	net := factory(t, 1)
	done := make(chan bool, 1)
	go func() {
		_, ok := net.Node(0).Recv()
		done <- ok
	}()
	net.Node(0).CloseRecv()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv ok after CloseRecv")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	net.Stop()
}

// testPeerDown checks the SetPeerDown contract the reliability layer leans
// on: a node that keeps sending to a dead peer gets exactly one callback
// naming that peer, and a callback registered after the death is replayed
// into immediately.
func testPeerDown(t *testing.T, factory Factory) {
	net := factory(t, 3)
	defer net.Stop()
	died := make(chan int, 16)
	net.Node(0).SetPeerDown(func(peer int) { died <- peer })
	net.Node(2).CloseRecv() // the victim goes dark

	// Keep sending until the transport notices (tcpnet may need a few
	// writes before the broken connection surfaces).
	deadline := time.After(10 * time.Second)
	var reported bool
	for !reported {
		net.Node(0).App().Send(2, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 2})
		select {
		case p := <-died:
			if p != 2 {
				t.Fatalf("peer-down reported peer %d, want 2", p)
			}
			reported = true
		case <-deadline:
			t.Fatal("peer death never reported")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// At-most-once: further sends to the dead peer must not re-report.
	for i := 0; i < 5; i++ {
		net.Node(0).App().Send(2, &wire.Message{Op: wire.OpPing, Src: 0, Dst: 2})
	}
	select {
	case p := <-died:
		t.Fatalf("duplicate peer-down report for %d", p)
	case <-time.After(100 * time.Millisecond):
	}
	// Late registration: a callback set after the death learns of it now.
	replay := make(chan int, 1)
	net.Node(0).SetPeerDown(func(peer int) { replay <- peer })
	select {
	case p := <-replay:
		if p != 2 {
			t.Fatalf("replayed peer %d, want 2", p)
		}
	case <-time.After(time.Second):
		t.Fatal("already-dead peer not replayed into late callback")
	}
}

// testConcurrentSvcSend pins the contract the sharded kernel leans on: Send
// on ONE node's Svc port must be safe and lossless when called from many
// goroutines at once (shard workers replying in parallel with the serial
// serve loop). Every message must arrive intact and per-goroutine order
// need not be global order, but nothing may be lost or duplicated.
func testConcurrentSvcSend(t *testing.T, factory Factory) {
	const (
		workers = 8
		each    = 200
	)
	net := factory(t, 2)
	defer net.Stop()
	svc := net.Node(0).Svc()
	seen := make(map[uint64]int)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for i := 0; i < workers*each; i++ {
			m, ok := net.Node(1).Recv()
			if !ok {
				t.Errorf("receiver closed after %d messages", i)
				return
			}
			if len(m.Data) != 16 {
				t.Errorf("message %d: payload %d bytes, want 16", m.Seq, len(m.Data))
			}
			seen[m.Seq]++
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 16)
			for i := 0; i < each; i++ {
				svc.Send(1, &wire.Message{
					Op: wire.OpReadResp, Src: 0, Dst: 1,
					Seq:  uint64(w)<<32 | uint64(i),
					Data: payload,
				})
			}
		}()
	}
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Svc sends: not all messages delivered")
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			if c := seen[uint64(w)<<32|uint64(i)]; c != 1 {
				t.Fatalf("message w=%d i=%d delivered %d times", w, i, c)
			}
		}
	}
}

func testConcurrent(t *testing.T, factory Factory) {
	const (
		n    = 4
		each = 100
	)
	net := factory(t, n)
	defer net.Stop()
	var wg sync.WaitGroup
	for dst := 0; dst < n; dst++ {
		dst := dst
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := (n - 1) * each
			for i := 0; i < want; i++ {
				if _, ok := net.Node(dst).Recv(); !ok {
					t.Errorf("node %d closed early", dst)
					return
				}
			}
		}()
	}
	for src := 0; src < n; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				for dst := 0; dst < n; dst++ {
					if dst != src {
						net.Node(src).App().Send(dst, &wire.Message{Op: wire.OpUserMsg, Src: int32(src)})
					}
				}
			}
		}()
	}
	wg.Wait()
}
