package bench

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

// Regenerating a figure twice with the same seed must give bit-identical
// series: the whole pipeline — engine, Ethernet backoff draws, kernel
// scheduling, application job pools — is deterministic.
func TestFigureRegenerationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a figure twice")
	}
	sc := QuickScale()
	sc.MaxPE = 4
	sc.KnightJobs = []int{8}
	render := func() string {
		fig, err := KnightFigure(platform.SparcSunOS, sc)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fig.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	if second := render(); second != first {
		t.Fatalf("figure not reproducible:\n%s\nvs\n%s", first, second)
	}
}

// A different seed must actually perturb the simulation (the randomness is
// real, not decorative).
func TestSeedPerturbsBackoffTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates figures")
	}
	// Contention is where the PRNG bites: several PEs pulling a large
	// vector over the shared bus collide and draw backoff slots.
	sc := QuickScale()
	sc.MaxPE = 6
	sc.GaussNs = []int{480}
	at := func(seed uint64) string {
		sc.Seed = seed
		fig, _, err := GaussFigures(platform.SparcSunOS, sc)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fig.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if at(1) == at(99) {
		t.Fatal("changing the seed changed nothing; contention randomness is dead")
	}
}
