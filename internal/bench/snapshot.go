package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/apps/knight"
	"repro/internal/apps/othello"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// SnapshotSchemaVersion is bumped whenever the snapshot JSON layout changes
// incompatibly, so downstream consumers (the CI regression gate, plotting
// scripts) can refuse data they do not understand.
const SnapshotSchemaVersion = 1

// Snapshot is one machine-readable benchmark run: the repo's performance
// trajectory, committed as BENCH_*.json and diffed by the CI regression
// gate. Everything in it except AllocPerRemoteOp is deterministic on the
// simulated transport (virtual time, exact message counts).
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`  // producer, e.g. "dsebench"
	Scale         string `json:"scale"` // "quick" or "full"
	Platform      string `json:"platform"`
	Seed          uint64 `json:"seed"`

	Workloads []WorkloadMetrics `json:"workloads"`
	Speedup   []SpeedupPoint    `json:"speedup"`

	// Saturation is the sharded-kernel throughput sweep (dsebench
	// -saturate), present only when that flag was given. Unlike the fields
	// above it is wall-clock, so Compare gates it loosely.
	Saturation []SaturationPoint `json:"saturation,omitempty"`

	// Sched is the multi-job scheduler load test (dsebench -sched), present
	// only when that flag was given. Wall-clock like Saturation, so Compare
	// gates throughput by collapse only — but a nonzero violation count is
	// always a failure.
	Sched []SchedPoint `json:"sched,omitempty"`

	// ConsistencyTiers is the per-mode gauss ablation (DESIGN.md §14):
	// message counts and tier-machinery counters for each consistency mode,
	// deterministic on the simulated transport and gated by Compare like
	// the workload metrics. Absent from baselines predating the tiers.
	ConsistencyTiers []TierMetrics `json:"consistency_tiers,omitempty"`
}

// WorkloadMetrics captures one reference-application run.
type WorkloadMetrics struct {
	Name      string `json:"name"`
	NumPE     int    `json:"num_pe"`
	ElapsedUS int64  `json:"elapsed_us"` // virtual end-to-end time

	MsgsSent  uint64 `json:"msgs_sent"`
	BytesSent uint64 `json:"bytes_sent"`
	LocalGM   uint64 `json:"local_gm"`
	RemoteGM  uint64 `json:"remote_gm"`

	// AllocPerRemoteOp is whole-run heap allocations (application work
	// included) normalised by remote global-memory operations, measured
	// after a warm-up run primes the message pools. A drift upward means
	// something on the request path started allocating. It is the one
	// nondeterministic field; the regression gate compares it with an
	// epsilon.
	AllocPerRemoteOp float64 `json:"alloc_per_remote_op"`

	// PerOp breaks sent traffic down by protocol operation.
	PerOp map[string]OpMetrics `json:"per_op"`

	RTT         LatencySummary `json:"rtt_us"`
	BarrierWait LatencySummary `json:"barrier_wait_us"`

	// Reliability-layer counters (all zero on a healthy simulated run).
	Retries      uint64 `json:"retries"`
	StaleReplies uint64 `json:"stale_replies"`
	StrayDrops   uint64 `json:"stray_drops"`
	CorruptDrops uint64 `json:"corrupt_drops"`
	DupRequests  uint64 `json:"dup_requests"`

	// Checkpoint/restart cost, measured only for the gauss workload (zero
	// and omitted elsewhere, and in baselines predating the subsystem —
	// Compare's old > 0 guard keeps those comparable). CkptOverheadPct is
	// the relative elapsed-time cost of one coordinated checkpoint of the
	// full solved system; SnapshotBytes is that snapshot's encoded size
	// across all PEs. The ElapsedUS above always comes from a
	// checkpointing-free run: with Config.Ckpt nil the subsystem costs
	// nothing on the hot path.
	CkptOverheadPct float64 `json:"ckpt_overhead_pct,omitempty"`
	SnapshotBytes   uint64  `json:"snapshot_bytes,omitempty"`
}

// OpMetrics is one op's share of the sent traffic.
type OpMetrics struct {
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
}

// LatencySummary summarises a latency distribution in microseconds
// (quantiles are bucket upper bounds; see trace.Histogram.Quantile).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SpeedupPoint is one cell of the speed-up curve committed with the
// snapshot: how much faster the named workload runs on NumPE processors
// than on one.
type SpeedupPoint struct {
	Workload string  `json:"workload"`
	NumPE    int     `json:"num_pe"`
	Ratio    float64 `json:"ratio"`
}

func summarize(h *trace.Histogram) LatencySummary {
	hs := h.Snapshot()
	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	return LatencySummary{
		Count: hs.Count,
		Mean:  us(hs.Mean()),
		P50:   us(hs.Quantile(0.50)),
		P95:   us(hs.Quantile(0.95)),
		P99:   us(hs.Quantile(0.99)),
		Max:   us(hs.Max),
	}
}

// snapshotWorkload is one reference app configured for the snapshot.
type snapshotWorkload struct {
	name       string
	npe        int
	blockWords int
	body       core.Program
}

// snapshotWorkloads are the four reference applications at fixed, fast
// parameter points: the metrics the repo tracks across PRs.
func snapshotWorkloads(sc Scale) []snapshotWorkload {
	const p = 4
	gaussN := 120
	if len(sc.GaussNs) > 1 {
		gaussN = sc.GaussNs[1]
	}
	return []snapshotWorkload{
		{
			name: fmt.Sprintf("gauss N=%d", gaussN), npe: p, blockWords: gaussBlockWords,
			body: func(pe *core.PE) error {
				_, err := gauss.Parallel(pe, gauss.Params{N: gaussN, Seed: sc.Seed})
				return err
			},
		},
		{
			name: "dct 64/8", npe: p,
			body: func(pe *core.PE) error {
				_, err := dct.Parallel(pe, dct.Params{ImageN: 64, Block: 8, Rate: 0.5, Seed: sc.Seed})
				return err
			},
		},
		{
			name: "knight jobs=16", npe: p,
			body: func(pe *core.PE) error {
				_, err := knight.Parallel(pe, knight.Params{BoardN: 5, Jobs: 16})
				return err
			},
		},
		{
			name: "othello depth=3", npe: p,
			body: func(pe *core.PE) error {
				_, err := othello.Parallel(pe, othello.Params{Depth: 3})
				return err
			},
		},
	}
}

// measureWorkload runs w twice on the simulated cluster — once to warm the
// message pools, once measured (virtual-time metrics plus a heap-allocation
// count around the measured run) — and fills one WorkloadMetrics.
func measureWorkload(pl *platform.Platform, sc Scale, w snapshotWorkload) (WorkloadMetrics, error) {
	cfg := core.Config{NumPE: w.npe, Platform: pl, Seed: sc.Seed, GMBlockWords: w.blockWords}
	run := func() (*core.Result, error) {
		res, err := core.Run(cfg, w.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		if err := res.FirstErr(); err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		return res, nil
	}
	if _, err := run(); err != nil { // warm-up: prime pools, JIT-free but cache-warm
		return WorkloadMetrics{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := run()
	if err != nil {
		return WorkloadMetrics{}, err
	}
	runtime.ReadMemStats(&after)

	m := WorkloadMetrics{
		Name:      w.name,
		NumPE:     w.npe,
		ElapsedUS: int64(res.Elapsed / sim.Microsecond),
		MsgsSent:  res.Total.MsgsSent,
		BytesSent: res.Total.BytesSent,
		LocalGM:   res.Total.LocalGM,
		RemoteGM:  res.Total.RemoteGM,
		PerOp:     map[string]OpMetrics{},

		RTT:         summarize(&res.Total.RTT),
		BarrierWait: summarize(&res.Total.BarrierWait),

		Retries:      res.Total.Retries,
		StaleReplies: res.Total.StaleReplies,
		StrayDrops:   res.Total.StrayDrops,
		CorruptDrops: res.Total.CorruptDrops,
		DupRequests:  res.Total.DupRequests,
	}
	if res.Total.RemoteGM > 0 {
		m.AllocPerRemoteOp = float64(after.Mallocs-before.Mallocs) / float64(res.Total.RemoteGM)
	}
	for i := range res.Total.ByOp {
		if res.Total.ByOp[i].Msgs > 0 {
			m.PerOp[wire.Op(i).String()] = OpMetrics{
				Msgs:  res.Total.ByOp[i].Msgs,
				Bytes: res.Total.ByOp[i].Bytes,
			}
		}
	}
	return m, nil
}

// BuildSnapshot runs the four reference applications on the simulated
// cluster and assembles the repo's benchmark snapshot. scaleName is recorded
// verbatim ("quick" or "full").
func BuildSnapshot(pl *platform.Platform, sc Scale, scaleName string) (*Snapshot, error) {
	snap := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Tool:          "dsebench",
		Scale:         scaleName,
		Platform:      pl.Numeric,
		Seed:          sc.Seed,
	}
	for _, w := range snapshotWorkloads(sc) {
		m, err := measureWorkload(pl, sc, w)
		if err != nil {
			return nil, err
		}
		snap.Workloads = append(snap.Workloads, m)
	}

	// Checkpoint overhead rides on the gauss row: same run plus one
	// coordinated snapshot of the solved system.
	if len(snap.Workloads) > 0 {
		pct, bytes, err := gaussCkptOverhead(pl, sc, snap.Workloads[0].ElapsedUS)
		if err != nil {
			return nil, fmt.Errorf("checkpoint overhead: %w", err)
		}
		snap.Workloads[0].CkptOverheadPct = pct
		snap.Workloads[0].SnapshotBytes = bytes
	}

	// Per-mode consistency-tier rows: gauss under strong, release and
	// lease, vectored and fine-grained.
	tiers, err := ConsistencyTierProfile(pl, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("consistency tiers: %w", err)
	}
	snap.ConsistencyTiers = tiers

	// Speed-up curve: gauss at p = 1,2,4 (the snapshot's scaling check).
	gaussN := 120
	if len(sc.GaussNs) > 1 {
		gaussN = sc.GaussNs[1]
	}
	var base sim.Duration
	for _, p := range []int{1, 2, 4} {
		d, err := gaussElapsed(pl, gaussN, p, sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("speedup gauss p=%d: %w", p, err)
		}
		if p == 1 {
			base = d
		}
		snap.Speedup = append(snap.Speedup, SpeedupPoint{
			Workload: fmt.Sprintf("gauss N=%d", gaussN),
			NumPE:    p,
			Ratio:    float64(base) / float64(d),
		})
	}
	return snap, nil
}

// RunGaussCkpt runs the snapshot's gauss point (p=4) with checkpointing
// enabled against a throwaway on-disk store and one coordinated Checkpoint
// of the fully solved system: the measurement behind the snapshot's
// checkpoint-overhead field, also surfaced by dsebench -latency and
// -recover.
func RunGaussCkpt(pl *platform.Platform, sc Scale) (*core.Result, error) {
	gaussN := 120
	if len(sc.GaussNs) > 1 {
		gaussN = sc.GaussNs[1]
	}
	dir, err := os.MkdirTemp("", "dse-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := ckpt.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		NumPE: 4, Platform: pl, Seed: sc.Seed, GMBlockWords: gaussBlockWords,
		Ckpt: &core.CheckpointConfig{Store: store},
	}
	res, err := core.Run(cfg, func(pe *core.PE) error {
		pe.RegisterCheckpoint(nil, nil)
		if _, err := gauss.Parallel(pe, gauss.Params{N: gaussN, Seed: sc.Seed}); err != nil {
			return err
		}
		return pe.Checkpoint()
	})
	if err != nil {
		return nil, err
	}
	if err := res.FirstErr(); err != nil {
		return nil, err
	}
	return res, nil
}

// gaussCkptOverhead reports RunGaussCkpt's relative elapsed-time cost
// against baseUS (the checkpoint-free elapsed) plus the snapshot's encoded
// size.
func gaussCkptOverhead(pl *platform.Platform, sc Scale, baseUS int64) (float64, uint64, error) {
	res, err := RunGaussCkpt(pl, sc)
	if err != nil {
		return 0, 0, err
	}
	withUS := int64(res.Elapsed / sim.Microsecond)
	if baseUS <= 0 {
		return 0, res.Total.SnapshotBytes, nil
	}
	return 100 * float64(withUS-baseUS) / float64(baseUS), res.Total.SnapshotBytes, nil
}

// WriteJSON writes the snapshot, indented, stable.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveJSON writes the snapshot to path.
func (s *Snapshot) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot written by SaveJSON, rejecting unknown
// schema versions.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if s.SchemaVersion != SnapshotSchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this tool expects %d",
			path, s.SchemaVersion, SnapshotSchemaVersion)
	}
	return &s, nil
}

// LatencyTables runs the four reference applications and renders each one's
// per-op latency distribution (round trips, kernel service times,
// synchronisation waits) as a table: EXPERIMENTS.md's latency-distribution
// data.
func LatencyTables(pl *platform.Platform, sc Scale) ([]*trace.Table, error) {
	var tables []*trace.Table
	for _, w := range snapshotWorkloads(sc) {
		cfg := core.Config{NumPE: w.npe, Platform: pl, Seed: sc.Seed, GMBlockWords: w.blockWords}
		res, err := core.Run(cfg, w.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		if err := res.FirstErr(); err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		title := fmt.Sprintf("latency distribution, %s p=%d on %s (elapsed %v)",
			w.name, w.npe, pl.Numeric, res.Elapsed)
		tables = append(tables, res.Total.LatencyTable(title))
	}

	// One checkpoint-enabled gauss run rides along: its table carries the
	// ckpt-mark round trips and the checkpoint counters.
	res, err := RunGaussCkpt(pl, sc)
	if err != nil {
		return nil, fmt.Errorf("gauss+ckpt: %w", err)
	}
	title := fmt.Sprintf("latency distribution, gauss+ckpt p=4 on %s (elapsed %v, one coordinated checkpoint)",
		pl.Numeric, res.Elapsed)
	tables = append(tables, res.Total.LatencyTable(title))
	ck := &trace.Table{
		Title:  "checkpoint counters, gauss+ckpt p=4",
		Header: []string{"counter", "value"},
	}
	ck.AddRow("checkpoints", fmt.Sprintf("%d", res.Total.Checkpoints))
	ck.AddRow("restores", fmt.Sprintf("%d", res.Total.Restores))
	ck.AddRow("snapshot_bytes", fmt.Sprintf("%d", res.Total.SnapshotBytes))
	ck.AddRow("rollback_ops", fmt.Sprintf("%d", res.Total.RollbackOps))
	tables = append(tables, ck)

	// One release-mode fine-grained gauss run rides along: its table's
	// flush-stall row is the WC-buffer drain latency at sync edges, which
	// every strong workload above leaves empty.
	rel, err := core.Run(core.Config{
		NumPE: tierGaussPE, Platform: pl, Seed: sc.Seed, GMBlockWords: gaussBlockWords,
	}, func(pe *core.PE) error {
		return gaussFine(pe, gmem.ModeRelease, sc.Seed)
	})
	if err != nil {
		return nil, fmt.Errorf("gauss-fine release: %w", err)
	}
	if err := rel.FirstErr(); err != nil {
		return nil, fmt.Errorf("gauss-fine release: %w", err)
	}
	title = fmt.Sprintf("latency distribution, gauss-fine N=%d release p=%d on %s (elapsed %v, %d WC flushes)",
		tierGaussN, tierGaussPE, pl.Numeric, rel.Elapsed, rel.Total.WCFlushes)
	tables = append(tables, rel.Total.LatencyTable(title))
	return tables, nil
}

// regressionTolerance is how much a tracked deterministic metric may grow
// before Compare flags it.
const regressionTolerance = 0.10

// allocEpsilon absorbs run-to-run noise in the allocation counter on top of
// the fractional tolerance.
const allocEpsilon = 0.5

// Compare diffs cur against base and describes every tracked metric that
// regressed: per-op message counts, total messages/bytes, remote-GM
// allocations per op, and p95 round-trip latency. Deterministic metrics use
// the >10% rule; the allocation rate additionally gets an absolute epsilon.
// An empty result means no regression.
func Compare(base, cur *Snapshot) []string {
	var regressions []string
	worse := func(name string, old, new float64) {
		if old > 0 && new > old*(1+regressionTolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g -> %.4g (+%.1f%%)", name, old, new, 100*(new-old)/old))
		}
	}
	curByKey := map[string]*WorkloadMetrics{}
	for i := range cur.Workloads {
		w := &cur.Workloads[i]
		curByKey[fmt.Sprintf("%s/p%d", w.Name, w.NumPE)] = w
	}
	for i := range base.Workloads {
		old := &base.Workloads[i]
		key := fmt.Sprintf("%s/p%d", old.Name, old.NumPE)
		now, ok := curByKey[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: workload missing from current snapshot", key))
			continue
		}
		worse(key+" msgs_sent", float64(old.MsgsSent), float64(now.MsgsSent))
		worse(key+" bytes_sent", float64(old.BytesSent), float64(now.BytesSent))
		worse(key+" rtt p95", old.RTT.P95, now.RTT.P95)
		// Baselines predating the checkpoint subsystem carry 0 here and
		// pass the old > 0 guard.
		worse(key+" ckpt_overhead_pct", old.CkptOverheadPct, now.CkptOverheadPct)
		if now.AllocPerRemoteOp > old.AllocPerRemoteOp*(1+regressionTolerance)+allocEpsilon {
			regressions = append(regressions,
				fmt.Sprintf("%s alloc/remote-op: %.3g -> %.3g", key, old.AllocPerRemoteOp, now.AllocPerRemoteOp))
		}
		ops := make([]string, 0, len(old.PerOp))
		for op := range old.PerOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			worse(fmt.Sprintf("%s msgs[%s]", key, op), float64(old.PerOp[op].Msgs), float64(now.PerOp[op].Msgs))
		}
	}

	// Consistency-tier rows are deterministic like the workload metrics:
	// the >10% rule on messages, bytes, msgs/op and the tier-machinery
	// counters (a jump in flushes or lease churn means a fence or expiry
	// started firing where it didn't). Baselines predating the tiers carry
	// no rows and are skipped; rows missing from the current snapshot are
	// reported like missing workloads.
	curTiers := map[string]*TierMetrics{}
	for i := range cur.ConsistencyTiers {
		t := &cur.ConsistencyTiers[i]
		curTiers[tierKey(t)] = t
	}
	for i := range base.ConsistencyTiers {
		old := &base.ConsistencyTiers[i]
		key := tierKey(old)
		now, ok := curTiers[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: tier row missing from current snapshot", key))
			continue
		}
		worse(key+" msgs_sent", float64(old.MsgsSent), float64(now.MsgsSent))
		worse(key+" bytes_sent", float64(old.BytesSent), float64(now.BytesSent))
		worse(key+" msgs/op", old.MsgsPerOp, now.MsgsPerOp)
		worse(key+" wc_flushes", float64(old.WCFlushes), float64(now.WCFlushes))
		worse(key+" lease_grants", float64(old.LeaseGrants), float64(now.LeaseGrants))
		worse(key+" lease_expiries", float64(old.LeaseExpiries), float64(now.LeaseExpiries))
	}

	// Saturation points are wall-clock throughput, so run-to-run noise is
	// real: only a collapse below saturationFloor of the baseline — the kind
	// a lost shard or a serialised fast path produces — counts as a
	// regression. Points absent from either side are skipped (baselines
	// predate the sweep, or it wasn't requested this run).
	curSat := map[string]*SaturationPoint{}
	for i := range cur.Saturation {
		p := &cur.Saturation[i]
		curSat[satKey(p)] = p
	}
	for i := range base.Saturation {
		old := &base.Saturation[i]
		key := satKey(old)
		now, ok := curSat[key]
		if !ok || old.OpsPerSec <= 0 {
			continue
		}
		if now.OpsPerSec < old.OpsPerSec*saturationFloor {
			regressions = append(regressions,
				fmt.Sprintf("saturation %s ops/sec: %.0f -> %.0f (below %.0f%% of baseline)",
					key, old.OpsPerSec, now.OpsPerSec, 100*saturationFloor))
		}
	}
	// Scheduler load-test legs are wall-clock like saturation points: gate
	// job throughput by collapse only, skip legs absent from either side.
	// Namespace violations are not noise at any count — SchedSweep already
	// refuses to produce a point with violations, but a hand-edited or
	// corrupted snapshot should fail the gate too.
	curSched := map[string]*SchedPoint{}
	for i := range cur.Sched {
		p := &cur.Sched[i]
		curSched[schedKey(p)] = p
	}
	for i := range cur.Sched {
		if p := &cur.Sched[i]; p.Violations != 0 {
			regressions = append(regressions,
				fmt.Sprintf("sched %s: %d cross-namespace violations", schedKey(p), p.Violations))
		}
	}
	for i := range base.Sched {
		old := &base.Sched[i]
		key := schedKey(old)
		now, ok := curSched[key]
		if !ok || old.JobsPerSec <= 0 {
			continue
		}
		if now.JobsPerSec < old.JobsPerSec*saturationFloor {
			regressions = append(regressions,
				fmt.Sprintf("sched %s jobs/sec: %.0f -> %.0f (below %.0f%% of baseline)",
					key, old.JobsPerSec, now.JobsPerSec, 100*saturationFloor))
		}
	}
	return regressions
}

// saturationFloor is the fraction of baseline wall-clock throughput a
// saturation point must keep; anything above it is treated as noise.
const saturationFloor = 0.4

// satKey names a saturation point for baseline matching. Ring-on legs get a
// "/r" suffix — a distinct key — so baselines predating the write rings
// simply skip them instead of comparing a ring run against a message run.
func satKey(p *SaturationPoint) string {
	k := fmt.Sprintf("%s/p%d/s%d", p.Workload, p.NumPE, p.Shards)
	if p.Rings {
		k += "/r"
	}
	return k
}
