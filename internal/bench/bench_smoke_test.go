package bench

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestTable1ListsThreePlatforms(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"SparcStation", "RS/6000", "PentiumII", "SunOS", "AIX", "Linux"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2PaperExample(t *testing.T) {
	tab := Table2(12)
	if len(tab.Rows) != 12 {
		t.Fatalf("Table 2 has %d rows", len(tab.Rows))
	}
	last := tab.Rows[11]
	if last[0] != "12" || last[2] != "2" {
		t.Fatalf("12-processor row = %v, want 2 kernels/machine", last)
	}
}

func TestFigureByNumberRejectsUnknown(t *testing.T) {
	for _, n := range []int{0, 3, 22, -1} {
		if _, err := FigureByNumber(n, QuickScale()); err == nil {
			t.Fatalf("figure %d accepted", n)
		}
	}
}

func TestAllFigureNumbersComplete(t *testing.T) {
	ns := AllFigureNumbers()
	if len(ns) != 18 {
		t.Fatalf("%d figures, want 18 (Figs 4-21)", len(ns))
	}
	for i, n := range ns {
		if n != i+4 {
			t.Fatalf("figure list %v not 4..21", ns)
		}
	}
}

func TestPlatformMappingMatchesPaper(t *testing.T) {
	if platformForFigure(4) != platform.SparcSunOS ||
		platformForFigure(7) != platform.RS6000AIX ||
		platformForFigure(9) != platform.PentiumIILinux ||
		platformForFigure(16) != platform.SparcSunOS ||
		platformForFigure(21) != platform.PentiumIILinux {
		t.Fatal("figure-to-platform mapping wrong")
	}
}

func TestKnightFigureQuick(t *testing.T) {
	sc := QuickScale()
	sc.MaxPE = 3
	sc.KnightJobs = []int{8}
	fig, err := KnightFigure(platform.PentiumIILinux, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Y) != 3 {
		t.Fatalf("series shape wrong: %+v", fig.Series)
	}
	for _, y := range fig.Series[0].Y {
		if y <= 0 {
			t.Fatalf("non-positive execution time %v", y)
		}
	}
}
