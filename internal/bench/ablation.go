package bench

import (
	"fmt"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file holds the ablation experiments DESIGN.md §5 calls out: each
// isolates one design choice of the runtime and shows its effect on a
// paper workload (or a focused synthetic one). They are not paper figures;
// they justify the reproduction's structure.

// AblationCaching compares the plain home-based DSM against the
// write-invalidate caching protocol on a read-mostly shared table: every
// PE repeatedly reads a table of shared words that PE 0 occasionally
// updates. Caching turns the re-reads into local hits.
func AblationCaching(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const (
		tableWords = 96
		rounds     = 12
	)
	fig := &Figure{
		ID:     "Ablation A1",
		Title:  fmt.Sprintf("home-based DSM vs caching protocol (read-mostly table), %s", pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	for _, caching := range []bool{false, true} {
		label := "home-based"
		if caching {
			label = "caching"
		}
		s := trace.Series{Label: label}
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, Caching: caching,
			}, func(pe *core.PE) error {
				table := pe.Alloc(tableWords)
				if pe.ID() == 0 {
					for i := 0; i < tableWords; i++ {
						pe.GMWrite(table+uint64(i), int64(i))
					}
				}
				pe.Barrier()
				start := pe.Now()
				for r := 0; r < rounds; r++ {
					for i := 0; i < tableWords; i++ {
						if v := pe.GMRead(table + uint64(i)); v < 0 {
							return fmt.Errorf("corrupt table")
						}
					}
					if pe.ID() == 0 {
						pe.GMWrite(table+uint64(r%tableWords), int64(r))
					}
					pe.Barrier()
				}
				if pe.ID() == 0 {
					elapsed = pe.Now() - start
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationBarrier compares the central barrier manager against the
// distributed combining tree: time for a burst of back-to-back barriers.
func AblationBarrier(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const rounds = 20
	fig := &Figure{
		ID:     "Ablation A2",
		Title:  fmt.Sprintf("central vs tree barrier (%d back-to-back barriers), %s", rounds, pl),
		XLabel: "number of processors", YLabel: "time per barrier [ms]",
	}
	for _, kind := range []core.BarrierKind{core.BarrierCentral, core.BarrierTree} {
		s := trace.Series{Label: kind.String()}
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, Barrier: kind,
			}, func(pe *core.PE) error {
				pe.Barrier() // warm-up alignment
				start := pe.Now()
				for r := 0; r < rounds; r++ {
					pe.Barrier()
				}
				if pe.ID() == 0 {
					elapsed = pe.Now() - start
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds()*1000/rounds)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationLoadModel reruns Gauss-Seidel with and without the paper's
// proportional virtual-cluster slowdown, isolating the >6-processor knee.
func AblationLoadModel(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const n = 600
	fig := &Figure{
		ID:     "Ablation A3",
		Title:  fmt.Sprintf("virtual-cluster load model, Gauss-Seidel N=%d, %s", n, pl),
		XLabel: "number of processors", YLabel: "speed improvement ratio",
	}
	for _, load := range []platform.LoadModel{platform.LoadProportional, platform.LoadNone} {
		s := trace.Series{Label: "load " + load.String()}
		var base sim.Duration
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, Load: load, GMBlockWords: gaussBlockWords,
			}, func(pe *core.PE) error {
				r, err := gauss.Parallel(pe, gauss.Params{N: n, Seed: seed})
				if err != nil {
					return err
				}
				if pe.ID() == 0 {
					elapsed = r.Elapsed
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			if p == 1 {
				base = elapsed
			}
			s.Append(float64(p), float64(base)/float64(elapsed))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationSharedVsMessage compares DSE's shared-memory Gauss-Seidel
// against the PVM/MPI-style message-passing variant (identical numerics).
func AblationSharedVsMessage(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const n = 600
	fig := &Figure{
		ID:     "Ablation A4",
		Title:  fmt.Sprintf("shared memory (DSM) vs message passing, Gauss-Seidel N=%d, %s", n, pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	variants := []struct {
		label string
		run   func(pe core.Proc, p gauss.Params) (*gauss.Result, error)
	}{
		{"DSM", gauss.Parallel},
		{"message-passing", gauss.ParallelMP},
	}
	for _, v := range variants {
		s := trace.Series{Label: v.label}
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, GMBlockWords: gaussBlockWords,
			}, func(pe *core.PE) error {
				r, err := v.run(pe, gauss.Params{N: n, Seed: seed})
				if err != nil {
					return err
				}
				if pe.ID() == 0 {
					elapsed = r.Elapsed
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationProtocolOverhead sweeps the per-message protocol cost — the
// overhead the paper's reorganisation fights — and reports Gauss-Seidel
// time at a fixed processor count.
func AblationProtocolOverhead(pl *platform.Platform, seed uint64) (*Figure, error) {
	const (
		n   = 600
		pes = 6
	)
	fig := &Figure{
		ID:     "Ablation A5",
		Title:  fmt.Sprintf("per-message protocol cost sweep, Gauss-Seidel N=%d p=%d, %s", n, pes, pl),
		XLabel: "protocol cost multiplier", YLabel: "execution time [s]",
	}
	s := trace.Series{Label: "exec time"}
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		scaled := *pl
		scaled.ProtoPerMessage = sim.Duration(float64(pl.ProtoPerMessage) * mult)
		scaled.SyscallOverhead = sim.Duration(float64(pl.SyscallOverhead) * mult)
		scaled.InterruptCost = sim.Duration(float64(pl.InterruptCost) * mult)
		scaled.CtxSwitch = sim.Duration(float64(pl.CtxSwitch) * mult)
		var elapsed sim.Duration
		res, err := core.Run(core.Config{
			NumPE: pes, Platform: &scaled, Seed: seed, GMBlockWords: gaussBlockWords,
		}, func(pe *core.PE) error {
			r, err := gauss.Parallel(pe, gauss.Params{N: n, Seed: seed})
			if err != nil {
				return err
			}
			if pe.ID() == 0 {
				elapsed = r.Elapsed
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := res.FirstErr(); err != nil {
			return nil, err
		}
		s.Append(mult, elapsed.Seconds())
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationChunking compares per-block DCT self-scheduling against chunked
// claims for the paper's worst case (4×4 blocks), which turns the job
// counter from a hot spot into background noise.
func AblationChunking(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	base := dct.Params{ImageN: 128, Block: 4, Rate: 0.5, Seed: seed}
	fig := &Figure{
		ID:     "Ablation A6",
		Title:  fmt.Sprintf("DCT 4x4 job chunking (%dx%d image), %s", base.ImageN, base.ImageN, pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	for _, chunk := range []int{1, 8, 64} {
		s := trace.Series{Label: fmt.Sprintf("chunk=%d", chunk)}
		for p := 1; p <= maxPE; p++ {
			params := base
			params.ChunkBlocks = chunk
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed,
			}, func(pe *core.PE) error {
				r, err := dct.Parallel(pe, params)
				if err != nil {
					return err
				}
				if pe.ID() == 0 {
					elapsed = r.Elapsed
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationOrganization reproduces the paper's central engineering claim:
// the reorganised DSE (kernel linked into the application process) versus
// the old organisation (kernel and process as separate UNIX processes, one
// IPC round trip per Parallel-API call). The paper: "experiment results
// reveal substantial enhancement to DSE system performance". The workload
// is fine-grained word access to a shared table — the case the
// reorganisation helps most, because it turns local global-memory access
// into a function call instead of an IPC round trip.
func AblationOrganization(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const (
		tableWords = 96
		rounds     = 10
	)
	fig := &Figure{
		ID:     "Ablation A7",
		Title:  fmt.Sprintf("new vs old DSE software organisation (fine-grain GM access), %s", pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	for _, legacy := range []bool{false, true} {
		label := "new (one process)"
		if legacy {
			label = "old (kernel via IPC)"
		}
		s := trace.Series{Label: label}
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, Legacy: legacy,
			}, func(pe *core.PE) error {
				table := pe.Alloc(tableWords)
				pe.Barrier()
				start := pe.Now()
				for r := 0; r < rounds; r++ {
					for i := 0; i < tableWords; i++ {
						pe.GMRead(table + uint64(i))
					}
					pe.Barrier()
				}
				if pe.ID() == 0 {
					elapsed = pe.Now() - start
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationMedium compares the shared CSMA/CD bus against switched
// Ethernet on the paper's most wire-bound workload: Gauss-Seidel at
// N=900, where every PE pulls the full vector over the LAN each sweep.
// The paper blames the bus for degradation at high communication
// frequency; the switch removes the collisions and shared-wire
// serialisation but keeps the per-message OS costs, so the residual
// slowdown is the protocol overhead the reorganisation targets.
func AblationMedium(pl *platform.Platform, maxPE int, seed uint64) (*Figure, error) {
	const n = 900
	fig := &Figure{
		ID:     "Ablation A8",
		Title:  fmt.Sprintf("shared bus vs switched Ethernet, Gauss-Seidel N=%d, %s", n, pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	for _, switched := range []bool{false, true} {
		label := "shared bus"
		if switched {
			label = "switched"
		}
		s := trace.Series{Label: label}
		for p := 1; p <= maxPE; p++ {
			var elapsed sim.Duration
			res, err := core.Run(core.Config{
				NumPE: p, Platform: pl, Seed: seed, Switched: switched, GMBlockWords: gaussBlockWords,
			}, func(pe *core.PE) error {
				r, err := gauss.Parallel(pe, gauss.Params{N: n, Seed: seed})
				if err != nil {
					return err
				}
				if pe.ID() == 0 {
					elapsed = r.Elapsed
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			s.Append(float64(p), elapsed.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Ablations runs the whole suite on the SunOS platform.
func Ablations(maxPE int, seed uint64) ([]*Figure, error) {
	pl := platform.SparcSunOS
	var figs []*Figure
	for _, f := range []func() (*Figure, error){
		func() (*Figure, error) { return AblationCaching(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationBarrier(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationLoadModel(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationSharedVsMessage(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationProtocolOverhead(pl, seed) },
		func() (*Figure, error) { return AblationChunking(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationOrganization(pl, maxPE, seed) },
		func() (*Figure, error) { return AblationMedium(pl, maxPE, seed) },
	} {
		fig, err := f()
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
