package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// SaturationPoint is one cell of the kernel-saturation sweep: the sustained
// remote global-memory throughput one home kernel services when every other
// PE hammers addresses homed there, at a given shard count. Unlike the rest
// of the snapshot this is wall-clock ops/sec over the in-process transport,
// so it is hardware- and load-dependent; the regression gate compares it
// with a wide margin (see Compare).
type SaturationPoint struct {
	Workload  string  `json:"workload"` // "read" or "mixed"
	NumPE     int     `json:"num_pe"`
	Shards    int     `json:"shards"`
	Direct    bool    `json:"direct"`          // one-sided read window active
	Rings     bool    `json:"rings,omitempty"` // one-sided write rings active
	Ops       uint64  `json:"ops"`             // total remote ops issued by the hammering PEs
	OpsPerSec float64 `json:"ops_per_sec"`
	DirectGM  uint64  `json:"direct_gm"`         // ops resolved through the window
	RingGM    uint64  `json:"ring_gm,omitempty"` // ops resolved through a submission ring
}

// saturationBlocks is how many kernel-0-homed blocks the hammering PEs
// spread their accesses over — enough to cover every shard and lock stripe
// at any configured shard count.
const saturationBlocks = 64

// SaturationOptions configures one saturation measurement.
type SaturationOptions struct {
	NumPE    int
	Shards   int
	OpsPerPE int
	Mixed    bool // 1-in-4 ops are writes
	// DirectReads passes through core.Config.DirectReads; 0 = auto
	// (window on iff Shards > 1).
	DirectReads int
	// WriteRings passes through core.Config.WriteRings; 0 = auto (rings on
	// wherever the window is, given shard workers), <0 forces writes back
	// onto the message path — the PR 6-comparable configuration.
	WriteRings int
}

// MeasureSaturation runs one saturation point on the in-process transport:
// PEs 1..NumPE-1 each issue OpsPerPE scalar operations against blocks homed
// at kernel 0, and the barrier-bracketed wall time at PE 0 yields the
// serviced ops/sec. Accesses stride whole blocks so consecutive ops land on
// different shards (and different segment lock stripes).
func MeasureSaturation(o SaturationOptions) (SaturationPoint, error) {
	var (
		mu      sync.Mutex
		elapsed time.Duration
	)
	cfg := core.Config{
		NumPE:        o.NumPE,
		Transport:    core.TransportInproc,
		KernelShards: o.Shards,
		DirectReads:  o.DirectReads,
		WriteRings:   o.WriteRings,
	}
	res, err := core.Run(cfg, func(pe *core.PE) error {
		bw := pe.Space().BlockWords
		p := pe.N()
		// Block index b is homed at kernel b % p: reserve enough space that
		// blocks 0, p, 2p, ... (p*saturationBlocks) all exist, then hammer
		// exactly the kernel-0-homed ones.
		base := pe.AllocBlocks(p * saturationBlocks * bw)
		if base != 0 {
			return fmt.Errorf("saturation: expected allocation at 0, got %d", base)
		}
		if pe.ID() == 0 {
			// Home side: seed the blocks, then sit in the barriers measuring.
			words := make([]int64, saturationBlocks*bw)
			for b := 0; b < saturationBlocks; b++ {
				for w := 0; w < bw; w++ {
					words[b*bw+w] = int64(b*bw + w + 1)
				}
			}
			for b := 0; b < saturationBlocks; b++ {
				pe.GMWriteBlock(uint64(b*p*bw), words[b*bw:(b+1)*bw])
			}
			pe.Barrier()
			t0 := time.Now()
			pe.Barrier()
			mu.Lock()
			elapsed = time.Since(t0)
			mu.Unlock()
			return nil
		}
		pe.Barrier()
		// Hammer: stride block-by-block so successive ops hit successive
		// shards; vary the word within the block per PE to avoid all PEs
		// contending on one word.
		id := pe.ID()
		for i := 0; i < o.OpsPerPE; i++ {
			b := i % saturationBlocks
			addr := uint64(b*p*bw + (i+id)%bw)
			if o.Mixed && i%4 == 3 {
				pe.GMWrite(addr, int64(id)<<32|int64(i))
			} else {
				pe.GMRead(addr)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		return SaturationPoint{}, err
	}
	if err := res.FirstErr(); err != nil {
		return SaturationPoint{}, err
	}
	mu.Lock()
	secs := elapsed.Seconds()
	mu.Unlock()
	ops := uint64(o.NumPE-1) * uint64(o.OpsPerPE)
	pt := SaturationPoint{
		Workload: "read",
		NumPE:    o.NumPE,
		Shards:   o.Shards,
		Ops:      ops,
		DirectGM: res.Total.DirectGM,
		Direct:   res.Total.DirectGM > 0,
		RingGM:   res.Total.RingGM,
		Rings:    res.Total.RingGM > 0,
	}
	if o.Mixed {
		pt.Workload = "mixed"
	}
	if secs > 0 {
		pt.OpsPerSec = float64(ops) / secs
	}
	return pt, nil
}

// saturationRuns is how many times each saturation point is measured, with
// the best run kept: a scheduler hiccup on a loaded CI machine must not trip
// the wall-clock regression floor.
const saturationRuns = 3

// measureSaturationBest measures o saturationRuns times and keeps the point
// with the highest throughput.
func measureSaturationBest(o SaturationOptions) (SaturationPoint, error) {
	var best SaturationPoint
	for i := 0; i < saturationRuns; i++ {
		pt, err := MeasureSaturation(o)
		if err != nil {
			return SaturationPoint{}, err
		}
		if pt.OpsPerSec > best.OpsPerSec {
			best = pt
		}
	}
	return best, nil
}

// SaturationSweep measures ops/sec into one home kernel across PE counts and
// shard counts: the tentpole scaling figure (dsebench -saturate). quick
// trims the op count, not the grid. Mixed points are measured twice where
// the write rings can engage: once with rings forced off — the key stays
// comparable against pre-ring baselines — and once with them on.
func SaturationSweep(quick bool) ([]SaturationPoint, error) {
	opsPerPE := 20000
	if quick {
		opsPerPE = 4000
	}
	var pts []SaturationPoint
	for _, mixed := range []bool{false, true} {
		for _, p := range []int{8, 16} {
			for _, shards := range []int{1, 2, 4, 8} {
				rings := []int{-1}
				if mixed && shards > 1 {
					rings = append(rings, 1) // the rings-on leg
				}
				for _, wr := range rings {
					pt, err := measureSaturationBest(SaturationOptions{
						NumPE: p, Shards: shards, OpsPerPE: opsPerPE,
						Mixed: mixed, WriteRings: wr,
					})
					if err != nil {
						return nil, fmt.Errorf("saturation p=%d shards=%d rings=%d: %w", p, shards, wr, err)
					}
					pts = append(pts, pt)
				}
			}
		}
	}
	return pts, nil
}

// SaturationTable renders a sweep as one row per (workload, p) with a column
// per shard count.
func SaturationTable(pts []SaturationPoint) *trace.Table {
	shardCols := []int{1, 2, 4, 8}
	t := &trace.Table{
		Title:  "kernel saturation: remote GM ops/sec into one home kernel (inproc, wall clock)",
		Header: []string{"workload", "p"},
	}
	for _, s := range shardCols {
		t.Header = append(t.Header, fmt.Sprintf("shards=%d", s))
	}
	type key struct {
		w string
		p int
	}
	rows := map[key]map[int]SaturationPoint{}
	var order []key
	for _, pt := range pts {
		w := pt.Workload
		if pt.Rings {
			w += "+rings" // ring-on legs get their own row
		}
		k := key{w, pt.NumPE}
		if rows[k] == nil {
			rows[k] = map[int]SaturationPoint{}
			order = append(order, k)
		}
		rows[k][pt.Shards] = pt
	}
	for _, k := range order {
		row := []string{k.w, fmt.Sprintf("%d", k.p)}
		for _, s := range shardCols {
			if pt, ok := rows[k][s]; ok {
				cell := fmt.Sprintf("%.0f", pt.OpsPerSec)
				if pt.Direct {
					cell += " (direct)"
				}
				row = append(row, cell)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
