package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteCSV emits the figure as a CSV file: a header of the x label and the
// series labels, then one row per x value. Missing points (short series)
// are left empty.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		// Collect the union of x values in first-series order, then any
		// extras from longer series, preserving numeric order.
		xs := append([]float64(nil), f.Series[0].X...)
		seen := make(map[float64]bool, len(xs))
		for _, x := range xs {
			seen[x] = true
		}
		for _, s := range f.Series[1:] {
			for _, x := range s.X {
				if !seen[x] {
					xs = append(xs, x)
					seen[x] = true
				}
			}
		}
		for _, x := range xs {
			row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
			for _, s := range f.Series {
				cell := ""
				for i := range s.X {
					if s.X[i] == x {
						cell = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
						break
					}
				}
				row = append(row, cell)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the figure into dir as a slug-named .csv file and returns
// the path.
func (f *Figure) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := slugify(f.ID)
	if name == "" {
		name = slugify(f.Title)
	}
	path := filepath.Join(dir, name+".csv")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return "", fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return path, nil
}

// slugify turns a figure id/title into a safe file stem.
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			if n := b.Len(); n > 0 && b.String()[n-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	return strings.Trim(b.String(), "-")
}
