package bench

import (
	"testing"

	"repro/internal/platform"
)

func TestAblationCachingWinsOnReadMostlyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationCaching(platform.SparcSunOS, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	home := seriesByLabel(t, fig.Series, "home-based")
	cached := seriesByLabel(t, fig.Series, "caching")
	// At 4 PEs the cached run must be clearly faster on re-reads.
	if yAt(t, cached, 4) >= yAt(t, home, 4)*0.7 {
		t.Fatalf("caching did not pay off: %v vs %v", yAt(t, cached, 4), yAt(t, home, 4))
	}
}

func TestAblationBarrierBothScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationBarrier(platform.SparcSunOS, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	central := seriesByLabel(t, fig.Series, "central")
	tree := seriesByLabel(t, fig.Series, "tree")
	// Both must cost more with more PEs, and neither may be free.
	if yAt(t, central, 8) <= yAt(t, central, 2) || yAt(t, tree, 8) <= yAt(t, tree, 2) {
		t.Fatal("barrier cost did not grow with cluster size")
	}
	if yAt(t, central, 8) <= 0 || yAt(t, tree, 8) <= 0 {
		t.Fatal("zero-cost barrier")
	}
}

func TestAblationLoadModelExplainsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationLoadModel(platform.SparcSunOS, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	prop := seriesByLabel(t, fig.Series, "load proportional")
	none := seriesByLabel(t, fig.Series, "load none")
	// Identical up to six processors (no co-location yet)...
	for p := 1.0; p <= 6; p++ {
		a, b := yAt(t, prop, p), yAt(t, none, p)
		if a != b {
			t.Fatalf("p=%v: load model changed a dedicated-machine run: %v vs %v", p, a, b)
		}
	}
	// ...and the knee exists only under the proportional model.
	if yAt(t, prop, 7) >= yAt(t, prop, 6) {
		t.Fatal("proportional model shows no knee at 7 processors")
	}
	if yAt(t, none, 7) < yAt(t, none, 6) {
		t.Fatal("knee appeared even without co-location slowdown")
	}
}

func TestAblationSharedVsMessageBothWork(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationSharedVsMessage(platform.SparcSunOS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsm := seriesByLabel(t, fig.Series, "DSM")
	mp := seriesByLabel(t, fig.Series, "message-passing")
	// Both parallelise: p=6 beats p=1 for each model.
	if yAt(t, dsm, 6) >= yAt(t, dsm, 1) {
		t.Fatal("DSM variant failed to speed up")
	}
	if yAt(t, mp, 6) >= yAt(t, mp, 1) {
		t.Fatal("MP variant failed to speed up")
	}
}

func TestAblationProtocolOverheadMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationProtocolOverhead(platform.SparcSunOS, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatalf("execution time not monotone in protocol cost: %v", s.Y)
		}
	}
	// The paper's motivation: overhead matters. 16x the cost must hurt
	// noticeably (>20% slower end to end).
	if s.Y[len(s.Y)-1] < s.Y[0]*1.2 {
		t.Fatalf("protocol cost sweep barely matters: %v", s.Y)
	}
}

func TestAblationChunkingRescuesFineGrain(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationChunking(platform.SparcSunOS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	perBlock := seriesByLabel(t, fig.Series, "chunk=1")
	chunked := seriesByLabel(t, fig.Series, "chunk=64")
	if yAt(t, chunked, 6) >= yAt(t, perBlock, 6) {
		t.Fatalf("chunking did not help 4x4 blocks: %v vs %v",
			yAt(t, chunked, 6), yAt(t, perBlock, 6))
	}
	// Chunked 4x4 should actually speed up relative to one processor.
	if yAt(t, chunked, 6) >= yAt(t, chunked, 1) {
		t.Fatal("chunked 4x4 still fails to beat sequential")
	}
}

func TestAblationOrganizationNewBeatsOld(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationOrganization(platform.SparcSunOS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	newOrg := seriesByLabel(t, fig.Series, "new (one process)")
	oldOrg := seriesByLabel(t, fig.Series, "old (kernel via IPC)")
	// The paper: the reorganisation substantially enhances performance.
	for p := 1.0; p <= 6; p++ {
		if yAt(t, newOrg, p) >= yAt(t, oldOrg, p) {
			t.Fatalf("p=%v: new organisation not faster (%v vs %v)",
				p, yAt(t, newOrg, p), yAt(t, oldOrg, p))
		}
	}
	// On purely local fine-grain access (p=1) the enhancement must be an
	// order of magnitude — a function call replaces an IPC round trip.
	if yAt(t, oldOrg, 1) < 5*yAt(t, newOrg, 1) {
		t.Fatalf("p=1 enhancement not substantial: %v vs %v",
			yAt(t, oldOrg, 1), yAt(t, newOrg, 1))
	}
	// And it must still matter (>=15%%) with remote traffic at p=2.
	if yAt(t, oldOrg, 2) < 1.15*yAt(t, newOrg, 2) {
		t.Fatalf("p=2 enhancement too small: %v vs %v",
			yAt(t, oldOrg, 2), yAt(t, newOrg, 2))
	}
}

func TestAblationMediumSwitchBeatsBusAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are seconds-long")
	}
	fig, err := AblationMedium(platform.SparcSunOS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	bus := seriesByLabel(t, fig.Series, "shared bus")
	sw := seriesByLabel(t, fig.Series, "switched")
	// The wire-bound workload must gain clearly (>=8%%) from the switch
	// once several PEs share the LAN.
	if yAt(t, sw, 6) > 0.92*yAt(t, bus, 6) {
		t.Fatalf("switched Ethernet gains too little at p=6: %v vs %v",
			yAt(t, sw, 6), yAt(t, bus, 6))
	}
	// At p=1 everything is local: media must agree exactly.
	if a, b := yAt(t, sw, 1), yAt(t, bus, 1); a != b {
		t.Fatalf("media differ with no traffic: %v vs %v", a, b)
	}
}
