package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// SchedPoint is one leg of the multi-job scheduler load test (dsebench
// -sched): a resident SSI cluster driven by a stream of job submissions,
// reported as throughput, queue-wait distribution and utilization. Like the
// saturation sweep it is wall-clock, so Compare gates it by collapse only.
type SchedPoint struct {
	Leg     string `json:"leg"`     // "burst" (all jobs queued up front) or "poisson"
	Workers int    `json:"workers"` // worker PE count
	Jobs    int    `json:"jobs"`    // jobs submitted

	// RatePerSec is the offered Poisson arrival rate (0 on the burst leg).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`

	JobsPerSec  float64 `json:"jobs_per_sec"`
	WaitP50US   float64 `json:"wait_p50_us"`
	WaitP95US   float64 `json:"wait_p95_us"`
	WaitP99US   float64 `json:"wait_p99_us"`
	Utilization float64 `json:"utilization"`

	MaxQueued   int `json:"max_queued"`   // deepest the queue got
	MaxResident int `json:"max_resident"` // most jobs running concurrently

	Failed     uint64 `json:"failed,omitempty"`
	Violations uint64 `json:"violations"` // cross-namespace rejections; must be 0
}

// schedSpecMix deterministically generates the i-th job spec of a load leg:
// mostly 1-PE touch micro-jobs with a tail of wider gangs, varied quotas
// and priorities — the "thousands of small jobs with a few big ones" shape
// a shared cluster sees.
func schedSpecMix(rng *rand.Rand, i int) sched.JobSpec {
	spec := sched.JobSpec{
		Name:        fmt.Sprintf("j%d", i),
		PEs:         1,
		Workload:    "touch",
		Size:        1,
		QuotaBlocks: 2,
		Priority:    rng.Intn(3),
	}
	switch rng.Intn(10) {
	case 0: // wider gang
		spec.PEs = 2
		spec.QuotaBlocks = 4
	case 1: // bigger footprint
		spec.Size = 2
		spec.QuotaBlocks = 4
	}
	return spec
}

// runSchedLeg drives one load leg against a fresh resident cluster.
// arrival <= 0 queues every job before the cluster starts (the burst leg,
// which is what pushes MaxQueued past the job count); arrival > 0 submits
// with exponential interarrival gaps at that rate while the cluster runs.
func runSchedLeg(leg string, workers, jobs int, arrival float64, seed uint64) (SchedPoint, error) {
	s := sched.NewScheduler(sched.Config{
		Workers:        workers,
		CapacityBlocks: 256,
		Tick:           time.Millisecond,
	})
	rng := rand.New(rand.NewSource(int64(seed) + 1))
	submit := func(i int) error {
		_, err := s.Submit(schedSpecMix(rng, i))
		return err
	}
	if arrival <= 0 {
		for i := 0; i < jobs; i++ {
			if err := submit(i); err != nil {
				return SchedPoint{}, fmt.Errorf("bench: sched %s submit %d: %w", leg, i, err)
			}
		}
	}

	type runOut struct {
		res *core.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := core.Run(s.CoreConfig(), s.Program)
		done <- runOut{res, err}
	}()

	if arrival > 0 {
		for i := 0; i < jobs; i++ {
			if err := submit(i); err != nil {
				return SchedPoint{}, fmt.Errorf("bench: sched %s submit %d: %w", leg, i, err)
			}
			// Exponential interarrival gap at the offered rate.
			gap := time.Duration(rng.ExpFloat64() / arrival * float64(time.Second))
			if gap > 0 {
				time.Sleep(gap)
			}
		}
	}

	// Drain: every submitted job must reach a terminal state.
	deadline := time.Now().Add(5 * time.Minute)
	var st sched.Stats
	for {
		st = s.Stats()
		if st.Done+st.Failed+st.Cancelled >= uint64(jobs) {
			break
		}
		if time.Now().After(deadline) {
			s.Close()
			<-done
			return SchedPoint{}, fmt.Errorf("bench: sched %s: stalled with %d/%d jobs terminal",
				leg, st.Done+st.Failed+st.Cancelled, jobs)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	out := <-done
	if out.err != nil {
		return SchedPoint{}, fmt.Errorf("bench: sched %s: %w", leg, out.err)
	}
	if err := out.res.FirstErr(); err != nil {
		return SchedPoint{}, fmt.Errorf("bench: sched %s: %w", leg, err)
	}

	p := SchedPoint{
		Leg: leg, Workers: workers, Jobs: jobs, RatePerSec: arrival,
		JobsPerSec:  st.JobsPerSec,
		WaitP50US:   st.WaitUS.P50,
		WaitP95US:   st.WaitUS.P95,
		WaitP99US:   st.WaitUS.P99,
		Utilization: st.Utilization,
		MaxQueued:   st.MaxQueued,
		MaxResident: st.MaxResident,
		Failed:      st.Failed,
		Violations:  out.res.Total.NsViolations,
	}
	if p.Violations != 0 {
		return p, fmt.Errorf("bench: sched %s: %d cross-namespace violations (namespace isolation broke)",
			leg, p.Violations)
	}
	if st.Failed != 0 {
		return p, fmt.Errorf("bench: sched %s: %d jobs failed", leg, st.Failed)
	}
	return p, nil
}

// SchedSweep is the dsebench -sched load test: a burst leg that floods the
// queue (thousands of jobs submitted before the cluster starts, verifying
// the scheduler sustains a deep backlog with gangs resident concurrently),
// then a Poisson-arrival leg at a fixed offered rate. Every leg must drain
// with zero failures and zero cross-namespace violations.
func SchedSweep(quick bool, seed uint64) ([]SchedPoint, error) {
	burstJobs, poissonJobs, rate := 4000, 2000, 1500.0
	if quick {
		burstJobs, poissonJobs, rate = 1200, 300, 1500.0
	}
	var pts []SchedPoint
	p, err := runSchedLeg("burst", 4, burstJobs, 0, seed)
	if err != nil {
		return nil, err
	}
	if p.MaxQueued < 1000 {
		return nil, fmt.Errorf("bench: sched burst: max queue depth %d never reached 1000", p.MaxQueued)
	}
	if p.MaxResident < 2 {
		return nil, fmt.Errorf("bench: sched burst: max resident %d, want >= 2 concurrent jobs", p.MaxResident)
	}
	pts = append(pts, p)
	p, err = runSchedLeg("poisson", 4, poissonJobs, rate, seed)
	if err != nil {
		return nil, err
	}
	pts = append(pts, p)
	return pts, nil
}

// SchedTable renders the load-test legs.
func SchedTable(pts []SchedPoint) *trace.Table {
	t := &trace.Table{
		Title: "multi-job scheduler load test (wall clock; dsesched resident cluster)",
		Header: []string{"leg", "workers", "jobs", "rate/s", "jobs/s",
			"wait p50", "wait p95", "wait p99", "util", "max queue", "max resident"},
	}
	us := func(v float64) string {
		if v >= 1000 {
			return fmt.Sprintf("%.1fms", v/1000)
		}
		return fmt.Sprintf("%.0fus", v)
	}
	for _, p := range pts {
		rate := "-"
		if p.RatePerSec > 0 {
			rate = fmt.Sprintf("%.0f", p.RatePerSec)
		}
		t.AddRow(p.Leg, fmt.Sprintf("%d", p.Workers), fmt.Sprintf("%d", p.Jobs), rate,
			fmt.Sprintf("%.0f", p.JobsPerSec),
			us(p.WaitP50US), us(p.WaitP95US), us(p.WaitP99US),
			fmt.Sprintf("%.0f%%", 100*p.Utilization),
			fmt.Sprintf("%d", p.MaxQueued), fmt.Sprintf("%d", p.MaxResident))
	}
	return t
}

// schedKey names a load-test leg for baseline matching.
func schedKey(p *SchedPoint) string {
	rate := ""
	if p.RatePerSec > 0 {
		rate = fmt.Sprintf("/r%.0f", math.Round(p.RatePerSec))
	}
	return fmt.Sprintf("%s/w%d%s", p.Leg, p.Workers, rate)
}
