package bench

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
)

// shapeScale is big enough for the paper's qualitative claims to emerge
// but small enough for CI. Skipped under -short.
func shapeScale() Scale {
	return Scale{
		MaxPE:         8,
		GaussNs:       []int{100, 600},
		DCTImage:      128,
		DCTBlocks:     []int{4, 16},
		OthelloDepths: []int{3, 6},
		KnightJobs:    []int{2, 16},
		Seed:          1,
	}
}

func seriesByLabel(t *testing.T, ss []trace.Series, label string) trace.Series {
	t.Helper()
	for _, s := range ss {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("no series %q in %v", label, ss)
	return trace.Series{}
}

// yAt returns the series value at x, failing if absent.
func yAt(t *testing.T, s trace.Series, x float64) float64 {
	t.Helper()
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	t.Fatalf("series %q has no x=%v", s.Label, x)
	return 0
}

// Paper claim (Figs 4-9): small systems do not speed up; large systems
// improve up to 5-6 processors and degrade beyond the six physical
// machines.
func TestShapeGaussSeidel(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	_, speedup, err := GaussFigures(platform.SparcSunOS, shapeScale())
	if err != nil {
		t.Fatal(err)
	}
	small := seriesByLabel(t, speedup.Series, "N=100")
	large := seriesByLabel(t, speedup.Series, "N=600")
	if small.MaxY() >= 1.2 {
		t.Fatalf("N=100 speed-up %v; paper: no efficient parallel processing for small N", small.MaxY())
	}
	if large.MaxY() < 2 {
		t.Fatalf("N=600 peak speed-up %v; paper: clear improvement for large N", large.MaxY())
	}
	peakAt := large.ArgMaxY()
	if peakAt < 4 || peakAt > 6 {
		t.Fatalf("N=600 peaks at %v processors; paper: improvement with 5-6", peakAt)
	}
	if deg := yAt(t, large, 8); deg >= large.MaxY() {
		t.Fatalf("no degradation past 6 processors: peak %v, p=8 %v", large.MaxY(), deg)
	}
}

// Paper claim (Figs 10-15): speed-up improves with processors for every
// block size except 4x4, which is communication-bound.
func TestShapeDCT(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	_, speedup, err := DCTFigures(platform.PentiumIILinux, shapeScale())
	if err != nil {
		t.Fatal(err)
	}
	small := seriesByLabel(t, speedup.Series, "4x4")
	big := seriesByLabel(t, speedup.Series, "16x16")
	if small.MaxY() >= 1.3 {
		t.Fatalf("4x4 speed-up %v; paper: no improvement for the smallest block", small.MaxY())
	}
	if big.MaxY() < 2.5 {
		t.Fatalf("16x16 peak speed-up %v; paper: good speed-up for larger blocks", big.MaxY())
	}
	if big.MaxY() <= small.MaxY() {
		t.Fatal("block-size ordering inverted")
	}
}

// Paper claim (Figs 16-18): shallow searches show no improvement; deeper
// searches clearly do.
func TestShapeOthello(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	fig, err := OthelloFigure(platform.RS6000AIX, shapeScale())
	if err != nil {
		t.Fatal(err)
	}
	shallow := seriesByLabel(t, fig.Series, "Depth3")
	deep := seriesByLabel(t, fig.Series, "Depth6")
	if shallow.MaxY() >= 1.5 {
		t.Fatalf("depth-3 improvement %v; paper: none at shallow depths", shallow.MaxY())
	}
	if deep.MaxY() < 2.5 {
		t.Fatalf("depth-6 improvement %v; paper: parallelism pays off when deep", deep.MaxY())
	}
}

// Paper claim (Figs 19-21): few jobs cap the speed-up (execution time goes
// flat); a moderate job count is fastest; execution degrades past the six
// physical machines.
func TestShapeKnight(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	fig, err := KnightFigure(platform.SparcSunOS, shapeScale())
	if err != nil {
		t.Fatal(err)
	}
	two := seriesByLabel(t, fig.Series, "2_Jobs")
	sixteen := seriesByLabel(t, fig.Series, "16_Jobs")
	// With 2 jobs, 2 processors and 8 processors must take about the same
	// time (the extra processors starve).
	t2, t8 := yAt(t, two, 2), yAt(t, two, 8)
	if t8 < 0.8*t2 {
		t.Fatalf("2-job run kept speeding up (p=2: %v, p=8: %v)", t2, t8)
	}
	// 16 jobs at p=6 must clearly beat 2 jobs at p=6.
	if yAt(t, sixteen, 6) >= yAt(t, two, 6) {
		t.Fatal("finer split did not beat the 2-job split at p=6")
	}
	// Degradation past the physical machines: p=7..8 is not faster than p=6.
	if yAt(t, sixteen, 8) < yAt(t, sixteen, 6) {
		t.Fatalf("16-job run still improving past 6 processors (p=6 %v, p=8 %v)",
			yAt(t, sixteen, 6), yAt(t, sixteen, 8))
	}
}

// Platform portability claim: the same experiment shows the same pattern
// on all three environments (here: Othello depth-6 speeds up everywhere).
func TestShapePortabilityAcrossPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	sc := shapeScale()
	sc.MaxPE = 6
	sc.OthelloDepths = []int{6}
	for _, pl := range platform.All() {
		fig, err := OthelloFigure(pl, sc)
		if err != nil {
			t.Fatalf("%s: %v", pl.Numeric, err)
		}
		if peak := fig.Series[0].MaxY(); peak < 2 {
			t.Fatalf("%s: depth-6 peak %v; portability claim expects similar patterns", pl.Numeric, peak)
		}
	}
}

// Future-work portability: the fourth (non-Table-1) platform must show
// the same qualitative pattern as the paper's three.
func TestShapeFutureWorkPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are seconds-long")
	}
	sc := shapeScale()
	sc.MaxPE = 6
	sc.OthelloDepths = []int{6}
	fig, err := OthelloFigure(platform.SolarisUltra, sc)
	if err != nil {
		t.Fatal(err)
	}
	if peak := fig.Series[0].MaxY(); peak < 2 {
		t.Fatalf("solaris: depth-6 peak %v; portability should extend to new platforms", peak)
	}
}
