package bench

import (
	"fmt"
	"io"

	"repro/internal/apps/gauss"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// TraceGauss runs the Gauss-Seidel solver with span tracing enabled and
// writes the run as Chrome trace_event JSON (chrome://tracing, Perfetto).
// It returns the run result so callers can cross-check span coverage.
func TraceGauss(pl *platform.Platform, n, npe int, seed uint64, w io.Writer) (*core.Result, error) {
	res, err := core.Run(core.Config{
		NumPE:        npe,
		Platform:     pl,
		Seed:         seed,
		GMBlockWords: gaussBlockWords,
		Tracing:      trace.TracingConfig{Enabled: true, RingSize: 1 << 16},
	}, func(pe *core.PE) error {
		_, err := gauss.Parallel(pe, gauss.Params{N: n, Seed: seed})
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := res.FirstErr(); err != nil {
		return nil, err
	}
	if err := res.WriteChromeTrace(w); err != nil {
		return nil, fmt.Errorf("exporting trace: %w", err)
	}
	return res, nil
}
