package bench

import (
	"fmt"

	"repro/internal/apps/gauss"
	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file holds the consistency-tier ablation (DESIGN.md §14,
// EXPERIMENTS.md): the gauss sweep measured under each per-allocation
// consistency mode, in two variants.
//
// The hand-vectored gauss.Parallel publishes each sweep's rows with one
// block write — it is already write-combined at the application level, so
// its message count is expected to be mode-invariant (the tiers must not
// ADD traffic). The fine-grained variant below publishes row by row and
// reads the vector word by word — the textbook structure release
// consistency and read leases exist for: the WC buffer coalesces the
// per-row writes into one flush per home per sweep, and leases collapse
// the per-word reads into one grant per block per sweep.

// tierGaussN and tierGaussPE pin the ablation point from the experiment
// plan: gauss N=300 at p=4.
const (
	tierGaussN  = 300
	tierGaussPE = 4
)

// tierGaussSweeps fixes the fine-grained variant's sweep count so message
// counts are a closed-form function of the mode, not of convergence noise.
const tierGaussSweeps = 6

// gaussFine runs the fine-grained gauss sweep (gauss.ParallelFine) with the
// shared vector allocated under mode.
func gaussFine(pe *core.PE, mode gmem.Mode, seed uint64) error {
	_, err := gauss.ParallelFine(pe, gauss.Params{N: tierGaussN, Seed: seed}, mode, tierGaussSweeps)
	return err
}

// TierMetrics is one row of the consistency-tier ablation: one gauss
// variant under one mode.
type TierMetrics struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"` // "strong", "release" or "lease"
	NumPE    int    `json:"num_pe"`

	ElapsedUS int64  `json:"elapsed_us"`
	MsgsSent  uint64 `json:"msgs_sent"`
	BytesSent uint64 `json:"bytes_sent"`
	LocalGM   uint64 `json:"local_gm"`
	RemoteGM  uint64 `json:"remote_gm"`

	// MsgsPerOp normalises sent messages by global-memory operations — the
	// per-tier cost figure the regression gate tracks.
	MsgsPerOp float64 `json:"msgs_per_op"`

	// Tier machinery counters (zero under strong).
	WCFlushes     uint64 `json:"wc_flushes,omitempty"`
	LeaseGrants   uint64 `json:"lease_grants,omitempty"`
	LeaseExpiries uint64 `json:"lease_expiries,omitempty"`
}

func tierKey(t *TierMetrics) string {
	return fmt.Sprintf("%s/%s/p%d", t.Workload, t.Mode, t.NumPE)
}

var tierModes = []struct {
	name string
	mode gmem.Mode
}{
	{"strong", gmem.ModeStrong},
	{"release", gmem.ModeRelease},
	{"lease", gmem.ModeLease},
}

// measureTier runs one gauss variant under one mode and fills a row.
func measureTier(pl *platform.Platform, seed uint64, workload string, mode int,
	cfg core.Config, body core.Program) (TierMetrics, error) {
	res, err := core.Run(cfg, body)
	if err != nil {
		return TierMetrics{}, fmt.Errorf("%s/%s: %w", workload, tierModes[mode].name, err)
	}
	if err := res.FirstErr(); err != nil {
		return TierMetrics{}, fmt.Errorf("%s/%s: %w", workload, tierModes[mode].name, err)
	}
	m := TierMetrics{
		Workload:  workload,
		Mode:      tierModes[mode].name,
		NumPE:     cfg.NumPE,
		ElapsedUS: int64(res.Elapsed / sim.Microsecond),
		MsgsSent:  res.Total.MsgsSent,
		BytesSent: res.Total.BytesSent,
		LocalGM:   res.Total.LocalGM,
		RemoteGM:  res.Total.RemoteGM,

		WCFlushes:     res.Total.WCFlushes,
		LeaseGrants:   res.Total.LeaseGrants,
		LeaseExpiries: res.Total.LeaseExpiries,
	}
	if ops := res.Total.LocalGM + res.Total.RemoteGM; ops > 0 {
		m.MsgsPerOp = float64(res.Total.MsgsSent) / float64(ops)
	}
	return m, nil
}

// ConsistencyTierProfile measures the gauss N=300 p=4 point under every
// consistency mode, for both the hand-vectored solver and the fine-grained
// variant: the data behind the EXPERIMENTS.md per-tier ablation table and
// the snapshot's regression-gated tier rows.
func ConsistencyTierProfile(pl *platform.Platform, seed uint64) ([]TierMetrics, error) {
	var rows []TierMetrics
	for mi, tm := range tierModes {
		// Vectored gauss.Parallel allocates with the default mode, so the
		// tier is selected via Config.GMDefaultMode.
		cfg := core.Config{
			NumPE: tierGaussPE, Platform: pl, Seed: seed,
			GMBlockWords: gaussBlockWords, GMDefaultMode: tm.mode,
		}
		row, err := measureTier(pl, seed, fmt.Sprintf("gauss N=%d", tierGaussN), mi, cfg,
			func(pe *core.PE) error {
				_, err := gauss.Parallel(pe, gauss.Params{N: tierGaussN, Seed: seed})
				return err
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)

		// Fine-grained variant: the mode rides on the allocation itself.
		mode := tm.mode
		cfg = core.Config{
			NumPE: tierGaussPE, Platform: pl, Seed: seed,
			GMBlockWords: gaussBlockWords,
		}
		row, err = measureTier(pl, seed, fmt.Sprintf("gauss-fine N=%d", tierGaussN), mi, cfg,
			func(pe *core.PE) error { return gaussFine(pe, mode, seed) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TierTable renders the ablation rows as the EXPERIMENTS.md table.
func TierTable(rows []TierMetrics) *trace.Table {
	t := &trace.Table{
		Title: fmt.Sprintf("consistency-tier ablation, gauss N=%d p=%d (vectored and fine-grained)",
			tierGaussN, tierGaussPE),
		Header: []string{"workload", "mode", "msgs", "bytes", "msgs/op", "elapsed", "wc-flushes", "lease-grants", "lease-expiries"},
	}
	for i := range rows {
		r := &rows[i]
		t.AddRow(r.Workload, r.Mode,
			fmt.Sprintf("%d", r.MsgsSent),
			fmt.Sprintf("%d", r.BytesSent),
			fmt.Sprintf("%.3f", r.MsgsPerOp),
			(sim.Duration(r.ElapsedUS) * sim.Microsecond).String(),
			fmt.Sprintf("%d", r.WCFlushes),
			fmt.Sprintf("%d", r.LeaseGrants),
			fmt.Sprintf("%d", r.LeaseExpiries))
	}
	return t
}
