package bench

import (
	"fmt"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// MessageProfile runs the two data-parallel reference workloads on the
// simulated cluster and reports the cluster-wide per-op message traffic:
// which protocol operations carry the communication, and how scalar
// read/write requests trade against the vectored (scatter/gather) ones.
func MessageProfile(pl *platform.Platform, npe int, seed uint64) ([]*trace.Table, error) {
	type workload struct {
		name       string
		blockWords int
		body       func(pe *core.PE) error
	}
	workloads := []workload{
		{
			// Default (32-word) DSM blocks: the shared vector then spans
			// several blocks per home and the row fetch rides the vectored
			// read path, visible below as read-v displacing scalar reads.
			name: fmt.Sprintf("gauss N=300 p=%d", npe),
			body: func(pe *core.PE) error {
				_, err := gauss.Parallel(pe, gauss.Params{N: 300, Seed: seed})
				return err
			},
		},
		{
			name: fmt.Sprintf("dct 256/8 p=%d", npe),
			body: func(pe *core.PE) error {
				_, err := dct.Parallel(pe, dct.Params{ImageN: 256, Block: 8, Rate: 0.5, Seed: seed})
				return err
			},
		},
	}
	var tables []*trace.Table
	for _, w := range workloads {
		res, err := core.Run(core.Config{
			NumPE:        npe,
			Platform:     pl,
			Seed:         seed,
			GMBlockWords: w.blockWords,
		}, w.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		if err := res.FirstErr(); err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		title := fmt.Sprintf("message profile, %s on %s (total %d msgs, %d bytes)",
			w.name, pl.Numeric, res.Total.MsgsSent, res.Total.BytesSent)
		tables = append(tables, res.Total.OpTable(title))
	}
	return tables, nil
}
