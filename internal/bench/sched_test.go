package bench

import (
	"strings"
	"testing"
)

// TestSchedSweepQuick runs the quick scheduler load test end to end: the
// burst leg must reach a 1000-deep queue with concurrent residency, every
// job must drain cleanly, and no cross-namespace violation may occur (the
// sweep itself errors on any).
func TestSchedSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	pts, err := SchedSweep(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d legs, want 2", len(pts))
	}
	for _, p := range pts {
		if p.JobsPerSec <= 0 {
			t.Errorf("leg %s: jobs/s = %v, want > 0", p.Leg, p.JobsPerSec)
		}
		if p.Violations != 0 {
			t.Errorf("leg %s: %d namespace violations", p.Leg, p.Violations)
		}
	}
	if pts[0].MaxQueued < 1000 {
		t.Errorf("burst max queue = %d, want >= 1000", pts[0].MaxQueued)
	}
	var b strings.Builder
	SchedTable(pts).Fprint(&b)
	out := b.String()
	for _, want := range []string{"burst", "poisson", "jobs/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
