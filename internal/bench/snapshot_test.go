package bench

import (
	"path/filepath"
	"testing"

	"repro/internal/platform"
)

// tinyScale keeps the snapshot test fast: minimal workload sizes.
func tinyScale() Scale {
	return Scale{GaussNs: []int{30, 60}, Seed: 1}
}

func TestBuildSnapshotAndRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot build runs all four apps")
	}
	snap, err := BuildSnapshot(platform.SparcSunOS, tinyScale(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version %d", snap.SchemaVersion)
	}
	if len(snap.Workloads) != 4 {
		t.Fatalf("%d workloads, want 4", len(snap.Workloads))
	}
	for _, w := range snap.Workloads {
		if w.ElapsedUS <= 0 || w.MsgsSent == 0 || len(w.PerOp) == 0 {
			t.Fatalf("workload %q implausible: %+v", w.Name, w)
		}
		if w.RTT.Count == 0 || w.RTT.P95 <= 0 {
			t.Fatalf("workload %q missing RTT summary: %+v", w.Name, w.RTT)
		}
		if w.Retries != 0 || w.CorruptDrops != 0 {
			t.Fatalf("workload %q saw reliability events on simnet: %+v", w.Name, w)
		}
	}
	if len(snap.Speedup) != 3 || snap.Speedup[0].Ratio != 1 {
		t.Fatalf("speedup curve: %+v", snap.Speedup)
	}
	for _, p := range snap.Speedup {
		// A tiny communication-bound problem need not speed up, but the
		// ratio must be a sane positive number.
		if p.Ratio <= 0 {
			t.Fatalf("speedup curve: %+v", snap.Speedup)
		}
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := snap.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Workloads[0].MsgsSent != snap.Workloads[0].MsgsSent {
		t.Fatal("round trip lost data")
	}
}

func TestLoadSnapshotRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	s := &Snapshot{SchemaVersion: SnapshotSchemaVersion + 1}
	if err := s.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("unknown schema version must be rejected")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Workloads: []WorkloadMetrics{{
			Name: "gauss N=120", NumPE: 4,
			MsgsSent: 1000, BytesSent: 50000,
			AllocPerRemoteOp: 1.0,
			RTT:              LatencySummary{Count: 100, P95: 200},
			PerOp:            map[string]OpMetrics{"read": {Msgs: 400}, "read-v": {Msgs: 50}},
		}},
	}
	clone := func() *Snapshot {
		c := *base
		c.Workloads = append([]WorkloadMetrics(nil), base.Workloads...)
		w := &c.Workloads[0]
		w.PerOp = map[string]OpMetrics{}
		for k, v := range base.Workloads[0].PerOp {
			w.PerOp[k] = v
		}
		return &c
	}

	if regs := Compare(base, clone()); len(regs) != 0 {
		t.Fatalf("identical snapshots flagged: %v", regs)
	}

	// Within tolerance: +5% messages, alloc within epsilon.
	ok := clone()
	ok.Workloads[0].MsgsSent = 1050
	ok.Workloads[0].AllocPerRemoteOp = 1.4
	if regs := Compare(base, ok); len(regs) != 0 {
		t.Fatalf("within-tolerance changes flagged: %v", regs)
	}

	// Regressions: +20% total msgs, +50% of one op, worse p95, alloc blowup.
	bad := clone()
	bad.Workloads[0].MsgsSent = 1200
	bad.Workloads[0].PerOp["read"] = OpMetrics{Msgs: 600}
	bad.Workloads[0].RTT.P95 = 300
	bad.Workloads[0].AllocPerRemoteOp = 3.0
	regs := Compare(base, bad)
	if len(regs) != 4 {
		t.Fatalf("want 4 regressions, got %d: %v", len(regs), regs)
	}

	// A missing workload is itself a regression.
	gone := clone()
	gone.Workloads[0].Name = "renamed"
	if regs := Compare(base, gone); len(regs) != 1 {
		t.Fatalf("missing workload: %v", regs)
	}
}

// TestCompareSaturationFloor pins the wide-margin rule for wall-clock
// saturation points: drops above 40% of baseline are noise, a collapse below
// it is a regression, and points missing from either side are ignored
// (pre-sweep baselines, or a run without -saturate).
func TestCompareSaturationFloor(t *testing.T) {
	pt := func(ops float64) SaturationPoint {
		return SaturationPoint{Workload: "read", NumPE: 8, Shards: 4, OpsPerSec: ops}
	}
	base := &Snapshot{Saturation: []SaturationPoint{pt(1000000)}}

	if regs := Compare(base, &Snapshot{Saturation: []SaturationPoint{pt(500000)}}); len(regs) != 0 {
		t.Fatalf("half-speed point flagged despite 40%% floor: %v", regs)
	}
	if regs := Compare(base, &Snapshot{Saturation: []SaturationPoint{pt(100000)}}); len(regs) != 1 {
		t.Fatalf("collapsed point not flagged: %v", regs)
	}
	if regs := Compare(base, &Snapshot{}); len(regs) != 0 {
		t.Fatalf("absent sweep flagged: %v", regs)
	}
	if regs := Compare(&Snapshot{}, &Snapshot{Saturation: []SaturationPoint{pt(1)}}); len(regs) != 0 {
		t.Fatalf("baseline without sweep flagged: %v", regs)
	}
}

// TestMeasureSaturationSmoke runs one tiny saturation point end to end and
// sanity-checks the resulting cell.
func TestMeasureSaturationSmoke(t *testing.T) {
	p, err := MeasureSaturation(SaturationOptions{NumPE: 4, Shards: 2, OpsPerPE: 200})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops != 600 || p.OpsPerSec <= 0 {
		t.Fatalf("implausible point: %+v", p)
	}
	if !p.Direct || p.DirectGM == 0 {
		t.Fatalf("direct window expected on by default at shards=2: %+v", p)
	}
	p2, err := MeasureSaturation(SaturationOptions{NumPE: 4, Shards: 1, OpsPerPE: 200, DirectReads: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Direct || p2.DirectGM != 0 {
		t.Fatalf("direct window active when forced off: %+v", p2)
	}
}
