package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleFigure() *Figure {
	return &Figure{
		ID:     "Figure 5",
		Title:  "demo",
		XLabel: "procs",
		YLabel: "speedup",
		Series: []trace.Series{
			{Label: "N=100", X: []float64{1, 2, 3}, Y: []float64{1, 1.5, 1.8}},
			{Label: "N=200", X: []float64{1, 2}, Y: []float64{1, 1.7}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "procs,N=100,N=200" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	if lines[2] != "2,1.5,1.7" {
		t.Fatalf("row 2 = %q", lines[2])
	}
	// Short series leaves the cell empty.
	if lines[3] != "3,1.8," {
		t.Fatalf("row 3 = %q", lines[3])
	}
}

func TestSaveCSVCreatesSluggedFile(t *testing.T) {
	dir := t.TempDir()
	path, err := sampleFigure().SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "figure-5.csv" {
		t.Fatalf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "procs,") {
		t.Fatalf("file content %q", data)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Figure 5":     "figure-5",
		"Ablation A1":  "ablation-a1",
		"  odd--name ": "odd-name",
		"":             "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Fatalf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSVEmptyFigure(t *testing.T) {
	f := &Figure{ID: "x", XLabel: "x"}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "x" {
		t.Fatalf("empty figure CSV = %q", b.String())
	}
}
