// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Table 1-2, Figures 4-21) by
// running the four applications on the simulated cluster across the three
// platforms and printing the same rows/series the paper plots. The
// per-experiment parameter choices are documented in DESIGN.md §4 and
// EXPERIMENTS.md.
package bench

import (
	"fmt"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/apps/knight"
	"repro/internal/apps/othello"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scale sets experiment sizes. Full reproduces the paper's ranges; Quick
// shrinks them for tests and smoke runs.
type Scale struct {
	MaxPE         int   // processors swept 1..MaxPE
	GaussNs       []int // system dimensions
	DCTImage      int   // image edge
	DCTBlocks     []int // block edges
	OthelloDepths []int
	KnightJobs    []int
	Seed          uint64
}

// FullScale reproduces the paper's parameter ranges.
func FullScale() Scale {
	return Scale{
		MaxPE:         10,
		GaussNs:       []int{100, 200, 300, 400, 500, 600, 700, 800, 900},
		DCTImage:      256,
		DCTBlocks:     []int{4, 8, 16, 32},
		OthelloDepths: []int{3, 4, 5, 6, 7, 8},
		KnightJobs:    []int{2, 8, 16, 64},
		Seed:          1,
	}
}

// QuickScale shrinks everything for fast smoke runs and tests.
func QuickScale() Scale {
	return Scale{
		MaxPE:         6,
		GaussNs:       []int{60, 120, 240},
		DCTImage:      64,
		DCTBlocks:     []int{4, 8, 16},
		OthelloDepths: []int{3, 4, 5},
		KnightJobs:    []int{2, 8, 16},
		Seed:          1,
	}
}

// Figure is one reproduced paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []trace.Series
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *trace.Table {
	return trace.SeriesTable(fmt.Sprintf("%s: %s", f.ID, f.Title), f.XLabel, "%.4g", f.Series)
}

// gaussBlockWords sizes the DSM blocks for the numeric solver: 2 KiB
// transfer units, page-like granularity for vector exchange.
const gaussBlockWords = 256

// runParallel executes body on a simulated cluster and returns PE 0's
// reported app-level elapsed time.
func runParallel(pl *platform.Platform, npe int, seed uint64, blockWords int,
	body func(pe *core.PE) (sim.Duration, error)) (sim.Duration, error) {
	var elapsed sim.Duration
	res, err := core.Run(core.Config{
		NumPE:        npe,
		Platform:     pl,
		Seed:         seed,
		GMBlockWords: blockWords,
	}, func(pe *core.PE) error {
		d, err := body(pe)
		if err != nil {
			return err
		}
		if pe.ID() == 0 {
			elapsed = d
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := res.FirstErr(); err != nil {
		return 0, err
	}
	return elapsed, nil
}

// processors returns the swept processor counts 1..max.
func processors(max int) []int {
	ps := make([]int, max)
	for i := range ps {
		ps[i] = i + 1
	}
	return ps
}

// --- Gauss-Seidel: Figures 4-9 ---

// gaussElapsed times one (platform, N, p) cell.
func gaussElapsed(pl *platform.Platform, n, npe int, seed uint64) (sim.Duration, error) {
	return runParallel(pl, npe, seed, gaussBlockWords, func(pe *core.PE) (sim.Duration, error) {
		r, err := gauss.Parallel(pe, gauss.Params{N: n, Seed: seed})
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	})
}

// GaussFigures reproduces the platform's execution-time figure (x = system
// dimension, one series per processor count) and speed-up figure (x =
// processors, one series per dimension): Figures 4/5 (SunOS), 6/7 (AIX),
// 8/9 (Linux).
func GaussFigures(pl *platform.Platform, sc Scale) (timeFig, speedupFig *Figure, err error) {
	ps := processors(sc.MaxPE)
	// elapsed[pi][ni]
	elapsed := make([][]sim.Duration, len(ps))
	for pi, p := range ps {
		elapsed[pi] = make([]sim.Duration, len(sc.GaussNs))
		for ni, n := range sc.GaussNs {
			if n < p {
				continue
			}
			d, err := gaussElapsed(pl, n, p, sc.Seed)
			if err != nil {
				return nil, nil, fmt.Errorf("gauss %s N=%d p=%d: %w", pl.Numeric, n, p, err)
			}
			elapsed[pi][ni] = d
		}
	}
	timeFig = &Figure{
		Title:  fmt.Sprintf("Gauss-Seidel execution time, %s", pl),
		XLabel: "N-dimension", YLabel: "execution time [s]",
	}
	for pi, p := range ps {
		s := trace.Series{Label: fmt.Sprintf("%dproc", p)}
		for ni, n := range sc.GaussNs {
			s.Append(float64(n), elapsed[pi][ni].Seconds())
		}
		timeFig.Series = append(timeFig.Series, s)
	}
	speedupFig = &Figure{
		Title:  fmt.Sprintf("Gauss-Seidel speed-up, %s", pl),
		XLabel: "number of processors", YLabel: "speed improvement ratio",
	}
	for ni, n := range sc.GaussNs {
		s := trace.Series{Label: fmt.Sprintf("N=%d", n)}
		for pi, p := range ps {
			if elapsed[pi][ni] == 0 {
				continue
			}
			s.Append(float64(p), float64(elapsed[0][ni])/float64(elapsed[pi][ni]))
		}
		speedupFig.Series = append(speedupFig.Series, s)
	}
	return timeFig, speedupFig, nil
}

// --- DCT-II: Figures 10-15 ---

func dctElapsed(pl *platform.Platform, image, block, npe int, seed uint64) (sim.Duration, error) {
	return runParallel(pl, npe, seed, 0, func(pe *core.PE) (sim.Duration, error) {
		r, err := dct.Parallel(pe, dct.Params{ImageN: image, Block: block, Rate: 0.5, Seed: seed})
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	})
}

// DCTFigures reproduces the platform's DCT-II execution-time and speed-up
// figures (x = processors, one series per block size, 50% compression):
// Figures 10/11 (SunOS), 12/13 (AIX), 14/15 (Linux).
func DCTFigures(pl *platform.Platform, sc Scale) (timeFig, speedupFig *Figure, err error) {
	ps := processors(sc.MaxPE)
	timeFig = &Figure{
		Title:  fmt.Sprintf("DCT-II execution time (%dx%d image, 50%% rate), %s", sc.DCTImage, sc.DCTImage, pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	speedupFig = &Figure{
		Title:  fmt.Sprintf("DCT-II speed-up (%dx%d image, 50%% rate), %s", sc.DCTImage, sc.DCTImage, pl),
		XLabel: "number of processors", YLabel: "speed improvement ratio",
	}
	for _, b := range sc.DCTBlocks {
		ts := trace.Series{Label: fmt.Sprintf("%dx%d", b, b)}
		ss := trace.Series{Label: fmt.Sprintf("%dx%d", b, b)}
		var base sim.Duration
		for _, p := range ps {
			d, err := dctElapsed(pl, sc.DCTImage, b, p, sc.Seed)
			if err != nil {
				return nil, nil, fmt.Errorf("dct %s B=%d p=%d: %w", pl.Numeric, b, p, err)
			}
			if p == 1 {
				base = d
			}
			ts.Append(float64(p), d.Seconds())
			ss.Append(float64(p), float64(base)/float64(d))
		}
		timeFig.Series = append(timeFig.Series, ts)
		speedupFig.Series = append(speedupFig.Series, ss)
	}
	return timeFig, speedupFig, nil
}

// --- Othello: Figures 16-18 ---

func othelloElapsed(pl *platform.Platform, depth, npe int, seed uint64) (sim.Duration, error) {
	return runParallel(pl, npe, seed, 0, func(pe *core.PE) (sim.Duration, error) {
		r, err := othello.Parallel(pe, othello.Params{Depth: depth})
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	})
}

// OthelloFigure reproduces the platform's Othello figure (x = processors,
// one speed-up series per search depth): Figures 16 (SunOS), 17 (AIX),
// 18 (Linux).
func OthelloFigure(pl *platform.Platform, sc Scale) (*Figure, error) {
	ps := processors(sc.MaxPE)
	fig := &Figure{
		Title:  fmt.Sprintf("Othello game speed-up by search depth, %s", pl),
		XLabel: "number of processors", YLabel: "execution improvement ratio",
	}
	for _, depth := range sc.OthelloDepths {
		s := trace.Series{Label: fmt.Sprintf("Depth%d", depth)}
		var base sim.Duration
		for _, p := range ps {
			d, err := othelloElapsed(pl, depth, p, sc.Seed)
			if err != nil {
				return nil, fmt.Errorf("othello %s depth=%d p=%d: %w", pl.Numeric, depth, p, err)
			}
			if p == 1 {
				base = d
			}
			s.Append(float64(p), float64(base)/float64(d))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- Knight's Tour: Figures 19-21 ---

func knightElapsed(pl *platform.Platform, jobs, npe int, seed uint64) (sim.Duration, error) {
	return runParallel(pl, npe, seed, 0, func(pe *core.PE) (sim.Duration, error) {
		r, err := knight.Parallel(pe, knight.Params{BoardN: 5, Jobs: jobs})
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	})
}

// KnightFigure reproduces the platform's Knight's-Tour figure (x =
// processors, one execution-time series per job count, 5x5 board):
// Figures 19 (SunOS), 20 (AIX), 21 (Linux).
func KnightFigure(pl *platform.Platform, sc Scale) (*Figure, error) {
	ps := processors(sc.MaxPE)
	fig := &Figure{
		Title:  fmt.Sprintf("Knight's Tour execution time by job count (5x5), %s", pl),
		XLabel: "number of processors", YLabel: "execution time [s]",
	}
	for _, jobs := range sc.KnightJobs {
		s := trace.Series{Label: fmt.Sprintf("%d_Jobs", jobs)}
		for _, p := range ps {
			d, err := knightElapsed(pl, jobs, p, sc.Seed)
			if err != nil {
				return nil, fmt.Errorf("knight %s jobs=%d p=%d: %w", pl.Numeric, jobs, p, err)
			}
			s.Append(float64(p), d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- Tables ---

// Table1 reproduces paper Table 1: the experiment environments.
func Table1() *trace.Table {
	t := &trace.Table{
		Title:  "Table 1: Experiments environments",
		Header: []string{"Machine", "OS", "CPU MHz", "ops/s", "syscall", "proto/msg", "net"},
	}
	for _, pl := range platform.All() {
		t.AddRow(pl.Name, pl.OS,
			fmt.Sprintf("%.0f", pl.CPUMHz),
			fmt.Sprintf("%.0fM", pl.OpsPerSec/1e6),
			pl.SyscallOverhead.String(),
			pl.ProtoPerMessage.String(),
			fmt.Sprintf("%d Mbps shared Ethernet", pl.NetBandwidthBps/1_000_000))
	}
	return t
}

// Table2 reproduces paper Table 2: how many DSE kernels each of the six
// physical machines hosts as the requested processor count grows.
func Table2(maxProcs int) *trace.Table {
	t := &trace.Table{
		Title:  "Table 2: Virtual cluster construction on 6 machines",
		Header: []string{"processors", "machines used", "max kernels/machine", "mean kernels/machine"},
	}
	for _, r := range platform.Table2(maxProcs) {
		t.AddRow(
			fmt.Sprintf("%d", r.Processors),
			fmt.Sprintf("%d", r.MachinesUsed),
			fmt.Sprintf("%d", r.MaxPerMachine),
			fmt.Sprintf("%.2f", r.MeanPerMachine))
	}
	return t
}

// platformForFigure maps a paper figure number to its platform.
func platformForFigure(n int) *platform.Platform {
	switch {
	case n == 4 || n == 5 || n == 10 || n == 11 || n == 16 || n == 19:
		return platform.SparcSunOS
	case n == 6 || n == 7 || n == 12 || n == 13 || n == 17 || n == 20:
		return platform.RS6000AIX
	default:
		return platform.PentiumIILinux
	}
}

// FigureByNumber regenerates paper figure n (4..21).
func FigureByNumber(n int, sc Scale) (*Figure, error) {
	pl := platformForFigure(n)
	var fig *Figure
	var err error
	switch n {
	case 4, 6, 8:
		fig, _, err = GaussFigures(pl, sc)
	case 5, 7, 9:
		_, fig, err = GaussFigures(pl, sc)
	case 10, 12, 14:
		fig, _, err = DCTFigures(pl, sc)
	case 11, 13, 15:
		_, fig, err = DCTFigures(pl, sc)
	case 16, 17, 18:
		fig, err = OthelloFigure(pl, sc)
	case 19, 20, 21:
		fig, err = KnightFigure(pl, sc)
	default:
		return nil, fmt.Errorf("bench: no figure %d in the paper's evaluation (4..21)", n)
	}
	if err != nil {
		return nil, err
	}
	fig.ID = fmt.Sprintf("Figure %d", n)
	return fig, nil
}

// AllFigureNumbers lists the paper's evaluation figures.
func AllFigureNumbers() []int {
	return []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
}
