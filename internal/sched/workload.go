package sched

import (
	"fmt"
	"sort"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/apps/knight"
	"repro/internal/core"
)

// A workloadFn runs one job member. It receives the job's Proc view (ranks,
// namespace-bounded memory, private sync ids) and the spec's Size knob.
type workloadFn func(p core.Proc, size int) error

// workloads is the registry of programs a job spec can name. Every entry is
// written against core.Proc, so the same kernels also run as whole-cluster
// programs; sizes are kept small — a scheduler job is a tenant, not a
// dedicated benchmark run.
var workloads = map[string]workloadFn{
	// touch is the micro-workload for load generation: carve a per-rank
	// stripe of size*8 words (default size 4) from the job quota, write it
	// and read it back through global memory, with a gang barrier on both
	// sides.
	"touch": func(p core.Proc, size int) error {
		if size <= 0 {
			size = 4
		}
		stripe := size * 8
		base := p.AllocBlocks(p.N() * stripe)
		mine := base + uint64(p.ID()*stripe)
		p.Barrier()
		for i := 0; i < stripe; i++ {
			p.GMWrite(mine+uint64(i), int64(p.ID()*1000+i))
		}
		for i := 0; i < stripe; i++ {
			if got := p.GMRead(mine + uint64(i)); got != int64(p.ID()*1000+i) {
				return fmt.Errorf("touch: word %d: got %d", i, got)
			}
		}
		p.Barrier()
		return nil
	},

	// gauss solves a size×size linear system by parallel Gauss-Seidel
	// (default 24).
	"gauss": func(p core.Proc, size int) error {
		if size <= 0 {
			size = 24
		}
		res, err := gauss.Parallel(p, gauss.Params{N: size})
		if err != nil {
			return err
		}
		if res.Residual > 1e-6 {
			return fmt.Errorf("gauss: residual %g after %d sweeps", res.Residual, res.Sweeps)
		}
		return nil
	},

	// knight runs the knight's-tour search on a size×size board (default 5).
	"knight": func(p core.Proc, size int) error {
		if size <= 0 {
			size = 5
		}
		_, err := knight.Parallel(p, knight.Params{BoardN: size, Jobs: p.N() * 4})
		return err
	},

	// dct compresses a size×size image by blocked DCT (default 32).
	"dct": func(p core.Proc, size int) error {
		if size <= 0 {
			size = 32
		}
		_, err := dct.Parallel(p, dct.Params{ImageN: size, Block: 8, Rate: 0.5})
		return err
	},
}

// lookupWorkload resolves a spec's workload name.
func lookupWorkload(name string) (workloadFn, bool) {
	fn, ok := workloads[name]
	return fn, ok
}

// runWorkload executes the named workload under the job view.
func runWorkload(p core.Proc, name string, size int) error {
	fn, ok := lookupWorkload(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorkload, name)
	}
	return fn(p, size)
}

// Workloads lists the registered workload names, sorted.
func Workloads() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
