package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gmem"
)

// waitState polls until the job reaches a terminal state (or the deadline).
func waitState(t *testing.T, s *Scheduler, id int, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %q after %v", id, j.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSchedEndToEnd runs a mixed batch of jobs — more than the cluster can
// hold at once, forcing queueing — and asserts that every one completes,
// the gauges are sane and the cluster shuts down residue-free.
func TestSchedEndToEnd(t *testing.T) {
	var residue core.Residue
	inspected := false
	cfg := Config{
		Workers:        4,
		CapacityBlocks: 64,
		Inspect: func(r core.Residue) {
			residue = r
			inspected = true
		},
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()

	specs := []JobSpec{
		{Name: "t1", PEs: 2, Workload: "touch", QuotaBlocks: 8},
		{Name: "g1", PEs: 2, Workload: "gauss", Size: 16, QuotaBlocks: 16},
		{Name: "t2", PEs: 4, Workload: "touch", QuotaBlocks: 8},
		{Name: "d1", PEs: 2, Workload: "dct", Size: 16, QuotaBlocks: 16},
		{Name: "t3", PEs: 1, Workload: "touch", QuotaBlocks: 4},
		{Name: "t4", PEs: 3, Workload: "touch", QuotaBlocks: 8},
	}
	ids := make([]int, len(specs))
	for i, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %q: %v", spec.Name, err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		j := waitState(t, s, id, 30*time.Second)
		if j.State != StateDone {
			t.Errorf("job %q: state %q err %q", specs[i].Name, j.State, j.Err)
		}
		if j.Used == 0 {
			t.Errorf("job %q: no namespace words recorded", specs[i].Name)
		}
	}

	st := s.Stats()
	if st.Done != uint64(len(specs)) {
		t.Errorf("done = %d, want %d", st.Done, len(specs))
	}
	if st.Utilization <= 0 {
		t.Errorf("utilization = %v, want > 0", st.Utilization)
	}
	if st.WaitUS.Count != uint64(len(specs)) {
		t.Errorf("wait samples = %d, want %d", st.WaitUS.Count, len(specs))
	}
	if st.UsedBlocks != 0 {
		t.Errorf("used blocks after drain = %d, want 0", st.UsedBlocks)
	}
	rows := s.JobRows()
	if len(rows) != len(specs) {
		t.Errorf("job rows = %d, want %d", len(rows), len(specs))
	}
	for _, r := range rows {
		if r.State != StateDone {
			t.Errorf("row %d (%s): state %q", r.ID, r.Name, r.State)
		}
	}

	res, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if res.Total.NsViolations != 0 {
		t.Errorf("kernel namespace violations = %d, want 0", res.Total.NsViolations)
	}

	// Teardown leak oracle: nothing a job held may survive the last job.
	if !inspected {
		t.Fatal("Inspect never ran")
	}
	if residue.NsBindings != 0 {
		t.Errorf("leaked namespace bindings: %d", residue.NsBindings)
	}
	if residue.BarrierPend != 0 || residue.LockResidue != 0 || residue.SemWaiters != 0 {
		t.Errorf("leaked sync residue: barriers=%d locks=%d sems=%d",
			residue.BarrierPend, residue.LockResidue, residue.SemWaiters)
	}
	// The control-plane mailboxes (ctl at each worker, done at the
	// scheduler) legitimately survive; job-window mailboxes must not.
	if max := cfg.Workers + 1; residue.UserQueues > max {
		t.Errorf("leaked user mailboxes: %d registered, want <= %d", residue.UserQueues, max)
	}
	if n := residue.BlocksIn(0, int(cfg.CapacityBlocks)); n != 0 {
		t.Errorf("leaked namespace blocks: %d still materialised", n)
	}
}

// TestAdmissionErrors covers every typed admission rejection.
func TestAdmissionErrors(t *testing.T) {
	s := NewScheduler(Config{Workers: 4, CapacityBlocks: 32})
	cases := []struct {
		name string
		spec JobSpec
		want error
	}{
		{"zero PEs", JobSpec{PEs: 0, Workload: "touch"}, ErrZeroPEs},
		{"negative PEs", JobSpec{PEs: -3, Workload: "touch"}, ErrZeroPEs},
		{"too many PEs", JobSpec{PEs: 5, Workload: "touch"}, ErrTooManyPEs},
		{"quota too large", JobSpec{PEs: 1, Workload: "touch", QuotaBlocks: 33}, ErrQuotaTooLarge},
		{"deadline passed", JobSpec{PEs: 1, Workload: "touch", DeadlineMS: -1}, ErrDeadlinePassed},
		{"unknown workload", JobSpec{PEs: 1, Workload: "nope"}, ErrUnknownWorkload},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := s.Submit(JobSpec{PEs: 1, Workload: "touch", Mode: "weird"}); err == nil {
		t.Error("bad consistency mode admitted")
	}
	s.Close()
	if _, err := s.Submit(JobSpec{PEs: 1, Workload: "touch"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: got %v, want ErrClosed", err)
	}
	if _, err := s.Job(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup of unknown job: got %v, want ErrNotFound", err)
	}
	if err := s.Cancel(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel of unknown job: got %v, want ErrNotFound", err)
	}
}

// TestDeadlineExpiresQueuedJob: a job whose deadline passes while it waits
// in the queue fails without ever running.
func TestDeadlineExpiresQueuedJob(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CapacityBlocks: 32})
	id, err := s.Submit(JobSpec{Name: "late", PEs: 1, Workload: "touch", DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	s.expireDeadlines()
	j, _ := s.Job(id)
	if j.State != StateFailed {
		t.Fatalf("state = %q, want failed", j.State)
	}
	if j.Err == "" {
		t.Error("expired job has no error")
	}
	if s.Stats().QueueDepth != 0 {
		t.Error("expired job still queued")
	}
}

// TestAgingPromotesStarvedJob: with aging, a long-waiting low-priority job
// outranks a fresh high-priority one.
func TestAgingPromotesStarvedJob(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CapacityBlocks: 32, AgingInterval: time.Millisecond})
	s.ra = gmem.NewRegionAllocator(gmem.Space{BlockWords: 32}, 32)
	oldID, err := s.Submit(JobSpec{Name: "starved", PEs: 1, Workload: "touch", Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Backdate the first submission: one second waited at 1ms/point is
	// +1000 effective priority.
	s.mu.Lock()
	s.jobs[oldID].Submit = time.Now().Add(-time.Second)
	s.mu.Unlock()
	if _, err := s.Submit(JobSpec{Name: "fresh", PEs: 1, Workload: "touch", Priority: 500}); err != nil {
		t.Fatal(err)
	}
	j := s.pickNext()
	if j == nil || j.ID != oldID {
		t.Fatalf("picked %+v, want starved job %d", j, oldID)
	}
	// Without aging pressure, plain priority order holds.
	j2 := s.pickNext()
	if j2 == nil || j2.Spec.Name != "fresh" {
		t.Fatalf("second pick = %+v, want fresh job", j2)
	}
}

// TestHeadOfLineBlocking: a too-big job at the head is not overtaken by a
// small one behind it (no backfill starvation), and the head runs once
// capacity frees up.
func TestHeadOfLineBlocking(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CapacityBlocks: 32})
	s.ra = gmem.NewRegionAllocator(gmem.Space{BlockWords: 32}, 32)
	bigID, err := s.Submit(JobSpec{Name: "big", PEs: 2, Workload: "touch", Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Name: "small", PEs: 1, Workload: "touch"}); err != nil {
		t.Fatal(err)
	}
	// Take one PE away so the head (2 PEs) cannot fit.
	s.mu.Lock()
	s.freePEs = s.freePEs[:1]
	s.mu.Unlock()
	if j := s.pickNext(); j != nil {
		t.Fatalf("picked %q with head blocked, want nothing", j.Spec.Name)
	}
	s.mu.Lock()
	s.freePEs = []int{1, 2}
	s.mu.Unlock()
	if j := s.pickNext(); j == nil || j.ID != bigID {
		t.Fatalf("picked %+v after capacity freed, want big job", j)
	}
}

// TestCancelRunningJob registers a workload that spins until cancelled and
// checks that Cancel aborts it via the gang's cancel gate.
func TestCancelRunningJob(t *testing.T) {
	workloads["spin-test"] = func(p core.Proc, size int) error {
		base := p.Alloc(1)
		for {
			p.GMRead(base) // each op passes the job gate; cancel aborts here
		}
	}
	defer delete(workloads, "spin-test")

	c, err := Start(Config{Workers: 2, CapacityBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	id, err := s.Submit(JobSpec{Name: "spin", PEs: 2, Workload: "spin-test"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := s.Job(id)
		if j.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	j := waitState(t, s, id, 30*time.Second)
	if j.State != StateCancelled && j.State != StateFailed {
		t.Fatalf("state = %q, want cancelled or failed", j.State)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestCancelQueuedJob: cancelling a queued job is immediate and frees no
// resources (it held none).
func TestCancelQueuedJob(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CapacityBlocks: 32})
	id, err := s.Submit(JobSpec{Name: "q", PEs: 1, Workload: "touch"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(id)
	if j.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", j.State)
	}
	if st := s.Stats(); st.QueueDepth != 0 || st.Cancelled != 1 {
		t.Errorf("stats after cancel: %+v", st)
	}
}

// TestConcurrentSubmitCancel hammers submit/cancel/status from many
// goroutines while the cluster runs — the -race exercise for the scheduler
// surface.
func TestConcurrentSubmitCancel(t *testing.T) {
	c, err := Start(Config{Workers: 3, CapacityBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	const (
		goroutines = 4
		perG       = 15
	)
	var wg sync.WaitGroup
	ids := make(chan int, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				id, err := s.Submit(JobSpec{
					Name:        fmt.Sprintf("g%d-%d", g, i),
					PEs:         1 + rng.Intn(3),
					Workload:    "touch",
					QuotaBlocks: uint64(4 + rng.Intn(8)),
					Priority:    rng.Intn(5),
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- id
				if rng.Intn(3) == 0 {
					s.Cancel(id)
				}
				if rng.Intn(4) == 0 {
					s.Job(id)
					s.Stats()
					s.JobRows()
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		j := waitState(t, s, id, 60*time.Second)
		if j.State == StateFailed {
			t.Errorf("job %d failed: %s", id, j.Err)
		}
	}
	st := s.Stats()
	if got := st.Done + st.Cancelled + st.Failed; got != goroutines*perG {
		t.Errorf("terminal jobs = %d, want %d", got, goroutines*perG)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestQuotaExceededFailsJob: a workload allocating past its namespace quota
// fails with the typed quota error, and the cluster survives.
func TestQuotaExceededFailsJob(t *testing.T) {
	c, err := Start(Config{Workers: 2, CapacityBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	// touch with size 16 wants 128 words/blocks well past a 1-block quota.
	id, err := s.Submit(JobSpec{Name: "hog", PEs: 1, Workload: "touch", Size: 16, QuotaBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	j := waitState(t, s, id, 30*time.Second)
	if j.State != StateFailed {
		t.Fatalf("state = %q, want failed", j.State)
	}
	if j.Err == "" || !contains(j.Err, "quota") {
		t.Errorf("error %q does not mention the quota", j.Err)
	}
	// The cluster still schedules after the failure.
	id2, err := s.Submit(JobSpec{Name: "after", PEs: 2, Workload: "touch"})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitState(t, s, id2, 30*time.Second); j2.State != StateDone {
		t.Fatalf("follow-up job: state %q err %q", j2.State, j2.Err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
