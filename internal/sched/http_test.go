package sched

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ssi"
)

// TestHTTPServer drives the full job lifecycle through the HTTP API against
// a live cluster: submit, status, queue listing, cancel, and the admission
// error mapping.
func TestHTTPServer(t *testing.T) {
	c, err := Start(Config{Workers: 2, CapacityBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	srv := httptest.NewServer(NewServer(c.Scheduler()))
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]interface{}) {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]interface{}
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		return resp, doc
	}

	// Submit a valid job.
	resp, doc := post(`{"name":"h1","pes":2,"workload":"touch","quota_blocks":8}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", resp.StatusCode, doc)
	}
	id := int(doc["id"].(float64))

	// Poll status until done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + itoa(id))
		if err != nil {
			t.Fatal(err)
		}
		var jv jobView
		json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if jv.State == StateDone {
			break
		}
		if jv.State == StateFailed || jv.State == StateCancelled {
			t.Fatalf("job ended %q: %s", jv.State, jv.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Admission rejections map to 422.
	for _, bad := range []string{
		`{"pes":0,"workload":"touch"}`,
		`{"pes":3,"workload":"touch"}`,
		`{"pes":1,"workload":"touch","quota_blocks":999}`,
		`{"pes":1,"workload":"nope"}`,
		`{"pes":1,"workload":"touch","deadline_ms":-5}`,
	} {
		if resp, doc := post(bad); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("spec %s: status %d (%v), want 422", bad, resp.StatusCode, doc)
		}
	}

	// Unknown job is 404; bad id is 400.
	if resp, _ := http.Get(srv.URL + "/jobs/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/jobs/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", resp.StatusCode)
	}

	// Submit and cancel over HTTP.
	_, doc = post(`{"name":"h2","pes":1,"workload":"touch"}`)
	id2 := int(doc["id"].(float64))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+itoa(id2), nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v status %v", err, resp.StatusCode)
	}

	// Queue document carries stats and rows; /metrics carries the gauges.
	resp, err = http.Get(srv.URL + "/queue")
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		Stats Stats        `json:"stats"`
		Jobs  []ssi.JobRow `json:"jobs"`
	}
	json.NewDecoder(resp.Body).Decode(&q)
	resp.Body.Close()
	if q.Stats.Submitted < 2 || len(q.Jobs) < 2 {
		t.Errorf("queue: submitted=%d rows=%d, want >= 2 each", q.Stats.Submitted, len(q.Jobs))
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Workers != 2 {
		t.Errorf("metrics workers = %d, want 2", st.Workers)
	}

	// The scheduler is an ssi.JobSource: a view bound to it reports the
	// same rows.
	v := ssi.NewView(nil)
	v.BindJobs(c.Scheduler())
	if rows := v.Jobs(); len(rows) != len(q.Jobs) {
		t.Errorf("ssi view rows = %d, want %d", len(rows), len(q.Jobs))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
