// Package sched is the cluster-as-a-service layer on top of the DSE
// runtime: one resident SSI cluster runs many jobs concurrently, Slurm-
// style. Jobs are submitted (over HTTP or the Go API) as a spec — gang
// size, workload, GM quota, consistency mode, priority, optional deadline —
// pass admission control against the cluster's PE and GM capacity, wait in
// a fair-share queue with priority aging, and are gang-placed onto a subset
// of worker PEs. Every job runs inside an isolated GM namespace carved from
// the global address space: a quota-bounded allocation region enforced both
// PE-side and at the home kernels (typed OpNsNack rejection), so two jobs
// can never read or write each other's blocks. Teardown releases the
// namespace, purges the job's message/sync residue and returns the PEs to
// the pool. See DESIGN.md §15.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/sim"
	"repro/internal/ssi"
	"repro/internal/trace"
)

// Control-plane tags (whole-cluster tag space, far below the job windows
// at core.JobSlotBase).
const (
	ctlTag  int32 = 101 // scheduler -> worker: job assignment / poison
	doneTag int32 = 102 // worker -> scheduler: member completion
)

// Admission and lookup errors. Submit wraps the admission reasons so HTTP
// can map them to 4xx while transport problems stay 5xx.
var (
	ErrZeroPEs         = errors.New("sched: job needs at least one PE")
	ErrTooManyPEs      = errors.New("sched: PE count exceeds cluster workers")
	ErrQuotaTooLarge   = errors.New("sched: GM quota exceeds cluster capacity")
	ErrDeadlinePassed  = errors.New("sched: deadline already passed at submit")
	ErrUnknownWorkload = errors.New("sched: unknown workload")
	ErrClosed          = errors.New("sched: scheduler is shut down")
	ErrNotFound        = errors.New("sched: no such job")
)

// JobSpec is one job submission.
type JobSpec struct {
	// Name labels the job (diagnostics; not unique).
	Name string `json:"name"`
	// PEs is the gang size: how many worker PEs run the job concurrently.
	PEs int `json:"pes"`
	// Workload names the program from the registry (see Workloads()).
	Workload string `json:"workload"`
	// Size is the workload's scale knob (per-workload meaning; 0 = default).
	Size int `json:"size,omitempty"`
	// QuotaBlocks is the job's GM namespace quota in blocks (0 = 16).
	QuotaBlocks uint64 `json:"quota_blocks,omitempty"`
	// Mode is the consistency tier of the job's allocations: "", "strong",
	// "release" or "lease".
	Mode string `json:"mode,omitempty"`
	// Priority orders the queue (higher runs first; aging promotes waiters).
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is the wall-clock budget from submission; a job still
	// queued or running past it is aborted. <0 is rejected at submit
	// (already passed), 0 means none.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one tracked submission.
type Job struct {
	ID   int
	Spec JobSpec

	// Everything below is owned by the scheduler mutex.
	State    string
	Members  []int // worker kernel ids while running
	Slot     int   // tag-window slot while running (-1 otherwise)
	Region   gmem.Region
	Mode     gmem.Mode
	Err      string
	Submit   time.Time
	Start    time.Time // zero until running
	Finish   time.Time // zero until terminal
	Deadline time.Time // zero when none
	Used     uint64    // namespace words allocated (reported at completion)

	cancel  atomic.Bool
	pending int // members still running
	failed  bool
}

// Config assembles the resident cluster and its scheduler.
type Config struct {
	// Workers is the worker-PE count; the cluster runs Workers+1 PEs (PE 0
	// is the scheduler).
	Workers int
	// CapacityBlocks is the GM heap carveable into job namespaces, in
	// blocks (0 = 4096).
	CapacityBlocks uint64
	// GMBlockWords passes through to core.Config (0 = default 32).
	GMBlockWords int
	// KernelShards passes through to core.Config (0 = GOMAXPROCS on the
	// in-process transport, which also turns on the one-sided window and
	// ring fast paths).
	KernelShards int
	// Tick is the control-loop poll interval (0 = 2ms).
	Tick time.Duration
	// RequestTimeout bounds every remote request; it is also what unblocks
	// a cancelled member parked at a job barrier (0 = 5s).
	RequestTimeout time.Duration
	// AgingInterval is the fair-share aging rate: a queued job gains one
	// effective priority point per interval waited (0 = 100ms).
	AgingInterval time.Duration
	// Seed passes through to core.Config.
	Seed uint64
	// Inspect passes through to core.Config: it receives the cluster's
	// shutdown residue gauges, which must all be zero after every job tore
	// down cleanly. Tests use it as the leak oracle.
	Inspect func(core.Residue)
}

func (c Config) withDefaults() Config {
	if c.CapacityBlocks == 0 {
		c.CapacityBlocks = 4096
	}
	if c.Tick == 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.AgingInterval == 0 {
		c.AgingInterval = 100 * time.Millisecond
	}
	return c
}

// Scheduler keeps the queue, the job table and the PE/quota/slot pools. It
// is shared between the HTTP handlers (any goroutine) and the control loop
// on PE 0; the mutex covers all mutable state, and no PE call is ever made
// under it.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[int]*Job
	queue   []*Job // queued jobs, submit order (fair-share sorts at pick)
	nextID  int
	freePEs []int
	slots   []bool // tag-window slots, true = taken
	ra      *gmem.RegionAllocator
	closing bool

	// Gauges and counters (under mu unless noted).
	submitted, started, done, failed, cancelled, rejected uint64
	maxQueued, maxResident                                int
	resident                                              int
	busyNS                                                float64 // integral of busy PEs over time, ns
	lastBusyAt                                            time.Time
	startedAt                                             time.Time

	waitHist trace.Histogram // queue waits (safe for concurrent Observe/read)
	runHist  trace.Histogram // job runtimes
}

// NewScheduler builds the scheduler state for a cluster of cfg.Workers
// worker PEs. Drive it with Cluster (which runs the cluster and the control
// loops) or, in tests, by running Program on a core cluster directly.
func NewScheduler(cfg Config) *Scheduler {
	c := cfg.withDefaults()
	nslots := core.JobSlots
	s := &Scheduler{
		cfg:   c,
		jobs:  make(map[int]*Job),
		slots: make([]bool, nslots),
	}
	for w := 1; w <= c.Workers; w++ {
		s.freePEs = append(s.freePEs, w)
	}
	now := time.Now()
	s.startedAt = now
	s.lastBusyAt = now
	return s
}

// Submit runs admission control and, if the spec is admitted, queues the
// job and returns its id.
func (s *Scheduler) Submit(spec JobSpec) (int, error) {
	if spec.PEs <= 0 {
		return 0, ErrZeroPEs
	}
	if spec.PEs > s.cfg.Workers {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooManyPEs, spec.PEs, s.cfg.Workers)
	}
	if spec.QuotaBlocks == 0 {
		spec.QuotaBlocks = 16
	}
	if spec.QuotaBlocks > s.cfg.CapacityBlocks {
		return 0, fmt.Errorf("%w: %d > %d blocks", ErrQuotaTooLarge, spec.QuotaBlocks, s.cfg.CapacityBlocks)
	}
	if spec.DeadlineMS < 0 {
		return 0, ErrDeadlinePassed
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return 0, err
	}
	if _, ok := lookupWorkload(spec.Workload); !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownWorkload, spec.Workload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		s.rejected++
		return 0, ErrClosed
	}
	s.nextID++
	j := &Job{
		ID: s.nextID, Spec: spec, State: StateQueued, Slot: -1,
		Mode: mode, Submit: time.Now(),
	}
	if spec.DeadlineMS > 0 {
		j.Deadline = j.Submit.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.submitted++
	if len(s.queue) > s.maxQueued {
		s.maxQueued = len(s.queue)
	}
	return j.ID, nil
}

// Cancel cancels a job: a queued job leaves the queue immediately, a
// running one has its cancel flag raised and aborts at its next operation
// (or request timeout). Terminal jobs are left untouched.
func (s *Scheduler) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.State {
	case StateQueued:
		s.dequeueLocked(j)
		j.State = StateCancelled
		j.Finish = time.Now()
		s.cancelled++
	case StateRunning:
		j.cancel.Store(true)
	}
	return nil
}

// JobStatus is a copyable snapshot of one job's state.
type JobStatus struct {
	ID      int
	Spec    JobSpec
	State   string
	Members []int
	Err     string
	Submit  time.Time
	Start   time.Time
	Finish  time.Time
	Used    uint64
}

// Job returns a snapshot of the job's current state.
func (s *Scheduler) Job(id int) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return JobStatus{
		ID: j.ID, Spec: j.Spec, State: j.State,
		Members: append([]int(nil), j.Members...),
		Err:     j.Err, Submit: j.Submit, Start: j.Start, Finish: j.Finish,
		Used: j.Used,
	}, nil
}

// parseMode maps a spec's consistency-mode string.
func parseMode(m string) (gmem.Mode, error) {
	switch m {
	case "", "strong":
		return gmem.ModeStrong, nil
	case "release":
		return gmem.ModeRelease, nil
	case "lease":
		return gmem.ModeLease, nil
	}
	return gmem.ModeStrong, fmt.Errorf("sched: unknown consistency mode %q", m)
}

func (s *Scheduler) dequeueLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// effPriority is the fair-share key: base priority plus one point per
// AgingInterval waited, so a starved low-priority job eventually outranks
// fresh high-priority arrivals.
func (s *Scheduler) effPriority(j *Job, now time.Time) int {
	return j.Spec.Priority + int(now.Sub(j.Submit)/s.cfg.AgingInterval)
}

// Close stops accepting jobs, cancels the queue and (once running jobs have
// drained) shuts the control loops down. The cluster's Run returns after
// every worker has taken its poison pill.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return
	}
	s.closing = true
	now := time.Now()
	for _, j := range s.queue {
		j.State = StateCancelled
		j.Finish = now
		s.cancelled++
	}
	s.queue = nil
}

// --- Control-plane wire formats (JSON over user messages) ---

// assignment is the scheduler -> worker dispatch record. JobID -1 is the
// shutdown poison.
type assignment struct {
	JobID    int    `json:"job_id"`
	Name     string `json:"name"`
	Members  []int  `json:"members"`
	TagBase  int32  `json:"tag_base"`
	Base     uint64 `json:"base"`
	Limit    uint64 `json:"limit"`
	Mode     uint8  `json:"mode"`
	Workload string `json:"workload"`
	Size     int    `json:"size"`
}

// completion is the worker -> scheduler member report.
type completion struct {
	JobID int    `json:"job_id"`
	Rank  int    `json:"rank"`
	Err   string `json:"err,omitempty"`
	Used  uint64 `json:"used"` // namespace words allocated
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sched: encoding control message: %v", err))
	}
	return b
}

// Program is the SPMD body the resident cluster runs: PE 0 drives the
// scheduler control loop, every other PE is a worker. It returns when the
// scheduler is closed and all work has drained.
func (s *Scheduler) Program(pe *core.PE) error {
	if pe.ID() == 0 {
		return s.run(pe)
	}
	return s.worker(pe)
}

// CoreConfig is the core cluster configuration the scheduler expects to run
// on: in-process transport (co-located segments are what make one cluster
// resident), one more PE than workers, and a request timeout so cancelled
// members parked in a collective unblock.
func (s *Scheduler) CoreConfig() core.Config {
	return core.Config{
		NumPE:          s.cfg.Workers + 1,
		Transport:      core.TransportInproc,
		GMBlockWords:   s.cfg.GMBlockWords,
		KernelShards:   s.cfg.KernelShards,
		RequestTimeout: sim.Duration(s.cfg.RequestTimeout.Nanoseconds()),
		Seed:           s.cfg.Seed,
		Inspect:        s.cfg.Inspect,
	}
}

// tick converts the configured poll interval for RecvMsgTimeout.
func (s *Scheduler) tick() sim.Duration { return sim.Duration(s.cfg.Tick.Nanoseconds()) }

// run is the PE 0 control loop: collect member completions, expire
// deadlines, admit and dispatch queued jobs, and — once closing and idle —
// poison the workers and return.
func (s *Scheduler) run(pe *core.PE) error {
	s.mu.Lock()
	if s.ra == nil {
		s.ra = gmem.NewRegionAllocator(pe.Space(), s.cfg.CapacityBlocks)
	}
	s.mu.Unlock()
	for {
		if src, data, ok := pe.RecvMsgTimeout(doneTag, s.tick()); ok {
			s.handleCompletion(pe, src, data)
			// Keep draining with a near-zero wait: completions often
			// arrive in bursts when a gang finishes.
			for {
				src, data, ok = pe.RecvMsgTimeout(doneTag, 50*sim.Microsecond)
				if !ok {
					break
				}
				s.handleCompletion(pe, src, data)
			}
		}
		s.expireDeadlines()
		for {
			j := s.pickNext()
			if j == nil {
				break
			}
			s.dispatch(pe, j)
		}
		s.mu.Lock()
		idle := s.closing && s.resident == 0 && len(s.queue) == 0
		s.mu.Unlock()
		if idle {
			poison := mustJSON(assignment{JobID: -1})
			for w := 1; w <= s.cfg.Workers; w++ {
				pe.SendMsg(w, ctlTag, poison)
			}
			return nil
		}
	}
}

// expireDeadlines fails queued jobs whose deadline passed before they ever
// ran and raises the cancel flag on running ones past theirs.
func (s *Scheduler) expireDeadlines() {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var expired []*Job
	for _, j := range s.queue {
		if !j.Deadline.IsZero() && now.After(j.Deadline) {
			expired = append(expired, j)
		}
	}
	for _, j := range expired {
		s.dequeueLocked(j)
		j.State = StateFailed
		j.Err = "deadline expired while queued"
		j.Finish = now
		s.failed++
	}
	for _, j := range s.jobs {
		if j.State == StateRunning && !j.Deadline.IsZero() && now.After(j.Deadline) {
			j.cancel.Store(true)
		}
	}
}

// pickNext picks the runnable job with the highest effective priority.
// Head-of-line semantics: if the top job does not fit (PEs, quota or tag
// slot), nothing is admitted this round — backfilling smaller jobs past it
// would starve exactly the jobs aging is promoting.
func (s *Scheduler) pickNext() *Job {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ra == nil || len(s.queue) == 0 {
		return nil
	}
	sort.SliceStable(s.queue, func(a, b int) bool {
		pa, pb := s.effPriority(s.queue[a], now), s.effPriority(s.queue[b], now)
		if pa != pb {
			return pa > pb
		}
		return s.queue[a].Submit.Before(s.queue[b].Submit)
	})
	j := s.queue[0]
	if j.Spec.PEs > len(s.freePEs) {
		return nil
	}
	slot := -1
	for i, taken := range s.slots {
		if !taken {
			slot = i
			break
		}
	}
	if slot == -1 {
		return nil
	}
	region, ok := s.ra.Carve(j.Spec.QuotaBlocks)
	if !ok {
		return nil
	}
	// Admit: gang-place onto the lowest free worker ids.
	s.queue = s.queue[1:]
	j.Members = append([]int(nil), s.freePEs[:j.Spec.PEs]...)
	s.freePEs = s.freePEs[j.Spec.PEs:]
	s.slots[slot] = true
	j.Slot = slot
	j.Region = region
	j.State = StateRunning
	j.Start = time.Now()
	j.pending = len(j.Members)
	s.started++
	s.accrueBusyLocked(j.Start)
	s.resident++
	if s.resident > s.maxResident {
		s.maxResident = s.resident
	}
	s.waitHist.Observe(sim.Duration(j.Start.Sub(j.Submit).Nanoseconds()))
	return j
}

// accrueBusyLocked folds the busy-PE integral forward to now. Call before
// any change to the busy-PE count.
func (s *Scheduler) accrueBusyLocked(now time.Time) {
	busy := s.cfg.Workers - len(s.freePEs)
	s.busyNS += float64(busy) * float64(now.Sub(s.lastBusyAt).Nanoseconds())
	s.lastBusyAt = now
}

// dispatch installs the job's kernel-side namespace bindings and hands the
// assignment to every member. Bindings go in before any member can issue a
// job GM operation.
func (s *Scheduler) dispatch(pe *core.PE, j *Job) {
	s.mu.Lock()
	a := assignment{
		JobID: j.ID, Name: j.Spec.Name,
		Members: append([]int(nil), j.Members...),
		TagBase: core.JobSlotBase(j.Slot),
		Base:    j.Region.Base, Limit: j.Region.Limit,
		Mode: uint8(j.Mode), Workload: j.Spec.Workload, Size: j.Spec.Size,
	}
	s.mu.Unlock()
	for _, m := range a.Members {
		if err := pe.NamespaceBind(m, a.Base, a.Limit); err != nil {
			panic(fmt.Sprintf("sched: binding namespace of PE %d: %v", m, err))
		}
	}
	data := mustJSON(a)
	for _, m := range a.Members {
		pe.SendMsg(m, ctlTag, data)
	}
}

// handleCompletion folds one member report in; the last member triggers
// teardown.
func (s *Scheduler) handleCompletion(pe *core.PE, src int, data []byte) {
	var c completion
	if err := json.Unmarshal(data, &c); err != nil {
		panic(fmt.Sprintf("sched: corrupt completion from PE %d: %v", src, err))
	}
	s.mu.Lock()
	j, ok := s.jobs[c.JobID]
	if !ok || j.State != StateRunning {
		s.mu.Unlock()
		return
	}
	if c.Err != "" && j.Err == "" {
		j.Err = fmt.Sprintf("rank %d: %s", c.Rank, c.Err)
	}
	if c.Err != "" {
		j.failed = true
		// Abort the surviving members: a gang with a dead rank can only
		// block at its next collective.
		j.cancel.Store(true)
	}
	if c.Used > j.Used {
		j.Used = c.Used
	}
	j.pending--
	last := j.pending == 0
	s.mu.Unlock()
	if last {
		s.teardown(pe, j)
	}
}

// teardown releases everything the job held: kernel-side bindings, the
// namespace's materialised blocks, the tag window's message/sync residue,
// and finally the PEs, region and slot. Runs on PE 0 with no lock held
// across the PE calls.
func (s *Scheduler) teardown(pe *core.PE, j *Job) {
	s.mu.Lock()
	members := append([]int(nil), j.Members...)
	region := j.Region
	slot := j.Slot
	quota := j.Spec.QuotaBlocks
	s.mu.Unlock()

	for _, m := range members {
		if err := pe.NamespaceBind(m, 0, 0); err != nil {
			panic(fmt.Sprintf("sched: unbinding namespace of PE %d: %v", m, err))
		}
	}
	if _, err := pe.NamespaceFree(region.Base, int(quota)); err != nil {
		panic(fmt.Sprintf("sched: freeing namespace of job %d: %v", j.ID, err))
	}
	if err := pe.JobPurge(core.JobSlotBase(slot), core.JobTagSpan); err != nil {
		panic(fmt.Sprintf("sched: purging job %d: %v", j.ID, err))
	}

	now := time.Now()
	s.mu.Lock()
	s.accrueBusyLocked(now)
	s.freePEs = append(s.freePEs, members...)
	sort.Ints(s.freePEs)
	s.slots[slot] = false
	s.ra.Release(region)
	j.Members = nil
	j.Slot = -1
	j.Finish = now
	switch {
	case j.cancel.Load() && !j.failed:
		j.State = StateCancelled
		s.cancelled++
	case j.failed:
		j.State = StateFailed
		s.failed++
	default:
		j.State = StateDone
		s.done++
	}
	s.resident--
	s.runHist.Observe(sim.Duration(j.Finish.Sub(j.Start).Nanoseconds()))
	s.mu.Unlock()
}

// worker is the loop every PE other than 0 runs: wait for an assignment,
// run the job inside its namespace, report, repeat — until the poison pill.
func (s *Scheduler) worker(pe *core.PE) error {
	for {
		_, data, ok := pe.RecvMsgTimeout(ctlTag, s.tick())
		if !ok {
			continue
		}
		var a assignment
		if err := json.Unmarshal(data, &a); err != nil {
			return fmt.Errorf("sched: worker %d: corrupt assignment: %w", pe.ID(), err)
		}
		if a.JobID < 0 {
			return nil
		}
		s.runJob(pe, a)
	}
}

// runJob executes one assignment on this worker: bind the PE-side guard,
// build the job view, run the workload (recovering panics — quota
// exhaustion, namespace violations, aborts — as job failure), drop local
// residue and report to the scheduler.
func (s *Scheduler) runJob(pe *core.PE, a assignment) {
	s.mu.Lock()
	j := s.jobs[a.JobID]
	s.mu.Unlock()
	var cancel *atomic.Bool
	if j != nil {
		cancel = &j.cancel
	}
	pe.BindNamespace(a.Base, a.Limit)
	var jp *core.JobPE
	var errStr string
	var used uint64
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					errStr = err.Error()
				} else {
					errStr = fmt.Sprint(r)
				}
			}
			if jp != nil {
				used = jp.QuotaUsed()
			}
		}()
		jp = core.NewJobPE(pe, core.JobGroup{
			Name:    a.Name,
			Members: a.Members,
			TagBase: a.TagBase,
			Region:  gmem.Region{Base: a.Base, Limit: a.Limit},
			Mode:    gmem.Mode(a.Mode),
			Cancel:  cancel,
		})
		if err := runWorkload(jp, a.Workload, a.Size); err != nil {
			errStr = err.Error()
		}
	}()
	pe.EndJob(a.Base, a.Limit)
	pe.ClearNamespace()
	rank := 0
	for r, m := range a.Members {
		if m == pe.ID() {
			rank = r
		}
	}
	pe.SendMsg(0, doneTag, mustJSON(completion{
		JobID: a.JobID, Rank: rank, Err: errStr, Used: used,
	}))
}

// --- Observability ---

// Stats is the scheduler gauge snapshot.
type Stats struct {
	Workers   int    `json:"workers"`
	Submitted uint64 `json:"submitted"`
	Started   uint64 `json:"started"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Rejected  uint64 `json:"rejected"`

	QueueDepth  int `json:"queue_depth"`
	Running     int `json:"running"`
	FreePEs     int `json:"free_pes"`
	MaxQueued   int `json:"max_queued"`
	MaxResident int `json:"max_resident"`

	// Utilization is busy-PE-time over workers*elapsed since start, in
	// [0, 1].
	Utilization float64 `json:"utilization"`
	// JobsPerSec is completed (done+failed+cancelled-after-run) jobs per
	// wall second since start.
	JobsPerSec float64 `json:"jobs_per_sec"`

	// Queue-wait distribution, microseconds.
	WaitUS LatencyStats `json:"wait_us"`
	// Runtime distribution, microseconds.
	RunUS LatencyStats `json:"run_us"`

	CapacityBlocks uint64 `json:"capacity_blocks"`
	UsedBlocks     uint64 `json:"used_blocks"` // blocks currently carved out
}

// LatencyStats summarises a distribution in microseconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func latencyStats(h *trace.Histogram) LatencyStats {
	hs := h.Snapshot()
	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	return LatencyStats{
		Count: hs.Count,
		Mean:  us(hs.Mean()),
		P50:   us(hs.Quantile(0.50)),
		P95:   us(hs.Quantile(0.95)),
		P99:   us(hs.Quantile(0.99)),
		Max:   us(hs.Max),
	}
}

// Stats snapshots the scheduler gauges.
func (s *Scheduler) Stats() Stats {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:   s.cfg.Workers,
		Submitted: s.submitted, Started: s.started,
		Done: s.done, Failed: s.failed, Cancelled: s.cancelled, Rejected: s.rejected,
		QueueDepth: len(s.queue), Running: s.resident, FreePEs: len(s.freePEs),
		MaxQueued: s.maxQueued, MaxResident: s.maxResident,
		WaitUS:         latencyStats(&s.waitHist),
		RunUS:          latencyStats(&s.runHist),
		CapacityBlocks: s.cfg.CapacityBlocks,
	}
	if s.ra != nil {
		st.UsedBlocks = s.ra.UsedBlocks()
	}
	elapsed := now.Sub(s.startedAt).Nanoseconds()
	if elapsed > 0 {
		busy := s.busyNS + float64(s.cfg.Workers-len(s.freePEs))*float64(now.Sub(s.lastBusyAt).Nanoseconds())
		st.Utilization = busy / (float64(s.cfg.Workers) * float64(elapsed))
		finished := s.done + s.failed + s.cancelled
		st.JobsPerSec = float64(finished) / (float64(elapsed) / 1e9)
	}
	return st
}

// JobRows implements ssi.JobSource: the per-job status rows of the
// single-system image.
func (s *Scheduler) JobRows() []ssi.JobRow {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rows := make([]ssi.JobRow, 0, len(ids))
	bw := uint64(s.cfg.GMBlockWords)
	if bw == 0 {
		bw = 32
	}
	for _, id := range ids {
		j := s.jobs[id]
		row := ssi.JobRow{
			ID: j.ID, Name: j.Spec.Name, State: j.State,
			PEs: j.Spec.PEs, QuotaBlocks: j.Spec.QuotaBlocks,
			UsedBlocks: (j.Used + bw - 1) / bw,
			Priority:   j.Spec.Priority,
			Error:      j.Err,
		}
		switch {
		case j.State == StateQueued:
			row.WaitMS = float64(now.Sub(j.Submit).Nanoseconds()) / 1e6
		case !j.Start.IsZero():
			row.WaitMS = float64(j.Start.Sub(j.Submit).Nanoseconds()) / 1e6
		}
		switch {
		case j.State == StateRunning:
			row.RunMS = float64(now.Sub(j.Start).Nanoseconds()) / 1e6
		case !j.Finish.IsZero() && !j.Start.IsZero():
			row.RunMS = float64(j.Finish.Sub(j.Start).Nanoseconds()) / 1e6
		}
		rows = append(rows, row)
	}
	return rows
}

// Cluster is the resident SSI cluster with the scheduler riding on PE 0.
type Cluster struct {
	sched *Scheduler
	done  chan struct{}
	res   *core.Result
	err   error
}

// Start builds the scheduler and brings the resident cluster up. The
// returned Cluster serves jobs until Stop.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, errors.New("sched: need at least one worker PE")
	}
	s := NewScheduler(cfg)
	c := &Cluster{sched: s, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		c.res, c.err = core.Run(s.CoreConfig(), s.Program)
	}()
	return c, nil
}

// Scheduler returns the job API.
func (c *Cluster) Scheduler() *Scheduler { return c.sched }

// Stop closes the scheduler (cancelling queued jobs, draining running
// ones) and waits for the cluster to shut down, returning the run result.
func (c *Cluster) Stop() (*core.Result, error) {
	c.sched.Close()
	<-c.done
	if c.err != nil {
		return c.res, c.err
	}
	if c.res != nil {
		if err := c.res.FirstErr(); err != nil {
			return c.res, err
		}
	}
	return c.res, nil
}
