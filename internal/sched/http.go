package sched

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
)

// Server is the scheduler's HTTP control surface:
//
//	POST   /jobs       submit a JobSpec (JSON body) -> {"id": N}
//	GET    /jobs/{id}  job status
//	DELETE /jobs/{id}  cancel
//	GET    /queue      scheduler stats + queued/running job rows
//	GET    /metrics    scheduler stats (gauge snapshot)
type Server struct {
	s   *Scheduler
	mux *http.ServeMux
}

// NewServer wraps a scheduler in its HTTP API.
func NewServer(s *Scheduler) *Server {
	srv := &Server{s: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("/jobs", srv.jobs)
	srv.mux.HandleFunc("/jobs/", srv.job)
	srv.mux.HandleFunc("/queue", srv.queue)
	srv.mux.HandleFunc("/metrics", srv.metrics)
	return srv
}

func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// admissionCode maps a Submit error to its HTTP status: admission rejections
// are the client's fault (422), a closed scheduler is 503.
func admissionCode(err error) int {
	switch {
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrZeroPEs), errors.Is(err, ErrTooManyPEs),
		errors.Is(err, ErrQuotaTooLarge), errors.Is(err, ErrDeadlinePassed),
		errors.Is(err, ErrUnknownWorkload):
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// jobs handles POST /jobs.
func (srv *Server) jobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST /jobs"))
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := srv.s.Submit(spec)
	if err != nil {
		writeErr(w, admissionCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
}

// jobView is the wire shape of one job status response.
type jobView struct {
	ID        int     `json:"id"`
	Spec      JobSpec `json:"spec"`
	State     string  `json:"state"`
	Members   []int   `json:"members,omitempty"`
	Error     string  `json:"error,omitempty"`
	WaitMS    float64 `json:"wait_ms"`
	RunMS     float64 `json:"run_ms"`
	UsedWords uint64  `json:"used_words"`
}

func viewOf(j JobStatus) jobView {
	v := jobView{
		ID: j.ID, Spec: j.Spec, State: j.State,
		Members: j.Members, Error: j.Err, UsedWords: j.Used,
	}
	if !j.Start.IsZero() {
		v.WaitMS = float64(j.Start.Sub(j.Submit).Nanoseconds()) / 1e6
		if !j.Finish.IsZero() {
			v.RunMS = float64(j.Finish.Sub(j.Start).Nanoseconds()) / 1e6
		}
	}
	return v
}

// job handles GET and DELETE /jobs/{id}.
func (srv *Server) job(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("job id must be an integer"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, err := srv.s.Job(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, viewOf(j))
	case http.MethodDelete:
		if err := srv.s.Cancel(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET or DELETE"))
	}
}

// queue handles GET /queue: the stats snapshot plus every job row.
func (srv *Server) queue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET /queue"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stats": srv.s.Stats(),
		"jobs":  srv.s.JobRows(),
	})
}

// metrics handles GET /metrics.
func (srv *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.s.Stats())
}
