package ethernet

import (
	"fmt"

	"repro/internal/sim"
)

// NIC is the station-side interface shared by the bus and the switch, so
// the simulated transport can run over either medium.
type NIC interface {
	// ID is the station's address on the medium.
	ID() int
	// Send fragments and transmits, blocking until the last fragment has
	// left the station. It reports whether the medium accepted every
	// fragment for delivery; on the bus a false return means the frame was
	// lost (injected loss or a closed destination), which transports use
	// for consecutive-loss peer-failure detection. The switch decides loss
	// asynchronously at the egress port, so it reports only enqueue
	// failures.
	Send(p *sim.Proc, dst, size int, payload interface{}) bool
	// Recv blocks for the next frame; ok=false after Close.
	Recv(p *sim.Proc) (Frame, bool)
	// TryRecv polls without blocking.
	TryRecv() (Frame, bool)
	// Inject bypasses the medium (own-node delivery).
	Inject(f Frame) bool
	// Close wakes blocked receivers.
	Close()
	// Closed reports whether Close has been called (the station was shut
	// down or killed by a fault schedule).
	Closed() bool
}

// Medium is a network that stations attach to.
type Medium interface {
	AttachNIC() NIC
	Start()
	Stop()
	Stats() Stats
	SetLossProbability(p float64)
}

var (
	_ Medium = (*Bus)(nil)
	_ Medium = (*Switch)(nil)
)

// Switch is a store-and-forward switched Ethernet: every station has a
// private full-duplex link to a switch port, so there are no collisions
// and disjoint flows do not contend; only frames converging on the same
// output port queue. This is the "raw performance of high-speed networks"
// the paper's modular reorganisation aims to exploit; the ablation
// benchmarks compare it against the shared bus.
type Switch struct {
	eng      *sim.Engine
	cfg      Config
	rng      *sim.Rand
	ports    []*swPort
	stats    Stats
	started  bool
	lossProb float64
}

// swReq is one frame queued for an output port.
type swReq struct {
	frame Frame
}

// swPort is one switch port plus its attached station.
type swPort struct {
	sw     *Switch
	id     int
	rx     *sim.Chan[Frame]
	egress *sim.Chan[swReq]
}

// NewSwitch creates a switch on the engine with the given link parameters
// (BandwidthBps is the per-link rate; SlotTime/backoff fields are unused).
func NewSwitch(e *sim.Engine, cfg Config) *Switch {
	return &Switch{
		eng: e,
		cfg: cfg,
		rng: e.Rand().Fork(),
	}
}

// SetLossProbability implements Medium (failure injection).
func (sw *Switch) SetLossProbability(p float64) { sw.lossProb = p }

// Stats implements Medium.
func (sw *Switch) Stats() Stats { return sw.stats }

// AttachNIC implements Medium.
func (sw *Switch) AttachNIC() NIC {
	if sw.started {
		panic("ethernet: Attach after Start")
	}
	p := &swPort{
		sw:     sw,
		id:     len(sw.ports),
		rx:     sim.NewChan[Frame](sw.eng, sw.cfg.RxQueue),
		egress: sim.NewChan[swReq](sw.eng, 1<<16),
	}
	sw.ports = append(sw.ports, p)
	return p
}

// Start implements Medium: one egress process per port serialises the
// frames converging on that station.
func (sw *Switch) Start() {
	if sw.started {
		return
	}
	sw.started = true
	for _, p := range sw.ports {
		p := p
		sw.eng.Spawn(fmt.Sprintf("switch-egress-%d", p.id), func(proc *sim.Proc) {
			for {
				req, ok := p.egress.Recv(proc)
				if !ok {
					return
				}
				tx := sw.frameTime(req.frame.Size)
				proc.Sleep(tx)
				sw.stats.Frames++
				sw.stats.PayloadBytes += uint64(req.frame.Size)
				sw.stats.WireBytes += uint64(sw.wireBytes(req.frame.Size))
				sw.stats.BusyTime += tx
				if sw.lossProb > 0 && sw.rng.Float64() < sw.lossProb {
					sw.stats.Drops++
					continue
				}
				f := req.frame
				at := proc.Now() + sw.cfg.PropDelay
				sw.eng.At(at, func() {
					if !p.rx.TrySend(f) {
						sw.stats.Drops++
					}
				})
			}
		})
	}
}

// Stop implements Medium.
func (sw *Switch) Stop() {
	for _, p := range sw.ports {
		p.egress.Close()
	}
}

// wireBytes pads and frames a payload like the bus does.
func (sw *Switch) wireBytes(size int) int {
	if size < sw.cfg.MinPayload {
		size = sw.cfg.MinPayload
	}
	return size + sw.cfg.HeaderBytes + sw.cfg.PreambleBytes
}

// frameTime is one frame's serialisation time on a link.
func (sw *Switch) frameTime(size int) sim.Duration {
	return sim.Duration(int64(sw.wireBytes(size)) * 8 * int64(sim.Second) / sw.cfg.BandwidthBps)
}

// ID implements NIC.
func (p *swPort) ID() int { return p.id }

// Send implements NIC: the sender pays serialisation on its private uplink
// per fragment, then the frame queues at the destination's egress port.
func (p *swPort) Send(proc *sim.Proc, dst, size int, payload interface{}) bool {
	if size < 0 {
		panic("ethernet: negative frame size")
	}
	sw := p.sw
	delivered := true
	remaining := size
	for {
		chunk := remaining
		if chunk > sw.cfg.MTU {
			chunk = sw.cfg.MTU
		}
		remaining -= chunk
		last := remaining == 0
		var pl interface{}
		if last {
			pl = payload
		}
		proc.Sleep(sw.frameTime(chunk)) // uplink serialisation, no contention
		f := Frame{Src: p.id, Dst: dst, Size: chunk, Payload: pl}
		if dst == Broadcast {
			for _, q := range sw.ports {
				if q.id != p.id {
					q.egress.TrySend(swReq{frame: f})
				}
			}
		} else {
			if dst < 0 || dst >= len(sw.ports) {
				panic(fmt.Sprintf("ethernet: frame to unknown port %d", dst))
			}
			if !sw.ports[dst].egress.TrySend(swReq{frame: f}) {
				sw.stats.Drops++
				delivered = false
			}
		}
		if last {
			return delivered
		}
	}
}

// Recv implements NIC.
func (p *swPort) Recv(proc *sim.Proc) (Frame, bool) { return p.rx.Recv(proc) }

// TryRecv implements NIC.
func (p *swPort) TryRecv() (Frame, bool) { return p.rx.TryRecv() }

// Inject implements NIC.
func (p *swPort) Inject(f Frame) bool { return p.rx.TrySend(f) }

// Close implements NIC.
func (p *swPort) Close() { p.rx.Close() }

// Closed implements NIC.
func (p *swPort) Closed() bool { return p.rx.Closed() }
