// Package ethernet models the shared 10 Mbps bus Ethernet of the paper's
// testbed as a discrete-event system: a single broadcast medium with
// carrier sense, a contention (collision) window, binary exponential
// backoff, interframe gaps and MTU framing.
//
// The paper attributes the performance drop of communication-heavy runs
// ("bus type Ethernet where occurrence of packet collision increases when
// communication frequency between nodes increases") to exactly this medium,
// so the model keeps the properties that produce that effect: the bus
// serialises all frames, acquisition cost grows with the number of
// simultaneous contenders, and every frame pays preamble/header/IFG
// overhead that penalises small messages.
package ethernet

import (
	"fmt"

	"repro/internal/sim"
)

// Frame is one Ethernet frame on the wire. Payload is carried by reference;
// Size is the payload length in bytes used for timing and accounting.
type Frame struct {
	Src     int // sending station id
	Dst     int // receiving station id, or Broadcast
	Size    int // payload bytes
	Payload interface{}
}

// Broadcast as a Frame.Dst delivers the frame to every station except Src.
const Broadcast = -1

// Config describes the physical medium. The zero value is unusable; use
// DefaultConfig for classic 10BASE2-style parameters.
type Config struct {
	BandwidthBps  int64        // raw signalling rate, bits per second
	SlotTime      sim.Duration // collision/contention slot (512 bit times on 10 Mbps)
	InterframeGap sim.Duration // mandatory idle between frames (96 bit times)
	PropDelay     sim.Duration // one-way propagation delay
	MTU           int          // maximum payload per frame
	MinPayload    int          // frames are padded up to this payload size
	HeaderBytes   int          // per-frame header+trailer overhead (dst/src/type/FCS)
	PreambleBytes int          // preamble+SFD
	MaxBackoffExp int          // BEB exponent cap (10 for classic Ethernet)
	RxQueue       int          // per-station receive queue capacity (frames)
}

// DefaultConfig returns classic shared 10 Mbps Ethernet parameters.
func DefaultConfig() Config { return ConfigForBandwidth(10_000_000) }

// ConfigForBandwidth returns shared-Ethernet parameters for the given
// signalling rate: the slot time stays 512 bit times and the interframe
// gap 96 bit times, as in every classic Ethernet speed grade.
func ConfigForBandwidth(bps int64) Config {
	if bps <= 0 {
		panic("ethernet: non-positive bandwidth")
	}
	bit := float64(sim.Second) / float64(bps)
	return Config{
		BandwidthBps:  bps,
		SlotTime:      sim.Duration(512 * bit),
		InterframeGap: sim.Duration(96 * bit),
		PropDelay:     5 * sim.Microsecond,
		MTU:           1500,
		MinPayload:    46,
		HeaderBytes:   18,
		PreambleBytes: 8,
		MaxBackoffExp: 10,
		RxQueue:       4096,
	}
}

// Stats aggregates bus counters over a run.
type Stats struct {
	Frames        uint64       // frames successfully transmitted
	PayloadBytes  uint64       // payload bytes carried
	WireBytes     uint64       // bytes on the wire incl. padding and headers
	Collisions    uint64       // collision events during contention resolution
	Contended     uint64       // acquisitions that saw >1 contender
	Drops         uint64       // frames dropped at a full receiver queue
	BusyTime      sim.Duration // time the medium carried bits
	ContentionLag sim.Duration // time lost to collision resolution
}

// Bus is the shared medium. Create one per simulated LAN, attach stations,
// then Start it before running the engine.
type Bus struct {
	eng      *sim.Engine
	cfg      Config
	rng      *sim.Rand
	reqs     *sim.Chan[txReq]
	stations []*Station
	stats    Stats
	started  bool
	lossProb float64 // failure injection: probability a frame is lost on the wire
}

type txReq struct {
	frame Frame
	// done is signalled when the frame has left the sender; the value
	// reports whether the frame will be delivered (false: lost on the wire
	// or addressed to a closed station), which is what lets a transport
	// implement consecutive-loss peer-failure detection.
	done *sim.Chan[bool]
}

// NewBus creates a bus on the engine with the given medium parameters.
func NewBus(e *sim.Engine, cfg Config) *Bus {
	return &Bus{
		eng:  e,
		cfg:  cfg,
		rng:  e.Rand().Fork(),
		reqs: sim.NewChan[txReq](e, 1<<16),
	}
}

// SetLossProbability enables failure injection: each frame is independently
// dropped with probability p (0 disables). Intended for tests.
func (b *Bus) SetLossProbability(p float64) { b.lossProb = p }

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// Attach adds a station to the bus and returns its handle. All stations
// must be attached before Start.
func (b *Bus) Attach() *Station {
	if b.started {
		panic("ethernet: Attach after Start")
	}
	s := &Station{
		bus: b,
		id:  len(b.stations),
		rx:  sim.NewChan[Frame](b.eng, b.cfg.RxQueue),
	}
	b.stations = append(b.stations, s)
	return s
}

// AttachNIC implements Medium.
func (b *Bus) AttachNIC() NIC { return b.Attach() }

// Start spawns the bus arbiter process. Call once, before Engine.Run.
func (b *Bus) Start() {
	if b.started {
		return
	}
	b.started = true
	b.eng.Spawn("ethernet-bus", b.arbiter)
}

// Stop closes the request stream; the arbiter exits after draining it.
func (b *Bus) Stop() { b.reqs.Close() }

// arbiter serialises access to the medium, charging contention, framing and
// transmission time, then delivering frames to receiver queues.
func (b *Bus) arbiter(p *sim.Proc) {
	for {
		req, ok := b.reqs.Recv(p)
		if !ok {
			return
		}
		// Contenders: the frame in hand plus everything already queued
		// behind it. In CSMA/CD they would all have sensed the idle medium
		// and collided; resolve the contention with binary exponential
		// backoff before the winner transmits. The queue preserves FIFO so
		// the "winner" is the head; the backoff time is what matters.
		contenders := 1 + b.reqs.Len()
		if contenders > 1 {
			b.stats.Contended++
			lag := b.contentionDelay(contenders)
			b.stats.ContentionLag += lag
			p.Sleep(lag)
		}
		p.Sleep(b.cfg.InterframeGap)
		b.transmit(p, req)
	}
}

// contentionDelay simulates BEB rounds among k stations until a unique
// winner emerges, returning the total virtual time consumed.
func (b *Bus) contentionDelay(k int) sim.Duration {
	var total sim.Duration
	round := 0
	for k > 1 {
		round++
		b.stats.Collisions++
		exp := round
		if exp > b.cfg.MaxBackoffExp {
			exp = b.cfg.MaxBackoffExp
		}
		window := 1 << uint(exp)
		// Each contender draws a slot; the earliest unique draw wins.
		// Count how many share the minimum draw: they collide again.
		draws := make(map[int]int, k)
		min := window
		for i := 0; i < k; i++ {
			d := b.rng.Intn(window)
			draws[d]++
			if d < min {
				min = d
			}
		}
		total += sim.Duration(min+1) * b.cfg.SlotTime
		if draws[min] == 1 {
			return total
		}
		k = draws[min] // the tied minimum draws collide in the next round
	}
	return total
}

// transmit charges wire time for req's frame and schedules delivery.
func (b *Bus) transmit(p *sim.Proc, req txReq) {
	f := req.frame
	payload := f.Size
	if payload < b.cfg.MinPayload {
		payload = b.cfg.MinPayload
	}
	wireBytes := payload + b.cfg.HeaderBytes + b.cfg.PreambleBytes
	txTime := sim.Duration(int64(wireBytes) * 8 * int64(sim.Second) / b.cfg.BandwidthBps)
	p.Sleep(txTime)
	b.stats.Frames++
	b.stats.PayloadBytes += uint64(f.Size)
	b.stats.WireBytes += uint64(wireBytes)
	b.stats.BusyTime += txTime

	// Decide the frame's fate before unblocking the sender, so the sender
	// learns whether its frame made it onto a live receiver. The rng draw
	// stays one-per-frame (iff loss injection is on) to keep seeded runs
	// deterministic.
	lost := b.lossProb > 0 && b.rng.Float64() < b.lossProb
	if f.Dst != Broadcast {
		if f.Dst < 0 || f.Dst >= len(b.stations) {
			panic(fmt.Sprintf("ethernet: frame to unknown station %d", f.Dst))
		}
		if b.stations[f.Dst].Closed() {
			lost = true // dead station: the frame falls on the floor
		}
	}
	if lost {
		b.stats.Drops++
	}

	// Sender unblocks once its frame has left the NIC.
	req.done.TrySend(!lost)

	if lost {
		return
	}
	deliverAt := p.Now() + b.cfg.PropDelay
	if f.Dst == Broadcast {
		for _, s := range b.stations {
			if s.id == f.Src {
				continue
			}
			b.deliver(s, f, deliverAt)
		}
		return
	}
	b.deliver(b.stations[f.Dst], f, deliverAt)
}

func (b *Bus) deliver(s *Station, f Frame, at sim.Time) {
	b.eng.At(at, func() {
		if !s.rx.TrySend(f) {
			b.stats.Drops++
		}
	})
}

// Station is one attached NIC.
type Station struct {
	bus *Bus
	id  int
	rx  *sim.Chan[Frame]
}

// ID returns the station's bus address (0-based attach order).
func (s *Station) ID() int { return s.id }

// Send fragments payload-sized data into MTU frames and transmits them,
// blocking the caller until the last frame has left the station. The
// payload value rides on the final frame only; earlier fragments carry nil.
// It reports whether every fragment was delivered: false means at least one
// fragment was lost on the wire or the destination station is closed.
func (s *Station) Send(p *sim.Proc, dst, size int, payload interface{}) bool {
	if size < 0 {
		panic("ethernet: negative frame size")
	}
	delivered := true
	remaining := size
	for {
		if s.bus.reqs.Closed() {
			// The bus has been stopped (run teardown). A process still
			// draining queued work — e.g. a kernel releasing a barrier
			// while the last application process exits — loses the frame,
			// exactly as if the destination station had closed.
			return false
		}
		chunk := remaining
		if chunk > s.bus.cfg.MTU {
			chunk = s.bus.cfg.MTU
		}
		remaining -= chunk
		last := remaining == 0
		var pl interface{}
		if last {
			pl = payload
		}
		done := sim.NewChan[bool](s.bus.eng, 1)
		s.bus.reqs.Send(p, txReq{
			frame: Frame{Src: s.id, Dst: dst, Size: chunk, Payload: pl},
			done:  done,
		})
		if v, _ := done.Recv(p); !v {
			delivered = false
		}
		if last {
			return delivered
		}
	}
}

// Inject places a frame directly into this station's receive queue without
// touching the medium (used for own-node message delivery, which the DSE
// message exchange module short-cuts past the wire). It reports whether the
// queue had room.
func (s *Station) Inject(f Frame) bool { return s.rx.TrySend(f) }

// Recv blocks until a frame addressed to this station arrives.
// ok is false if the bus was stopped.
func (s *Station) Recv(p *sim.Proc) (Frame, bool) {
	return s.rx.Recv(p)
}

// TryRecv returns a queued frame without blocking.
func (s *Station) TryRecv() (Frame, bool) { return s.rx.TryRecv() }

// Close wakes any blocked receiver on this station with ok=false.
func (s *Station) Close() { s.rx.Close() }

// Closed reports whether the station has been closed (its receive queue no
// longer accepts frames).
func (s *Station) Closed() bool { return s.rx.Closed() }
