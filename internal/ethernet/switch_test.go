package ethernet

import (
	"testing"

	"repro/internal/sim"
)

func newTestSwitch(t *testing.T, stations int) (*sim.Engine, *Switch, []NIC) {
	t.Helper()
	e := sim.NewEngine(7)
	sw := NewSwitch(e, DefaultConfig())
	nics := make([]NIC, stations)
	for i := range nics {
		nics[i] = sw.AttachNIC()
	}
	sw.Start()
	return e, sw, nics
}

func TestSwitchPointToPoint(t *testing.T) {
	e, sw, nics := newTestSwitch(t, 2)
	var got Frame
	e.Spawn("recv", func(p *sim.Proc) {
		f, ok := nics[1].Recv(p)
		if !ok {
			t.Error("closed early")
		}
		got = f
	})
	e.Spawn("send", func(p *sim.Proc) {
		nics[0].Send(p, 1, 100, "hello")
		p.Sleep(sim.Millisecond)
		sw.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Payload != "hello" || got.Src != 0 {
		t.Fatalf("frame = %+v", got)
	}
	if sw.Stats().Frames != 1 {
		t.Fatalf("frames = %d", sw.Stats().Frames)
	}
}

func TestSwitchDisjointFlowsDoNotContend(t *testing.T) {
	// Two disjoint flows (0->1, 2->3) on a switch must finish in about the
	// time of one flow; on the bus they would serialise.
	flowTime := func(medium func(e *sim.Engine) (Medium, []NIC)) sim.Time {
		e := sim.NewEngine(3)
		m, nics := medium(e)
		m.Start()
		const frames = 50
		done := 0
		var finish sim.Time
		for _, pair := range [][2]int{{0, 1}, {2, 3}} {
			pair := pair
			e.Spawn("recv", func(p *sim.Proc) {
				for i := 0; i < frames; i++ {
					if _, ok := nics[pair[1]].Recv(p); !ok {
						return
					}
				}
				if t := p.Now(); t > finish {
					finish = t
				}
				done++
				if done == 2 {
					m.Stop()
					for _, nic := range nics {
						nic.Close()
					}
				}
			})
			e.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < frames; i++ {
					nics[pair[0]].Send(p, pair[1], 1400, i)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return finish
	}
	busTime := flowTime(func(e *sim.Engine) (Medium, []NIC) {
		b := NewBus(e, DefaultConfig())
		nics := make([]NIC, 4)
		for i := range nics {
			nics[i] = b.AttachNIC()
		}
		return b, nics
	})
	switchTime := flowTime(func(e *sim.Engine) (Medium, []NIC) {
		sw := NewSwitch(e, DefaultConfig())
		nics := make([]NIC, 4)
		for i := range nics {
			nics[i] = sw.AttachNIC()
		}
		return sw, nics
	})
	if float64(switchTime) > 0.7*float64(busTime) {
		t.Fatalf("switch (%v) should clearly beat the bus (%v) on disjoint flows", switchTime, busTime)
	}
}

func TestSwitchNoCollisions(t *testing.T) {
	e, sw, nics := newTestSwitch(t, 3)
	var got int
	e.Spawn("recv", func(p *sim.Proc) {
		for got < 40 {
			if _, ok := nics[2].Recv(p); !ok {
				return
			}
			got++
		}
		sw.Stop()
		for _, nic := range nics {
			nic.Close()
		}
	})
	for s := 0; s < 2; s++ {
		s := s
		e.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				nics[s].Send(p, 2, 200, i)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 40 {
		t.Fatalf("received %d frames", got)
	}
	if sw.Stats().Collisions != 0 {
		t.Fatal("a switch must not record collisions")
	}
}

func TestSwitchBroadcast(t *testing.T) {
	e, sw, nics := newTestSwitch(t, 4)
	counts := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		e.Spawn("recv", func(p *sim.Proc) {
			if _, ok := nics[i].Recv(p); ok {
				counts[i]++
			}
		})
	}
	e.Spawn("send", func(p *sim.Proc) {
		nics[0].Send(p, Broadcast, 64, "all")
		p.Sleep(sim.Millisecond)
		sw.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < 4; i++ {
		if counts[i] != 1 {
			t.Fatalf("port %d received %d broadcasts", i, counts[i])
		}
	}
}

func TestSwitchLossInjection(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, DefaultConfig())
	a, b := sw.AttachNIC(), sw.AttachNIC()
	sw.SetLossProbability(1.0)
	sw.Start()
	_ = a
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, 1, 64, i)
		}
		p.Sleep(sim.Millisecond)
		sw.Stop()
		b.Close()
	})
	e.Spawn("recv", func(p *sim.Proc) {
		if _, ok := b.Recv(p); ok {
			t.Error("frame survived 100% loss")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sw.Stats().Drops != 5 {
		t.Fatalf("drops = %d, want 5", sw.Stats().Drops)
	}
}

func TestSwitchFragmentation(t *testing.T) {
	e, sw, nics := newTestSwitch(t, 2)
	frames := 0
	e.Spawn("recv", func(p *sim.Proc) {
		for {
			f, ok := nics[1].Recv(p)
			if !ok {
				return
			}
			frames++
			if f.Payload != nil {
				sw.Stop()
				nics[1].Close()
				return
			}
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		nics[0].Send(p, 1, 4000, "big")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3 (MTU fragmentation)", frames)
	}
}
