package ethernet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestBus(t *testing.T, stations int) (*sim.Engine, *Bus, []*Station) {
	t.Helper()
	e := sim.NewEngine(7)
	b := NewBus(e, DefaultConfig())
	ss := make([]*Station, stations)
	for i := range ss {
		ss[i] = b.Attach()
	}
	b.Start()
	return e, b, ss
}

func TestPointToPointDelivery(t *testing.T) {
	e, b, ss := newTestBus(t, 2)
	var got Frame
	var at sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		f, ok := ss[1].Recv(p)
		if !ok {
			t.Error("bus closed unexpectedly")
		}
		got, at = f, p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		ss[0].Send(p, 1, 100, "hello")
		b.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Payload != "hello" || got.Src != 0 || got.Dst != 1 {
		t.Fatalf("frame = %+v", got)
	}
	if at <= 0 {
		t.Fatal("delivery took no virtual time")
	}
	// 100B payload + 26B overhead = 126B = 1008 bits at 10 Mbps = 100.8us,
	// plus IFG 9.6us and 5us propagation.
	want := sim.Duration(100800) + DefaultConfig().InterframeGap + DefaultConfig().PropDelay
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSmallFramesPaddedToMinimum(t *testing.T) {
	e, b, ss := newTestBus(t, 2)
	e.Spawn("recv", func(p *sim.Proc) { ss[1].Recv(p) })
	e.Spawn("send", func(p *sim.Proc) {
		ss[0].Send(p, 1, 1, "x")
		b.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := b.Stats()
	if st.PayloadBytes != 1 {
		t.Fatalf("payload bytes = %d, want 1", st.PayloadBytes)
	}
	wantWire := uint64(46 + 18 + 8)
	if st.WireBytes != wantWire {
		t.Fatalf("wire bytes = %d, want %d (padded)", st.WireBytes, wantWire)
	}
}

func TestFragmentationOverMTU(t *testing.T) {
	e, b, ss := newTestBus(t, 2)
	const size = 4000 // 1500+1500+1000 -> 3 frames
	var frames int
	var sawPayload bool
	e.Spawn("recv", func(p *sim.Proc) {
		for {
			f, ok := ss[1].Recv(p)
			if !ok {
				return
			}
			frames++
			if f.Payload != nil {
				sawPayload = true
				ss[1].Close()
				return
			}
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		ss[0].Send(p, 1, size, "big")
		b.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3", frames)
	}
	if !sawPayload {
		t.Fatal("payload never delivered")
	}
	if b.Stats().Frames != 3 {
		t.Fatalf("bus counted %d frames, want 3", b.Stats().Frames)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	e, b, ss := newTestBus(t, 4)
	got := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		e.Spawn("recv", func(p *sim.Proc) {
			if _, ok := ss[i].Recv(p); ok {
				got[i]++
			}
		})
	}
	e.Spawn("send", func(p *sim.Proc) {
		ss[0].Send(p, Broadcast, 64, "all")
		p.Sleep(sim.Millisecond)
		b.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Fatalf("station %d received %d frames, want 1", i, got[i])
		}
	}
	if got[0] != 0 {
		t.Fatal("sender received its own broadcast")
	}
}

func TestBusSerialisesConcurrentSenders(t *testing.T) {
	e, b, ss := newTestBus(t, 3)
	const each = 20
	var received int
	e.Spawn("recv", func(p *sim.Proc) {
		for received < 2*each {
			if _, ok := ss[2].Recv(p); !ok {
				return
			}
			received++
		}
		b.Stop()
	})
	for s := 0; s < 2; s++ {
		s := s
		e.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < each; i++ {
				ss[s].Send(p, 2, 200, i)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != 2*each {
		t.Fatalf("received %d, want %d", received, 2*each)
	}
	st := b.Stats()
	if st.Contended == 0 {
		t.Fatal("two simultaneous senders never contended")
	}
	if st.BusyTime == 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestContentionGrowsWithSenders(t *testing.T) {
	lag := func(senders int) sim.Duration {
		e := sim.NewEngine(11)
		b := NewBus(e, DefaultConfig())
		ss := make([]*Station, senders+1)
		for i := range ss {
			ss[i] = b.Attach()
		}
		b.Start()
		sink := senders
		total := senders * 30
		n := 0
		e.Spawn("recv", func(p *sim.Proc) {
			for n < total {
				if _, ok := ss[sink].Recv(p); !ok {
					return
				}
				n++
			}
			b.Stop()
		})
		for s := 0; s < senders; s++ {
			s := s
			e.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < 30; i++ {
					ss[s].Send(p, sink, 100, i)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run(%d senders): %v", senders, err)
		}
		return b.Stats().ContentionLag
	}
	if l2, l8 := lag(2), lag(8); l8 <= l2 {
		t.Fatalf("contention lag did not grow: 2 senders %v, 8 senders %v", l2, l8)
	}
}

func TestLossInjectionDropsFrames(t *testing.T) {
	e := sim.NewEngine(3)
	b := NewBus(e, DefaultConfig())
	s0, s1 := b.Attach(), b.Attach()
	b.SetLossProbability(1.0)
	b.Start()
	var got int
	e.Spawn("recv", func(p *sim.Proc) {
		for {
			if _, ok, timedOut := s1.rx.RecvTimeout(p, 50*sim.Millisecond); timedOut {
				return
			} else if ok {
				got++
			} else {
				return
			}
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			s0.Send(p, 1, 64, i)
		}
		b.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Fatalf("received %d frames despite 100%% loss", got)
	}
	if b.Stats().Drops != 5 {
		t.Fatalf("drops = %d, want 5", b.Stats().Drops)
	}
}

// Property: payload bytes are conserved for any mix of message sizes.
func TestPayloadConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.NewEngine(5)
		b := NewBus(e, DefaultConfig())
		src, dst := b.Attach(), b.Attach()
		b.Start()
		var want uint64
		for _, s := range sizes {
			want += uint64(s)
		}
		done := 0
		e.Spawn("recv", func(p *sim.Proc) {
			for done < len(sizes) {
				f, ok := dst.Recv(p)
				if !ok {
					return
				}
				if f.Payload != nil {
					done++
				}
			}
			b.Stop()
		})
		e.Spawn("send", func(p *sim.Proc) {
			for i, s := range sizes {
				src.Send(p, 1, int(s), i)
			}
			if len(sizes) == 0 {
				b.Stop()
				dst.Close()
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return b.Stats().PayloadBytes == want && done == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: BEB contention resolution always terminates and returns a
// positive delay for k >= 2 contenders.
func TestContentionDelayTerminates(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		n := int(k%32) + 2
		e := sim.NewEngine(seed)
		b := NewBus(e, DefaultConfig())
		d := b.contentionDelay(n)
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilisationBounded(t *testing.T) {
	e, b, ss := newTestBus(t, 2)
	var endAt sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			ss[1].Recv(p)
		}
		endAt = p.Now()
		b.Stop()
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			ss[0].Send(p, 1, 1400, i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.Stats().BusyTime > endAt {
		t.Fatalf("busy time %v exceeds elapsed %v", b.Stats().BusyTime, endAt)
	}
	util := float64(b.Stats().BusyTime) / float64(endAt)
	if util < 0.5 {
		t.Fatalf("back-to-back sender achieved only %.0f%% utilisation", util*100)
	}
}
