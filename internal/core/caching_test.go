package core

import (
	"fmt"
	"testing"
)

func cachingCfg(n int) Config {
	cfg := simCfg(n)
	cfg.Caching = true
	return cfg
}

func TestCachingBasicCoherence(t *testing.T) {
	res, err := Run(cachingCfg(4), func(pe *PE) error {
		base := pe.Alloc(256)
		for i := pe.ID(); i < 256; i += pe.N() {
			pe.GMWrite(base+uint64(i), int64(i))
		}
		pe.Barrier()
		for i := 0; i < 256; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(i) {
				return fmt.Errorf("PE %d: word %d = %d", pe.ID(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestCachingInvalidatesStaleCopies(t *testing.T) {
	res, err := Run(cachingCfg(2), func(pe *PE) error {
		x := pe.Alloc(1)
		if pe.ID() == 0 {
			pe.GMWrite(x, 1)
		}
		pe.Barrier()
		// Both PEs read (and PE!=home caches) the value.
		if v := pe.GMRead(x); v != 1 {
			return fmt.Errorf("PE %d: initial read %d", pe.ID(), v)
		}
		pe.Barrier()
		// PE 1 overwrites; PE 0's cached copy (if any) must be invalidated.
		if pe.ID() == 1 {
			pe.GMWrite(x, 2)
		}
		pe.Barrier()
		if v := pe.GMRead(x); v != 2 {
			return fmt.Errorf("PE %d: stale read %d after remote write", pe.ID(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestCachingRepeatReadsHitCache(t *testing.T) {
	res, err := Run(cachingCfg(2), func(pe *PE) error {
		x := pe.Alloc(64)
		pe.Barrier()
		if pe.ID() == 1 {
			// Address homed at kernel 0: first read misses, rest hit.
			remote := x // block 0 words live at kernel 0 after the scratch region? compute a remote address instead:
			for remote = x; pe.Space().HomeOf(remote) == pe.ID(); remote++ {
			}
			for i := 0; i < 10; i++ {
				pe.GMRead(remote)
			}
			hits, misses, _ := pe.CacheStats()
			if misses == 0 || hits < 9 {
				return fmt.Errorf("cache not effective: hits=%d misses=%d", hits, misses)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestCachingCutsRemoteTrafficOnReadHeavyWorkload(t *testing.T) {
	traffic := func(caching bool) uint64 {
		cfg := simCfg(4)
		cfg.Caching = caching
		res, err := Run(cfg, func(pe *PE) error {
			base := pe.Alloc(64)
			if pe.ID() == 0 {
				for i := 0; i < 64; i++ {
					pe.GMWrite(base+uint64(i), int64(i))
				}
			}
			pe.Barrier()
			// Everyone re-reads the same shared table many times.
			for rep := 0; rep < 20; rep++ {
				for i := 0; i < 64; i++ {
					if v := pe.GMRead(base + uint64(i)); v != int64(i) {
						return fmt.Errorf("bad value %d", v)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := res.FirstErr(); err != nil {
			t.Fatal(err)
		}
		return res.Total.MsgsSent
	}
	with, without := traffic(true), traffic(false)
	if with >= without/2 {
		t.Fatalf("caching did not cut read traffic: %d with vs %d without", with, without)
	}
}

func TestCachingFetchAddInvalidates(t *testing.T) {
	res, err := Run(cachingCfg(3), func(pe *PE) error {
		x := pe.Alloc(1)
		pe.GMRead(x) // everyone caches the block
		pe.Barrier()
		if pe.ID() == 2 {
			pe.FetchAdd(x, 5)
		}
		pe.Barrier()
		if v := pe.GMRead(x); v != 5 {
			return fmt.Errorf("PE %d: read %d after fetch-add, want 5", pe.ID(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestCachingCASInvalidates(t *testing.T) {
	res, err := Run(cachingCfg(3), func(pe *PE) error {
		x := pe.Alloc(1)
		pe.GMRead(x)
		pe.Barrier()
		if pe.ID() == 1 {
			if _, ok := pe.CAS(x, 0, 9); !ok {
				return fmt.Errorf("CAS failed")
			}
		}
		pe.Barrier()
		if v := pe.GMRead(x); v != 9 {
			return fmt.Errorf("PE %d: read %d after CAS, want 9", pe.ID(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

// Randomised coherence check: a deterministic pseudo-random schedule of
// writes (each address owned by one writer per phase) must always be read
// back coherently after a barrier, with caching on.
func TestCachingRandomisedCoherence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := cachingCfg(4)
			cfg.Seed = seed
			res, err := Run(cfg, func(pe *PE) error {
				const words = 96
				base := pe.Alloc(words)
				rng := seed
				next := func() uint64 {
					rng = rng*6364136223846793005 + 1442695040888963407
					return rng >> 33
				}
				for phase := 0; phase < 4; phase++ {
					// Deterministic owner per (phase, word): same on all PEs.
					for w := 0; w < words; w++ {
						owner := int(next() % uint64(pe.N()))
						if owner == pe.ID() {
							pe.GMWrite(base+uint64(w), int64(phase*1000+w))
						}
					}
					pe.Barrier()
					for w := 0; w < words; w++ {
						if v := pe.GMRead(base + uint64(w)); v != int64(phase*1000+w) {
							return fmt.Errorf("phase %d word %d: %d", phase, w, v)
						}
					}
					pe.Barrier()
				}
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
