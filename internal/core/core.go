package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/ethernet"
	"repro/internal/gmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/transport/simnet"
	"repro/internal/transport/tcpnet"
)

// TransportKind selects the message substrate.
type TransportKind string

// Available transports.
const (
	TransportSim    TransportKind = "simnet" // simulated Ethernet + platform models (default)
	TransportInproc TransportKind = "inproc" // in-process channels, no cost model
	TransportTCP    TransportKind = "tcp"    // real loopback TCP sockets
)

// BarrierKind selects the barrier implementation.
type BarrierKind int

// Barrier flavours.
const (
	BarrierCentral BarrierKind = iota // central manager at kernel 0 (DSE default)
	BarrierTree                       // distributed combining tree (ablation)
)

func (b BarrierKind) String() string {
	if b == BarrierTree {
		return "tree"
	}
	return "central"
}

// Config assembles a DSE cluster.
type Config struct {
	// NumPE is the number of processor elements (DSE kernels).
	NumPE int
	// Platform selects the Table 1 environment; required for TransportSim.
	Platform *platform.Platform
	// Transport defaults to TransportSim.
	Transport TransportKind
	// Machines is the physical machine count (0 = paper's six).
	Machines int
	// Load selects the virtual-cluster co-location model.
	Load platform.LoadModel
	// Seed drives all simulator randomness.
	Seed uint64
	// GMBlockWords is the DSM block size in 64-bit words (0 = default 32).
	GMBlockWords int
	// Caching enables the write-invalidate caching protocol (extension).
	Caching bool
	// Switched replaces the shared-bus Ethernet with a switched network
	// (ablation of the medium; simulated transport only).
	Switched bool
	// Legacy models the paper's *old* DSE organisation — DSE kernel and
	// DSE process as separate UNIX processes — by charging an IPC round
	// trip on every Parallel-API kernel interaction. The default (false)
	// is the paper's reorganised single-process design.
	Legacy bool
	// Barrier selects the barrier implementation.
	Barrier BarrierKind
	// RequestTimeout bounds every remote request; 0 waits forever.
	// Recommended for TransportTCP so node failures surface as errors.
	RequestTimeout sim.Duration
	// RequestRetries is how many times a timed-out request is retransmitted
	// before the timeout is surfaced (0 = no retries). Retried mutating
	// operations are applied exactly once: the home kernel's dedup window
	// absorbs duplicates. Requires RequestTimeout > 0 to have any effect.
	RequestRetries int
	// RetryBackoff is the pause before the first retransmission, doubling
	// per attempt (capped at 8x). 0 defaults to RequestTimeout/4.
	RetryBackoff sim.Duration
	// PeerLossBudget enables peer-failure detection on the simulated
	// transport: after this many consecutive undelivered frames to one
	// kernel, that kernel is declared dead and requests against it fail
	// immediately with PeerDownError. 0 disables detection. (The TCP
	// transport detects failures from broken connections and needs no
	// budget.)
	PeerLossBudget int
	// Ethernet overrides the simulated medium (nil = the platform's LAN).
	Ethernet *ethernet.Config
	// LossProbability injects frame loss on the simulated medium (failure
	// injection; combine with RequestTimeout so lost requests surface as
	// errors instead of hanging the virtual cluster).
	LossProbability float64
	// Tracing enables request span tracing: every request round trip,
	// synchronisation wait and kernel service event is recorded into a
	// fixed-size per-context ring buffer (sampling-capable) and surfaced as
	// Result.Spans, exportable with trace.WriteChromeTrace. The zero value
	// is disabled and costs one nil pointer check per request.
	Tracing trace.TracingConfig
	// LiveRTT, when non-nil, additionally receives every request
	// round-trip latency any PE observes. trace.Histogram is safe for
	// parallel Observe and concurrent reads, so a live exporter (e.g.
	// dsenode's /metrics endpoint) may aggregate it while kernels still
	// run — the one PEStats surface with that guarantee.
	LiveRTT *trace.Histogram
	// MessageLog, when non-nil, receives one line per message any kernel
	// handles ("t=<time> k=<kernel> <message>") — a cluster-wide protocol
	// trace for debugging. Writes are serialised across kernels.
	MessageLog io.Writer
	// RecordHistory enables the operation-history recorder: every
	// global-memory operation, lock and barrier is logged with its
	// invocation/response interval and surfaced as Result.History for
	// check.Check to validate against the memory model. Off, it costs one
	// nil pointer check per operation (the Config.Tracing pattern).
	RecordHistory bool
	// DelayJitter adds a uniformly distributed extra delay in [0,
	// DelayJitter) to every frame received on the simulated transport —
	// fault-schedule injection for the stress harness (deterministic: drawn
	// from a per-node rng forked off the engine seed).
	DelayJitter sim.Duration
	// Kills schedules mid-run kernel deaths on the simulated transport
	// (fault-schedule injection; see simnet.Kill).
	Kills []simnet.Kill
	// Ckpt enables the coordinated checkpoint/restart subsystem: programs
	// may call pe.Checkpoint() to take cluster-wide snapshots through the
	// configured store, and RunWithRecovery restarts a cluster from the last
	// complete snapshot generation after a PE death. Nil disables
	// checkpointing entirely (pe.Checkpoint becomes a no-op and the hot path
	// is untouched).
	Ckpt *CheckpointConfig
	// FaultDropInvalidations is a TEST-ONLY fault: home kernels acknowledge
	// mutating requests without invalidating remote cached copies, leaving
	// stale data readable. It exists to prove the history checker can fail
	// (a deliberately broken invalidation path must surface as stale-read
	// violations) and must never be set outside tests.
	FaultDropInvalidations bool
	// KernelShards shards each kernel's home-side global-memory service by
	// address range: requests for different block ranges are serviced by
	// independent shards, each with its own dedup window and invalidation
	// state (see kernelShard). On the real transports shards > 1 run as
	// parallel worker goroutines; the simulated transport always dispatches
	// inline (per-shard state only), preserving determinism. 0 resolves to
	// GOMAXPROCS on real transports and to 1 under simulation; values are
	// clamped to [1, gmem.SegStripes].
	KernelShards int
	// DirectReads controls the one-sided read fast path: co-located PEs
	// (inproc and simulated transports) resolve uncached reads of a remote
	// home directly from the home's seqlock-protected segment, without a
	// request/reply message pair. 0 enables it automatically when the
	// resolved KernelShards > 1; >0 forces it on; <0 forces it off. It is
	// never active with Caching (reads must reach the directory) or Legacy
	// (the old organisation has no shared address space), or over TCP.
	DirectReads int
	// WriteRings controls the one-sided write fast path: co-located PEs
	// submit uncached writes into a remote home through a per-shard MPSC
	// submission ring that the owning service shard drains in batches
	// between message dispatches, so the write never wakes the serve loop
	// or allocates a message. Tri-state like DirectReads: 0 enables rings
	// automatically whenever the direct-read window is enabled; >0 forces
	// them on (still subject to the window's co-location constraints); <0
	// forces them off. Rings need a drainer, so on real transports they
	// additionally require shard workers (resolved KernelShards > 1); under
	// simulation submissions are drained inline at the submit point, which
	// keeps virtual-time schedules deterministic.
	WriteRings int
	// LatentPEs starts the highest LatentPEs ranks outside the active
	// membership: their kernels home no global-memory blocks (the probe rule
	// skips latent members) and their PEs act as pure clients until they call
	// pe.Join(), which hands them their directory slice live — the elastic
	// membership extension. Latent PEs still run the program and participate
	// in barriers. Must leave at least one active rank and is incompatible
	// with Caching (the coherence directory assumes the static layout).
	LatentPEs int
	// GMDefaultMode is the consistency tier of allocations that do not pick
	// one explicitly (pe.Alloc/AllocBlocks); pe.AllocMode selects a tier per
	// allocation. The zero value is gmem.ModeStrong — the paper's home-based
	// strong coherence — so existing programs are unaffected. See DESIGN.md
	// §14 for the mode lattice.
	GMDefaultMode gmem.Mode
	// LeaseDuration is the validity window granted with every lease-mode
	// block fetch (0 = 1ms). Longer leases skip more invalidation rounds and
	// admit proportionally more staleness; the checker bounds each read by
	// its lease's grant-to-expiry window.
	LeaseDuration sim.Duration
	// FaultSkipReleaseFlush is a TEST-ONLY fault: synchronisation edges
	// discard the write-combining buffer instead of flushing it, so
	// release-mode writes never reach their homes. A run with release-mode
	// traffic and this set must produce release violations; the harness
	// tests use it to prove the checker's release rules catch a broken
	// flush. Must never be set outside tests.
	FaultSkipReleaseFlush bool
	// FaultIgnoreLeaseExpiry is a TEST-ONLY fault: PEs keep serving reads
	// from leases past their expiry. A run with lease-mode traffic and this
	// set must produce lease-overstay violations. Must never be set outside
	// tests.
	FaultIgnoreLeaseExpiry bool

	// Inspect, when non-nil, receives a post-shutdown residue report before
	// Run returns — the leak oracle scheduler tests assert on: a clean run
	// leaves no user mailboxes, namespace bindings, parked synchronisation
	// waiters or namespace blocks behind.
	Inspect func(Residue)

	// testInspect, when non-nil, is called with the cluster's kernels and
	// PEs after shutdown but before Run returns — a white-box hook for
	// package-internal tests (e.g. asserting the user-queue map drained).
	testInspect func([]*Kernel, []*PE)
	// logMu serialises MessageLog writes; created by withDefaults.
	logMu *sync.Mutex
	// recorder fans out per-PE history recorders; created by withDefaults
	// when RecordHistory is set.
	recorder *check.Recorder
	// restore carries the decoded snapshot a recovering cluster starts from;
	// set by RunWithRecovery between attempts.
	restore *restoreState
}

// CheckpointConfig configures the checkpoint/restart subsystem.
type CheckpointConfig struct {
	// Store receives snapshot generations (e.g. a ckpt.DirStore).
	Store ckpt.Store
	// Keep is how many committed generations GC retains (0 = 2).
	Keep int
}

func (cfg *Config) withDefaults() (Config, error) {
	c := *cfg
	if c.NumPE <= 0 {
		return c, errors.New("core: NumPE must be positive")
	}
	if c.Transport == "" {
		c.Transport = TransportSim
	}
	if c.Transport == TransportSim && c.Platform == nil {
		return c, errors.New("core: simulated transport requires a Platform")
	}
	if c.GMBlockWords == 0 {
		c.GMBlockWords = 32
	}
	if c.KernelShards == 0 {
		if c.Transport == TransportSim {
			// Inline dispatch anyway (no workers under simulation), and one
			// shard keeps the virtual-time message schedule bit-identical to
			// the unsharded kernel.
			c.KernelShards = 1
		} else {
			c.KernelShards = runtime.GOMAXPROCS(0)
		}
	}
	if c.KernelShards < 1 {
		c.KernelShards = 1
	}
	if c.KernelShards > gmem.SegStripes {
		// More shards than segment lock stripes would map two shards onto one
		// stripe, reintroducing the contention sharding exists to remove.
		c.KernelShards = gmem.SegStripes
	}
	if c.LatentPEs < 0 || c.LatentPEs >= c.NumPE {
		return c, errors.New("core: LatentPEs must leave at least one active PE")
	}
	if c.LatentPEs > 0 && c.Caching {
		return c, errors.New("core: LatentPEs is incompatible with Caching (the coherence directory assumes the static home layout)")
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = sim.Millisecond
	}
	if c.RetryBackoff == 0 && c.RequestTimeout > 0 {
		c.RetryBackoff = c.RequestTimeout / 4
	}
	if c.MessageLog != nil {
		c.logMu = &sync.Mutex{}
	}
	if c.RecordHistory {
		c.recorder = check.NewRecorder(c.NumPE)
	}
	if c.Ckpt != nil {
		if c.Ckpt.Store == nil {
			return c, errors.New("core: CheckpointConfig requires a Store")
		}
		if c.Ckpt.Keep == 0 {
			c.Ckpt.Keep = 2
		}
	}
	if c.recorder != nil && c.restore != nil {
		// Restored words have no writer event in this run's history; feed
		// them to the checker as the pre-history baseline.
		c.restore.feedBaseline(c.recorder, c.GMBlockWords)
	}
	return c, nil
}

// Result reports a cluster run.
type Result struct {
	// Elapsed is the end-to-end execution time: virtual time under
	// simulation, wall time on real transports.
	Elapsed sim.Duration
	// PerPE holds each PE's merged counters.
	PerPE []trace.PEStats
	// Total sums PerPE.
	Total trace.PEStats
	// Bus carries medium statistics (simulated transport only).
	Bus ethernet.Stats
	// RTT is the distribution of request round-trip latencies across all
	// PEs (global-memory operations, process management, pings). Per-op
	// distributions, kernel service times and synchronisation waits are in
	// Total (and PerPE) — see trace.PEStats.LatencyTable.
	RTT trace.Histogram
	// Spans holds every recorded request/service span across all PEs,
	// sorted by start time (empty unless Config.Tracing.Enabled). Export
	// with trace.WriteChromeTrace.
	Spans []trace.Span
	// Errs holds each PE's program error (nil entries for success).
	Errs []error
	// History is the merged operation history (nil unless
	// Config.RecordHistory); validate it with check.Check.
	History *check.History
	// DeadPeers lists the PEs a majority of kernels declared dead during the
	// run, sorted ascending. The majority vote matters: a killed node's own
	// sends all fail, so it falsely accuses every survivor — only a peer a
	// quorum agrees on is genuinely gone. Unambiguous with NumPE >= 3.
	DeadPeers []int
}

// WriteChromeTrace exports the run's spans in Chrome trace_event format
// (openable in chrome://tracing or Perfetto). It fails when the run was not
// traced.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	if len(r.Spans) == 0 {
		return errors.New("core: no spans recorded (enable Config.Tracing)")
	}
	return trace.WriteChromeTrace(w, r.Spans)
}

// FirstErr returns the lowest-PE error, or nil.
func (r *Result) FirstErr() error {
	for _, err := range r.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Program is an SPMD application body: it runs once per PE.
type Program func(pe *PE) error

// Run executes program on a freshly built cluster and returns its result.
// It blocks until every PE finishes.
func Run(cfg Config, program Program) (*Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	switch c.Transport {
	case TransportSim:
		return runSim(&c, program)
	case TransportInproc:
		net := inproc.New(c.NumPE)
		defer net.Stop()
		return runReal(&c, net, program)
	case TransportTCP:
		net, err := tcpnet.NewLocal(c.NumPE)
		if err != nil {
			return nil, err
		}
		defer net.Stop()
		return runReal(&c, net, program)
	default:
		return nil, fmt.Errorf("core: unknown transport %q", c.Transport)
	}
}

// windowsEnabled decides whether the one-sided direct-read fast path is on
// for this (fully defaulted) config. Transport co-location is the caller's
// side of the bargain: only runSim and runReal-over-inproc wire windows at
// all, because only there does every kernel's segment live in this process.
func windowsEnabled(c *Config) bool {
	if c.Caching || c.Legacy {
		return false
	}
	if c.DirectReads > 0 {
		return true
	}
	if c.DirectReads < 0 {
		return false
	}
	return c.KernelShards > 1
}

// ringsEnabled decides whether the one-sided write fast path is on for this
// (fully defaulted) config. Rings ride on the read window's co-location
// bargain (they submit into the home's address space) and need a drainer:
// shard workers on real transports, inline submit-point draining under
// simulation.
func ringsEnabled(c *Config) bool {
	if !windowsEnabled(c) || c.WriteRings < 0 {
		return false
	}
	if c.Transport != TransportSim && c.KernelShards <= 1 {
		return false // no shard workers: nothing would ever drain a ring
	}
	return true
}

// wireWindows gives every kernel a direct read-only view of every segment,
// and — when the write fast path is on — a reference to every peer kernel
// so PEs can reach a co-located home's submission rings. Called on every
// (re)start, so a recovered cluster's fresh segments and rings are rebound
// before any PE runs.
func wireWindows(kernels []*Kernel, cfg *Config) {
	wins := make([]*gmem.Segment, len(kernels))
	for i, k := range kernels {
		wins[i] = k.seg
	}
	for _, k := range kernels {
		k.windows = wins
	}
	if !ringsEnabled(cfg) {
		return
	}
	for _, k := range kernels {
		k.ringPeers = kernels
	}
}

// shutdownBarrierID is the reserved barrier RunOn nodes meet at before
// tearing down their kernels, so no kernel stops serving while peers still
// need it. Application code must not use this id.
const shutdownBarrierID int32 = -0x7fffffff

// RunOn drives one node of a multi-process cluster (every process calls
// RunOn with its own transport node, e.g. from tcpnet.Open). It blocks
// until the local program finishes and every peer has reached the final
// shutdown barrier. cfg.NumPE is taken from the node.
func RunOn(cfg Config, node transport.Node, program Program) (*Result, error) {
	cfg.NumPE = node.N()
	if cfg.Transport == "" || cfg.Transport == TransportSim {
		cfg.Transport = TransportTCP // cost-model-free semantics
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	k := newKernel(node.ID(), node, &c)
	pe := newPE(k)
	done := make(chan struct{})
	go func() {
		defer close(done)
		k.serve()
	}()
	perr := runPE(pe, program)
	// Final rendezvous after runPE (which deregisters with kernel 0): every
	// kernel keeps serving until all peers are done with it.
	if berr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: node %d: shutdown barrier: %v", node.ID(), r)
			}
		}()
		pe.BarrierID(shutdownBarrierID)
		return nil
	}(); berr != nil && perr == nil {
		perr = berr
	}
	node.CloseRecv()
	<-done
	res := &Result{Elapsed: pe.app.Now(), Errs: []error{perr}}
	collectStats(res, []*Kernel{k}, []*PE{pe})
	if c.recorder != nil {
		res.History = c.recorder.History()
	}
	return res, nil
}

// runPE wraps one PE's program with registration, exit and panic recovery.
// Under tracing it records the PE's run span — the top-level interval every
// request/wait span nests inside, which is what lets a Chrome trace account
// for the whole measured wall time.
func runPE(pe *PE, program Program) (err error) {
	start := pe.app.Now()
	defer func() {
		if r := recover(); r != nil {
			if perr, ok := r.(error); ok {
				// Keep the error type (e.g. *PeerDownError) visible through
				// errors.As for callers that classify failures.
				err = fmt.Errorf("PE %d panicked: %w", pe.ID(), perr)
			} else {
				err = fmt.Errorf("PE %d panicked: %v", pe.ID(), r)
			}
		}
		if pe.spans != nil {
			pe.spans.Record(trace.Span{
				Kind: trace.SpanRun, PE: int32(pe.ID()),
				Start: start, End: pe.app.Now(),
			})
		}
	}()
	pe.register()
	err = program(pe)
	code := int64(0)
	if err != nil {
		code = 1
	}
	pe.exit(code)
	return err
}

// runSim drives the cluster on the simulated transport: one service process
// (the DSE kernel) and one application process (the DSE process) per node,
// all inside one deterministic engine.
func runSim(cfg *Config, program Program) (*Result, error) {
	net := simnet.New(simnet.Config{
		NumPE:       cfg.NumPE,
		Platform:    cfg.Platform,
		Machines:    cfg.Machines,
		Load:        cfg.Load,
		Seed:        cfg.Seed,
		Ethernet:    cfg.Ethernet,
		Switched:    cfg.Switched,
		LossBudget:  cfg.PeerLossBudget,
		DelayJitter: cfg.DelayJitter,
		Kills:       cfg.Kills,
	})
	if cfg.LossProbability > 0 {
		net.Medium().SetLossProbability(cfg.LossProbability)
	}
	eng := net.Engine()
	n := cfg.NumPE
	kernels := make([]*Kernel, n)
	pes := make([]*PE, n)
	errs := make([]error, n)
	var finish sim.Time
	remaining := n
	for i := 0; i < n; i++ {
		i := i
		nd := net.SimNode(i)
		kernels[i] = newKernel(i, nd, cfg)
		pes[i] = newPE(kernels[i])
		eng.Spawn(fmt.Sprintf("dse-kernel-%d", i), func(p *sim.Proc) {
			nd.BindSvc(p)
			kernels[i].serve()
		})
	}
	if windowsEnabled(cfg) {
		wireWindows(kernels, cfg)
	}
	for i := 0; i < n; i++ {
		i := i
		nd := net.SimNode(i)
		eng.Spawn(fmt.Sprintf("dse-process-%d", i), func(p *sim.Proc) {
			nd.BindApp(p)
			errs[i] = runPE(pes[i], program)
			if t := p.Now(); t > finish {
				finish = t
			}
			remaining--
			if remaining == 0 {
				net.Stop()
			}
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("core: simulation: %w", err)
	}
	res := &Result{Elapsed: finish, Errs: errs, Bus: net.Medium().Stats()}
	collectStats(res, kernels, pes)
	if cfg.recorder != nil {
		res.History = cfg.recorder.History()
	}
	if cfg.Inspect != nil {
		cfg.Inspect(residueOf(kernels))
	}
	if cfg.testInspect != nil {
		cfg.testInspect(kernels, pes)
	}
	return res, nil
}

// realNetwork is the common shape of the non-simulated transports.
type realNetwork interface {
	N() int
	Node(i int) transport.Node
	Stop()
}

// runReal drives the cluster on goroutines over a real transport.
func runReal(cfg *Config, net realNetwork, program Program) (*Result, error) {
	n := cfg.NumPE
	kernels := make([]*Kernel, n)
	pes := make([]*PE, n)
	errs := make([]error, n)
	var svcWG, appWG sync.WaitGroup
	for i := 0; i < n; i++ {
		kernels[i] = newKernel(i, net.Node(i), cfg)
		pes[i] = newPE(kernels[i])
	}
	// Direct read windows need every segment in this address space: inproc
	// qualifies, TCP nodes only happen to be co-located in tests and must
	// behave like the distributed deployment they model.
	if cfg.Transport == TransportInproc && windowsEnabled(cfg) {
		wireWindows(kernels, cfg)
	}
	var mu sync.Mutex
	var finish sim.Time
	for i := 0; i < n; i++ {
		i := i
		svcWG.Add(1)
		go func() {
			defer svcWG.Done()
			kernels[i].serve()
		}()
		appWG.Add(1)
		go func() {
			defer appWG.Done()
			errs[i] = runPE(pes[i], program)
			mu.Lock()
			if t := pes[i].app.Now(); t > finish {
				finish = t
			}
			mu.Unlock()
		}()
	}
	appWG.Wait()
	net.Stop()
	svcWG.Wait()
	res := &Result{Elapsed: finish, Errs: errs}
	collectStats(res, kernels, pes)
	if cfg.recorder != nil {
		res.History = cfg.recorder.History()
	}
	if cfg.Inspect != nil {
		cfg.Inspect(residueOf(kernels))
	}
	if cfg.testInspect != nil {
		cfg.testInspect(kernels, pes)
	}
	return res, nil
}

// Residue is the post-shutdown state report delivered to Config.Inspect:
// whatever a clean run should have torn down. The scheduler's leak tests
// assert every field is zero after a full submit/run/teardown cycle.
type Residue struct {
	// UserQueues counts user-message mailboxes still registered, summed over
	// all kernels.
	UserQueues int
	// NsBindings counts namespace bindings still installed, over all kernels.
	NsBindings int
	// BarrierPend counts arrivals parked in kernel 0's open barrier epochs.
	BarrierPend int
	// LockResidue counts held locks plus queued lock waiters at kernel 0.
	LockResidue int
	// SemWaiters counts blocked semaphore waiters at kernel 0.
	SemWaiters int
	// BlocksIn reports how many blocks of the word region starting at base
	// and spanning nBlocks blocks are still materialised across all kernels'
	// segments — the GM-leak gauge for a freed job namespace.
	BlocksIn func(base uint64, nBlocks int) int
}

// residueOf collects the Residue report. Runs only after every kernel has
// quiesced (transports stopped), like collectStats.
func residueOf(kernels []*Kernel) Residue {
	r := Residue{}
	for _, k := range kernels {
		k.mu.Lock()
		r.UserQueues += len(k.userq)
		k.mu.Unlock()
		r.NsBindings += k.ns.Len()
	}
	k0 := kernels[0]
	r.BarrierPend = k0.barrier.PendingTotal()
	r.LockResidue = k0.locks.Residue()
	r.SemWaiters = k0.sems.WaitersTotal()
	r.BlocksIn = func(base uint64, nBlocks int) int {
		total := 0
		for _, k := range kernels {
			total += k.seg.CountRange(k.space.BlockOf(base), uint64(nBlocks))
		}
		return total
	}
	return r
}

// collectStats merges per-kernel and per-PE counters into the result. It
// runs only after every kernel and PE has quiesced (transports stopped),
// which is what makes the plain-counter PEStats.Add merges safe; the
// histograms inside would tolerate live merging on their own.
func collectStats(res *Result, kernels []*Kernel, pes []*PE) {
	for i := range kernels {
		// The hot path feeds only the per-op round-trip histograms; the
		// aggregate RTT is derived here, once the PE has quiesced.
		for j := range pes[i].extra.RTTByOp {
			pes[i].extra.RTT.Merge(&pes[i].extra.RTTByOp[j])
		}
		s := *kernels[i].Stats()
		s.Add(&pes[i].extra)
		s.Add(&kernels[i].extra)
		for _, sh := range kernels[i].shards {
			s.Add(&sh.extra)
			if sh.spans != nil {
				res.Spans = append(res.Spans, sh.spans.Snapshot()...)
			}
		}
		res.PerPE = append(res.PerPE, s)
		res.Total.Add(&s)
		res.RTT.Merge(&pes[i].extra.RTT)
		if pes[i].spans != nil {
			res.Spans = append(res.Spans, pes[i].spans.Snapshot()...)
		}
		if kernels[i].spans != nil {
			res.Spans = append(res.Spans, kernels[i].spans.Snapshot()...)
		}
	}
	sort.SliceStable(res.Spans, func(i, j int) bool {
		if res.Spans[i].Start != res.Spans[j].Start {
			return res.Spans[i].Start < res.Spans[j].Start
		}
		return res.Spans[i].PE < res.Spans[j].PE
	})
	// Majority vote over the kernels' dead-peer observations: see
	// Result.DeadPeers for why a single kernel's word is not enough.
	votes := make(map[int]int)
	for _, k := range kernels {
		k.mu.Lock()
		for p := range k.deadPeers {
			votes[p]++
		}
		k.mu.Unlock()
	}
	for p, v := range votes {
		if v > len(kernels)/2 {
			res.DeadPeers = append(res.DeadPeers, p)
		}
	}
	sort.Ints(res.DeadPeers)
}
