package core

import (
	"repro/internal/gmem"
	"repro/internal/sim"
)

// Proc is the Parallel-API surface application kernels program against: the
// methods shared by a whole-cluster *PE and a scheduled job's *JobPE. An
// application written against Proc runs unchanged as a standalone cluster
// program or as a dsesched job — under a JobPE, ID/N are job ranks, memory
// comes from the job's quota-bounded namespace, and synchronisation ids,
// tags and collectives are private to the job's gang.
type Proc interface {
	// Identity and environment.
	ID() int
	N() int
	Hostname() string
	GPID() int64
	Now() sim.Time
	Compute(ops float64)
	Space() gmem.Space

	// Allocation.
	Alloc(n int) uint64
	AllocBlocks(n int) uint64
	AllocMode(n int, m gmem.Mode) uint64
	AllocBlocksMode(n int, m gmem.Mode) uint64

	// Global memory.
	GMRead(addr uint64) int64
	GMWrite(addr uint64, v int64)
	GMReadF(addr uint64) float64
	GMWriteF(addr uint64, v float64)
	GMReadBlock(addr uint64, n int) []int64
	GMWriteBlock(addr uint64, words []int64)
	GMReadBlockF(addr uint64, n int) []float64
	GMWriteBlockF(addr uint64, vs []float64)
	GMGather(addrs []uint64) []int64
	GMScatter(addrs []uint64, vals []int64)
	FetchAdd(addr uint64, delta int64) int64
	CAS(addr uint64, old, new int64) (int64, bool)

	// Synchronisation.
	Barrier()
	BarrierID(id int32)
	Lock(id int32)
	Unlock(id int32)
	SemWait(id int32)
	SemPost(id int32)
	AllReduceF(x float64, op func(a, b float64) float64) float64
	AllReduceSum(x float64) float64
	AllReduceMax(x float64) float64

	// Messages.
	SendMsg(dst int, tag int32, payload []byte)
	RecvMsg(tag int32) (src int, payload []byte)
}

var (
	_ Proc = (*PE)(nil)
	_ Proc = (*JobPE)(nil)
)
