package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// remoteAddr finds a global address homed at kernel `home`.
func remoteAddr(t *testing.T, pe *PE, home int) uint64 {
	t.Helper()
	var addr uint64
	for pe.Space().HomeOf(addr) != home {
		addr++
	}
	return addr
}

// TestStaleReplyDiscarded is the regression test for the stale-reply race:
// residue in the persistent reply mailbox (a reply whose request was given
// up on long ago) must be discarded by sequence validation, not handed to
// the next request as its answer.
func TestStaleReplyDiscarded(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	pe := newPE(ks[0])
	addr := remoteAddr(t, pe, 1)
	ks[1].seg.Write(addr, []int64{77})
	for i := range ks {
		go ks[i].serve()
	}
	// Plant stale residue: a read response with a sequence number that
	// belongs to no outstanding request, carrying a wrong value.
	stale := wire.GetMessage()
	stale.Op, stale.Src, stale.Seq = wire.OpReadResp, 1, 999
	stale.PutWord(-1)
	pe.replyMb.Put(stale)

	v, err := pe.GMReadErr(addr)
	if err != nil {
		t.Fatalf("GMReadErr: %v", err)
	}
	if v != 77 {
		t.Fatalf("read %d, want 77 (stale reply consumed as answer)", v)
	}
	if pe.extra.StaleReplies != 1 {
		t.Fatalf("StaleReplies = %d, want 1", pe.extra.StaleReplies)
	}
	_ = net
}

// TestDelayedReplyDoesNotCorruptNextRequest delays a kernel's reply past the
// request timeout: the first request fails, its late reply must be dropped,
// and the next request must receive its own (correct) answer.
func TestDelayedReplyDoesNotCorruptNextRequest(t *testing.T) {
	_, ks := testKernels(t, 2, func(cfg *Config) {
		cfg.RequestTimeout = 100 * sim.Millisecond
	})
	pe := newPE(ks[0])
	addr := remoteAddr(t, pe, 1)
	ks[1].seg.Write(addr, []int64{77})
	go ks[0].serve()
	// Kernel 1 is not serving yet: the first read times out with its request
	// parked in kernel 1's receive queue.
	if _, err := pe.GMReadErr(addr); err == nil {
		t.Fatal("read answered by a non-serving kernel")
	} else if _, ok := err.(*TimeoutError); !ok {
		t.Fatalf("unexpected error type: %v", err)
	}
	// Kernel 1 comes up and serves the stale request; its late reply must
	// not be mistaken for the answer to the retry below.
	go ks[1].serve()
	v, err := pe.GMReadErr(addr)
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	if v != 77 {
		t.Fatalf("second read = %d, want 77", v)
	}
}

// TestRetryFetchAddExactlyOnce drives retried FetchAdds through a lossy
// simulated medium: every addition must be applied exactly once (the home's
// dedup window absorbs retransmissions), so the observed old values are the
// gapless sequence 0..n-1.
func TestRetryFetchAddExactlyOnce(t *testing.T) {
	const n = 20
	cfg := simCfg(2)
	cfg.LossProbability = 0.15
	cfg.RequestTimeout = 200 * sim.Millisecond
	cfg.RequestRetries = 25
	res, err := Run(cfg, func(pe *PE) error {
		base := pe.Alloc(8)
		if pe.ID() != 1 {
			return nil
		}
		for i := int64(0); i < n; i++ {
			old, err := pe.FetchAddErr(base, 1)
			if err != nil {
				return err
			}
			if old != i {
				t.Errorf("FetchAdd %d returned old value %d (lost or double-applied)", i, old)
			}
		}
		v, err := pe.GMReadErr(base)
		if err != nil {
			return err
		}
		if v != n {
			t.Errorf("final counter = %d, want %d", v, n)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	// 15% loss over dozens of frames (seeded, deterministic): the retry
	// path must actually have been exercised.
	if res.Total.Retries == 0 {
		t.Fatal("no retries under 15% loss — retry path untested")
	}
	t.Logf("retries=%d dupRequests=%d staleReplies=%d elapsed=%v",
		res.Total.Retries, res.Total.DupRequests, res.Total.StaleReplies, res.Elapsed)
}

// TestSimnetLossBudgetDetectsPeer checks the simulated transport's failure
// detector: under total loss with a loss budget configured, a dead peer is
// declared down after the budgeted consecutive undelivered frames, failing
// the request well before all retry attempts are waited out.
func TestSimnetLossBudgetDetectsPeer(t *testing.T) {
	cfg := simCfg(2)
	cfg.LossProbability = 1.0
	cfg.RequestTimeout = 100 * sim.Millisecond
	cfg.RequestRetries = 5
	cfg.PeerLossBudget = 3
	res, err := Run(cfg, func(pe *PE) error {
		return nil // registration alone needs the wire for PE 1
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ferr := res.Errs[1]
	if ferr == nil {
		t.Fatal("PE 1 succeeded under total loss")
	}
	if !strings.Contains(ferr.Error(), "peer 0 is down") {
		t.Fatalf("expected peer-down failure, got: %v", ferr)
	}
	// Detection fires on the budget's third send: well under the 6 full
	// timeout+backoff rounds (~1s virtual) retrying to exhaustion costs.
	if res.Elapsed >= 500*sim.Millisecond {
		t.Fatalf("detection took %v — slower than the loss budget should allow", res.Elapsed)
	}
	t.Logf("peer declared down after %v (budget 3 frames, timeout %v, %d retries allowed)",
		res.Elapsed, cfg.RequestTimeout, cfg.RequestRetries)
}
