package core

import (
	"testing"
	"time"

	"repro/internal/transport/inproc"
	"repro/internal/wire"
)

// testKernels builds n kernels over an inproc network without starting
// their serve loops, so tests can drive handle() directly and observe the
// outgoing messages on the peers' receive queues.
func testKernels(t *testing.T, n int, mutate func(cfg *Config)) (*inproc.Net, []*Kernel) {
	t.Helper()
	// One shard, inline: these tests drive handle() directly with no serve
	// loop, so shard worker queues would never drain.
	cfg := Config{NumPE: n, Transport: TransportInproc, KernelShards: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	net := inproc.New(n)
	t.Cleanup(net.Stop)
	ks := make([]*Kernel, n)
	for i := 0; i < n; i++ {
		ks[i] = newKernel(i, net.Node(i), &c)
	}
	return net, ks
}

// recvFrom pops the next message from node i with a deadline.
func recvFrom(t *testing.T, net *inproc.Net, i int) *wire.Message {
	t.Helper()
	ch := make(chan *wire.Message, 1)
	go func() {
		m, ok := net.Node(i).Recv()
		if ok {
			ch <- m
		}
	}()
	select {
	case m := <-ch:
		return m
	case <-time.After(10 * time.Second):
		t.Fatalf("no message arrived at node %d", i)
		return nil
	}
}

func TestKernelHandleReadRepliesWithWords(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	// Address homed at kernel 0 (block 0).
	ks[0].seg.Write(3, []int64{42, 43})
	ks[0].handle(&wire.Message{Op: wire.OpRead, Src: 1, Dst: 0, Seq: 9, Addr: 3, Arg1: 2})
	resp := recvFrom(t, net, 1)
	if resp.Op != wire.OpReadResp || resp.Seq != 9 {
		t.Fatalf("reply = %v", resp)
	}
	ws := resp.Words()
	if len(ws) != 2 || ws[0] != 42 || ws[1] != 43 {
		t.Fatalf("words = %v", ws)
	}
}

func TestKernelHandleWriteAndFetchAdd(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	w := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 1, Addr: 5}
	w.PutWords([]int64{7})
	ks[0].handle(w)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck || ack.Seq != 1 {
		t.Fatalf("ack = %v", ack)
	}
	ks[0].handle(&wire.Message{Op: wire.OpFetchAdd, Src: 1, Dst: 0, Seq: 2, Addr: 5, Arg1: 3})
	if resp := recvFrom(t, net, 1); resp.Op != wire.OpFetchAddResp || resp.Arg1 != 7 {
		t.Fatalf("fetch-add resp = %v", resp)
	}
	if v := ks[0].seg.Read(5, 1)[0]; v != 10 {
		t.Fatalf("value = %d", v)
	}
}

func TestKernelCentralBarrierReleasesAll(t *testing.T) {
	net, ks := testKernels(t, 3, nil)
	ks[0].handle(&wire.Message{Op: wire.OpBarrierArrive, Src: 1, Tag: 4})
	ks[0].handle(&wire.Message{Op: wire.OpBarrierArrive, Src: 2, Tag: 4})
	ks[0].handle(&wire.Message{Op: wire.OpBarrierArrive, Src: 0, Tag: 4})
	for _, node := range []int{1, 2} {
		if m := recvFrom(t, net, node); m.Op != wire.OpBarrierRelease || m.Tag != 4 {
			t.Fatalf("node %d got %v", node, m)
		}
	}
	// Kernel 0's own release is routed straight to its sync mailbox by the
	// next handle() of the self-delivered message.
	self := recvFrom(t, net, 0)
	ks[0].handle(self)
	if m, ok := ks[0].syncMb.Take(); !ok || m.Op != wire.OpBarrierRelease {
		t.Fatalf("kernel 0 sync mailbox got %v", m)
	}
}

func TestKernelLockGrantChain(t *testing.T) {
	net, ks := testKernels(t, 3, nil)
	ks[0].handle(&wire.Message{Op: wire.OpLockAcquire, Src: 1, Tag: 2})
	if m := recvFrom(t, net, 1); m.Op != wire.OpLockGrant {
		t.Fatalf("first acquire: %v", m)
	}
	// Second acquirer queues: no grant yet.
	ks[0].handle(&wire.Message{Op: wire.OpLockAcquire, Src: 2, Tag: 2})
	ks[0].handle(&wire.Message{Op: wire.OpLockRelease, Src: 1, Tag: 2})
	if m := recvFrom(t, net, 2); m.Op != wire.OpLockGrant || m.Tag != 2 {
		t.Fatalf("queued acquire: %v", m)
	}
}

func TestKernelInvalidationRound(t *testing.T) {
	net, ks := testKernels(t, 3, func(cfg *Config) { cfg.Caching = true })
	// Kernel 1 caches block 0 (homed at kernel 0).
	ks[0].handle(&wire.Message{Op: wire.OpRead, Src: 1, Dst: 0, Seq: 1, Addr: 0, Arg2: 1})
	if m := recvFrom(t, net, 1); m.Op != wire.OpReadResp {
		t.Fatalf("block fetch: %v", m)
	}
	// Kernel 2 writes the block: kernel 1 must be invalidated before the ack.
	w := &wire.Message{Op: wire.OpWrite, Src: 2, Dst: 0, Seq: 2, Addr: 0}
	w.PutWords([]int64{99})
	ks[0].handle(w)
	inv := recvFrom(t, net, 1)
	if inv.Op != wire.OpInvalidate {
		t.Fatalf("expected invalidate at kernel 1, got %v", inv)
	}
	// The writer must NOT have its ack yet: the round is still open.
	if len(ks[0].shards[0].inv) != 1 {
		t.Fatalf("invalidation round not tracked: %d open", len(ks[0].shards[0].inv))
	}
	// Ack the invalidation (as kernel 1's handler would).
	ks[0].handle(&wire.Message{Op: wire.OpInvAck, Src: 1, Dst: 0, Seq: inv.Seq, Addr: inv.Addr})
	if ack := recvFrom(t, net, 2); ack.Op != wire.OpWriteAck || ack.Seq != 2 {
		t.Fatalf("writer ack = %v", ack)
	}
}

func TestKernelStrayInvAckDropped(t *testing.T) {
	_, ks := testKernels(t, 2, func(cfg *Config) { cfg.Caching = true })
	ks[0].handle(&wire.Message{Op: wire.OpInvAck, Src: 1, Seq: 123})
	if ks[0].shards[0].extra.StrayDrops != 1 {
		t.Fatalf("StrayDrops = %d, want 1", ks[0].shards[0].extra.StrayDrops)
	}
}

func TestKernelUnknownOpDropped(t *testing.T) {
	_, ks := testKernels(t, 1, nil)
	ks[0].handle(&wire.Message{Op: wire.Op(200)})
	if ks[0].extra.CorruptDrops != 1 {
		t.Fatalf("CorruptDrops = %d, want 1", ks[0].extra.CorruptDrops)
	}
}

// TestKernelCorruptPayloadsDropped feeds malformed global-memory traffic to
// a kernel and checks it drops (and counts) each message instead of
// panicking.
func TestKernelCorruptPayloadsDropped(t *testing.T) {
	_, ks := testKernels(t, 2, nil)
	// Torn scalar write: payload is not whole words.
	ks[0].handle(&wire.Message{Op: wire.OpWrite, Src: 1, Seq: 1, Addr: 0, Data: []byte{1, 2, 3}})
	// Ragged vectored read: truncated range list.
	ks[0].handle(&wire.Message{Op: wire.OpReadV, Src: 1, Seq: 2, Data: []byte{9, 9, 9, 9, 9}})
	// Truncated vectored write: header promises more runs than present.
	ks[0].handle(&wire.Message{Op: wire.OpWriteV, Src: 1, Seq: 3, Arg1: 5, Data: []byte{0}})
	if ks[0].shards[0].extra.CorruptDrops != 3 {
		t.Fatalf("CorruptDrops = %d, want 3", ks[0].shards[0].extra.CorruptDrops)
	}
}

// TestKernelDedupAbsorbsRetriedFetchAdd retransmits a FetchAdd with the same
// Seq (as the PE's retry path would) and checks it is applied exactly once,
// with the cached response resent.
func TestKernelDedupAbsorbsRetriedFetchAdd(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	req := &wire.Message{Op: wire.OpFetchAdd, Src: 1, Dst: 0, Seq: 7, Addr: 5, Arg1: 3}
	ks[0].handle(req)
	if resp := recvFrom(t, net, 1); resp.Op != wire.OpFetchAddResp || resp.Arg1 != 0 {
		t.Fatalf("first resp = %v", resp)
	}
	retry := &wire.Message{Op: wire.OpFetchAdd, Src: 1, Dst: 0, Seq: 7, Addr: 5, Arg1: 3, Flags: wire.FlagRetry}
	ks[0].handle(retry)
	resp := recvFrom(t, net, 1)
	if resp.Op != wire.OpFetchAddResp || resp.Arg1 != 0 {
		t.Fatalf("resent resp = %v (want cached old value 0)", resp)
	}
	if v := ks[0].seg.Read(5, 1)[0]; v != 3 {
		t.Fatalf("value = %d, want 3 (applied exactly once)", v)
	}
	if ks[0].shards[0].extra.DupRequests != 1 {
		t.Fatalf("DupRequests = %d, want 1", ks[0].shards[0].extra.DupRequests)
	}
}

func TestKernelPingPong(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	ks[0].handle(&wire.Message{Op: wire.OpPing, Src: 1, Seq: 5})
	if m := recvFrom(t, net, 1); m.Op != wire.OpPong || m.Seq != 5 {
		t.Fatalf("pong = %v", m)
	}
}

func TestKernelUserMessageRouting(t *testing.T) {
	_, ks := testKernels(t, 1, nil)
	ks[0].handle(&wire.Message{Op: wire.OpUserMsg, Src: 0, Tag: 11, Data: []byte("hi")})
	mb := ks[0].userMb(11)
	m, ok := mb.Take()
	if !ok || string(m.Data) != "hi" {
		t.Fatalf("user message = %v", m)
	}
	// Different tag queues are independent.
	ks[0].handle(&wire.Message{Op: wire.OpUserMsg, Src: 0, Tag: 12})
	if _, _, timedOut := ks[0].userMb(11).TakeTimeout(10_000_000); !timedOut {
		t.Fatal("tag 11 queue should be empty")
	}
}

func TestKernelPendingResponseRouting(t *testing.T) {
	_, ks := testKernels(t, 2, nil)
	mb := ks[0].node.NewMailbox(1)
	seq, dead := ks[0].addPending(mb, 1)
	if dead {
		t.Fatal("peer 1 unexpectedly dead")
	}
	ks[0].handle(&wire.Message{Op: wire.OpReadResp, Src: 1, Seq: seq})
	if m, ok := mb.Take(); !ok || m.Seq != seq {
		t.Fatalf("pending routing failed: %v", m)
	}
	// A second response with the same (now consumed) seq is dropped.
	ks[0].handle(&wire.Message{Op: wire.OpReadResp, Src: 1, Seq: seq})
	if _, _, timedOut := mb.TakeTimeout(10_000_000); !timedOut {
		t.Fatal("late response was not dropped")
	}
	if ks[0].extra.StrayDrops != 1 {
		t.Fatalf("StrayDrops = %d, want 1", ks[0].extra.StrayDrops)
	}
}

func TestKernelProcManagement(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	ks[0].handle(&wire.Message{Op: wire.OpProcRegister, Src: 1, Seq: 1, Data: []byte("hostX")})
	reg := recvFrom(t, net, 1)
	if reg.Op != wire.OpProcRegResp || reg.Arg1 != 1 {
		t.Fatalf("register resp = %v", reg)
	}
	ks[0].handle(&wire.Message{Op: wire.OpProcList, Src: 1, Seq: 2})
	list := recvFrom(t, net, 1)
	if list.Op != wire.OpProcListResp || len(list.Data) == 0 {
		t.Fatalf("list resp = %v", list)
	}
	ks[0].handle(&wire.Message{Op: wire.OpProcExit, Src: 1, Seq: 3, Arg1: reg.Arg1, Arg2: 0})
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpProcExitAck {
		t.Fatalf("exit ack = %v", ack)
	}
}
