// Package core implements the DSE parallel processing library and API
// library of the paper: the DSE kernel (parallel processing mechanism,
// parallel process management, global memory management, message exchange)
// linked into the same "UNIX process" as the DSE application process, with
// the kernel running as a service context that interleaves with the
// application — the paper's reorganised, dynamic-linking-free design.
//
// Memory consistency: without caching, every global-memory word has a
// single home and all accesses are serialised there (coherent and
// sequentially consistent per location). With the caching protocol, writes
// are write-through to the home and block until every cached copy has
// acknowledged invalidation, so a completed write is visible to all
// subsequent reads; like classic invalidation-based DSMs, a reader may
// still use its cached copy during the brief window before its kernel
// processes the invalidation, which is why programs order cross-PE
// visibility with barriers, locks or reductions (all of which imply write
// completion).
package core

import (
	"fmt"
	"sync"

	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/psync"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Kernel is one DSE kernel: the runtime side of a PE. Its serve loop runs
// in the node's Svc context and fields every message addressed to this
// kernel, while the application programs against the PE façade in the App
// context.
type Kernel struct {
	id    int
	n     int
	node  transport.Node
	svc   transport.Port
	cfg   *Config
	space gmem.Space
	seg   *gmem.Segment
	cache *gmem.Cache // non-nil only when cfg.Caching

	// Central managers, present at kernel 0 only.
	barrier *psync.BarrierManager
	locks   *psync.LockManager
	sems    *psync.SemManager
	procs   *procmgmt.Table

	// Distributed tree barrier state (when cfg.Barrier == BarrierTree).
	tree *psync.TreeBarrier

	// syncMb receives barrier releases and lock/semaphore grants for the
	// (single-threaded) application context.
	syncMb transport.Mailbox

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]transport.Mailbox
	userq   map[int32]transport.Mailbox

	// In-flight invalidation rounds at this home (caching protocol).
	inv     map[uint64]*invRound
	invNext uint64
}

// invRound tracks one write/atomic waiting for invalidation acks before the
// home may acknowledge it.
type invRound struct {
	requester int32
	seq       uint64
	respOp    wire.Op
	arg1      int64
	arg2      int64
	remaining int
}

func newKernel(id int, node transport.Node, cfg *Config) *Kernel {
	space := gmem.NewSpace(cfg.NumPE, cfg.GMBlockWords)
	k := &Kernel{
		id:      id,
		n:       cfg.NumPE,
		node:    node,
		svc:     node.Svc(),
		cfg:     cfg,
		space:   space,
		seg:     gmem.NewSegment(space, id),
		syncMb:  node.NewMailbox(16),
		pending: make(map[uint64]transport.Mailbox),
		userq:   make(map[int32]transport.Mailbox),
		inv:     make(map[uint64]*invRound),
	}
	if cfg.Caching {
		k.cache = gmem.NewCache(space)
	}
	if id == 0 {
		k.barrier = psync.NewBarrierManager(cfg.NumPE)
		k.locks = psync.NewLockManager()
		k.sems = psync.NewSemManager()
		k.procs = procmgmt.NewTable()
	}
	if cfg.Barrier == BarrierTree {
		k.tree = psync.NewTreeBarrier(id, cfg.NumPE, treeArity)
	}
	return k
}

// treeArity is the fan-in of the tree barrier.
const treeArity = 2

// nextSeq reserves a request id and registers its reply mailbox.
func (k *Kernel) addPending(mb transport.Mailbox) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seq++
	k.pending[k.seq] = mb
	return k.seq
}

func (k *Kernel) takePending(seq uint64) (transport.Mailbox, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	mb, ok := k.pending[seq]
	if ok {
		delete(k.pending, seq)
	}
	return mb, ok
}

// dropPending forgets a request that timed out.
func (k *Kernel) dropPending(seq uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.pending, seq)
}

// userMb returns (creating on demand) the queue for user messages with tag.
func (k *Kernel) userMb(tag int32) transport.Mailbox {
	k.mu.Lock()
	defer k.mu.Unlock()
	mb, ok := k.userq[tag]
	if !ok {
		mb = k.node.NewMailbox(0)
		k.userq[tag] = mb
	}
	return mb
}

// serve is the DSE kernel main loop (the "parallel processing mechanism"):
// it receives every message addressed to this kernel and dispatches it,
// until the node shuts down.
func (k *Kernel) serve() {
	for {
		m, ok := k.node.Recv()
		if !ok {
			return
		}
		k.handle(m)
	}
}

func (k *Kernel) handle(m *wire.Message) {
	k.logMessage(m)
	switch m.Op {
	// Responses to this kernel's own outstanding requests.
	case wire.OpReadResp, wire.OpWriteAck, wire.OpFetchAddResp, wire.OpCASResp,
		wire.OpProcRegResp, wire.OpProcExitAck, wire.OpProcListResp,
		wire.OpPong, wire.OpWelcome:
		if mb, ok := k.takePending(m.Seq); ok {
			mb.Put(m)
		}

	// Synchronisation grants for the application context.
	case wire.OpBarrierRelease:
		k.handleBarrierRelease(m)
	case wire.OpLockGrant, wire.OpSemGrant:
		k.syncMb.Put(m)

	// Global memory service (this kernel is the home).
	case wire.OpRead:
		k.handleRead(m)
	case wire.OpWrite:
		k.handleWrite(m)
	case wire.OpFetchAdd:
		k.handleFetchAdd(m)
	case wire.OpCAS:
		k.handleCAS(m)
	case wire.OpInvalidate:
		k.handleInvalidate(m)
	case wire.OpInvAck:
		k.handleInvAck(m)

	// Synchronisation service.
	case wire.OpBarrierArrive:
		k.handleBarrierArrive(m)
	case wire.OpLockAcquire:
		if k.locks.Acquire(int(m.Src), m.Tag) {
			k.reply(m, &wire.Message{Op: wire.OpLockGrant, Tag: m.Tag})
		}
	case wire.OpLockRelease:
		if next, ok := k.locks.Release(int(m.Src), m.Tag); ok {
			k.svc.Send(next, &wire.Message{Op: wire.OpLockGrant, Src: int32(k.id), Dst: int32(next), Tag: m.Tag})
		}
	case wire.OpSemWait:
		if k.sems.Wait(int(m.Src), m.Tag) {
			k.reply(m, &wire.Message{Op: wire.OpSemGrant, Tag: m.Tag})
		}
	case wire.OpSemPost:
		if next, ok := k.sems.Post(m.Tag); ok {
			k.svc.Send(next, &wire.Message{Op: wire.OpSemGrant, Src: int32(k.id), Dst: int32(next), Tag: m.Tag})
		}

	// Parallel process management (kernel 0 hosts the global table).
	case wire.OpProcRegister:
		gpid := k.procs.Register(m.Src, string(m.Data), k.svc.Now())
		k.reply(m, &wire.Message{Op: wire.OpProcRegResp, Arg1: gpid})
	case wire.OpProcExit:
		if err := k.procs.Exit(m.Arg1, m.Arg2, k.svc.Now()); err != nil {
			panic(fmt.Sprintf("core: kernel 0: %v", err))
		}
		k.reply(m, &wire.Message{Op: wire.OpProcExitAck})
	case wire.OpProcList:
		k.reply(m, &wire.Message{Op: wire.OpProcListResp, Data: procmgmt.EncodeSnapshot(k.procs.Snapshot())})

	// Application-level messages.
	case wire.OpUserMsg:
		k.userMb(m.Tag).Put(m)

	// Liveness.
	case wire.OpPing:
		k.reply(m, &wire.Message{Op: wire.OpPong})

	default:
		panic(fmt.Sprintf("core: kernel %d: unexpected message %v", k.id, m))
	}
}

// logMessage appends m to the cluster-wide protocol trace, if enabled.
func (k *Kernel) logMessage(m *wire.Message) {
	cfg := k.cfg
	if cfg.MessageLog == nil {
		return
	}
	cfg.logMu.Lock()
	fmt.Fprintf(cfg.MessageLog, "t=%v k=%d %s\n", k.svc.Now(), k.id, m)
	cfg.logMu.Unlock()
}

// reply answers request m, echoing its Seq.
func (k *Kernel) reply(m *wire.Message, resp *wire.Message) {
	resp.Src = int32(k.id)
	resp.Dst = m.Src
	resp.Seq = m.Seq
	k.svc.Send(int(m.Src), resp)
}

func (k *Kernel) handleRead(m *wire.Message) {
	if m.Arg2 == 1 {
		// Block fetch for the caching protocol: return the whole block and
		// record the reader in the directory.
		blk := k.seg.ReadBlockFor(m.Addr, int(m.Src))
		resp := &wire.Message{Op: wire.OpReadResp, Addr: m.Addr}
		resp.PutWords(blk)
		k.reply(m, resp)
		return
	}
	words := k.seg.Read(m.Addr, int(m.Arg1))
	resp := &wire.Message{Op: wire.OpReadResp, Addr: m.Addr}
	resp.PutWords(words)
	k.reply(m, resp)
}

func (k *Kernel) handleWrite(m *wire.Message) {
	words := m.Words()
	if k.cache == nil {
		k.seg.Write(m.Addr, words)
		k.reply(m, &wire.Message{Op: wire.OpWriteAck})
		return
	}
	targets := k.seg.WriteInvalidating(m.Addr, words, int(m.Src))
	k.finishAfterInvalidation(m, targets, wire.OpWriteAck, 0, 0)
}

func (k *Kernel) handleFetchAdd(m *wire.Message) {
	old := k.seg.FetchAdd(m.Addr, m.Arg1)
	if k.cache == nil {
		k.reply(m, &wire.Message{Op: wire.OpFetchAddResp, Arg1: old})
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	k.finishAfterInvalidation(m, targets, wire.OpFetchAddResp, old, 0)
}

func (k *Kernel) handleCAS(m *wire.Message) {
	prev, swapped := k.seg.CAS(m.Addr, m.Arg1, m.Arg2)
	var sw int64
	if swapped {
		sw = 1
	}
	if k.cache == nil || !swapped {
		k.reply(m, &wire.Message{Op: wire.OpCASResp, Arg1: prev, Arg2: sw})
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	k.finishAfterInvalidation(m, targets, wire.OpCASResp, prev, sw)
}

// finishAfterInvalidation acknowledges a mutating request immediately when
// no remote copies exist, or after every cached copy has acknowledged its
// invalidation (write-invalidate coherence: the writer may not proceed
// while stale copies are readable).
func (k *Kernel) finishAfterInvalidation(m *wire.Message, targets []int, respOp wire.Op, arg1, arg2 int64) {
	if len(targets) == 0 {
		k.reply(m, &wire.Message{Op: respOp, Arg1: arg1, Arg2: arg2})
		return
	}
	k.invNext++
	id := k.invNext
	k.inv[id] = &invRound{
		requester: m.Src, seq: m.Seq,
		respOp: respOp, arg1: arg1, arg2: arg2,
		remaining: len(targets),
	}
	for _, t := range targets {
		k.svc.Send(t, &wire.Message{
			Op: wire.OpInvalidate, Src: int32(k.id), Dst: int32(t),
			Seq: id, Addr: m.Addr,
		})
	}
}

func (k *Kernel) handleInvalidate(m *wire.Message) {
	if k.cache != nil {
		k.cache.Invalidate(m.Addr)
	}
	k.reply(m, &wire.Message{Op: wire.OpInvAck, Addr: m.Addr})
}

func (k *Kernel) handleInvAck(m *wire.Message) {
	r, ok := k.inv[m.Seq]
	if !ok {
		panic(fmt.Sprintf("core: kernel %d: stray invalidation ack %v", k.id, m))
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	delete(k.inv, m.Seq)
	k.svc.Send(int(r.requester), &wire.Message{
		Op: r.respOp, Src: int32(k.id), Dst: r.requester, Seq: r.seq,
		Arg1: r.arg1, Arg2: r.arg2,
	})
}

// handleBarrierArrive implements both barrier flavours.
func (k *Kernel) handleBarrierArrive(m *wire.Message) {
	if k.cfg.Barrier == BarrierTree {
		if k.tree.Arrive(m.Tag) {
			if parent, ok := k.tree.Parent(); ok {
				k.svc.Send(parent, &wire.Message{Op: wire.OpBarrierArrive, Src: int32(k.id), Dst: int32(parent), Tag: m.Tag})
			} else {
				k.releaseDown(m.Tag)
			}
		}
		return
	}
	// Central barrier: kernel 0 counts and releases everyone.
	if k.id != 0 {
		panic(fmt.Sprintf("core: kernel %d received central barrier arrive", k.id))
	}
	if waiters := k.barrier.Arrive(int(m.Src), m.Tag); waiters != nil {
		for _, w := range waiters {
			k.svc.Send(w, &wire.Message{Op: wire.OpBarrierRelease, Src: int32(k.id), Dst: int32(w), Tag: m.Tag})
		}
	}
}

// handleBarrierRelease wakes the local application and, for the tree
// barrier, forwards the release to this kernel's subtree.
func (k *Kernel) handleBarrierRelease(m *wire.Message) {
	if k.cfg.Barrier == BarrierTree {
		k.releaseDown(m.Tag)
		return
	}
	k.syncMb.Put(m)
}

func (k *Kernel) releaseDown(tag int32) {
	for _, c := range k.tree.Children() {
		k.svc.Send(c, &wire.Message{Op: wire.OpBarrierRelease, Src: int32(k.id), Dst: int32(c), Tag: tag})
	}
	k.syncMb.Put(&wire.Message{Op: wire.OpBarrierRelease, Src: int32(k.id), Dst: int32(k.id), Tag: tag})
}

// Stats returns the node's transport-level counters.
func (k *Kernel) Stats() *trace.PEStats { return k.node.Stats() }

// requestTimeout returns the configured request deadline (0 = wait forever).
func (k *Kernel) requestTimeout() sim.Duration { return k.cfg.RequestTimeout }
