// Package core implements the DSE parallel processing library and API
// library of the paper: the DSE kernel (parallel processing mechanism,
// parallel process management, global memory management, message exchange)
// linked into the same "UNIX process" as the DSE application process, with
// the kernel running as a service context that interleaves with the
// application — the paper's reorganised, dynamic-linking-free design.
//
// Memory consistency: without caching, every global-memory word has a
// single home and all accesses are serialised there (coherent and
// sequentially consistent per location). With the caching protocol, writes
// are write-through to the home and block until every cached copy has
// acknowledged invalidation, so a completed write is visible to all
// subsequent reads; like classic invalidation-based DSMs, a reader may
// still use its cached copy during the brief window before its kernel
// processes the invalidation, which is why programs order cross-PE
// visibility with barriers, locks or reductions (all of which imply write
// completion).
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/psync"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Kernel is one DSE kernel: the runtime side of a PE. Its serve loop runs
// in the node's Svc context and fields every message addressed to this
// kernel, while the application programs against the PE façade in the App
// context.
type Kernel struct {
	id    int
	n     int
	node  transport.Node
	svc   transport.Port
	cfg   *Config
	space gmem.Space
	seg   *gmem.Segment
	cache *gmem.Cache // non-nil only when cfg.Caching

	// Central managers, present at kernel 0 only.
	barrier *psync.BarrierManager
	locks   *psync.LockManager
	sems    *psync.SemManager
	procs   *procmgmt.Table

	// Distributed tree barrier state (when cfg.Barrier == BarrierTree).
	tree *psync.TreeBarrier

	// syncMb receives barrier releases and lock/semaphore grants for the
	// (single-threaded) application context.
	syncMb transport.Mailbox

	mu        sync.Mutex
	seq       uint64
	pending   map[uint64]pendingReq
	userq     map[int32]transport.Mailbox
	deadPeers map[int]bool // peers the transport declared dead

	// dedup holds the per-requester exactly-once window for mutating
	// operations (serve goroutine only, no locking).
	dedup map[int32]*dedupRing

	// extra accumulates reliability counters and service-time histograms the
	// transport does not track (kernel side; the PE keeps its own in
	// pe.extra). Serve goroutine only (histograms follow their own
	// concurrency contract and may additionally be read live).
	extra trace.PEStats

	// spans records one service span per handled message (nil unless
	// Config.Tracing). Serve goroutine only.
	spans *trace.SpanRing

	// In-flight invalidation rounds at this home (caching protocol).
	inv     map[uint64]*invRound
	invNext uint64

	// Handler scratch, reused across requests. Handlers run only on the
	// serve goroutine, so no locking is needed.
	wscratch []int64   // payload words
	vscratch []int64   // per-run words of a vectored write
	raddrs   []uint64  // decoded vectored-read range starts
	rcounts  []int     // decoded vectored-read range lengths
	invSends []invSend // pending invalidations of a vectored write
}

// invSend is one invalidation a mutating request must issue: drop the
// cached block containing addr at kernel dst.
type invSend struct {
	addr uint64
	dst  int
}

// pendingReq is one outstanding request of this kernel's PE: the mailbox its
// reply routes to and the kernel it was addressed to (so a peer-down event
// can fail exactly the requests aimed at the dead kernel).
type pendingReq struct {
	mb  transport.Mailbox
	dst int
}

// The dedup window: the home kernel remembers the last dedupWindow mutating
// requests per requester, so a retried request (same Seq) is absorbed instead
// of re-applied. A PE issues requests one at a time, so a window this size is
// far deeper than any retry can reach back.
const dedupWindow = 32

const (
	dedupEmpty      uint8 = iota
	dedupInProgress       // dispatched; response not yet produced (invalidation round outstanding)
	dedupDone             // response sent; cached for resend
)

// dedupEntry records one mutating request and, once known, its response.
type dedupEntry struct {
	seq    uint64
	respOp wire.Op
	arg1   int64
	arg2   int64
	state  uint8
}

// dedupRing is a fixed ring of the most recent mutating requests from one
// requester.
type dedupRing struct {
	entries [dedupWindow]dedupEntry
	next    int
}

// invRound tracks one write/atomic waiting for invalidation acks before the
// home may acknowledge it. outstanding holds the invalidations not yet
// acked, so a retried writer request can trigger their retransmission — an
// OpInvalidate or OpInvAck lost on the wire would otherwise leave the round
// stuck forever while the writer's retries are absorbed as in-progress
// duplicates.
type invRound struct {
	requester   int32
	seq         uint64
	respOp      wire.Op
	arg1        int64
	arg2        int64
	outstanding []invSend
}

func newKernel(id int, node transport.Node, cfg *Config) *Kernel {
	space := gmem.NewSpace(cfg.NumPE, cfg.GMBlockWords)
	k := &Kernel{
		id:        id,
		n:         cfg.NumPE,
		node:      node,
		svc:       node.Svc(),
		cfg:       cfg,
		space:     space,
		seg:       gmem.NewSegment(space, id),
		syncMb:    node.NewMailbox(16),
		pending:   make(map[uint64]pendingReq),
		userq:     make(map[int32]transport.Mailbox),
		deadPeers: make(map[int]bool),
		dedup:     make(map[int32]*dedupRing),
		inv:       make(map[uint64]*invRound),
		spans:     cfg.Tracing.NewRing(),
	}
	node.SetPeerDown(k.peerDown)
	if cfg.Caching {
		k.cache = gmem.NewCache(space)
	}
	if id == 0 {
		k.barrier = psync.NewBarrierManager(cfg.NumPE)
		k.locks = psync.NewLockManager()
		k.sems = psync.NewSemManager()
		k.procs = procmgmt.NewTable()
	}
	if cfg.Barrier == BarrierTree {
		k.tree = psync.NewTreeBarrier(id, cfg.NumPE, treeArity)
	}
	if cfg.restore != nil {
		// Recovery: rebuild this kernel's slice of global memory (and the
		// coherence directory) from the snapshot before serving. Imported
		// copyset entries may name kernels whose fresh caches hold nothing;
		// the resulting spurious invalidations are acknowledged harmlessly.
		if err := k.seg.Import(cfg.restore.blocks[id]); err != nil {
			panic(fmt.Sprintf("core: kernel %d: restoring snapshot: %v", id, err))
		}
	}
	return k
}

// treeArity is the fan-in of the tree barrier.
const treeArity = 2

// addPending reserves a request id and registers its reply mailbox. If the
// transport has already declared dst dead it reports dead=true and registers
// nothing: the caller fails the request immediately instead of sending into
// the void.
func (k *Kernel) addPending(mb transport.Mailbox, dst int) (seq uint64, dead bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seq++
	if k.deadPeers[dst] {
		return k.seq, true
	}
	k.pending[k.seq] = pendingReq{mb: mb, dst: dst}
	return k.seq, false
}

func (k *Kernel) takePending(seq uint64) (transport.Mailbox, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	pr, ok := k.pending[seq]
	if ok {
		delete(k.pending, seq)
	}
	return pr.mb, ok
}

// dropPending forgets a request that timed out.
func (k *Kernel) dropPending(seq uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.pending, seq)
}

// peerDown is the transport's peer-failure callback (any goroutine). It
// marks the peer dead, so new requests to it fail fast, and synthesises an
// OpPeerDown reply for every request outstanding against it, so blocked
// requesters wake immediately instead of waiting out the timeout.
func (k *Kernel) peerDown(peer int) {
	k.mu.Lock()
	if k.deadPeers[peer] {
		k.mu.Unlock()
		return
	}
	k.deadPeers[peer] = true
	var victims []pendingVictim
	for seq, pr := range k.pending {
		if pr.dst == peer {
			victims = append(victims, pendingVictim{seq: seq, mb: pr.mb})
			delete(k.pending, seq)
		}
	}
	k.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, v := range victims {
		m := wire.GetMessage()
		m.Op, m.Src, m.Dst, m.Seq = wire.OpPeerDown, int32(peer), int32(k.id), v.seq
		v.mb.Put(m)
	}
	if k.cfg.Ckpt != nil {
		// Under recovery a PE blocked in a barrier/lock wait sends nothing,
		// so it would only notice the death via the sync timeout. Wake it
		// with a peer-down notice instead: any peer death aborts the run
		// (the whole cluster rolls back), so failing the wait fast is right.
		wake := wire.GetMessage()
		wake.Op, wake.Src, wake.Dst = wire.OpPeerDown, int32(peer), int32(k.id)
		k.syncMb.Put(wake)
	}
}

type pendingVictim struct {
	seq uint64
	mb  transport.Mailbox
}

// isMutating reports whether op changes state at its destination, i.e.
// whether a blind retransmission could apply it twice. These are exactly the
// ops the dedup window tracks.
func isMutating(op wire.Op) bool {
	switch op {
	case wire.OpWrite, wire.OpWriteV, wire.OpFetchAdd, wire.OpCAS,
		wire.OpProcRegister, wire.OpProcExit:
		return true
	}
	return false
}

// dedupCheck consults the requester's dedup window before a mutating request
// is dispatched. It reports whether the message was absorbed here: a
// duplicate whose response is cached is answered by resend, a duplicate
// still in progress is dropped (the eventual response will serve it). A
// first-seen request is recorded in-progress and dispatched normally.
// Serve goroutine only.
func (k *Kernel) dedupCheck(m *wire.Message) bool {
	r := k.dedup[m.Src]
	if r == nil {
		r = &dedupRing{}
		k.dedup[m.Src] = r
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.state == dedupEmpty || e.seq != m.Seq {
			continue
		}
		k.extra.DupRequests++
		if e.state == dedupDone {
			resp := wire.GetMessage()
			resp.Op, resp.Arg1, resp.Arg2 = e.respOp, e.arg1, e.arg2
			k.reply(m, resp)
		} else if m.Flags&wire.FlagRetry != 0 {
			// The writer is retrying while its invalidation round is still
			// open: a lost OpInvalidate/OpInvAck would wedge the round (and
			// absorb every further retry right here), so nudge it along.
			k.resendInvalidations(m.Src, m.Seq)
		}
		return true
	}
	r.entries[r.next] = dedupEntry{seq: m.Seq, state: dedupInProgress}
	r.next = (r.next + 1) % dedupWindow
	return false
}

// dedupComplete caches the response of a mutating request so a later retry
// can be answered by resend. Serve goroutine only.
func (k *Kernel) dedupComplete(src int32, seq uint64, respOp wire.Op, arg1, arg2 int64) {
	r := k.dedup[src]
	if r == nil {
		return
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.state != dedupEmpty && e.seq == seq {
			e.respOp, e.arg1, e.arg2 = respOp, arg1, arg2
			e.state = dedupDone
			return
		}
	}
}

// userMb returns (creating on demand) the queue for user messages with tag.
func (k *Kernel) userMb(tag int32) transport.Mailbox {
	k.mu.Lock()
	defer k.mu.Unlock()
	mb, ok := k.userq[tag]
	if !ok {
		mb = k.node.NewMailbox(0)
		k.userq[tag] = mb
	}
	return mb
}

// serve is the DSE kernel main loop (the "parallel processing mechanism"):
// it receives every message addressed to this kernel and dispatches it,
// until the node shuts down. Around every dispatch it observes the per-op
// service time (receive timestamp → handling done) and, when tracing is
// enabled, records a service span.
func (k *Kernel) serve() {
	for {
		m, ok := k.node.Recv()
		if !ok {
			return
		}
		// Copy the header before handle: for unconsumed messages ownership
		// moves to another context (a mailbox) the moment handle returns.
		op, src, seq, rcv := m.Op, m.Src, m.Seq, m.RecvAt
		consumed := k.handle(m)
		end := k.svc.Now()
		if int(op) < wire.NumOps {
			k.extra.ServiceByOp[op].Observe(end - rcv)
		}
		if k.spans != nil && k.spans.Sampled() {
			k.spans.Record(trace.Span{
				Kind: trace.SpanService, Op: op,
				PE: int32(k.id), Peer: src, Seq: seq,
				Start: rcv, End: end,
			})
		}
		if consumed {
			wire.PutMessage(m)
		}
	}
}

// handle dispatches one incoming message. It reports whether the message
// was consumed here (true → serve recycles it); false means ownership moved
// to another context: a reply mailbox, the sync mailbox or a user queue.
func (k *Kernel) handle(m *wire.Message) bool {
	k.logMessage(m)
	if isMutating(m.Op) && k.dedupCheck(m) {
		return true // duplicate: absorbed by the dedup window
	}
	switch m.Op {
	// Responses to this kernel's own outstanding requests.
	case wire.OpReadResp, wire.OpWriteAck, wire.OpFetchAddResp, wire.OpCASResp,
		wire.OpReadVResp, wire.OpCkptMarkResp,
		wire.OpProcRegResp, wire.OpProcExitAck, wire.OpProcListResp,
		wire.OpPong, wire.OpWelcome:
		if mb, ok := k.takePending(m.Seq); ok {
			mb.Put(m)
			return false
		}
		// Stray: a reply that outlived its request (timeout, retry already
		// answered, peer-down already surfaced). Count and drop.
		k.extra.StrayDrops++
		return true

	// Synchronisation grants for the application context.
	case wire.OpBarrierRelease:
		return k.handleBarrierRelease(m)
	case wire.OpLockGrant, wire.OpSemGrant:
		k.syncMb.Put(m)
		return false

	// Global memory service (this kernel is the home).
	case wire.OpRead:
		k.handleRead(m)
	case wire.OpReadV:
		k.handleReadV(m)
	case wire.OpWrite:
		k.handleWrite(m)
	case wire.OpWriteV:
		k.handleWriteV(m)
	case wire.OpFetchAdd:
		k.handleFetchAdd(m)
	case wire.OpCAS:
		k.handleCAS(m)
	case wire.OpInvalidate:
		k.handleInvalidate(m)
	case wire.OpInvAck:
		k.handleInvAck(m)

	// Synchronisation service.
	case wire.OpBarrierArrive:
		k.handleBarrierArrive(m)
	case wire.OpLockAcquire:
		if k.locks.Acquire(int(m.Src), m.Tag) {
			grant := wire.GetMessage()
			grant.Op, grant.Tag = wire.OpLockGrant, m.Tag
			k.reply(m, grant)
		}
	case wire.OpLockRelease:
		if next, ok := k.locks.Release(int(m.Src), m.Tag); ok {
			k.sendTo(next, wire.OpLockGrant, m.Tag)
		}
	case wire.OpSemWait:
		if k.sems.Wait(int(m.Src), m.Tag) {
			grant := wire.GetMessage()
			grant.Op, grant.Tag = wire.OpSemGrant, m.Tag
			k.reply(m, grant)
		}
	case wire.OpSemPost:
		if next, ok := k.sems.Post(m.Tag); ok {
			k.sendTo(next, wire.OpSemGrant, m.Tag)
		}

	// Parallel process management (kernel 0 hosts the global table).
	case wire.OpProcRegister:
		gpid := k.procs.Register(m.Src, string(m.Data), k.svc.Now())
		resp := wire.GetMessage()
		resp.Op, resp.Arg1 = wire.OpProcRegResp, gpid
		k.reply(m, resp)
	case wire.OpProcExit:
		if err := k.procs.Exit(m.Arg1, m.Arg2, k.svc.Now()); err != nil {
			// Unknown or already-exited gpid: a duplicate that outlived the
			// dedup window. Exit is idempotent, so count it and ack anyway.
			k.extra.StrayDrops++
		}
		resp := wire.GetMessage()
		resp.Op = wire.OpProcExitAck
		k.reply(m, resp)
	case wire.OpProcList:
		resp := wire.GetMessage()
		resp.Op = wire.OpProcListResp
		resp.Data = procmgmt.EncodeSnapshot(k.procs.Snapshot())
		k.reply(m, resp)

	// Application-level messages: the payload escapes to the application
	// via RecvMsg, so the message is never recycled.
	case wire.OpUserMsg:
		k.userMb(m.Tag).Put(m)
		return false

	// Coordinated checkpoint: export this kernel's slice of global memory
	// plus the coherence directory. The requesting PE is this kernel's own
	// application context, quiesced at a barrier, so the slice is a
	// consistent cut — no request of this PE is in flight while we serialise.
	case wire.OpCkptMark:
		resp := wire.GetMessage()
		resp.Op = wire.OpCkptMarkResp
		resp.Data = ckpt.EncodeKernelState(k.cfg.GMBlockWords, k.seg.Export())
		resp.Arg1 = int64(k.svc.Now())
		k.reply(m, resp)

	// Liveness.
	case wire.OpPing:
		resp := wire.GetMessage()
		resp.Op = wire.OpPong
		k.reply(m, resp)

	default:
		// Unknown op: malformed or hostile traffic must not take the kernel
		// down. Count and drop.
		k.extra.CorruptDrops++
	}
	return true
}

// sendTo sends a freshly pooled grant-style message to kernel dst.
func (k *Kernel) sendTo(dst int, op wire.Op, tag int32) {
	g := wire.GetMessage()
	g.Op, g.Src, g.Dst, g.Tag = op, int32(k.id), int32(dst), tag
	k.svc.Send(dst, g)
	wire.PutMessage(g)
}

// logMessage appends m to the cluster-wide protocol trace, if enabled.
func (k *Kernel) logMessage(m *wire.Message) {
	cfg := k.cfg
	if cfg.MessageLog == nil {
		return
	}
	cfg.logMu.Lock()
	fmt.Fprintf(cfg.MessageLog, "t=%v k=%d %s\n", k.svc.Now(), k.id, m)
	cfg.logMu.Unlock()
}

// reply answers request m, echoing its Seq. reply takes ownership of resp:
// the transport has fully serialised it by the time Send returns, so it is
// recycled here.
func (k *Kernel) reply(m *wire.Message, resp *wire.Message) {
	resp.Src = int32(k.id)
	resp.Dst = m.Src
	resp.Seq = m.Seq
	if isMutating(m.Op) {
		k.dedupComplete(m.Src, m.Seq, resp.Op, resp.Arg1, resp.Arg2)
	}
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
}

func (k *Kernel) handleRead(m *wire.Message) {
	resp := wire.GetMessage()
	resp.Op, resp.Addr = wire.OpReadResp, m.Addr
	if m.Arg2 == 1 {
		// Block fetch for the caching protocol: return the whole block and
		// record the reader in the directory.
		resp.PutWords(k.seg.ReadBlockFor(m.Addr, int(m.Src)))
		k.reply(m, resp)
		return
	}
	k.wscratch = k.seg.ReadAppend(k.wscratch[:0], m.Addr, int(m.Arg1))
	resp.PutWords(k.wscratch)
	k.reply(m, resp)
}

// handleReadV serves a vectored read: every requested range, gathered into
// one response payload.
func (k *Kernel) handleReadV(m *wire.Message) {
	k.raddrs = k.raddrs[:0]
	k.rcounts = k.rcounts[:0]
	if err := m.EachRange(func(addr uint64, count int) {
		k.raddrs = append(k.raddrs, addr)
		k.rcounts = append(k.rcounts, count)
	}); err != nil {
		// Corrupt vectored-read payload: drop without replying (the
		// requester's timeout/retry machinery owns recovery).
		k.extra.CorruptDrops++
		return
	}
	k.wscratch = k.seg.ReadV(k.wscratch[:0], k.raddrs, k.rcounts)
	resp := wire.GetMessage()
	resp.Op, resp.Addr = wire.OpReadVResp, m.Addr
	resp.PutWords(k.wscratch)
	k.reply(m, resp)
}

func (k *Kernel) handleWrite(m *wire.Message) {
	if len(m.Data)%8 != 0 {
		// Torn payload (WordsInto would panic): drop and let the requester
		// retry.
		k.extra.CorruptDrops++
		return
	}
	k.wscratch = m.WordsInto(k.wscratch)
	if k.cache == nil {
		k.seg.Write(m.Addr, k.wscratch)
		ack := wire.GetMessage()
		ack.Op = wire.OpWriteAck
		k.reply(m, ack)
		return
	}
	targets := k.seg.WriteInvalidating(m.Addr, k.wscratch, int(m.Src))
	k.invSends = k.invSends[:0]
	for _, t := range targets {
		k.invSends = append(k.invSends, invSend{addr: m.Addr, dst: t})
	}
	k.finishAfterInvalidations(m, k.invSends, wire.OpWriteAck, 0, 0)
}

// handleWriteV serves a vectored write: every run scattered to its range,
// one ack. Under caching, the ack is withheld until every invalidation of
// every touched block has been acknowledged.
func (k *Kernel) handleWriteV(m *wire.Message) {
	var err error
	if k.cache == nil {
		k.vscratch, err = m.EachWriteRun(k.vscratch, func(addr uint64, words []int64) {
			k.seg.Write(addr, words)
		})
		if err != nil {
			// Runs decoded before the corruption were already applied; the
			// request is not acked, so the requester treats it as lost.
			k.extra.CorruptDrops++
			return
		}
		ack := wire.GetMessage()
		ack.Op = wire.OpWriteAck
		k.reply(m, ack)
		return
	}
	k.invSends = k.invSends[:0]
	k.vscratch, err = m.EachWriteRun(k.vscratch, func(addr uint64, words []int64) {
		for _, t := range k.seg.WriteInvalidating(addr, words, int(m.Src)) {
			k.invSends = append(k.invSends, invSend{addr: addr, dst: t})
		}
	})
	if err != nil {
		k.extra.CorruptDrops++
		return
	}
	k.finishAfterInvalidations(m, k.invSends, wire.OpWriteAck, 0, 0)
}

func (k *Kernel) handleFetchAdd(m *wire.Message) {
	old := k.seg.FetchAdd(m.Addr, m.Arg1)
	if k.cache == nil {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1 = wire.OpFetchAddResp, old
		k.reply(m, resp)
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	k.invSends = k.invSends[:0]
	for _, t := range targets {
		k.invSends = append(k.invSends, invSend{addr: m.Addr, dst: t})
	}
	k.finishAfterInvalidations(m, k.invSends, wire.OpFetchAddResp, old, 0)
}

func (k *Kernel) handleCAS(m *wire.Message) {
	prev, swapped := k.seg.CAS(m.Addr, m.Arg1, m.Arg2)
	var sw int64
	if swapped {
		sw = 1
	}
	if k.cache == nil || !swapped {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = wire.OpCASResp, prev, sw
		k.reply(m, resp)
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	k.invSends = k.invSends[:0]
	for _, t := range targets {
		k.invSends = append(k.invSends, invSend{addr: m.Addr, dst: t})
	}
	k.finishAfterInvalidations(m, k.invSends, wire.OpCASResp, prev, sw)
}

// finishAfterInvalidations acknowledges a mutating request immediately when
// no remote copies exist, or after every cached copy of every touched block
// has acknowledged its invalidation (write-invalidate coherence: the writer
// may not proceed while stale copies are readable).
func (k *Kernel) finishAfterInvalidations(m *wire.Message, sends []invSend, respOp wire.Op, arg1, arg2 int64) {
	if k.cfg.FaultDropInvalidations {
		// TEST-ONLY fault: pretend no copies exist, acknowledging the write
		// without invalidating remote caches. Readers keep serving stale
		// values — the consistency checker must flag them.
		sends = nil
	}
	if len(sends) == 0 {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = respOp, arg1, arg2
		k.reply(m, resp)
		return
	}
	k.invNext++
	id := k.invNext
	r := &invRound{
		requester: m.Src, seq: m.Seq,
		respOp: respOp, arg1: arg1, arg2: arg2,
	}
	// sends aliases the reused k.invSends scratch; the round needs its own
	// copy to survive until the last ack.
	r.outstanding = append(r.outstanding, sends...)
	k.inv[id] = r
	for _, s := range sends {
		inv := wire.GetMessage()
		inv.Op, inv.Src, inv.Dst = wire.OpInvalidate, int32(k.id), int32(s.dst)
		inv.Seq, inv.Addr = id, s.addr
		k.svc.Send(s.dst, inv)
		wire.PutMessage(inv)
	}
}

// resendInvalidations retransmits the still-unacked invalidations of the
// round started by requester's mutating request seq, if one is in flight.
// Called when a retried duplicate of that request arrives: the retry means
// the writer never got its response, and under a lossy transport the likely
// cause is a lost OpInvalidate or OpInvAck that no other timer would ever
// recover. Serve goroutine only.
func (k *Kernel) resendInvalidations(requester int32, seq uint64) {
	for id, r := range k.inv {
		if r.requester != requester || r.seq != seq {
			continue
		}
		for _, s := range r.outstanding {
			inv := wire.GetMessage()
			inv.Op, inv.Src, inv.Dst = wire.OpInvalidate, int32(k.id), int32(s.dst)
			inv.Seq, inv.Addr = id, s.addr
			inv.Flags |= wire.FlagRetry
			k.svc.Send(s.dst, inv)
			wire.PutMessage(inv)
		}
		return
	}
}

func (k *Kernel) handleInvalidate(m *wire.Message) {
	if k.cache != nil {
		k.cache.Invalidate(m.Addr)
	}
	ack := wire.GetMessage()
	ack.Op, ack.Addr = wire.OpInvAck, m.Addr
	k.reply(m, ack)
}

func (k *Kernel) handleInvAck(m *wire.Message) {
	r, ok := k.inv[m.Seq]
	if !ok {
		// A duplicate or late ack for a round already completed: count and
		// drop instead of taking the kernel down.
		k.extra.StrayDrops++
		return
	}
	// Match the ack against a specific outstanding invalidation so that a
	// duplicated ack (original + the answer to a retransmission) cannot
	// complete the round while other copies are still live.
	found := -1
	for i, s := range r.outstanding {
		if s.dst == int(m.Src) && s.addr == m.Addr {
			found = i
			break
		}
	}
	if found < 0 {
		k.extra.StrayDrops++
		return
	}
	r.outstanding = append(r.outstanding[:found], r.outstanding[found+1:]...)
	if len(r.outstanding) > 0 {
		return
	}
	delete(k.inv, m.Seq)
	k.dedupComplete(r.requester, r.seq, r.respOp, r.arg1, r.arg2)
	resp := wire.GetMessage()
	resp.Op, resp.Src, resp.Dst, resp.Seq = r.respOp, int32(k.id), r.requester, r.seq
	resp.Arg1, resp.Arg2 = r.arg1, r.arg2
	k.svc.Send(int(r.requester), resp)
	wire.PutMessage(resp)
}

// handleBarrierArrive implements both barrier flavours.
func (k *Kernel) handleBarrierArrive(m *wire.Message) {
	if k.cfg.Barrier == BarrierTree {
		if k.tree.Arrive(m.Tag) {
			if parent, ok := k.tree.Parent(); ok {
				k.sendTo(parent, wire.OpBarrierArrive, m.Tag)
			} else {
				k.releaseDown(m.Tag)
			}
		}
		return
	}
	// Central barrier: kernel 0 counts and releases everyone.
	if k.id != 0 {
		panic(fmt.Sprintf("core: kernel %d received central barrier arrive", k.id))
	}
	if waiters := k.barrier.Arrive(int(m.Src), m.Tag); waiters != nil {
		for _, w := range waiters {
			k.sendTo(w, wire.OpBarrierRelease, m.Tag)
		}
	}
}

// handleBarrierRelease wakes the local application and, for the tree
// barrier, forwards the release to this kernel's subtree. It reports
// whether the message was consumed (central releases move to the sync
// mailbox instead).
func (k *Kernel) handleBarrierRelease(m *wire.Message) bool {
	if k.cfg.Barrier == BarrierTree {
		k.releaseDown(m.Tag)
		return true
	}
	k.syncMb.Put(m)
	return false
}

func (k *Kernel) releaseDown(tag int32) {
	for _, c := range k.tree.Children() {
		k.sendTo(c, wire.OpBarrierRelease, tag)
	}
	wake := wire.GetMessage()
	wake.Op, wake.Src, wake.Dst, wake.Tag = wire.OpBarrierRelease, int32(k.id), int32(k.id), tag
	k.syncMb.Put(wake)
}

// Stats returns the node's transport-level counters.
func (k *Kernel) Stats() *trace.PEStats { return k.node.Stats() }

// requestTimeout returns the configured request deadline (0 = wait forever).
func (k *Kernel) requestTimeout() sim.Duration { return k.cfg.RequestTimeout }
