// Package core implements the DSE parallel processing library and API
// library of the paper: the DSE kernel (parallel processing mechanism,
// parallel process management, global memory management, message exchange)
// linked into the same "UNIX process" as the DSE application process, with
// the kernel running as a service context that interleaves with the
// application — the paper's reorganised, dynamic-linking-free design.
//
// Memory consistency: without caching, every global-memory word has a
// single home and all accesses are serialised there (coherent and
// sequentially consistent per location). With the caching protocol, writes
// are write-through to the home and block until every cached copy has
// acknowledged invalidation, so a completed write is visible to all
// subsequent reads; like classic invalidation-based DSMs, a reader may
// still use its cached copy during the brief window before its kernel
// processes the invalidation, which is why programs order cross-PE
// visibility with barriers, locks or reductions (all of which imply write
// completion).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/psync"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Kernel is one DSE kernel: the runtime side of a PE. Its serve loop runs
// in the node's Svc context and fields every message addressed to this
// kernel, while the application programs against the PE façade in the App
// context. The home-side global-memory service is sharded by address range
// (see kernelShard); everything else — synchronisation, process management,
// user messages, checkpoint marks, peer-down handling — stays on the serial
// serve loop.
type Kernel struct {
	id    int
	n     int
	node  transport.Node
	svc   transport.Port
	cfg   *Config
	space gmem.Space
	seg   *gmem.Segment
	cache *gmem.Cache // non-nil only when cfg.Caching

	// dir is this kernel's view of the elastic membership directory, shared
	// with its PE. Lookups are lock-free; a static directory (all members
	// active, no overrides) keeps every hot path on the pure block-cyclic
	// layout.
	dir *gmem.Directory

	// migGen counts home-migration transitions this kernel has applied.
	// Ring producers read it before publishing and recheck after their write
	// is consumed: an unchanged value proves the drain ran under the same
	// ownership view, a changed one makes the write ambiguous (it may have
	// been filtered) and the producer falls back to the message path with the
	// same sequence, where the dedup window keeps it exactly-once.
	migGen atomic.Uint64

	// escrow holds blocks this kernel extracted for a migration whose commit
	// has not yet arrived: the snapshot plus its destination. Any GM request
	// hitting an escrowed block re-offers the block to its destination
	// (fire-and-forget install) before NACKing, so a migration whose
	// initiator died mid-flight heals through normal request traffic.
	// Guarded by escrowMu: written by the serial loop, read by shard workers.
	escrowMu sync.Mutex
	escrow   map[uint64]escrowEntry

	// Membership grant state (kernel 0, serial loop only): at most one
	// join/leave transition is in flight cluster-wide. grantBusyMember is the
	// member holding the open grant (-1 = none); the grant clears when that
	// member's OpEpochUpdate arrives or the member is found dead.
	grantBusyMember int
	grantBusyGen    uint64

	// ns holds this kernel's namespace bindings (dsesched per-job GM
	// isolation): requester PE → bound region. The serial loop installs
	// bindings (OpNsBind); shard workers and the co-located PE's one-sided
	// paths look them up lock-free on every GM access.
	ns *gmem.NSRegistry

	// Central managers, present at kernel 0 only.
	barrier *psync.BarrierManager
	locks   *psync.LockManager
	sems    *psync.SemManager
	procs   *procmgmt.Table

	// Distributed tree barrier state (when cfg.Barrier == BarrierTree).
	tree *psync.TreeBarrier

	// syncMb receives barrier releases and lock/semaphore grants for the
	// (single-threaded) application context.
	syncMb transport.Mailbox

	// seqCtr allocates this kernel's request ids. Atomic so the requester
	// hot path numbers a request without taking k.mu.
	seqCtr atomic.Uint64

	mu        sync.Mutex
	pending   map[uint64]pendingReq
	userq     map[int32]transport.Mailbox
	deadPeers map[int]bool // peers the transport declared dead

	// deadFlags mirrors deadPeers as lock-free per-peer flags, so the
	// requester fast paths (request numbering, direct reads) check liveness
	// without k.mu. A flag is set only after the pending sweep for that peer
	// completed; addPending rechecks deadPeers under k.mu before inserting,
	// closing the race with a concurrent sweep.
	deadFlags []atomic.Bool

	// Sharded home-side global-memory service: nshards independent shards,
	// each owning a disjoint set of homed blocks (gmem.Space.ShardOf). With
	// workers set (real transports, nshards > 1) each shard runs its own
	// goroutine fed through its queue; otherwise the serve goroutine calls
	// into the routed shard inline, which keeps the simulated transport's
	// cooperative single-context model (and its determinism) intact.
	nshards int
	workers bool
	shards  []*kernelShard
	shardWG sync.WaitGroup
	// invCtr issues invalidation-round ids, kernel-global so rounds are
	// unique across shards and an OpInvAck can never alias a round of
	// another shard.
	invCtr atomic.Uint64

	// windows[i] is kernel i's segment when the one-sided direct-read fast
	// path is enabled (co-located transports, caching off); nil otherwise.
	// Read-only after cluster construction.
	windows []*gmem.Segment

	// ringPeers[i] is kernel i itself when the one-sided write fast path is
	// enabled, so this kernel's PE can reach a co-located home's per-shard
	// submission rings; nil otherwise. Read-only after cluster construction
	// (rebound, like windows, on every recovery restart).
	ringPeers []*Kernel

	// dispatched is serve-goroutine scratch: set by dispatchGM when the
	// message was handed to a shard worker, which then owns service-time
	// accounting and message recycling.
	dispatched bool

	// dedup holds the per-requester exactly-once window for the mutating
	// process-management ops the serial loop services (OpProcRegister,
	// OpProcExit); global-memory mutations dedup inside their shard. Serve
	// goroutine only.
	dedup dedupTable

	// extra accumulates reliability counters and service-time histograms the
	// transport does not track (kernel side; the PE keeps its own in
	// pe.extra, shards in kernelShard.extra). Serve goroutine only
	// (histograms follow their own concurrency contract and may additionally
	// be read live).
	extra trace.PEStats

	// spans records one service span per handled message (nil unless
	// Config.Tracing). Serve goroutine only; shard workers record into their
	// own rings.
	spans *trace.SpanRing
}

// invSend is one invalidation a mutating request must issue: drop the
// cached block containing addr at kernel dst.
type invSend struct {
	addr uint64
	dst  int
}

// pendingReq is one outstanding request of this kernel's PE: the mailbox its
// reply routes to and the kernel it was addressed to (so a peer-down event
// can fail exactly the requests aimed at the dead kernel).
type pendingReq struct {
	mb  transport.Mailbox
	dst int
}

// The dedup window: the home kernel remembers the last dedupWindow mutating
// requests per requester, so a retried request (same Seq) is absorbed instead
// of re-applied. A PE issues requests one at a time, so a window this size is
// far deeper than any retry can reach back — which also means splitting the
// window per shard (requests route to the shard that owns their address, and
// a retry routes identically) cannot change what gets absorbed.
const dedupWindow = 32

const (
	dedupEmpty      uint8 = iota
	dedupInProgress       // dispatched; response not yet produced (invalidation round outstanding)
	dedupDone             // response sent; cached for resend
)

// dedupEntry records one mutating request and, once known, its response.
// data caches a payload-carrying response (OpMigrateStartResp: a retried
// migrate-start must resend the extracted blocks, which no longer exist in
// the segment); nil for the scalar responses of ordinary GM mutations.
type dedupEntry struct {
	seq    uint64
	respOp wire.Op
	arg1   int64
	arg2   int64
	data   []byte
	state  uint8
}

// escrowEntry is one block awaiting its migration commit at the old home.
type escrowEntry struct {
	dst   int
	block gmem.BlockSnapshot
}

// dedupRing is a fixed ring of the most recent mutating requests from one
// requester.
type dedupRing struct {
	entries [dedupWindow]dedupEntry
	next    int
}

// dedupTable is an exactly-once window keyed by requester. The kernel's
// serial loop and every shard own one each; a table is single-goroutine.
type dedupTable struct {
	rings map[int32]*dedupRing
}

func newDedupTable() dedupTable { return dedupTable{rings: make(map[int32]*dedupRing)} }

// lookup returns the entry recorded for (src, seq); a first-seen seq is
// recorded as in-progress and nil is returned.
func (d *dedupTable) lookup(src int32, seq uint64) *dedupEntry {
	r := d.rings[src]
	if r == nil {
		r = &dedupRing{}
		d.rings[src] = r
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.state != dedupEmpty && e.seq == seq {
			return e
		}
	}
	r.entries[r.next] = dedupEntry{seq: seq, state: dedupInProgress}
	r.next = (r.next + 1) % dedupWindow
	return nil
}

// complete caches the response of a mutating request so a later retry can be
// answered by resend. data is copied (the response message is recycled after
// Send); pass nil for responses without a payload.
func (d *dedupTable) complete(src int32, seq uint64, respOp wire.Op, arg1, arg2 int64, data []byte) {
	r := d.rings[src]
	if r == nil {
		return
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.state != dedupEmpty && e.seq == seq {
			e.respOp, e.arg1, e.arg2 = respOp, arg1, arg2
			e.data = nil
			if len(data) > 0 {
				e.data = append([]byte(nil), data...)
			}
			e.state = dedupDone
			return
		}
	}
}

// forget erases the entry recorded for (src, seq), returning the slot to
// the window. Used when a request is answered with a migrate NACK: the NACK
// is side-effect-free and is simply recomputed if the request is retried
// here, while a cached copy would keep answering the sequence number after
// the block lands at this kernel — a requester whose early redirect raced
// the install would have its legitimate retry masked forever.
func (d *dedupTable) forget(src int32, seq uint64) {
	r := d.rings[src]
	if r == nil {
		return
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.state != dedupEmpty && e.seq == seq {
			*e = dedupEntry{}
			return
		}
	}
}

// invRound tracks one write/atomic waiting for invalidation acks before the
// home may acknowledge it. outstanding holds the invalidations not yet
// acked, so a retried writer request can trigger their retransmission — an
// OpInvalidate or OpInvAck lost on the wire would otherwise leave the round
// stuck forever while the writer's retries are absorbed as in-progress
// duplicates.
type invRound struct {
	requester   int32
	seq         uint64
	respOp      wire.Op
	arg1        int64
	arg2        int64
	outstanding []invSend
}

func newKernel(id int, node transport.Node, cfg *Config) *Kernel {
	space := gmem.NewSpace(cfg.NumPE, cfg.GMBlockWords)
	k := &Kernel{
		id:        id,
		n:         cfg.NumPE,
		node:      node,
		svc:       node.Svc(),
		cfg:       cfg,
		space:     space,
		seg:       gmem.NewSegment(space, id),
		syncMb:    node.NewMailbox(16),
		pending:   make(map[uint64]pendingReq),
		userq:     make(map[int32]transport.Mailbox),
		deadPeers: make(map[int]bool),
		deadFlags: make([]atomic.Bool, cfg.NumPE),
		dedup:     newDedupTable(),
		spans:     cfg.Tracing.NewRing(),
		ns:        gmem.NewNSRegistry(),

		dir:             gmem.NewDirectory(cfg.NumPE, cfg.LatentPEs),
		escrow:          make(map[uint64]escrowEntry),
		grantBusyMember: -1,
	}
	k.seg.SetDirectory(k.dir)
	k.nshards = cfg.KernelShards
	if k.nshards < 1 {
		k.nshards = 1
	}
	// Shard workers need a Svc port that is safe for concurrent Send; the
	// simulated transport's ports are bound to one cooperative process, so
	// sharding dispatches inline there (still per-shard state, no threads).
	k.workers = k.nshards > 1 && cfg.Transport != TransportSim
	k.shards = make([]*kernelShard, k.nshards)
	for i := range k.shards {
		k.shards[i] = newKernelShard(k, i, ringsEnabled(cfg))
	}
	node.SetPeerDown(k.peerDown)
	if cfg.Caching {
		k.cache = gmem.NewCache(space)
	}
	if id == 0 {
		k.barrier = psync.NewBarrierManager(cfg.NumPE)
		k.locks = psync.NewLockManager()
		k.sems = psync.NewSemManager()
		k.procs = procmgmt.NewTable()
	}
	if cfg.Barrier == BarrierTree {
		k.tree = psync.NewTreeBarrier(id, cfg.NumPE, treeArity)
	}
	if cfg.restore != nil {
		// Recovery: rebuild this kernel's slice of global memory (and the
		// coherence directory) from the snapshot before serving. Imported
		// copyset entries may name kernels whose fresh caches hold nothing;
		// the resulting spurious invalidations are acknowledged harmlessly.
		// The membership directory is restored first so ownership checks on
		// Import (and every later request) see the snapshotted view; escrowed
		// blocks resume their pending handoff via the re-offer path.
		if ds := cfg.restore.dirs[id]; ds != nil {
			for i, ms := range ds.Members {
				if i < cfg.NumPE {
					k.dir.SetMember(i, gmem.MemberState(ms.State), ms.Gen)
				}
			}
			for _, ov := range ds.Overrides {
				k.dir.SetOverride(ov[0], int(ov[1]))
			}
			for _, es := range ds.Escrow {
				k.escrow[es.Block.Index] = escrowEntry{dst: es.Dst, block: es.Block}
			}
		}
		if err := k.seg.Import(cfg.restore.blocks[id]); err != nil {
			panic(fmt.Sprintf("core: kernel %d: restoring snapshot: %v", id, err))
		}
	}
	return k
}

// treeArity is the fan-in of the tree barrier.
const treeArity = 2

// addPending reserves a request id and registers its reply mailbox. If the
// transport has already declared dst dead it reports dead=true and registers
// nothing: the caller fails the request immediately instead of sending into
// the void. The id comes from the atomic counter — the mutex guards only the
// pending-map insert, and the dead-peer recheck under it closes the race
// with a concurrent peer-down sweep (the sweep marks deadPeers before it
// collects victims, so an insert that slipped past the flag either happens
// before the sweep and is swept, or sees deadPeers set and backs out).
func (k *Kernel) addPending(mb transport.Mailbox, dst int) (seq uint64, dead bool) {
	seq = k.seqCtr.Add(1)
	if k.deadFlags[dst].Load() {
		return seq, true
	}
	k.mu.Lock()
	if k.deadPeers[dst] {
		k.mu.Unlock()
		return seq, true
	}
	k.pending[seq] = pendingReq{mb: mb, dst: dst}
	k.mu.Unlock()
	return seq, false
}

// addPendingSeq re-registers an existing request id against a (possibly new)
// destination: the migration-NACK redirect and the ambiguous one-sided write
// fallback keep their original sequence number so the home's dedup window
// recognises the operation, but need the reply routed again after the first
// response consumed the pending entry.
func (k *Kernel) addPendingSeq(mb transport.Mailbox, dst int, seq uint64) (dead bool) {
	if k.deadFlags[dst].Load() {
		return true
	}
	k.mu.Lock()
	if k.deadPeers[dst] {
		k.mu.Unlock()
		return true
	}
	k.pending[seq] = pendingReq{mb: mb, dst: dst}
	k.mu.Unlock()
	return false
}

func (k *Kernel) takePending(seq uint64) (transport.Mailbox, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	pr, ok := k.pending[seq]
	if ok {
		delete(k.pending, seq)
	}
	return pr.mb, ok
}

// dropPending forgets a request that timed out.
func (k *Kernel) dropPending(seq uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.pending, seq)
}

// peerDown is the transport's peer-failure callback (any goroutine). It
// marks the peer dead, so new requests to it fail fast, and synthesises an
// OpPeerDown reply for every request outstanding against it, so blocked
// requesters wake immediately instead of waiting out the timeout.
//
// It deliberately does NOT fence the GM shards: a shard worker's own reply
// Send can be what reports the peer down, and a fence would then wait on a
// worker that is waiting on this callback. No fence is needed — shard state
// is keyed by requester/seq and a dead requester's entries are inert.
func (k *Kernel) peerDown(peer int) {
	k.mu.Lock()
	if k.deadPeers[peer] {
		k.mu.Unlock()
		return
	}
	k.deadPeers[peer] = true
	var victims []pendingVictim
	for seq, pr := range k.pending {
		if pr.dst == peer {
			victims = append(victims, pendingVictim{seq: seq, mb: pr.mb})
			delete(k.pending, seq)
		}
	}
	k.mu.Unlock()
	// Publish the lock-free flag only after the sweep: see addPending.
	k.deadFlags[peer].Store(true)
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, v := range victims {
		m := wire.GetMessage()
		m.Op, m.Src, m.Dst, m.Seq = wire.OpPeerDown, int32(peer), int32(k.id), v.seq
		v.mb.Put(m)
	}
	if k.cfg.Ckpt != nil {
		// Under recovery a PE blocked in a barrier/lock wait sends nothing,
		// so it would only notice the death via the sync timeout. Wake it
		// with a peer-down notice instead: any peer death aborts the run
		// (the whole cluster rolls back), so failing the wait fast is right.
		wake := wire.GetMessage()
		wake.Op, wake.Src, wake.Dst = wire.OpPeerDown, int32(peer), int32(k.id)
		k.syncMb.Put(wake)
	}
}

type pendingVictim struct {
	seq uint64
	mb  transport.Mailbox
}

// isMutating reports whether op changes state at its destination, i.e.
// whether a blind retransmission could apply it twice. These are exactly the
// ops the dedup windows track.
func isMutating(op wire.Op) bool {
	switch op {
	case wire.OpWrite, wire.OpWriteV, wire.OpFlushV, wire.OpFetchAdd, wire.OpCAS,
		wire.OpProcRegister, wire.OpProcExit,
		wire.OpMigrateStart, wire.OpMigrateInstall, wire.OpJoin, wire.OpLeave:
		// Migrate-start extracts blocks (a retry must resend the cached
		// payload, not re-extract nothing); install adopts them; join/leave
		// allocate a membership generation (a retry must get the same one).
		// Commit and epoch updates are idempotent and stay un-deduped.
		return true
	}
	return false
}

// dedupCheck consults the serial loop's dedup window before a mutating
// process-management request is dispatched. It reports whether the message
// was absorbed here: a duplicate whose response is cached is answered by
// resend, a duplicate still in progress is dropped. (Unlike GM writes, proc
// ops never open an invalidation round, so there is nothing to re-kick for
// an in-progress duplicate.) Serve goroutine only.
func (k *Kernel) dedupCheck(m *wire.Message) bool {
	e := k.dedup.lookup(m.Src, m.Seq)
	if e == nil {
		return false
	}
	k.extra.DupRequests++
	if e.state == dedupDone {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = e.respOp, e.arg1, e.arg2
		if len(e.data) > 0 {
			resp.Data = append([]byte(nil), e.data...)
		}
		k.reply(m, resp)
	}
	return true
}

// userMb returns (creating on demand) the queue for user messages with tag.
func (k *Kernel) userMb(tag int32) transport.Mailbox {
	k.mu.Lock()
	defer k.mu.Unlock()
	mb, ok := k.userq[tag]
	if !ok {
		mb = k.node.NewMailbox(0)
		k.userq[tag] = mb
	}
	return mb
}

// releaseUserQueues closes and forgets every user-message mailbox. Called
// once when the serve loop exits (PE shutdown): tags registered by userMb
// used to accumulate for the kernel's lifetime — a leak for programs cycling
// through many tags — and a closed mailbox wakes any straggling RecvMsg.
func (k *Kernel) releaseUserQueues() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for tag, mb := range k.userq {
		mb.Close()
		delete(k.userq, tag)
	}
}

// serve is the DSE kernel main loop (the "parallel processing mechanism"):
// it receives every message addressed to this kernel and dispatches it,
// until the node shuts down. Around every dispatch it observes the per-op
// service time (receive timestamp → handling done) and, when tracing is
// enabled, records a service span; messages handed to a shard worker are
// accounted by the worker instead. Shard workers live exactly as long as
// the loop: started on entry, drained and joined on exit.
func (k *Kernel) serve() {
	if k.workers {
		for _, sh := range k.shards {
			k.shardWG.Add(1)
			go sh.run()
		}
	}
	defer func() {
		if k.workers {
			for _, sh := range k.shards {
				close(sh.q)
			}
			k.shardWG.Wait()
		}
		k.releaseUserQueues()
	}()
	for {
		m, ok := k.node.Recv()
		if !ok {
			return
		}
		// Copy the header before handle: for unconsumed messages ownership
		// moves to another context (a mailbox) the moment handle returns.
		op, src, seq, rcv := m.Op, m.Src, m.Seq, m.RecvAt
		consumed := k.handle(m)
		if k.dispatched {
			// A shard worker owns this message now, including its
			// service-time accounting and recycling.
			k.dispatched = false
			continue
		}
		end := k.svc.Now()
		if int(op) < wire.NumOps {
			k.extra.ServiceByOp[op].Observe(end - rcv)
		}
		if k.spans != nil && k.spans.Sampled() {
			k.spans.Record(trace.Span{
				Kind: trace.SpanService, Op: op,
				PE: int32(k.id), Peer: src, Seq: seq,
				Start: rcv, End: end,
			})
		}
		if consumed {
			wire.PutMessage(m)
		}
	}
}

// handle dispatches one incoming message. It reports whether the message
// was consumed here (true → serve recycles it); false means ownership moved
// to another context: a reply mailbox, the sync mailbox, a user queue or a
// shard worker.
func (k *Kernel) handle(m *wire.Message) bool {
	k.logMessage(m)
	switch m.Op {
	// Responses to this kernel's own outstanding requests.
	case wire.OpReadResp, wire.OpWriteAck, wire.OpFetchAddResp, wire.OpCASResp,
		wire.OpReadVResp, wire.OpCkptMarkResp,
		wire.OpProcRegResp, wire.OpProcExitAck, wire.OpProcListResp,
		wire.OpPong, wire.OpWelcome,
		wire.OpMigrateStartResp, wire.OpMigrateInstallResp, wire.OpMigrateCommitResp,
		wire.OpMigrateNack, wire.OpJoinResp, wire.OpLeaveResp, wire.OpEpochUpdateResp,
		wire.OpReadLeaseResp,
		wire.OpNsBindAck, wire.OpNsFreeAck, wire.OpNsNack, wire.OpJobPurgeAck:
		if mb, ok := k.takePending(m.Seq); ok {
			mb.Put(m)
			return false
		}
		// Stray: a reply that outlived its request (timeout, retry already
		// answered, peer-down already surfaced). Count and drop.
		k.extra.StrayDrops++
		return true

	// Synchronisation grants for the application context.
	case wire.OpBarrierRelease:
		return k.handleBarrierRelease(m)
	case wire.OpLockGrant, wire.OpSemGrant:
		k.syncMb.Put(m)
		return false

	// Global memory service (this kernel is the home): route to the shard
	// owning the address range. GM mutations dedup inside the shard.
	case wire.OpRead, wire.OpReadV, wire.OpWrite, wire.OpWriteV,
		wire.OpFetchAdd, wire.OpCAS, wire.OpInvalidate, wire.OpInvAck,
		wire.OpFlushV, wire.OpReadLease:
		return k.dispatchGM(m)

	// Synchronisation service.
	case wire.OpBarrierArrive:
		k.handleBarrierArrive(m)
	case wire.OpLockAcquire:
		if k.locks.Acquire(int(m.Src), m.Tag) {
			grant := wire.GetMessage()
			grant.Op, grant.Tag = wire.OpLockGrant, m.Tag
			k.reply(m, grant)
		}
	case wire.OpLockRelease:
		if next, ok := k.locks.Release(int(m.Src), m.Tag); ok {
			k.sendTo(next, wire.OpLockGrant, m.Tag)
		}
	case wire.OpSemWait:
		if k.sems.Wait(int(m.Src), m.Tag) {
			grant := wire.GetMessage()
			grant.Op, grant.Tag = wire.OpSemGrant, m.Tag
			k.reply(m, grant)
		}
	case wire.OpSemPost:
		if next, ok := k.sems.Post(m.Tag); ok {
			k.sendTo(next, wire.OpSemGrant, m.Tag)
		}

	// Parallel process management (kernel 0 hosts the global table).
	case wire.OpProcRegister:
		if k.dedupCheck(m) {
			return true
		}
		gpid := k.procs.Register(m.Src, string(m.Data), k.svc.Now())
		resp := wire.GetMessage()
		resp.Op, resp.Arg1 = wire.OpProcRegResp, gpid
		k.reply(m, resp)
	case wire.OpProcExit:
		if k.dedupCheck(m) {
			return true
		}
		if err := k.procs.Exit(m.Arg1, m.Arg2, k.svc.Now()); err != nil {
			// Unknown or already-exited gpid: a duplicate that outlived the
			// dedup window. Exit is idempotent, so count it and ack anyway.
			k.extra.StrayDrops++
		}
		resp := wire.GetMessage()
		resp.Op = wire.OpProcExitAck
		k.reply(m, resp)
	case wire.OpProcList:
		resp := wire.GetMessage()
		resp.Op = wire.OpProcListResp
		resp.Data = procmgmt.EncodeSnapshot(k.procs.Snapshot())
		k.reply(m, resp)

	// Application-level messages: the payload escapes to the application
	// via RecvMsg, so the message is never recycled.
	case wire.OpUserMsg:
		k.userMb(m.Tag).Put(m)
		return false

	// Coordinated checkpoint: export this kernel's slice of global memory
	// plus the coherence directory. The requesting PE is this kernel's own
	// application context, quiesced at a barrier, so the slice is a
	// consistent cut — no request of this PE is in flight while we
	// serialise. The shard fence extends that cut across shard workers:
	// requests already queued to a shard are drained before the export.
	case wire.OpCkptMark:
		k.fenceShards()
		resp := wire.GetMessage()
		resp.Op = wire.OpCkptMarkResp
		resp.Data = ckpt.EncodeKernelStateDir(k.cfg.GMBlockWords, k.seg.Export(), k.dirSnapshot())
		resp.Arg1 = int64(k.svc.Now())
		k.reply(m, resp)

	// Elastic membership: home migration, join/leave grants, epoch updates.
	// All serviced on the serial loop (they fence the shards themselves).
	case wire.OpMigrateStart, wire.OpMigrateInstall, wire.OpJoin, wire.OpLeave:
		if k.dedupCheck(m) {
			return true
		}
		switch m.Op {
		case wire.OpMigrateStart:
			k.handleMigrateStart(m)
		case wire.OpMigrateInstall:
			k.handleMigrateInstall(m)
		default:
			k.handleGrant(m)
		}
	case wire.OpMigrateCommit:
		k.handleMigrateCommit(m)
	case wire.OpEpochUpdate:
		k.handleEpochUpdate(m)

	// Scheduler namespaces (dsesched): bind/unbind a requester's region,
	// free a namespace's homed blocks, purge a finished job's residue. All
	// idempotent (bind overwrites, free/purge of nothing is a no-op), so no
	// dedup window is needed; all serial-loop (free fences the shards).
	case wire.OpNsBind:
		k.handleNsBind(m)
	case wire.OpNsFree:
		k.handleNsFree(m)
	case wire.OpJobPurge:
		k.handleJobPurge(m)

	// Liveness.
	case wire.OpPing:
		resp := wire.GetMessage()
		resp.Op = wire.OpPong
		k.reply(m, resp)

	default:
		// Unknown op: malformed or hostile traffic must not take the kernel
		// down. Count and drop.
		k.extra.CorruptDrops++
	}
	return true
}

// sendTo sends a freshly pooled grant-style message to kernel dst.
func (k *Kernel) sendTo(dst int, op wire.Op, tag int32) {
	g := wire.GetMessage()
	g.Op, g.Src, g.Dst, g.Tag = op, int32(k.id), int32(dst), tag
	k.svc.Send(dst, g)
	wire.PutMessage(g)
}

// logMessage appends m to the cluster-wide protocol trace, if enabled.
func (k *Kernel) logMessage(m *wire.Message) {
	cfg := k.cfg
	if cfg.MessageLog == nil {
		return
	}
	cfg.logMu.Lock()
	fmt.Fprintf(cfg.MessageLog, "t=%v k=%d %s\n", k.svc.Now(), k.id, m)
	cfg.logMu.Unlock()
}

// reply answers request m, echoing its Seq. reply takes ownership of resp:
// the transport has fully serialised it by the time Send returns, so it is
// recycled here. (Serial-loop requests only; shards use kernelShard.reply,
// which completes the shard's own dedup window.)
func (k *Kernel) reply(m *wire.Message, resp *wire.Message) {
	resp.Src = int32(k.id)
	resp.Dst = m.Src
	resp.Seq = m.Seq
	if isMutating(m.Op) {
		k.dedup.complete(m.Src, m.Seq, resp.Op, resp.Arg1, resp.Arg2, resp.Data)
	}
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
}

// handleBarrierArrive implements both barrier flavours. Sized arrivals
// (Arg2 != 0: job-group barriers over a PE subset) are always central —
// the tree combines whole-cluster counts and cannot complete a subset — so
// they take the kernel-0 path even under BarrierTree, and their releases
// carry the size so the receiving kernel routes them straight to its
// application instead of down a tree.
func (k *Kernel) handleBarrierArrive(m *wire.Message) {
	if k.cfg.Barrier == BarrierTree && m.Arg2 == 0 {
		if k.tree.Arrive(m.Tag) {
			if parent, ok := k.tree.Parent(); ok {
				k.sendTo(parent, wire.OpBarrierArrive, m.Tag)
			} else {
				k.releaseDown(m.Tag)
			}
		}
		return
	}
	// Central barrier: kernel 0 counts and releases everyone.
	if k.id != 0 {
		panic(fmt.Sprintf("core: kernel %d received central barrier arrive", k.id))
	}
	if waiters := k.barrier.ArriveSized(int(m.Src), m.Tag, int(m.Arg2)); waiters != nil {
		for _, w := range waiters {
			rel := wire.GetMessage()
			rel.Op, rel.Src, rel.Dst = wire.OpBarrierRelease, int32(k.id), int32(w)
			rel.Tag, rel.Arg2 = m.Tag, m.Arg2
			k.svc.Send(w, rel)
			wire.PutMessage(rel)
		}
	}
}

// handleBarrierRelease wakes the local application and, for the tree
// barrier, forwards the release to this kernel's subtree. It reports
// whether the message was consumed (central releases move to the sync
// mailbox instead). Sized releases (job-group barriers) are central by
// construction and never forwarded down a tree.
func (k *Kernel) handleBarrierRelease(m *wire.Message) bool {
	if k.cfg.Barrier == BarrierTree && m.Arg2 == 0 {
		k.releaseDown(m.Tag)
		return true
	}
	k.syncMb.Put(m)
	return false
}

func (k *Kernel) releaseDown(tag int32) {
	for _, c := range k.tree.Children() {
		k.sendTo(c, wire.OpBarrierRelease, tag)
	}
	wake := wire.GetMessage()
	wake.Op, wake.Src, wake.Dst, wake.Tag = wire.OpBarrierRelease, int32(k.id), int32(k.id), tag
	k.syncMb.Put(wake)
}

// Stats returns the node's transport-level counters.
func (k *Kernel) Stats() *trace.PEStats { return k.node.Stats() }

// requestTimeout returns the configured request deadline (0 = wait forever).
func (k *Kernel) requestTimeout() sim.Duration { return k.cfg.RequestTimeout }
