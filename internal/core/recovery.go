package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

// restoreState is the decoded snapshot a recovering cluster starts from,
// plumbed through the private Config.restore field (the recorder pattern).
type restoreState struct {
	gen      uint64                    // committed store generation restored
	epoch    uint64                    // checkpoint epoch of the snapshot
	viewGen  uint64                    // view generation the restarted cluster runs as
	app      [][]byte                  // per-PE application blobs
	blocks   [][]gmem.BlockSnapshot    // per-kernel GM slices + coherence directory
	dirs     []*ckpt.DirectorySnapshot // per-kernel membership directory (nil entries = static)
	rollback []uint64                  // per-PE ops discarded by the rollback
}

// feedBaseline seeds the history checker with every non-zero restored word:
// those values have no writer event in the new run's history, and without a
// baseline the checker would flag reads of them as out-of-thin-air.
func (rs *restoreState) feedBaseline(rec *check.Recorder, blockWords int) {
	for _, blocks := range rs.blocks {
		for _, b := range blocks {
			base := b.Index * uint64(blockWords)
			for i, w := range b.Words {
				if w != 0 {
					rec.SetBaseline(base+uint64(i), w)
				}
			}
		}
	}
}

// RecoveryEvent describes one completed recovery.
type RecoveryEvent struct {
	DeadPEs     []int        // the PEs the kernel quorum declared dead
	Coordinator int          // lowest live rank, which led the recovery
	Gen         uint64       // snapshot generation restored
	Epoch       uint64       // checkpoint epoch rolled back to
	DetectedAt  sim.Duration // failed run's elapsed time at abort
	RollbackOps uint64       // recorded ops past the snapshot, discarded
}

// RecoveryReport summarises a RunWithRecovery invocation.
type RecoveryReport struct {
	Attempts   int // cluster runs launched (1 = no failure)
	Recoveries []RecoveryEvent
}

// Recovered reports whether any recovery took place.
func (r *RecoveryReport) Recovered() bool { return len(r.Recoveries) > 0 }

// RunWithRecovery executes program like Run but survives PE deaths: when a
// run aborts with a quorum-confirmed dead peer and cfg.Ckpt is configured,
// the recovery coordinator (the lowest live rank) rolls the cluster back to
// the last complete snapshot generation and reruns the program from it. The
// restarted cluster redistributes the dead PE's GM slice and home directory
// from the snapshot (every kernel re-imports its slice), respawns all DSE
// processes — same-process goroutines under simnet/inproc — and hands each
// PE its checkpointed application blob through RegisterCheckpoint.
//
// At most maxRecoveries restarts are attempted; the final Result (and the
// report of every recovery) is returned. A run that fails without a usable
// snapshot, or whose snapshot fails its integrity checks (CRC / content
// hash), returns the last Result plus an error describing why recovery was
// abandoned.
//
// Scheduled kills (cfg.Kills) that already fired in a failed run are pruned
// before the rerun, so a deterministic fault schedule kills each victim
// once rather than on every attempt.
func RunWithRecovery(cfg Config, maxRecoveries int, program Program) (*Result, *RecoveryReport, error) {
	rep := &RecoveryReport{}
	for {
		rep.Attempts++
		res, err := Run(cfg, program)
		if err != nil {
			return res, rep, err
		}
		if len(res.DeadPeers) == 0 || res.FirstErr() == nil {
			return res, rep, nil
		}
		if cfg.Ckpt == nil {
			return res, rep, fmt.Errorf("core: recovery: PE(s) %v died but checkpointing is disabled", res.DeadPeers)
		}
		if len(rep.Recoveries) >= maxRecoveries {
			return res, rep, fmt.Errorf("core: recovery: PE(s) %v died after the recovery budget (%d) was spent", res.DeadPeers, maxRecoveries)
		}

		blockWords := cfg.GMBlockWords
		if blockWords == 0 {
			blockWords = 32 // withDefaults' value; cfg here is pre-default
		}
		rs, markTimes, rerr := loadSnapshot(cfg.Ckpt.Store, cfg.NumPE, blockWords)
		if rerr != nil {
			return res, rep, fmt.Errorf("core: recovery after PE(s) %v died: %w", res.DeadPeers, rerr)
		}
		rs.viewGen = uint64(len(rep.Recoveries)) + 1

		// Rollback accounting: every recorded op the failed run performed
		// after its PE's mark is undone by restarting from the snapshot.
		if res.History != nil {
			for i := range res.History.Events {
				ev := &res.History.Events[i]
				if int(ev.PE) < len(markTimes) && ev.Inv > markTimes[ev.PE] {
					rs.rollback[ev.PE]++
				}
			}
		}

		ev := RecoveryEvent{
			DeadPEs:     append([]int(nil), res.DeadPeers...),
			Coordinator: electCoordinator(cfg.NumPE, res.DeadPeers),
			Gen:         rs.gen,
			Epoch:       rs.epoch,
			DetectedAt:  res.Elapsed,
		}
		for _, n := range rs.rollback {
			ev.RollbackOps += n
		}
		rep.Recoveries = append(rep.Recoveries, ev)

		// Fault schedules are absolute virtual times; a kill that fired in
		// the failed run must not re-fire in the restarted one.
		var pending []simnet.Kill
		for _, kl := range cfg.Kills {
			if kl.At > sim.Time(res.Elapsed) {
				pending = append(pending, kl)
			}
		}
		cfg.Kills = pending
		cfg.restore = rs
	}
}

// electCoordinator returns the lowest rank not in dead — the recovery
// coordinator. (With the restart-based recovery model the coordinator's
// special duty is carried by rank 0 of the restarted cluster; the election
// here identifies which surviving PE drove the decision, for the report.)
func electCoordinator(numPE int, dead []int) int {
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		isDead[d] = true
	}
	for r := 0; r < numPE; r++ {
		if !isDead[r] {
			return r
		}
	}
	return 0
}

// loadSnapshot reads and fully validates the newest committed generation:
// every slice's CRC and content hash (ckpt.Store), its encoding, and its
// geometry against the cluster being rebuilt. markTimes returns each PE's
// mark instant for rollback accounting.
func loadSnapshot(st ckpt.Store, numPE, blockWords int) (*restoreState, []sim.Time, error) {
	gen, n, ok, err := st.Latest()
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("no committed checkpoint generation in the store")
	}
	if n != numPE {
		return nil, nil, fmt.Errorf("snapshot generation %d was taken with %d PEs, cluster has %d", gen, n, numPE)
	}
	rs := &restoreState{
		gen:      gen,
		app:      make([][]byte, numPE),
		blocks:   make([][]gmem.BlockSnapshot, numPE),
		dirs:     make([]*ckpt.DirectorySnapshot, numPE),
		rollback: make([]uint64, numPE),
	}
	markTimes := make([]sim.Time, numPE)
	for pe := 0; pe < numPE; pe++ {
		data, err := st.ReadSlice(gen, pe)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot generation %d, PE %d: %w", gen, pe, err)
		}
		s, err := ckpt.DecodeSlice(data)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot generation %d, PE %d: %w", gen, pe, err)
		}
		bw, blocks, dir, err := ckpt.DecodeKernelStateDir(s.Kernel)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot generation %d, PE %d: %w", gen, pe, err)
		}
		rs.dirs[pe] = dir
		if bw != blockWords {
			return nil, nil, fmt.Errorf("snapshot generation %d, PE %d: block size %d, cluster uses %d", gen, pe, bw, blockWords)
		}
		rs.epoch = s.Epoch
		markTimes[pe] = s.MarkTime
		rs.app[pe] = s.App
		rs.blocks[pe] = blocks
	}
	return rs, markTimes, nil
}
