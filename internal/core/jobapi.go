package core

// PE-side scheduler API (dsesched, DESIGN.md §15): binding a PE to its
// job's namespace, the local guard that refuses out-of-namespace accesses
// before they leave the PE (covering the one-sided window and ring fast
// paths), the control-plane requests the scheduler uses to install kernel-
// side bindings and tear a finished job down, and the sized group barrier
// scheduled jobs synchronise on.

import (
	"fmt"

	"repro/internal/gmem"
	"repro/internal/sim"
	"repro/internal/wire"
)

// BindNamespace confines this PE's global-memory operations to the word
// region [base, limit). The scheduler calls it (on the worker, in app
// context) before handing the PE to a job; limit 0 would mean unbound, so
// it is rejected — use ClearNamespace.
func (pe *PE) BindNamespace(base, limit uint64) {
	if limit == 0 {
		panic("core: BindNamespace with zero limit (use ClearNamespace)")
	}
	pe.ns = gmem.Region{Base: base, Limit: limit}
}

// ClearNamespace lifts the confinement installed by BindNamespace.
func (pe *PE) ClearNamespace() { pe.ns = gmem.Region{} }

// nsCheck is the PE-side namespace guard: when this PE is bound, an access
// of n words at addr outside the bound region is refused with the typed
// *NamespaceError before any request (or one-sided window read / ring
// submission) is issued, and counted as a denial.
func (pe *PE) nsCheck(op string, addr uint64, n int) error {
	if pe.ns.Limit == 0 || pe.ns.Contains(addr, n) {
		return nil
	}
	pe.extra.NsDenials++
	return &NamespaceError{
		PE: pe.k.id, Op: op, Addr: addr,
		Base: pe.ns.Base, Limit: pe.ns.Limit,
	}
}

// NamespaceBind installs (limit != 0) or clears (limit == 0) PE member's
// kernel-side namespace binding [base, limit) at every kernel, so the homes
// themselves reject member's traffic outside the region — the enforcement a
// forged or corrupted requester cannot bypass.
func (pe *PE) NamespaceBind(member int, base, limit uint64) error {
	for dst := 0; dst < pe.k.n; dst++ {
		req := wire.GetMessage()
		req.Op, req.Addr = wire.OpNsBind, base
		req.Arg1, req.Arg2 = int64(member), int64(limit)
		resp, err := pe.requestErr(dst, req)
		wire.PutMessage(req)
		if err != nil {
			return err
		}
		wire.PutMessage(resp)
	}
	return nil
}

// NamespaceFree drops every materialised block of the word region starting
// at base and spanning nBlocks blocks, at every kernel, returning the total
// number of blocks released — namespace teardown, before the scheduler
// re-carves the region for the next job.
func (pe *PE) NamespaceFree(base uint64, nBlocks int) (int, error) {
	total := 0
	for dst := 0; dst < pe.k.n; dst++ {
		req := wire.GetMessage()
		req.Op, req.Addr, req.Arg1 = wire.OpNsFree, base, int64(nBlocks)
		resp, err := pe.requestErr(dst, req)
		wire.PutMessage(req)
		if err != nil {
			return total, err
		}
		total += int(resp.Arg1)
		wire.PutMessage(resp)
	}
	return total, nil
}

// JobPurge releases a finished job's message and synchronisation residue
// cluster-wide: every user-message mailbox with tag in [tagLo, tagLo+n) is
// closed at every kernel, and kernel 0 drops the same id range from the
// central barrier, lock and semaphore managers.
func (pe *PE) JobPurge(tagLo, n int32) error {
	for dst := 0; dst < pe.k.n; dst++ {
		req := wire.GetMessage()
		req.Op, req.Tag, req.Arg1 = wire.OpJobPurge, tagLo, int64(n)
		resp, err := pe.requestErr(dst, req)
		wire.PutMessage(req)
		if err != nil {
			return err
		}
		wire.PutMessage(resp)
	}
	return nil
}

// EndJob drops this PE's local residue of a finished (or aborted) job over
// the word region [base, limit): recorded consistency modes, buffered
// release-mode writes that would otherwise flush into a freed region, and
// cached leases. The worker calls it after the job's program returns,
// before the scheduler unbinds and frees the namespace.
func (pe *PE) EndJob(base, limit uint64) {
	pe.modes.Clear(base, limit)
	if pe.wc.Len() > 0 {
		pe.fl = pe.fl[:0]
		pe.flv = pe.flv[:0]
		pe.wc.Drain(func(a uint64, v int64) {
			if a < base || a >= limit {
				pe.fl = append(pe.fl, a)
				pe.flv = append(pe.flv, v)
			}
		})
		for i, a := range pe.fl {
			pe.wc.Put(a, pe.flv[i])
		}
	}
	pe.clearLeases()
}

// RecvMsgTimeout is RecvMsg with a bounded wait: ok is false when d expires
// or the cluster shuts down before a message with tag arrives. The
// scheduler's control loops poll with it, so an idle worker can interleave
// waiting for work with checking for shutdown.
func (pe *PE) RecvMsgTimeout(tag int32, d sim.Duration) (src int, payload []byte, ok bool) {
	pe.legacyCrossing()
	mb := pe.k.userMb(tag)
	start := pe.app.Now()
	m, took, _ := mb.TakeTimeout(d)
	pe.extra.WaitTime += pe.app.Now() - start
	if !took {
		return 0, nil, false
	}
	return int(m.Src), m.Data, true
}

// barrierSized arrives at barrier id on behalf of a size-member group
// (dsesched gang synchronisation). Sized arrivals always run through kernel
// 0's central manager — a subset of PEs cannot complete the combining tree —
// and their releases carry the size, which is what routes them to the
// arriving PE's sync mailbox even when the cluster runs tree barriers. The
// release/acquire edges match BarrierID's.
func (pe *PE) barrierSized(id int32, size int) {
	pe.legacyCrossing()
	k := pe.k
	pe.extra.Barriers++
	start := pe.app.Now()
	pe.flushWC(start)
	arrive := wire.GetMessage()
	arrive.Op, arrive.Src, arrive.Dst, arrive.Tag = wire.OpBarrierArrive, int32(k.id), 0, id
	arrive.Arg2 = int64(size)
	pe.app.Send(0, arrive)
	wire.PutMessage(arrive)
	m := pe.takeSync()
	if m.Op != wire.OpBarrierRelease || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected barrier %d release, got %v", k.id, id, m))
	}
	wire.PutMessage(m)
	end := pe.app.Now()
	pe.extra.WaitTime += end - start
	pe.extra.BarrierWait.Observe(end - start)
	pe.clearLeases()
}
