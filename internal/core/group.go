package core

// JobPE: the per-job view of a PE a scheduled program runs against
// (dsesched, DESIGN.md §15). It renumbers the job's gang to ranks
// [0, len(Members)), carves allocation out of the job's namespace through a
// bounded allocator, offsets every tag and synchronisation id into the
// job's private window, runs group-sized barriers through the central
// manager, and aborts the program with a typed panic when the scheduler
// cancels the job or its deadline passes.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/gmem"
	"repro/internal/sim"
)

// Job tag-window layout. Each resident job owns the window
// [TagBase, TagBase+JobTagSpan) of the int32 tag/sync-id space: user tags
// and sync ids are offsets into it, the top reservedJobTags ids belong to
// the group collectives. Windows start above every whole-cluster tag in use
// (applications and the mp library stay below 1<<25) and stay below the
// SSI registry's reserved ids near 1<<30.
const (
	// JobTagSpan is the width of one job's tag window.
	JobTagSpan int32 = 1 << 25
	// JobSlots is how many disjoint windows fit under the reserved SSI ids —
	// the hard ceiling on concurrently resident jobs.
	JobSlots = 30

	reservedJobTags int32 = 2 // group reduce up/down
)

// JobSlotBase returns the tag window base of resident-job slot s in
// [0, JobSlots).
func JobSlotBase(s int) int32 {
	if s < 0 || s >= JobSlots {
		panic(fmt.Sprintf("core: job slot %d out of range [0,%d)", s, JobSlots))
	}
	return int32(s+1) * JobTagSpan
}

// JobGroup describes one scheduled job's slice of the cluster.
type JobGroup struct {
	Name     string       // job name (diagnostics)
	Members  []int        // Members[rank] = global kernel id; Members[0] is job rank 0
	TagBase  int32        // base of the job's private tag/sync-id window
	Region   gmem.Region  // the job's GM namespace
	Mode     gmem.Mode    // consistency tier of the job's allocations
	Deadline sim.Time     // abort boundary (0 = none)
	Cancel   *atomic.Bool // scheduler-side cancellation flag (nil = never)
}

// JobAbortError aborts a scheduled job's program: the scheduler cancelled
// it, or its deadline passed. JobPE raises it by panic at the next blocking
// or global-memory call; the worker loop recovers it and reports the job
// cancelled/expired instead of crashing the PE.
type JobAbortError struct {
	Job      string
	Rank     int
	Deadline bool // true: the deadline expired; false: cancelled
}

func (e *JobAbortError) Error() string {
	why := "cancelled"
	if e.Deadline {
		why = "deadline expired"
	}
	return fmt.Sprintf("core: job %q rank %d aborted: %s", e.Job, e.Rank, why)
}

// JobPE is the Proc a scheduled job's program runs against. One JobPE wraps
// one worker PE for the duration of one job and is used, like the PE, by
// exactly one goroutine.
type JobPE struct {
	pe     *PE
	g      JobGroup
	rank   int
	alloc  *gmem.Allocator
	rankOf map[int]int // global kernel id -> job rank
}

// NewJobPE wraps pe as the given group's member. pe must appear in
// g.Members, its namespace must already be bound (BindNamespace), and
// g.Region must be block-aligned (RegionAllocator carves are).
func NewJobPE(pe *PE, g JobGroup) *JobPE {
	jp := &JobPE{pe: pe, g: g, rank: -1, rankOf: make(map[int]int, len(g.Members))}
	for r, id := range g.Members {
		if id == pe.ID() {
			jp.rank = r
		}
		jp.rankOf[id] = r
	}
	if jp.rank < 0 {
		panic(fmt.Sprintf("core: PE %d is not a member of job %q", pe.ID(), g.Name))
	}
	jp.alloc = gmem.NewBoundedAllocator(pe.k.space, g.Region)
	return jp
}

// Rank returns this member's job rank (same as ID; exported separately so
// non-Proc callers don't confuse it with the global kernel id).
func (jp *JobPE) Rank() int { return jp.rank }

// QuotaUsed reports how many words of the job's namespace this member's
// allocator has handed out — the job's GM-quota gauge (every member runs
// the same deterministic allocation sequence, so any member's number is
// the job's).
func (jp *JobPE) QuotaUsed() uint64 { return jp.alloc.Used() - jp.g.Region.Base }

// PE returns the underlying worker PE.
func (jp *JobPE) PE() *PE { return jp.pe }

// gate aborts the program with a typed panic when the job was cancelled or
// ran past its deadline. Called on every blocking and global-memory entry
// point, so a cancelled job stops within one operation.
func (jp *JobPE) gate() {
	if jp.g.Cancel != nil && jp.g.Cancel.Load() {
		panic(&JobAbortError{Job: jp.g.Name, Rank: jp.rank})
	}
	if jp.g.Deadline != 0 && jp.pe.Now() > jp.g.Deadline {
		panic(&JobAbortError{Job: jp.g.Name, Rank: jp.rank, Deadline: true})
	}
}

// syncID maps a job-local synchronisation id (barrier, lock or semaphore)
// into the job's private window.
func (jp *JobPE) syncID(id int32) int32 {
	if id < 0 || id >= JobTagSpan-reservedJobTags {
		panic(fmt.Sprintf("core: job %q: sync id %d outside [0,%d)", jp.g.Name, id, JobTagSpan-reservedJobTags))
	}
	return jp.g.TagBase + id
}

func (jp *JobPE) tagReduceUp() int32   { return jp.g.TagBase + JobTagSpan - 1 }
func (jp *JobPE) tagReduceDown() int32 { return jp.g.TagBase + JobTagSpan - 2 }

// --- Identity / environment ---

// ID returns this member's job rank in [0, N()).
func (jp *JobPE) ID() int { return jp.rank }

// N returns the job's gang size.
func (jp *JobPE) N() int { return len(jp.g.Members) }

// Hostname reports the underlying node's hostname.
func (jp *JobPE) Hostname() string { return jp.pe.Hostname() }

// GPID reports the underlying DSE process's cluster-global process id.
func (jp *JobPE) GPID() int64 { return jp.pe.GPID() }

// Now reports the PE's current time.
func (jp *JobPE) Now() sim.Time { return jp.pe.Now() }

// Compute models local computation.
func (jp *JobPE) Compute(ops float64) { jp.pe.Compute(ops) }

// Space exposes the global address-space geometry.
func (jp *JobPE) Space() gmem.Space { return jp.pe.Space() }

// --- Allocation (quota-bounded, job consistency mode) ---

// Alloc reserves n words inside the job's namespace; exceeding the quota
// panics with *gmem.QuotaError. Allocations take the job's consistency mode.
func (jp *JobPE) Alloc(n int) uint64 {
	jp.gate()
	return jp.tagMode(jp.alloc.Alloc(n), n, jp.g.Mode)
}

// AllocBlocks is Alloc aligned to a block boundary.
func (jp *JobPE) AllocBlocks(n int) uint64 {
	jp.gate()
	return jp.tagMode(jp.alloc.AllocBlocks(n), n, jp.g.Mode)
}

// AllocMode is Alloc with an explicit consistency mode for this allocation.
func (jp *JobPE) AllocMode(n int, m gmem.Mode) uint64 {
	jp.gate()
	return jp.tagMode(jp.alloc.Alloc(n), n, m)
}

// AllocBlocksMode is AllocBlocks with an explicit consistency mode.
func (jp *JobPE) AllocBlocksMode(n int, m gmem.Mode) uint64 {
	jp.gate()
	return jp.tagMode(jp.alloc.AllocBlocks(n), n, m)
}

func (jp *JobPE) tagMode(addr uint64, n int, m gmem.Mode) uint64 {
	jp.pe.modes.Set(addr, n, m)
	return addr
}

// --- Global memory (namespace-guarded by the underlying PE) ---

// GMRead reads the word at addr.
func (jp *JobPE) GMRead(addr uint64) int64 { jp.gate(); return jp.pe.GMRead(addr) }

// GMWrite stores v at addr.
func (jp *JobPE) GMWrite(addr uint64, v int64) { jp.gate(); jp.pe.GMWrite(addr, v) }

// GMReadF reads the float64 at addr.
func (jp *JobPE) GMReadF(addr uint64) float64 { jp.gate(); return jp.pe.GMReadF(addr) }

// GMWriteF stores float64 v at addr.
func (jp *JobPE) GMWriteF(addr uint64, v float64) { jp.gate(); jp.pe.GMWriteF(addr, v) }

// GMReadBlock reads n words starting at addr.
func (jp *JobPE) GMReadBlock(addr uint64, n int) []int64 {
	jp.gate()
	return jp.pe.GMReadBlock(addr, n)
}

// GMWriteBlock stores words starting at addr.
func (jp *JobPE) GMWriteBlock(addr uint64, words []int64) {
	jp.gate()
	jp.pe.GMWriteBlock(addr, words)
}

// GMReadBlockF reads n float64s starting at addr.
func (jp *JobPE) GMReadBlockF(addr uint64, n int) []float64 {
	jp.gate()
	return jp.pe.GMReadBlockF(addr, n)
}

// GMWriteBlockF stores float64s starting at addr.
func (jp *JobPE) GMWriteBlockF(addr uint64, vs []float64) {
	jp.gate()
	jp.pe.GMWriteBlockF(addr, vs)
}

// GMGather reads one word per address.
func (jp *JobPE) GMGather(addrs []uint64) []int64 { jp.gate(); return jp.pe.GMGather(addrs) }

// GMScatter stores one word per address.
func (jp *JobPE) GMScatter(addrs []uint64, vals []int64) { jp.gate(); jp.pe.GMScatter(addrs, vals) }

// FetchAdd atomically adds delta at addr, returning the previous value.
func (jp *JobPE) FetchAdd(addr uint64, delta int64) int64 {
	jp.gate()
	return jp.pe.FetchAdd(addr, delta)
}

// CAS atomically compares-and-swaps the word at addr.
func (jp *JobPE) CAS(addr uint64, old, new int64) (int64, bool) {
	jp.gate()
	return jp.pe.CAS(addr, old, new)
}

// --- Synchronisation (group-scoped) ---

// Barrier blocks until every member of the job's gang has reached it.
func (jp *JobPE) Barrier() { jp.BarrierID(0) }

// BarrierID blocks on the job-local barrier id; distinct ids are
// independent barriers, private to this job.
func (jp *JobPE) BarrierID(id int32) {
	jp.gate()
	jp.pe.barrierSized(jp.syncID(id), len(jp.g.Members))
}

// Lock acquires the job-local lock id (FIFO, central manager).
func (jp *JobPE) Lock(id int32) { jp.gate(); jp.pe.Lock(jp.syncID(id)) }

// Unlock releases the job-local lock id.
func (jp *JobPE) Unlock(id int32) { jp.pe.Unlock(jp.syncID(id)) }

// SemWait downs the job-local semaphore id.
func (jp *JobPE) SemWait(id int32) { jp.gate(); jp.pe.SemWait(jp.syncID(id)) }

// SemPost ups the job-local semaphore id.
func (jp *JobPE) SemPost(id int32) { jp.pe.SemPost(jp.syncID(id)) }

// AllReduceF reduces one float64 contribution per gang member with op and
// returns the result on every member. Job rank 0 is the root.
func (jp *JobPE) AllReduceF(x float64, op func(a, b float64) float64) float64 {
	jp.gate()
	jp.pe.syncFence()
	n := len(jp.g.Members)
	if n == 1 {
		return x
	}
	up, down := jp.tagReduceUp(), jp.tagReduceDown()
	if jp.rank != 0 {
		jp.pe.SendMsg(jp.g.Members[0], up, f64Bytes(x))
		_, data := jp.pe.RecvMsg(down)
		return f64FromBytes(data)
	}
	acc := x
	for i := 1; i < n; i++ {
		_, data := jp.pe.RecvMsg(up)
		acc = op(acc, f64FromBytes(data))
	}
	out := f64Bytes(acc)
	for i := 1; i < n; i++ {
		jp.pe.SendMsg(jp.g.Members[i], down, out)
	}
	return acc
}

// AllReduceSum sums one float64 contribution per gang member.
func (jp *JobPE) AllReduceSum(x float64) float64 {
	return jp.AllReduceF(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum over one float64 contribution per member.
func (jp *JobPE) AllReduceMax(x float64) float64 {
	return jp.AllReduceF(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// --- Messages (rank-addressed, job-private tags) ---

// SendMsg delivers payload to gang member dst (a job rank) under tag.
func (jp *JobPE) SendMsg(dst int, tag int32, payload []byte) {
	jp.gate()
	if dst < 0 || dst >= len(jp.g.Members) {
		panic(fmt.Sprintf("core: job %q: SendMsg to rank %d of %d", jp.g.Name, dst, len(jp.g.Members)))
	}
	if tag < 0 || tag >= JobTagSpan-reservedJobTags {
		panic(fmt.Sprintf("core: job %q: tag %d outside [0,%d)", jp.g.Name, tag, JobTagSpan-reservedJobTags))
	}
	jp.pe.SendMsg(jp.g.Members[dst], jp.g.TagBase+tag, payload)
}

// RecvMsg blocks until a message with tag arrives, returning the sender's
// job rank and the payload.
func (jp *JobPE) RecvMsg(tag int32) (src int, payload []byte) {
	jp.gate()
	if tag < 0 || tag >= JobTagSpan-reservedJobTags {
		panic(fmt.Sprintf("core: job %q: tag %d outside [0,%d)", jp.g.Name, tag, JobTagSpan-reservedJobTags))
	}
	gsrc, payload := jp.pe.RecvMsg(jp.g.TagBase + tag)
	rank, ok := jp.rankOf[gsrc]
	if !ok {
		rank = -1 // not a gang member: tags are job-private, so only misuse lands here
	}
	return rank, payload
}
