package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PE is the application's view of one processor element: the Parallel API
// Library of the paper. A PE value is used by exactly one goroutine (or sim
// process) — the DSE process — and mediates every interaction with the
// cluster: global memory, synchronisation, messages and process management.
type PE struct {
	k     *Kernel
	app   transport.Port
	alloc *gmem.Allocator
	gpid  int64
	extra trace.PEStats     // app-context counters merged into the result
	spans *trace.SpanRing   // request span ring (nil unless Config.Tracing)
	live  *trace.Histogram  // Config.LiveRTT: shared live round-trip histogram
	hist  *check.PERecorder // operation history (nil unless Config.RecordHistory)

	// Checkpoint/restart state (Config.Ckpt).
	saveFn      func() []byte // RegisterCheckpoint's save hook
	restoredApp []byte        // app blob from the snapshot this run restored
	restored    bool          // this run started from a snapshot
	ckptEpoch   uint64        // last completed checkpoint epoch
	viewGen     uint64        // view generation: recoveries this cluster survived

	// replyMb is the persistent reply mailbox: every response to this PE's
	// requests lands here (the PE is single-threaded, so scalar requests
	// never overlap; pipelined block transfers match replies by Seq).
	replyMb transport.Mailbox

	// Consistency-tier state (DESIGN.md §14). modes maps allocations to
	// their tier; wc buffers release-mode writes between sync edges; leases
	// caches lease-mode blocks until their grants expire.
	modes  *gmem.ModeTable
	wc     *gmem.WCBuf
	leases map[uint64]*leaseEntry // keyed by block base address

	// ns, when Limit != 0, confines every global-memory operation to the job
	// namespace the scheduler bound this PE to (dsesched, DESIGN.md §15).
	// Checked before a request leaves the PE, which is what covers the
	// one-sided window and ring fast paths with the same guard as the
	// message path; the home kernel independently re-checks arriving
	// messages against its own registry (kernelShard.nsDeny).
	ns gmem.Region

	// Scratch reused across calls by the hot-path operations.
	words []int64   // decoded response payloads
	vruns []vrun    // home-runs of the block/gather being assembled
	hruns []vrun    // the same runs, grouped by home
	reqs  []homeReq // one in-flight request per remote home
	fl    []uint64  // drained WC addresses (ascending) of the current flush
	flv   []int64   // drained WC values, parallel to fl
}

// leaseEntry is one cached block under a read lease: words is the block
// snapshot fetched from the home, grant the fetch request's start instant
// (the staleness bound the checker holds lease-served reads to) and until
// the expiry instant after which the snapshot must not be served.
type leaseEntry struct {
	words []int64
	grant sim.Time
	until sim.Time
}

// vrun is one single-home run of a block or gather operation. A run never
// crosses a block boundary (HomeRuns caps runs at the block end), so it also
// has a single home-side shard.
type vrun struct {
	home  int
	shard int // home-side kernel shard owning this run's block
	start uint64
	count int
	off   int // word offset within the caller's buffer
}

// homeReq is one coalesced per-home request of a pipelined transfer. When
// the home kernels run shard workers, transfers coalesce per (home, shard)
// instead of per home, so a gather spanning k shards becomes k sub-requests
// serviced in parallel; shard is stamped into the request header for the
// home's dispatcher.
type homeReq struct {
	seq    uint64
	shard  int
	lo, hi int // pe.hruns[lo:hi] travelled in this request
	done   bool
}

func newPE(k *Kernel) *PE {
	pe := &PE{
		k:       k,
		app:     k.node.App(),
		alloc:   gmem.NewAllocator(k.space),
		replyMb: k.node.NewMailbox(0),
		spans:   k.cfg.Tracing.NewRing(),
		live:    k.cfg.LiveRTT,
		hist:    k.cfg.recorder.PE(k.id),
		modes:   gmem.NewModeTable(k.cfg.GMDefaultMode),
		wc:      gmem.NewWCBuf(),
		leases:  make(map[uint64]*leaseEntry),
	}
	if rs := k.cfg.restore; rs != nil {
		pe.ckptEpoch = rs.epoch
		pe.viewGen = rs.viewGen
		pe.restoredApp = rs.app[k.id]
		pe.restored = true
		pe.extra.Restores++
		pe.extra.RollbackOps += rs.rollback[k.id]
	}
	return pe
}

// ID returns this PE's kernel id in [0, N).
func (pe *PE) ID() int { return pe.k.id }

// N returns the number of PEs in the cluster.
func (pe *PE) N() int { return pe.k.n }

// Hostname names the physical machine hosting this PE. Under a virtual
// cluster several PEs share one.
func (pe *PE) Hostname() string { return pe.k.node.Hostname() }

// GPID returns the cluster-global process id assigned at registration.
func (pe *PE) GPID() int64 { return pe.gpid }

// Now returns the PE's clock (virtual time under simulation).
func (pe *PE) Now() sim.Time { return pe.app.Now() }

// Compute charges the cost of ops application operations (roughly flops)
// against this PE.
func (pe *PE) Compute(ops float64) { pe.app.Compute(ops) }

// Alloc reserves n global-memory words. Allocation is deterministic: every
// PE of the SPMD program performs the same Alloc sequence and obtains the
// same addresses without communicating.
func (pe *PE) Alloc(n int) uint64 { return pe.alloc.Alloc(n) }

// AllocBlocks reserves n words starting on a block boundary.
func (pe *PE) AllocBlocks(n int) uint64 { return pe.alloc.AllocBlocks(n) }

// AllocMode reserves n words under the given consistency mode (DESIGN.md
// §14). Deterministic like Alloc: every PE performs the same AllocMode
// sequence, so the per-PE mode tables agree without communicating.
func (pe *PE) AllocMode(n int, m gmem.Mode) uint64 {
	addr := pe.alloc.Alloc(n)
	pe.modes.Set(addr, n, m)
	return addr
}

// AllocBlocksMode is AllocBlocks under the given consistency mode.
func (pe *PE) AllocBlocksMode(n int, m gmem.Mode) uint64 {
	addr := pe.alloc.AllocBlocks(n)
	pe.modes.Set(addr, n, m)
	return addr
}

// Space exposes the global address-space geometry.
func (pe *PE) Space() gmem.Space { return pe.k.space }

// legacyCrossing charges the old two-process organisation's IPC round trip
// at the top of a Parallel-API call (no-op in the reorganised design).
func (pe *PE) legacyCrossing() {
	if pe.k.cfg.Legacy {
		pe.app.LegacyIPC()
	}
}

// request sends m to kernel dst and blocks until the response arrives in
// the persistent reply mailbox. Request time beyond the send-side overhead
// is accounted as wait time. The caller owns both m and the returned
// response; recycle them with wire.PutMessage when done. Failures panic;
// requestErr is the error-returning tier underneath.
func (pe *PE) request(dst int, m *wire.Message) *wire.Message {
	resp, err := pe.requestErr(dst, m)
	if err != nil {
		panic(err.Error())
	}
	return resp
}

// requestErr is request with failures surfaced as errors: *TimeoutError
// after the configured retries are exhausted, *PeerDownError when the
// transport declared dst dead, *ShutdownError when the cluster went down.
//
// Retries resend the request with the same Seq and the retry flag set; the
// home kernel's dedup window guarantees a retried mutating operation is
// applied exactly once. The pending registration survives across attempts so
// a late first reply still routes to us (and is then matched by Seq).
func (pe *PE) requestErr(dst int, m *wire.Message) (*wire.Message, error) {
	return pe.requestSeqErr(dst, m, 0)
}

// requestSeqErr is requestErr with an optional caller-provided sequence
// number (0 allocates a fresh one). The ambiguous one-sided write fallback
// passes the ring sequence it already published, so the home's dedup window
// recognises the operation whichever path applied it first.
//
// A wire.OpMigrateNack response means the addressed kernel no longer homes
// (one of) the request's blocks: the requester learns the hinted new home,
// re-registers the SAME sequence number and retries there — exactly-once
// carries across the redirect because the old home never applied the
// operation (NACKs are issued before any mutation) and the new home's window
// absorbs duplicates like any other.
func (pe *PE) requestSeqErr(dst int, m *wire.Message, seq uint64) (*wire.Message, error) {
	k := pe.k
	m.Src = int32(k.id)
	m.Dst = int32(dst)
	var dead bool
	if seq == 0 {
		seq, dead = k.addPending(pe.replyMb, dst)
	} else {
		dead = k.addPendingSeq(pe.replyMb, dst, seq)
		m.Flags |= wire.FlagRetry
	}
	if dead {
		return nil, &PeerDownError{PE: k.id, Peer: dst, Op: m.Op.String()}
	}
	m.Seq = seq
	start := pe.app.Now()
	var sent sim.Time
	backoff := k.cfg.RetryBackoff
	bounces := 0
	for attempts := 1; ; attempts++ {
		pe.app.Send(dst, m)
		if pe.spans != nil && sent == 0 {
			sent = pe.app.Now()
		}
		resp, err := pe.takeReply(seq, m.Op, dst, attempts)
		if err == nil && resp.Op == wire.OpMigrateNack {
			hint := int(resp.Arg1)
			wire.PutMessage(resp)
			if bounces++; bounces > maxMigrateBounces || hint < 0 || hint >= k.n {
				pe.extra.WaitTime += pe.app.Now() - start
				return nil, fmt.Errorf("core: PE %d: %v to kernel %d bounced %d times chasing a migrating home", k.id, m.Op, dst, bounces)
			}
			pe.extra.MigrateNacks++
			if bounces > 2 {
				// A redirect can outrun the handoff itself: the hinted new
				// home NACKs back toward the probe rule until its install
				// lands. Give the migration a beat instead of burning the
				// bounce budget on a tight ping-pong.
				boff := backoff
				if boff == 0 {
					boff = 1 << 16
				}
				pe.app.Sleep(boff)
			}
			switch m.Op {
			case wire.OpRead, wire.OpWrite, wire.OpFetchAdd, wire.OpCAS, wire.OpReadLease:
				// Cache the new home so later requests skip the bounce. Gated
				// to the ops whose Addr is a data address.
				// Never cache a hint naming our OWN kernel: the requester's
				// hint cache is the kernel's shared directory, which is
				// authoritative about what this kernel homes. A stale peer's
				// probe-rule hint would overwrite the override the kernel
				// installed when it handed the block away, resurrecting
				// phantom self-ownership — the kernel would lazily recreate
				// the extracted block and swallow writes into it.
				if hint != k.id {
					k.dir.SetOverride(k.space.BlockOf(m.Addr), hint)
				}
			}
			if k.addPendingSeq(pe.replyMb, hint, seq) {
				pe.extra.WaitTime += pe.app.Now() - start
				return nil, &PeerDownError{PE: k.id, Peer: hint, Op: m.Op.String()}
			}
			dst = hint
			m.Dst = int32(dst)
			m.Flags |= wire.FlagRetry
			continue
		}
		if err == nil && resp.Op == wire.OpNsNack {
			// The home rejected the request whole: it strayed outside the
			// requester's bound namespace (the kernel counted the violation).
			// Surface the typed error so the job aborts instead of ever
			// touching foreign memory.
			nsErr := &NamespaceError{
				PE: k.id, Op: m.Op.String(), Addr: m.Addr,
				Base: uint64(resp.Arg1), Limit: uint64(resp.Arg2),
			}
			wire.PutMessage(resp)
			pe.extra.WaitTime += pe.app.Now() - start
			return nil, nsErr
		}
		if err == nil {
			now := pe.app.Now()
			rtt := now - start
			pe.extra.WaitTime += rtt
			// Only the per-op histogram is fed on the hot path; the
			// aggregate PEStats.RTT is derived from it at collect time.
			pe.extra.RTTByOp[m.Op].Observe(rtt)
			if pe.live != nil {
				pe.live.Observe(rtt)
			}
			if pe.spans != nil && pe.spans.Sampled() {
				pe.spans.Record(trace.Span{
					Kind: trace.SpanRequest, Op: m.Op,
					PE: int32(k.id), Peer: int32(dst), Seq: seq,
					Start: start, Sent: sent, End: now,
				})
			}
			return resp, nil
		}
		if _, timedOut := err.(*TimeoutError); !timedOut || attempts > k.cfg.RequestRetries {
			k.dropPending(seq)
			pe.extra.WaitTime += pe.app.Now() - start
			return nil, err
		}
		if backoff > 0 {
			pe.app.Sleep(backoff)
			if backoff < 8*k.cfg.RetryBackoff {
				backoff *= 2
			}
		}
		m.Flags |= wire.FlagRetry
		pe.extra.Retries++
	}
}

// takeReply blocks on the reply mailbox until the response to seq arrives or
// the per-attempt timeout expires. Sequence validation is what makes the
// persistent mailbox safe: residue of an earlier timed-out request (a stale
// reply that arrived after we gave up on it) is recycled and skipped instead
// of being misdelivered as the answer to the current request.
func (pe *PE) takeReply(seq uint64, op wire.Op, dst int, attempts int) (*wire.Message, error) {
	k := pe.k
	d := k.requestTimeout()
	deadline := pe.app.Now() + d
	for {
		var resp *wire.Message
		var ok bool
		if d > 0 {
			remaining := deadline - pe.app.Now()
			if remaining <= 0 {
				return nil, &TimeoutError{PE: k.id, Dst: dst, Op: op.String(), Attempts: attempts}
			}
			var timedOut bool
			resp, ok, timedOut = pe.replyMb.TakeTimeout(remaining)
			if timedOut {
				return nil, &TimeoutError{PE: k.id, Dst: dst, Op: op.String(), Attempts: attempts}
			}
		} else {
			resp, ok = pe.replyMb.Take()
		}
		if !ok {
			return nil, &ShutdownError{PE: k.id, Op: op.String()}
		}
		if resp.Op == wire.OpPeerDown {
			peer, rseq := int(resp.Src), resp.Seq
			wire.PutMessage(resp)
			if rseq != seq {
				pe.extra.StaleReplies++ // failure notice for an older request
				continue
			}
			return nil, &PeerDownError{PE: k.id, Peer: peer, Op: op.String()}
		}
		if resp.Seq != seq {
			pe.extra.StaleReplies++
			wire.PutMessage(resp)
			continue
		}
		return resp, nil
	}
}

// --- Global memory: word operations ---

// GMRead reads the global-memory word at addr, panicking on failure.
func (pe *PE) GMRead(addr uint64) int64 {
	v, err := pe.GMReadErr(addr)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// GMReadErr reads the global-memory word at addr, surfacing request
// failures (timeout, peer down, shutdown) as errors instead of panicking.
// The word's consistency mode picks the protocol: strong words take the
// home-served path, release words consult the PE's own write-combining
// buffer first (read-your-writes between sync edges), lease words are
// served from time-bounded block leases.
func (pe *PE) GMReadErr(addr uint64) (int64, error) {
	if err := pe.nsCheck("read", addr, 1); err != nil {
		return 0, err
	}
	pe.legacyCrossing()
	switch pe.modes.Lookup(addr) {
	case gmem.ModeRelease:
		if v, ok := pe.wc.Lookup(addr); ok {
			var t0 sim.Time
			if pe.hist != nil {
				t0 = pe.app.Now()
			}
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			pe.recordRead(addr, v, false, t0, uint8(gmem.ModeRelease))
			return v, nil
		}
		return pe.readWord(addr, uint8(gmem.ModeRelease))
	case gmem.ModeLease:
		return pe.readLease(addr)
	}
	return pe.readWord(addr, 0)
}

// readWord is the home-served scalar read shared by the strong and release
// tiers (mode only tags the recorded events; the protocol is identical).
func (pe *PE) readWord(addr uint64, mode uint8) (int64, error) {
	k := pe.k
	var t0 sim.Time
	if pe.hist != nil {
		t0 = pe.app.Now()
	}
	if k.cache != nil {
		if v, ok := k.cache.Lookup(addr); ok {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			pe.recordRead(addr, v, true, t0, mode)
			return v, nil
		}
		if k.homeOf(addr) == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			v := k.seg.ReadWord(addr)
			pe.recordRead(addr, v, false, t0, mode)
			return v, nil
		}
		pe.extra.RemoteGM++
		req := wire.GetMessage()
		req.Op, req.Addr, req.Arg2 = wire.OpRead, addr, 1
		resp, err := pe.requestErr(k.homeOf(addr), req)
		wire.PutMessage(req)
		if err != nil {
			pe.recordReadFailed(addr, t0, mode)
			return 0, err
		}
		pe.words = resp.WordsInto(pe.words)
		wire.PutMessage(resp)
		k.cache.Insert(addr, pe.words)
		v := pe.words[addr%uint64(k.space.BlockWords)]
		pe.recordRead(addr, v, false, t0, mode)
		return v, nil
	}
	home := k.homeOf(addr)
	if home == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		v := k.seg.ReadWord(addr)
		pe.recordRead(addr, v, false, t0, mode)
		return v, nil
	}
	pe.extra.RemoteGM++
	if wins := k.windows; wins != nil && !k.deadFlags[home].Load() {
		// One-sided fast path: the home's segment is mapped in this address
		// space, so resolve the read directly through its seqlock instead of
		// a request/reply pair. Every word has a single home and the seqlock
		// yields a torn-free value, so this is as consistent as the message
		// path it replaces (uncached mode only: no directory to update). The
		// ownership check inside the home's seqlock critical section makes
		// the window migration-safe: a block mid-handoff fails the check
		// (the extract bumped the write sequence) and the read falls through
		// to the message path, which follows the NACK redirect.
		pe.app.LocalAccess()
		if v, ok := wins[home].DirectReadOwned(addr); ok {
			pe.extra.DirectGM++
			pe.recordRead(addr, v, false, t0, mode)
			return v, nil
		}
	}
	req := wire.GetMessage()
	req.Op, req.Addr, req.Arg1 = wire.OpRead, addr, 1
	resp, err := pe.requestErr(home, req)
	wire.PutMessage(req)
	if err != nil {
		pe.recordReadFailed(addr, t0, mode)
		return 0, err
	}
	v := resp.Word(0)
	wire.PutMessage(resp)
	pe.recordRead(addr, v, false, t0, mode)
	return v, nil
}

// recordRead logs one successful word read into the operation history
// (no-op unless Config.RecordHistory).
func (pe *PE) recordRead(addr uint64, v int64, cached bool, t0 sim.Time, mode uint8) {
	if pe.hist == nil {
		return
	}
	pe.hist.Add(check.Event{
		Kind: check.KindRead, Addr: addr, Out: v, Cached: cached, Mode: mode,
		Inv: t0, Resp: pe.app.Now(),
	})
}

// recordReadFailed logs a read that errored (no effect on memory; the
// checker ignores it beyond counting).
func (pe *PE) recordReadFailed(addr uint64, t0 sim.Time, mode uint8) {
	if pe.hist == nil {
		return
	}
	pe.hist.Add(check.Event{
		Kind: check.KindRead, Addr: addr, Failed: true, Mode: mode,
		Inv: t0, Resp: pe.app.Now(),
	})
}

// --- Lease-mode reads (ModeLease, DESIGN.md §14) ---

// readLease serves a lease-mode scalar read: a live lease covering the
// word's block answers locally with no messages, a miss fetches the block
// under a fresh time-bounded lease. Own-home words read the segment
// directly — always fresh, so they carry a strong staleness bound.
func (pe *PE) readLease(addr uint64) (int64, error) {
	k := pe.k
	var t0 sim.Time
	if pe.hist != nil {
		t0 = pe.app.Now()
	}
	bw := uint64(k.space.BlockWords)
	base := addr - addr%bw
	if le := pe.leaseHit(base); le != nil {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		v := le.words[addr-base]
		pe.recordLeaseRead(addr, v, t0, le)
		return v, nil
	}
	if k.homeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		v := k.seg.ReadWord(addr)
		pe.recordRead(addr, v, false, t0, uint8(gmem.ModeLease))
		return v, nil
	}
	le, err := pe.fetchLease(base)
	if err != nil {
		pe.recordReadFailed(addr, t0, uint8(gmem.ModeLease))
		return 0, err
	}
	v := le.words[addr-base]
	pe.recordLeaseRead(addr, v, t0, le)
	return v, nil
}

// leaseHit returns the live lease covering the block at base, dropping an
// expired one. The TEST-ONLY FaultIgnoreLeaseExpiry keeps serving expired
// leases — the checker's lease-overstay rule must flag those reads.
func (pe *PE) leaseHit(base uint64) *leaseEntry {
	le, ok := pe.leases[base]
	if !ok {
		return nil
	}
	if pe.app.Now() > le.until && !pe.k.cfg.FaultIgnoreLeaseExpiry {
		delete(pe.leases, base)
		pe.extra.LeaseExpiries++
		return nil
	}
	return le
}

// fetchLease fetches the block at base from its home under a read lease and
// caches it until the home-granted duration elapses (measured from receipt).
// The recorded staleness bound is the REQUEST start: the home serves the
// block no earlier than that, so every write completed before the grant
// instant is already reflected in the snapshot.
func (pe *PE) fetchLease(base uint64) (*leaseEntry, error) {
	k := pe.k
	grant := pe.app.Now()
	pe.extra.RemoteGM++
	req := wire.GetMessage()
	req.Op, req.Addr = wire.OpReadLease, base
	resp, err := pe.requestErr(k.homeOf(base), req)
	wire.PutMessage(req)
	if err != nil {
		return nil, err
	}
	le := &leaseEntry{grant: grant, until: pe.app.Now() + sim.Duration(resp.Arg2)}
	le.words = resp.WordsInto(le.words)
	wire.PutMessage(resp)
	pe.leases[base] = le
	pe.extra.LeaseGrants++
	return le, nil
}

// recordLeaseRead logs a read served under a lease: Cached marks it
// lease-served, Arg1/Arg2 carry the grant and expiry instants the checker's
// lease rules bound staleness with.
func (pe *PE) recordLeaseRead(addr uint64, v int64, t0 sim.Time, le *leaseEntry) {
	if pe.hist == nil {
		return
	}
	pe.hist.Add(check.Event{
		Kind: check.KindRead, Addr: addr, Out: v, Cached: true,
		Mode: uint8(gmem.ModeLease), Arg1: int64(le.grant), Arg2: int64(le.until),
		Inv: t0, Resp: pe.app.Now(),
	})
}

// dropLeases discards this PE's leases covering [addr, addr+n): its own
// writes must not keep being answered from a snapshot that predates them.
func (pe *PE) dropLeases(addr uint64, n int) {
	if len(pe.leases) == 0 {
		return
	}
	bw := uint64(pe.k.space.BlockWords)
	for base := addr - addr%bw; base < addr+uint64(n); base += bw {
		delete(pe.leases, base)
	}
}

// clearLeases drops every cached lease: crossing an acquire edge (barrier,
// lock or semaphore grant, membership transition) must re-observe the
// cluster instead of extending pre-edge snapshots past it.
func (pe *PE) clearLeases() {
	clear(pe.leases)
}

// GMWrite stores v at addr, panicking on failure.
func (pe *PE) GMWrite(addr uint64, v int64) {
	if err := pe.GMWriteErr(addr, v); err != nil {
		panic(err.Error())
	}
}

// ringStatus is the outcome of a one-sided write submission attempt.
type ringStatus int

const (
	// ringUnavailable: nothing was published (path off, home dead, home no
	// longer owns the block, or ring full) — fall back to the message path
	// with a fresh sequence.
	ringUnavailable ringStatus = iota
	// ringApplied: the write was consumed with no migration in flight — it
	// is applied and globally visible.
	ringApplied
	// ringAmbiguous: the write was consumed, but the home's migration
	// generation moved while it was in flight, so the drain may have
	// discarded it as disowned. The caller must confirm through the message
	// path REUSING the ring sequence: if the drain did apply it, the home's
	// dedup window absorbs the message as a duplicate; if it was discarded,
	// the message applies it (or chases the NACK redirect to the new home).
	// Either way the write lands exactly once.
	ringAmbiguous
)

// ringWrite attempts the one-sided write fast path: publish (addr, v) into
// the co-located home's per-shard submission ring and wait until the owning
// shard has consumed it. The ring sequence comes from the same counter as
// message sequences, so the home's dedup window gives the two paths one
// exactly-once space. The home's migration generation is sampled before the
// push and rechecked after consumption — see ringAmbiguous for the race this
// closes.
func (pe *PE) ringWrite(home int, addr uint64, v int64) (ringStatus, uint64) {
	k := pe.k
	if k.ringPeers == nil || k.deadFlags[home].Load() {
		return ringUnavailable, 0
	}
	hk := k.ringPeers[home]
	sh := hk.shards[k.space.ShardOf(addr, hk.nshards)]
	if sh.ring == nil {
		return ringUnavailable, 0
	}
	// The generation is sampled UNCONDITIONALLY, not gated on the directory
	// being live: the FIRST migration can flip the directory between this
	// point and the shard drain, and a producer that skipped the sample
	// because the directory looked static would also skip the recheck below
	// and report ringApplied for a write the drain filtered as disowned. A
	// static directory never bumps migGen, so the cost is one atomic load.
	gen := hk.migGen.Load()
	if !hk.dir.Static() && !hk.dir.Owns(home, k.space.BlockOf(addr)) {
		return ringUnavailable, 0 // block already migrated away
	}
	pe.app.LocalAccess()
	w := gmem.RingWrite{Addr: addr, Val: v, Seq: k.seqCtr.Add(1), Src: int32(k.id)}
	pos, ok := sh.ring.Push(w)
	if !ok {
		return ringUnavailable, 0
	}
	pe.extra.RingGM++
	if hk.workers {
		sh.nudge()
		sh.ring.AwaitConsumed(pos)
	} else {
		// Simulated transport: drain inline at the submit point. The sim
		// engine runs one cooperative context at a time, so this is both
		// race-free and deterministic, and the write is applied before the
		// submitting PE's virtual time advances again.
		sh.drainRing()
	}
	if hk.migGen.Load() != gen {
		return ringAmbiguous, w.Seq
	}
	return ringApplied, w.Seq
}

// GMWriteErr stores v at addr, surfacing request failures as errors. The
// word's consistency mode picks the protocol: release-mode stores land in
// the PE's write-combining buffer (published at the next sync edge), every
// other mode runs the home-served strong protocol.
func (pe *PE) GMWriteErr(addr uint64, v int64) error {
	if err := pe.nsCheck("write", addr, 1); err != nil {
		return err
	}
	pe.legacyCrossing()
	switch pe.modes.Lookup(addr) {
	case gmem.ModeRelease:
		pe.bufferWrite(addr, v)
		return nil
	case gmem.ModeLease:
		pe.dropLeases(addr, 1)
		return pe.writeWord(addr, v, uint8(gmem.ModeLease))
	}
	return pe.writeWord(addr, v, 0)
}

// bufferWrite absorbs a release-mode store into the write-combining buffer:
// purely local, same-word stores coalesce last-writer-wins, and the next
// sync edge publishes the buffer. The recorded event's instantaneous
// interval is the buffering instant; the checker derives the store's effect
// window from the first sync fence at or after it.
func (pe *PE) bufferWrite(addr uint64, v int64) {
	pe.app.LocalAccess()
	pe.extra.LocalGM++
	if pe.hist != nil {
		now := pe.app.Now()
		idx := pe.hist.Begin(check.Event{
			Kind: check.KindWrite, Addr: addr, Arg1: v,
			Mode: uint8(gmem.ModeRelease), Inv: now,
		})
		pe.hist.Complete(idx, 0, true, now)
	}
	pe.wc.Put(addr, v)
}

// writeWord is the home-served scalar store shared by the strong and lease
// tiers (mode only tags the recorded event).
func (pe *PE) writeWord(addr uint64, v int64, mode uint8) error {
	k := pe.k
	hidx := -1
	if pe.hist != nil {
		hidx = pe.hist.Begin(check.Event{
			Kind: check.KindWrite, Addr: addr, Arg1: v, Mode: mode, Inv: pe.app.Now(),
		})
	}
	if k.cache == nil {
		home := k.homeOf(addr)
		if home == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.WriteWord(addr, v)
			if pe.hist != nil {
				pe.hist.Complete(hidx, 0, true, pe.app.Now())
			}
			return nil
		}
		st, ringSeq := pe.ringWrite(home, addr, v)
		if st == ringApplied {
			pe.extra.RemoteGM++
			if pe.hist != nil {
				pe.hist.Complete(hidx, 0, true, pe.app.Now())
			}
			return nil
		}
		if st == ringAmbiguous {
			// A migration raced the ring submission: confirm through the
			// message path with the SAME sequence number (see ringAmbiguous).
			pe.extra.RemoteGM++
			req := wire.GetMessage()
			req.Op, req.Addr = wire.OpWrite, addr
			req.PutWord(v)
			resp, err := pe.requestSeqErr(home, req, ringSeq)
			wire.PutMessage(req)
			if err != nil {
				return err
			}
			wire.PutMessage(resp)
			if pe.hist != nil {
				pe.hist.Complete(hidx, 0, true, pe.app.Now())
			}
			return nil
		}
	}
	// Under caching every mutation goes through the home's invalidation
	// machinery, including our own home (via the own-node message path).
	// The writer drops its own cached copy too: a kept-warm copy would no
	// longer be registered in the home's directory, so later writes by
	// other PEs could not invalidate it.
	pe.extra.RemoteGM++
	req := wire.GetMessage()
	req.Op, req.Addr = wire.OpWrite, addr
	req.PutWord(v)
	resp, err := pe.requestErr(k.homeOf(addr), req)
	wire.PutMessage(req)
	if err != nil {
		return err
	}
	wire.PutMessage(resp)
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
	if pe.hist != nil {
		pe.hist.Complete(hidx, 0, true, pe.app.Now())
	}
	return nil
}

// FetchAdd atomically adds delta to the word at addr, returning the old
// value. The primitive behind job pools and work counters. Panics on failure.
func (pe *PE) FetchAdd(addr uint64, delta int64) int64 {
	old, err := pe.FetchAddErr(addr, delta)
	if err != nil {
		panic(err.Error())
	}
	return old
}

// FetchAddErr is FetchAdd with request failures surfaced as errors. A retry
// that slips past a lost reply is absorbed by the home's dedup window, so
// the addition is applied exactly once even under retransmission.
func (pe *PE) FetchAddErr(addr uint64, delta int64) (int64, error) {
	if err := pe.nsCheck("fetch-add", addr, 1); err != nil {
		return 0, err
	}
	pe.legacyCrossing()
	k := pe.k
	// Atomics always run the strong protocol at the home; the tag only marks
	// which per-word rule set judges them. A lease over the word is dropped
	// so later lease reads re-observe the mutation.
	mode := uint8(pe.modes.Lookup(addr))
	if mode == uint8(gmem.ModeLease) {
		pe.dropLeases(addr, 1)
	}
	hidx := -1
	if pe.hist != nil {
		hidx = pe.hist.Begin(check.Event{
			Kind: check.KindFetchAdd, Addr: addr, Arg1: delta, Mode: mode, Inv: pe.app.Now(),
		})
	}
	if k.cache == nil && k.homeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		old := k.seg.FetchAdd(addr, delta)
		if pe.hist != nil {
			pe.hist.Complete(hidx, old, true, pe.app.Now())
		}
		return old, nil
	}
	pe.extra.RemoteGM++
	req := wire.GetMessage()
	req.Op, req.Addr, req.Arg1 = wire.OpFetchAdd, addr, delta
	resp, err := pe.requestErr(k.homeOf(addr), req)
	wire.PutMessage(req)
	if err != nil {
		return 0, err
	}
	old := resp.Arg1
	wire.PutMessage(resp)
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
	if pe.hist != nil {
		pe.hist.Complete(hidx, old, true, pe.app.Now())
	}
	return old, nil
}

// CAS atomically compares-and-swaps the word at addr; it returns the
// previous value and whether the swap happened. Panics on failure.
func (pe *PE) CAS(addr uint64, old, new int64) (int64, bool) {
	prev, sw, err := pe.CASErr(addr, old, new)
	if err != nil {
		panic(err.Error())
	}
	return prev, sw
}

// CASErr is CAS with request failures surfaced as errors; like FetchAddErr
// it stays exactly-once under retransmission.
func (pe *PE) CASErr(addr uint64, old, new int64) (int64, bool, error) {
	if err := pe.nsCheck("cas", addr, 1); err != nil {
		return 0, false, err
	}
	pe.legacyCrossing()
	k := pe.k
	// Strong protocol regardless of mode, like FetchAddErr.
	mode := uint8(pe.modes.Lookup(addr))
	if mode == uint8(gmem.ModeLease) {
		pe.dropLeases(addr, 1)
	}
	hidx := -1
	if pe.hist != nil {
		hidx = pe.hist.Begin(check.Event{
			Kind: check.KindCAS, Addr: addr, Arg1: old, Arg2: new, Mode: mode, Inv: pe.app.Now(),
		})
	}
	if k.cache == nil && k.homeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		prev, sw := k.seg.CAS(addr, old, new)
		if pe.hist != nil {
			pe.hist.Complete(hidx, prev, sw, pe.app.Now())
		}
		return prev, sw, nil
	}
	pe.extra.RemoteGM++
	req := wire.GetMessage()
	req.Op, req.Addr, req.Arg1, req.Arg2 = wire.OpCAS, addr, old, new
	resp, err := pe.requestErr(k.homeOf(addr), req)
	wire.PutMessage(req)
	if err != nil {
		return 0, false, err
	}
	prev, sw := resp.Arg1, resp.Arg2 == 1
	wire.PutMessage(resp)
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
	if pe.hist != nil {
		pe.hist.Complete(hidx, prev, sw, pe.app.Now())
	}
	return prev, sw, nil
}

// --- Global memory: block and vectored (scatter/gather) operations ---

// sendAsync issues a request without waiting for its reply (which will
// arrive in the persistent reply mailbox, matched by the returned Seq).
// The DSE kernel's asynchronous-I/O design lets a DSE process keep several
// requests in flight, so a transfer overlaps its per-home round trips.
func (pe *PE) sendAsync(dst int, m *wire.Message) uint64 {
	k := pe.k
	m.Src = int32(k.id)
	m.Dst = int32(dst)
	seq, dead := k.addPending(pe.replyMb, dst)
	if dead {
		pe.dropTransferPending()
		panic((&PeerDownError{PE: k.id, Peer: dst, Op: m.Op.String()}).Error())
	}
	m.Seq = seq
	pe.app.Send(dst, m)
	return seq
}

// groupRunsByHome regroups pe.vruns into pe.hruns ordered by home (and, when
// the home kernels run shard workers, by shard within each home, so each
// sub-request lands wholly in one shard and the shards service them in
// parallel); callers then slice pe.hruns per request. Runs keep their
// relative (ascending-address) order within each group. Without workers a
// single per-home request is still stamped with its first run's shard — the
// handlers don't care, every table the request touches is inline-owned.
func (pe *PE) groupRunsByHome() {
	pe.hruns = pe.hruns[:0]
	pe.reqs = pe.reqs[:0]
	nsh := 1
	if pe.k.workers {
		nsh = pe.k.nshards
	}
	for home := 0; home < pe.k.n; home++ {
		for s := 0; s < nsh; s++ {
			lo := len(pe.hruns)
			for _, r := range pe.vruns {
				if r.home != home || (nsh > 1 && r.shard != s) {
					continue
				}
				pe.hruns = append(pe.hruns, r)
			}
			if hi := len(pe.hruns); hi > lo {
				pe.reqs = append(pe.reqs, homeReq{lo: lo, hi: hi, shard: pe.hruns[lo].shard})
			}
		}
	}
}

// awaitGather collects the per-home read responses of a pipelined gather,
// scattering each response's words into out at the runs' offsets. Replies
// are matched by Seq, so out-of-order arrival is fine and stale mailbox
// residue is discarded rather than corrupting the transfer.
func (pe *PE) awaitGather(out []int64) {
	start := pe.app.Now()
	var nacked []*homeReq
	for remaining := len(pe.reqs); remaining > 0; {
		resp := pe.takeTransfer(wire.OpReadV)
		g := pe.findReq(resp.Seq)
		if g == nil {
			pe.extra.StaleReplies++
			wire.PutMessage(resp)
			continue
		}
		remaining--
		if resp.Op == wire.OpMigrateNack {
			// One of the sub-request's blocks migrated away; the home NACKed
			// the whole message before touching anything. Park the group until
			// every other sub-response has drained: the synchronous replay
			// shares the reply mailbox, and its stale-reply filter would
			// destroy any still-outstanding sibling response it raced.
			wire.PutMessage(resp)
			pe.extra.MigrateNacks++
			nacked = append(nacked, g)
			continue
		}
		pe.words = resp.WordsInto(pe.words)
		wire.PutMessage(resp)
		woff := 0
		for _, r := range pe.hruns[g.lo:g.hi] {
			copy(out[r.off:r.off+r.count], pe.words[woff:woff+r.count])
			woff += r.count
		}
	}
	for _, g := range nacked {
		// Re-issue each run synchronously — requestSeqErr follows the
		// redirect chain and learns the new homes along the way.
		pe.regatherRuns(g, out)
	}
	pe.finishTransfer(wire.OpReadV, start)
}

// regatherRuns re-reads every run of a NACKed gather sub-request through the
// scalar request path (one request per run, routed by the live directory).
// Rare — at most once per sub-request per overlapping migration — so the
// lost pipelining doesn't matter.
func (pe *PE) regatherRuns(g *homeReq, out []int64) {
	k := pe.k
	for _, r := range pe.hruns[g.lo:g.hi] {
		req := wire.GetMessage()
		req.Op, req.Addr, req.Arg1 = wire.OpRead, r.start, int64(r.count)
		resp, err := pe.requestErr(k.homeOf(r.start), req)
		wire.PutMessage(req)
		if err != nil {
			pe.dropTransferPending()
			panic(fmt.Sprintf("core: PE %d: re-reading run at %d after a home migration: %v", k.id, r.start, err))
		}
		pe.words = resp.WordsInto(pe.words)
		wire.PutMessage(resp)
		copy(out[r.off:r.off+r.count], pe.words[:r.count])
	}
}

// finishTransfer charges a pipelined transfer's wait phase and records its
// span (the per-home round trips overlap, so the transfer — not each
// request — is the observable unit).
func (pe *PE) finishTransfer(op wire.Op, start sim.Time) {
	end := pe.app.Now()
	pe.extra.WaitTime += end - start
	pe.extra.RTTByOp[op].Observe(end - start)
	if pe.live != nil {
		pe.live.Observe(end - start)
	}
	if pe.spans != nil && pe.spans.Sampled() {
		pe.spans.Record(trace.Span{
			Kind: trace.SpanTransfer, Op: op, PE: int32(pe.k.id),
			Peer: int32(pe.k.id), Start: start, End: end,
		})
	}
}

// awaitAcks drains one ack per outstanding per-home request. src is the
// buffer the transfer's runs index into with their off/count fields (the
// caller's words for a block write, vals for a scatter): a sub-request
// NACKed by a migrating home is replayed from it run by run.
func (pe *PE) awaitAcks(src []int64) {
	start := pe.app.Now()
	var nacked []*homeReq
	for remaining := len(pe.reqs); remaining > 0; {
		resp := pe.takeTransfer(wire.OpWriteV)
		g := pe.findReq(resp.Seq)
		op := resp.Op
		wire.PutMessage(resp)
		if g == nil {
			pe.extra.StaleReplies++
			continue
		}
		remaining--
		if op == wire.OpMigrateNack {
			// The home NACKed the whole sub-request before applying any run
			// (all-or-nothing), so replaying every run with fresh sequences
			// cannot double-apply. The replay is parked until every other
			// sub-response has drained: it shares the reply mailbox, and its
			// stale-reply filter would destroy a sibling response it raced.
			pe.extra.MigrateNacks++
			nacked = append(nacked, g)
		}
	}
	for _, g := range nacked {
		// Each replay routes by the live directory and follows redirects.
		pe.rewriteRuns(g, src)
	}
	pe.finishTransfer(wire.OpWriteV, start)
}

// rewriteRuns replays every run of a NACKed write sub-request through the
// scalar request path.
func (pe *PE) rewriteRuns(g *homeReq, src []int64) {
	k := pe.k
	for _, r := range pe.hruns[g.lo:g.hi] {
		req := wire.GetMessage()
		req.Op, req.Addr = wire.OpWrite, r.start
		req.PutWords(src[r.off : r.off+r.count])
		resp, err := pe.requestErr(k.homeOf(r.start), req)
		wire.PutMessage(req)
		if err != nil {
			pe.dropTransferPending()
			panic(fmt.Sprintf("core: PE %d: re-writing run at %d after a home migration: %v", k.id, r.start, err))
		}
		wire.PutMessage(resp)
	}
}

// takeTransfer blocks on the reply mailbox for the next transfer reply,
// panicking on timeout, shutdown or a peer-down notice for one of the
// transfer's outstanding requests.
func (pe *PE) takeTransfer(op wire.Op) *wire.Message {
	k := pe.k
	for {
		var resp *wire.Message
		var ok bool
		if d := k.requestTimeout(); d > 0 {
			var timedOut bool
			resp, ok, timedOut = pe.replyMb.TakeTimeout(d)
			if timedOut {
				pe.dropTransferPending()
				panic(fmt.Sprintf("core: PE %d: %v transfer timed out after %v", k.id, op, d))
			}
		} else {
			resp, ok = pe.replyMb.Take()
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down during %v request", k.id, op))
		}
		if resp.Op == wire.OpPeerDown {
			peer, seq := int(resp.Src), resp.Seq
			wire.PutMessage(resp)
			if !pe.transferSeq(seq) {
				pe.extra.StaleReplies++ // notice for an older, non-transfer request
				continue
			}
			pe.dropTransferPending()
			panic(fmt.Sprintf("core: PE %d: %v transfer failed: peer %d is down", k.id, op, peer))
		}
		return resp
	}
}

// transferSeq reports whether seq belongs to an outstanding (not yet done)
// request of the current transfer.
func (pe *PE) transferSeq(seq uint64) bool {
	for i := range pe.reqs {
		if pe.reqs[i].seq == seq && !pe.reqs[i].done {
			return true
		}
	}
	return false
}

// dropTransferPending forgets the still-outstanding requests of an aborted
// transfer so their late replies are dropped as stray instead of lingering
// in the reply mailbox.
func (pe *PE) dropTransferPending() {
	for i := range pe.reqs {
		if pe.reqs[i].seq != 0 && !pe.reqs[i].done {
			pe.k.dropPending(pe.reqs[i].seq)
		}
	}
}

// findReq marks the outstanding request with seq done and returns it; nil
// means seq matches none of them (stale residue — the caller discards it).
func (pe *PE) findReq(seq uint64) *homeReq {
	for i := range pe.reqs {
		if pe.reqs[i].seq == seq && !pe.reqs[i].done {
			pe.reqs[i].done = true
			return &pe.reqs[i]
		}
	}
	return nil
}

// GMReadBlock reads n words starting at addr, splitting the range across
// homes as needed. All runs homed at one kernel travel in a single
// (vectored, if more than one run) request, and the per-home requests are
// pipelined. Block reads bypass the read cache (they are always served
// fresh by the homes).
func (pe *PE) GMReadBlock(addr uint64, n int) []int64 {
	if err := pe.nsCheck("read-block", addr, n); err != nil {
		panic(err)
	}
	pe.legacyCrossing()
	out := make([]int64, n)
	if m, uni := pe.modes.Uniform(addr, n); uni {
		pe.readBlockInto(out, addr, uint8(m))
	} else {
		pe.modes.ModeRuns(addr, n, func(m gmem.Mode, start uint64, count int) {
			off := start - addr
			pe.readBlockInto(out[off:off+uint64(count)], start, uint8(m))
		})
	}
	return out
}

// readBlockInto reads len(out) words starting at addr through the protocol
// of the given mode: strong and release share the home-served vectored path
// (release overlays the PE's own buffered writes afterwards), lease serves
// whole blocks from the lease cache.
func (pe *PE) readBlockInto(out []int64, addr uint64, mode uint8) {
	if mode == uint8(gmem.ModeLease) {
		pe.readLeaseRange(out, addr)
		return
	}
	k := pe.k
	n := len(out)
	var t0 sim.Time
	if pe.hist != nil {
		t0 = pe.app.Now()
	}
	pe.vruns = pe.vruns[:0]
	k.homeRuns(addr, n, func(home int, start uint64, count int) {
		off := int(start - addr)
		if home == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.ReadInto(out[off:off+count], start)
			return
		}
		pe.extra.RemoteGM++
		pe.vruns = append(pe.vruns, vrun{
			home: home, shard: k.space.ShardOf(start, k.nshards),
			start: start, count: count, off: off,
		})
	})
	if len(pe.vruns) == 0 {
		pe.overlayWC(out, addr, mode)
		pe.recordBlockRead(addr, out, t0, mode)
		return
	}
	pe.groupRunsByHome()
	for i := range pe.reqs {
		g := &pe.reqs[i]
		req := wire.GetMessage()
		if g.hi-g.lo == 1 {
			r := pe.hruns[g.lo]
			req.Op, req.Addr, req.Arg1 = wire.OpRead, r.start, int64(r.count)
		} else {
			req.Op = wire.OpReadV
			for _, r := range pe.hruns[g.lo:g.hi] {
				req.AppendRange(r.start, r.count)
			}
		}
		req.Shard = uint8(g.shard)
		g.seq = pe.sendAsync(pe.hruns[g.lo].home, req)
		wire.PutMessage(req)
	}
	pe.awaitGather(out)
	pe.overlayWC(out, addr, mode)
	pe.recordBlockRead(addr, out, t0, mode)
}

// overlayWC merges the PE's own buffered release-mode writes over a fetched
// range — the block-read half of read-your-writes between sync edges. The
// history records the overlaid values: they are what the application saw.
func (pe *PE) overlayWC(out []int64, addr uint64, mode uint8) {
	if mode != uint8(gmem.ModeRelease) || pe.wc.Len() == 0 {
		return
	}
	for i := range out {
		if v, ok := pe.wc.Lookup(addr + uint64(i)); ok {
			out[i] = v
		}
	}
}

// readLeaseRange serves a lease-mode range read block by block from the
// lease cache, fetching leases on misses; own-home blocks read the segment
// directly (fresh, so strong-bounded, like readLease).
func (pe *PE) readLeaseRange(out []int64, addr uint64) {
	k := pe.k
	var t0 sim.Time
	if pe.hist != nil {
		t0 = pe.app.Now()
	}
	bw := uint64(k.space.BlockWords)
	end := addr + uint64(len(out))
	for base := addr - addr%bw; base < end; base += bw {
		lo, hi := base, base+bw
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if k.homeOf(base) == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.ReadInto(out[lo-addr:hi-addr], lo)
			pe.recordBlockRead(lo, out[lo-addr:hi-addr], t0, uint8(gmem.ModeLease))
			continue
		}
		le := pe.leaseHit(base)
		if le == nil {
			var err error
			if le, err = pe.fetchLease(base); err != nil {
				panic(err.Error())
			}
		} else {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
		}
		copy(out[lo-addr:hi-addr], le.words[lo-base:hi-base])
		if pe.hist != nil {
			resp := pe.app.Now()
			for a := lo; a < hi; a++ {
				pe.hist.Add(check.Event{
					Kind: check.KindRead, Addr: a, Out: out[a-addr], Cached: true,
					Mode: uint8(gmem.ModeLease), Arg1: int64(le.grant), Arg2: int64(le.until),
					Inv: t0, Resp: resp,
				})
			}
		}
	}
}

// recordBlockRead logs one read event per word of a completed block read;
// the words share the block operation's invocation/response interval.
func (pe *PE) recordBlockRead(addr uint64, out []int64, t0 sim.Time, mode uint8) {
	if pe.hist == nil {
		return
	}
	resp := pe.app.Now()
	for i, v := range out {
		pe.hist.Add(check.Event{
			Kind: check.KindRead, Addr: addr + uint64(i), Out: v, Mode: mode, Inv: t0, Resp: resp,
		})
	}
}

// beginBlockWrite logs one in-flight write event per word of a block write
// and returns the index of the first; the indices are contiguous, so
// completeBlock(first, len(words)) closes them all.
func (pe *PE) beginBlockWrite(addr uint64, words []int64, mode uint8) int {
	if pe.hist == nil {
		return -1
	}
	t0 := pe.app.Now()
	first := -1
	for i, v := range words {
		idx := pe.hist.Begin(check.Event{
			Kind: check.KindWrite, Addr: addr + uint64(i), Arg1: v, Mode: mode, Inv: t0,
		})
		if first < 0 {
			first = idx
		}
	}
	return first
}

// completeBlock marks the n contiguous events starting at first successful.
func (pe *PE) completeBlock(first, n int) {
	if pe.hist == nil {
		return
	}
	resp := pe.app.Now()
	for i := 0; i < n; i++ {
		pe.hist.Complete(first+i, 0, true, resp)
	}
}

// GMWriteBlock stores words starting at addr, splitting across homes; all
// runs homed at one kernel travel in a single (vectored, if more than one
// run) request, and the per-home requests are pipelined.
func (pe *PE) GMWriteBlock(addr uint64, words []int64) {
	if err := pe.nsCheck("write-block", addr, len(words)); err != nil {
		panic(err)
	}
	pe.legacyCrossing()
	if m, uni := pe.modes.Uniform(addr, len(words)); uni {
		pe.writeBlockRange(addr, words, uint8(m))
	} else {
		pe.modes.ModeRuns(addr, len(words), func(m gmem.Mode, start uint64, count int) {
			off := start - addr
			pe.writeBlockRange(start, words[off:off+uint64(count)], uint8(m))
		})
	}
}

// writeBlockRange stores words starting at addr through the given mode's
// write protocol: release buffers every word locally (the next sync edge
// publishes them coalesced), the other modes run the home-served vectored
// path.
func (pe *PE) writeBlockRange(addr uint64, words []int64, mode uint8) {
	k := pe.k
	if mode == uint8(gmem.ModeRelease) {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		if pe.hist != nil {
			now := pe.app.Now()
			for i, v := range words {
				idx := pe.hist.Begin(check.Event{
					Kind: check.KindWrite, Addr: addr + uint64(i), Arg1: v,
					Mode: mode, Inv: now,
				})
				pe.hist.Complete(idx, 0, true, now)
			}
		}
		for i, v := range words {
			pe.wc.Put(addr+uint64(i), v)
		}
		return
	}
	if mode == uint8(gmem.ModeLease) {
		pe.dropLeases(addr, len(words))
	}
	first := pe.beginBlockWrite(addr, words, mode)
	pe.vruns = pe.vruns[:0]
	k.homeRuns(addr, len(words), func(home int, start uint64, count int) {
		off := int(start - addr)
		if k.cache == nil && home == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.Write(start, words[off:off+count])
			return
		}
		pe.extra.RemoteGM++
		pe.vruns = append(pe.vruns, vrun{
			home: home, shard: k.space.ShardOf(start, k.nshards),
			start: start, count: count, off: off,
		})
		if k.cache != nil {
			k.cache.Invalidate(start)
		}
	})
	if len(pe.vruns) == 0 {
		pe.completeBlock(first, len(words))
		return
	}
	pe.groupRunsByHome()
	for i := range pe.reqs {
		g := &pe.reqs[i]
		req := wire.GetMessage()
		if g.hi-g.lo == 1 {
			r := pe.hruns[g.lo]
			req.Op, req.Addr = wire.OpWrite, r.start
			req.PutWords(words[r.off : r.off+r.count])
		} else {
			req.Op = wire.OpWriteV
			for _, r := range pe.hruns[g.lo:g.hi] {
				req.AppendWriteRun(r.start, words[r.off:r.off+r.count])
			}
		}
		req.Shard = uint8(g.shard)
		g.seq = pe.sendAsync(pe.hruns[g.lo].home, req)
		wire.PutMessage(req)
	}
	pe.awaitAcks(words)
	pe.completeBlock(first, len(words))
}

// GMGather reads the words at the given (arbitrary, possibly scattered)
// addresses, returning them in input order. All addresses homed at one
// kernel travel in a single vectored request; gathers bypass the read
// cache. The fine-grained-access aggregation standard in user-level DSMs:
// one message per home instead of one per word.
func (pe *PE) GMGather(addrs []uint64) []int64 {
	if pe.ns.Limit != 0 {
		// All-or-nothing up front, like the kernel-side scan.
		for _, a := range addrs {
			if err := pe.nsCheck("gather", a, 1); err != nil {
				panic(err)
			}
		}
	}
	if pe.nonStrongMode(addrs) {
		// Rare mixed-mode gather: serve each address through its mode's
		// scalar path (WC overlay, leases) at the cost of aggregation.
		out := make([]int64, len(addrs))
		for i, a := range addrs {
			out[i] = pe.GMRead(a)
		}
		return out
	}
	pe.legacyCrossing()
	k := pe.k
	var t0 sim.Time
	if pe.hist != nil {
		t0 = pe.app.Now()
	}
	out := make([]int64, len(addrs))
	pe.vruns = pe.vruns[:0]
	for i, addr := range addrs {
		if home := k.homeOf(addr); home != k.id {
			pe.extra.RemoteGM++
			pe.vruns = append(pe.vruns, vrun{
				home: home, shard: k.space.ShardOf(addr, k.nshards),
				start: addr, count: 1, off: i,
			})
			continue
		}
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		out[i] = k.seg.ReadWord(addr)
	}
	if len(pe.vruns) == 0 {
		pe.recordGather(addrs, out, t0)
		return out
	}
	pe.groupRunsByHome()
	for i := range pe.reqs {
		g := &pe.reqs[i]
		req := wire.GetMessage()
		if g.hi-g.lo == 1 {
			r := pe.hruns[g.lo]
			req.Op, req.Addr, req.Arg1 = wire.OpRead, r.start, 1
		} else {
			req.Op = wire.OpReadV
			for _, r := range pe.hruns[g.lo:g.hi] {
				req.AppendRange(r.start, 1)
			}
		}
		req.Shard = uint8(g.shard)
		g.seq = pe.sendAsync(pe.hruns[g.lo].home, req)
		wire.PutMessage(req)
	}
	pe.awaitGather(out)
	pe.recordGather(addrs, out, t0)
	return out
}

// nonStrongMode reports whether any of addrs is in a non-strong mode — the
// vectored gather/scatter paths aggregate strong accesses only.
func (pe *PE) nonStrongMode(addrs []uint64) bool {
	if pe.modes.AllStrong() {
		return false
	}
	for _, a := range addrs {
		if pe.modes.Lookup(a) != gmem.ModeStrong {
			return true
		}
	}
	return false
}

// recordGather logs one read event per gathered address.
func (pe *PE) recordGather(addrs []uint64, out []int64, t0 sim.Time) {
	if pe.hist == nil {
		return
	}
	resp := pe.app.Now()
	for i, a := range addrs {
		pe.hist.Add(check.Event{
			Kind: check.KindRead, Addr: a, Out: out[i], Inv: t0, Resp: resp,
		})
	}
}

// beginScatter logs one in-flight write event per scattered address and
// returns the first index (contiguous, like beginBlockWrite).
func (pe *PE) beginScatter(addrs []uint64, vals []int64) int {
	if pe.hist == nil {
		return -1
	}
	t0 := pe.app.Now()
	first := -1
	for i, a := range addrs {
		idx := pe.hist.Begin(check.Event{
			Kind: check.KindWrite, Addr: a, Arg1: vals[i], Inv: t0,
		})
		if first < 0 {
			first = idx
		}
	}
	return first
}

// GMScatter stores vals[i] at addrs[i] for every i. All addresses homed at
// one kernel travel in a single vectored request. Under caching, touched
// blocks are invalidated like GMWrite does.
func (pe *PE) GMScatter(addrs []uint64, vals []int64) {
	if len(addrs) != len(vals) {
		panic("core: GMScatter length mismatch")
	}
	if pe.ns.Limit != 0 {
		for _, a := range addrs {
			if err := pe.nsCheck("scatter", a, 1); err != nil {
				panic(err)
			}
		}
	}
	if pe.nonStrongMode(addrs) {
		// Mixed-mode scatter: each element through its mode's scalar path.
		for i, a := range addrs {
			pe.GMWrite(a, vals[i])
		}
		return
	}
	pe.legacyCrossing()
	k := pe.k
	first := pe.beginScatter(addrs, vals)
	pe.vruns = pe.vruns[:0]
	for i, addr := range addrs {
		if home := k.homeOf(addr); home != k.id || k.cache != nil {
			pe.extra.RemoteGM++
			pe.vruns = append(pe.vruns, vrun{
				home: home, shard: k.space.ShardOf(addr, k.nshards),
				start: addr, count: 1, off: i,
			})
			if k.cache != nil {
				k.cache.Invalidate(addr)
			}
			continue
		}
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		k.seg.WriteWord(addr, vals[i])
	}
	if len(pe.vruns) == 0 {
		pe.completeBlock(first, len(addrs))
		return
	}
	pe.groupRunsByHome()
	for i := range pe.reqs {
		g := &pe.reqs[i]
		req := wire.GetMessage()
		if g.hi-g.lo == 1 {
			r := pe.hruns[g.lo]
			req.Op, req.Addr = wire.OpWrite, r.start
			req.PutWords(vals[r.off : r.off+1])
		} else {
			req.Op = wire.OpWriteV
			for _, r := range pe.hruns[g.lo:g.hi] {
				req.AppendWriteRun(r.start, vals[r.off:r.off+1])
			}
		}
		req.Shard = uint8(g.shard)
		g.seq = pe.sendAsync(pe.hruns[g.lo].home, req)
		wire.PutMessage(req)
	}
	pe.awaitAcks(vals)
	pe.completeBlock(first, len(addrs))
}

// --- Global memory: float64 convenience ---

// GMReadF reads a float64 stored at addr.
func (pe *PE) GMReadF(addr uint64) float64 { return gmem.W2F(pe.GMRead(addr)) }

// GMWriteF stores a float64 at addr.
func (pe *PE) GMWriteF(addr uint64, v float64) { pe.GMWrite(addr, gmem.F2W(v)) }

// GMReadBlockF reads n float64 values starting at addr.
func (pe *PE) GMReadBlockF(addr uint64, n int) []float64 {
	ws := pe.GMReadBlock(addr, n)
	fs := make([]float64, len(ws))
	for i, w := range ws {
		fs[i] = gmem.W2F(w)
	}
	return fs
}

// GMWriteBlockF stores float64 values starting at addr.
func (pe *PE) GMWriteBlockF(addr uint64, vs []float64) {
	ws := make([]int64, len(vs))
	for i, v := range vs {
		ws[i] = gmem.F2W(v)
	}
	pe.GMWriteBlock(addr, ws)
}

// --- Synchronisation ---

// flushWC publishes the write-combining buffer: one coalesced vectored
// OpFlushV per (home, shard), own-home words applied directly when uncached.
// fenceInv is the enclosing sync operation's invocation instant — the
// KindFlush event is recorded FIRST with that same Inv, so it sorts ahead of
// the sync event, and a flush that fails anywhere is left open (Failed ⇒
// unbounded effect window in the checker), shielding the buffered writes
// from wrongly convicting readers. Failures degrade softly instead of
// failing the sync operation itself: words homed at a dead peer are
// discarded for good (their blocks died with it), words that timed out
// re-enter the buffer and retry at the next sync edge.
func (pe *PE) flushWC(fenceInv sim.Time) {
	if pe.wc.Len() == 0 {
		return
	}
	k := pe.k
	if k.cfg.FaultSkipReleaseFlush {
		// TEST-ONLY fault (see Config): drop the buffered writes on the floor
		// and record nothing, so the enclosing sync edge claims a publication
		// that never happened — the checker's release rules must catch it.
		pe.wc.Discard()
		return
	}
	start := pe.app.Now()
	hidx := -1
	if pe.hist != nil {
		hidx = pe.hist.Begin(check.Event{
			Kind: check.KindFlush, Arg1: int64(pe.wc.Len()), Inv: fenceInv,
		})
	}
	pe.fl, pe.flv = pe.fl[:0], pe.flv[:0]
	pe.wc.Drain(func(addr uint64, v int64) {
		pe.fl = append(pe.fl, addr)
		pe.flv = append(pe.flv, v)
	})
	pe.extra.WCFlushes++
	pe.vruns = pe.vruns[:0]
	bw := uint64(k.space.BlockWords)
	for i := 0; i < len(pe.fl); {
		addr := pe.fl[i]
		blockEnd := addr - addr%bw + bw
		j := i + 1
		for j < len(pe.fl) && pe.fl[j] == pe.fl[j-1]+1 && pe.fl[j] < blockEnd {
			j++
		}
		home := k.homeOf(addr)
		if k.cache == nil && home == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.Write(addr, pe.flv[i:j])
		} else {
			pe.extra.RemoteGM++
			pe.vruns = append(pe.vruns, vrun{
				home: home, shard: k.space.ShardOf(addr, k.nshards),
				start: addr, count: j - i, off: i,
			})
			if k.cache != nil {
				k.cache.Invalidate(addr)
			}
		}
		i = j
	}
	ok := true
	if len(pe.vruns) > 0 {
		pe.groupRunsByHome()
		for gi := range pe.reqs {
			g := &pe.reqs[gi]
			req := wire.GetMessage()
			req.Op = wire.OpFlushV
			for _, r := range pe.hruns[g.lo:g.hi] {
				req.AppendWriteRun(r.start, pe.flv[r.off:r.off+r.count])
			}
			req.Shard = uint8(g.shard)
			resp, err := pe.requestErr(pe.hruns[g.lo].home, req)
			wire.PutMessage(req)
			if err != nil {
				ok = false
				if _, down := err.(*PeerDownError); !down {
					// The home may still be alive: keep its words buffered and
					// retry this part of the flush at the next sync edge.
					for _, r := range pe.hruns[g.lo:g.hi] {
						for w := 0; w < r.count; w++ {
							pe.wc.Put(r.start+uint64(w), pe.flv[r.off+w])
						}
					}
				}
				continue
			}
			wire.PutMessage(resp)
		}
	}
	if pe.hist != nil && ok {
		pe.hist.Complete(hidx, 0, true, pe.app.Now())
	}
	pe.extra.FlushStall.Observe(pe.app.Now() - start)
}

// syncFence is the release/acquire edge of an operation with no sync event
// of its own (membership transitions, escrow points): publish the WC buffer
// — the KindFlush event doubles as the fence the checker orders by — and
// drop the lease cache.
func (pe *PE) syncFence() {
	pe.flushWC(pe.app.Now())
	pe.clearLeases()
}

// Barrier blocks until every PE has reached it (barrier id 0).
func (pe *PE) Barrier() { pe.BarrierID(0) }

// BarrierID blocks on the barrier with the given id; distinct ids are
// independent barriers.
func (pe *PE) BarrierID(id int32) {
	pe.legacyCrossing()
	k := pe.k
	pe.extra.Barriers++
	dst := 0
	if k.cfg.Barrier == BarrierTree {
		dst = k.id // tree arrivals start at the local kernel
	}
	start := pe.app.Now()
	// Release edge: publish buffered release-mode writes before arriving, so
	// every PE released by this barrier observes them.
	pe.flushWC(start)
	arrive := wire.GetMessage()
	arrive.Op, arrive.Src, arrive.Dst, arrive.Tag = wire.OpBarrierArrive, int32(k.id), int32(dst), id
	pe.app.Send(dst, arrive)
	wire.PutMessage(arrive)
	m := pe.takeSync()
	if m.Op != wire.OpBarrierRelease || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected barrier %d release, got %v", k.id, id, m))
	}
	wire.PutMessage(m)
	end := pe.app.Now()
	pe.extra.WaitTime += end - start
	pe.extra.BarrierWait.Observe(end - start)
	if pe.spans != nil {
		pe.spans.Record(trace.Span{
			Kind: trace.SpanBarrier, PE: int32(k.id), Seq: uint64(uint32(id)),
			Start: start, End: end,
		})
	}
	if pe.hist != nil {
		pe.hist.Add(check.Event{
			Kind: check.KindBarrier, Addr: uint64(uint32(id)), Inv: start, Resp: end,
		})
	}
	// Acquire edge: pre-barrier lease snapshots must not outlive the crossing.
	pe.clearLeases()
}

// Lock acquires the cluster-wide lock id (FIFO, managed by kernel 0).
func (pe *PE) Lock(id int32) {
	pe.legacyCrossing()
	pe.extra.Locks++
	start := pe.app.Now()
	pe.sendSync(wire.OpLockAcquire, id)
	m := pe.takeSync()
	if m.Op != wire.OpLockGrant || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected lock %d grant, got %v", pe.k.id, id, m))
	}
	wire.PutMessage(m)
	end := pe.app.Now()
	pe.extra.WaitTime += end - start
	pe.extra.LockWait.Observe(end - start)
	if pe.spans != nil {
		pe.spans.Record(trace.Span{
			Kind: trace.SpanLock, PE: int32(pe.k.id), Seq: uint64(uint32(id)),
			Start: start, End: end,
		})
	}
	if pe.hist != nil {
		pe.hist.Add(check.Event{
			Kind: check.KindLock, Addr: uint64(uint32(id)), Inv: start, Resp: end,
		})
	}
	// Acquire edge: drop lease snapshots taken before the grant.
	pe.clearLeases()
}

// Unlock releases lock id. This is release consistency's namesake release
// edge: buffered release-mode writes are published while the lock is still
// held, so the next holder observes them.
func (pe *PE) Unlock(id int32) {
	pe.legacyCrossing()
	t0 := pe.app.Now()
	pe.flushWC(t0)
	if pe.hist != nil {
		pe.hist.Add(check.Event{
			Kind: check.KindUnlock, Addr: uint64(uint32(id)), Inv: t0, Resp: pe.app.Now(),
		})
	}
	pe.sendSync(wire.OpLockRelease, id)
}

// SemWait downs semaphore id, blocking while its value is zero.
func (pe *PE) SemWait(id int32) {
	pe.legacyCrossing()
	start := pe.app.Now()
	pe.sendSync(wire.OpSemWait, id)
	m := pe.takeSync()
	if m.Op != wire.OpSemGrant || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected sem %d grant, got %v", pe.k.id, id, m))
	}
	wire.PutMessage(m)
	pe.extra.WaitTime += pe.app.Now() - start
	// Acquire edge, like a lock grant.
	pe.clearLeases()
}

// SemPost ups semaphore id. A release edge: the flush's own KindFlush event
// is the fence the checker orders the published writes by.
func (pe *PE) SemPost(id int32) {
	pe.legacyCrossing()
	pe.flushWC(pe.app.Now())
	pe.sendSync(wire.OpSemPost, id)
}

// sendSync sends a synchronisation request to the central manager at
// kernel 0 using a pooled message.
func (pe *PE) sendSync(op wire.Op, id int32) {
	m := wire.GetMessage()
	m.Op, m.Src, m.Tag = op, int32(pe.k.id), id
	pe.app.Send(0, m)
	wire.PutMessage(m)
}

func (pe *PE) takeSync() *wire.Message {
	d := pe.k.requestTimeout()
	if pe.k.cfg.Ckpt != nil {
		// Under checkpoint/restart the kernels wake blocked sync waits with
		// OpPeerDown (below), so liveness does not need the lost-message
		// timeout — which would misfire on legitimately long checkpoint
		// barrier waits. Recovery runs forbid frame loss for exactly this
		// reason (DESIGN.md §10): a lost fire-and-forget arrival is the one
		// wedge the wake cannot break.
		d = 0
	}
	var m *wire.Message
	if d > 0 {
		var ok, timedOut bool
		m, ok, timedOut = pe.k.syncMb.TakeTimeout(d)
		if timedOut {
			panic(fmt.Sprintf("core: PE %d: synchronisation wait timed out after %v", pe.k.id, d))
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down during synchronisation", pe.k.id))
		}
	} else {
		var ok bool
		m, ok = pe.k.syncMb.Take()
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down during synchronisation", pe.k.id))
		}
	}
	if m.Op == wire.OpPeerDown {
		// A peer died while we were blocked (kernels feed this only under
		// Config.Ckpt). The wait can never be satisfied — under recovery any
		// peer death rolls the whole cluster back, so fail fast with a typed
		// error the recovery coordinator can classify through the panic.
		peer := int(m.Src)
		wire.PutMessage(m)
		panic(&PeerDownError{PE: pe.k.id, Peer: peer, Op: "sync-wait"})
	}
	return m
}

// --- Coordinated checkpoint/restart ---

// ckptBarrierBase is the reserved barrier-tag region the checkpoint protocol
// rendezvouses at. The three phase tags alternate between two disjoint sets
// by epoch parity, so a straggler's late arrival at the previous epoch's
// barrier can never be miscounted into the next epoch's round at the central
// manager. Application code must not use these ids.
const ckptBarrierBase int32 = -0x7ffe0000

// RegisterCheckpoint installs the application's state hooks: save serialises
// the PE's progress into the snapshot (called inside every Checkpoint, at
// the quiesce barrier), restore rebuilds it from a snapshot blob. When this
// run was itself started from a snapshot, restore is invoked immediately
// with the restored blob and RegisterCheckpoint reports true — the program
// resumes from its checkpointed progress instead of from scratch.
func (pe *PE) RegisterCheckpoint(save func() []byte, restore func([]byte)) (restored bool) {
	pe.saveFn = save
	if pe.restored && restore != nil {
		restore(pe.restoredApp)
	}
	return pe.restored
}

// ViewGeneration reports how many recoveries this cluster has gone through:
// 0 for a fresh run, N after the N-th restart from a snapshot.
func (pe *PE) ViewGeneration() uint64 { return pe.viewGen }

// CheckpointEpoch reports the last completed checkpoint epoch (0 = none).
func (pe *PE) CheckpointEpoch() uint64 { return pe.ckptEpoch }

// Checkpoint takes one coordinated cluster snapshot: a collective every PE
// must call (like Barrier). The protocol is a Chandy-Lamport marker round
// degenerated to its quiesced special case — a barrier quiesces all
// application traffic, so there are no in-flight application sends to
// record, and each kernel's marker response carries its entire slice of
// global memory plus the coherence directory:
//
//	barrier(quiesce) -> save app blob + OpCkptMark to own kernel ->
//	Store.WriteSlice -> barrier(durable) -> PE 0 commits the generation and
//	GCs old ones -> barrier(commit-visible)
//
// A nil Config.Ckpt makes Checkpoint a no-op, so programs need no gating.
// Store errors are returned on the PE that observed them; every PE still
// passes all three barriers (no wedge), and a generation with a failed
// slice is never committed. Cluster failures (peer death, shutdown) panic
// like the rest of the Parallel API.
func (pe *PE) Checkpoint() error {
	k := pe.k
	cc := k.cfg.Ckpt
	if cc == nil {
		return nil
	}
	start := pe.app.Now()
	epoch := pe.ckptEpoch + 1
	tag := func(phase int32) int32 { return ckptBarrierBase - int32(3*(epoch%2)) - phase }

	pe.BarrierID(tag(0)) // quiesce: no application request is in flight past here
	var blob []byte
	if pe.saveFn != nil {
		blob = pe.saveFn()
	}
	req := wire.GetMessage()
	req.Op, req.Tag = wire.OpCkptMark, int32(epoch)
	resp, err := pe.requestErr(k.id, req)
	wire.PutMessage(req)
	var data []byte
	if err == nil {
		data = ckpt.EncodeSlice(ckpt.Slice{
			Epoch:    epoch,
			MarkTime: sim.Time(resp.Arg1),
			App:      blob,
			Kernel:   resp.Data,
		})
		wire.PutMessage(resp)
		err = cc.Store.WriteSlice(epoch, k.id, data)
	}

	pe.BarrierID(tag(1)) // durable: every slice of the generation is staged
	if k.id == 0 && err == nil {
		// Commit refuses a generation with any missing slice, so a peer's
		// write failure cannot half-commit; its error surfaces on that PE.
		if cerr := cc.Store.Commit(epoch, k.n); cerr != nil {
			err = cerr
		} else if gerr := cc.Store.GC(cc.Keep); gerr != nil {
			err = gerr
		}
	}
	pe.BarrierID(tag(2)) // commit-visible: recovery may now target this epoch

	// Epochs advance on every PE regardless of local errors, keeping the
	// collective's tags aligned for the next round.
	pe.ckptEpoch = epoch
	if err != nil {
		return err
	}
	pe.extra.Checkpoints++
	pe.extra.SnapshotBytes += uint64(len(data))
	if pe.spans != nil {
		pe.spans.Record(trace.Span{
			Kind: trace.SpanCkpt, PE: int32(k.id), Seq: epoch,
			Start: start, End: pe.app.Now(),
		})
	}
	return nil
}

// --- Collectives (built on the message exchange mechanism) ---

// Internal user-message tags; application tags must be non-negative.
const (
	tagReduceUp   int32 = -2
	tagReduceDown int32 = -3
)

// AllReduceF combines one float64 contribution from every PE with op
// (which must be commutative and associative) and returns the combined
// value on all of them: a gather to PE 0 and a broadcast back, 2(N-1)
// messages. It also acts as a synchronisation point: every PE's preceding
// global-memory writes are completed (acknowledged) before any PE receives
// the result — under release consistency that contract is kept by flushing
// the write-combining buffer before the contribution is sent, and lease-mode
// read caches are dropped so post-reduce reads observe post-reduce state.
func (pe *PE) AllReduceF(x float64, op func(a, b float64) float64) float64 {
	pe.syncFence()
	n := pe.N()
	if n == 1 {
		return x
	}
	if pe.ID() != 0 {
		pe.SendMsg(0, tagReduceUp, f64Bytes(x))
		_, data := pe.RecvMsg(tagReduceDown)
		return f64FromBytes(data)
	}
	acc := x
	for i := 1; i < n; i++ {
		_, data := pe.RecvMsg(tagReduceUp)
		acc = op(acc, f64FromBytes(data))
	}
	out := f64Bytes(acc)
	for i := 1; i < n; i++ {
		pe.SendMsg(i, tagReduceDown, out)
	}
	return acc
}

func f64Bytes(x float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	return b[:]
}

func f64FromBytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// AllReduceSum sums one float64 contribution per PE.
func (pe *PE) AllReduceSum(x float64) float64 {
	return pe.AllReduceF(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum over one float64 contribution per PE.
func (pe *PE) AllReduceMax(x float64) float64 {
	return pe.AllReduceF(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// --- PE-to-PE messages ---

// SendMsg delivers payload to PE dst under tag. It does not wait for the
// receiver. Application tags must be non-negative; negative tags are
// reserved for the runtime's own collectives.
func (pe *PE) SendMsg(dst int, tag int32, payload []byte) {
	pe.legacyCrossing()
	m := wire.GetMessage()
	m.Op, m.Src, m.Dst, m.Tag = wire.OpUserMsg, int32(pe.k.id), int32(dst), tag
	m.Data = payload // caller's buffer; fully serialised before Send returns
	pe.app.Send(dst, m)
	wire.PutMessage(m)
}

// RecvMsg blocks until a message with tag arrives, returning its sender
// and payload.
func (pe *PE) RecvMsg(tag int32) (src int, payload []byte) {
	pe.legacyCrossing()
	mb := pe.k.userMb(tag)
	start := pe.app.Now()
	var m *wire.Message
	if d := pe.k.requestTimeout(); d > 0 {
		var ok, timedOut bool
		m, ok, timedOut = mb.TakeTimeout(d)
		if timedOut {
			panic(fmt.Sprintf("core: PE %d: RecvMsg(tag=%d) timed out after %v", pe.k.id, tag, d))
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down in RecvMsg", pe.k.id))
		}
	} else {
		var ok bool
		m, ok = mb.Take()
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down in RecvMsg", pe.k.id))
		}
	}
	pe.extra.WaitTime += pe.app.Now() - start
	return int(m.Src), m.Data
}

// --- Process management / SSI ---

// register announces this DSE process to the global process table.
func (pe *PE) register() {
	req := wire.GetMessage()
	req.Op, req.Data = wire.OpProcRegister, []byte(pe.Hostname())
	resp := pe.request(0, req)
	wire.PutMessage(req)
	pe.gpid = resp.Arg1
	wire.PutMessage(resp)
}

// exit records this DSE process's termination.
func (pe *PE) exit(code int64) {
	req := wire.GetMessage()
	req.Op, req.Arg1, req.Arg2 = wire.OpProcExit, pe.gpid, code
	resp := pe.request(0, req)
	wire.PutMessage(req)
	wire.PutMessage(resp)
}

// Processes returns the cluster-global process table: the single-system
// image of everything running on the virtual machine.
func (pe *PE) Processes() []procmgmt.Entry {
	req := wire.GetMessage()
	req.Op = wire.OpProcList
	resp := pe.request(0, req)
	wire.PutMessage(req)
	entries, err := procmgmt.DecodeSnapshot(resp.Data)
	wire.PutMessage(resp)
	if err != nil {
		panic(fmt.Sprintf("core: PE %d: corrupt process table: %v", pe.k.id, err))
	}
	return entries
}

// Ping round-trips a liveness probe to kernel dst and reports the latency.
// Panics on failure.
func (pe *PE) Ping(dst int) sim.Duration {
	d, err := pe.PingErr(dst)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// PingErr is Ping with failures surfaced as errors: a dead peer reports
// *PeerDownError (fast, via the transport's failure detector) or
// *TimeoutError, an unreachable but undetected one only the latter.
func (pe *PE) PingErr(dst int) (sim.Duration, error) {
	start := pe.app.Now()
	req := wire.GetMessage()
	req.Op = wire.OpPing
	resp, err := pe.requestErr(dst, req)
	wire.PutMessage(req)
	if err != nil {
		return 0, err
	}
	wire.PutMessage(resp)
	return pe.app.Now() - start, nil
}

// CacheStats reports cache hits, misses and invalidations (zeros when the
// caching protocol is disabled).
func (pe *PE) CacheStats() (hits, misses, invalidations uint64) {
	if pe.k.cache == nil {
		return 0, 0, 0
	}
	return pe.k.cache.Stats()
}
