package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PE is the application's view of one processor element: the Parallel API
// Library of the paper. A PE value is used by exactly one goroutine (or sim
// process) — the DSE process — and mediates every interaction with the
// cluster: global memory, synchronisation, messages and process management.
type PE struct {
	k     *Kernel
	app   transport.Port
	alloc *gmem.Allocator
	gpid  int64
	extra trace.PEStats   // app-context counters merged into the result
	rtt   trace.Histogram // request round-trip latency distribution
}

func newPE(k *Kernel) *PE {
	return &PE{
		k:     k,
		app:   k.node.App(),
		alloc: gmem.NewAllocator(k.space),
	}
}

// ID returns this PE's kernel id in [0, N).
func (pe *PE) ID() int { return pe.k.id }

// N returns the number of PEs in the cluster.
func (pe *PE) N() int { return pe.k.n }

// Hostname names the physical machine hosting this PE. Under a virtual
// cluster several PEs share one.
func (pe *PE) Hostname() string { return pe.k.node.Hostname() }

// GPID returns the cluster-global process id assigned at registration.
func (pe *PE) GPID() int64 { return pe.gpid }

// Now returns the PE's clock (virtual time under simulation).
func (pe *PE) Now() sim.Time { return pe.app.Now() }

// Compute charges the cost of ops application operations (roughly flops)
// against this PE.
func (pe *PE) Compute(ops float64) { pe.app.Compute(ops) }

// Alloc reserves n global-memory words. Allocation is deterministic: every
// PE of the SPMD program performs the same Alloc sequence and obtains the
// same addresses without communicating.
func (pe *PE) Alloc(n int) uint64 { return pe.alloc.Alloc(n) }

// AllocBlocks reserves n words starting on a block boundary.
func (pe *PE) AllocBlocks(n int) uint64 { return pe.alloc.AllocBlocks(n) }

// Space exposes the global address-space geometry.
func (pe *PE) Space() gmem.Space { return pe.k.space }

// legacyCrossing charges the old two-process organisation's IPC round trip
// at the top of a Parallel-API call (no-op in the reorganised design).
func (pe *PE) legacyCrossing() {
	if pe.k.cfg.Legacy {
		pe.app.LegacyIPC()
	}
}

// request sends m to kernel dst and blocks until the response arrives.
// Request time beyond the send-side overhead is accounted as wait time.
func (pe *PE) request(dst int, m *wire.Message) *wire.Message {
	k := pe.k
	mb := k.node.NewMailbox(1)
	m.Src = int32(k.id)
	m.Dst = int32(dst)
	m.Seq = k.addPending(mb)
	start := pe.app.Now()
	pe.app.Send(dst, m)
	var resp *wire.Message
	var ok bool
	if d := k.requestTimeout(); d > 0 {
		var timedOut bool
		resp, ok, timedOut = mb.TakeTimeout(d)
		if timedOut {
			k.dropPending(m.Seq)
			panic(fmt.Sprintf("core: PE %d: %v request to kernel %d timed out after %v", k.id, m.Op, dst, d))
		}
	} else {
		resp, ok = mb.Take()
	}
	if !ok {
		panic(fmt.Sprintf("core: PE %d: cluster shut down during %v request", k.id, m.Op))
	}
	rtt := pe.app.Now() - start
	pe.extra.WaitTime += rtt
	pe.rtt.Observe(rtt)
	return resp
}

// --- Global memory: word operations ---

// GMRead reads the global-memory word at addr.
func (pe *PE) GMRead(addr uint64) int64 {
	pe.legacyCrossing()
	k := pe.k
	if k.cache != nil {
		if v, ok := k.cache.Lookup(addr); ok {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			return v
		}
		if k.space.HomeOf(addr) == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			return k.seg.Read(addr, 1)[0]
		}
		pe.extra.RemoteGM++
		resp := pe.request(k.space.HomeOf(addr), &wire.Message{Op: wire.OpRead, Addr: addr, Arg2: 1})
		blk := resp.Words()
		k.cache.Insert(addr, blk)
		return blk[addr%uint64(k.space.BlockWords)]
	}
	if k.space.HomeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		return k.seg.Read(addr, 1)[0]
	}
	pe.extra.RemoteGM++
	resp := pe.request(k.space.HomeOf(addr), &wire.Message{Op: wire.OpRead, Addr: addr, Arg1: 1})
	return resp.Words()[0]
}

// GMWrite stores v at addr.
func (pe *PE) GMWrite(addr uint64, v int64) {
	pe.legacyCrossing()
	k := pe.k
	if k.cache == nil && k.space.HomeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		k.seg.Write(addr, []int64{v})
		return
	}
	// Under caching every mutation goes through the home's invalidation
	// machinery, including our own home (via the own-node message path).
	// The writer drops its own cached copy too: a kept-warm copy would no
	// longer be registered in the home's directory, so later writes by
	// other PEs could not invalidate it.
	pe.extra.RemoteGM++
	m := &wire.Message{Op: wire.OpWrite, Addr: addr}
	m.PutWords([]int64{v})
	pe.request(k.space.HomeOf(addr), m)
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
}

// FetchAdd atomically adds delta to the word at addr, returning the old
// value. The primitive behind job pools and work counters.
func (pe *PE) FetchAdd(addr uint64, delta int64) int64 {
	pe.legacyCrossing()
	k := pe.k
	if k.cache == nil && k.space.HomeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		return k.seg.FetchAdd(addr, delta)
	}
	pe.extra.RemoteGM++
	resp := pe.request(k.space.HomeOf(addr), &wire.Message{Op: wire.OpFetchAdd, Addr: addr, Arg1: delta})
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
	return resp.Arg1
}

// CAS atomically compares-and-swaps the word at addr; it returns the
// previous value and whether the swap happened.
func (pe *PE) CAS(addr uint64, old, new int64) (int64, bool) {
	pe.legacyCrossing()
	k := pe.k
	if k.cache == nil && k.space.HomeOf(addr) == k.id {
		pe.app.LocalAccess()
		pe.extra.LocalGM++
		return k.seg.CAS(addr, old, new)
	}
	pe.extra.RemoteGM++
	resp := pe.request(k.space.HomeOf(addr), &wire.Message{Op: wire.OpCAS, Addr: addr, Arg1: old, Arg2: new})
	if k.cache != nil {
		k.cache.Invalidate(addr)
	}
	return resp.Arg1, resp.Arg2 == 1
}

// --- Global memory: block operations ---

// blockPart is one outstanding piece of a pipelined block transfer.
type blockPart struct {
	mb    transport.Mailbox
	op    wire.Op
	local []int64 // filled immediately for locally-homed runs
}

// sendAsync issues a request without waiting for its reply.
func (pe *PE) sendAsync(dst int, m *wire.Message) transport.Mailbox {
	k := pe.k
	mb := k.node.NewMailbox(1)
	m.Src = int32(k.id)
	m.Dst = int32(dst)
	m.Seq = k.addPending(mb)
	pe.app.Send(dst, m)
	return mb
}

// awaitParts collects the replies of a pipelined transfer in issue order,
// charging the wait once. The DSE kernel's asynchronous-I/O design lets a
// DSE process keep several requests in flight, so a block transfer
// overlaps the round trips of its per-home runs.
func (pe *PE) awaitParts(parts []blockPart) []*wire.Message {
	start := pe.app.Now()
	out := make([]*wire.Message, len(parts))
	for i, part := range parts {
		if part.mb == nil {
			continue
		}
		var resp *wire.Message
		var ok bool
		if d := pe.k.requestTimeout(); d > 0 {
			var timedOut bool
			resp, ok, timedOut = part.mb.TakeTimeout(d)
			if timedOut {
				panic(fmt.Sprintf("core: PE %d: %v block transfer timed out after %v", pe.k.id, part.op, d))
			}
		} else {
			resp, ok = part.mb.Take()
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down during block transfer", pe.k.id))
		}
		out[i] = resp
	}
	pe.extra.WaitTime += pe.app.Now() - start
	return out
}

// GMReadBlock reads n words starting at addr, splitting the range across
// homes as needed; the per-home requests are pipelined. Block reads bypass
// the read cache (they are always served fresh by the homes).
func (pe *PE) GMReadBlock(addr uint64, n int) []int64 {
	pe.legacyCrossing()
	var parts []blockPart
	pe.k.space.HomeRuns(addr, n, func(home int, start uint64, count int) {
		if home == pe.k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			parts = append(parts, blockPart{local: pe.k.seg.Read(start, count)})
			return
		}
		pe.extra.RemoteGM++
		mb := pe.sendAsync(home, &wire.Message{Op: wire.OpRead, Addr: start, Arg1: int64(count)})
		parts = append(parts, blockPart{mb: mb, op: wire.OpRead})
	})
	resps := pe.awaitParts(parts)
	out := make([]int64, 0, n)
	for i, part := range parts {
		if part.mb == nil {
			out = append(out, part.local...)
			continue
		}
		out = append(out, resps[i].Words()...)
	}
	return out
}

// GMWriteBlock stores words starting at addr, splitting across homes with
// pipelined per-home writes.
func (pe *PE) GMWriteBlock(addr uint64, words []int64) {
	pe.legacyCrossing()
	k := pe.k
	var parts []blockPart
	k.space.HomeRuns(addr, len(words), func(home int, start uint64, count int) {
		chunk := words[start-addr : start-addr+uint64(count)]
		if k.cache == nil && home == k.id {
			pe.app.LocalAccess()
			pe.extra.LocalGM++
			k.seg.Write(start, chunk)
			return
		}
		pe.extra.RemoteGM++
		m := &wire.Message{Op: wire.OpWrite, Addr: start}
		m.PutWords(chunk)
		mb := pe.sendAsync(home, m)
		parts = append(parts, blockPart{mb: mb, op: wire.OpWrite})
		if k.cache != nil {
			k.cache.Invalidate(start)
		}
	})
	pe.awaitParts(parts)
}

// --- Global memory: float64 convenience ---

// GMReadF reads a float64 stored at addr.
func (pe *PE) GMReadF(addr uint64) float64 { return gmem.W2F(pe.GMRead(addr)) }

// GMWriteF stores a float64 at addr.
func (pe *PE) GMWriteF(addr uint64, v float64) { pe.GMWrite(addr, gmem.F2W(v)) }

// GMReadBlockF reads n float64 values starting at addr.
func (pe *PE) GMReadBlockF(addr uint64, n int) []float64 {
	ws := pe.GMReadBlock(addr, n)
	fs := make([]float64, len(ws))
	for i, w := range ws {
		fs[i] = gmem.W2F(w)
	}
	return fs
}

// GMWriteBlockF stores float64 values starting at addr.
func (pe *PE) GMWriteBlockF(addr uint64, vs []float64) {
	ws := make([]int64, len(vs))
	for i, v := range vs {
		ws[i] = gmem.F2W(v)
	}
	pe.GMWriteBlock(addr, ws)
}

// --- Synchronisation ---

// Barrier blocks until every PE has reached it (barrier id 0).
func (pe *PE) Barrier() { pe.BarrierID(0) }

// BarrierID blocks on the barrier with the given id; distinct ids are
// independent barriers.
func (pe *PE) BarrierID(id int32) {
	pe.legacyCrossing()
	k := pe.k
	pe.extra.Barriers++
	dst := 0
	if k.cfg.Barrier == BarrierTree {
		dst = k.id // tree arrivals start at the local kernel
	}
	start := pe.app.Now()
	pe.app.Send(dst, &wire.Message{Op: wire.OpBarrierArrive, Src: int32(k.id), Dst: int32(dst), Tag: id})
	m := pe.takeSync()
	if m.Op != wire.OpBarrierRelease || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected barrier %d release, got %v", k.id, id, m))
	}
	pe.extra.WaitTime += pe.app.Now() - start
}

// Lock acquires the cluster-wide lock id (FIFO, managed by kernel 0).
func (pe *PE) Lock(id int32) {
	pe.legacyCrossing()
	pe.extra.Locks++
	start := pe.app.Now()
	pe.app.Send(0, &wire.Message{Op: wire.OpLockAcquire, Src: int32(pe.k.id), Tag: id})
	m := pe.takeSync()
	if m.Op != wire.OpLockGrant || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected lock %d grant, got %v", pe.k.id, id, m))
	}
	pe.extra.WaitTime += pe.app.Now() - start
}

// Unlock releases lock id.
func (pe *PE) Unlock(id int32) {
	pe.legacyCrossing()
	pe.app.Send(0, &wire.Message{Op: wire.OpLockRelease, Src: int32(pe.k.id), Tag: id})
}

// SemWait downs semaphore id, blocking while its value is zero.
func (pe *PE) SemWait(id int32) {
	pe.legacyCrossing()
	start := pe.app.Now()
	pe.app.Send(0, &wire.Message{Op: wire.OpSemWait, Src: int32(pe.k.id), Tag: id})
	m := pe.takeSync()
	if m.Op != wire.OpSemGrant || m.Tag != id {
		panic(fmt.Sprintf("core: PE %d: expected sem %d grant, got %v", pe.k.id, id, m))
	}
	pe.extra.WaitTime += pe.app.Now() - start
}

// SemPost ups semaphore id.
func (pe *PE) SemPost(id int32) {
	pe.legacyCrossing()
	pe.app.Send(0, &wire.Message{Op: wire.OpSemPost, Src: int32(pe.k.id), Tag: id})
}

func (pe *PE) takeSync() *wire.Message {
	if d := pe.k.requestTimeout(); d > 0 {
		m, ok, timedOut := pe.k.syncMb.TakeTimeout(d)
		if timedOut {
			panic(fmt.Sprintf("core: PE %d: synchronisation wait timed out after %v", pe.k.id, d))
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down during synchronisation", pe.k.id))
		}
		return m
	}
	m, ok := pe.k.syncMb.Take()
	if !ok {
		panic(fmt.Sprintf("core: PE %d: cluster shut down during synchronisation", pe.k.id))
	}
	return m
}

// --- Collectives (built on the message exchange mechanism) ---

// Internal user-message tags; application tags must be non-negative.
const (
	tagReduceUp   int32 = -2
	tagReduceDown int32 = -3
)

// AllReduceF combines one float64 contribution from every PE with op
// (which must be commutative and associative) and returns the combined
// value on all of them: a gather to PE 0 and a broadcast back, 2(N-1)
// messages. It also acts as a synchronisation point: every PE's preceding
// global-memory writes are completed (acknowledged) before any PE receives
// the result.
func (pe *PE) AllReduceF(x float64, op func(a, b float64) float64) float64 {
	n := pe.N()
	if n == 1 {
		return x
	}
	if pe.ID() != 0 {
		pe.SendMsg(0, tagReduceUp, f64Bytes(x))
		_, data := pe.RecvMsg(tagReduceDown)
		return f64FromBytes(data)
	}
	acc := x
	for i := 1; i < n; i++ {
		_, data := pe.RecvMsg(tagReduceUp)
		acc = op(acc, f64FromBytes(data))
	}
	out := f64Bytes(acc)
	for i := 1; i < n; i++ {
		pe.SendMsg(i, tagReduceDown, out)
	}
	return acc
}

func f64Bytes(x float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	return b[:]
}

func f64FromBytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// AllReduceSum sums one float64 contribution per PE.
func (pe *PE) AllReduceSum(x float64) float64 {
	return pe.AllReduceF(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum over one float64 contribution per PE.
func (pe *PE) AllReduceMax(x float64) float64 {
	return pe.AllReduceF(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// --- PE-to-PE messages ---

// SendMsg delivers payload to PE dst under tag. It does not wait for the
// receiver. Application tags must be non-negative; negative tags are
// reserved for the runtime's own collectives.
func (pe *PE) SendMsg(dst int, tag int32, payload []byte) {
	pe.legacyCrossing()
	pe.app.Send(dst, &wire.Message{Op: wire.OpUserMsg, Src: int32(pe.k.id), Dst: int32(dst), Tag: tag, Data: payload})
}

// RecvMsg blocks until a message with tag arrives, returning its sender
// and payload.
func (pe *PE) RecvMsg(tag int32) (src int, payload []byte) {
	pe.legacyCrossing()
	mb := pe.k.userMb(tag)
	start := pe.app.Now()
	var m *wire.Message
	if d := pe.k.requestTimeout(); d > 0 {
		var ok, timedOut bool
		m, ok, timedOut = mb.TakeTimeout(d)
		if timedOut {
			panic(fmt.Sprintf("core: PE %d: RecvMsg(tag=%d) timed out after %v", pe.k.id, tag, d))
		}
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down in RecvMsg", pe.k.id))
		}
	} else {
		var ok bool
		m, ok = mb.Take()
		if !ok {
			panic(fmt.Sprintf("core: PE %d: cluster shut down in RecvMsg", pe.k.id))
		}
	}
	pe.extra.WaitTime += pe.app.Now() - start
	return int(m.Src), m.Data
}

// --- Process management / SSI ---

// register announces this DSE process to the global process table.
func (pe *PE) register() {
	resp := pe.request(0, &wire.Message{Op: wire.OpProcRegister, Data: []byte(pe.Hostname())})
	pe.gpid = resp.Arg1
}

// exit records this DSE process's termination.
func (pe *PE) exit(code int64) {
	pe.request(0, &wire.Message{Op: wire.OpProcExit, Arg1: pe.gpid, Arg2: code})
}

// Processes returns the cluster-global process table: the single-system
// image of everything running on the virtual machine.
func (pe *PE) Processes() []procmgmt.Entry {
	resp := pe.request(0, &wire.Message{Op: wire.OpProcList})
	entries, err := procmgmt.DecodeSnapshot(resp.Data)
	if err != nil {
		panic(fmt.Sprintf("core: PE %d: corrupt process table: %v", pe.k.id, err))
	}
	return entries
}

// Ping round-trips a liveness probe to kernel dst and reports the latency.
func (pe *PE) Ping(dst int) sim.Duration {
	start := pe.app.Now()
	pe.request(dst, &wire.Message{Op: wire.OpPing})
	return pe.app.Now() - start
}

// CacheStats reports cache hits, misses and invalidations (zeros when the
// caching protocol is disabled).
func (pe *PE) CacheStats() (hits, misses, invalidations uint64) {
	if pe.k.cache == nil {
		return 0, 0, 0
	}
	return pe.k.cache.Stats()
}
