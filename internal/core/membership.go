package core

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/wire"
)

// Elastic membership: PEs join and leave a running cluster with no restart,
// and block ranges re-home while requests are in flight (DESIGN.md §13).
//
// The invariants the protocol leans on:
//
//   - The directory's probe rule gives a join exactly one prior holder (the
//     joiner's successor) and a leave exactly one handoff target, so both
//     are single pairwise handoffs.
//   - The home-side dedup check runs BEFORE the ownership check, so a retry
//     of an already-applied mutation is absorbed at the old home instead of
//     being NACKed to the new one — no dedup state ever needs to move.
//   - The old home updates its directory before fencing and extracting, so
//     from the first moment a block's data can disappear, every fresh
//     request is NACKed with the new home's address; the requester retries
//     with the same sequence number and the new home's window keeps the
//     operation exactly-once.
//   - Extracted blocks sit in escrow until the commit (or epoch update)
//     arrives; any request hitting an escrowed block re-offers the block to
//     its destination first, so a migration whose initiator died heals
//     through normal traffic.

// OpMigrateStart modes (wire Arg1).
const (
	migModeBlock int64 = iota // re-home one block to an explicit destination
	migModeJoin               // successor hands a joiner its probe-rule slice
	migModeLeave              // leaver extracts everything for its successor
)

// maxMigrateBounces bounds how many consecutive new-home redirects one
// request follows before giving up (a cycle of stale hints would otherwise
// never terminate).
const maxMigrateBounces = 64

// grantRetries bounds how long a PE waits for the cluster-wide membership
// transition slot before its Join/Leave fails.
const grantRetries = 64

// --- Kernel-side service (serial loop) ---

// homeOf is the directory-aware home lookup: the pure block-cyclic layout
// while the directory is static, the probe rule plus overrides otherwise.
func (k *Kernel) homeOf(addr uint64) int {
	if k.dir.Static() {
		return k.space.HomeOf(addr)
	}
	return k.dir.HomeOf(k.space, addr)
}

// homeRuns splits [addr, addr+n) into single-home runs like
// gmem.Space.HomeRuns, but against the live directory. Runs never cross a
// block boundary, matching the static splitter's invariant.
func (k *Kernel) homeRuns(addr uint64, n int, fn func(home int, start uint64, count int)) {
	if k.dir.Static() {
		k.space.HomeRuns(addr, n, fn)
		return
	}
	bw := uint64(k.space.BlockWords)
	end := addr + uint64(n)
	for start := addr; start < end; {
		b := start / bw
		stop := (b + 1) * bw
		if stop > end {
			stop = end
		}
		fn(k.dir.HomeOfBlock(b), start, int(stop-start))
		start = stop
	}
}

// escrowPut parks an extracted block until its commit (or epoch update).
func (k *Kernel) escrowPut(b gmem.BlockSnapshot, dst int) {
	k.escrowMu.Lock()
	k.escrow[b.Index] = escrowEntry{dst: dst, block: b}
	k.escrowMu.Unlock()
}

// escrowLookup returns the escrow entry for block b, if any. Safe from shard
// workers.
func (k *Kernel) escrowLookup(b uint64) (escrowEntry, bool) {
	k.escrowMu.Lock()
	e, ok := k.escrow[b]
	k.escrowMu.Unlock()
	return e, ok
}

// escrowSweep drops every escrowed block whose destination the directory now
// agrees owns it — the handoff is visible cluster-wide, the crash net is no
// longer needed.
func (k *Kernel) escrowSweep() {
	k.escrowMu.Lock()
	for b, e := range k.escrow {
		if k.dir.HomeOfBlock(b) == e.dst {
			delete(k.escrow, b)
		}
	}
	k.escrowMu.Unlock()
}

// dirSnapshot captures the membership directory and escrow for a checkpoint
// mark. It returns nil — the V1 encoding — while the directory is static and
// no handoff is in flight, so static clusters produce byte-identical
// snapshots to earlier versions.
func (k *Kernel) dirSnapshot() *ckpt.DirectorySnapshot {
	k.escrowMu.Lock()
	var esc []ckpt.EscrowSnapshot
	for _, e := range k.escrow {
		esc = append(esc, ckpt.EscrowSnapshot{Dst: e.dst, Block: e.block})
	}
	k.escrowMu.Unlock()
	sort.Slice(esc, func(i, j int) bool { return esc[i].Block.Index < esc[j].Block.Index })
	if k.dir.Static() && len(esc) == 0 {
		return nil
	}
	ds := &ckpt.DirectorySnapshot{Epoch: k.dir.Epoch(), Escrow: esc}
	for _, m := range k.dir.Members() {
		ds.Members = append(ds.Members, ckpt.MemberSnapshot{State: uint64(m.State), Gen: m.Gen})
	}
	for b, h := range k.dir.Overrides() {
		ds.Overrides = append(ds.Overrides, [2]uint64{b, uint64(h)})
	}
	sort.Slice(ds.Overrides, func(i, j int) bool { return ds.Overrides[i][0] < ds.Overrides[j][0] })
	return ds
}

// sendNack answers a serial-loop request with a migrate NACK hinting home.
// Like the shard-side NACK, it is deliberately NOT cached in the dedup
// window (the in-progress entry the lookup registered is forgotten): a NACK
// is side-effect-free and recomputed on a retry, while a cached one would
// keep masking the sequence number after ownership changes again.
func (k *Kernel) sendNack(m *wire.Message, home int) {
	k.dedup.forget(m.Src, m.Seq)
	resp := wire.GetMessage()
	resp.Op, resp.Arg1 = wire.OpMigrateNack, int64(home)
	resp.Src, resp.Dst, resp.Seq = int32(k.id), m.Src, m.Seq
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
}

// dropCorrupt counts a malformed membership request and releases the
// in-progress dedup entry its lookup registered. Dropping without the forget
// would make the silence permanent: the initiator's retry — which resends the
// payload precisely so a truncated one can be re-evaluated — would be
// absorbed by dedupCheck as an in-progress duplicate, and the Join/Leave/
// MigrateRange driving it would hang forever.
func (k *Kernel) dropCorrupt(m *wire.Message) {
	k.extra.CorruptDrops++
	k.dedup.forget(m.Src, m.Seq)
}

// handleMigrateStart is the old-home half of a handoff. The order is the
// protocol's safety core: (1) the directory flips first, so ownership checks
// start NACKing fresh requests toward the new home; (2) the shard fence
// completes everything already accepted (ring drains filter what the flip
// disowned); (3) only then are the blocks extracted. A write can therefore
// never land in a block after its snapshot was taken.
func (k *Kernel) handleMigrateStart(m *wire.Message) {
	var flips func(b uint64) bool
	switch m.Arg1 {
	case migModeBlock:
		b := k.space.BlockOf(m.Addr)
		dst := int(m.Arg2)
		if dst < 0 || dst >= k.n {
			k.dropCorrupt(m)
			return
		}
		if !k.dir.Owns(k.id, b) {
			k.sendNack(m, k.dir.HomeOfBlock(b))
			return
		}
		if dst == k.id {
			// The initiator's view was stale: a NACK redirect landed this
			// start at its own destination. Extracting here would park the
			// block in escrow-to-self while lazy faulting resurrects a
			// phantom zero block (and the sweep then drops the real data).
			// The block is already home — succeed with an empty payload.
			resp := wire.GetMessage()
			resp.Op = wire.OpMigrateStartResp
			resp.Data = ckpt.EncodeKernelState(k.cfg.GMBlockWords, nil)
			k.reply(m, resp)
			return
		}
		k.dir.SetOverride(b, dst)
		flips = func(bb uint64) bool { return bb == b }
	case migModeJoin:
		j := int(m.Arg2)
		if j < 0 || j >= k.n {
			k.dropCorrupt(m)
			return
		}
		// Mark the joiner active in our view: every block whose probe now
		// stops at it flips away from us.
		k.dir.SetMember(j, gmem.MemberActive, m.Addr)
		flips = func(b uint64) bool { return !k.dir.Owns(k.id, b) }
	case migModeLeave:
		succ, ok := k.dir.Successor(k.id)
		if !ok {
			k.sendNack(m, k.id)
			return
		}
		// Redirect our explicitly-migrated blocks to the successor, then
		// step out of the probe rule; everything we held flips away.
		k.dir.RewriteOverrides(k.id, succ)
		k.dir.SetMember(k.id, gmem.MemberLeft, m.Addr)
		flips = func(b uint64) bool { return !k.dir.Owns(k.id, b) }
	default:
		k.dropCorrupt(m)
		return
	}
	k.migGen.Add(1)
	k.fenceShards()
	blocks := k.seg.Extract(flips)
	for _, b := range blocks {
		k.escrowPut(b, k.dir.HomeOfBlock(b.Index))
	}
	k.extra.Migrations++
	k.extra.MigratedBlocks += uint64(len(blocks))
	resp := wire.GetMessage()
	resp.Op = wire.OpMigrateStartResp
	resp.Arg1 = int64(len(blocks))
	if m.Arg1 == migModeBlock {
		resp.Data = ckpt.EncodeKernelState(k.cfg.GMBlockWords, blocks)
	} else {
		// Join/leave handoffs also carry this kernel's directory view. The
		// installee is about to become the probe-rule home for the moving
		// slice, and blocks in that slice may have uncommitted explicit
		// overrides it has never heard of: without the table it would treat
		// such a block as its own, lazily materialise a zero block and
		// accept writes that the delayed commit later strands elsewhere.
		resp.Data = ckpt.EncodeKernelStateDir(k.cfg.GMBlockWords, blocks, k.dirTrailer())
	}
	k.reply(m, resp)
}

// dirTrailer snapshots the membership table and overrides for a join/leave
// handoff payload (escrow stays local — escrowed blocks are already covered
// by override entries).
func (k *Kernel) dirTrailer() *ckpt.DirectorySnapshot {
	ds := &ckpt.DirectorySnapshot{Epoch: k.dir.Epoch()}
	for _, m := range k.dir.Members() {
		ds.Members = append(ds.Members, ckpt.MemberSnapshot{State: uint64(m.State), Gen: m.Gen})
	}
	for b, h := range k.dir.Overrides() {
		ds.Overrides = append(ds.Overrides, [2]uint64{b, uint64(h)})
	}
	sort.Slice(ds.Overrides, func(i, j int) bool { return ds.Overrides[i][0] < ds.Overrides[j][0] })
	return ds
}

// handleMigrateInstall is the new-home half: adopt the blocks, then flip the
// local directory. Adoption-before-flip means a write redirected here early
// keeps bouncing (NACKed by our own ownership check) until the data is in
// place — it can never land in a zero block that adoption then clobbers.
// Blocks this kernel already owns and holds are skipped: a late escrow
// re-offer must not overwrite writes applied since the first install.
func (k *Kernel) handleMigrateInstall(m *wire.Message) {
	_, blocks, dirSnap, err := ckpt.DecodeKernelStateDir(m.Data)
	if err != nil {
		k.dropCorrupt(m)
		return // no reply; the initiator's retry resends the payload
	}
	var payload []uint64
	if dirSnap != nil {
		// Capture the payload's block set before the fresh filter below
		// compacts the slice in place.
		payload = make([]uint64, len(blocks))
		for i, b := range blocks {
			payload[i] = b.Index
		}
	}
	fresh := blocks[:0]
	for _, b := range blocks {
		if k.dir.Owns(k.id, b.Index) && k.seg.Has(b.Index) {
			continue
		}
		if _, parked := k.escrowLookup(b.Index); parked {
			// This kernel is the old home of an in-flight outbound handoff
			// of this very block: it adopted the block once, served writes,
			// and has since extracted it toward the next destination. The
			// incoming payload (a late escrow re-offer from the previous
			// home, or a delayed initiator retransmit) predates that chain —
			// adopting it would resurrect a stale copy AND re-claim
			// ownership, which the commit broadcast's staleness guard then
			// refuses to correct: permanent split brain. Skipping still acks
			// the sender, letting it release its own obsolete escrow entry.
			continue
		}
		fresh = append(fresh, b)
	}
	k.fenceShards()
	if err := k.seg.Adopt(fresh); err != nil {
		k.dropCorrupt(m)
		return
	}
	if dirSnap != nil {
		k.inheritDir(dirSnap, payload)
	}
	switch m.Arg1 {
	case migModeBlock:
		for _, b := range fresh {
			k.dir.SetOverride(b.Index, k.id)
		}
		if len(blocks) == 0 {
			// Initiator install for a block never materialised at the old
			// home: there is no snapshot to adopt, but this kernel must
			// still claim the block (it logically holds zeros), or requests
			// ping-pong between the old home's redirect and our probe-rule
			// NACK until the commit lands. Escrow re-offers never take this
			// path — their payload always carries the parked block.
			k.dir.SetOverride(k.space.BlockOf(m.Addr), k.id)
		}
	case migModeJoin:
		k.dir.SetMember(k.id, gmem.MemberActive, m.Addr)
	case migModeLeave:
		k.dir.SetMember(int(m.Arg2), gmem.MemberLeft, m.Addr)
	default:
		k.dropCorrupt(m)
		return
	}
	k.migGen.Add(1)
	resp := wire.GetMessage()
	resp.Op, resp.Arg1 = wire.OpMigrateInstallResp, int64(len(fresh))
	k.reply(m, resp)
}

// inheritDir folds the old authority's directory view into ours before we
// start answering probe-rule traffic for the transferred slice. Payload
// blocks are pinned to this kernel (a leaver's explicitly-migrated blocks
// flip here by override, not by the probe rule). Other inherited overrides
// only fill gaps: an entry we already hold may be newer — we may have been a
// party to a later handoff of that block — and a merely-stale local hint
// heals through NACK redirects, while clobbering a newer one could resurrect
// a phantom ownership claim. The membership table merges last-writer-wins
// per member, so a joiner also learns of transitions that predate it.
func (k *Kernel) inheritDir(ds *ckpt.DirectorySnapshot, payload []uint64) {
	mine := k.dir.Overrides()
	carried := make(map[uint64]bool, len(payload))
	for _, b := range payload {
		carried[b] = true
	}
	for _, ov := range ds.Overrides {
		b, h := ov[0], int(ov[1])
		switch {
		case carried[b]:
			k.dir.SetOverride(b, k.id)
		case h >= 0 && h < k.n:
			if _, known := mine[b]; !known {
				k.dir.SetOverride(b, h)
			}
		}
	}
	for i, ms := range ds.Members {
		if i < k.n {
			k.dir.SetMember(i, gmem.MemberState(ms.State), ms.Gen)
		}
	}
}

// handleMigrateCommit installs the lazy new-home hint for a migrated range
// and, at the old home, releases the escrowed blocks — the handoff is
// durable at the destination. Idempotent; not deduped.
func (k *Kernel) handleMigrateCommit(m *wire.Message) {
	b0 := k.space.BlockOf(m.Addr)
	n := int(m.Arg1)
	dst := int(m.Arg2)
	if n < 0 || n > 1<<20 || dst < 0 || dst >= k.n {
		k.extra.CorruptDrops++
		return
	}
	// Per-block staleness guards: a commit broadcast can interleave with an
	// independent join/leave/migration that re-homed part of the range after
	// this commit's install, and blindly installing the hint would overwrite
	// the newer truth. Two cases are provably stale and skipped:
	//
	//   - A self-claim (dst == us) for a block we neither hold nor already
	//     claim: accepting it would resurrect phantom ownership of a block
	//     whose data now lives elsewhere (e.g. our own leave handed it away
	//     between this commit's install and its arrival here).
	//   - A hint pointing elsewhere for a block we hold AND own: only the
	//     holder can hand a block off (the extract empties the segment
	//     first), so a commit contradicting a holding owner lost that race.
	//
	// Skipped blocks converge through NACK chains like any stale hint.
	for i := 0; i < n; i++ {
		b := b0 + uint64(i)
		if dst == k.id && !k.seg.Has(b) && k.dir.HomeOfBlock(b) != k.id {
			continue
		}
		if dst != k.id && k.dir.Owns(k.id, b) && k.seg.Has(b) {
			continue
		}
		k.dir.SetOverride(b, dst)
	}
	k.migGen.Add(1)
	k.escrowSweep()
	resp := wire.GetMessage()
	resp.Op = wire.OpMigrateCommitResp
	k.reply(m, resp)
}

// handleGrant is kernel 0's membership transition service: it serialises
// join/leave cluster-wide by handing out at most one open grant at a time.
// A busy response (Arg1 = 0) tells the PE to back off and retry; the same
// member re-requesting its open grant gets the same generation back (its
// first response was lost). The grant clears when the member's epoch update
// arrives or the member is found dead.
func (k *Kernel) handleGrant(m *wire.Message) {
	if k.id != 0 {
		k.dropCorrupt(m) // misrouted grant: same hang risk as a corrupt start
		return
	}
	if k.grantBusyMember >= 0 && k.deadFlags[k.grantBusyMember].Load() {
		k.grantBusyMember = -1 // grantee died holding the slot
	}
	respOp := wire.OpJoinResp
	if m.Op == wire.OpLeave {
		respOp = wire.OpLeaveResp
	}
	resp := wire.GetMessage()
	resp.Op = respOp
	switch src := int(m.Src); {
	case k.grantBusyMember == src:
		resp.Arg1 = int64(k.grantBusyGen)
	case k.grantBusyMember >= 0:
		resp.Arg1 = 0 // busy: another transition is in flight
	default:
		gen := k.dir.Epoch() + 1
		if gen <= k.grantBusyGen {
			gen = k.grantBusyGen + 1 // a died-out grant must not be reissued
		}
		k.grantBusyMember, k.grantBusyGen = src, gen
		resp.Arg1 = int64(gen)
	}
	k.reply(m, resp)
}

// handleEpochUpdate applies one broadcast membership transition. Last-writer
// -wins per member, so replays and reorderings converge in any order.
func (k *Kernel) handleEpochUpdate(m *wire.Message) {
	member := int(m.Arg1)
	if member < 0 || member >= k.n {
		k.extra.CorruptDrops++
		return
	}
	if k.dir.SetMember(member, gmem.MemberState(m.Arg2), m.Addr) {
		k.migGen.Add(1)
	}
	k.escrowSweep()
	// Close the membership grant only when the update's generation covers
	// it: epoch updates are idempotent and retransmitted, so a delayed
	// duplicate of the member's PREVIOUS transition can arrive after the
	// same member acquired a fresh grant — clearing the slot on the stale
	// broadcast would let two transitions run concurrently.
	if k.id == 0 && member == k.grantBusyMember && m.Addr >= k.grantBusyGen {
		k.grantBusyMember = -1
	}
	resp := wire.GetMessage()
	resp.Op = wire.OpEpochUpdateResp
	k.reply(m, resp)
}

// --- PE-side membership API ---

// Members returns the cluster membership table as this PE's kernel sees it.
func (pe *PE) Members() []gmem.Member { return pe.k.dir.Members() }

// MembershipEpoch returns the highest membership generation observed.
func (pe *PE) MembershipEpoch() uint64 { return pe.k.dir.Epoch() }

// HomeOf returns the kernel currently homing addr (directory-aware; equal to
// Space().HomeOf under a static membership).
func (pe *PE) HomeOf(addr uint64) int { return pe.k.homeOf(addr) }

// grant asks kernel 0 for the cluster-wide membership transition slot,
// backing off while another transition is in flight.
func (pe *PE) grant(op wire.Op) (uint64, error) {
	k := pe.k
	backoff := k.cfg.RetryBackoff
	if backoff == 0 {
		backoff = 1 << 16 // sim-time tick; real transports resolve a backoff
	}
	for attempt := 0; attempt < grantRetries; attempt++ {
		req := wire.GetMessage()
		req.Op = op
		resp, err := pe.requestErr(0, req)
		wire.PutMessage(req)
		if err != nil {
			return 0, err
		}
		gen := uint64(resp.Arg1)
		wire.PutMessage(resp)
		if gen != 0 {
			return gen, nil
		}
		pe.app.Sleep(backoff)
	}
	return 0, fmt.Errorf("core: PE %d: membership grant still busy after %d attempts", k.id, grantRetries)
}

// Join brings a latent PE into the active membership: its kernel takes over
// the global-memory blocks the probe rule assigns it, handed off live by the
// prior holder. No-op when already active. The cluster keeps serving
// throughout — concurrent requests for the moving blocks follow NACK
// redirects and apply exactly once.
func (pe *PE) Join() error {
	k := pe.k
	if k.cache != nil {
		return fmt.Errorf("core: PE %d: membership changes require the uncached protocol", k.id)
	}
	if k.dir.Member(k.id).State == gmem.MemberActive {
		return nil
	}
	// Membership fence: nothing this PE buffered or leased may straddle a
	// re-homing (the flushed homes are about to change).
	pe.syncFence()
	gen, err := pe.grant(wire.OpJoin)
	if err != nil {
		return err
	}
	succ, ok := k.dir.Successor(k.id)
	if !ok {
		return fmt.Errorf("core: PE %d: no active member to join from", k.id)
	}
	req := wire.GetMessage()
	req.Op, req.Arg1, req.Arg2, req.Addr = wire.OpMigrateStart, migModeJoin, int64(k.id), gen
	resp, err := pe.requestErr(succ, req)
	wire.PutMessage(req)
	if err != nil {
		// Hand the slot back: the successor never flipped us active (or died
		// trying); broadcasting our unchanged state at the granted generation
		// clears kernel 0's busy flag.
		pe.broadcastEpoch(k.id, gmem.MemberLatent, gen)
		return err
	}
	inst := wire.GetMessage()
	inst.Op, inst.Arg1, inst.Arg2, inst.Addr = wire.OpMigrateInstall, migModeJoin, int64(k.id), gen
	inst.Data = resp.Data
	wire.PutMessage(resp)
	iresp, err := pe.requestErr(k.id, inst)
	wire.PutMessage(inst)
	if err != nil {
		return err
	}
	wire.PutMessage(iresp)
	pe.broadcastEpoch(k.id, gmem.MemberActive, gen)
	pe.extra.Joins++
	return nil
}

// Leave gracefully retires this PE's kernel from the membership: every block
// it homes is handed to its successor before it steps out of the probe rule.
// The kernel keeps serving (NACKing redirected requests, absorbing retries)
// until the run ends, and the application may keep issuing global-memory
// operations as a pure client. Kernel 0 cannot leave — it hosts the
// synchronisation managers and the grant service.
func (pe *PE) Leave() error {
	k := pe.k
	if k.cache != nil {
		return fmt.Errorf("core: PE %d: membership changes require the uncached protocol", k.id)
	}
	if k.id == 0 {
		return fmt.Errorf("core: PE 0 hosts the central managers and cannot leave")
	}
	if k.dir.Member(k.id).State != gmem.MemberActive {
		return nil
	}
	// Membership fence, as in Join: escrowed blocks must not carry unflushed
	// release-mode writes or stale lease snapshots across the handoff.
	pe.syncFence()
	gen, err := pe.grant(wire.OpLeave)
	if err != nil {
		return err
	}
	succ, ok := k.dir.Successor(k.id)
	if !ok {
		pe.broadcastEpoch(k.id, gmem.MemberActive, gen)
		return fmt.Errorf("core: PE %d: cannot leave as the last active member", k.id)
	}
	req := wire.GetMessage()
	req.Op, req.Arg1, req.Arg2, req.Addr = wire.OpMigrateStart, migModeLeave, int64(k.id), gen
	resp, err := pe.requestErr(k.id, req)
	wire.PutMessage(req)
	if err != nil {
		pe.broadcastEpoch(k.id, gmem.MemberActive, gen)
		return err
	}
	inst := wire.GetMessage()
	inst.Op, inst.Arg1, inst.Arg2, inst.Addr = wire.OpMigrateInstall, migModeLeave, int64(k.id), gen
	inst.Data = resp.Data
	wire.PutMessage(resp)
	iresp, err := pe.requestErr(succ, inst)
	wire.PutMessage(inst)
	if err != nil {
		// The handoff is stuck at our escrow; broadcast the transition anyway
		// so the cluster converges and the escrow re-offer keeps the data
		// reachable.
		pe.broadcastEpoch(k.id, gmem.MemberLeft, gen)
		return err
	}
	wire.PutMessage(iresp)
	pe.broadcastEpoch(k.id, gmem.MemberLeft, gen)
	pe.extra.Leaves++
	return nil
}

// MigrateRange re-homes nblocks consecutive blocks starting at addr's block
// to kernel dst, while the cluster keeps serving. Per block: a migrate-start
// at the current owner (directory-updated, fenced, extracted into escrow),
// an install at dst, and finally one commit broadcast installing the new-home
// hint everywhere and releasing the escrow — 2 messages per block plus N-1
// per range.
func (pe *PE) MigrateRange(addr uint64, nblocks, dst int) error {
	k := pe.k
	if k.cache != nil {
		return fmt.Errorf("core: PE %d: migration requires the uncached protocol", k.id)
	}
	if dst < 0 || dst >= k.n {
		return fmt.Errorf("core: PE %d: migrate to invalid kernel %d", k.id, dst)
	}
	if k.dir.Member(dst).State != gmem.MemberActive {
		return fmt.Errorf("core: PE %d: migrate to non-active kernel %d", k.id, dst)
	}
	// Membership fence, as in Join/Leave.
	pe.syncFence()
	bw := uint64(k.space.BlockWords)
	b0 := k.space.BlockOf(addr)
	for i := 0; i < nblocks; i++ {
		b := b0 + uint64(i)
		owner := k.dir.HomeOfBlock(b)
		if owner == dst {
			continue
		}
		req := wire.GetMessage()
		req.Op, req.Arg1, req.Arg2, req.Addr = wire.OpMigrateStart, migModeBlock, int64(dst), b*bw
		resp, err := pe.requestErr(owner, req) // NACK redirects track a moving owner
		wire.PutMessage(req)
		if err != nil {
			return err
		}
		inst := wire.GetMessage()
		inst.Op, inst.Arg1, inst.Addr = wire.OpMigrateInstall, migModeBlock, b*bw
		inst.Data = resp.Data
		wire.PutMessage(resp)
		iresp, err := pe.requestErr(dst, inst)
		wire.PutMessage(inst)
		if err != nil {
			return err
		}
		wire.PutMessage(iresp)
	}
	for p := 0; p < k.n; p++ {
		req := wire.GetMessage()
		req.Op, req.Addr, req.Arg1, req.Arg2 = wire.OpMigrateCommit, b0*bw, int64(nblocks), int64(dst)
		resp, err := pe.requestErr(p, req)
		wire.PutMessage(req)
		if err != nil {
			continue // dead or slow peers converge via NACK hints
		}
		wire.PutMessage(resp)
	}
	pe.extra.Migrations++
	return nil
}

// broadcastEpoch announces one member transition to every kernel (own kernel
// included — it clears kernel 0's grant and the old home's escrow). Errors
// are ignored: peers that miss the update converge lazily through NACK
// hints and later broadcasts.
func (pe *PE) broadcastEpoch(member int, state gmem.MemberState, gen uint64) {
	k := pe.k
	for p := 0; p < k.n; p++ {
		req := wire.GetMessage()
		req.Op, req.Arg1, req.Arg2, req.Addr = wire.OpEpochUpdate, int64(member), int64(state), gen
		resp, err := pe.requestErr(p, req)
		wire.PutMessage(req)
		if err != nil {
			continue
		}
		wire.PutMessage(resp)
	}
}
