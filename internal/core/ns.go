package core

// Kernel-side namespace support for the dsesched multi-job scheduler
// (DESIGN.md §15): binding a requester PE to its job's region, rejecting
// bound traffic that strays outside it with the typed OpNsNack, freeing a
// namespace's homed blocks at teardown, and purging a finished job's
// message/sync residue.

import (
	"repro/internal/gmem"
	"repro/internal/wire"
)

// handleNsBind installs (Arg2 != 0) or removes (Arg2 == 0) the namespace
// binding of requester PE Arg1: the word region [Addr, Arg2). Idempotent —
// a rebind overwrites — so no dedup window is needed. Serial loop only; no
// shard fence is required because shard workers read the registry through
// an atomic snapshot, and the scheduler binds before the job's first GM
// access and unbinds after its last.
func (k *Kernel) handleNsBind(m *wire.Message) {
	pe := int(m.Arg1)
	if m.Arg2 == 0 {
		k.ns.Unbind(pe)
	} else {
		k.ns.Bind(pe, gmem.Region{Base: m.Addr, Limit: uint64(m.Arg2)})
	}
	resp := wire.GetMessage()
	resp.Op = wire.OpNsBindAck
	k.reply(m, resp)
}

// handleNsFree drops every materialised block this kernel homes inside
// [Addr, Addr + Arg1*BlockWords): namespace teardown, so a finished job's
// data is released before the region is re-carved for the next job. The
// shard fence drains in-flight service (and the submission rings) first, so
// no write queued before the free can re-materialise a dropped block.
func (k *Kernel) handleNsFree(m *wire.Message) {
	dropped := 0
	if m.Arg1 > 0 {
		k.fenceShards()
		dropped = k.seg.DropRange(k.space.BlockOf(m.Addr), uint64(m.Arg1))
	}
	resp := wire.GetMessage()
	resp.Op, resp.Arg1 = wire.OpNsFreeAck, int64(dropped)
	k.reply(m, resp)
}

// handleJobPurge releases a finished job's residue at this kernel: every
// user-message mailbox whose tag lies in [Tag, Tag+Arg1) is closed and
// forgotten (waking any straggling RecvMsg), and kernel 0 additionally
// drops the same id range from the central barrier/lock/semaphore managers
// — a cancelled job's members may have died mid-barrier or holding a lock,
// and a later job reusing the id range must find it clean.
func (k *Kernel) handleJobPurge(m *wire.Message) {
	if n := int32(m.Arg1); n > 0 {
		lo, hi := m.Tag, m.Tag+n
		k.mu.Lock()
		for tag, mb := range k.userq {
			if tag >= lo && tag < hi {
				mb.Close()
				delete(k.userq, tag)
			}
		}
		k.mu.Unlock()
		if k.id == 0 {
			k.barrier.DropRange(lo, hi)
			k.locks.DropRange(lo, hi)
			k.sems.DropRange(lo, hi)
		}
	}
	resp := wire.GetMessage()
	resp.Op = wire.OpJobPurgeAck
	k.reply(m, resp)
}

// nsDeny enforces per-job namespace isolation at the home: if the requester
// is bound to a region, every address the request touches is scanned (the
// same per-op walk as nackIfForeign, with the same corrupt-count clamp) and
// a request straying outside the region is rejected whole with the typed
// OpNsNack — before any read or write, so a forged address can never reach
// another job's blocks, and all-or-nothing so no partial mutation lands.
// Runs after the dedup check (a retry of an applied mutation must still be
// absorbed) and before the migration scan (a violation is terminal; there
// is nothing to redirect).
func (sh *kernelShard) nsDeny(m *wire.Message) bool {
	k := sh.k
	region, bound := k.ns.Lookup(int(m.Src))
	if !bound {
		return false
	}
	violation := false
	bw := k.space.BlockWords
	scan := func(addr uint64, count int) {
		if count < 1 {
			count = 1
		}
		if count > bw {
			count = bw // corrupt-count clamp, as in nackIfForeign
		}
		if !region.Contains(addr, count) {
			violation = true
		}
	}
	switch m.Op {
	case wire.OpRead:
		n := int(m.Arg1)
		if m.Arg2 == 1 {
			n = 1 // block fetch: one block
		}
		scan(m.Addr, n)
	case wire.OpWrite:
		scan(m.Addr, len(m.Data)/8)
	case wire.OpFetchAdd, wire.OpCAS, wire.OpReadLease:
		scan(m.Addr, 1)
	case wire.OpReadV:
		if m.EachRange(scan) != nil {
			return false // corrupt payload: the op handler counts and drops it
		}
	case wire.OpWriteV, wire.OpFlushV:
		if m.EachRunHeader(scan) != nil {
			return false
		}
	default:
		return false // invalidation traffic is not requester-addressed
	}
	if !violation {
		return false
	}
	// Forget the in-progress dedup entry the lookup registered: the NACK is
	// side-effect-free and simply recomputed on a retry, while a cached one
	// would outlive a rebind that later legitimises the address range.
	if isMutating(m.Op) {
		sh.dedup.forget(m.Src, m.Seq)
	}
	sh.extra.NsViolations++
	resp := wire.GetMessage()
	resp.Op = wire.OpNsNack
	resp.Arg1, resp.Arg2 = int64(region.Base), int64(region.Limit)
	resp.Src, resp.Dst, resp.Seq = int32(k.id), m.Src, m.Seq
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
	return true
}
