package core

import "fmt"

// The reliability layer surfaces request failures as typed errors through the
// *Err API tier (GMReadErr, GMWriteErr, FetchAddErr, CASErr, PingErr). The
// classic panic tier (GMRead, GMWrite, ...) wraps that tier and panics with
// the error text, preserving the original "timed out" / "shut down" messages.

// TimeoutError reports that a request exhausted its timeout (and, when
// retries are configured, every retry attempt).
type TimeoutError struct {
	PE       int // requesting PE
	Dst      int // home kernel the request was addressed to
	Op       string
	Attempts int // total send attempts (1 = no retries configured)
}

func (e *TimeoutError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("core: PE %d: %s request to kernel %d timed out after %d attempts", e.PE, e.Op, e.Dst, e.Attempts)
	}
	return fmt.Sprintf("core: PE %d: %s request to kernel %d timed out", e.PE, e.Op, e.Dst)
}

// PeerDownError reports that the transport declared the home kernel dead
// while a request was outstanding (or before it was sent). It arrives well
// before the request timeout would expire: peer-failure detection is what
// makes it fast.
type PeerDownError struct {
	PE   int // requesting PE
	Peer int // dead kernel
	Op   string
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("core: PE %d: %s request failed: peer %d is down", e.PE, e.Op, e.Peer)
}

// ShutdownError reports that the cluster shut down while a request was
// outstanding.
type ShutdownError struct {
	PE int
	Op string
}

func (e *ShutdownError) Error() string {
	return fmt.Sprintf("core: PE %d: cluster shut down during %s request", e.PE, e.Op)
}

// NamespaceError reports that a global-memory access touched memory outside
// the PE's bound namespace (dsesched per-job isolation, DESIGN.md §15). It
// is raised PE-side when the violation is detectable before leaving the PE,
// and mapped from the kernel's OpNsNack rejection otherwise — either way
// the foreign memory is never read or written.
type NamespaceError struct {
	PE    int    // requesting PE
	Op    string // the refused operation
	Addr  uint64 // offending address
	Base  uint64 // bound namespace [Base, Limit)
	Limit uint64
}

func (e *NamespaceError) Error() string {
	return fmt.Sprintf("core: PE %d: %s at address %d outside namespace [%d,%d)",
		e.PE, e.Op, e.Addr, e.Base, e.Limit)
}
