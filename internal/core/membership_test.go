package core

import (
	"fmt"
	"testing"

	"repro/internal/gmem"
	"repro/internal/wire"
)

// TestJoinLatentPE brings a latent PE into a running cluster and checks the
// re-homed global memory stays intact: every word written before the join —
// including by the latent client itself — reads back correctly afterwards,
// and the joiner ends up homing a share of the blocks.
func TestJoinLatentPE(t *testing.T) {
	res, err := Run(Config{NumPE: 3, Transport: TransportInproc, LatentPEs: 1}, func(pe *PE) error {
		n := pe.N()
		bw := pe.Space().BlockWords
		words := 4 * n * bw
		base := pe.AllocBlocks(words)
		pe.Barrier()
		for i := pe.ID(); i < words; i += n {
			pe.GMWrite(base+uint64(i), int64(i+1))
		}
		pe.Barrier()
		if pe.ID() == n-1 {
			if st := pe.Members()[pe.ID()].State; st != gmem.MemberLatent {
				return fmt.Errorf("latent PE starts as %v", st)
			}
			if err := pe.Join(); err != nil {
				return err
			}
			if st := pe.Members()[pe.ID()].State; st != gmem.MemberActive {
				return fmt.Errorf("joined PE is %v", st)
			}
		}
		pe.Barrier()
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(i+1) {
				return fmt.Errorf("PE %d after join: word %d = %d, want %d", pe.ID(), i, v, i+1)
			}
		}
		if pe.ID() == n-1 {
			owned := 0
			for b := 0; b < words/bw; b++ {
				if pe.HomeOf(base+uint64(b*bw)) == pe.ID() {
					owned++
				}
			}
			if owned == 0 {
				return fmt.Errorf("joiner homes no blocks")
			}
		}
		pe.Barrier()
		// Post-join writes land at the new homes and stay exactly-once.
		for i := pe.ID(); i < words; i += n {
			pe.GMWrite(base+uint64(i), int64(2*i+1))
		}
		pe.Barrier()
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(2*i+1) {
				return fmt.Errorf("PE %d post-join write: word %d = %d, want %d", pe.ID(), i, v, 2*i+1)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.Joins != 1 {
		t.Errorf("Joins = %d, want 1", res.Total.Joins)
	}
	if res.Total.MigratedBlocks == 0 {
		t.Error("join migrated no blocks")
	}
}

// TestLeaveRehomesBlocks gracefully retires a PE and checks its entire GM
// slice lands at the successor with no lost writes; the left PE keeps
// operating as a pure client.
func TestLeaveRehomesBlocks(t *testing.T) {
	res, err := Run(Config{NumPE: 3, Transport: TransportInproc}, func(pe *PE) error {
		n := pe.N()
		bw := pe.Space().BlockWords
		words := 4 * n * bw
		base := pe.AllocBlocks(words)
		pe.Barrier()
		for i := pe.ID(); i < words; i += n {
			pe.GMWrite(base+uint64(i), int64(i+1))
		}
		pe.Barrier()
		if pe.ID() == n-1 {
			if err := pe.Leave(); err != nil {
				return err
			}
		}
		pe.Barrier()
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(i+1) {
				return fmt.Errorf("PE %d after leave: word %d = %d, want %d", pe.ID(), i, v, i+1)
			}
		}
		for b := 0; b < words/bw; b++ {
			if h := pe.HomeOf(base + uint64(b*bw)); h == n-1 {
				return fmt.Errorf("PE %d: block %d still homed at the left PE", pe.ID(), b)
			}
		}
		pe.Barrier()
		// The left PE keeps writing as a client.
		for i := pe.ID(); i < words; i += n {
			pe.GMWrite(base+uint64(i), int64(3*i+2))
		}
		pe.Barrier()
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(3*i+2) {
				return fmt.Errorf("PE %d post-leave write: word %d = %d, want %d", pe.ID(), i, v, 3*i+2)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.Leaves != 1 {
		t.Errorf("Leaves = %d, want 1", res.Total.Leaves)
	}
}

// TestMigrateRangeMovesBlocks re-homes an explicit block range on a cluster
// that started static and checks ownership and data both move.
func TestMigrateRangeMovesBlocks(t *testing.T) {
	res, err := Run(Config{NumPE: 2, Transport: TransportInproc}, func(pe *PE) error {
		bw := pe.Space().BlockWords
		words := 4 * bw
		base := pe.AllocBlocks(words)
		pe.Barrier()
		if pe.ID() == 0 {
			for i := 0; i < words; i++ {
				pe.GMWrite(base+uint64(i), int64(100+i))
			}
			if err := pe.MigrateRange(base, 2, 1); err != nil {
				return err
			}
		}
		pe.Barrier()
		for b := 0; b < 2; b++ {
			if h := pe.HomeOf(base + uint64(b*bw)); h != 1 {
				return fmt.Errorf("PE %d: migrated block %d homed at %d, want 1", pe.ID(), b, h)
			}
		}
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(100+i) {
				return fmt.Errorf("PE %d: word %d = %d, want %d", pe.ID(), i, v, 100+i)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.Migrations == 0 || res.Total.MigratedBlocks == 0 {
		t.Errorf("Migrations = %d, MigratedBlocks = %d, want both > 0",
			res.Total.Migrations, res.Total.MigratedBlocks)
	}
}

// TestLatentConfigValidation pins the LatentPEs gating rules.
func TestLatentConfigValidation(t *testing.T) {
	if _, err := (&Config{NumPE: 2, Transport: TransportInproc, LatentPEs: 2}).withDefaults(); err == nil {
		t.Error("LatentPEs == NumPE accepted")
	}
	if _, err := (&Config{NumPE: 3, Transport: TransportInproc, LatentPEs: 1, Caching: true}).withDefaults(); err == nil {
		t.Error("LatentPEs with Caching accepted")
	}
}

// TestMigrateHandoffRaceExactlyOnce pins the write-vs-migration races in both
// orders, sentinel-overwrite style (see TestRingWriteDedupExactlyOnce):
//
//   - A write applied at the old home BEFORE the handoff, retried AFTER it,
//     must be absorbed by the old home's dedup window (cached ack resent) —
//     never forwarded and re-applied at the new home.
//   - A write arriving at the old home AFTER the handoff must be NACKed
//     untouched, apply exactly once at the hinted new home, and a further
//     retry there must be absorbed.
func TestMigrateHandoffRaceExactlyOnce(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	addr := uint64(0) // block 0, homed at kernel 0

	// Order 1: write, then migrate, then retry the write at the old home.
	w := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 101, Addr: addr}
	w.PutWord(7)
	ks[0].handle(w)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck {
		t.Fatalf("initial write ack = %v", ack)
	}

	ks[0].handle(&wire.Message{Op: wire.OpMigrateStart, Src: 1, Dst: 0, Seq: 102, Arg1: migModeBlock, Arg2: 1, Addr: addr})
	start := recvFrom(t, net, 1)
	if start.Op != wire.OpMigrateStartResp || start.Arg1 != 1 {
		t.Fatalf("migrate start resp = %v", start)
	}
	inst := &wire.Message{Op: wire.OpMigrateInstall, Src: 1, Dst: 1, Seq: 103, Arg1: migModeBlock, Addr: addr}
	inst.Data = append([]byte(nil), start.Data...)
	ks[1].handle(inst)
	if r := recvFrom(t, net, 1); r.Op != wire.OpMigrateInstallResp {
		t.Fatalf("install resp = %v", r)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 7 {
		t.Fatalf("migrated value = %d, want 7", v)
	}
	if !ks[1].dir.Owns(1, 0) || ks[0].dir.Owns(0, 0) {
		t.Fatal("ownership did not flip on both sides")
	}

	// Commit so the old home's escrow clears (re-offer traffic would
	// otherwise interleave with the replies asserted below).
	for i := range ks {
		ks[i].handle(&wire.Message{Op: wire.OpMigrateCommit, Src: 1, Dst: int32(i), Seq: uint64(104 + i), Addr: addr, Arg1: 1, Arg2: 1})
		if r := recvFrom(t, net, 1); r.Op != wire.OpMigrateCommitResp {
			t.Fatalf("commit resp = %v", r)
		}
	}

	ks[1].seg.WriteWord(addr, 1000) // sentinel: a re-apply would clobber this
	retry := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 101, Addr: addr, Flags: wire.FlagRetry}
	retry.PutWord(7)
	ks[0].handle(retry)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck {
		t.Fatalf("retried write after handoff: got %v, want the cached OpWriteAck", ack)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 1000 {
		t.Fatalf("retry re-applied across the handoff: %d, want sentinel 1000", v)
	}

	// Order 2: write arrives at the old home after the handoff — NACK with
	// the new home hinted, exactly-once at the new home, retry absorbed.
	w2 := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 110, Addr: addr}
	w2.PutWord(8)
	ks[0].handle(w2)
	nack := recvFrom(t, net, 1)
	if nack.Op != wire.OpMigrateNack || nack.Arg1 != 1 {
		t.Fatalf("stale-home write: got %v, want OpMigrateNack hinting kernel 1", nack)
	}
	redirected := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 1, Seq: 110, Addr: addr, Flags: wire.FlagRetry}
	redirected.PutWord(8)
	ks[1].handle(redirected)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck {
		t.Fatalf("redirected write ack = %v", ack)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 8 {
		t.Fatalf("redirected write not applied: %d", v)
	}
	ks[1].seg.WriteWord(addr, 2000)
	retry2 := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 1, Seq: 110, Addr: addr, Flags: wire.FlagRetry}
	retry2.PutWord(8)
	ks[1].handle(retry2)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck {
		t.Fatalf("retried redirected write ack = %v", ack)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 2000 {
		t.Fatalf("redirected retry re-applied: %d, want sentinel 2000", v)
	}
	// A lost NACK is also covered: NACKs are not cached in the dedup window
	// (that would mask the seq at a home the block later lands on), so a
	// retry at the old home simply recomputes the same NACK.
	w3 := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 110, Addr: addr, Flags: wire.FlagRetry}
	w3.PutWord(8)
	ks[0].handle(w3)
	if n2 := recvFrom(t, net, 1); n2.Op != wire.OpMigrateNack {
		t.Fatalf("retry after lost NACK: got %v, want a recomputed OpMigrateNack", n2)
	}
}

// TestEscrowReofferHealsDeadInitiator kills the migration between the
// extract and the install (by simply never sending the install): the first
// request that bounces off the old home must push the escrowed block to the
// new home, and the re-offered payload must not clobber writes the new home
// applied in the meantime.
func TestEscrowReofferHealsDeadInitiator(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	addr := uint64(0)
	w := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 201, Addr: addr}
	w.PutWord(7)
	ks[0].handle(w)
	recvFrom(t, net, 1) // ack

	// Extract toward kernel 1 — and then the initiator "dies": no install.
	ks[0].handle(&wire.Message{Op: wire.OpMigrateStart, Src: 1, Dst: 0, Seq: 202, Arg1: migModeBlock, Arg2: 1, Addr: addr})
	recvFrom(t, net, 1) // start resp, dropped on the floor
	if _, ok := ks[0].escrowLookup(0); !ok {
		t.Fatal("extracted block not escrowed")
	}

	// A later write bounces off the old home: the NACK must be preceded by a
	// fire-and-forget re-offer of the escrowed block to kernel 1.
	w2 := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 203, Addr: addr}
	w2.PutWord(9)
	ks[0].handle(w2)
	offer := recvFrom(t, net, 1)
	if offer.Op != wire.OpMigrateInstall || offer.Arg1 != migModeBlock {
		t.Fatalf("expected the escrow re-offer install, got %v", offer)
	}
	if nack := recvFrom(t, net, 1); nack.Op != wire.OpMigrateNack || nack.Arg1 != 1 {
		t.Fatalf("expected OpMigrateNack hinting kernel 1, got %v", nack)
	}

	// The redirected write reaches kernel 1 BEFORE the re-offer install:
	// kernel 1's directory (still static) does not own the block yet, so the
	// write must bounce — applying it into a lazily-created block would lose
	// it when the install adopts over it.
	red := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 1, Seq: 203, Addr: addr, Flags: wire.FlagRetry}
	red.PutWord(9)
	ks[1].handle(red)
	if b := recvFrom(t, net, 1); b.Op != wire.OpMigrateNack || b.Arg1 != 0 {
		t.Fatalf("early redirect: got %v, want a bounce back to kernel 0", b)
	}
	// The install lands; the bounced write's retry now applies.
	ks[1].handle(offer)
	if r := recvFrom(t, net, 0); r.Op != wire.OpMigrateInstallResp {
		t.Fatalf("re-offer install resp = %v", r)
	}
	red2 := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 1, Seq: 203, Addr: addr, Flags: wire.FlagRetry}
	red2.PutWord(9)
	ks[1].handle(red2)
	if ack := recvFrom(t, net, 1); ack.Op != wire.OpWriteAck {
		t.Fatalf("retry after install: got %v, want OpWriteAck", ack)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 9 {
		t.Fatalf("redirected write = %d, want 9", v)
	}
	// A second re-offer (fresh seq — each re-offer allocates one) must not
	// clobber the newer write: the block is now owned and materialised, so
	// the install's clobber guard skips it.
	offer2 := &wire.Message{Op: wire.OpMigrateInstall, Src: 0, Dst: 1, Seq: 999, Arg1: migModeBlock, Addr: offer.Addr}
	offer2.Data = append([]byte(nil), offer.Data...)
	ks[1].handle(offer2)
	if r := recvFrom(t, net, 0); r.Op != wire.OpMigrateInstallResp || r.Arg1 != 0 {
		t.Fatalf("duplicate re-offer resp = %v, want 0 blocks adopted", r)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 9 {
		t.Fatalf("late re-offer clobbered a newer write: %d, want 9", v)
	}

	// An epoch update that shows the destination owning the block clears the
	// old home's escrow.
	ks[0].handle(&wire.Message{Op: wire.OpMigrateCommit, Src: 1, Dst: 0, Seq: 204, Addr: addr, Arg1: 1, Arg2: 1})
	recvFrom(t, net, 1)
	if _, ok := ks[0].escrowLookup(0); ok {
		t.Fatal("escrow not cleared by the commit")
	}
}

// TestGrantServiceSerialisesTransitions pins kernel 0's membership grant
// protocol: one open grant at a time, busy signalled as Arg1 = 0, the same
// member re-requesting gets its generation back, and the grantee's epoch
// update releases the slot.
func TestGrantServiceSerialisesTransitions(t *testing.T) {
	net, ks := testKernels(t, 3, func(cfg *Config) { cfg.LatentPEs = 2 })
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 1, Dst: 0, Seq: 301})
	g1 := recvFrom(t, net, 1)
	if g1.Op != wire.OpJoinResp || g1.Arg1 == 0 {
		t.Fatalf("first grant = %v", g1)
	}
	// A competing transition is refused while the grant is open...
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 2, Dst: 0, Seq: 302})
	if busy := recvFrom(t, net, 2); busy.Op != wire.OpJoinResp || busy.Arg1 != 0 {
		t.Fatalf("competing grant = %v, want busy (Arg1 = 0)", busy)
	}
	// ...the holder re-requesting (lost response) gets the same generation...
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 1, Dst: 0, Seq: 303})
	if again := recvFrom(t, net, 1); again.Op != wire.OpJoinResp || again.Arg1 != g1.Arg1 {
		t.Fatalf("re-request = %v, want the open generation %d", again, g1.Arg1)
	}
	// ...and the holder's epoch update releases the slot for the next member.
	ks[0].handle(&wire.Message{Op: wire.OpEpochUpdate, Src: 1, Dst: 0, Seq: 304, Arg1: 1, Arg2: int64(gmem.MemberActive), Addr: uint64(g1.Arg1)})
	if r := recvFrom(t, net, 1); r.Op != wire.OpEpochUpdateResp {
		t.Fatalf("epoch update resp = %v", r)
	}
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 2, Dst: 0, Seq: 305})
	g2 := recvFrom(t, net, 2)
	if g2.Op != wire.OpJoinResp || g2.Arg1 == 0 || g2.Arg1 == g1.Arg1 {
		t.Fatalf("next grant = %v, want a fresh non-busy generation", g2)
	}
}

// TestStaleEpochUpdateKeepsGrantOpen pins the grant-release generation guard:
// epoch updates are idempotent and retransmitted, so a delayed duplicate of a
// member's PREVIOUS transition broadcast arriving after the same member opened
// a fresh grant must NOT free the slot — that would let two membership
// transitions run concurrently.
func TestStaleEpochUpdateKeepsGrantOpen(t *testing.T) {
	net, ks := testKernels(t, 3, func(cfg *Config) { cfg.LatentPEs = 2 })
	// Member 1 completes a join under generation g1.
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 1, Dst: 0, Seq: 401})
	g1 := recvFrom(t, net, 1)
	if g1.Op != wire.OpJoinResp || g1.Arg1 == 0 {
		t.Fatalf("first grant = %v", g1)
	}
	ks[0].handle(&wire.Message{Op: wire.OpEpochUpdate, Src: 1, Dst: 0, Seq: 402, Arg1: 1, Arg2: int64(gmem.MemberActive), Addr: uint64(g1.Arg1)})
	recvFrom(t, net, 1)
	// The same member opens a fresh grant (a leave this time).
	ks[0].handle(&wire.Message{Op: wire.OpLeave, Src: 1, Dst: 0, Seq: 403})
	g2 := recvFrom(t, net, 1)
	if g2.Op != wire.OpLeaveResp || g2.Arg1 == 0 || g2.Arg1 <= g1.Arg1 {
		t.Fatalf("second grant = %v, want a fresh generation above %d", g2, g1.Arg1)
	}
	// A delayed duplicate of the join's epoch update must not close it...
	ks[0].handle(&wire.Message{Op: wire.OpEpochUpdate, Src: 1, Dst: 0, Seq: 404, Arg1: 1, Arg2: int64(gmem.MemberActive), Addr: uint64(g1.Arg1)})
	recvFrom(t, net, 1)
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 2, Dst: 0, Seq: 405})
	if busy := recvFrom(t, net, 2); busy.Op != wire.OpJoinResp || busy.Arg1 != 0 {
		t.Fatalf("grant after stale epoch update = %v, want busy (Arg1 = 0)", busy)
	}
	// ...while the leave's own epoch update (generation g2) does.
	ks[0].handle(&wire.Message{Op: wire.OpEpochUpdate, Src: 1, Dst: 0, Seq: 406, Arg1: 1, Arg2: int64(gmem.MemberLeft), Addr: uint64(g2.Arg1)})
	recvFrom(t, net, 1)
	ks[0].handle(&wire.Message{Op: wire.OpJoin, Src: 2, Dst: 0, Seq: 407})
	g3 := recvFrom(t, net, 2)
	if g3.Op != wire.OpJoinResp || g3.Arg1 == 0 {
		t.Fatalf("grant after fresh epoch update = %v, want a real generation", g3)
	}
}

// TestCorruptInstallRetryNotAbsorbed pins the drop-path dedup release: a
// MigrateInstall whose payload arrives truncated is dropped without a reply,
// and the initiator retransmits the payload under the SAME sequence number —
// the retry must be re-evaluated and installed, not absorbed by the dedup
// window as an in-progress duplicate (which would hang the initiator forever).
func TestCorruptInstallRetryNotAbsorbed(t *testing.T) {
	net, ks := testKernels(t, 2, nil)
	addr := uint64(0) // block 0, homed at kernel 0
	w := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 501, Addr: addr}
	w.PutWord(7)
	ks[0].handle(w)
	recvFrom(t, net, 1) // ack
	ks[0].handle(&wire.Message{Op: wire.OpMigrateStart, Src: 1, Dst: 0, Seq: 502, Arg1: migModeBlock, Arg2: 1, Addr: addr})
	start := recvFrom(t, net, 1)
	if start.Op != wire.OpMigrateStartResp {
		t.Fatalf("migrate start resp = %v", start)
	}
	// First install attempt: truncated payload, dropped without a reply.
	bad := &wire.Message{Op: wire.OpMigrateInstall, Src: 1, Dst: 1, Seq: 503, Arg1: migModeBlock, Addr: addr}
	bad.Data = append([]byte(nil), start.Data[:3]...)
	ks[1].handle(bad)
	if ks[1].extra.CorruptDrops == 0 {
		t.Fatal("corrupt install not counted")
	}
	// The retry resends the full payload under the same sequence number.
	retry := &wire.Message{Op: wire.OpMigrateInstall, Src: 1, Dst: 1, Seq: 503, Arg1: migModeBlock, Addr: addr, Flags: wire.FlagRetry}
	retry.Data = append([]byte(nil), start.Data...)
	ks[1].handle(retry)
	if r := recvFrom(t, net, 1); r.Op != wire.OpMigrateInstallResp || r.Arg1 != 1 {
		t.Fatalf("retried install resp = %v, want 1 block adopted", r)
	}
	if v := ks[1].seg.Read(addr, 1)[0]; v != 7 {
		t.Fatalf("migrated value = %d, want 7", v)
	}
}
