package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/tcpnet"
)

// Total frame loss with a request timeout must surface as a program error,
// not a hung simulation.
func TestSimnetTotalLossTimesOutCleanly(t *testing.T) {
	cfg := simCfg(2)
	cfg.LossProbability = 1.0
	cfg.RequestTimeout = 100 * sim.Millisecond
	res, err := Run(cfg, func(pe *PE) error {
		base := pe.Alloc(64)
		// Force a remote access from PE 1 to PE 0's segment.
		if pe.ID() == 1 {
			pe.GMWrite(base, 1) // block 0 homes at kernel 0
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run should not fail at the harness level: %v", err)
	}
	ferr := res.Errs[1]
	if ferr == nil {
		t.Fatal("lost request did not surface as an error")
	}
	if !strings.Contains(ferr.Error(), "timed out") {
		t.Fatalf("unexpected failure text: %v", ferr)
	}
}

// Partial loss keeps the cluster alive for local work; only operations that
// truly need the wire fail.
func TestSimnetPartialLossLocalWorkSucceeds(t *testing.T) {
	cfg := simCfg(3)
	cfg.LossProbability = 1.0
	cfg.RequestTimeout = 50 * sim.Millisecond
	res, err := Run(cfg, func(pe *PE) error {
		pe.Compute(1e5) // purely local
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Registration with kernel 0 needs the wire for PEs 1,2: they fail.
	// PE 0 registers via the own-node path and succeeds.
	if res.Errs[0] != nil {
		t.Fatalf("PE 0 should survive: %v", res.Errs[0])
	}
	if res.Errs[1] == nil || res.Errs[2] == nil {
		t.Fatal("remote PEs should have failed registration under total loss")
	}
}

// Killing a TCP node mid-run must fail the survivors' requests — via the
// failure detector's fast peer-down path when the broken connection is
// noticed, or the request timeout at worst — instead of hanging them.
func TestTCPNodeDeathSurfacesAsError(t *testing.T) {
	net, err := tcpnet.NewLocal(3)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	cfg := Config{RequestTimeout: 2 * sim.Second}

	var wg sync.WaitGroup
	errs := make([]error, 3)
	writeTook := make([]time.Duration, 3)
	// Node 2 "crashes" before serving anything beyond the mesh handshake.
	net.TCPNode(2).Kill()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunOn(cfg, net.Node(i), func(pe *PE) error {
				// Any GM word homed at kernel 2 must fail, not hang.
				space := pe.Space()
				addr := uint64(0)
				for space.HomeOf(addr) != 2 {
					addr++
				}
				t0 := time.Now()
				werr := pe.GMWriteErr(addr, 1)
				writeTook[i] = time.Since(t0)
				if werr == nil {
					return fmt.Errorf("write to dead home succeeded")
				}
				return werr
			})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = res.FirstErr()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors hung after node death")
	}
	for i := 0; i < 2; i++ {
		if errs[i] == nil {
			t.Fatalf("node %d: write to dead home succeeded", i)
		}
		text := errs[i].Error()
		if !strings.Contains(text, "is down") && !strings.Contains(text, "timed out") {
			t.Fatalf("node %d: unexpected failure: %v", i, errs[i])
		}
		// The broken connections are noticed when node 2 dies, so the write
		// must fail through the detector's peer-down path, well under the 2s
		// request timeout.
		if writeTook[i] >= time.Second {
			t.Fatalf("node %d: write failed only after %v — detector did not fire", i, writeTook[i])
		}
		t.Logf("node %d: write failed in %v (%v)", i, writeTook[i], errs[i])
	}
}

// A healthy multi-process-style cluster over RunOn completes and agrees.
func TestRunOnHealthyCluster(t *testing.T) {
	net, err := tcpnet.NewLocal(3)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	cfg := Config{RequestTimeout: 10 * sim.Second}
	var wg sync.WaitGroup
	sums := make([]float64, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunOn(cfg, net.Node(i), func(pe *PE) error {
				sums[pe.ID()] = pe.AllReduceSum(float64(pe.ID() + 1))
				pe.Barrier()
				return nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = res.FirstErr()
		}()
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if sums[i] != 6 {
			t.Fatalf("node %d: sum %v, want 6", i, sums[i])
		}
	}
}

// The timeout knob must not trip on a healthy simulated cluster.
func TestRequestTimeoutHarmlessWhenHealthy(t *testing.T) {
	cfg := Config{NumPE: 4, Platform: platform.SparcSunOS, Seed: 1, RequestTimeout: 10 * sim.Second}
	res, err := Run(cfg, func(pe *PE) error {
		base := pe.Alloc(32)
		pe.GMWrite(base+uint64(pe.ID()), 1)
		pe.Barrier()
		if got := pe.GMRead(base + uint64((pe.ID()+1)%4)); got != 1 {
			return fmt.Errorf("read %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}
