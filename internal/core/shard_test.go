package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/wire"
)

// TestUserQueuesReleasedAfterRun cycles PEs through many message tags and
// asserts every kernel's user-queue map is empty once Run returns: userMb
// used to register tags for the kernel's lifetime, leaking one mailbox per
// tag ever received on.
func TestUserQueuesReleasedAfterRun(t *testing.T) {
	var inspected atomic.Bool
	cfg := Config{NumPE: 2, Transport: TransportInproc}
	cfg.testInspect = func(ks []*Kernel, _ []*PE) {
		inspected.Store(true)
		for _, k := range ks {
			k.mu.Lock()
			n := len(k.userq)
			k.mu.Unlock()
			if n != 0 {
				t.Errorf("kernel %d: %d user queues leaked after Run", k.id, n)
			}
		}
	}
	res, err := Run(cfg, func(pe *PE) error {
		peer := (pe.ID() + 1) % pe.N()
		for tag := int32(0); tag < 16; tag++ {
			pe.SendMsg(peer, tag, []byte("x"))
			if src, _ := pe.RecvMsg(tag); src != peer {
				return fmt.Errorf("PE %d: tag %d from %d, want %d", pe.ID(), tag, src, peer)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if !inspected.Load() {
		t.Fatal("testInspect hook never ran")
	}
}

// TestShardForRouting pins the dispatcher's routing rules: scalar ops hash
// their address, vectored ops and invalidation acks follow the shard hint,
// and an out-of-range hint is rejected (-1), never clamped to shard 0.
func TestShardForRouting(t *testing.T) {
	_, ks := testKernels(t, 2, func(cfg *Config) { cfg.KernelShards = 4 })
	k := ks[0]
	if k.nshards != 4 {
		t.Fatalf("nshards = %d, want 4", k.nshards)
	}
	bw := uint64(k.space.BlockWords)
	n := uint64(k.n)
	for blk := uint64(0); blk < 8; blk++ {
		addr := blk * n * bw // consecutive blocks homed at kernel 0
		want := int(blk % 4)
		if got := k.shardFor(&wire.Message{Op: wire.OpRead, Addr: addr}); got != want {
			t.Errorf("OpRead block %d -> shard %d, want %d", blk, got, want)
		}
		if got := k.shardFor(&wire.Message{Op: wire.OpWrite, Addr: addr}); got != want {
			t.Errorf("OpWrite block %d -> shard %d, want %d", blk, got, want)
		}
	}
	for _, op := range []wire.Op{wire.OpReadV, wire.OpWriteV, wire.OpInvAck} {
		if got := k.shardFor(&wire.Message{Op: op, Shard: 3}); got != 3 {
			t.Errorf("%v hint 3 -> shard %d, want 3", op, got)
		}
		for _, hint := range []uint8{4, 200, 255} {
			if got := k.shardFor(&wire.Message{Op: op, Shard: hint}); got != -1 {
				t.Errorf("%v hint %d -> shard %d, want -1 (reject)", op, hint, got)
			}
		}
	}
	// With a single shard every hint routes to shard 0: there is no dedup
	// window to bypass, so legacy senders with garbage hint bytes still work.
	_, ks1 := testKernels(t, 2, nil)
	if got := ks1[0].shardFor(&wire.Message{Op: wire.OpWriteV, Shard: 200}); got != 0 {
		t.Errorf("single shard hint 200 -> %d, want 0", got)
	}
}

// TestShardForgedHintDropped drives forged/stale shard hints through the
// dispatcher itself. Before the fix an out-of-range hint clamped to shard 0,
// routing a retried OpWriteV past the dedup window of the shard that served
// the original — so the retry was applied twice. Now the message must be
// dropped (consumed, counted as corrupt) with no reply and no memory write.
func TestShardForgedHintDropped(t *testing.T) {
	_, ks := testKernels(t, 2, func(cfg *Config) { cfg.KernelShards = 4 })
	k := ks[0]
	wv := &wire.Message{Op: wire.OpWriteV, Src: 1, Dst: 0, Seq: 1, Arg1: 1, Shard: 200}
	wv.AppendWriteRun(0, []int64{77})
	if !k.handle(wv) {
		t.Fatal("forged OpWriteV not consumed")
	}
	if got := k.seg.Read(0, 1)[0]; got != 0 {
		t.Fatalf("forged write applied: word 0 = %d", got)
	}
	if !k.handle(&wire.Message{Op: wire.OpInvAck, Src: 1, Dst: 0, Seq: 9, Shard: 250}) {
		t.Fatal("forged OpInvAck not consumed")
	}
	if k.extra.CorruptDrops != 2 {
		t.Fatalf("CorruptDrops = %d, want 2", k.extra.CorruptDrops)
	}
}

// TestKernelShardsResolution checks the config defaulting: simulation stays
// at one shard (determinism), explicit values are clamped to the segment's
// stripe count, and negatives collapse to one.
func TestKernelShardsResolution(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want int
	}{
		{Config{NumPE: 2, Transport: TransportInproc, KernelShards: 99}, gmem.SegStripes},
		{Config{NumPE: 2, Transport: TransportInproc, KernelShards: -3}, 1},
		{Config{NumPE: 2, Transport: TransportInproc, KernelShards: 5}, 5},
	} {
		c, err := tc.cfg.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		if c.KernelShards != tc.want {
			t.Errorf("KernelShards %d -> %d, want %d", tc.cfg.KernelShards, c.KernelShards, tc.want)
		}
	}
}

// shardWorkload hammers remote global memory from every PE: scalar reads and
// writes, fetch-adds, a vectored gather and a block read, with barrier-ordered
// verification. It exercises every sharded code path.
func shardWorkload(pe *PE) error {
	bw := pe.Space().BlockWords
	n := pe.N()
	words := 16 * n * bw
	base := pe.AllocBlocks(words)
	ctr := pe.Alloc(1)
	pe.Barrier()
	// Each PE writes a disjoint slice spanning all homes and shards.
	chunk := words / n
	mine := base + uint64(pe.ID()*chunk)
	buf := make([]int64, chunk)
	for i := range buf {
		buf[i] = int64(pe.ID()*chunk + i)
	}
	pe.GMWriteBlock(mine, buf)
	pe.FetchAdd(ctr, 1)
	pe.Barrier()
	// Everyone verifies everything, via block read and scattered gather.
	got := pe.GMReadBlock(base, words)
	for i, v := range got {
		if v != int64(i) {
			return fmt.Errorf("PE %d: word %d = %d", pe.ID(), i, v)
		}
	}
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = base + uint64((i*37)%words)
	}
	for i, v := range pe.GMGather(addrs) {
		if v != int64((i*37)%words) {
			return fmt.Errorf("PE %d: gather %d = %d", pe.ID(), i, v)
		}
	}
	if v := pe.GMRead(ctr); v != int64(n) {
		return fmt.Errorf("PE %d: counter = %d, want %d", pe.ID(), v, n)
	}
	pe.Barrier()
	return nil
}

// TestShardedKernelServesGM runs the workload with shard workers forced on
// and the direct-read window forced off, so every remote access crosses the
// sharded message path.
func TestShardedKernelServesGM(t *testing.T) {
	res, err := Run(Config{
		NumPE: 4, Transport: TransportInproc,
		KernelShards: 8, DirectReads: -1,
	}, shardWorkload)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.ShardedMsgs == 0 {
		t.Error("no requests serviced by shard workers")
	}
	if res.Total.DirectGM != 0 {
		t.Errorf("DirectGM = %d with DirectReads forced off", res.Total.DirectGM)
	}
}

// TestDirectReadFastPath runs the workload with the one-sided window forced
// on and checks uncached remote scalar reads resolve without messages.
func TestDirectReadFastPath(t *testing.T) {
	res, err := Run(Config{
		NumPE: 4, Transport: TransportInproc,
		KernelShards: 4, DirectReads: 1,
	}, shardWorkload)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.DirectGM == 0 {
		t.Error("no direct-window reads with DirectReads forced on")
	}
	if res.Total.DirectGM > res.Total.RemoteGM {
		t.Errorf("DirectGM = %d > RemoteGM = %d", res.Total.DirectGM, res.Total.RemoteGM)
	}
	// The scalar GMRead traffic must have vanished from the wire.
	if msgs := res.Total.ByOp[wire.OpRead].Msgs; msgs != 0 {
		t.Errorf("OpRead messages = %d, want 0 (all scalar reads direct)", msgs)
	}
}

// TestDirectReadsDisabledWithCaching asserts the window never activates
// alongside the caching protocol, whose reads must reach the home directory.
func TestDirectReadsDisabledWithCaching(t *testing.T) {
	cfg := Config{
		NumPE: 2, Transport: TransportInproc,
		KernelShards: 2, DirectReads: 1, Caching: true,
	}
	var sawWindows atomic.Bool
	cfg.testInspect = func(ks []*Kernel, _ []*PE) {
		for _, k := range ks {
			if k.windows != nil {
				sawWindows.Store(true)
			}
		}
	}
	res, err := Run(cfg, func(pe *PE) error {
		a := pe.Alloc(4)
		pe.Barrier()
		if pe.ID() == 0 {
			pe.GMWrite(a, 7)
		}
		pe.Barrier()
		if v := pe.GMRead(a); v != 7 {
			return fmt.Errorf("read %d", v)
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if sawWindows.Load() {
		t.Error("direct windows wired despite Caching")
	}
	if res.Total.DirectGM != 0 {
		t.Errorf("DirectGM = %d under caching", res.Total.DirectGM)
	}
}

// TestShardedCheckpointRestart checkpoints under shard workers: the fence
// must quiesce every shard before the export, or it deadlocks/tears. (Kill
// and recovery with sharded state runs under the simulated transport in the
// stress tests; worker-mode fencing is only reachable here.)
func TestShardedCheckpointRestart(t *testing.T) {
	store, err := ckpt.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := func(pe *PE) error {
		bw := pe.Space().BlockWords
		words := 4 * pe.N() * bw
		base := pe.AllocBlocks(words)
		pe.Barrier()
		if pe.ID() == 0 {
			ws := make([]int64, words)
			for i := range ws {
				ws[i] = int64(i + 1)
			}
			pe.GMWriteBlock(base, ws)
		}
		pe.Barrier()
		if err := pe.Checkpoint(); err != nil {
			return err
		}
		got := pe.GMReadBlock(base, words)
		for i, v := range got {
			if v != int64(i+1) {
				return fmt.Errorf("PE %d: word %d = %d", pe.ID(), i, v)
			}
		}
		pe.Barrier()
		return nil
	}
	res, err := Run(Config{
		NumPE: 4, Transport: TransportInproc,
		KernelShards: 8, DirectReads: -1,
		Ckpt: &CheckpointConfig{Store: store},
	}, prog)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.Checkpoints == 0 {
		t.Fatal("no checkpoint recorded")
	}
}
