package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The same deterministic SPMD program must leave the identical global
// memory contents on every transport — the portability claim at the level
// of semantics, not just "it runs".
func TestCrossTransportGMStateIdentical(t *testing.T) {
	const words = 128
	program := func(out *[]int64) Program {
		return func(pe *PE) error {
			base := pe.Alloc(words)
			counter := pe.Alloc(1)
			// Phase 1: striped writes.
			for i := pe.ID(); i < words; i += pe.N() {
				pe.GMWrite(base+uint64(i), int64(i*i))
			}
			pe.Barrier()
			// Phase 2: dynamic pool doubling each word exactly once.
			for {
				j := pe.FetchAdd(counter, 1)
				if j >= words {
					break
				}
				v := pe.GMRead(base + uint64(j))
				pe.GMWrite(base+uint64(j), v*2)
			}
			pe.Barrier()
			if pe.ID() == 0 {
				*out = pe.GMReadBlock(base, words)
			}
			pe.Barrier()
			return nil
		}
	}
	results := map[TransportKind][]int64{}
	for _, tr := range []TransportKind{TransportSim, TransportInproc, TransportTCP} {
		cfg := simCfg(4)
		cfg.Transport = tr
		var out []int64
		res, err := Run(cfg, program(&out))
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if err := res.FirstErr(); err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		results[tr] = out
	}
	want := results[TransportSim]
	for i := 0; i < words; i++ {
		if want[i] != int64(i*i*2) {
			t.Fatalf("wrong final state at %d: %d", i, want[i])
		}
	}
	for tr, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges at word %d: %d vs %d", tr, i, got[i], want[i])
			}
		}
	}
}

// Float helpers must round-trip through global memory.
func TestGMFloatHelpers(t *testing.T) {
	allTransports(t, 2, func(pe *PE) error {
		base := pe.Alloc(32)
		if pe.ID() == 0 {
			pe.GMWriteF(base, 3.25)
			pe.GMWriteBlockF(base+1, []float64{-1.5, 0, 2.5e300})
		}
		pe.Barrier()
		if got := pe.GMReadF(base); got != 3.25 {
			return fmt.Errorf("GMReadF = %v", got)
		}
		fs := pe.GMReadBlockF(base+1, 3)
		if fs[0] != -1.5 || fs[1] != 0 || fs[2] != 2.5e300 {
			return fmt.Errorf("GMReadBlockF = %v", fs)
		}
		return nil
	})
}

// Stats accounting: barriers, locks and wait time must all be recorded.
func TestStatsAccounting(t *testing.T) {
	res, err := Run(simCfg(3), func(pe *PE) error {
		pe.Barrier()
		pe.Lock(1)
		pe.Compute(1e4)
		pe.Unlock(1)
		pe.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Total.Barriers != 6 {
		t.Fatalf("barriers = %d, want 6", res.Total.Barriers)
	}
	if res.Total.Locks != 3 {
		t.Fatalf("locks = %d, want 3", res.Total.Locks)
	}
	if res.Total.WaitTime <= 0 {
		t.Fatal("no wait time recorded")
	}
}

// Legacy mode must slow a fine-grained workload down without changing its
// answer.
func TestLegacyModeSlowsButAgrees(t *testing.T) {
	run := func(legacy bool) (int64, int64) {
		cfg := simCfg(2)
		cfg.Legacy = legacy
		var sum int64
		res, err := Run(cfg, func(pe *PE) error {
			base := pe.Alloc(16)
			for i := pe.ID(); i < 16; i += 2 {
				pe.GMWrite(base+uint64(i), int64(i))
			}
			pe.Barrier()
			if pe.ID() == 0 {
				for i := 0; i < 16; i++ {
					sum += pe.GMRead(base + uint64(i))
				}
			}
			pe.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := res.FirstErr(); err != nil {
			t.Fatal(err)
		}
		return sum, int64(res.Elapsed)
	}
	newSum, newTime := run(false)
	oldSum, oldTime := run(true)
	if newSum != oldSum || newSum != 120 {
		t.Fatalf("sums differ: %d vs %d", newSum, oldSum)
	}
	if oldTime <= newTime {
		t.Fatalf("legacy organisation not slower: %d vs %d", oldTime, newTime)
	}
}

// Switched medium must also preserve program results exactly.
func TestSwitchedMediumAgrees(t *testing.T) {
	run := func(switched bool) int64 {
		cfg := simCfg(4)
		cfg.Switched = switched
		var sum int64
		res, err := Run(cfg, func(pe *PE) error {
			base := pe.Alloc(64)
			counter := pe.Alloc(1)
			for {
				j := pe.FetchAdd(counter, 1)
				if j >= 64 {
					break
				}
				pe.GMWrite(base+uint64(j), j*3)
			}
			pe.Barrier()
			if pe.ID() == 0 {
				for i := 0; i < 64; i++ {
					sum += pe.GMRead(base + uint64(i))
				}
			}
			pe.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := res.FirstErr(); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("media disagree: %d vs %d", a, b)
	}
}

// The protocol trace must record kernel-handled messages in virtual-time
// order with their kernels.
func TestMessageLogRecordsProtocol(t *testing.T) {
	var buf bytes.Buffer
	cfg := simCfg(2)
	cfg.MessageLog = &buf
	res, err := Run(cfg, func(pe *PE) error {
		base := pe.Alloc(8)
		if pe.ID() == 1 {
			pe.GMWrite(base, 5) // remote write to kernel 0
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	for _, want := range []string{"write 1->0", "write-ack 0->1", "barrier-arrive", "barrier-release", "proc-register"} {
		if !strings.Contains(log, want) {
			t.Fatalf("protocol trace missing %q:\n%s", want, log)
		}
	}
	// Every line carries a timestamp and a kernel id.
	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		if !strings.HasPrefix(line, "t=") || !strings.Contains(line, " k=") {
			t.Fatalf("malformed trace line %q", line)
		}
	}
}
