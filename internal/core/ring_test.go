package core

import (
	"fmt"
	"testing"

	"repro/internal/gmem"
	"repro/internal/wire"
)

// TestRingWriteFastPath runs a scalar-write-heavy workload with the
// one-sided paths forced on: every uncached remote scalar write into a
// co-located home must resolve through a submission ring — zero OpWrite
// messages on the wire — and every value must read back correctly.
func TestRingWriteFastPath(t *testing.T) {
	prog := func(pe *PE) error {
		n := pe.N()
		bw := pe.Space().BlockWords
		words := 4 * n * bw
		base := pe.AllocBlocks(words)
		pe.Barrier()
		// Each PE writes a disjoint scalar stride spanning every home.
		for i := pe.ID(); i < words; i += n {
			pe.GMWrite(base+uint64(i), int64(i+1))
		}
		pe.Barrier()
		for i := 0; i < words; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(i+1) {
				return fmt.Errorf("PE %d: word %d = %d", pe.ID(), i, v)
			}
		}
		pe.Barrier()
		return nil
	}
	res, err := Run(Config{
		NumPE: 4, Transport: TransportInproc,
		KernelShards: 4, DirectReads: 1,
	}, prog)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.RingGM == 0 {
		t.Error("no ring writes with rings available")
	}
	if res.Total.RingGM > res.Total.RemoteGM {
		t.Errorf("RingGM = %d > RemoteGM = %d", res.Total.RingGM, res.Total.RemoteGM)
	}
	if res.Total.RingDrained != res.Total.RingGM {
		t.Errorf("RingDrained = %d, want %d (every submitted write applied exactly once)",
			res.Total.RingDrained, res.Total.RingGM)
	}
	// The scalar write traffic must have vanished from the wire.
	if msgs := res.Total.ByOp[wire.OpWrite].Msgs; msgs != 0 {
		t.Errorf("OpWrite messages = %d, want 0 (all scalar writes through rings)", msgs)
	}
}

// TestRingWritesDisabledWithoutWorkers pins the drainer requirement: on a
// real transport with one shard there is no worker loop to drain a ring, so
// rings must stay off even when forced, and writes fall back to messages.
func TestRingWritesDisabledWithoutWorkers(t *testing.T) {
	res, err := Run(Config{
		NumPE: 2, Transport: TransportInproc,
		KernelShards: 1, DirectReads: 1, WriteRings: 1,
	}, func(pe *PE) error {
		a := pe.Alloc(64)
		pe.Barrier()
		pe.GMWrite(a+uint64(pe.ID()), int64(pe.ID()+1))
		pe.Barrier()
		for i := 0; i < pe.N(); i++ {
			if v := pe.GMRead(a + uint64(i)); v != int64(i+1) {
				return fmt.Errorf("word %d = %d", i, v)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.RingGM != 0 {
		t.Errorf("RingGM = %d on a single-shard real transport, want 0", res.Total.RingGM)
	}
}

// TestRingWriteDedupExactlyOnce proves ring sequences and message sequences
// share one exactly-once space: a write applied through the ring must absorb
// a message-path retry carrying the same (Src, Seq), and vice versa. The
// sentinel overwrite between the two deliveries makes a double-apply visible
// as a value regression.
func TestRingWriteDedupExactlyOnce(t *testing.T) {
	_, ks := testKernels(t, 2, func(cfg *Config) { cfg.KernelShards = 2 })
	k := ks[0]
	addr := uint64(0) // block 0: homed at kernel 0, shard 0
	sh := k.shards[k.space.ShardOf(addr, k.nshards)]
	if sh.ring == nil {
		t.Fatal("no ring on a sharded inproc kernel")
	}

	// Ring first, then a message-path retry of the same logical write.
	pos, ok := sh.ring.Push(gmem.RingWrite{Addr: addr, Val: 7, Seq: 5, Src: 1})
	if !ok {
		t.Fatal("push rejected")
	}
	sh.drainRing()
	if !sh.ring.Consumed(pos) {
		t.Fatal("drainRing did not consume the slot")
	}
	if v := k.seg.Read(addr, 1)[0]; v != 7 {
		t.Fatalf("ring write not applied: %d", v)
	}
	k.seg.WriteWord(addr, 1000) // sentinel: a re-apply would clobber this
	retry := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 5, Addr: addr, Flags: wire.FlagRetry}
	retry.PutWord(7)
	sh.handleGM(retry)
	if v := k.seg.Read(addr, 1)[0]; v != 1000 {
		t.Fatalf("message retry of a ring write re-applied: %d, want sentinel 1000", v)
	}
	if sh.extra.DupRequests != 1 {
		t.Fatalf("DupRequests = %d, want 1", sh.extra.DupRequests)
	}

	// Message first, then a raced ring submission with the same (Src, Seq).
	first := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 6, Addr: addr}
	first.PutWord(8)
	sh.handleGM(first)
	if v := k.seg.Read(addr, 1)[0]; v != 8 {
		t.Fatalf("message write not applied: %d", v)
	}
	k.seg.WriteWord(addr, 2000)
	if _, ok := sh.ring.Push(gmem.RingWrite{Addr: addr, Val: 8, Seq: 6, Src: 1}); !ok {
		t.Fatal("push rejected")
	}
	sh.drainRing()
	if v := k.seg.Read(addr, 1)[0]; v != 2000 {
		t.Fatalf("ring duplicate of a message write re-applied: %d, want sentinel 2000", v)
	}
	if sh.extra.DupRequests != 2 {
		t.Fatalf("DupRequests = %d, want 2", sh.extra.DupRequests)
	}
	// Duplicates consume ring slots but never count as drained work.
	if sh.extra.RingDrained != 1 {
		t.Fatalf("RingDrained = %d, want 1 (the one fresh ring write)", sh.extra.RingDrained)
	}
}
