package core_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

// recoverConfig is the shared cluster shape for the recovery tests: three
// PEs so the dead-peer quorum vote is unambiguous, a bounded request
// timeout so the victim's orphaned requests fail instead of hanging, and a
// history recorder so the checker can audit the post-recovery execution.
func recoverConfig(t *testing.T, store ckpt.Store, kills []simnet.Kill) core.Config {
	t.Helper()
	return core.Config{
		NumPE:          3,
		Platform:       platform.SparcSunOS,
		RequestTimeout: 50 * sim.Millisecond,
		RequestRetries: 2,
		RecordHistory:  true,
		Kills:          kills,
		Ckpt:           &core.CheckpointConfig{Store: store},
	}
}

// recoverProgram writes recognisable values into every kernel's slice
// (including the future victim's), checkpoints, and then marches into the
// scheduled kill by hammering remote reads. The restarted incarnation
// instead verifies that the snapshot brought every value — and the
// application blob — back.
func recoverProgram(killAt sim.Time) core.Program {
	return func(pe *core.PE) error {
		var blob []byte
		restored := pe.RegisterCheckpoint(
			func() []byte { return []byte{42, byte(pe.ID())} },
			func(b []byte) { blob = append([]byte(nil), b...) },
		)

		// 3 blocks x 32 words: homes 0, 1, 2 under the block-cyclic map,
		// so the victim (PE 2) owns real data that must be redistributed.
		base := pe.AllocBlocks(96)

		if restored {
			if want := []byte{42, byte(pe.ID())}; !bytes.Equal(blob, want) {
				return fmt.Errorf("PE %d: restored blob %v, want %v", pe.ID(), blob, want)
			}
			if g := pe.ViewGeneration(); g != 1 {
				return fmt.Errorf("PE %d: view generation %d after one recovery, want 1", pe.ID(), g)
			}
			if e := pe.CheckpointEpoch(); e != 1 {
				return fmt.Errorf("PE %d: checkpoint epoch %d, want 1", pe.ID(), e)
			}
			if v := pe.GMRead(base + 5); v != 1234 {
				return fmt.Errorf("PE %d: word on home 0 = %d after restore, want 1234", pe.ID(), v)
			}
			if v := pe.GMRead(base + 70); v != 5678 {
				return fmt.Errorf("PE %d: word on home 2 = %d after restore, want 5678", pe.ID(), v)
			}
			pe.Barrier()
			return nil
		}

		if pe.ID() == 0 {
			pe.GMWrite(base+5, 1234)  // block 0, home 0
			pe.GMWrite(base+70, 5678) // block 2, home 2 — the victim's slice
		}
		pe.Barrier()
		if err := pe.Checkpoint(); err != nil {
			return fmt.Errorf("PE %d: checkpoint: %v", pe.ID(), err)
		}

		// March into the kill: each PE reads from the next rank's home so
		// every survivor eventually touches a dead kernel (or, for the
		// victim, sends into its own closed station) and aborts. The time
		// bound catches the one pairing (0 -> 1) that never fails.
		remote := base + uint64(((pe.ID()+1)%3)*32)
		for pe.Now() < 4*killAt {
			_ = pe.GMRead(remote)
		}
		pe.Barrier()
		return nil
	}
}

// TestRunWithRecoveryRestoresSnapshot is the end-to-end tentpole test: a
// scheduled kill after the first checkpoint must abort the run, and the
// automatic restart must restore every kernel slice (including the dead
// PE's), the application blobs, and pass the history checker.
func TestRunWithRecoveryRestoresSnapshot(t *testing.T) {
	store, err := ckpt.OpenDir(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	const killAt = sim.Time(1 * sim.Second)
	cfg := recoverConfig(t, store, []simnet.Kill{{Node: 2, At: sim.Duration(killAt)}})

	res, rep, err := core.RunWithRecovery(cfg, 3, recoverProgram(killAt))
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	if ferr := res.FirstErr(); ferr != nil {
		t.Fatalf("post-recovery run failed: %v", ferr)
	}
	if !rep.Recovered() || rep.Attempts != 2 || len(rep.Recoveries) != 1 {
		t.Fatalf("report = %+v, want exactly one recovery over two attempts", rep)
	}

	ev := rep.Recoveries[0]
	if len(ev.DeadPEs) != 1 || ev.DeadPEs[0] != 2 {
		t.Errorf("DeadPEs = %v, want [2]", ev.DeadPEs)
	}
	if ev.Coordinator != 0 {
		t.Errorf("Coordinator = %d, want 0 (lowest live rank)", ev.Coordinator)
	}
	if ev.Gen != 1 || ev.Epoch != 1 {
		t.Errorf("restored gen=%d epoch=%d, want 1/1", ev.Gen, ev.Epoch)
	}
	if ev.DetectedAt < sim.Duration(killAt) {
		t.Errorf("DetectedAt = %v, before the kill at %v", ev.DetectedAt, killAt)
	}
	if ev.RollbackOps == 0 {
		t.Errorf("RollbackOps = 0, want > 0 (the read storm past the mark was discarded)")
	}

	if res.Total.Restores != 3 {
		t.Errorf("Total.Restores = %d, want 3", res.Total.Restores)
	}
	if res.Total.Checkpoints != 0 {
		// The final (restored) run verifies and exits without checkpointing.
		t.Errorf("Total.Checkpoints = %d in the restored run, want 0", res.Total.Checkpoints)
	}

	if res.History == nil {
		t.Fatal("History is nil with RecordHistory set")
	}
	if rpt := check.Check(res.History); !rpt.OK() {
		t.Fatalf("post-recovery history has violations:\n%s", rpt)
	}
}

// TestRecoveryRebindsDirectReadAndRings kills a PE with the one-sided paths
// on and checks the restarted cluster rebinds both to the FRESH segments:
// post-restore remote reads must resolve through the direct window and
// post-restore remote writes through the submission rings, against the
// re-imported memory (stale window/ring bindings would read the corpse
// segments of the failed attempt or hang on an undrained ring).
func TestRecoveryRebindsDirectReadAndRings(t *testing.T) {
	store, err := ckpt.OpenDir(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	const killAt = sim.Time(1 * sim.Second)
	cfg := recoverConfig(t, store, []simnet.Kill{{Node: 2, At: sim.Duration(killAt)}})
	cfg.KernelShards = 2 // windows + rings default on under the simulated transport

	res, rep, err := core.RunWithRecovery(cfg, 3, func(pe *core.PE) error {
		restored := pe.RegisterCheckpoint(func() []byte { return nil }, func([]byte) {})
		base := pe.AllocBlocks(96)
		remote := base + uint64(((pe.ID()+1)%3)*32) // next rank's home

		if restored {
			// Snapshot state must be visible through the rebound window...
			if v := pe.GMRead(base + 5); v != 1234 {
				return fmt.Errorf("PE %d: restored word = %d, want 1234", pe.ID(), v)
			}
			// ...and the rebound rings must deliver fresh writes into the
			// re-imported segments, read back one-sidedly.
			addr := remote + uint64(pe.ID())
			pe.GMWrite(addr, int64(100+pe.ID()))
			if v := pe.GMRead(addr); v != int64(100+pe.ID()) {
				return fmt.Errorf("PE %d: ring write read back %d, want %d", pe.ID(), v, 100+pe.ID())
			}
			pe.Barrier()
			return nil
		}

		if pe.ID() == 0 {
			pe.GMWrite(base+5, 1234) // block 0, home 0
		}
		pe.Barrier()
		if err := pe.Checkpoint(); err != nil {
			return fmt.Errorf("PE %d: checkpoint: %v", pe.ID(), err)
		}
		// March into the kill (see recoverProgram).
		for pe.Now() < 4*killAt {
			_ = pe.GMRead(remote)
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	if ferr := res.FirstErr(); ferr != nil {
		t.Fatalf("post-recovery run failed: %v", ferr)
	}
	if !rep.Recovered() {
		t.Fatalf("kill triggered no recovery: %+v", rep)
	}
	if res.Total.DirectGM == 0 {
		t.Error("DirectGM = 0: restored run never used the rebound window")
	}
	if res.Total.RingGM == 0 {
		t.Error("RingGM = 0: restored run never used the rebound rings")
	}
	if rpt := check.Check(res.History); !rpt.OK() {
		t.Fatalf("post-recovery history has violations:\n%s", rpt)
	}
}

// TestCheckpointCountersAndStore verifies the failure-free path: checkpoints
// commit generations, bump counters, and never trigger a recovery.
func TestCheckpointCountersAndStore(t *testing.T) {
	store, err := ckpt.OpenDir(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	cfg := recoverConfig(t, store, nil)

	res, rep, err := core.RunWithRecovery(cfg, 1, func(pe *core.PE) error {
		pe.RegisterCheckpoint(func() []byte { return []byte("s") }, func([]byte) {})
		base := pe.AllocBlocks(96)
		for round := 0; round < 3; round++ {
			pe.GMWrite(base+uint64(pe.ID()), int64(round))
			pe.Barrier()
			if err := pe.Checkpoint(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	if ferr := res.FirstErr(); ferr != nil {
		t.Fatalf("run failed: %v", ferr)
	}
	if rep.Recovered() {
		t.Fatalf("unexpected recovery: %+v", rep)
	}
	if res.Total.Checkpoints != 9 {
		t.Errorf("Total.Checkpoints = %d, want 9 (3 PEs x 3 epochs)", res.Total.Checkpoints)
	}
	if res.Total.SnapshotBytes == 0 {
		t.Error("Total.SnapshotBytes = 0, want > 0")
	}
	gen, n, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: gen=%d ok=%v err=%v", gen, ok, err)
	}
	if gen != 3 || n != 3 {
		t.Errorf("Latest = gen %d numPE %d, want 3/3", gen, n)
	}
}

// tamperingStore corrupts every stored object on disk before the first
// read, modelling at-rest corruption; the store's CRC/content-hash check
// must refuse the snapshot and recovery must abort with a clear error.
type tamperingStore struct {
	ckpt.Store
	root     string
	tampered bool
}

func (s *tamperingStore) ReadSlice(gen uint64, pe int) ([]byte, error) {
	if !s.tampered {
		s.tampered = true
		objs, err := filepath.Glob(filepath.Join(s.root, "objects", "*"))
		if err != nil || len(objs) == 0 {
			return nil, fmt.Errorf("tamperingStore: no objects to corrupt (%v)", err)
		}
		for _, p := range objs {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(p, data, 0o644); err != nil {
				return nil, err
			}
		}
	}
	return s.Store.ReadSlice(gen, pe)
}

// TestRecoveryRejectsCorruptSnapshot flips bits in the snapshot objects
// between failure and restart: RunWithRecovery must surface the integrity
// failure instead of restoring garbage.
func TestRecoveryRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	inner, err := ckpt.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	store := &tamperingStore{Store: inner, root: dir}
	const killAt = sim.Time(1 * sim.Second)
	cfg := recoverConfig(t, store, []simnet.Kill{{Node: 2, At: sim.Duration(killAt)}})

	_, rep, err := core.RunWithRecovery(cfg, 3, recoverProgram(killAt))
	if err == nil {
		t.Fatal("RunWithRecovery accepted a corrupted snapshot")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
	if rep.Recovered() {
		t.Fatalf("recovery claimed success from a corrupt snapshot: %+v", rep)
	}
}
