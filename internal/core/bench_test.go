package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
)

// runBenchProgram runs body once over an inproc cluster, b.N iterations
// inside the program (cluster construction excluded from the loop cost
// only approximately; these benchmarks measure runtime primitives, not
// the constructor).
func runBenchProgram(b *testing.B, n int, body Program) {
	b.Helper()
	res, err := Run(Config{NumPE: n, Transport: TransportInproc}, body)
	if err != nil {
		b.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGMRemoteWordRoundTrip measures one remote read request/response
// through kernel service, wire codec and mailbox plumbing (inproc).
func BenchmarkGMRemoteWordRoundTrip(b *testing.B) {
	runBenchProgram(b, 2, func(pe *PE) error {
		addr := pe.Alloc(64)
		// Find a word homed at the *other* kernel.
		for pe.Space().HomeOf(addr) == pe.ID() {
			addr++
		}
		pe.Barrier()
		if pe.ID() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pe.GMRead(addr)
			}
			b.StopTimer()
		}
		pe.Barrier()
		return nil
	})
}

// BenchmarkBarrier measures the central barrier end to end on 4 PEs.
func BenchmarkBarrier(b *testing.B) {
	runBenchProgram(b, 4, func(pe *PE) error {
		if pe.ID() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			pe.Barrier()
		}
		if pe.ID() == 0 {
			b.StopTimer()
		}
		pe.Barrier()
		return nil
	})
}

// BenchmarkFetchAddPool measures the job-pool primitive under contention.
func BenchmarkFetchAddPool(b *testing.B) {
	runBenchProgram(b, 4, func(pe *PE) error {
		counter := pe.Alloc(1)
		pe.Barrier()
		if pe.ID() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			pe.FetchAdd(counter, 1)
		}
		if pe.ID() == 0 {
			b.StopTimer()
		}
		pe.Barrier()
		return nil
	})
}

// BenchmarkSimClusterConstruction measures how long a simulated 6-PE
// cluster takes to build and tear down with a trivial program.
func BenchmarkSimClusterConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{NumPE: 6, Platform: platform.SparcSunOS, Seed: 1},
			func(pe *PE) error { return nil })
		if err != nil || res.FirstErr() != nil {
			b.Fatal(err, res.FirstErr())
		}
	}
}

// benchRemoteRead builds the remote-read round trip loop used by the
// tracing-overhead benchmarks.
func benchRemoteRead(b *testing.B, cfg Config) {
	cfg.NumPE = 2
	cfg.Transport = TransportInproc
	res, err := Run(cfg, func(pe *PE) error {
		addr := pe.Alloc(64)
		for pe.Space().HomeOf(addr) == pe.ID() {
			addr++
		}
		pe.Barrier()
		if pe.ID() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pe.GMRead(addr)
			}
			b.StopTimer()
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoundTripTracingDisabled is the default path: histograms are
// always on, span tracing costs one nil check.
func BenchmarkRoundTripTracingDisabled(b *testing.B) {
	benchRemoteRead(b, Config{})
}

// BenchmarkRoundTripTracingEnabled records a span per round trip on both
// the requester and home sides.
func BenchmarkRoundTripTracingEnabled(b *testing.B) {
	benchRemoteRead(b, Config{Tracing: trace.TracingConfig{Enabled: true, RingSize: 1 << 16}})
}
