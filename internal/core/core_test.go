package core

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

// simCfg is the base configuration for simulated-cluster tests.
func simCfg(n int) Config {
	return Config{NumPE: n, Platform: platform.SparcSunOS, Seed: 1}
}

// allTransports runs the test body against every transport.
func allTransports(t *testing.T, n int, body Program) {
	t.Helper()
	for _, tr := range []TransportKind{TransportSim, TransportInproc, TransportTCP} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			cfg := simCfg(n)
			cfg.Transport = tr
			res, err := Run(cfg, body)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatalf("program error: %v", err)
			}
		})
	}
}

func TestRunTrivialProgram(t *testing.T) {
	allTransports(t, 4, func(pe *PE) error {
		if pe.ID() < 0 || pe.ID() >= pe.N() {
			return fmt.Errorf("bad identity %d/%d", pe.ID(), pe.N())
		}
		return nil
	})
}

func TestGMRemoteReadWrite(t *testing.T) {
	allTransports(t, 4, func(pe *PE) error {
		base := pe.Alloc(256) // spans all homes
		// Each PE writes a distinct stripe, everyone reads everything back.
		for i := pe.ID(); i < 256; i += pe.N() {
			pe.GMWrite(base+uint64(i), int64(1000+i))
		}
		pe.Barrier()
		for i := 0; i < 256; i++ {
			if v := pe.GMRead(base + uint64(i)); v != int64(1000+i) {
				return fmt.Errorf("PE %d: word %d = %d, want %d", pe.ID(), i, v, 1000+i)
			}
		}
		return nil
	})
}

func TestGMBlockOpsSpanHomes(t *testing.T) {
	allTransports(t, 3, func(pe *PE) error {
		base := pe.Alloc(500)
		if pe.ID() == 0 {
			ws := make([]int64, 500)
			for i := range ws {
				ws[i] = int64(i * 3)
			}
			pe.GMWriteBlock(base, ws)
		}
		pe.Barrier()
		got := pe.GMReadBlock(base, 500)
		for i, v := range got {
			if v != int64(i*3) {
				return fmt.Errorf("PE %d: block word %d = %d", pe.ID(), i, v)
			}
		}
		return nil
	})
}

func TestFetchAddJobCounter(t *testing.T) {
	const jobs = 100
	for _, tr := range []TransportKind{TransportSim, TransportInproc, TransportTCP} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			cfg := simCfg(5)
			cfg.Transport = tr
			claimed := make([][]int64, 5)
			res, err := Run(cfg, func(pe *PE) error {
				counter := pe.Alloc(1)
				var mine []int64
				for {
					j := pe.FetchAdd(counter, 1)
					if j >= jobs {
						break
					}
					mine = append(mine, j)
				}
				claimed[pe.ID()] = mine
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			seen := make(map[int64]bool)
			for _, mine := range claimed {
				for _, j := range mine {
					if seen[j] {
						t.Fatalf("job %d claimed twice", j)
					}
					seen[j] = true
				}
			}
			if len(seen) != jobs {
				t.Fatalf("claimed %d jobs, want %d", len(seen), jobs)
			}
		})
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	allTransports(t, 6, func(pe *PE) error {
		flags := pe.Alloc(6)
		for phase := 0; phase < 4; phase++ {
			pe.GMWrite(flags+uint64(pe.ID()), int64(phase+1))
			pe.Barrier()
			// After the barrier, every PE must have finished its write.
			for i := 0; i < 6; i++ {
				if v := pe.GMRead(flags + uint64(i)); v != int64(phase+1) {
					return fmt.Errorf("PE %d phase %d: flag %d = %d", pe.ID(), phase, i, v)
				}
			}
			pe.Barrier()
		}
		return nil
	})
}

func TestTreeBarrierMatchesCentral(t *testing.T) {
	for _, kind := range []BarrierKind{BarrierCentral, BarrierTree} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := simCfg(7)
			cfg.Barrier = kind
			res, err := Run(cfg, func(pe *PE) error {
				x := pe.Alloc(7)
				for round := 0; round < 3; round++ {
					pe.GMWrite(x+uint64(pe.ID()), int64(round))
					pe.Barrier()
					for i := 0; i < 7; i++ {
						if v := pe.GMRead(x + uint64(i)); v != int64(round) {
							return fmt.Errorf("round %d: saw %d", round, v)
						}
					}
					pe.Barrier()
				}
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Non-atomic read-modify-write under a lock: any mutual-exclusion
	// violation loses increments.
	const perPE = 20
	allTransports(t, 5, func(pe *PE) error {
		cell := pe.Alloc(1)
		for i := 0; i < perPE; i++ {
			pe.Lock(1)
			v := pe.GMRead(cell)
			pe.Compute(10)
			pe.GMWrite(cell, v+1)
			pe.Unlock(1)
		}
		pe.Barrier()
		if v := pe.GMRead(cell); v != int64(perPE*pe.N()) {
			return fmt.Errorf("counter = %d, want %d", v, perPE*pe.N())
		}
		return nil
	})
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	allTransports(t, 2, func(pe *PE) error {
		data := pe.Alloc(1)
		if pe.ID() == 0 {
			pe.GMWrite(data, 77)
			pe.SemPost(3)
			return nil
		}
		pe.SemWait(3)
		if v := pe.GMRead(data); v != 77 {
			return fmt.Errorf("consumer saw %d before producer finished", v)
		}
		return nil
	})
}

func TestUserMessagesPingPong(t *testing.T) {
	allTransports(t, 2, func(pe *PE) error {
		const rounds = 5
		if pe.ID() == 0 {
			for i := 0; i < rounds; i++ {
				pe.SendMsg(1, 10, []byte{byte(i)})
				src, payload := pe.RecvMsg(11)
				if src != 1 || payload[0] != byte(i+100) {
					return fmt.Errorf("bad pong %d from %d", payload[0], src)
				}
			}
			return nil
		}
		for i := 0; i < rounds; i++ {
			src, payload := pe.RecvMsg(10)
			if src != 0 {
				return fmt.Errorf("ping from %d", src)
			}
			pe.SendMsg(0, 11, []byte{payload[0] + 100})
		}
		return nil
	})
}

func TestAllReduce(t *testing.T) {
	allTransports(t, 6, func(pe *PE) error {
		sum := pe.AllReduceSum(float64(pe.ID() + 1))
		if sum != 21 { // 1+2+...+6
			return fmt.Errorf("sum = %v, want 21", sum)
		}
		max := pe.AllReduceMax(float64(pe.ID()))
		if max != 5 {
			return fmt.Errorf("max = %v, want 5", max)
		}
		return nil
	})
}

func TestProcessTableSSI(t *testing.T) {
	allTransports(t, 4, func(pe *PE) error {
		if pe.GPID() <= 0 {
			return fmt.Errorf("no global pid assigned")
		}
		pe.Barrier()
		procs := pe.Processes()
		if len(procs) != 4 {
			return fmt.Errorf("process table has %d entries, want 4", len(procs))
		}
		kernels := map[int32]bool{}
		for _, p := range procs {
			if p.State.String() != "running" {
				return fmt.Errorf("process %d not running: %v", p.GPID, p.State)
			}
			kernels[p.Kernel] = true
		}
		if len(kernels) != 4 {
			return fmt.Errorf("table covers %d kernels, want 4", len(kernels))
		}
		pe.Barrier()
		return nil
	})
}

func TestPingLatencyPositiveUnderSim(t *testing.T) {
	cfg := simCfg(2)
	res, err := Run(cfg, func(pe *PE) error {
		if pe.ID() != 0 {
			return nil
		}
		if d := pe.Ping(1); d <= 0 {
			return fmt.Errorf("ping latency %v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestElapsedGrowsWithWork(t *testing.T) {
	elapsed := func(ops float64) sim.Duration {
		res, err := Run(simCfg(2), func(pe *PE) error {
			pe.Compute(ops)
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Elapsed
	}
	if e1, e2 := elapsed(1e6), elapsed(3e6); e2 <= e1 {
		t.Fatalf("elapsed did not grow with work: %v vs %v", e1, e2)
	}
}

func TestVirtualClusterOverloadSlowsCompute(t *testing.T) {
	elapsed := func(n int) sim.Duration {
		res, err := Run(simCfg(n), func(pe *PE) error {
			pe.Compute(1e6)
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Elapsed
	}
	six, twelve := elapsed(6), elapsed(12)
	if twelve < 2*six {
		t.Fatalf("12 PEs on 6 machines (%v) should be >=2x slower than 6 PEs (%v)", twelve, six)
	}
}

func TestDeterministicElapsedAcrossRuns(t *testing.T) {
	run := func() sim.Duration {
		res, err := Run(simCfg(5), func(pe *PE) error {
			base := pe.Alloc(64)
			for i := 0; i < 20; i++ {
				pe.FetchAdd(base, 1)
				pe.Compute(1000)
			}
			pe.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Elapsed
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic elapsed: %v vs %v", got, first)
		}
	}
}

func TestStatsAreCollected(t *testing.T) {
	res, err := Run(simCfg(3), func(pe *PE) error {
		base := pe.Alloc(64)
		pe.GMWrite(base+uint64(pe.ID()), 1)
		pe.Barrier()
		pe.GMRead(base + uint64((pe.ID()+1)%3))
		pe.Compute(1e5)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.PerPE) != 3 {
		t.Fatalf("PerPE has %d entries", len(res.PerPE))
	}
	if res.Total.MsgsSent == 0 || res.Total.ComputeTime == 0 || res.Total.Barriers != 3 {
		t.Fatalf("stats incomplete: %+v", res.Total)
	}
	if res.Bus.Frames == 0 {
		t.Fatal("no bus frames recorded")
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	res, err := Run(simCfg(3), func(pe *PE) error {
		if pe.ID() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FirstErr() == nil || res.Errs[1] == nil {
		t.Fatal("program error lost")
	}
	if res.Errs[0] != nil || res.Errs[2] != nil {
		t.Fatal("healthy PEs reported errors")
	}
}

func TestPanicInProgramBecomesError(t *testing.T) {
	res, err := Run(simCfg(2), func(pe *PE) error {
		if pe.ID() == 1 {
			panic("deliberate")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errs[1] == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{NumPE: 0}, func(pe *PE) error { return nil }); err == nil {
		t.Fatal("zero PEs accepted")
	}
	if _, err := Run(Config{NumPE: 2}, func(pe *PE) error { return nil }); err == nil {
		t.Fatal("sim transport without platform accepted")
	}
	if _, err := Run(Config{NumPE: 2, Transport: "bogus"}, func(pe *PE) error { return nil }); err == nil {
		t.Fatal("bogus transport accepted")
	}
}

func TestHostnamesExposeVirtualCluster(t *testing.T) {
	hosts := make([]string, 12)
	res, err := Run(simCfg(12), func(pe *PE) error {
		hosts[pe.ID()] = pe.Hostname()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatalf("Run: %v %v", err, res.FirstErr())
	}
	if hosts[0] != hosts[6] {
		t.Fatal("PEs 0 and 6 should share a machine")
	}
	if hosts[0] == hosts[1] {
		t.Fatal("PEs 0 and 1 should not share a machine")
	}
}
