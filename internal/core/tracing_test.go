package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// tracedProgram exercises every span source: remote reads/writes, a block
// transfer, a lock critical section and barriers.
func tracedProgram(pe *PE) error {
	base := pe.Alloc(64)
	for i := pe.ID(); i < 64; i += pe.N() {
		pe.GMWrite(base+uint64(i), int64(i))
	}
	pe.Barrier()
	_ = pe.GMReadBlock(base, 64)
	pe.Lock(1)
	pe.GMWrite(base, pe.GMRead(base)+1)
	pe.Unlock(1)
	pe.Barrier()
	return nil
}

func TestTracingSpansRecorded(t *testing.T) {
	cfg := simCfg(4)
	cfg.Tracing = trace.TracingConfig{Enabled: true}
	res, err := Run(cfg, tracedProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("tracing enabled but no spans recorded")
	}

	counts := map[trace.SpanKind]int{}
	for i := range res.Spans {
		s := &res.Spans[i]
		counts[s.Kind]++
		if s.End < s.Start {
			t.Fatalf("span %v ends before it starts: %+v", s.Kind, s)
		}
		if s.Kind == trace.SpanRequest && (s.Sent < s.Start || s.Sent > s.End) {
			t.Fatalf("request span Sent outside [Start,End]: %+v", s)
		}
		if i > 0 && s.Start < res.Spans[i-1].Start {
			t.Fatal("Result.Spans not sorted by start time")
		}
	}
	if counts[trace.SpanRun] != 4 {
		t.Fatalf("run spans = %d, want one per PE", counts[trace.SpanRun])
	}
	for _, k := range []trace.SpanKind{trace.SpanRequest, trace.SpanService, trace.SpanBarrier, trace.SpanLock, trace.SpanTransfer} {
		if counts[k] == 0 {
			t.Fatalf("no %v spans recorded (have %v)", k, counts)
		}
	}

	// Every request span must have a matching home-side service span,
	// correlated by (requester, seq).
	type key struct {
		requester int32
		seq       uint64
	}
	served := map[key]bool{}
	for i := range res.Spans {
		if s := &res.Spans[i]; s.Kind == trace.SpanService {
			served[key{s.Peer, s.Seq}] = true
		}
	}
	for i := range res.Spans {
		if s := &res.Spans[i]; s.Kind == trace.SpanRequest {
			if !served[key{s.PE, s.Seq}] {
				t.Fatalf("request span with no service span: %+v", s)
			}
		}
	}

	// The per-PE run spans must account for (essentially all of) the wall
	// time: each PE's run span stretches from program start to its return.
	var runCover sim.Duration
	for i := range res.Spans {
		if s := &res.Spans[i]; s.Kind == trace.SpanRun {
			if d := s.Duration(); d > runCover {
				runCover = d
			}
		}
	}
	if res.Elapsed > 0 && float64(runCover) < 0.95*float64(res.Elapsed) {
		t.Fatalf("run spans cover %v of %v elapsed (<95%%)", runCover, res.Elapsed)
	}
}

func TestTracingChromeExport(t *testing.T) {
	cfg := simCfg(4)
	cfg.Tracing = trace.TracingConfig{Enabled: true}
	res, err := Run(cfg, tracedProgram)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(events) < len(res.Spans) {
		t.Fatalf("%d events for %d spans", len(events), len(res.Spans))
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	res, err := Run(simCfg(2), tracedProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 0 {
		t.Fatalf("tracing disabled but %d spans recorded", len(res.Spans))
	}
	if err := res.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteChromeTrace must fail on an untraced run")
	}
}

func TestTracingSampling(t *testing.T) {
	full := simCfg(4)
	full.Tracing = trace.TracingConfig{Enabled: true}
	sampled := simCfg(4)
	sampled.Tracing = trace.TracingConfig{Enabled: true, Sample: 4}

	reqSpans := func(cfg Config) int {
		res, err := Run(cfg, tracedProgram)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range res.Spans {
			if res.Spans[i].Kind == trace.SpanRequest {
				n++
			}
		}
		return n
	}
	nFull, nSampled := reqSpans(full), reqSpans(sampled)
	if nSampled == 0 || nSampled*2 >= nFull {
		t.Fatalf("sampling 1/4: %d of %d request spans survived", nSampled, nFull)
	}
}

func TestTracingRingWraparoundInRun(t *testing.T) {
	cfg := simCfg(2)
	cfg.Tracing = trace.TracingConfig{Enabled: true, RingSize: 8}
	res, err := Run(cfg, tracedProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny rings must cap retained spans without corrupting the result.
	if len(res.Spans) > 4*8 { // app+kernel rings per PE
		t.Fatalf("%d spans retained with ring size 8", len(res.Spans))
	}
	for i := range res.Spans {
		if res.Spans[i].End < res.Spans[i].Start {
			t.Fatalf("corrupt span after wraparound: %+v", res.Spans[i])
		}
	}
}

// TestLatencyHistogramsPopulated checks that the per-op latency
// distributions are wired through PEStats into the result.
func TestLatencyHistogramsPopulated(t *testing.T) {
	res, err := Run(simCfg(4), tracedProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.RTT.Count == 0 {
		t.Fatal("no round trips observed")
	}
	if res.RTT.Count != res.Total.RTT.Count {
		t.Fatalf("Result.RTT (%d) disagrees with Total.RTT (%d)", res.RTT.Count, res.Total.RTT.Count)
	}
	if res.Total.RTTByOp[wire.OpRead].Count == 0 {
		t.Fatal("no per-op RTT for OpRead")
	}
	if res.Total.ServiceByOp[wire.OpRead].Count == 0 {
		t.Fatal("no kernel service-time samples for OpRead")
	}
	if res.Total.BarrierWait.Count == 0 || res.Total.LockWait.Count == 0 {
		t.Fatal("no synchronisation wait samples")
	}
	var sum sim.Duration
	for i := range res.Total.RTTByOp {
		sum += res.Total.RTTByOp[i].Sum
	}
	if sum != res.Total.RTT.Sum {
		t.Fatalf("per-op RTT sum %v != total %v", sum, res.Total.RTT.Sum)
	}
	tab := res.Total.LatencyTable("latency")
	if len(tab.Rows) == 0 {
		t.Fatal("empty latency table")
	}
}

// TestLiveRTTConcurrentReads runs a real-concurrency (inproc) cluster with a
// shared live histogram and reads quantiles from another goroutine while the
// PEs are still observing — the /metrics exporter path, checked under -race.
func TestLiveRTTConcurrentReads(t *testing.T) {
	live := &trace.Histogram{}
	cfg := simCfg(4)
	cfg.Transport = TransportInproc
	cfg.LiveRTT = live

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			hs := live.Snapshot()
			_ = hs.Quantile(0.95)
			_ = hs.Mean()
		}
	}()
	res, err := Run(cfg, tracedProgram)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	ls := live.Snapshot()
	if ls.Count == 0 {
		t.Fatal("live histogram saw no round trips")
	}
	if ls.Count != res.Total.RTT.Count {
		t.Fatalf("live count %d != merged RTT count %d", ls.Count, res.Total.RTT.Count)
	}
}
