package core

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

// The zero-allocation fast path: remote GMRead/GMWrite over the inproc
// transport must stay allocation-free in steady state (the seed cost was 13
// and 12 allocs/op respectively; pooled messages, pooled frame buffers and
// the persistent reply mailbox removed all of them). The regression bound
// is 1 alloc/op — far below the seed but tolerant of incidental runtime
// noise under AllocsPerRun, which counts allocations on every goroutine,
// including the remote kernel's.
func TestRemoteWordOpsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	res, err := Run(Config{NumPE: 2, Transport: TransportInproc}, func(pe *PE) error {
		addr := pe.Alloc(64)
		for pe.Space().HomeOf(addr) == pe.ID() {
			addr++
		}
		pe.Barrier()
		if pe.ID() == 0 {
			readAllocs := testing.AllocsPerRun(2000, func() { pe.GMRead(addr) })
			writeAllocs := testing.AllocsPerRun(2000, func() { pe.GMWrite(addr, 42) })
			faAllocs := testing.AllocsPerRun(2000, func() { pe.FetchAdd(addr, 1) })
			t.Logf("allocs/op: GMRead=%v GMWrite=%v FetchAdd=%v", readAllocs, writeAllocs, faAllocs)
			if readAllocs > 1 {
				t.Errorf("GMRead allocates %v/op, want <= 1", readAllocs)
			}
			if writeAllocs > 1 {
				t.Errorf("GMWrite allocates %v/op, want <= 1", writeAllocs)
			}
			if faAllocs > 1 {
				t.Errorf("FetchAdd allocates %v/op, want <= 1", faAllocs)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
}

// GMGather and GMScatter move scattered single words in one message per
// home, in input order, on every transport-visible path (local words,
// remote words, repeated homes).
func TestGatherScatter(t *testing.T) {
	// One shard: with shard workers a gather splits per (home, shard), which
	// changes the per-op message mix this test pins down.
	res, err := Run(Config{NumPE: 4, Transport: TransportInproc, KernelShards: 1}, func(pe *PE) error {
		bw := uint64(pe.Space().BlockWords)
		base := pe.Alloc(int(bw) * 16)
		pe.Barrier()
		// Addresses deliberately out of order, covering every home twice.
		var addrs []uint64
		for i := uint64(0); i < 8; i++ {
			addrs = append(addrs, base+(7-i)*bw+i)
		}
		if pe.ID() == 0 {
			vals := make([]int64, len(addrs))
			for i := range vals {
				vals[i] = int64(1000 + i)
			}
			pe.GMScatter(addrs, vals)
		}
		pe.Barrier()
		got := pe.GMGather(addrs)
		for i, v := range got {
			if v != int64(1000+i) {
				return errAt(pe.ID(), i, v)
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if got := res.Total.ByOp[wire.OpReadV].Msgs; got == 0 {
		t.Errorf("expected vectored read messages, ByOp[OpReadV].Msgs = 0")
	}
	if got := res.Total.ByOp[wire.OpWriteV].Msgs; got == 0 {
		t.Errorf("expected vectored write messages, ByOp[OpWriteV].Msgs = 0")
	}
}

func errAt(id, i int, v int64) error {
	return fmt.Errorf("PE %d: word %d = %d, unexpected", id, i, v)
}

// Block transfers must coalesce: a read spanning every home costs at most
// one request message per remote home (plus its response), not one per
// block-sized run.
func TestBlockReadCoalescesPerHome(t *testing.T) {
	const blocksPerHome = 8
	// One shard: per-(home, shard) coalescing would legitimately issue more
	// requests than the per-home bound asserted here.
	res, err := Run(Config{NumPE: 4, Transport: TransportInproc, KernelShards: 1}, func(pe *PE) error {
		bw := pe.Space().BlockWords
		n := 4 * blocksPerHome * bw
		base := pe.AllocBlocks(n)
		if pe.ID() == 0 {
			ws := make([]int64, n)
			for i := range ws {
				ws[i] = int64(i)
			}
			pe.GMWriteBlock(base, ws)
		}
		pe.Barrier()
		if pe.ID() == 1 {
			got := pe.GMReadBlock(base, n)
			for i, v := range got {
				if v != int64(i) {
					return errAt(1, i, v)
				}
			}
		}
		pe.Barrier()
		return nil
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	// PE 1's read: 3 remote homes -> at most 3 read requests of any kind.
	reads := res.PerPE[1].ByOp[wire.OpRead].Msgs + res.PerPE[1].ByOp[wire.OpReadV].Msgs
	if reads > 3 {
		t.Errorf("PE 1 issued %d read requests for a 3-remote-home block read, want <= 3", reads)
	}
	if res.PerPE[1].ByOp[wire.OpReadV].Msgs == 0 {
		t.Errorf("expected PE 1's multi-run block read to use OpReadV")
	}
}
