package core

import (
	"repro/internal/ckpt"
	"repro/internal/gmem"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ringSlots is the capacity of each shard's write submission ring. Each
// producer blocks until its slot is applied, so occupancy is bounded by the
// co-located PE count; 256 slots keep Push from ever failing in practice
// while the full-ring fallback to the message path stays covered by tests.
const ringSlots = 256

// kernelShard is one address-range shard of a kernel's home-side
// global-memory service. The homed blocks are partitioned over shards by
// gmem.Space.ShardOf (block-round-robin, aligned with the segment's lock
// stripes so shards mutate disjoint stripes), and each shard privately owns
// everything a GM request touches beyond the segment itself: the dedup
// window for mutating GM ops, the in-flight invalidation rounds, the
// decode/encode scratch and the service-side counters.
//
// Execution comes in two modes. With Kernel.workers set (real transports,
// nshards > 1) each shard runs a worker goroutine fed through q, so
// requests for different address ranges are serviced in parallel; otherwise
// the serve goroutine calls handleGM inline and the shard is purely a state
// partition. Either way a given address is always serviced by the same
// shard, preserving per-word request ordering and exactly-once dedup.
type kernelShard struct {
	k   *Kernel
	idx int

	// q feeds the worker goroutine (nil in inline mode). Items are either a
	// message to service or a fence token to acknowledge.
	q chan shardItem

	// ring is the one-sided write submission ring owned by this shard (nil
	// when the write fast path is off). Co-located PEs publish uncached
	// single-word writes into it; the shard drains it in batches between
	// message dispatches (worker mode) or the submitter drains it inline at
	// the submit point (simulated transport), so the serve loop never wakes
	// and no message is allocated.
	ring *gmem.SubmitRing
	// ringBuf is the drain batch scratch; owned by whoever services this
	// shard (worker goroutine, or the cooperative sim context draining
	// inline — the engine serialises those).
	ringBuf []gmem.RingWrite
	// wake nudges an idle worker after a ring publish (worker mode only).
	// Buffered size 1; producers send non-blocking, so a pending token
	// coalesces any number of publishes.
	wake chan struct{}

	// dedup is the exactly-once window for mutating GM requests routed to
	// this shard. A retry routes identically (same address → same shard; the
	// requester stamps vectored retries with the same shard hint), so the
	// split window absorbs exactly what the kernel-wide window used to.
	dedup dedupTable

	// inv holds this shard's in-flight invalidation rounds, keyed by the
	// kernel-global round id.
	inv map[uint64]*invRound

	// extra accumulates this shard's service counters and histograms,
	// merged into the kernel's totals after shutdown.
	extra trace.PEStats

	// spans is this shard's service-span ring (nil unless Config.Tracing);
	// per shard because a span ring is single-writer.
	spans *trace.SpanRing

	// Handler scratch, reused across requests. Only this shard's servicing
	// goroutine touches it.
	wscratch []int64   // payload words
	vscratch []int64   // per-run words of a vectored write
	raddrs   []uint64  // decoded vectored-read range starts
	rcounts  []int     // decoded vectored-read range lengths
	invSends []invSend // pending invalidations of a vectored write
}

// shardItem is one unit of work on a shard queue: a message, or a fence
// (m == nil) the worker acknowledges once everything queued before it has
// been serviced.
type shardItem struct {
	m     *wire.Message
	fence chan<- struct{}
}

func newKernelShard(k *Kernel, idx int, rings bool) *kernelShard {
	sh := &kernelShard{
		k:     k,
		idx:   idx,
		dedup: newDedupTable(),
		inv:   make(map[uint64]*invRound),
		spans: k.cfg.Tracing.NewRing(),
	}
	if k.workers {
		sh.q = make(chan shardItem, 1024)
		sh.wake = make(chan struct{}, 1)
	}
	if rings {
		sh.ring = gmem.NewSubmitRing(ringSlots)
		sh.ringBuf = make([]gmem.RingWrite, ringSlots)
	}
	return sh
}

// shardFor routes message m to a shard index. Scalar ops hash their address;
// vectored ops carry the requester's shard hint (the requester groups runs
// per shard, so the hint names every range's shard); invalidation acks carry
// the shard that opened the round. An out-of-range hint (a stale or hostile
// byte) returns -1 and the message is dropped: clamping it to shard 0, as
// earlier versions did, routed a retried OpWriteV (or an OpInvAck) past the
// shard holding its dedup window or invalidation round, so a retry could be
// applied twice instead of being absorbed.
func (k *Kernel) shardFor(m *wire.Message) int {
	if k.nshards == 1 {
		return 0
	}
	switch m.Op {
	case wire.OpReadV, wire.OpWriteV, wire.OpFlushV, wire.OpInvAck:
		if s := int(m.Shard); s < k.nshards {
			return s
		}
		return -1
	}
	return k.space.ShardOf(m.Addr, k.nshards)
}

// dispatchGM hands one GM request to its shard. It reports whether the
// message was consumed (inline mode: serviced right here); in worker mode it
// sets k.dispatched so serve leaves accounting and recycling to the worker.
// A message whose shard hint does not survive validation is dropped as
// corrupt — the requester's timeout/retry machinery owns recovery, and a
// well-formed retry carries a valid hint.
func (k *Kernel) dispatchGM(m *wire.Message) bool {
	s := k.shardFor(m)
	if s < 0 {
		k.extra.CorruptDrops++
		return true
	}
	sh := k.shards[s]
	if sh.q == nil {
		sh.handleGM(m)
		return true
	}
	sh.q <- shardItem{m: m}
	k.dispatched = true
	return false
}

// fenceShards blocks until every shard worker has serviced everything
// enqueued before the fence — the cross-shard collective the checkpoint
// marker uses so seg.Export sees no request in flight on any shard. Fencing
// also drains every shard's submission ring, so a one-sided write published
// before the checkpoint barrier is in the exported state (worker mode: the
// worker drains on the fence token; inline mode: drained right here — under
// simulation rings are drained at the submit point, so this is a backstop).
// Must not be called from shard workers (the serial serve loop only), and
// peer-down handling deliberately never fences: a worker's own Send may be
// what reported the peer dead, and the fence would wait on that worker
// forever.
func (k *Kernel) fenceShards() {
	if !k.workers {
		for _, sh := range k.shards {
			sh.drainRing()
		}
		return
	}
	done := make(chan struct{}, len(k.shards))
	for _, sh := range k.shards {
		sh.q <- shardItem{fence: done}
	}
	for range k.shards {
		<-done
	}
}

// drainRing applies every write currently published in this shard's
// submission ring: the home side of the one-sided write path. Writes are
// deduped against the shard's exactly-once window (ring sequences come from
// the same per-kernel counter as message sequences, so a ring write that
// raced a message-path retry is applied once), applied to the segment in
// one per-block-capped seqlock batch, recorded as completed, and only then
// released — a producer spinning in AwaitConsumed returns with its write
// globally visible. Must only run on the context servicing this shard.
func (sh *kernelShard) drainRing() int {
	if sh.ring == nil {
		return 0
	}
	n := sh.ring.Drain(sh.ringBuf)
	if n == 0 {
		return 0
	}
	batch := sh.ringBuf[:n]
	k := sh.k
	liveDir := !k.dir.Static()
	fresh := batch[:0] // dedup-filter in place: fresh writes only
	for _, w := range batch {
		// The ownership filter must run BEFORE the dedup lookup: a write
		// whose block migrated away after the producer's precheck is simply
		// not applied, and crucially leaves no dedup record — the producer
		// detects the migration-generation change and falls back to the
		// message path with the same sequence number, which must not be
		// absorbed here as an in-progress duplicate.
		if liveDir && !k.dir.Owns(k.id, k.space.BlockOf(w.Addr)) {
			continue
		}
		if e := sh.dedup.lookup(w.Src, w.Seq); e != nil {
			// The message path already applied (or is applying) this seq.
			sh.extra.DupRequests++
			continue
		}
		// Namespace filter (defense in depth: the producer's PE-side guard
		// refuses out-of-region ring writes before publishing, so only a
		// forged publish reaches here). The write is dropped unapplied and
		// leaves no dedup record — a message-path retry of the same seq gets
		// the typed OpNsNack from nsDeny instead of a silent absorb.
		if region, bound := k.ns.Lookup(int(w.Src)); bound && !region.Contains(w.Addr, 1) {
			sh.dedup.forget(w.Src, w.Seq)
			sh.extra.NsViolations++
			continue
		}
		fresh = append(fresh, w)
	}
	sh.k.seg.ApplyWrites(fresh)
	for _, w := range fresh {
		sh.dedup.complete(w.Src, w.Seq, wire.OpWriteAck, 0, 0, nil)
	}
	sh.extra.RingDrained += uint64(len(fresh))
	sh.ring.Release(n)
	return n
}

// nudge wakes an idle worker after a ring publish (non-blocking: a pending
// token coalesces any number of publishes).
func (sh *kernelShard) nudge() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard worker loop: service queued GM requests until the queue
// closes at kernel shutdown, draining the submission ring between message
// dispatches (and on ring publishes while idle, via wake). The worker owns
// each message end to end — service-time observation, span recording and
// recycling — mirroring what serve does for inline-handled messages.
func (sh *kernelShard) run() {
	k := sh.k
	for {
		sh.drainRing()
		var it shardItem
		var ok bool
		select {
		case it, ok = <-sh.q:
		default:
			select {
			case it, ok = <-sh.q:
			case <-sh.wake:
				continue
			}
		}
		if !ok {
			break
		}
		if it.m == nil {
			sh.drainRing()
			it.fence <- struct{}{}
			continue
		}
		m := it.m
		op, src, seq, rcv := m.Op, m.Src, m.Seq, m.RecvAt
		sh.handleGM(m)
		end := k.svc.Now()
		if int(op) < wire.NumOps {
			sh.extra.ServiceByOp[op].Observe(end - rcv)
		}
		sh.extra.ShardedMsgs++
		if sh.spans != nil && sh.spans.Sampled() {
			sh.spans.Record(trace.Span{
				Kind: trace.SpanService, Op: op,
				PE: int32(k.id), Peer: src, Seq: seq,
				Start: rcv, End: end,
			})
		}
		wire.PutMessage(m)
	}
	sh.drainRing()
	k.shardWG.Done()
}

// handleGM services one GM request routed to this shard. Every GM handler
// consumes its message; the caller recycles it.
func (sh *kernelShard) handleGM(m *wire.Message) {
	if isMutating(m.Op) && sh.dedupCheck(m) {
		// Duplicate: absorbed by the shard's dedup window. The dedup check
		// deliberately runs BEFORE the ownership check, so the retry of a
		// mutation this kernel applied just before handing the block away is
		// answered from the cached response instead of being NACKed toward
		// the new home and applied a second time there.
		return
	}
	if sh.nsDeny(m) {
		return // outside the requester's namespace: typed rejection sent
	}
	if sh.nackIfForeign(m) {
		return // block migrated away: requester redirects to the hinted home
	}
	switch m.Op {
	case wire.OpRead:
		sh.handleRead(m)
	case wire.OpReadV:
		sh.handleReadV(m)
	case wire.OpWrite:
		sh.handleWrite(m)
	case wire.OpWriteV:
		sh.handleWriteV(m)
	case wire.OpFlushV:
		sh.handleFlushV(m)
	case wire.OpReadLease:
		sh.handleReadLease(m)
	case wire.OpFetchAdd:
		sh.handleFetchAdd(m)
	case wire.OpCAS:
		sh.handleCAS(m)
	case wire.OpInvalidate:
		sh.handleInvalidate(m)
	case wire.OpInvAck:
		sh.handleInvAck(m)
	}
}

// nackIfForeign pre-scans every block a GM request touches against the live
// membership directory and, if any is not homed here, NACKs the whole
// message with the first foreign block's new home as the redirect hint —
// before any mutation, so a multi-block request is all-or-nothing (a partial
// apply followed by a whole-message retry at the new home would double-apply
// the runs that had already landed here). Escrowed foreign blocks are
// re-offered to their destination on the way, which is how a migration whose
// initiator died heals through normal traffic.
//
// The scan runs even while this kernel's own directory is still static: a
// requester that learned a new-home hint can redirect a request here BEFORE
// our install arrives, and applying it into a lazily-created block would
// lose the write when the install's payload adopts over it. Bouncing it
// (hint: the probe-rule home) until the data lands keeps it exactly-once.
// The cost on the static hot path is one directory lookup per touched block
// for scalar ops and an O(runs) header walk for vectored ones.
func (sh *kernelShard) nackIfForeign(m *wire.Message) bool {
	k := sh.k
	foreign := -1
	bw := uint64(k.space.BlockWords)
	scan := func(addr uint64, count int) {
		if count < 1 {
			count = 1
		}
		// Clamp to one block's worth of words: every legitimate range fits
		// inside a single block (the PE-side run splitters never cross a
		// block boundary, and gmem's checkHome enforces it server-side), so
		// the clamp is a no-op for valid traffic. Without it a corrupt
		// count — this scan runs BEFORE the op handler's own bounds checks —
		// would spin this shard worker through up to count/BlockWords
		// directory lookups.
		if count > int(bw) {
			count = int(bw)
		}
		last := (addr + uint64(count) - 1) / bw
		for b := addr / bw; b <= last; b++ {
			if !k.dir.Owns(k.id, b) {
				if foreign < 0 {
					foreign = k.dir.HomeOfBlock(b)
				}
				sh.reOffer(b)
			}
		}
	}
	switch m.Op {
	case wire.OpRead:
		n := int(m.Arg1)
		if m.Arg2 == 1 {
			n = 1 // block fetch: caching protocol, one block
		}
		scan(m.Addr, n)
	case wire.OpWrite:
		scan(m.Addr, len(m.Data)/8)
	case wire.OpFetchAdd, wire.OpCAS:
		scan(m.Addr, 1)
	case wire.OpReadV:
		if m.EachRange(func(addr uint64, count int) { scan(addr, count) }) != nil {
			return false // corrupt payload: the op handler counts and drops it
		}
	case wire.OpWriteV, wire.OpFlushV:
		if m.EachRunHeader(func(addr uint64, count int) { scan(addr, count) }) != nil {
			return false
		}
	case wire.OpReadLease:
		scan(m.Addr, 1)
	default:
		return false // invalidation traffic is not home-routed
	}
	if foreign < 0 {
		return false
	}
	// The NACK is deliberately NOT cached in the dedup window: forgetting
	// the in-progress entry the lookup just registered means a retry is
	// re-evaluated — and applied — once the block lands here, instead of
	// being answered from a stale cached NACK forever. A retry after a LOST
	// NACK simply recomputes it (side-effect-free; re-offers are
	// idempotent).
	if isMutating(m.Op) {
		sh.dedup.forget(m.Src, m.Seq)
	}
	resp := wire.GetMessage()
	resp.Op, resp.Arg1 = wire.OpMigrateNack, int64(foreign)
	resp.Src, resp.Dst, resp.Seq = int32(k.id), m.Src, m.Seq
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
	return true
}

// reOffer fire-and-forgets an escrowed block to its migration destination.
// Traffic-driven healing for a handoff whose initiator died between the
// extract and the install: any request that bounces off this stale home
// pushes the parked payload toward the new home again. The install is
// idempotent there (blocks already owned and materialised are skipped), and
// its response is dropped by our serve loop as a stray.
func (sh *kernelShard) reOffer(b uint64) {
	k := sh.k
	e, ok := k.escrowLookup(b)
	if !ok {
		return
	}
	inst := wire.GetMessage()
	inst.Op, inst.Src, inst.Dst = wire.OpMigrateInstall, int32(k.id), int32(e.dst)
	inst.Seq = k.seqCtr.Add(1)
	inst.Arg1 = migModeBlock
	inst.Addr = e.block.Index * uint64(k.space.BlockWords)
	inst.Data = ckpt.EncodeKernelState(k.cfg.GMBlockWords, []gmem.BlockSnapshot{e.block})
	k.svc.Send(e.dst, inst)
	wire.PutMessage(inst)
}

// dedupCheck consults the shard's dedup window before a mutating request is
// dispatched. It reports whether the message was absorbed here: a duplicate
// whose response is cached is answered by resend, a duplicate still in
// progress is dropped (the eventual response will serve it) — unless the
// retry flag is set, which re-kicks the request's invalidation round.
func (sh *kernelShard) dedupCheck(m *wire.Message) bool {
	e := sh.dedup.lookup(m.Src, m.Seq)
	if e == nil {
		return false
	}
	sh.extra.DupRequests++
	if e.state == dedupDone {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = e.respOp, e.arg1, e.arg2
		if len(e.data) > 0 {
			resp.Data = append(resp.Data[:0], e.data...)
		}
		sh.reply(m, resp)
	} else if m.Flags&wire.FlagRetry != 0 {
		// The writer is retrying while its invalidation round is still
		// open: a lost OpInvalidate/OpInvAck would wedge the round (and
		// absorb every further retry right here), so nudge it along.
		sh.resendInvalidations(m.Src, m.Seq)
	}
	return true
}

// reply answers request m, echoing its Seq, and completes the shard's dedup
// entry for mutating requests. reply takes ownership of resp.
func (sh *kernelShard) reply(m *wire.Message, resp *wire.Message) {
	k := sh.k
	resp.Src = int32(k.id)
	resp.Dst = m.Src
	resp.Seq = m.Seq
	if isMutating(m.Op) {
		sh.dedup.complete(m.Src, m.Seq, resp.Op, resp.Arg1, resp.Arg2, resp.Data)
	}
	k.svc.Send(int(m.Src), resp)
	wire.PutMessage(resp)
}

func (sh *kernelShard) handleRead(m *wire.Message) {
	k := sh.k
	resp := wire.GetMessage()
	resp.Op, resp.Addr = wire.OpReadResp, m.Addr
	if m.Arg2 == 1 {
		// Block fetch for the caching protocol: return the whole block and
		// record the reader in the directory.
		resp.PutWords(k.seg.ReadBlockFor(m.Addr, int(m.Src)))
		sh.reply(m, resp)
		return
	}
	sh.wscratch = k.seg.ReadAppend(sh.wscratch[:0], m.Addr, int(m.Arg1))
	resp.PutWords(sh.wscratch)
	sh.reply(m, resp)
}

// handleReadV serves a vectored read: every requested range, gathered into
// one response payload.
func (sh *kernelShard) handleReadV(m *wire.Message) {
	sh.raddrs = sh.raddrs[:0]
	sh.rcounts = sh.rcounts[:0]
	if err := m.EachRange(func(addr uint64, count int) {
		sh.raddrs = append(sh.raddrs, addr)
		sh.rcounts = append(sh.rcounts, count)
	}); err != nil {
		// Corrupt vectored-read payload: drop without replying (the
		// requester's timeout/retry machinery owns recovery).
		sh.extra.CorruptDrops++
		return
	}
	sh.wscratch = sh.k.seg.ReadV(sh.wscratch[:0], sh.raddrs, sh.rcounts)
	resp := wire.GetMessage()
	resp.Op, resp.Addr = wire.OpReadVResp, m.Addr
	resp.PutWords(sh.wscratch)
	sh.reply(m, resp)
}

func (sh *kernelShard) handleWrite(m *wire.Message) {
	k := sh.k
	if len(m.Data)%8 != 0 {
		// Torn payload (WordsInto would panic): drop and let the requester
		// retry.
		sh.extra.CorruptDrops++
		return
	}
	sh.wscratch = m.WordsInto(sh.wscratch)
	if k.cache == nil {
		k.seg.Write(m.Addr, sh.wscratch)
		ack := wire.GetMessage()
		ack.Op = wire.OpWriteAck
		sh.reply(m, ack)
		return
	}
	targets := k.seg.WriteInvalidating(m.Addr, sh.wscratch, int(m.Src))
	sh.invSends = sh.invSends[:0]
	for _, t := range targets {
		sh.invSends = append(sh.invSends, invSend{addr: m.Addr, dst: t})
	}
	sh.finishAfterInvalidations(m, sh.invSends, wire.OpWriteAck, 0, 0)
}

// handleWriteV serves a vectored write: every run scattered to its range,
// one ack. Under caching, the ack is withheld until every invalidation of
// every touched block has been acknowledged.
func (sh *kernelShard) handleWriteV(m *wire.Message) {
	k := sh.k
	var err error
	if k.cache == nil {
		sh.vscratch, err = m.EachWriteRun(sh.vscratch, func(addr uint64, words []int64) {
			k.seg.Write(addr, words)
		})
		if err != nil {
			// Runs decoded before the corruption were already applied; the
			// request is not acked, so the requester treats it as lost.
			sh.extra.CorruptDrops++
			return
		}
		ack := wire.GetMessage()
		ack.Op = wire.OpWriteAck
		sh.reply(m, ack)
		return
	}
	sh.invSends = sh.invSends[:0]
	sh.vscratch, err = m.EachWriteRun(sh.vscratch, func(addr uint64, words []int64) {
		for _, t := range k.seg.WriteInvalidating(addr, words, int(m.Src)) {
			sh.invSends = append(sh.invSends, invSend{addr: addr, dst: t})
		}
	})
	if err != nil {
		sh.extra.CorruptDrops++
		return
	}
	sh.finishAfterInvalidations(m, sh.invSends, wire.OpWriteAck, 0, 0)
}

// handleFlushV applies one PE's coalesced write-combining-buffer drain: the
// release-consistency publish at a synchronisation edge. The payload is
// encoded exactly like a vectored write, and the handler mirrors
// handleWriteV in full — including the invalidating branch, so release-mode
// words that share cache blocks with strong words keep the write-invalidate
// protocol coherent.
func (sh *kernelShard) handleFlushV(m *wire.Message) {
	k := sh.k
	var err error
	if k.cache == nil {
		sh.vscratch, err = m.EachWriteRun(sh.vscratch, func(addr uint64, words []int64) {
			k.seg.Write(addr, words)
		})
		if err != nil {
			sh.extra.CorruptDrops++
			return
		}
		ack := wire.GetMessage()
		ack.Op = wire.OpWriteAck
		sh.reply(m, ack)
		return
	}
	sh.invSends = sh.invSends[:0]
	sh.vscratch, err = m.EachWriteRun(sh.vscratch, func(addr uint64, words []int64) {
		for _, t := range k.seg.WriteInvalidating(addr, words, int(m.Src)) {
			sh.invSends = append(sh.invSends, invSend{addr: addr, dst: t})
		}
	})
	if err != nil {
		sh.extra.CorruptDrops++
		return
	}
	sh.finishAfterInvalidations(m, sh.invSends, wire.OpWriteAck, 0, 0)
}

// handleReadLease serves a lease-mode block fetch: the whole block containing
// m.Addr plus the home's lease duration, WITHOUT registering the reader in
// the coherence directory — a leaseholder is never invalidated; its staleness
// is bounded by the expiry it got here.
func (sh *kernelShard) handleReadLease(m *wire.Message) {
	k := sh.k
	bw := uint64(k.space.BlockWords)
	base := m.Addr / bw * bw
	sh.wscratch = k.seg.ReadAppend(sh.wscratch[:0], base, k.space.BlockWords)
	resp := wire.GetMessage()
	resp.Op, resp.Addr = wire.OpReadLeaseResp, base
	resp.Arg2 = int64(k.cfg.LeaseDuration)
	resp.PutWords(sh.wscratch)
	sh.reply(m, resp)
}

func (sh *kernelShard) handleFetchAdd(m *wire.Message) {
	k := sh.k
	old := k.seg.FetchAdd(m.Addr, m.Arg1)
	if k.cache == nil {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1 = wire.OpFetchAddResp, old
		sh.reply(m, resp)
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	sh.invSends = sh.invSends[:0]
	for _, t := range targets {
		sh.invSends = append(sh.invSends, invSend{addr: m.Addr, dst: t})
	}
	sh.finishAfterInvalidations(m, sh.invSends, wire.OpFetchAddResp, old, 0)
}

func (sh *kernelShard) handleCAS(m *wire.Message) {
	k := sh.k
	prev, swapped := k.seg.CAS(m.Addr, m.Arg1, m.Arg2)
	var sw int64
	if swapped {
		sw = 1
	}
	if k.cache == nil || !swapped {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = wire.OpCASResp, prev, sw
		sh.reply(m, resp)
		return
	}
	targets := k.seg.CollectInvalidations(m.Addr, int(m.Src))
	sh.invSends = sh.invSends[:0]
	for _, t := range targets {
		sh.invSends = append(sh.invSends, invSend{addr: m.Addr, dst: t})
	}
	sh.finishAfterInvalidations(m, sh.invSends, wire.OpCASResp, prev, sw)
}

// finishAfterInvalidations acknowledges a mutating request immediately when
// no remote copies exist, or after every cached copy of every touched block
// has acknowledged its invalidation (write-invalidate coherence: the writer
// may not proceed while stale copies are readable). Round ids come from the
// kernel-global counter, so they are unique across shards; every
// OpInvalidate carries this shard's index, which the acking kernel echoes,
// so the ack routes back to the shard holding the round even when the
// written ranges spanned shards (possible in inline mode, where vectored
// requests are not split per shard).
func (sh *kernelShard) finishAfterInvalidations(m *wire.Message, sends []invSend, respOp wire.Op, arg1, arg2 int64) {
	k := sh.k
	if k.cfg.FaultDropInvalidations {
		// TEST-ONLY fault: pretend no copies exist, acknowledging the write
		// without invalidating remote caches. Readers keep serving stale
		// values — the consistency checker must flag them.
		sends = nil
	}
	if len(sends) == 0 {
		resp := wire.GetMessage()
		resp.Op, resp.Arg1, resp.Arg2 = respOp, arg1, arg2
		sh.reply(m, resp)
		return
	}
	id := k.invCtr.Add(1)
	r := &invRound{
		requester: m.Src, seq: m.Seq,
		respOp: respOp, arg1: arg1, arg2: arg2,
	}
	// sends aliases the reused sh.invSends scratch; the round needs its own
	// copy to survive until the last ack.
	r.outstanding = append(r.outstanding, sends...)
	sh.inv[id] = r
	for _, s := range sends {
		inv := wire.GetMessage()
		inv.Op, inv.Src, inv.Dst = wire.OpInvalidate, int32(k.id), int32(s.dst)
		inv.Seq, inv.Addr = id, s.addr
		inv.Shard = uint8(sh.idx)
		k.svc.Send(s.dst, inv)
		wire.PutMessage(inv)
	}
}

// resendInvalidations retransmits the still-unacked invalidations of the
// round started by requester's mutating request seq, if one is in flight.
// Called when a retried duplicate of that request arrives: the retry means
// the writer never got its response, and under a lossy transport the likely
// cause is a lost OpInvalidate or OpInvAck that no other timer would ever
// recover. The round lives in this shard — retries route like the original.
func (sh *kernelShard) resendInvalidations(requester int32, seq uint64) {
	k := sh.k
	for id, r := range sh.inv {
		if r.requester != requester || r.seq != seq {
			continue
		}
		for _, s := range r.outstanding {
			inv := wire.GetMessage()
			inv.Op, inv.Src, inv.Dst = wire.OpInvalidate, int32(k.id), int32(s.dst)
			inv.Seq, inv.Addr = id, s.addr
			inv.Shard = uint8(sh.idx)
			inv.Flags |= wire.FlagRetry
			k.svc.Send(s.dst, inv)
			wire.PutMessage(inv)
		}
		return
	}
}

// handleInvalidate drops the local cached copy and acks. The ack echoes the
// sender's shard hint so it routes back to the shard holding the round (the
// invalidated address is homed at the sender, so hashing it locally would
// name the wrong kernel's partition).
func (sh *kernelShard) handleInvalidate(m *wire.Message) {
	if sh.k.cache != nil {
		sh.k.cache.Invalidate(m.Addr)
	}
	ack := wire.GetMessage()
	ack.Op, ack.Addr = wire.OpInvAck, m.Addr
	ack.Shard = m.Shard
	sh.reply(m, ack)
}

func (sh *kernelShard) handleInvAck(m *wire.Message) {
	r, ok := sh.inv[m.Seq]
	if !ok {
		// A duplicate or late ack for a round already completed (or an ack
		// with a corrupted shard hint): count and drop instead of taking the
		// kernel down.
		sh.extra.StrayDrops++
		return
	}
	// Match the ack against a specific outstanding invalidation so that a
	// duplicated ack (original + the answer to a retransmission) cannot
	// complete the round while other copies are still live.
	found := -1
	for i, s := range r.outstanding {
		if s.dst == int(m.Src) && s.addr == m.Addr {
			found = i
			break
		}
	}
	if found < 0 {
		sh.extra.StrayDrops++
		return
	}
	r.outstanding = append(r.outstanding[:found], r.outstanding[found+1:]...)
	if len(r.outstanding) > 0 {
		return
	}
	delete(sh.inv, m.Seq)
	sh.dedup.complete(r.requester, r.seq, r.respOp, r.arg1, r.arg2, nil)
	resp := wire.GetMessage()
	resp.Op, resp.Src, resp.Dst, resp.Seq = r.respOp, int32(sh.k.id), r.requester, r.seq
	resp.Arg1, resp.Arg2 = r.arg1, r.arg2
	sh.k.svc.Send(int(r.requester), resp)
	wire.PutMessage(resp)
}
