package core_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/check/stress"
	"repro/internal/sim"
)

// runStress executes one seeded configuration and fails the test with the
// replay seed on any consistency violation.
func runStress(t *testing.T, o stress.Options) *stress.Result {
	t.Helper()
	res, err := stress.Run(o)
	if err != nil {
		t.Fatalf("stress.Run(%v): %v", o, err)
	}
	if res.Err != nil {
		t.Fatalf("stress (%v): unexpected PE error: %v", o, res.Err)
	}
	if !res.Report.OK() {
		t.Fatalf("stress (%v): consistency violations — replay with `dsebench -stress -seed %d`:\n%s",
			o, o.Seed, res.Report)
	}
	return res
}

// TestStressMatrix sweeps PEs x loss x caching. The in-PR matrix is kept
// small; STRESS_FULL=1 (the nightly job) runs the full grid from the
// EXPERIMENTS.md table, including 8 PEs at 15% loss under caching.
func TestStressMatrix(t *testing.T) {
	pes := []int{2, 4}
	losses := []float64{0, 0.05}
	ops := 150
	if os.Getenv("STRESS_FULL") != "" {
		pes = []int{2, 4, 8}
		losses = []float64{0, 0.05, 0.15}
		ops = 500
	}
	for _, np := range pes {
		for _, loss := range losses {
			for _, caching := range []bool{false, true} {
				o := stress.Options{
					Seed:     uint64(np)<<16 | uint64(loss*100),
					NumPE:    np,
					OpsPerPE: ops,
					Caching:  caching,
					Loss:     loss,
					Jitter:   200 * sim.Microsecond,
				}
				t.Run(fmt.Sprintf("pe%d_loss%02.0f_cache%v", np, loss*100, caching), func(t *testing.T) {
					runStress(t, o)
				})
			}
		}
	}
}

// TestStressLossyCaching pins the harshest protocol corner in tier-1: heavy
// frame loss with caching on, where lost invalidations meet the retry dedup
// window. Beyond consistency, it demands that every operation eventually
// completed: before the invalidation-retransmit fix, a lost OpInvalidate
// wedged its round forever (the writer's retries were silently absorbed as
// in-progress duplicates) and ops failed despite 30 retries.
func TestStressLossyCaching(t *testing.T) {
	for _, seed := range []uint64{7, 19, 31} {
		res := runStress(t, stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: 300, Caching: true, Loss: 0.25,
		})
		for _, e := range res.History.Events {
			if e.Failed {
				t.Errorf("seed %d: operation never completed (wedged invalidation round?): %v", seed, e)
			}
		}
	}
}

// TestStressPeerKill kills PE 2's station mid-run; survivors must detect
// the dead home, route around it, and the surviving history must check out.
func TestStressPeerKill(t *testing.T) {
	runStress(t, stress.Options{
		Seed: 11, NumPE: 4, OpsPerPE: 200, Loss: 0.02,
		KillPE: 2, KillAt: 2 * sim.Second,
	})
}

// TestStressReplayDeterministic runs the same seed twice and demands
// bit-identical histories — the property that makes a printed seed a
// complete, replayable bug report.
func TestStressReplayDeterministic(t *testing.T) {
	o := stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 150, Caching: true, Loss: 0.1,
		Jitter: 300 * sim.Microsecond,
	}
	a, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.History.Digest(), b.History.Digest()
	if da != db {
		t.Fatalf("same seed, different histories: %s vs %s", da, db)
	}
	if a.History.Len() == 0 {
		t.Fatal("empty history")
	}
}

// TestStressShardDigestMatchesUnsharded is the sharding no-op proof: under
// the simulated transport shards dispatch inline, so any KernelShards value
// must produce a history bit-identical to the single-shard (pre-sharding)
// kernel — same ops, same interleaving, same digest. The direct-read window
// is pinned off on both sides so only the shard count varies.
func TestStressShardDigestMatchesUnsharded(t *testing.T) {
	base := stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 150, Caching: true, Loss: 0.1,
		Jitter: 300 * sim.Microsecond,
		Shards: 1, DirectReads: -1,
	}
	ref, err := stress.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		o := base
		o.Shards = shards
		res, err := stress.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if dr, ds := ref.History.Digest(), res.History.Digest(); dr != ds {
			t.Errorf("shards=%d history diverged from shards=1: %s vs %s", shards, ds, dr)
		}
	}
}

// TestStressShardSweep runs the stress matrix corners across shard counts,
// with the direct-read window enabled where it defaults on — every
// configuration must stay checker-clean, including a mid-run kill and a
// kill-with-recovery.
func TestStressShardSweep(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			runStress(t, stress.Options{
				Seed: 5, NumPE: 4, OpsPerPE: 150, Caching: true, Loss: 0.05,
				Shards: shards,
			})
			runStress(t, stress.Options{
				Seed: 11, NumPE: 4, OpsPerPE: 150, Loss: 0.02,
				KillPE: 2, KillAt: 2 * sim.Second,
				Shards: shards,
			})
			// Recovery leg with the one-sided paths at their defaults
			// (windows and rings on for shards>1): the restart must rebind
			// windows and rings to the fresh segments. KillAt is tuned so
			// the kill lands mid-run even on the fast windows-on schedule
			// (at 500ms a sharded windows-on run finished before the kill
			// and no recovery ever fired).
			res := runStress(t, stress.Options{
				Seed: 23, NumPE: 4, OpsPerPE: 200, Recover: true, CkptEvery: 32,
				KillPE: 2, KillAt: 200 * sim.Millisecond,
				Shards: shards,
			})
			if res.Recovery == nil || !res.Recovery.Recovered() {
				t.Fatalf("shards=%d: kill triggered no recovery", shards)
			}
		})
	}
}

// TestStressRingReplayDeterministic: the one-sided write rings drain inline
// at the submit point under the simulated transport, so a rings-on run must
// stay a pure function of Options — same seed, bit-identical history.
func TestStressRingReplayDeterministic(t *testing.T) {
	o := stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 150, Loss: 0.05,
		Jitter: 300 * sim.Microsecond,
		Shards: 2, DirectReads: 1, Rings: 1,
	}
	a, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.History.Digest(), b.History.Digest(); da != db {
		t.Fatalf("same rings-on seed, different histories: %s vs %s", da, db)
	}
	if a.History.Len() == 0 {
		t.Fatal("empty history")
	}
}

// TestStressRingsInertWithoutWindows pins the gating contract behind the
// shard-digest proof: with the read window pinned off, forcing rings on or
// off must not move a single event — rings ride on the window's co-location
// bargain and are inert without it, which is what keeps the sharded digest
// tests comparable across this PR.
func TestStressRingsInertWithoutWindows(t *testing.T) {
	base := stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 150, Caching: true, Loss: 0.1,
		Jitter: 300 * sim.Microsecond,
		Shards: 2, DirectReads: -1,
	}
	on, off := base, base
	on.Rings, off.Rings = 1, -1
	a, err := stress.Run(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.History.Digest(), b.History.Digest(); da != db {
		t.Fatalf("rings moved a windows-off schedule: %s vs %s", da, db)
	}
}

// TestStressRingSweep forces the write rings on across shard counts and the
// harsh corners — loss, a mid-run kill, and kill-with-recovery — and demands
// checker-clean histories throughout.
func TestStressRingSweep(t *testing.T) {
	for _, shards := range []int{2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			runStress(t, stress.Options{
				Seed: 9, NumPE: 4, OpsPerPE: 200, Loss: 0.05,
				Shards: shards, DirectReads: 1, Rings: 1,
			})
			// KillAt sits inside the fast rings-on schedule (~0.25s of
			// virtual time for this leg), so the kill provably fires.
			runStress(t, stress.Options{
				Seed: 13, NumPE: 4, OpsPerPE: 150, Loss: 0.02,
				KillPE: 2, KillAt: 100 * sim.Millisecond,
				Shards: shards, DirectReads: 1, Rings: 1,
			})
			res := runStress(t, stress.Options{
				Seed: 23, NumPE: 4, OpsPerPE: 200, Recover: true, CkptEvery: 32,
				KillPE: 2, KillAt: 200 * sim.Millisecond,
				Shards: shards, DirectReads: 1, Rings: 1,
			})
			if res.Recovery == nil || !res.Recovery.Recovered() {
				t.Fatalf("shards=%d: kill triggered no recovery", shards)
			}
		})
	}
}

// TestStressModesMatrix mixes all three consistency tiers (strong, release,
// lease) in one run and sweeps the fault axes — clean, caching, loss — over
// them. Every configuration must stay checker-clean under the per-mode rules,
// and every fault-free run must actually exercise the new machinery: WC
// buffer flushes at sync edges and lease grants on the lease region.
func TestStressModesMatrix(t *testing.T) {
	ops := 200
	losses := []float64{0, 0.05}
	if os.Getenv("STRESS_FULL") != "" {
		ops = 500
		losses = []float64{0, 0.05, 0.15}
	}
	for _, loss := range losses {
		for _, caching := range []bool{false, true} {
			o := stress.Options{
				Seed:     41 + uint64(loss*100),
				NumPE:    4,
				OpsPerPE: ops,
				Caching:  caching,
				Loss:     loss,
				Modes:    true,
			}
			t.Run(fmt.Sprintf("loss%02.0f_cache%v", loss*100, caching), func(t *testing.T) {
				res := runStress(t, o)
				if loss == 0 {
					if res.WCFlushes == 0 {
						t.Error("fault-free modes run recorded no WC buffer flushes")
					}
					if res.LeaseGrants == 0 {
						t.Error("fault-free modes run granted no read leases")
					}
				}
			})
		}
	}
}

// TestStressModesLeaseExpiry pins that leases actually expire and re-fetch
// under a short lease window: a run long enough to outlive many lease
// durations must record expiries, not just grants — otherwise the expiry
// path (and the staleness bound it enforces) is dead code in every test.
func TestStressModesLeaseExpiry(t *testing.T) {
	res := runStress(t, stress.Options{
		Seed: 7, NumPE: 4, OpsPerPE: 400, Modes: true,
		LeaseDuration: 100 * sim.Microsecond,
	})
	if res.LeaseGrants == 0 {
		t.Fatal("no leases granted")
	}
	if res.LeaseExpiries == 0 {
		t.Error("no lease ever expired despite a 100µs window — expiry path untested")
	}
}

// TestStressModesReplayDeterministic: a mixed-mode run must stay a pure
// function of Options — WC buffering, flush coalescing and lease
// grant/expiry included — so a printed seed still replays any tier bug.
func TestStressModesReplayDeterministic(t *testing.T) {
	o := stress.Options{
		Seed: 42, NumPE: 4, OpsPerPE: 200, Caching: true, Loss: 0.1,
		Jitter: 300 * sim.Microsecond,
		Modes:  true,
	}
	a, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.History.Digest(), b.History.Digest(); da != db {
		t.Fatalf("same modes seed, different histories: %s vs %s", da, db)
	}
	if a.History.Len() == 0 {
		t.Fatal("empty history")
	}
}

// TestStressModesPeerKill overlaps the tiers with a mid-run station death:
// unflushed WC writes homed at the victim are discarded at the next fence
// (peer-down words may never be re-sent) and held leases on its blocks go
// stale — the surviving history must still satisfy every per-mode rule.
func TestStressModesPeerKill(t *testing.T) {
	runStress(t, stress.Options{
		Seed: 11, NumPE: 4, OpsPerPE: 200, Loss: 0.02, Modes: true,
		KillPE: 2, KillAt: 2 * sim.Second,
	})
}

// TestStressModesMembershipChurn runs the mixed-tier workload through live
// membership churn: a latent PE joins, an active PE leaves, and PE 1 keeps
// re-homing ranges — half the time the release region itself, so handoffs
// overlap unflushed WC buffers. Join/leave/migrate grants fence every PE
// (flush + lease drop), so the history must check out cleanly.
func TestStressModesMembershipChurn(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		o := stress.Options{
			Seed: seed, NumPE: 5, OpsPerPE: 200, Modes: true,
			Latent: 1, JoinAtOp: 50,
			LeavePE: 2, LeaveAtOp: 100,
			MigrateEvery: 30,
		}
		res := runStress(t, o)
		if res.Joins < 1 || res.Leaves != 1 {
			t.Errorf("seed %d: joins=%d leaves=%d, want >=1 and 1", seed, res.Joins, res.Leaves)
		}
		if res.MigratedBlocks == 0 {
			t.Errorf("seed %d: no blocks changed home", seed)
		}
		if res.WCFlushes == 0 {
			t.Errorf("seed %d: churn run never flushed a WC buffer", seed)
		}
	}
}

// TestStressCatchesSkippedReleaseFlush turns on the kernel's test-only
// release fault — sync edges silently discard the WC buffer instead of
// flushing it, while the fence still claims publication — and demands the
// checker convict: readers after the fence see values the writes never
// delivered, or never see writes the fence promised were published.
func TestStressCatchesSkippedReleaseFlush(t *testing.T) {
	res, err := stress.Run(stress.Options{
		Seed: 5, NumPE: 4, OpsPerPE: 400, Modes: true,
		FaultSkipReleaseFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OK() {
		t.Fatal("checker passed a run whose release flushes were silently dropped — it cannot see broken publication")
	}
	found := false
	for _, v := range res.Report.Violations {
		if strings.HasPrefix(v.Kind, "release-") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no release-* violation among %d; the conviction came from the wrong rule set:\n%s",
			len(res.Report.Violations), res.Report)
	}
}

// TestStressCatchesIgnoredLeaseExpiry turns on the kernel's test-only lease
// fault — expired leases keep serving cached reads forever — and demands the
// checker flag the overstay: a lease-mode read observing a value older than
// its recorded grant-to-expiry window is exactly the staleness the lease
// clock exists to bound.
func TestStressCatchesIgnoredLeaseExpiry(t *testing.T) {
	res, err := stress.Run(stress.Options{
		Seed: 19, NumPE: 4, OpsPerPE: 400, Modes: true,
		LeaseDuration:          100 * sim.Microsecond,
		FaultIgnoreLeaseExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OK() {
		t.Fatal("checker passed a run whose leases never expired — it cannot see stale lease reads")
	}
	found := false
	for _, v := range res.Report.Violations {
		if v.Kind == "lease-overstay" || strings.HasPrefix(v.Kind, "lease-") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no lease-* violation among %d; the conviction came from the wrong rule set:\n%s",
			len(res.Report.Violations), res.Report)
	}
}

// TestStressCatchesBrokenInvalidation turns on the kernel's test-only
// coherence fault (writes acknowledged without invalidating remote caches)
// and demands the checker notice: a harness that cannot see a deliberately
// broken protocol proves nothing about a working one.
func TestStressCatchesBrokenInvalidation(t *testing.T) {
	res, err := stress.Run(stress.Options{
		Seed: 3, NumPE: 4, OpsPerPE: 300, Caching: true,
		FaultDropInvalidations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OK() {
		t.Fatal("checker passed a run with invalidations disabled — it cannot detect stale reads")
	}
}

// TestStressKillRecovers is the recover-mode counterpart of
// TestStressPeerKill: the victim dies abruptly mid-run, and the run must
// nonetheless COMPLETE — checkpoint/restart rolls the cluster back to the
// last snapshot, reruns the remaining schedule, and the merged history
// (snapshot baseline + rerun) must satisfy the checker. Several seeds vary
// where the kill lands relative to the checkpoint cadence.
func TestStressKillRecovers(t *testing.T) {
	for _, seed := range []uint64{1, 11, 23} {
		o := stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: 300, Recover: true, CkptEvery: 32,
			KillPE: 2, KillAt: 500 * sim.Millisecond,
		}
		res := runStress(t, o)
		if res.Recovery == nil || !res.Recovery.Recovered() {
			t.Fatalf("seed %d: kill at %v triggered no recovery: %+v", seed, o.KillAt, res.Recovery)
		}
		if res.SnapshotBytes == 0 {
			t.Errorf("seed %d: no snapshot bytes recorded", seed)
		}
	}
}

// TestStressRecoverDeterministic: recover mode must stay a pure function of
// Options end-to-end — failure point, snapshot, and rerun included.
func TestStressRecoverDeterministic(t *testing.T) {
	o := stress.Options{
		Seed: 11, NumPE: 4, OpsPerPE: 300, Recover: true, CkptEvery: 32,
		KillPE: 2, KillAt: 500 * sim.Millisecond,
	}
	a, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.History.Digest(), b.History.Digest(); da != db {
		t.Fatalf("same recover seed, different histories: %s vs %s", da, db)
	}
}

// TestStressRecoverCorruptSnapshot flips bits in the stored snapshot before
// the restart reads it: the store's CRC/content-hash check must refuse the
// generation and the run must fail loudly rather than restore garbage.
func TestStressRecoverCorruptSnapshot(t *testing.T) {
	_, err := stress.Run(stress.Options{
		Seed: 11, NumPE: 4, OpsPerPE: 300, Recover: true, CkptEvery: 32,
		KillPE: 2, KillAt: 500 * sim.Millisecond,
		FaultCorruptSnapshot: true,
	})
	if err == nil {
		t.Fatal("corrupted snapshot was accepted")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
}

// TestStressMembershipChurn runs the full fault-free op mix while the
// membership churns live: a latent PE joins a quarter of the way in, an
// active PE leaves halfway through, and PE 1 keeps re-homing random block
// ranges throughout — every handoff overlapping application traffic. The
// history must check out with zero violations and, since nothing is lossy,
// every operation must complete.
func TestStressMembershipChurn(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		o := stress.Options{
			Seed: seed, NumPE: 5, OpsPerPE: 200,
			Latent: 1, JoinAtOp: 50,
			LeavePE: 2, LeaveAtOp: 100,
			MigrateEvery: 30,
		}
		res := runStress(t, o)
		if res.Joins < 1 || res.Leaves != 1 {
			t.Errorf("seed %d: joins=%d leaves=%d, want >=1 and 1", seed, res.Joins, res.Leaves)
		}
		if ev := res.Joins + res.Leaves + res.Migrations; ev < 3 {
			t.Errorf("seed %d: only %d membership events, want >= 3", seed, ev)
		}
		if res.MigratedBlocks == 0 {
			t.Errorf("seed %d: no blocks changed home", seed)
		}
		for _, e := range res.History.Events {
			if e.Failed {
				t.Errorf("seed %d: operation never completed during churn: %v", seed, e)
			}
		}
	}
}

// TestStressMembershipReplayDeterministic demands the same membership
// schedule replays to a bit-identical history: joins, leaves and migrations
// are as replayable as any other stress event.
func TestStressMembershipReplayDeterministic(t *testing.T) {
	o := stress.Options{
		Seed: 29, NumPE: 4, OpsPerPE: 150,
		Latent: 1, JoinAtOp: 40, MigrateEvery: 25,
	}
	a, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stress.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.History.Digest(), b.History.Digest(); da != db {
		t.Fatalf("same membership schedule, different histories: %s vs %s", da, db)
	}
}

// TestStressMembershipKillOverlapsMigration overlaps a station kill with
// live migrations and a join: PE 1 re-homes ranges every 20 ops (sometimes
// toward the doomed PE), PE 3's station dies mid-run, and the latent PE 4
// joins through it all. Survivor operations that completed must form a
// consistent history — a handoff stranded by the kill may fail ops, but it
// must never lose or duplicate an acknowledged write.
func TestStressMembershipKillOverlapsMigration(t *testing.T) {
	res := runStress(t, stress.Options{
		Seed: 23, NumPE: 5, OpsPerPE: 200, Loss: 0.02,
		KillPE: 3, KillAt: 2 * sim.Second,
		Latent: 1, JoinAtOp: 30, MigrateEvery: 20,
	})
	if ev := res.Joins + res.Leaves + res.Migrations; ev < 3 {
		t.Errorf("only %d membership events overlapped the kill, want >= 3", ev)
	}
}

// TestStressEscrowReofferChainedHandoff replays a schedule where a block is
// handed off twice in quick succession (a leave re-homes it to the successor,
// then a migrate range immediately moves it on) while the first home's escrow
// re-offer is still in flight. The stale re-offer lands at the intermediate
// home after it has already extracted the block toward the final destination;
// adopting it used to resurrect both the stale data and a local ownership
// claim that the commit broadcast's staleness guard then refused to correct —
// a permanent split brain with one-sided reads and ring writes split across
// two live copies. The install handler must refuse payloads for blocks it
// currently holds in escrow.
func TestStressEscrowReofferChainedHandoff(t *testing.T) {
	res := runStress(t, stress.Options{
		Seed: 9, NumPE: 4, OpsPerPE: 800, Shards: 2,
		DirectReads: 1, Rings: 1,
		Latent: 1, JoinAtOp: 200,
		LeavePE: 2, LeaveAtOp: 400, MigrateEvery: 100,
	})
	if ev := res.Joins + res.Leaves + res.Migrations; ev < 3 {
		t.Errorf("only %d membership events, want >= 3", ev)
	}
}
