package core

import (
	"errors"
	"testing"

	"repro/internal/gmem"
)

// Namespace-isolation enforcement tests (DESIGN.md §15): a PE bound to a
// job namespace must not be able to touch memory outside it on any path —
// the two-sided message path (kernel-side typed NACK), and the one-sided
// window-read and ring-write fast paths (PE-side guard, plus the home's
// ring-drain filter as defense in depth against a forged producer).

// TestNamespaceKernelEnforcement exercises the kernel-side check alone: the
// scheduler installs PE 1's binding at every kernel, but PE 1 itself stays
// unbound PE-side — the "forged requester" a compromised PE guard would
// produce. Every out-of-region request must come back as the typed
// *NamespaceError carrying the bound region, and be counted as a kernel
// violation. Windows and rings are forced off so every access takes the
// message path.
func TestNamespaceKernelEnforcement(t *testing.T) {
	const bw = 32
	// PE 1's namespace: blocks 8..12, words [256, 384).
	region := gmem.Region{Base: 8 * bw, Limit: 12 * bw}
	outside := uint64(2 * bw) // block 2, homed at kernel 0: remote for PE 1
	prog := func(pe *PE) error {
		if pe.ID() == 0 {
			if err := pe.NamespaceBind(1, region.Base, region.Limit); err != nil {
				return err
			}
			pe.Barrier()
			pe.Barrier()
			return pe.NamespaceBind(1, 0, 0)
		}
		pe.Barrier()
		check := func(op string, err error) {
			var nsErr *NamespaceError
			if !errors.As(err, &nsErr) {
				t.Errorf("%s outside namespace: got %v, want *NamespaceError", op, err)
				return
			}
			if nsErr.Base != region.Base || nsErr.Limit != region.Limit {
				t.Errorf("%s: error region [%d,%d), want [%d,%d)",
					op, nsErr.Base, nsErr.Limit, region.Base, region.Limit)
			}
		}
		_, err := pe.GMReadErr(outside)
		check("read", err)
		check("write", pe.GMWriteErr(outside, 7))
		_, err = pe.FetchAddErr(outside, 1)
		check("fetch-add", err)
		_, _, err = pe.CASErr(outside, 0, 1)
		check("cas", err)
		// Inside the region every operation works.
		if err := pe.GMWriteErr(region.Base, 42); err != nil {
			return err
		}
		if v, err := pe.GMReadErr(region.Base); err != nil || v != 42 {
			t.Errorf("in-region read = %d, %v, want 42", v, err)
		}
		pe.Barrier()
		return nil
	}
	res, err := Run(Config{
		NumPE: 2, Transport: TransportInproc,
		KernelShards: 1, DirectReads: -1, WriteRings: -1,
	}, prog)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.NsViolations < 4 {
		t.Errorf("kernel NsViolations = %d, want >= 4", res.Total.NsViolations)
	}
	if res.Total.NsDenials != 0 {
		t.Errorf("PE-side NsDenials = %d, want 0 (PE guard was never installed)", res.Total.NsDenials)
	}
}

// TestNamespacePEGuardOneSidedPaths exercises the PE-side guard with the
// one-sided fast paths on: a window read or ring write of memory outside
// the bound region must be refused with the typed error before anything is
// read from the window or published into a ring, and counted as a denial.
// In-region traffic keeps flowing through the fast paths.
func TestNamespacePEGuardOneSidedPaths(t *testing.T) {
	const bw = 32
	region := gmem.Region{Base: 8 * bw, Limit: 16 * bw}
	outside := uint64(2 * bw) // homed at kernel 0: remote, window/ring territory
	prog := func(pe *PE) error {
		if pe.ID() != 1 {
			pe.Barrier()
			pe.Barrier()
			return nil
		}
		pe.Barrier()
		pe.BindNamespace(region.Base, region.Limit)
		var nsErr *NamespaceError
		if _, err := pe.GMReadErr(outside); !errors.As(err, &nsErr) {
			t.Errorf("window read outside namespace: got %v, want *NamespaceError", err)
		}
		if err := pe.GMWriteErr(outside, 7); !errors.As(err, &nsErr) {
			t.Errorf("ring write outside namespace: got %v, want *NamespaceError", err)
		}
		// Block/gather tiers panic with the same typed value.
		func() {
			defer func() {
				r := recover()
				err, ok := r.(error)
				if !ok || !errors.As(err, &nsErr) {
					t.Errorf("block read outside namespace: panic %v, want *NamespaceError", r)
				}
			}()
			pe.GMReadBlock(outside, 4)
		}()
		func() {
			defer func() {
				r := recover()
				err, ok := r.(error)
				if !ok || !errors.As(err, &nsErr) {
					t.Errorf("gather outside namespace: panic %v, want *NamespaceError", r)
				}
			}()
			pe.GMGather([]uint64{region.Base, outside})
		}()
		// In-region traffic still flows through the one-sided paths.
		for i := uint64(0); i < 8; i++ {
			pe.GMWrite(region.Base+i, int64(i+1))
		}
		for i := uint64(0); i < 8; i++ {
			if v := pe.GMRead(region.Base + i); v != int64(i+1) {
				t.Errorf("in-region word %d = %d", i, v)
			}
		}
		pe.ClearNamespace()
		pe.Barrier()
		return nil
	}
	res, err := Run(Config{
		NumPE: 2, Transport: TransportInproc,
		KernelShards: 2, DirectReads: 1,
	}, prog)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.NsDenials < 4 {
		t.Errorf("PE-side NsDenials = %d, want >= 4", res.Total.NsDenials)
	}
	if res.Total.NsViolations != 0 {
		t.Errorf("kernel NsViolations = %d, want 0 (nothing escaped the PE guard)", res.Total.NsViolations)
	}
	if res.Total.RingGM == 0 {
		t.Error("no ring writes: the one-sided write path never engaged")
	}
}

// TestNamespaceRingDrainFilter exercises the home's ring-drain filter: a
// forged producer (kernel-side binding installed, PE-side guard absent)
// publishes an out-of-region write straight into the home's submission
// ring. The drain must drop it unapplied and count a kernel violation — the
// target word stays untouched.
func TestNamespaceRingDrainFilter(t *testing.T) {
	const bw = 32
	region := gmem.Region{Base: 8 * bw, Limit: 12 * bw}
	outside := uint64(2 * bw) // block 2, homed at kernel 0
	prog := func(pe *PE) error {
		switch pe.ID() {
		case 0:
			if err := pe.NamespaceBind(1, region.Base, region.Limit); err != nil {
				return err
			}
			pe.Barrier() // binding installed
			pe.Barrier() // forged write attempted
			if v := pe.GMRead(outside); v != 0 {
				t.Errorf("forged ring write landed: word = %d, want 0", v)
			}
			pe.Barrier()
			return pe.NamespaceBind(1, 0, 0)
		case 1:
			pe.Barrier()
			// PE-side unbound: the write reaches the home's ring and must
			// be dropped by the drain filter (no error surfaces on this
			// defense-in-depth path — the PE guard is the error surface).
			if err := pe.GMWriteErr(outside, 99); err != nil {
				var nsErr *NamespaceError
				if !errors.As(err, &nsErr) {
					return err
				}
			}
			pe.Barrier()
			pe.Barrier()
			return nil
		default:
			pe.Barrier()
			pe.Barrier()
			pe.Barrier()
			return nil
		}
	}
	res, err := Run(Config{
		NumPE: 2, Transport: TransportInproc,
		KernelShards: 2, DirectReads: 1,
	}, prog)
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if res.Total.NsViolations < 1 {
		t.Errorf("kernel NsViolations = %d, want >= 1 (ring drain or message NACK)", res.Total.NsViolations)
	}
}
