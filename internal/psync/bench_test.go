package psync

import "testing"

func BenchmarkBarrierEpoch(b *testing.B) {
	bm := NewBarrierManager(8)
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			bm.Arrive(k, 1)
		}
	}
}

func BenchmarkLockAcquireRelease(b *testing.B) {
	lm := NewLockManager()
	for i := 0; i < b.N; i++ {
		lm.Acquire(0, 1)
		lm.Release(0, 1)
	}
}

func BenchmarkTreeBarrierArrive(b *testing.B) {
	tb := NewTreeBarrier(0, 16, 2)
	need := len(tb.Children()) + 1
	for i := 0; i < b.N; i++ {
		for k := 0; k < need; k++ {
			tb.Arrive(1)
		}
	}
}
