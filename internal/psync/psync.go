// Package psync holds the synchronisation state machines of the DSE
// parallel processing library: the centralised barrier, lock and semaphore
// managers (hosted by kernel 0) and the distributed tree barrier used as an
// ablation. The state machines are pure — they consume "PE x arrived/asked"
// events and emit lists of PEs to notify — so the same code drives every
// transport and is unit-testable without a cluster.
//
// These sync operations are also release consistency's ordering edges
// (DESIGN.md §14): a PE publishes its write-combining buffer before a
// barrier arrival, a lock release or a semaphore post, and drops its lease
// cache after a barrier crossing, a lock grant or a semaphore grant. The
// managers themselves need no changes for that — the PE-side core plumbs
// the flush/drop around the messages they already exchange — but any new
// sync primitive added here must get the same treatment in internal/core.
package psync

import "fmt"

// BarrierManager implements the central barrier: kernels send arrive
// messages to the manager, which releases everyone when the count is full.
// Barriers are identified by a small integer id; each id cycles through
// epochs independently.
type BarrierManager struct {
	n       int
	arrived map[int32][]int
}

// NewBarrierManager creates a manager for an n-kernel cluster.
func NewBarrierManager(n int) *BarrierManager {
	if n <= 0 {
		panic("psync: barrier over empty cluster")
	}
	return &BarrierManager{n: n, arrived: make(map[int32][]int)}
}

// Arrive records that src reached barrier id. When the epoch completes it
// returns the kernels to release (in arrival order) and resets the epoch;
// otherwise it returns nil.
func (bm *BarrierManager) Arrive(src int, id int32) []int {
	return bm.ArriveSized(src, id, bm.n)
}

// ArriveSized is Arrive with an explicit epoch size: the barrier releases
// after size arrivals instead of the full cluster count. Job-scoped group
// barriers use this — a job's gang spans a PE subset, so its barriers
// complete at the group size. size <= 0 (or > n) falls back to the cluster
// count, so a zeroed wire field means the classic full barrier.
func (bm *BarrierManager) ArriveSized(src int, id int32, size int) []int {
	if size <= 0 || size > bm.n {
		size = bm.n
	}
	waiters := append(bm.arrived[id], src)
	if len(waiters) > size {
		panic(fmt.Sprintf("psync: barrier %d over-arrived (%d > %d); duplicate arrival from %d?", id, len(waiters), size, src))
	}
	if len(waiters) == size {
		delete(bm.arrived, id)
		return waiters
	}
	bm.arrived[id] = waiters
	return nil
}

// Pending reports how many kernels are waiting at barrier id.
func (bm *BarrierManager) Pending(id int32) int { return len(bm.arrived[id]) }

// PendingTotal reports how many arrivals are parked across ALL open barrier
// epochs — a leak gauge: after a quiesced teardown it must be zero.
func (bm *BarrierManager) PendingTotal() int {
	total := 0
	for _, w := range bm.arrived {
		total += len(w)
	}
	return total
}

// DropRange discards every partial epoch whose barrier id lies in [lo, hi):
// namespace teardown for a cancelled job whose members died mid-barrier, so
// the job's id range is clean when a later job reuses it.
func (bm *BarrierManager) DropRange(lo, hi int32) {
	for id := range bm.arrived {
		if id >= lo && id < hi {
			delete(bm.arrived, id)
		}
	}
}

// LockManager implements the central distributed lock manager. Locks are
// granted FIFO.
type LockManager struct {
	holder map[int32]int
	waitq  map[int32][]int
}

// NewLockManager creates an empty manager.
func NewLockManager() *LockManager {
	return &LockManager{holder: make(map[int32]int), waitq: make(map[int32][]int)}
}

// Acquire asks for lock id on behalf of src. It reports whether the lock
// was granted immediately; otherwise src is queued.
func (lm *LockManager) Acquire(src int, id int32) bool {
	if h, held := lm.holder[id]; held {
		if h == src {
			panic(fmt.Sprintf("psync: kernel %d re-acquired lock %d it already holds", src, id))
		}
		lm.waitq[id] = append(lm.waitq[id], src)
		return false
	}
	lm.holder[id] = src
	return true
}

// Release releases lock id held by src and returns the next kernel to grant
// it to (ok=false when the queue is empty).
func (lm *LockManager) Release(src int, id int32) (next int, ok bool) {
	h, held := lm.holder[id]
	if !held || h != src {
		panic(fmt.Sprintf("psync: kernel %d released lock %d it does not hold", src, id))
	}
	q := lm.waitq[id]
	if len(q) == 0 {
		delete(lm.holder, id)
		return 0, false
	}
	next = q[0]
	if len(q) == 1 {
		delete(lm.waitq, id)
	} else {
		lm.waitq[id] = q[1:]
	}
	lm.holder[id] = next
	return next, true
}

// Holder reports the current holder of lock id.
func (lm *LockManager) Holder(id int32) (int, bool) {
	h, ok := lm.holder[id]
	return h, ok
}

// Residue reports how many locks are held plus how many waiters are queued
// across all ids — a leak gauge for job teardown.
func (lm *LockManager) Residue() int {
	total := len(lm.holder)
	for _, q := range lm.waitq {
		total += len(q)
	}
	return total
}

// DropRange forgets holders and wait queues of every lock id in [lo, hi):
// teardown for a job that aborted while holding or awaiting its locks.
func (lm *LockManager) DropRange(lo, hi int32) {
	for id := range lm.holder {
		if id >= lo && id < hi {
			delete(lm.holder, id)
		}
	}
	for id := range lm.waitq {
		if id >= lo && id < hi {
			delete(lm.waitq, id)
		}
	}
}

// SemManager implements central counting semaphores.
type SemManager struct {
	val   map[int32]int64
	waitq map[int32][]int
}

// NewSemManager creates an empty manager; unknown semaphores start at 0.
func NewSemManager() *SemManager {
	return &SemManager{val: make(map[int32]int64), waitq: make(map[int32][]int)}
}

// Init sets semaphore id to v (only meaningful before any waiter queues).
func (sm *SemManager) Init(id int32, v int64) { sm.val[id] = v }

// Wait decrements semaphore id for src. It reports whether the down
// succeeded immediately; otherwise src is queued.
func (sm *SemManager) Wait(src int, id int32) bool {
	if sm.val[id] > 0 {
		sm.val[id]--
		return true
	}
	sm.waitq[id] = append(sm.waitq[id], src)
	return false
}

// Post increments semaphore id and returns the kernel to grant a pending
// wait to, if any.
func (sm *SemManager) Post(id int32) (next int, ok bool) {
	q := sm.waitq[id]
	if len(q) > 0 {
		next = q[0]
		if len(q) == 1 {
			delete(sm.waitq, id)
		} else {
			sm.waitq[id] = q[1:]
		}
		return next, true
	}
	sm.val[id]++
	return 0, false
}

// Value reports the semaphore's current value.
func (sm *SemManager) Value(id int32) int64 { return sm.val[id] }

// WaitersTotal reports how many waiters are queued across all semaphores —
// a leak gauge for job teardown.
func (sm *SemManager) WaitersTotal() int {
	total := 0
	for _, q := range sm.waitq {
		total += len(q)
	}
	return total
}

// DropRange forgets values and wait queues of every semaphore id in
// [lo, hi): teardown for a job's private semaphore range.
func (sm *SemManager) DropRange(lo, hi int32) {
	for id := range sm.val {
		if id >= lo && id < hi {
			delete(sm.val, id)
		}
	}
	for id := range sm.waitq {
		if id >= lo && id < hi {
			delete(sm.waitq, id)
		}
	}
}

// TreeBarrier is the distributed alternative to the central barrier: each
// kernel combines arrivals from its tree children, forwards one message to
// its parent, and the root broadcasts release back down. One TreeBarrier
// lives at each kernel.
type TreeBarrier struct {
	self  int
	n     int
	arity int
	count map[int32]int
}

// NewTreeBarrier builds the node-local state for kernel self of n with the
// given fan-in (arity >= 2).
func NewTreeBarrier(self, n, arity int) *TreeBarrier {
	if arity < 2 {
		arity = 2
	}
	return &TreeBarrier{self: self, n: n, arity: arity, count: make(map[int32]int)}
}

// Parent returns this kernel's tree parent (ok=false at the root).
func (tb *TreeBarrier) Parent() (int, bool) {
	if tb.self == 0 {
		return 0, false
	}
	return (tb.self - 1) / tb.arity, true
}

// Children returns this kernel's tree children.
func (tb *TreeBarrier) Children() []int {
	var cs []int
	for i := 1; i <= tb.arity; i++ {
		c := tb.self*tb.arity + i
		if c < tb.n {
			cs = append(cs, c)
		}
	}
	return cs
}

// Arrive records one arrival (the kernel's own, or a combined arrival from
// a child subtree) for barrier id. When the whole subtree has arrived it
// resets the epoch and reports complete=true: a non-root kernel must then
// notify its parent, the root must broadcast release.
func (tb *TreeBarrier) Arrive(id int32) (complete bool) {
	need := len(tb.Children()) + 1
	c := tb.count[id] + 1
	if c >= need {
		delete(tb.count, id)
		return true
	}
	tb.count[id] = c
	return false
}
