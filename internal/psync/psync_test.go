package psync

import (
	"testing"
	"testing/quick"
)

func TestBarrierReleasesOnlyWhenFull(t *testing.T) {
	bm := NewBarrierManager(3)
	if r := bm.Arrive(0, 1); r != nil {
		t.Fatalf("released after 1 arrival: %v", r)
	}
	if r := bm.Arrive(2, 1); r != nil {
		t.Fatalf("released after 2 arrivals: %v", r)
	}
	r := bm.Arrive(1, 1)
	if len(r) != 3 {
		t.Fatalf("release list = %v, want all three", r)
	}
	if bm.Pending(1) != 0 {
		t.Fatal("epoch did not reset")
	}
}

func TestBarrierEpochsIndependentPerID(t *testing.T) {
	bm := NewBarrierManager(2)
	bm.Arrive(0, 1)
	bm.Arrive(0, 2)
	if bm.Pending(1) != 1 || bm.Pending(2) != 1 {
		t.Fatal("ids interfered")
	}
	if r := bm.Arrive(1, 2); len(r) != 2 {
		t.Fatalf("barrier 2 did not complete: %v", r)
	}
	if bm.Pending(1) != 1 {
		t.Fatal("barrier 1 state lost")
	}
}

func TestBarrierReusableAcrossEpochs(t *testing.T) {
	bm := NewBarrierManager(2)
	for epoch := 0; epoch < 5; epoch++ {
		bm.Arrive(0, 7)
		if r := bm.Arrive(1, 7); len(r) != 2 {
			t.Fatalf("epoch %d did not release", epoch)
		}
	}
}

func TestBarrierOverArrivalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate arrival")
		}
	}()
	bm := NewBarrierManager(1)
	bm.Arrive(0, 1) // completes immediately
	bm.Arrive(0, 1) // fine: next epoch, completes again
	bm2 := NewBarrierManager(3)
	bm2.Arrive(0, 1)
	bm2.Arrive(1, 1)
	bm2.Arrive(2, 1)
	bm2.arrived[1] = []int{0, 1, 2} // corrupt state to force over-arrival
	bm2.Arrive(0, 1)
}

// Property: for any arrival permutation, exactly one release of size n fires
// per epoch, containing each kernel once.
func TestBarrierReleaseProperty(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		bm := NewBarrierManager(n)
		// Deterministic pseudo-permutation of arrivals from the seed.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		s := int(seed)
		for i := n - 1; i > 0; i-- {
			j := (s + i*7) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		var release []int
		for i, src := range order {
			r := bm.Arrive(src, 3)
			if i < n-1 && r != nil {
				return false
			}
			if i == n-1 {
				release = r
			}
		}
		if len(release) != n {
			return false
		}
		seen := map[int]bool{}
		for _, k := range release {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockFIFOGranting(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(0, 1) {
		t.Fatal("first acquire should grant")
	}
	if lm.Acquire(1, 1) || lm.Acquire(2, 1) {
		t.Fatal("held lock granted again")
	}
	next, ok := lm.Release(0, 1)
	if !ok || next != 1 {
		t.Fatalf("release granted %d,%v want 1", next, ok)
	}
	next, ok = lm.Release(1, 1)
	if !ok || next != 2 {
		t.Fatalf("release granted %d,%v want 2", next, ok)
	}
	if _, ok = lm.Release(2, 1); ok {
		t.Fatal("empty queue should not grant")
	}
	if _, held := lm.Holder(1); held {
		t.Fatal("lock should be free")
	}
}

func TestLockIndependentIDs(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(0, 1) || !lm.Acquire(1, 2) {
		t.Fatal("different ids should not conflict")
	}
}

func TestLockReleaseWithoutHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLockManager().Release(0, 1)
}

func TestLockReacquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lm := NewLockManager()
	lm.Acquire(0, 1)
	lm.Acquire(0, 1)
}

// Property: under any sequence of acquire/release pairs, at most one holder
// exists per lock and every waiter is eventually granted FIFO.
func TestLockMutualExclusionProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		lm := NewLockManager()
		const id = int32(1)
		holder := -1
		var queue []int
		granted := map[int]bool{}
		for _, op := range ops {
			src := int(op % 5)
			if holder == -1 {
				if !lm.Acquire(src, id) {
					return false
				}
				holder = src
				granted[src] = true
				continue
			}
			if src == holder {
				next, ok := lm.Release(src, id)
				if len(queue) == 0 {
					if ok {
						return false
					}
					holder = -1
				} else {
					if !ok || next != queue[0] {
						return false
					}
					holder = queue[0]
					queue = queue[1:]
				}
				delete(granted, src)
				continue
			}
			if granted[src] {
				continue // already waiting or holding; skip
			}
			inQueue := false
			for _, q := range queue {
				if q == src {
					inQueue = true
				}
			}
			if inQueue {
				continue
			}
			if lm.Acquire(src, id) {
				return false // must queue while held
			}
			queue = append(queue, src)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreCounting(t *testing.T) {
	sm := NewSemManager()
	sm.Init(1, 2)
	if !sm.Wait(0, 1) || !sm.Wait(1, 1) {
		t.Fatal("two downs of a 2-valued semaphore should pass")
	}
	if sm.Wait(2, 1) {
		t.Fatal("third down should block")
	}
	next, ok := sm.Post(1)
	if !ok || next != 2 {
		t.Fatalf("post granted %d,%v want 2", next, ok)
	}
	if _, ok := sm.Post(1); ok {
		t.Fatal("post with empty queue should just increment")
	}
	if sm.Value(1) != 1 {
		t.Fatalf("value = %d, want 1", sm.Value(1))
	}
}

func TestSemaphoreZeroStart(t *testing.T) {
	sm := NewSemManager()
	if sm.Wait(0, 9) {
		t.Fatal("wait on fresh semaphore should block")
	}
	if next, ok := sm.Post(9); !ok || next != 0 {
		t.Fatal("post should grant the waiter")
	}
}

func TestTreeBarrierTopology(t *testing.T) {
	n := 10
	// Every kernel except the root has a parent; child lists are the
	// exact inverse of the parent relation.
	for self := 0; self < n; self++ {
		tb := NewTreeBarrier(self, n, 2)
		parent, ok := tb.Parent()
		if self == 0 {
			if ok {
				t.Fatal("root has a parent")
			}
		} else {
			if !ok || parent != (self-1)/2 {
				t.Fatalf("kernel %d parent = %d", self, parent)
			}
		}
		for _, c := range tb.Children() {
			ctb := NewTreeBarrier(c, n, 2)
			if p, _ := ctb.Parent(); p != self {
				t.Fatalf("child %d of %d disagrees: parent=%d", c, self, p)
			}
		}
	}
}

func TestTreeBarrierCompletesOnceSubtreeArrives(t *testing.T) {
	// Kernel 0 of 5 with arity 2 has children {1,2}: needs self + 2.
	tb := NewTreeBarrier(0, 5, 2)
	if tb.Arrive(1) {
		t.Fatal("complete after 1/3")
	}
	if tb.Arrive(1) {
		t.Fatal("complete after 2/3")
	}
	if !tb.Arrive(1) {
		t.Fatal("not complete after 3/3")
	}
	// Epoch reset: the next round needs 3 again.
	if tb.Arrive(1) {
		t.Fatal("stale epoch state")
	}
}

func TestTreeBarrierLeaf(t *testing.T) {
	tb := NewTreeBarrier(4, 5, 2) // kernel 4 is a leaf
	if len(tb.Children()) != 0 {
		t.Fatalf("leaf has children %v", tb.Children())
	}
	if !tb.Arrive(1) {
		t.Fatal("leaf should complete on its own arrival")
	}
}

// Property: simulating the full message flow over the tree releases every
// kernel exactly once, for any cluster size and arity.
func TestTreeBarrierGlobalProperty(t *testing.T) {
	f := func(nRaw, arityRaw uint8) bool {
		n := int(nRaw%16) + 1
		arity := int(arityRaw%4) + 2
		tbs := make([]*TreeBarrier, n)
		for i := range tbs {
			tbs[i] = NewTreeBarrier(i, n, arity)
		}
		// Every kernel arrives; propagate completions upward.
		var upward func(k int)
		rootComplete := false
		upward = func(k int) {
			if tbs[k].Arrive(1) {
				if parent, ok := tbs[k].Parent(); ok {
					upward(parent)
				} else {
					rootComplete = true
				}
			}
		}
		for k := 0; k < n; k++ {
			upward(k)
		}
		if !rootComplete {
			return false
		}
		// Release flows down: count that broadcast reaches everyone once.
		released := make([]int, n)
		var down func(k int)
		down = func(k int) {
			released[k]++
			for _, c := range tbs[k].Children() {
				down(c)
			}
		}
		down(0)
		for _, r := range released {
			if r != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
