// Package mp is a small PVM/MPI-flavoured message-passing library layered
// on the DSE runtime's PE-to-PE messages. The paper positions PVM and MPI
// as the portable message-passing alternatives to DSE's shared-memory
// model; this package is that baseline, used by the shared-memory versus
// message-passing ablation benchmarks. It deliberately uses no global
// memory: every collective is built from point-to-point sends.
package mp

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// tagBase keeps mp's internal tags out of the application tag space.
const tagBase int32 = 1 << 24

// Comm is a communicator over all PEs of the cluster.
type Comm struct {
	pe  core.Proc
	gen int32 // distinguishes collective epochs within a tag
}

// New wraps a PE in a communicator.
func New(pe core.Proc) *Comm { return &Comm{pe: pe} }

// Rank returns this process's rank (the PE id).
func (c *Comm) Rank() int { return c.pe.ID() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.pe.N() }

// Send delivers data to rank dst under a user tag (tags must be < 2^24).
func (c *Comm) Send(dst int, tag int32, data []byte) {
	if tag >= tagBase {
		panic(fmt.Sprintf("mp: user tag %d collides with internal tag space", tag))
	}
	c.pe.SendMsg(dst, tag, data)
}

// Recv blocks for a message with the user tag.
func (c *Comm) Recv(tag int32) (src int, data []byte) {
	if tag >= tagBase {
		panic(fmt.Sprintf("mp: user tag %d collides with internal tag space", tag))
	}
	return c.pe.RecvMsg(tag)
}

// SendF and RecvF exchange float64 slices.
func (c *Comm) SendF(dst int, tag int32, vals []float64) {
	c.Send(dst, tag, encodeF(vals))
}

// RecvF receives a float64 slice sent with SendF.
func (c *Comm) RecvF(tag int32) (src int, vals []float64) {
	src, data := c.Recv(tag)
	return src, decodeF(data)
}

func encodeF(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func decodeF(data []byte) []float64 {
	if len(data)%8 != 0 {
		panic("mp: float payload not a multiple of 8 bytes")
	}
	vals := make([]float64, len(data)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals
}

// nextTag reserves a fresh block of 64 internal tags for one collective
// operation (some collectives need a distinct tag per round). All ranks
// call collectives in the same order, so the sequences agree.
func (c *Comm) nextTag() int32 {
	c.gen++
	return tagBase + c.gen*64
}

// Barrier synchronises all ranks with a dissemination barrier: ceil(log2 n)
// rounds of pairwise messages, no global memory and no central manager.
// Each round uses its own tag — a fast peer's round-k message must not
// satisfy a slow peer's round-j wait.
func (c *Comm) Barrier() {
	tag := c.nextTag()
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank()
	round := int32(0)
	for dist := 1; dist < n; dist *= 2 {
		peer := (me + dist) % n
		c.pe.SendMsg(peer, tag+round, nil)
		c.pe.RecvMsg(tag + round)
		round++
	}
}

// Bcast distributes root's data to every rank and returns it (binomial
// tree, log2 n rounds).
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.nextTag()
	n := c.Size()
	if n == 1 {
		return data
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (c.Rank() - root + n) % n
	if vrank != 0 {
		_, data = c.pe.RecvMsg(tag)
	}
	// After receiving, forward down the binomial tree: virtual rank r
	// covers r+2^k for every 2^k greater than r's highest set bit.
	for mask := 1; mask < n; mask *= 2 {
		if vrank < mask {
			child := vrank + mask
			if child < n {
				c.pe.SendMsg((child+root)%n, tag, data)
			}
		}
	}
	return data
}

// Reduce combines one float64 per rank with op; the result lands on root
// (other ranks receive 0). Combination follows a binomial tree for
// determinism: op must be associative and commutative.
func (c *Comm) Reduce(root int, x float64, op func(a, b float64) float64) float64 {
	tag := c.nextTag()
	n := c.Size()
	vrank := (c.Rank() - root + n) % n
	acc := x
	for mask := 1; mask < n; mask *= 2 {
		if vrank&mask != 0 {
			c.SendFInternal((vrank-mask+root)%n, tag, []float64{acc})
			return 0
		}
		peer := vrank + mask
		if peer < n {
			_, vals := c.RecvFInternal(tag)
			acc = op(acc, vals[0])
		}
	}
	return acc
}

// AllReduce is Reduce followed by Bcast of the result.
func (c *Comm) AllReduce(x float64, op func(a, b float64) float64) float64 {
	acc := c.Reduce(0, x, op)
	out := c.Bcast(0, encodeF([]float64{acc}))
	return decodeF(out)[0]
}

// Scatter splits root's vals into equal per-rank chunks; every rank
// receives its chunk. len(vals) must be divisible by Size on the root.
func (c *Comm) Scatter(root int, vals []float64) []float64 {
	tag := c.nextTag()
	n := c.Size()
	if c.Rank() == root {
		if len(vals)%n != 0 {
			panic("mp: Scatter length not divisible by communicator size")
		}
		per := len(vals) / n
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			c.SendFInternal(r, tag, vals[r*per:(r+1)*per])
		}
		return append([]float64(nil), vals[root*per:(root+1)*per]...)
	}
	_, chunk := c.RecvFInternal(tag)
	return chunk
}

// Gather collects equal-sized chunks from every rank onto root, ordered by
// rank (other ranks receive nil).
func (c *Comm) Gather(root int, chunk []float64) []float64 {
	tag := c.nextTag()
	n := c.Size()
	if c.Rank() != root {
		c.SendFInternal(root, tag, chunk)
		return nil
	}
	per := len(chunk)
	out := make([]float64, per*n)
	copy(out[root*per:], chunk)
	for i := 0; i < n-1; i++ {
		src, vals := c.RecvFInternal(tag)
		if len(vals) != per {
			panic(fmt.Sprintf("mp: Gather chunk from %d has %d values, want %d", src, len(vals), per))
		}
		copy(out[src*per:], vals)
	}
	return out
}

// SendFInternal and RecvFInternal bypass the user-tag check for
// collective-internal traffic.
func (c *Comm) SendFInternal(dst int, tag int32, vals []float64) {
	c.pe.SendMsg(dst, tag, encodeF(vals))
}

// RecvFInternal receives collective-internal float traffic.
func (c *Comm) RecvFInternal(tag int32) (int, []float64) {
	src, data := c.pe.RecvMsg(tag)
	return src, decodeF(data)
}
