package mp

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func run(t *testing.T, n int, body core.Program) {
	t.Helper()
	res, err := core.Run(core.Config{NumPE: n, Transport: core.TransportInproc}, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	run(t, 2, func(pe *core.PE) error {
		c := New(pe)
		if c.Rank() == 0 {
			c.SendF(1, 5, []float64{1.5, -2.5})
			src, vals := c.RecvF(6)
			if src != 1 || vals[0] != 99 {
				return fmt.Errorf("got %v from %d", vals, src)
			}
			return nil
		}
		src, vals := c.RecvF(5)
		if src != 0 || len(vals) != 2 || vals[1] != -2.5 {
			return fmt.Errorf("got %v from %d", vals, src)
		}
		c.SendF(0, 6, []float64{99})
		return nil
	})
}

func TestBarrierSeparatesPhases(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			run(t, n, func(pe *core.PE) error {
				c := New(pe)
				x := pe.Alloc(n)
				for phase := 0; phase < 3; phase++ {
					pe.GMWrite(x+uint64(c.Rank()), int64(phase))
					c.Barrier()
					for r := 0; r < n; r++ {
						if v := pe.GMRead(x + uint64(r)); v != int64(phase) {
							return fmt.Errorf("rank %d phase %d: saw %d from %d", c.Rank(), phase, v, r)
						}
					}
					c.Barrier()
				}
				return nil
			})
		})
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 6
	for root := 0; root < n; root++ {
		root := root
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			run(t, n, func(pe *core.PE) error {
				c := New(pe)
				var data []byte
				if c.Rank() == root {
					data = []byte{1, 2, 3, byte(root)}
				}
				got := c.Bcast(root, data)
				if len(got) != 4 || got[3] != byte(root) {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			run(t, n, func(pe *core.PE) error {
				c := New(pe)
				got := c.Reduce(0, float64(c.Rank()+1), func(a, b float64) float64 { return a + b })
				want := float64(n * (n + 1) / 2)
				if c.Rank() == 0 && got != want {
					return fmt.Errorf("sum = %v, want %v", got, want)
				}
				return nil
			})
		})
	}
}

func TestAllReduceEveryoneAgrees(t *testing.T) {
	run(t, 5, func(pe *core.PE) error {
		c := New(pe)
		got := c.AllReduce(float64(c.Rank()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if got != 4 {
			return fmt.Errorf("rank %d: max = %v, want 4", c.Rank(), got)
		}
		return nil
	})
}

func TestScatterGatherInverse(t *testing.T) {
	const n = 4
	run(t, n, func(pe *core.PE) error {
		c := New(pe)
		var vals []float64
		if c.Rank() == 2 {
			vals = make([]float64, n*3)
			for i := range vals {
				vals[i] = float64(i * i)
			}
		}
		chunk := c.Scatter(2, vals)
		if len(chunk) != 3 {
			return fmt.Errorf("chunk length %d", len(chunk))
		}
		for j, v := range chunk {
			if want := float64((c.Rank()*3 + j) * (c.Rank()*3 + j)); v != want {
				return fmt.Errorf("rank %d chunk[%d] = %v, want %v", c.Rank(), j, v, want)
			}
		}
		out := c.Gather(2, chunk)
		if c.Rank() == 2 {
			for i, v := range out {
				if v != float64(i*i) {
					return fmt.Errorf("gathered[%d] = %v", i, v)
				}
			}
		}
		return nil
	})
}

func TestCollectiveSequenceTagsDoNotCollide(t *testing.T) {
	run(t, 3, func(pe *core.PE) error {
		c := New(pe)
		for i := 0; i < 10; i++ {
			c.Barrier()
			s := c.AllReduce(1, func(a, b float64) float64 { return a + b })
			if s != 3 {
				return fmt.Errorf("iteration %d: sum %v", i, s)
			}
		}
		return nil
	})
}

func TestUserTagCollisionPanics(t *testing.T) {
	run(t, 1, func(pe *core.PE) error {
		defer func() {
			if recover() == nil {
				panic("expected panic for reserved tag")
			}
		}()
		New(pe).Send(0, tagBase+1, nil)
		return nil
	})
}

func TestMPWorksOnSimulatedTransport(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.RS6000AIX, Seed: 2},
		func(pe *core.PE) error {
			c := New(pe)
			sum := c.AllReduce(float64(c.Rank()+1), func(a, b float64) float64 { return a + b })
			if sum != 10 {
				return fmt.Errorf("sum = %v", sum)
			}
			c.Barrier()
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Total.MsgsSent == 0 {
		t.Fatal("no messages recorded")
	}
}
