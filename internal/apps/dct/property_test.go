package dct

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: the orthonormal DCT preserves energy (Parseval's theorem).
func TestParsevalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const b = 8
		m := Basis(b)
		rng := seed | 1
		block := make([]float64, b*b)
		inEnergy := 0.0
		for i := range block {
			rng = rng*6364136223846793005 + 1442695040888963407
			block[i] = float64(rng>>56) - 128
			inEnergy += block[i] * block[i]
		}
		coeffs := ForwardBlock(m, block)
		outEnergy := 0.0
		for _, c := range coeffs {
			outEnergy += c * c
		}
		return math.Abs(inEnergy-outEnergy) <= 1e-6*(1+inEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BlockMajor is a permutation (no pixel lost or duplicated).
func TestBlockMajorPermutationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const n, b = 16, 4
		img := make([]float64, n*n)
		for i := range img {
			img[i] = float64(i) // unique values
		}
		out := BlockMajor(img, n, b)
		seen := make(map[float64]bool, n*n)
		for _, v := range out {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantisation error is bounded by half the step everywhere in
// the representable range.
func TestQuantBoundProperty(t *testing.T) {
	f := func(raw int16) bool {
		c := float64(raw) / 5.0 // well inside the clamp range
		got := DequantCoeff(QuantCoeff(c))
		return math.Abs(got-c) <= 0.125+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: chunked parallel scheduling produces exactly the sequential
// coefficient plane for any chunk size (including ragged final chunks).
func TestChunkInvarianceSequentialEquivalence(t *testing.T) {
	p := Params{ImageN: 16, Block: 4, Rate: 0.5, Seed: 9}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 8, 100} {
		pc := p
		pc.ChunkBlocks = chunk
		var par *Result
		res, err := core.Run(core.Config{NumPE: 3, Transport: core.TransportInproc},
			func(pe *core.PE) error {
				r, err := Parallel(pe, pc)
				if err == nil && pe.ID() == 0 {
					par = r
				}
				return err
			})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if err := res.FirstErr(); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		for i := range seq.Coeffs {
			if par.Coeffs[i] != seq.Coeffs[i] {
				t.Fatalf("chunk %d: coeff %d differs", chunk, i)
			}
		}
	}
}
