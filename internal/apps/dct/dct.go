// Package dct implements the paper's second workload: two-dimensional
// Discrete Cosine Transform (DCT-II) image compression. The source image is
// divided into independent B×B pixel blocks; each block is transformed and
// quantised at a given compression rate — "every pixel block of N×N can be
// processed in parallel".
//
// The parallel version keeps the image and the coefficient plane in global
// memory in block-major layout. Work is distributed one pixel block per
// job, claimed from a global counter, so the block size is the granularity
// knob exactly as in the paper: small blocks mean many jobs, frequent
// communication and little computation per job; large blocks the reverse.
// Pixels travel packed eight to a word; only the coefficients surviving
// quantisation are written back (int16, four to a word) — the compressed
// representation.
package dct

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Params describes one experiment instance.
type Params struct {
	ImageN int     // square image edge in pixels (paper: 256)
	Block  int     // block edge B (paper: 4, 8, 16, 32)
	Rate   float64 // compression rate: fraction of coefficients zeroed (paper: 0.5)
	Seed   uint64  // image generator seed

	// ChunkBlocks makes each job claim this many consecutive blocks from
	// the pool (0/1 = one block per job, the paper's setting). Chunked
	// self-scheduling is the classic fix for fine-grain pools: it divides
	// the job-counter traffic by the chunk size. Used by the ablation
	// benchmarks.
	ChunkBlocks int
}

func (p Params) validate() error {
	if p.ImageN <= 0 || p.Block <= 0 {
		return fmt.Errorf("dct: non-positive dimensions %d/%d", p.ImageN, p.Block)
	}
	if p.ImageN%p.Block != 0 {
		return fmt.Errorf("dct: image %d not divisible by block %d", p.ImageN, p.Block)
	}
	if (p.Block*p.Block)%8 != 0 {
		return fmt.Errorf("dct: block %d has %d pixels, not a multiple of the packing factor 8", p.Block, p.Block*p.Block)
	}
	if p.Rate < 0 || p.Rate >= 1 {
		return fmt.Errorf("dct: rate %v outside [0,1)", p.Rate)
	}
	if p.ChunkBlocks < 0 {
		return fmt.Errorf("dct: negative chunk size %d", p.ChunkBlocks)
	}
	return nil
}

// chunk returns the effective blocks-per-job.
func (p Params) chunk() int {
	if p.ChunkBlocks <= 1 {
		return 1
	}
	return p.ChunkBlocks
}

// Result reports a compression run.
type Result struct {
	Coeffs  []int16      // quantised coefficient plane (ImageN×ImageN, row-major)
	Blocks  int          // blocks processed
	Jobs    int          // block-row jobs processed (per PE for Parallel)
	Ops     float64      // counted floating-point operations
	Elapsed sim.Duration // timed region (parallel runs; excludes image load)
}

// BuildImage deterministically synthesises a grayscale test image in
// [0,255]: smooth gradients plus texture, so coefficients are non-trivial.
func BuildImage(p Params) []float64 {
	n := p.ImageN
	img := make([]float64, n*n)
	rng := p.Seed | 1
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			noise := float64(rng >> 58) // 0..63
			v := 96 +
				64*math.Sin(2*math.Pi*float64(x)/float64(n)) +
				48*math.Cos(2*math.Pi*3*float64(y)/float64(n)) +
				noise/2
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*n+x] = math.Floor(v)
		}
	}
	return img
}

// --- packing ---

// PackPixels packs 8-bit pixel values eight per global-memory word.
// len(img) must be a multiple of 8; values must lie in [0,255].
func PackPixels(img []float64) []int64 {
	if len(img)%8 != 0 {
		panic("dct: pixel count not a multiple of 8")
	}
	words := make([]int64, len(img)/8)
	for i, v := range img {
		b := uint64(v)
		if v < 0 || v > 255 || v != math.Trunc(v) {
			panic(fmt.Sprintf("dct: pixel %v not an 8-bit value", v))
		}
		words[i/8] |= int64(b << uint(8*(i%8)))
	}
	return words
}

// UnpackPixels inverts PackPixels.
func UnpackPixels(words []int64) []float64 {
	img := make([]float64, len(words)*8)
	for i := range img {
		img[i] = float64(uint64(words[i/8]) >> uint(8*(i%8)) & 0xff)
	}
	return img
}

// coeffScale fixes the int16 quantisation step at 1/4.
const coeffScale = 4

// QuantCoeff quantises a DCT coefficient to int16 (step 1/4, clamped).
func QuantCoeff(c float64) int16 {
	q := math.Round(c * coeffScale)
	if q > math.MaxInt16 {
		q = math.MaxInt16
	}
	if q < math.MinInt16 {
		q = math.MinInt16
	}
	return int16(q)
}

// DequantCoeff inverts QuantCoeff up to the quantisation step.
func DequantCoeff(q int16) float64 { return float64(q) / coeffScale }

// PackCoeffs packs int16 coefficients four per word.
func PackCoeffs(cs []int16) []int64 {
	if len(cs)%4 != 0 {
		panic("dct: coefficient count not a multiple of 4")
	}
	words := make([]int64, len(cs)/4)
	for i, c := range cs {
		words[i/4] |= int64(uint64(uint16(c)) << uint(16*(i%4)))
	}
	return words
}

// UnpackCoeffs inverts PackCoeffs.
func UnpackCoeffs(words []int64) []int16 {
	cs := make([]int16, len(words)*4)
	for i := range cs {
		cs[i] = int16(uint16(uint64(words[i/4]) >> uint(16*(i%4))))
	}
	return cs
}

// --- transform ---

// Basis returns the B×B orthonormal DCT-II basis matrix M, with
// M[k][x] = c(k)·cos((2x+1)kπ/2B).
func Basis(b int) [][]float64 {
	m := make([][]float64, b)
	for k := 0; k < b; k++ {
		m[k] = make([]float64, b)
		c := math.Sqrt(2 / float64(b))
		if k == 0 {
			c = math.Sqrt(1 / float64(b))
		}
		for x := 0; x < b; x++ {
			m[k][x] = c * math.Cos((2*float64(x)+1)*float64(k)*math.Pi/(2*float64(b)))
		}
	}
	return m
}

// ForwardBlock computes the 2-D DCT of block (row-major, B×B) by the
// direct definition, C[u][v] = Σy Σx M[u][y]·M[v][x]·X[y][x] — the O(B⁴)
// formulation a straightforward period implementation uses (and the cost
// the experiments charge).
func ForwardBlock(m [][]float64, block []float64) []float64 {
	b := len(m)
	out := make([]float64, b*b)
	for u := 0; u < b; u++ {
		for v := 0; v < b; v++ {
			s := 0.0
			for y := 0; y < b; y++ {
				mu := m[u][y]
				row := block[y*b : (y+1)*b]
				for x := 0; x < b; x++ {
					s += mu * m[v][x] * row[x]
				}
			}
			out[u*b+v] = s
		}
	}
	return out
}

// InverseBlock inverts ForwardBlock: X = Mᵀ·C·M.
func InverseBlock(m [][]float64, coeffs []float64) []float64 {
	b := len(m)
	tmp := make([]float64, b*b)
	out := make([]float64, b*b)
	for y := 0; y < b; y++ { // tmp = C·M
		for x := 0; x < b; x++ {
			s := 0.0
			for k := 0; k < b; k++ {
				s += coeffs[y*b+k] * m[k][x]
			}
			tmp[y*b+x] = s
		}
	}
	for x := 0; x < b; x++ { // out = Mᵀ·tmp
		for j := 0; j < b; j++ {
			s := 0.0
			for k := 0; k < b; k++ {
				s += m[k][x] * tmp[k*b+j]
			}
			out[x*b+j] = s
		}
	}
	return out
}

// ZigZag returns the zig-zag traversal order of a B×B block: the standard
// low-to-high-frequency ordering used to decide which coefficients survive
// quantisation.
func ZigZag(b int) []int {
	order := make([]int, 0, b*b)
	for s := 0; s <= 2*(b-1); s++ {
		if s%2 == 0 { // up-right diagonals
			for y := min(s, b-1); y >= 0 && s-y < b; y-- {
				order = append(order, y*b+(s-y))
			}
		} else {
			for x := min(s, b-1); x >= 0 && s-x < b; x-- {
				order = append(order, (s-x)*b+x)
			}
		}
	}
	return order
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Quantise zeroes all but the first keep coefficients in zig-zag order,
// in place.
func Quantise(coeffs []float64, order []int, keep int) {
	for i := keep; i < len(order); i++ {
		coeffs[order[i]] = 0
	}
}

// blockOps counts the floating-point work of one block under the direct
// O(B⁴) formulation: two multiply-adds per basis product.
func blockOps(b int) float64 {
	b4 := float64(b) * float64(b) * float64(b) * float64(b)
	return 3 * b4
}

// keepCount converts a compression rate into surviving coefficients.
func keepCount(p Params) int {
	keep := int(math.Round((1 - p.Rate) * float64(p.Block*p.Block)))
	if keep < 1 {
		keep = 1
	}
	return keep
}

// BlockMajor reorders a row-major image into block-major layout: the B×B
// pixels of each block contiguous (row-major inside the block), blocks in
// row-major block order. This is how the parallel version stores the image
// in global memory, so one job's pixels are one contiguous transfer.
func BlockMajor(img []float64, n, b int) []float64 {
	out := make([]float64, len(img))
	i := 0
	for by := 0; by < n/b; by++ {
		for bx := 0; bx < n/b; bx++ {
			for y := 0; y < b; y++ {
				copy(out[i:i+b], img[(by*b+y)*n+bx*b:(by*b+y)*n+bx*b+b])
				i += b
			}
		}
	}
	return out
}

// compressBlock transforms one B×B pixel block and returns the surviving
// coefficients in zig-zag order, padded to a multiple of four for packing.
func compressBlock(m [][]float64, order []int, keep int, block []float64) []int16 {
	coeffs := ForwardBlock(m, block)
	kept := make([]int16, (keep+3)/4*4)
	for i := 0; i < keep; i++ {
		kept[i] = QuantCoeff(coeffs[order[i]])
	}
	return kept
}

// expandKept writes one block's kept coefficients into the full plane.
func expandKept(plane []int16, kept []int16, order []int, keep, n, b, blockIdx int) {
	by, bx := blockIdx/(n/b), blockIdx%(n/b)
	for i := 0; i < keep; i++ {
		u, v := order[i]/b, order[i]%b
		plane[(by*b+u)*n+bx*b+v] = kept[i]
	}
}

// Sequential compresses the image on one processor, producing the full
// quantised coefficient plane.
func Sequential(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, b := p.ImageN, p.Block
	blocked := BlockMajor(BuildImage(p), n, b)
	m := Basis(b)
	order := ZigZag(b)
	keep := keepCount(p)
	totalBlocks := (n / b) * (n / b)
	res := &Result{Coeffs: make([]int16, n*n)}
	for j := 0; j < totalBlocks; j++ {
		kept := compressBlock(m, order, keep, blocked[j*b*b:(j+1)*b*b])
		expandKept(res.Coeffs, kept, order, keep, n, b, j)
		res.Blocks++
		res.Ops += blockOps(b)
	}
	res.Jobs = totalBlocks
	return res, nil
}

// Parallel compresses the image as an SPMD program: the packed block-major
// image and the compressed coefficient stream live in global memory; PEs
// claim one block per job from a global counter, fetch the block's packed
// pixels, transform and quantise, and write back only the surviving
// coefficients — so communication frequency scales with the number of
// blocks, the paper's granularity effect. PE 0 returns the full coefficient
// plane; other PEs return counters only.
func Parallel(pe core.Proc, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, b := p.ImageN, p.Block
	keep := keepCount(p)
	pixWords := b * b / 8
	keptWords := (keep + 3) / 4
	totalBlocks := (n / b) * (n / b)
	imgAddr := pe.AllocBlocks(totalBlocks * pixWords)
	outAddr := pe.AllocBlocks(totalBlocks * keptWords)
	counter := pe.AllocBlocks(1)

	// Setup (untimed in the harness): PE 0 loads the packed image into GM.
	if pe.ID() == 0 {
		pe.GMWriteBlock(imgAddr, PackPixels(BlockMajor(BuildImage(p), n, b)))
	}
	pe.Barrier()
	start := pe.Now()

	m := Basis(b)
	order := ZigZag(b)
	res := &Result{}
	chunk := p.chunk()
	for {
		first := pe.FetchAdd(counter, int64(chunk))
		if first >= int64(totalBlocks) {
			break
		}
		last := first + int64(chunk)
		if last > int64(totalBlocks) {
			last = int64(totalBlocks)
		}
		// One contiguous pixel fetch and coefficient write-back per chunk.
		// Chunks spanning several GM blocks ride the vectored path: all runs
		// homed at one kernel travel in a single OpReadV/OpWriteV message.
		words := pe.GMReadBlock(imgAddr+uint64(first)*uint64(pixWords), int(last-first)*pixWords)
		pixels := UnpackPixels(words)
		outWords := make([]int64, 0, int(last-first)*keptWords)
		for j := first; j < last; j++ {
			off := int(j-first) * b * b
			kept := compressBlock(m, order, keep, pixels[off:off+b*b])
			outWords = append(outWords, PackCoeffs(kept)...)
			res.Blocks++
			res.Ops += blockOps(b)
		}
		pe.Compute(float64(last-first) * blockOps(b))
		pe.GMWriteBlock(outAddr+uint64(first)*uint64(keptWords), outWords)
		res.Jobs++
	}
	pe.Barrier()
	res.Elapsed = pe.Now() - start
	if pe.ID() == 0 {
		res.Coeffs = make([]int16, n*n)
		stream := UnpackCoeffs(pe.GMReadBlock(outAddr, totalBlocks*keptWords))
		for j := 0; j < totalBlocks; j++ {
			expandKept(res.Coeffs, stream[j*keptWords*4:], order, keep, n, b, j)
		}
	}
	pe.Barrier()
	return res, nil
}

// Reconstruct inverts a quantised coefficient plane back to an image.
func Reconstruct(p Params, coeffs []int16) []float64 {
	n, b := p.ImageN, p.Block
	m := Basis(b)
	out := make([]float64, n*n)
	blocksPerSide := n / b
	cblock := make([]float64, b*b)
	for by := 0; by < blocksPerSide; by++ {
		for bx := 0; bx < blocksPerSide; bx++ {
			for y := 0; y < b; y++ {
				for x := 0; x < b; x++ {
					cblock[y*b+x] = DequantCoeff(coeffs[(by*b+y)*n+bx*b+x])
				}
			}
			pix := InverseBlock(m, cblock)
			for y := 0; y < b; y++ {
				copy(out[(by*b+y)*n+bx*b:], pix[y*b:(y+1)*b])
			}
		}
	}
	return out
}

// PSNR computes the peak signal-to-noise ratio between two images in dB
// (peak 255). Identical images return +Inf.
func PSNR(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dct: PSNR over different-sized images")
	}
	mse := 0.0
	for i := range a {
		d := a[i] - b[i]
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
