package dct

import "testing"

func benchBlock(b *testing.B, edge int) {
	b.Helper()
	m := Basis(edge)
	block := make([]float64, edge*edge)
	for i := range block {
		block[i] = float64(i % 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardBlock(m, block)
	}
}

func BenchmarkForwardBlock8(b *testing.B)  { benchBlock(b, 8) }
func BenchmarkForwardBlock16(b *testing.B) { benchBlock(b, 16) }
func BenchmarkForwardBlock32(b *testing.B) { benchBlock(b, 32) }

func BenchmarkPackPixels(b *testing.B) {
	img := make([]float64, 64*64)
	for i := range img {
		img[i] = float64(i % 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PackPixels(img)
	}
}
