package dct

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestBasisOrthonormal(t *testing.T) {
	for _, b := range []int{4, 8, 16} {
		m := Basis(b)
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				dot := 0.0
				for x := 0; x < b; x++ {
					dot += m[i][x] * m[j][x]
				}
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-12 {
					t.Fatalf("B=%d: <m%d,m%d> = %v", b, i, j, dot)
				}
			}
		}
	}
}

func TestForwardInverseIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		const b = 8
		m := Basis(b)
		rng := seed | 1
		block := make([]float64, b*b)
		for i := range block {
			rng = rng*6364136223846793005 + 1442695040888963407
			block[i] = float64(rng >> 56)
		}
		back := InverseBlock(m, ForwardBlock(m, block))
		for i := range block {
			if math.Abs(back[i]-block[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPixelPackingRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw) - len(raw)%8
		img := make([]float64, n)
		for i := 0; i < n; i++ {
			img[i] = float64(raw[i])
		}
		got := UnpackPixels(PackPixels(img))
		for i := range img {
			if got[i] != img[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoeffPackingRoundTrip(t *testing.T) {
	f := func(cs []int16) bool {
		n := len(cs) - len(cs)%4
		got := UnpackCoeffs(PackCoeffs(cs[:n]))
		for i := 0; i < n; i++ {
			if got[i] != cs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantisationError(t *testing.T) {
	for _, c := range []float64{0, 0.1, -3.7, 8000, -8000, 0.124, -0.124} {
		if got := DequantCoeff(QuantCoeff(c)); math.Abs(got-c) > 0.125+1e-12 {
			t.Fatalf("quantisation error for %v: got %v", c, got)
		}
	}
	if QuantCoeff(1e9) != math.MaxInt16 || QuantCoeff(-1e9) != math.MinInt16 {
		t.Fatal("clamping broken")
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		order := ZigZag(b)
		if len(order) != b*b {
			t.Fatalf("B=%d: length %d", b, len(order))
		}
		seen := make([]bool, b*b)
		for _, idx := range order {
			if idx < 0 || idx >= b*b || seen[idx] {
				t.Fatalf("B=%d: bad order %v", b, order)
			}
			seen[idx] = true
		}
	}
}

func TestZigZag4x4KnownPrefix(t *testing.T) {
	order := ZigZag(4)
	want := []int{0, 1, 4, 8, 5, 2, 3, 6}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("zigzag(4) = %v, want prefix %v", order[:8], want)
		}
	}
}

func TestQuantiseKeepsLowFrequencies(t *testing.T) {
	const b = 4
	coeffs := make([]float64, b*b)
	for i := range coeffs {
		coeffs[i] = 1
	}
	order := ZigZag(b)
	Quantise(coeffs, order, 3)
	kept := 0
	for _, c := range coeffs {
		if c != 0 {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d coefficients, want 3", kept)
	}
	if coeffs[0] == 0 || coeffs[1] == 0 || coeffs[4] == 0 {
		t.Fatal("low frequencies were zeroed")
	}
}

func TestSequentialReconstructionQuality(t *testing.T) {
	p := Params{ImageN: 64, Block: 8, Rate: 0.5, Seed: 1}
	img := BuildImage(p)
	res, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 64 {
		t.Fatalf("blocks = %d, want 64", res.Blocks)
	}
	recon := Reconstruct(p, res.Coeffs)
	if snr := PSNR(img, recon); snr < 20 {
		t.Fatalf("PSNR %v dB too low for 50%% compression", snr)
	}
	// No zig-zag truncation: only the int16 quantisation step remains.
	p0 := p
	p0.Rate = 0
	res0, err := Sequential(p0)
	if err != nil {
		t.Fatal(err)
	}
	if snr := PSNR(img, Reconstruct(p0, res0.Coeffs)); snr < 55 {
		t.Fatalf("near-lossless PSNR %v dB", snr)
	}
}

func TestLowerRateGivesBetterPSNR(t *testing.T) {
	base := Params{ImageN: 64, Block: 8, Seed: 1}
	img := BuildImage(base)
	snrAt := func(rate float64) float64 {
		p := base
		p.Rate = rate
		res, err := Sequential(p)
		if err != nil {
			t.Fatal(err)
		}
		return PSNR(img, Reconstruct(p, res.Coeffs))
	}
	if snrAt(0.25) <= snrAt(0.9) {
		t.Fatal("keeping more coefficients should not reduce quality")
	}
}

func TestParallelMatchesSequentialExactly(t *testing.T) {
	p := Params{ImageN: 32, Block: 8, Rate: 0.5, Seed: 2}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, npe := range []int{1, 3, 4} {
		npe := npe
		t.Run(fmt.Sprintf("p%d", npe), func(t *testing.T) {
			var par *Result
			res, err := core.Run(core.Config{NumPE: npe, Transport: core.TransportInproc},
				func(pe *core.PE) error {
					r, err := Parallel(pe, p)
					if err != nil {
						return err
					}
					if pe.ID() == 0 {
						par = r
					}
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			if len(par.Coeffs) != len(seq.Coeffs) {
				t.Fatalf("coeff plane size %d vs %d", len(par.Coeffs), len(seq.Coeffs))
			}
			for i := range seq.Coeffs {
				if par.Coeffs[i] != seq.Coeffs[i] {
					t.Fatalf("coeff %d: %v vs %v", i, par.Coeffs[i], seq.Coeffs[i])
				}
			}
		})
	}
}

func TestParallelSharesAllBlocks(t *testing.T) {
	p := Params{ImageN: 32, Block: 4, Rate: 0.5, Seed: 1}
	perPE := make([]int, 4)
	res, err := core.Run(core.Config{NumPE: 4, Transport: core.TransportInproc},
		func(pe *core.PE) error {
			r, err := Parallel(pe, p)
			if err != nil {
				return err
			}
			perPE[pe.ID()] = r.Blocks
			return nil
		})
	if err != nil || res.FirstErr() != nil {
		t.Fatalf("%v %v", err, res.FirstErr())
	}
	total := 0
	for _, b := range perPE {
		total += b
	}
	if total != 64 {
		t.Fatalf("blocks processed %d, want 64", total)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{ImageN: 10, Block: 4, Rate: 0.5},
		{ImageN: 0, Block: 4},
		{ImageN: 16, Block: 4, Rate: 1.0},
		{ImageN: 16, Block: 4, Rate: -0.1},
		{ImageN: 12, Block: 3, Rate: 0.5}, // not divisible by packing factor
	}
	for _, p := range bad {
		if _, err := Sequential(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
}

func TestParallelOnSimulatedCluster(t *testing.T) {
	p := Params{ImageN: 32, Block: 8, Rate: 0.5, Seed: 1}
	res, err := core.Run(core.Config{NumPE: 3, Platform: platform.SparcSunOS, Seed: 1},
		func(pe *core.PE) error {
			_, err := Parallel(pe, p)
			return err
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Total.RemoteGM == 0 {
		t.Fatalf("simulation did not exercise the DSM: %+v", res.Total)
	}
}
