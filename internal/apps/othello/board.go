// Package othello implements the paper's third workload: the Othello
// (Reversi) game, "a typical search problem application common in
// artificial intelligence research". A bitboard engine feeds a fixed-depth
// alpha-beta search; the parallel version splits the root moves over the
// PEs through a global job pool, so deeper searches (bigger subtrees per
// job) show the speed-up the paper reports while shallow ones drown in
// communication.
package othello

import (
	"fmt"
	"math/bits"
)

// Board is a position with the side to move holding Own.
type Board struct {
	Own, Opp uint64
}

// Square bit layout: bit = x + 8*y, a1 = bit 0, h8 = bit 63.
const (
	notFileA uint64 = 0xfefefefefefefefe // clear column x=0
	notFileH uint64 = 0x7f7f7f7f7f7f7f7f // clear column x=7
	corners  uint64 = 0x8100000000000081
)

// Initial returns the standard Othello starting position (dark to move).
func Initial() Board {
	dark := uint64(1)<<28 | uint64(1)<<35  // e4, d5
	light := uint64(1)<<27 | uint64(1)<<36 // d4, e5
	return Board{Own: dark, Opp: light}
}

// shift moves every disc one step in direction d (0..7), masking wrap.
func shift(bb uint64, d int) uint64 {
	switch d {
	case 0: // east
		return (bb << 1) & notFileA
	case 1: // west
		return (bb >> 1) & notFileH
	case 2: // south (towards y+)
		return bb << 8
	case 3: // north
		return bb >> 8
	case 4: // south-east
		return (bb << 9) & notFileA
	case 5: // south-west
		return (bb << 7) & notFileH
	case 6: // north-east
		return (bb >> 7) & notFileA
	default: // north-west
		return (bb >> 9) & notFileH
	}
}

// Moves returns a bitboard of the side to move's legal moves.
func (b Board) Moves() uint64 {
	empty := ^(b.Own | b.Opp)
	var moves uint64
	for d := 0; d < 8; d++ {
		x := shift(b.Own, d) & b.Opp
		for i := 0; i < 5; i++ {
			x |= shift(x, d) & b.Opp
		}
		moves |= shift(x, d) & empty
	}
	return moves
}

// Apply plays the move on square sq (a legal move of the side to move) and
// returns the resulting position with sides swapped.
func (b Board) Apply(sq int) Board {
	move := uint64(1) << uint(sq)
	if move&(b.Own|b.Opp) != 0 {
		panic(fmt.Sprintf("othello: square %d occupied", sq))
	}
	var flips uint64
	for d := 0; d < 8; d++ {
		line := uint64(0)
		x := shift(move, d)
		for x&b.Opp != 0 {
			line |= x
			x = shift(x, d)
		}
		if x&b.Own != 0 {
			flips |= line
		}
	}
	if flips == 0 {
		panic(fmt.Sprintf("othello: illegal move %d (no flips)", sq))
	}
	own := b.Own | move | flips
	opp := b.Opp &^ flips
	return Board{Own: opp, Opp: own}
}

// Pass swaps the side to move without playing.
func (b Board) Pass() Board { return Board{Own: b.Opp, Opp: b.Own} }

// Discs counts discs of the side to move and the opponent.
func (b Board) Discs() (own, opp int) {
	return bits.OnesCount64(b.Own), bits.OnesCount64(b.Opp)
}

// Terminal reports whether neither side has a legal move.
func (b Board) Terminal() bool {
	return b.Moves() == 0 && b.Pass().Moves() == 0
}

// MoveList expands a move bitboard into ascending square indices.
func MoveList(moves uint64) []int {
	out := make([]int, 0, bits.OnesCount64(moves))
	for moves != 0 {
		sq := bits.TrailingZeros64(moves)
		out = append(out, sq)
		moves &= moves - 1
	}
	return out
}

// Evaluate scores a position from the side to move's perspective:
// weighted corners, mobility and material.
func Evaluate(b Board) int {
	ownMob := bits.OnesCount64(b.Moves())
	oppMob := bits.OnesCount64(b.Pass().Moves())
	ownC := bits.OnesCount64(b.Own & corners)
	oppC := bits.OnesCount64(b.Opp & corners)
	own, opp := b.Discs()
	return 100*(ownC-oppC) + 10*(ownMob-oppMob) + (own - opp)
}

// String renders the position with the side to move as 'o'.
func (b Board) String() string {
	out := make([]byte, 0, 72)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			bit := uint64(1) << uint(x+8*y)
			switch {
			case b.Own&bit != 0:
				out = append(out, 'o')
			case b.Opp&bit != 0:
				out = append(out, 'x')
			default:
				out = append(out, '.')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}

// MidgamePosition plays plies deterministic half-moves from the start to
// reach a position with a wider root than the four-move opening: each side
// plays the legal move that maximises the opponent's reply mobility (ties
// broken toward the lowest square), which keeps the game open — 13 root
// moves after the default 10 plies. Forced passes do not count as plies.
func MidgamePosition(plies int) Board {
	b := Initial()
	for i := 0; i < plies; i++ {
		moves := MoveList(b.Moves())
		if len(moves) == 0 {
			b = b.Pass()
			if b.Moves() == 0 {
				return b // game ended early (not for small plies)
			}
			moves = MoveList(b.Moves())
		}
		best, bestMob := moves[0], -1
		for _, sq := range moves {
			mob := bits.OnesCount64(b.Apply(sq).Moves())
			if mob > bestMob {
				best, bestMob = sq, mob
			}
		}
		b = b.Apply(best)
	}
	return b
}
