package othello

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Inf bounds every position value.
const Inf = 1 << 24

// Params describes one experiment instance.
type Params struct {
	Depth        int // search depth in plies (paper: 3..8)
	OpeningPlies int // deterministic opening length (0 = 10, a wide midgame root)
}

func (p Params) withDefaults() Params {
	if p.OpeningPlies == 0 {
		p.OpeningPlies = 10
	}
	return p
}

// Result reports one search.
type Result struct {
	BestMove int          // square index of the best root move
	Value    int          // root value from the side to move's perspective
	Nodes    int64        // nodes visited (identical sequential vs parallel)
	Ops      float64      // counted operations
	Jobs     int          // root moves searched by this PE (parallel) or total
	Elapsed  sim.Duration // timed region (parallel runs)
}

// opsPerNode is the counted cost of visiting one node: move generation,
// application and evaluation on period hardware.
const opsPerNode = 60

// negamax is fixed-depth alpha-beta from the side to move's perspective.
// A forced pass consumes a ply, guaranteeing termination.
func negamax(b Board, depth, alpha, beta int, nodes *int64) int {
	*nodes++
	if depth == 0 {
		return Evaluate(b)
	}
	moves := b.Moves()
	if moves == 0 {
		pass := b.Pass()
		if pass.Moves() == 0 {
			own, opp := b.Discs()
			return 1000 * (own - opp) // game over: exact disc difference
		}
		return -negamax(pass, depth-1, -beta, -alpha, nodes)
	}
	best := -Inf
	for _, sq := range MoveList(moves) {
		v := -negamax(b.Apply(sq), depth-1, -beta, -alpha, nodes)
		if v > best {
			best = v
		}
		if v > alpha {
			alpha = v
		}
		if alpha >= beta {
			break
		}
	}
	return best
}

// SearchMove evaluates one root move with a full alpha-beta window on the
// subtree — the unit of work the parallel version distributes. Using a full
// window per root move makes the sequential and parallel node counts
// identical, so measured speed-up reflects distribution only.
func SearchMove(root Board, sq, depth int) (value int, nodes int64) {
	value = -negamax(root.Apply(sq), depth-1, -Inf, Inf, &nodes)
	return value, nodes
}

// Sequential searches every root move on one processor.
func Sequential(p Params) (*Result, error) {
	p = p.withDefaults()
	if p.Depth < 1 {
		return nil, fmt.Errorf("othello: depth %d < 1", p.Depth)
	}
	root := MidgamePosition(p.OpeningPlies)
	moves := MoveList(root.Moves())
	if len(moves) == 0 {
		return nil, fmt.Errorf("othello: no legal moves at the root")
	}
	res := &Result{BestMove: -1, Value: -Inf}
	for _, sq := range moves {
		v, nodes := SearchMove(root, sq, p.Depth)
		res.Nodes += nodes
		if v > res.Value {
			res.Value, res.BestMove = v, sq
		}
		res.Jobs++
	}
	res.Ops = float64(res.Nodes) * opsPerNode
	return res, nil
}

// Parallel distributes root moves through a global job pool: each PE claims
// move indices with FetchAdd, searches its subtrees, and publishes values
// into a global result array; PE 0 reduces to the best move. Every PE
// returns the same BestMove/Value/Nodes (Jobs is per-PE).
func Parallel(pe core.Proc, p Params) (*Result, error) {
	p = p.withDefaults()
	if p.Depth < 1 {
		return nil, fmt.Errorf("othello: depth %d < 1", p.Depth)
	}
	root := MidgamePosition(p.OpeningPlies)
	moves := MoveList(root.Moves())
	if len(moves) == 0 {
		return nil, fmt.Errorf("othello: no legal moves at the root")
	}
	counter := pe.AllocBlocks(1)
	nodesAddr := pe.AllocBlocks(1)
	values := pe.AllocBlocks(len(moves))

	pe.Barrier() // everyone has allocated; counters start at zero
	start := pe.Now()

	res := &Result{}
	for {
		j := pe.FetchAdd(counter, 1)
		if j >= int64(len(moves)) {
			break
		}
		v, nodes := SearchMove(root, moves[j], p.Depth)
		pe.Compute(float64(nodes) * opsPerNode)
		res.Jobs++
		pe.GMWrite(values+uint64(j), int64(v))
		pe.FetchAdd(nodesAddr, nodes)
	}
	pe.Barrier()
	res.Elapsed = pe.Now() - start

	// Reduce: every PE reads the published values (small array) so all
	// return the same answer, as the API library would give each process.
	vals := pe.GMReadBlock(values, len(moves))
	res.BestMove, res.Value = -1, -Inf
	for i, v := range vals {
		if int(v) > res.Value {
			res.Value, res.BestMove = int(v), moves[i]
		}
	}
	res.Nodes = pe.GMRead(nodesAddr)
	res.Ops = float64(res.Nodes) * opsPerNode
	pe.Barrier()
	return res, nil
}
