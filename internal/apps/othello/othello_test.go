package othello

import (
	"fmt"
	"math/bits"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestInitialPosition(t *testing.T) {
	b := Initial()
	if own, opp := b.Discs(); own != 2 || opp != 2 {
		t.Fatalf("discs = %d/%d", own, opp)
	}
	moves := MoveList(b.Moves())
	// Dark's four classic opening moves: d3, c4, f5, e6.
	want := []int{19, 26, 37, 44}
	if len(moves) != 4 {
		t.Fatalf("opening moves = %v", moves)
	}
	for i, m := range want {
		if moves[i] != m {
			t.Fatalf("opening moves = %v, want %v", moves, want)
		}
	}
}

func TestApplyFlipsDiscs(t *testing.T) {
	b := Initial()
	next := b.Apply(19) // d3
	// After d3: mover (dark) had 2, gains the move disc and one flip = 4;
	// opponent (light) down to 1. next is from light's perspective.
	own, opp := next.Discs()
	if own != 1 || opp != 4 {
		t.Fatalf("after d3: light=%d dark=%d, want 1/4", own, opp)
	}
}

func TestApplyPanicsOnIllegalMove(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Initial().Apply(0) // a1 flips nothing
}

func TestDiscConservation(t *testing.T) {
	// Playing any sequence of legal moves never loses discs and adds one
	// disc per move.
	b := Initial()
	total := 4
	for i := 0; i < 30; i++ {
		moves := b.Moves()
		if moves == 0 {
			b = b.Pass()
			if b.Moves() == 0 {
				break
			}
			continue
		}
		// Deterministically pick a move spread across the options.
		list := MoveList(moves)
		b = b.Apply(list[i%len(list)])
		total++
		own, opp := b.Discs()
		if own+opp != total {
			t.Fatalf("move %d: %d discs on board, want %d", i, own+opp, total)
		}
	}
}

func TestMovesNeverOverlapOccupied(t *testing.T) {
	b := Initial()
	for i := 0; i < 20; i++ {
		moves := b.Moves()
		if moves&(b.Own|b.Opp) != 0 {
			t.Fatal("legal move on occupied square")
		}
		if moves == 0 {
			break
		}
		b = b.Apply(bits.TrailingZeros64(moves))
	}
}

func TestMidgamePositionWidensRoot(t *testing.T) {
	b := MidgamePosition(10)
	n := len(MoveList(b.Moves()))
	if n < 8 {
		t.Fatalf("midgame root has only %d moves; need a wide root for parallel jobs", n)
	}
	// Determinism.
	b2 := MidgamePosition(10)
	if b != b2 {
		t.Fatal("MidgamePosition not deterministic")
	}
}

func TestSearchDeterministicAndDeeperCostsMore(t *testing.T) {
	r3, err := Sequential(Params{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	r3b, err := Sequential(Params{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Value != r3b.Value || r3.Nodes != r3b.Nodes || r3.BestMove != r3b.BestMove {
		t.Fatal("sequential search not deterministic")
	}
	r5, err := Sequential(Params{Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r5.Nodes <= r3.Nodes {
		t.Fatalf("depth 5 visited %d nodes, depth 3 %d", r5.Nodes, r3.Nodes)
	}
}

func TestAlphaBetaMatchesPlainNegamax(t *testing.T) {
	// Full-window negamax without pruning must agree with alpha-beta on
	// the root value.
	var plain func(b Board, depth int) int
	plain = func(b Board, depth int) int {
		if depth == 0 {
			return Evaluate(b)
		}
		moves := b.Moves()
		if moves == 0 {
			pass := b.Pass()
			if pass.Moves() == 0 {
				own, opp := b.Discs()
				return 1000 * (own - opp)
			}
			return -plain(pass, depth-1)
		}
		best := -Inf
		for _, sq := range MoveList(moves) {
			if v := -plain(b.Apply(sq), depth-1); v > best {
				best = v
			}
		}
		return best
	}
	root := MidgamePosition(10)
	var nodes int64
	got := negamax(root, 4, -Inf, Inf, &nodes)
	want := plain(root, 4)
	if got != want {
		t.Fatalf("alpha-beta value %d, plain negamax %d", got, want)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	p := Params{Depth: 4}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, npe := range []int{1, 2, 5} {
		npe := npe
		t.Run(fmt.Sprintf("p%d", npe), func(t *testing.T) {
			results := make([]*Result, npe)
			res, err := core.Run(core.Config{NumPE: npe, Transport: core.TransportInproc},
				func(pe *core.PE) error {
					r, err := Parallel(pe, p)
					if err != nil {
						return err
					}
					results[pe.ID()] = r
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			jobs := 0
			for i, r := range results {
				if r.Value != seq.Value || r.BestMove != seq.BestMove {
					t.Fatalf("PE %d: move/value %d/%d vs sequential %d/%d",
						i, r.BestMove, r.Value, seq.BestMove, seq.Value)
				}
				if r.Nodes != seq.Nodes {
					t.Fatalf("PE %d: nodes %d vs sequential %d", i, r.Nodes, seq.Nodes)
				}
				jobs += r.Jobs
			}
			if jobs != seq.Jobs {
				t.Fatalf("total jobs %d, want %d", jobs, seq.Jobs)
			}
		})
	}
}

func TestParallelOnSimulatedCluster(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.RS6000AIX, Seed: 1},
		func(pe *core.PE) error {
			r, err := Parallel(pe, Params{Depth: 3})
			if err != nil {
				return err
			}
			if r.Nodes == 0 {
				return fmt.Errorf("no nodes searched")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Total.ComputeTime <= 0 {
		t.Fatal("search charged no compute time")
	}
}

func TestDepthValidation(t *testing.T) {
	if _, err := Sequential(Params{Depth: 0}); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestBoardStringShape(t *testing.T) {
	s := Initial().String()
	if len(s) != 72 { // 8 rows x (8 cells + newline)
		t.Fatalf("board string length %d", len(s))
	}
}
